(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (Figs. 4-7, Table I, the section IV-E case study), the
   ablations, and a Bechamel microbenchmark suite with one Test.make per
   reproduced artefact.

   Usage:
     dune exec bench/main.exe             # everything
     dune exec bench/main.exe -- fig5     # one artefact
     dune exec bench/main.exe -- micro    # microbenchmarks only
     dune exec bench/main.exe -- parallel # pool scaling, writes BENCH_parallel.json
     dune exec bench/main.exe -- precond  # preconditioner ladder, BENCH_precond.json
     dune exec bench/main.exe -- multigrid # mesh-independence sweep, BENCH_multigrid.json
     dune exec bench/main.exe -- service  # batch engine throughput, BENCH_service.json
   Artefacts: fig4 fig5 fig6 fig7 table1 case ablation convergence shape
   sensitivity nplanes variation nonlinear fillers micro parallel precond
   multigrid service

   TTSV_BENCH_SMALL=1 shrinks the precond, multigrid and service benches
   to the small 2-D grids (and 1/2 domains) — the CI perf-smoke
   configuration. *)

module E = Ttsv_experiments
module Params = Ttsv_core.Params
module Model_a = Ttsv_core.Model_a
module Model_b = Ttsv_core.Model_b
module Model_1d = Ttsv_core.Model_1d
module Closed_form = Ttsv_core.Closed_form
module Resistances = Ttsv_core.Resistances
module Units = Ttsv_physics.Units
module Problem = Ttsv_fem.Problem
module Solver = Ttsv_fem.Solver

let ppf = Format.std_formatter

(* one Bechamel Test.make per reproduced table/figure kernel *)
let micro_tests () =
  let open Bechamel in
  let stack = Params.fig5_stack (Units.um 1.) in
  let coeffs = Ttsv_core.Coefficients.paper_block in
  let qs = Ttsv_geometry.Stack.heat_inputs stack in
  let rs = Resistances.of_stack ~coeffs stack in
  let fig4_stack = Params.fig4_stack (Units.um 10.) in
  let fig7_stack = Params.fig7_stack () in
  let case_stack, _ = Params.case_study () in
  let problem = Problem.of_stack stack in
  [
    Test.make ~name:"fig4:model_a_solve" (Staged.stage (fun () -> Model_a.solve ~coeffs fig4_stack));
    Test.make ~name:"fig5:model_b_100" (Staged.stage (fun () -> Model_b.solve_n stack 100));
    Test.make ~name:"table1:model_b_500" (Staged.stage (fun () -> Model_b.solve_n stack 500));
    Test.make ~name:"fig6:closed_form_3plane"
      (Staged.stage (fun () -> Closed_form.solve rs ~q1:qs.(0) ~q2:qs.(1) ~q3:qs.(2)));
    Test.make ~name:"fig7:cluster_eq22"
      (Staged.stage (fun () -> Ttsv_core.Cluster.solve ~coeffs fig7_stack 9));
    Test.make ~name:"case:model_b_1000" (Staged.stage (fun () -> Model_b.solve_n case_stack 1000));
    Test.make ~name:"case:model_1d" (Staged.stage (fun () -> Model_1d.solve case_stack));
    Test.make ~name:"ref:fv_assemble_solve" (Staged.stage (fun () -> Solver.solve problem));
  ]

let run_micro () =
  let open Bechamel in
  let open Toolkit in
  E.Report.heading ppf "Microbenchmarks (Bechamel, one per table/figure kernel)";
  Format.fprintf ppf "@.";
  let tests = Test.make_grouped ~name:"ttsv" (micro_tests ()) in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  List.iter
    (fun (name, est) ->
      match Analyze.OLS.estimates est with
      | Some [ ns ] ->
        Format.fprintf ppf "%-32s %12.1f ns/run (%.3f ms)@." name ns (ns /. 1e6)
      | Some _ | None -> Format.fprintf ppf "%-32s (no estimate)@." name)
    rows

(* Pool scaling: wall time of the pooled artefacts at 1/2/4/8 domains,
   printed and written to BENCH_parallel.json (hand-rolled JSON - the
   build deliberately has no JSON dependency).  Speedups are measured on
   whatever cores the host actually has; the determinism tests, not this
   bench, guarantee the pooled results themselves. *)
module Pool = Ttsv_parallel.Pool
module Problem3 = Ttsv_fem.Problem3
module Solver3 = Ttsv_fem.Solver3
module Obs_metrics = Ttsv_obs.Metrics

(* [phases] is the per-run span breakdown harvested from the metrics
   registry: one (span name, completions, summed seconds) triple per
   "span.*" histogram observed during that run *)
type parallel_run = {
  domains : int;
  wall_s : float;
  iterations : int;
  phases : (string * int * float) list;
}

type parallel_result = { artefact : string; runs : parallel_run list }

let phases_of_snapshot snap =
  List.filter_map
    (fun (name, sample) ->
      match sample with
      | Obs_metrics.H h when String.length name > 5 && String.sub name 0 5 = "span." ->
        Some (String.sub name 5 (String.length name - 5), h.Obs_metrics.count, h.Obs_metrics.sum)
      | _ -> None)
    snap

let bench_json_path = "BENCH_parallel.json"
let bench_domains = [ 1; 2; 4; 8 ]

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* each artefact maps a pool to its iteration count (0 when meaningless) *)
let parallel_artefacts () =
  let stack = Params.fig5_stack (Units.um 1.) in
  [
    ( "solve3_fig5",
      fun pool ->
        let p = Problem3.of_stack ~resolution:1 ?pool stack in
        (Solver3.solve ?pool p).Solver3.iterations );
    ( "solve_fv_fig5",
      fun pool ->
        (Solver.solve ?pool (Problem.of_stack ~resolution:3 stack)).Solver.iterations );
    ( "fig5_sweep",
      fun pool ->
        ignore (E.Fig5.run ~resolution:1 ?pool ());
        0 );
    ( "variation_mc",
      fun pool ->
        ignore (E.Variation.run ?pool ());
        0 );
  ]

(* shared run-array rendering: the precond bench nests the same run
   objects one level deeper, so the phase-breakdown schema stays
   identical across BENCH_parallel.json and BENCH_precond.json *)
let buffer_runs buf ~indent runs =
  let base = match runs with { wall_s; _ } :: _ -> wall_s | [] -> Float.nan in
  Buffer.add_string buf (indent ^ "\"runs\": [\n");
  List.iteri
    (fun j { domains; wall_s; iterations; phases } ->
      let phases_json =
        String.concat ", "
          (List.map
             (fun (name, count, sum_s) ->
               Printf.sprintf "{ \"name\": \"%s\", \"count\": %d, \"sum_s\": %.6f }" name
                 count sum_s)
             phases)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "%s  { \"domains\": %d, \"wall_s\": %.6f, \"speedup\": %.3f, \
            \"iterations\": %d, \"phases\": [%s] }%s\n"
           indent domains wall_s (base /. wall_s) iterations phases_json
           (if j = List.length runs - 1 then "" else ",")))
    runs;
  Buffer.add_string buf (indent ^ "]\n")

let json_of_results results =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"bench\": \"parallel\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"host_domains\": %d,\n" (Domain.recommended_domain_count ()));
  Buffer.add_string buf "  \"artefacts\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf (Printf.sprintf "    {\n      \"name\": \"%s\",\n" r.artefact);
      buffer_runs buf ~indent:"      " r.runs;
      Buffer.add_string buf
        (Printf.sprintf "    }%s\n" (if i = List.length results - 1 then "" else ",")))
    results;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let run_parallel () =
  E.Report.heading ppf "Parallel scaling (domain pool wall time per artefact)";
  (* force the memoized FV calibration outside every timed region *)
  ignore (E.Reference.block_coefficients ());
  (* metrics on for the whole bench so every timed run also yields its
     span.* phase breakdown; the registry is reset per run so the
     harvested snapshot belongs to exactly that (artefact, domains) pair *)
  let metrics_were_on = Ttsv_obs.Flags.metrics_on () in
  Ttsv_obs.Config.enable_metrics ();
  let results =
    List.map
      (fun (artefact, f) ->
        Format.fprintf ppf "@.%s:@." artefact;
        let runs =
          List.map
            (fun domains ->
              Obs_metrics.reset ();
              let pool = Pool.create ~domains () in
              let iterations, wall_s =
                Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () ->
                    time (fun () -> f (Some pool)))
              in
              let phases = phases_of_snapshot (Obs_metrics.snapshot ()) in
              { domains; wall_s; iterations; phases })
            bench_domains
        in
        let base = match runs with { wall_s; _ } :: _ -> wall_s | [] -> Float.nan in
        List.iter
          (fun { domains; wall_s; iterations; _ } ->
            Format.fprintf ppf "  domains=%d  %8.3f s  speedup %5.2fx%s@." domains wall_s
              (base /. wall_s)
              (if iterations > 0 then Printf.sprintf "  (%d solver iterations)" iterations
               else ""))
          runs;
        { artefact; runs })
      (parallel_artefacts ())
  in
  if not metrics_were_on then Ttsv_obs.Config.disable_metrics ();
  let oc = open_out bench_json_path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (json_of_results results));
  Format.fprintf ppf "@.wrote %s@." bench_json_path

(* ----------------------------------------------------------------- precond *)

module Diagnostics = Ttsv_robust.Diagnostics

(* Preconditioner shoot-out: the same artefacts solved with the ladder
   pinned to exactly one preconditioner, so the per-run iteration counts
   (and wall times) are attributable to that preconditioner alone.
   Writes BENCH_precond.json with the same per-run phase-breakdown
   schema as BENCH_parallel.json, one level deeper (artefact ->
   preconditioner -> runs). *)
let precond_json_path = "BENCH_precond.json"

let precond_rungs =
  [
    ("ic0", [ Diagnostics.Cg_ic0 ]);
    ("ssor", [ Diagnostics.Cg_ssor ]);
    ("jacobi", [ Diagnostics.Cg ]);
  ]

type precond_result = {
  p_artefact : string;
  by_precond : (string * parallel_run list) list;
}

(* TTSV_BENCH_SMALL shrinks the bench to the resolution-1 2-D grid at
   1/2 domains: seconds instead of minutes, for the CI perf-smoke job *)
let precond_small () =
  match Sys.getenv_opt "TTSV_BENCH_SMALL" with Some "" | None -> false | Some _ -> true

let precond_artefacts ~small () =
  let stack = Params.fig5_stack (Units.um 1.) in
  ( "solve_fv_fig5",
    fun pool rungs ->
      let p = Problem.of_stack ~resolution:(if small then 1 else 3) stack in
      (Solver.solve ?pool ~rungs p).Solver.iterations )
  ::
  (if small then []
   else
     [
       ( "solve3_fig5",
         fun pool rungs ->
           let p = Problem3.of_stack ~resolution:1 ?pool stack in
           (Solver3.solve ?pool ~rungs p).Solver3.iterations );
     ])

let json_of_precond_results results =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"bench\": \"precond\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"host_domains\": %d,\n" (Domain.recommended_domain_count ()));
  Buffer.add_string buf "  \"artefacts\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf "    {\n      \"name\": \"%s\",\n" r.p_artefact);
      Buffer.add_string buf "      \"preconds\": [\n";
      List.iteri
        (fun k (pname, runs) ->
          Buffer.add_string buf
            (Printf.sprintf "        {\n          \"name\": \"%s\",\n" pname);
          buffer_runs buf ~indent:"          " runs;
          Buffer.add_string buf
            (Printf.sprintf "        }%s\n"
               (if k = List.length r.by_precond - 1 then "" else ",")))
        r.by_precond;
      Buffer.add_string buf "      ]\n";
      Buffer.add_string buf
        (Printf.sprintf "    }%s\n" (if i = List.length results - 1 then "" else ",")))
    results;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let run_precond () =
  let small = precond_small () in
  E.Report.heading ppf
    (if small then "Preconditioner comparison (small CI grid)"
     else "Preconditioner comparison (iterations and wall time per rung)");
  ignore (E.Reference.block_coefficients ());
  let domains = if small then [ 1; 2 ] else [ 1; 2; 4 ] in
  let metrics_were_on = Ttsv_obs.Flags.metrics_on () in
  Ttsv_obs.Config.enable_metrics ();
  let results =
    List.map
      (fun (artefact, f) ->
        Format.fprintf ppf "@.%s:@." artefact;
        let by_precond =
          List.map
            (fun (pname, rungs) ->
              let runs =
                List.map
                  (fun d ->
                    Obs_metrics.reset ();
                    let pool = Pool.create ~domains:d () in
                    let iterations, wall_s =
                      Fun.protect
                        ~finally:(fun () -> Pool.shutdown pool)
                        (fun () -> time (fun () -> f (Some pool) rungs))
                    in
                    let phases = phases_of_snapshot (Obs_metrics.snapshot ()) in
                    { domains = d; wall_s; iterations; phases })
                  domains
              in
              let base =
                match runs with { wall_s; _ } :: _ -> wall_s | [] -> Float.nan
              in
              List.iter
                (fun { domains; wall_s; iterations; _ } ->
                  Format.fprintf ppf
                    "  %-7s domains=%d  %8.3f s  speedup %5.2fx  (%d iterations)@." pname
                    domains wall_s (base /. wall_s) iterations)
                runs;
              (pname, runs))
            precond_rungs
        in
        (* the headline number: how far IC(0) cuts the Jacobi iteration count *)
        (match
           ( List.assoc_opt "ic0" by_precond,
             List.assoc_opt "jacobi" by_precond )
         with
        | Some ({ iterations = ic0; _ } :: _), Some ({ iterations = jac; _ } :: _)
          when ic0 > 0 ->
          Format.fprintf ppf "  ic0 vs jacobi: %d vs %d iterations (%.1fx fewer)@." ic0 jac
            (float_of_int jac /. float_of_int ic0)
        | _ -> ());
        { p_artefact = artefact; by_precond })
      (precond_artefacts ~small ())
  in
  if not metrics_were_on then Ttsv_obs.Config.disable_metrics ();
  let oc = open_out precond_json_path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (json_of_precond_results results));
  Format.fprintf ppf "@.wrote %s@." precond_json_path

(* --------------------------------------------------------------- multigrid *)

(* Mesh-independence evidence for the multigrid rung: CG iteration
   counts under the mg and ic0 preconditioners across a resolution
   sweep of the 2-D unit cell and the 3-D chip stack.  An incomplete
   factorisation's iteration count grows with resolution; the V-cycle's
   must stay near-constant — [obs_check multigrid] gates on the ratio
   between the finest and coarsest sweep entries.  Iteration counts are
   deterministic, so the gate is noise-free; wall times are
   informational.  Writes BENCH_multigrid.json. *)
let multigrid_json_path = "BENCH_multigrid.json"

(* the finest-over-coarsest mg iteration growth the gate tolerates;
   recorded in the JSON so the check and the artefact can't drift *)
let multigrid_growth_limit = 1.5

let multigrid_preconds =
  [ ("mg", [ Diagnostics.Cg_mg ]); ("ic0", [ Diagnostics.Cg_ic0 ]) ]

(* per preconditioner: (iterations, wall seconds, span phase breakdown)
   — the phases separate mg's one-time hierarchy setup (mg.setup) from
   the per-iteration cycling (mg.cycle, with mg.smooth nested inside) *)
type mg_point = { cells : int; by_rung : (string * (int * float * (string * int * float) list)) list }
type mg_case = { m_artefact : string; points : (int * mg_point) list }

let multigrid_cases ~small () =
  let stack = Params.fig5_stack (Units.um 1.) in
  ( "solve_fv_fig5",
    (* the small sweep starts at resolution 2: resolution 1 sits below
       the asymptotic iteration plateau (15 vs 19-23), so including it
       reads as growth when the finer meshes are actually flat *)
    (if small then [ 2; 3; 4 ] else [ 3; 4; 5; 6 ]),
    fun res rungs ->
      let p = Problem.of_stack ~resolution:res stack in
      let r = Solver.solve ~rungs p in
      (Array.length r.Solver.temps, r.Solver.iterations) )
  ::
  (if small then []
   else
     [
       ( "solve3_fig5",
         [ 1; 2 ],
         fun res rungs ->
           let p = Problem3.of_stack ~resolution:res stack in
           let r = Solver3.solve ~rungs p in
           (Array.length r.Solver3.temps, r.Solver3.iterations) );
     ])

let json_of_multigrid_results results =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"bench\": \"multigrid\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"growth_limit\": %.2f,\n" multigrid_growth_limit);
  Buffer.add_string buf "  \"artefacts\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf "    {\n      \"name\": \"%s\",\n      \"runs\": [\n" r.m_artefact);
      List.iteri
        (fun j (resolution, { cells; by_rung }) ->
          let rungs_json =
            String.concat ", "
              (List.map
                 (fun (pname, (iters, wall_s, phases)) ->
                   let phases_json =
                     String.concat ", "
                       (List.map
                          (fun (name, count, sum_s) ->
                            Printf.sprintf
                              "{ \"name\": \"%s\", \"count\": %d, \"sum_s\": %.6f }" name
                              count sum_s)
                          phases)
                   in
                   Printf.sprintf
                     "{ \"name\": \"%s\", \"iterations\": %d, \"wall_s\": %.6f, \
                      \"phases\": [%s] }"
                     pname iters wall_s phases_json)
                 by_rung)
          in
          Buffer.add_string buf
            (Printf.sprintf
               "        { \"resolution\": %d, \"cells\": %d, \"preconds\": [%s] }%s\n"
               resolution cells rungs_json
               (if j = List.length r.points - 1 then "" else ",")))
        r.points;
      Buffer.add_string buf "      ]\n";
      Buffer.add_string buf
        (Printf.sprintf "    }%s\n" (if i = List.length results - 1 then "" else ",")))
    results;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

(* sum the seconds of one mg phase out of a harvested span breakdown *)
let phase_sum phases name =
  List.fold_left (fun acc (n, _, s) -> if n = name then acc +. s else acc) 0. phases

let run_multigrid () =
  let small = precond_small () in
  E.Report.heading ppf
    (if small then "Multigrid mesh independence (small CI sweep)"
     else "Multigrid mesh independence (iterations vs resolution)");
  ignore (E.Reference.block_coefficients ());
  let metrics_were_on = Ttsv_obs.Flags.metrics_on () in
  Ttsv_obs.Config.enable_metrics ();
  let results =
    List.map
      (fun (artefact, resolutions, f) ->
        Format.fprintf ppf "@.%s:@." artefact;
        let points =
          List.map
            (fun res ->
              let ncells = ref 0 in
              let by_rung =
                List.map
                  (fun (pname, rungs) ->
                    Obs_metrics.reset ();
                    let (c, iters), wall_s = time (fun () -> f res rungs) in
                    let phases = phases_of_snapshot (Obs_metrics.snapshot ()) in
                    ncells := c;
                    (pname, (iters, wall_s, phases)))
                  multigrid_preconds
              in
              let cells = !ncells in
              Format.fprintf ppf "  resolution=%d  cells=%-8d %s@." res cells
                (String.concat "  "
                   (List.map
                      (fun (pname, (iters, wall_s, _)) ->
                        Printf.sprintf "%s %4d iters %7.3f s" pname iters wall_s)
                      by_rung));
              (match List.assoc_opt "mg" by_rung with
              | Some (_, wall_s, phases) when phases <> [] ->
                let setup = phase_sum phases "mg.setup"
                and cycle = phase_sum phases "mg.cycle" in
                Format.fprintf ppf
                  "    mg phases: setup %.3f s  cycle %.3f s  other %.3f s@." setup
                  cycle
                  (Float.max 0. (wall_s -. setup -. cycle))
              | _ -> ());
              (res, { cells; by_rung }))
            resolutions
        in
        (match (points, List.rev points) with
        | ( (_, { by_rung = first; _ }) :: _,
            (_, { by_rung = last; _ }) :: _ )
          when List.length points > 1 -> (
          match (List.assoc_opt "mg" first, List.assoc_opt "mg" last) with
          | Some (i0, _, _), Some (i1, _, _) when i0 > 0 ->
            Format.fprintf ppf "  mg growth coarsest -> finest: %d -> %d (%.2fx)@." i0 i1
              (float_of_int i1 /. float_of_int i0)
          | _ -> ())
        | _ -> ());
        { m_artefact = artefact; points })
      (multigrid_cases ~small ())
  in
  if not metrics_were_on then Ttsv_obs.Config.disable_metrics ();
  let oc = open_out multigrid_json_path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (json_of_multigrid_results results));
  Format.fprintf ppf "@.wrote %s@." multigrid_json_path

(* ----------------------------------------------------------------- service *)

(* Batch engine throughput on a repeated-geometry workload: requests
   cycling 5 radius variants, handled by a FRESH engine per
   [Engine.handle_batch] call, at batch sizes 1/10/100 (and 1000 when
   not small).  Batch 1 pays the cold cost — assembly, preconditioner
   setup, zero-start solve — on every single request; larger batches
   amortise all three cache levels across the repeats, which is the
   >= 3x batch-100-over-batch-1 throughput floor [obs_check service]
   gates on.  Hit rates are harvested from the [service.cache.*]
   counters in the metrics registry, not from the engine, so the number
   gated in CI flows through the same pipe the serve trace exposes.
   Sequential (no pool), so iteration totals are deterministic and
   [obs_check regress] can hold them to an exact band.  Writes
   BENCH_service.json. *)
module Service_engine = Ttsv_service.Engine
module Service_protocol = Ttsv_service.Protocol

let service_json_path = "BENCH_service.json"

type service_run = {
  s_batch : int;
  s_requests : int;
  s_wall : float;
  s_throughput : float;
  s_hit_rate : float;
  s_iterations : int;
}

(* n solve requests cycling 5 radius variants — any window of >= 10
   consecutive requests repeats every geometry in it *)
let service_requests ~resolution n =
  Array.init n (fun i ->
      let geometry =
        { Service_protocol.default_geometry with
          radius_um = float_of_int (3 + (i mod 5));
        }
      in
      {
        Service_protocol.id = Printf.sprintf "q%d" i;
        kind =
          Service_protocol.Solve
            { geometry; resolution; tol = 1e-10; deadline_s = None };
      })

(* pooled hit rate of the service.cache.* counters in a registry
   snapshot — the same numbers [obs_check hitrate] reads off a trace *)
let service_registry_hit_rate snap =
  let prefixed name =
    String.length name > 14 && String.sub name 0 14 = "service.cache."
  in
  let ends_with suffix s =
    let ls = String.length suffix and l = String.length s in
    l >= ls && String.sub s (l - ls) ls = suffix
  in
  let hits = ref 0 and misses = ref 0 in
  List.iter
    (fun (name, sample) ->
      match sample with
      | Obs_metrics.C n when prefixed name ->
        if ends_with ".hits" name then hits := !hits + n
        else if ends_with ".misses" name then misses := !misses + n
      | _ -> ())
    snap;
  let total = !hits + !misses in
  if total = 0 then 0. else float_of_int !hits /. float_of_int total

let json_of_service_results runs =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"bench\": \"service\",\n";
  Buffer.add_string buf "  \"artefacts\": [\n";
  Buffer.add_string buf "    {\n      \"name\": \"serve_fv_repeated\",\n      \"runs\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "        { \"name\": \"batch%d\", \"batch\": %d, \"requests\": %d, \
            \"wall_s\": %.6f, \"throughput_rps\": %.3f, \"hit_rate\": %.4f, \
            \"iterations\": %d }%s\n"
           r.s_batch r.s_batch r.s_requests r.s_wall r.s_throughput r.s_hit_rate
           r.s_iterations
           (if i = List.length runs - 1 then "" else ",")))
    runs;
  Buffer.add_string buf "      ]\n    }\n  ]\n}\n";
  Buffer.contents buf

let run_service () =
  let small = precond_small () in
  E.Report.heading ppf
    (if small then "Service batch engine (small CI workload)"
     else "Service batch engine (throughput vs batch size)");
  ignore (E.Reference.block_coefficients ());
  let metrics_were_on = Ttsv_obs.Flags.metrics_on () in
  Ttsv_obs.Config.enable_metrics ();
  let resolution = if small then 1 else 2 in
  let batches = if small then [ 1; 10; 100 ] else [ 1; 10; 100; 1000 ] in
  let runs =
    List.map
      (fun batch ->
        let n = max batch 100 in
        let reqs = service_requests ~resolution n in
        Obs_metrics.reset ();
        let iterations = ref 0 in
        let (), wall_s =
          time (fun () ->
              let i = ref 0 in
              while !i < n do
                let group = Array.sub reqs !i (min batch (n - !i)) in
                (* a fresh engine per group: batch 1 never reuses
                   anything, batch 100 amortises 5 cold solves over 95
                   cache hits — the workload the gate is about *)
                let engine = Service_engine.create () in
                let responses = Service_engine.handle_batch engine group in
                Array.iter
                  (fun (r : Service_protocol.response) ->
                    match r.Service_protocol.result with
                    | Ok (Service_protocol.Solved s) ->
                      iterations := !iterations + s.Service_protocol.iterations
                    | Ok _ -> ()
                    | Error e ->
                      failwith
                        ("service bench: unexpected error response: "
                        ^ e.Service_protocol.message))
                  responses;
                i := !i + batch
              done)
        in
        let hit_rate = service_registry_hit_rate (Obs_metrics.snapshot ()) in
        let throughput = float_of_int n /. wall_s in
        Format.fprintf ppf
          "  batch=%-5d %4d requests  %8.3f s  %8.1f solves/s  hit rate %.2f  \
           (%d iterations)@."
          batch n wall_s throughput hit_rate !iterations;
        {
          s_batch = batch;
          s_requests = n;
          s_wall = wall_s;
          s_throughput = throughput;
          s_hit_rate = hit_rate;
          s_iterations = !iterations;
        })
      batches
  in
  (match runs with
  | { s_throughput = base; _ } :: _ ->
    List.iter
      (fun r ->
        if r.s_batch >= 100 then
          Format.fprintf ppf "  batch %d vs batch 1: %.1fx throughput@." r.s_batch
            (r.s_throughput /. base))
      runs
  | [] -> ());
  if not metrics_were_on then Ttsv_obs.Config.disable_metrics ();
  let oc = open_out service_json_path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (json_of_service_results runs));
  Format.fprintf ppf "@.wrote %s@." service_json_path

let artefacts : (string * (unit -> unit)) list =
  [
    ("fig4", fun () -> E.Fig4.print ppf ());
    ("fig5", fun () -> E.Fig5.print ppf ());
    ("fig6", fun () -> E.Fig6.print ppf ());
    ("fig7", fun () -> E.Fig7.print ppf ());
    ("table1", fun () -> E.Table1.print ppf ());
    ("case", fun () -> E.Case_study.print ppf ());
    ("ablation", fun () -> E.Ablation.print ppf ());
    ("convergence", fun () -> E.Convergence.print ppf ());
    ("shape", fun () -> E.Shape.print ppf ());
    ("sensitivity", fun () -> E.Sensitivity.print ppf ());
    ("nplanes", fun () -> E.Nplanes.print ppf ());
    ("variation", fun () -> E.Variation.print ppf ());
    ("nonlinear", fun () -> E.Nonlinear_study.print ppf ());
    ("fillers", fun () -> E.Fillers.print ppf ());
    ("micro", run_micro);
    ("parallel", run_parallel);
    ("precond", run_precond);
    ("multigrid", run_multigrid);
    ("service", run_service);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ :: [] | [] -> List.map fst artefacts
  in
  List.iter
    (fun name ->
      match List.assoc_opt name artefacts with
      | Some run ->
        Format.fprintf ppf "@.=== %s ===@." name;
        run ()
      | None ->
        Format.eprintf "unknown artefact %S; known: %s@." name
          (String.concat " " (List.map fst artefacts));
        exit 2)
    requested
