(* Tests for the finite-volume FEM substitute: grid geometry, problem
   construction, analytic slab oracles and conservation laws. *)

module Units = Ttsv_physics.Units
module Params = Ttsv_core.Params
module Grid = Ttsv_fem.Grid
module Problem = Ttsv_fem.Problem
module Solver = Ttsv_fem.Solver
module Stack = Ttsv_geometry.Stack
open Helpers

let grid_tests =
  [
    test "annulus areas tile the disc" (fun () ->
        let g =
          Grid.make
            ~r_faces:[| 0.; 1e-6; 3e-6; 1e-5 |]
            ~z_faces:[| 0.; 1e-6 |]
        in
        let total = ref 0. in
        for ir = 0 to Grid.nr g - 1 do
          total := !total +. Grid.axial_face_area g ir
        done;
        close_rel "pi R^2" (Float.pi *. 1e-10) !total);
    test "volumes tile the cylinder" (fun () ->
        let g =
          Grid.make
            ~r_faces:[| 0.; 2e-6; 1e-5 |]
            ~z_faces:[| 0.; 1e-6; 5e-6 |]
        in
        let total = ref 0. in
        for ir = 0 to Grid.nr g - 1 do
          for iz = 0 to Grid.nz g - 1 do
            total := !total +. Grid.volume g ir iz
          done
        done;
        close_rel "pi R^2 H" (Float.pi *. 1e-10 *. 5e-6) !total);
    test "radial face area" (fun () ->
        let g = Grid.make ~r_faces:[| 0.; 2e-6; 4e-6 |] ~z_faces:[| 0.; 3e-6 |] in
        close_rel "2 pi r dz" (2. *. Float.pi *. 2e-6 *. 3e-6) (Grid.radial_face_area g 0 0));
    test "validation" (fun () ->
        check_raises_invalid "not from zero" (fun () ->
            ignore (Grid.make ~r_faces:[| 1e-6; 2e-6 |] ~z_faces:[| 0.; 1e-6 |]));
        check_raises_invalid "non-increasing" (fun () ->
            ignore (Grid.make ~r_faces:[| 0.; 2e-6; 2e-6 |] ~z_faces:[| 0.; 1e-6 |])));
    test "refine_interval" (fun () ->
        match Grid.refine_interval 0. 1. 4 with
        | [ a; b; c ] ->
          close "a" 0.25 a;
          close "b" 0.5 b;
          close "c" 0.75 c
        | _ -> Alcotest.fail "wrong count");
    test "geometric_interval widths grow by the ratio" (fun () ->
        match Grid.geometric_interval 0. 7. 3 2. with
        | [ a; b ] ->
          close_rel "first width 1" 1. a;
          close_rel "second width 2" 3. b
        | _ -> Alcotest.fail "wrong count");
  ]

let problem_tests =
  [
    test "total source matches the analytic heat inputs" (fun () ->
        let stack = Params.block () in
        let p = Problem.of_stack stack in
        close_rel ~tol:1e-9 "wattage"
          (Ttsv_numerics.Vec.sum (Stack.heat_inputs stack))
          (Problem.total_source p));
    test "source scales with resolution-invariant wattage" (fun () ->
        let stack = Params.block () in
        let p1 = Problem.of_stack ~resolution:1 stack in
        let p2 = Problem.of_stack ~resolution:2 stack in
        close_rel ~tol:1e-9 "same total" (Problem.total_source p1) (Problem.total_source p2));
    test "axis cell inside the TSV span is copper" (fun () ->
        let stack = Params.block () in
        let p = Problem.of_stack stack in
        let g = p.Problem.grid in
        (* a z safely inside plane-2 substrate: tSi1 + tD1 + tb + tSi2/2 *)
        let z = Units.um (500. +. 4. +. 1. +. 22.) in
        let iz = ref 0 in
        for j = 0 to Grid.nz g - 1 do
          if Grid.z_center g j < z then iz := j
        done;
        close "k copper" 400. p.Problem.conductivity.(Grid.index g 0 !iz));
    test "outer cell below the TSV tip is silicon" (fun () ->
        let stack = Params.block () in
        let p = Problem.of_stack stack in
        let g = p.Problem.grid in
        close "k si" 150. p.Problem.conductivity.(Grid.index g (Grid.nr g - 1) 0));
    test "make validates lengths and positivity" (fun () ->
        let g = Grid.make ~r_faces:[| 0.; 1e-6 |] ~z_faces:[| 0.; 1e-6 |] in
        check_raises_invalid "length" (fun () ->
            ignore (Problem.make ~grid:g ~conductivity:[| 1.; 2. |] ~source:[| 0. |]));
        check_raises_invalid "positivity" (fun () ->
            ignore (Problem.make ~grid:g ~conductivity:[| 0. |] ~source:[| 0. |])));
    test "resolution must be >= 1" (fun () ->
        check_raises_invalid "resolution" (fun () ->
            ignore (Problem.of_stack ~resolution:0 (Params.block ()))));
  ]

(* Analytic oracle: a layered slab with flux q on top has
   dT(surface) = q * sum t_i/(k_i A).  The discrete maximum lives at the top
   cell's centre, half a cell below the surface, so the expectation subtracts
   that half-cell. *)
let slab_oracle layers =
  let radius = 1e-4 in
  let cells_per_layer = 20 in
  let area = Float.pi *. radius *. radius in
  let q = 0.5 in
  let p = Problem.uniform_column ~layers ~radius ~cells_per_layer ~top_flux:q in
  let res = Solver.solve p in
  let surface = q *. List.fold_left (fun acc (t, k) -> acc +. (t /. (k *. area))) 0. layers in
  let t_last, k_last = List.nth layers (List.length layers - 1) in
  let half_cell = q *. (t_last /. float_of_int cells_per_layer /. 2.) /. (k_last *. area) in
  (Solver.max_rise res, surface -. half_cell, res)

let solver_tests =
  [
    test "single-material slab matches series resistance" (fun () ->
        let got, expected, _ = slab_oracle [ (1e-4, 150.) ] in
        close_rel ~tol:1e-6 "dT" expected got);
    test "three-layer slab with contrast 1000x matches" (fun () ->
        let got, expected, _ = slab_oracle [ (1e-4, 150.); (5e-6, 0.15); (2e-5, 1.4) ] in
        close_rel ~tol:1e-6 "dT" expected got);
    test "energy conservation on the slab" (fun () ->
        let _, _, res = slab_oracle [ (1e-4, 150.); (1e-5, 1.4) ] in
        Alcotest.(check bool) "balance" true (Solver.energy_imbalance res < 1e-8));
    test "energy conservation on the paper block" (fun () ->
        let res = Solver.solve (Problem.of_stack (Params.block ())) in
        Alcotest.(check bool) "balance" true (Solver.energy_imbalance res < 1e-6));
    test "volumetric heating of a uniform slab matches the parabola" (fun () ->
        (* uniform k, uniform q''': T(z) = (q'''/k)(H z - z^2/2); peak at top *)
        let radius = 1e-4 and h = 1e-4 and k = 10. and qv = 1e9 in
        let nz = 60 in
        let z_faces = Array.init (nz + 1) (fun i -> h *. float_of_int i /. float_of_int nz) in
        let r_faces = [| 0.; radius |] in
        let g = Grid.make ~r_faces ~z_faces in
        let n = Grid.cells g in
        let conductivity = Array.make n k in
        let source = Array.init n (fun idx -> qv *. Grid.volume g 0 (idx / Grid.nr g)) in
        let p = Problem.make ~grid:g ~conductivity ~source in
        let res = Solver.solve p in
        let expected = qv /. k *. ((h *. h) -. (h *. h /. 2.)) in
        close_rel ~tol:1e-3 "peak" expected (Solver.max_rise res));
    test "hotter at the top: axis profile is monotone for the block" (fun () ->
        let res = Solver.solve (Problem.of_stack (Params.block ())) in
        let profile = Solver.axis_profile res in
        Alcotest.(check bool) "top > bottom" true
          (snd profile.(Array.length profile - 1) > snd profile.(0)));
    test "top profile peaks away from the TSV" (fun () ->
        (* the TTSV outlet is the coolest spot of the top surface *)
        let res = Solver.solve (Problem.of_stack (Params.block ())) in
        let profile = Solver.top_rise_profile res in
        let center = snd profile.(0) in
        let edge = snd profile.(Array.length profile - 1) in
        Alcotest.(check bool) "edge hotter than TSV center" true (edge >= center));
    test "rise_at agrees with max somewhere on the top row" (fun () ->
        let res = Solver.solve (Problem.of_stack (Params.block ())) in
        let g = res.Solver.problem.Problem.grid in
        let top = Solver.rise_at res ~r:(Grid.outer_radius g) ~z:(Grid.height g) in
        Alcotest.(check bool) "close to max" true (top > 0.9 *. Solver.max_rise res));
    test "mesh refinement converges monotonically for the block" (fun () ->
        let stack = Params.block () in
        let rise r = Solver.max_rise (Solver.solve (Problem.of_stack ~resolution:r stack)) in
        let r1 = rise 1 and r2 = rise 2 and r3 = rise 3 in
        Alcotest.(check bool) "shrinking increments" true
          (Float.abs (r3 -. r2) < Float.abs (r2 -. r1)));
  ]

let property_tests =
  [
    qtest ~count:10 "energy is conserved on random stacks" gen_stack3 (fun s ->
        let res = Solver.solve (Problem.of_stack s) in
        Solver.energy_imbalance res < 1e-6);
    qtest ~count:10 "FV rise is positive and bounded by a no-TSV bound" gen_stack3 (fun s ->
        let res = Solver.solve (Problem.of_stack s) in
        let rise = Solver.max_rise res in
        (* crude upper bound: all heat through the full stack in series over
           the footprint, without any TSV *)
        let bound =
          let acc = ref 0. in
          for i = 0 to Stack.num_planes s - 1 do
            let p = Stack.plane s i in
            acc :=
              !acc
              +. (p.Ttsv_geometry.Plane.t_ild /. 1.4)
              +. (p.Ttsv_geometry.Plane.t_substrate /. 150.)
              +. (p.Ttsv_geometry.Plane.t_bond /. 0.15)
          done;
          Stack.total_heat s *. !acc /. s.Stack.footprint
        in
        rise > 0. && rise < bound);
  ]

let suite = ("fem", grid_tests @ problem_tests @ solver_tests @ property_tests)
