(* Cross-module integration tests: independent implementations of the same
   physics must agree. *)

module Units = Ttsv_physics.Units
module Params = Ttsv_core.Params
module Model_a = Ttsv_core.Model_a
module Model_b = Ttsv_core.Model_b
module Model_1d = Ttsv_core.Model_1d
module Cluster = Ttsv_core.Cluster
module Coefficients = Ttsv_core.Coefficients
module Calibrate = Ttsv_core.Calibrate
module Package = Ttsv_core.Package
module Stack = Ttsv_geometry.Stack
module Problem = Ttsv_fem.Problem
module Solver = Ttsv_fem.Solver
module Joule = Ttsv_electrical.Joule
module Report = Ttsv_experiments.Report
module Export = Ttsv_experiments.Export
open Helpers

let integration_tests =
  [
    test "calibrated Model A beats the unity coefficients on the reference" (fun () ->
        let stacks = List.map (fun tl -> Params.fig5_stack (Units.um tl)) [ 0.5; 1.5; 3. ] in
        let samples =
          List.map
            (fun stack ->
              {
                Calibrate.stack;
                reference = Solver.max_rise (Solver.solve (Problem.of_stack ~resolution:2 stack));
              })
            stacks
        in
        let fit = Calibrate.fit samples in
        Alcotest.(check bool) "improves" true
          (Calibrate.objective fit.Calibrate.coefficients samples
          < Calibrate.objective Coefficients.unity samples);
        (* and the fitted constants land in the paper's neighbourhood *)
        Alcotest.(check bool) "k1 near paper" true
          (Float.abs (fit.Calibrate.coefficients.Coefficients.k1 -. 1.3) < 0.4);
        Alcotest.(check bool) "k2 near paper" true
          (Float.abs (fit.Calibrate.coefficients.Coefficients.k2 -. 0.55) < 0.4));
    test "Model B(500) tracks the FV reference on a random stack" (fun () ->
        let stack = Params.block ~r:(Units.um 7.) ~t_si23:(Units.um 30.) () in
        let b = Model_b.max_rise (Model_b.solve_n stack 500) in
        let fv = Solver.max_rise (Solver.solve (Problem.of_stack ~resolution:2 stack)) in
        Alcotest.(check bool)
          (Printf.sprintf "B=%.2f vs FV=%.2f" b fv)
          true
          (Float.abs (b -. fv) /. fv < 0.06));
    test "cluster: Model B with ~eq. 22 rungs orders like Model A with eq. 22" (fun () ->
        let stack = Params.fig7_stack () in
        List.iter
          (fun (n1, n2) ->
            let a1 = Model_a.max_rise (Cluster.solve stack n1) in
            let a2 = Model_a.max_rise (Cluster.solve stack n2) in
            let b1 = Model_b.max_rise (Model_b.solve_n ~cluster:n1 stack 100) in
            let b2 = Model_b.max_rise (Model_b.solve_n ~cluster:n2 stack 100) in
            Alcotest.(check bool) "same ordering" true ((a1 > a2) = (b1 > b2)))
          [ (1, 4); (4, 9); (9, 16) ]);
    test "Joule baseline equals Model A" (fun () ->
        let stack = Params.block () in
        let r =
          Joule.solve ~sink_temperature_k:(Units.kelvin_of_celsius 27.) ~current_rms:0. stack
        in
        close_rel ~tol:1e-9 "baseline" (Model_a.max_rise (Model_a.solve stack)) r.Joule.rise);
    test "package junction commutes with the model rise" (fun () ->
        let stack = Params.block () in
        let rise = Model_a.max_rise (Model_a.solve stack) in
        let total_power = Stack.total_heat stack in
        let pkg = Package.make ~ambient:25. ~resistance:2. () in
        let tj = Package.junction_temperature pkg ~total_power ~model_rise:rise in
        close_rel "additive" (25. +. (2. *. total_power) +. rise) tj);
    test "exported CSV of a computed figure parses back to the same numbers" (fun () ->
        let fig =
          Report.figure ~title:"t" ~x_label:"x" ~x_unit:"u" ~xs:[| 1.; 2.; 3. |]
            [
              {
                Report.label = "A";
                ys =
                  Array.map
                    (fun r ->
                      Model_a.max_rise (Model_a.solve (Params.fig4_stack (Units.um r))))
                    [| 1.; 2.; 3. |];
              };
            ]
        in
        let csv = Export.figure_to_string fig in
        let lines = List.tl (String.split_on_char '\n' (String.trim csv)) in
        List.iteri
          (fun i line ->
            match String.split_on_char ',' line with
            | [ _; v ] ->
              close_rel ~tol:1e-8 "roundtrip" (List.nth (List.map (fun s -> s.Report.ys) fig.Report.series) 0).(i)
                (float_of_string v)
            | _ -> Alcotest.fail "bad row")
          lines);
    test "the three models rank consistently on the paper block" (fun () ->
        (* on the default block the 1-D model overestimates while a fitted
           Model A and Model B straddle the FV truth *)
        let stack = Params.fig5_stack (Units.um 1.) in
        let fv = Solver.max_rise (Solver.solve (Problem.of_stack ~resolution:2 stack)) in
        let one_d = Model_1d.max_rise (Model_1d.solve stack) in
        let b = Model_b.max_rise (Model_b.solve_n stack 100) in
        Alcotest.(check bool) "1-D above FV" true (one_d > fv);
        Alcotest.(check bool) "B within 5% of FV" true (Float.abs (b -. fv) /. fv < 0.05));
    test "tsv heat share rises with radius" (fun () ->
        let share r_um =
          let stack = Params.block ~r:(Units.um r_um) () in
          let r = Model_a.solve stack in
          r.Model_a.tsv_heat /. Stack.total_heat stack
        in
        Alcotest.(check bool) "monotone" true (share 2. < share 5. && share 5. < share 10.);
        Alcotest.(check bool) "meaningful" true (share 10. > 0.3));
  ]

let suite = ("integration", integration_tests)

(* Filler-material study checks (appended: uses the same integration deps). *)
let filler_tests =
  let module Fillers = Ttsv_experiments.Fillers in
  [
    test "worse fillers run hotter in every solver" (fun () ->
        let table = Fillers.run ~resolution:1 () in
        let value row col =
          match List.nth table.Report.rows row with
          | _, cells -> float_of_string (List.nth cells col)
        in
        (* rows ordered copper, tungsten, poly-Si; columns A, B, FV *)
        for col = 0 to 2 do
          Alcotest.(check bool) "Cu < W" true (value 0 col < value 1 col);
          Alcotest.(check bool) "W < poly" true (value 1 col < value 2 col)
        done);
    test "equivalent radius ordering" (fun () ->
        let module Materials = Ttsv_physics.Materials in
        let r_cu = Fillers.equivalent_radius Materials.copper in
        let r_w = Fillers.equivalent_radius Materials.tungsten in
        close_rel "copper matches itself at 5 um" 5e-6 r_cu;
        Alcotest.(check bool) "tungsten needs more metal" true (r_w > 5e-6 && r_w < 2e-5));
  ]

let suite =
  let name, tests = suite in
  (name, tests @ filler_tests)
