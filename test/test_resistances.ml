(* Tests for the eq. 7-16 resistance formulas. *)

module Units = Ttsv_physics.Units
module Params = Ttsv_core.Params
module Coefficients = Ttsv_core.Coefficients
module Resistances = Ttsv_core.Resistances
module Stack = Ttsv_geometry.Stack
open Helpers

(* Independent re-derivation of the eq. 7-16 values for the default block
   (r=5, tL=1, tD=4, tb=1, tSi23=45, tSi1=500, lext=1; k_Si=150, k_D=1.4,
   k_b=0.15, k_f=400, k_L=1.4), written as literal arithmetic so the test is
   an oracle rather than a copy of the implementation. *)
let hand_computed () =
  let um = 1e-6 in
  let a0 = 1e-8 in
  let a = a0 -. (Float.pi *. ((6. *. um) ** 2.)) in
  let fill = Float.pi *. ((5. *. um) ** 2.) in
  let lat span = log (6. /. 5.) /. (2. *. Float.pi *. 1.4 *. span) in
  let r1 = ((4. *. um /. 1.4) +. (1. *. um /. 150.)) /. a in
  let r2 = 5. *. um /. (400. *. fill) in
  let r3 = lat (5. *. um) in
  let r4 = ((4. *. um /. 1.4) +. (45. *. um /. 150.) +. (1. *. um /. 0.15)) /. a in
  let r5 = 50. *. um /. (400. *. fill) in
  let r6 = lat (50. *. um) in
  let r7 = r4 in
  let r8 = 46. *. um /. (400. *. fill) in
  let r9 = lat (46. *. um) in
  let rs = 499. *. um /. (150. *. a0) in
  (r1, r2, r3, r4, r5, r6, r7, r8, r9, rs)

let unit_tests =
  [
    test "eq. 7-16 on the paper block (unity coefficients)" (fun () ->
        let rs = Resistances.of_stack (Params.block ()) in
        let r1, r2, r3, r4, r5, r6, r7, r8, r9, rsink = hand_computed () in
        let t = rs.Resistances.triples in
        close_rel "R1" r1 t.(0).Resistances.bulk;
        close_rel "R2" r2 t.(0).Resistances.tsv;
        close_rel "R3" r3 t.(0).Resistances.liner;
        close_rel "R4" r4 t.(1).Resistances.bulk;
        close_rel "R5" r5 t.(1).Resistances.tsv;
        close_rel "R6" r6 t.(1).Resistances.liner;
        close_rel "R7" r7 t.(2).Resistances.bulk;
        close_rel "R8" r8 t.(2).Resistances.tsv;
        close_rel "R9" r9 t.(2).Resistances.liner;
        close_rel "Rs" rsink rs.Resistances.r_sink);
    test "k1 divides vertical resistances and Rs" (fun () ->
        let stack = Params.block () in
        let base = Resistances.of_stack stack in
        let scaled =
          Resistances.of_stack ~coeffs:(Coefficients.make ~k1:2. ~k2:1.) stack
        in
        Array.iteri
          (fun i (tr : Resistances.triple) ->
            let b = base.Resistances.triples.(i) in
            close_rel "bulk" (b.Resistances.bulk /. 2.) tr.Resistances.bulk;
            close_rel "tsv" (b.Resistances.tsv /. 2.) tr.Resistances.tsv;
            close_rel "liner unchanged" b.Resistances.liner tr.Resistances.liner)
          scaled.Resistances.triples;
        close_rel "Rs" (base.Resistances.r_sink /. 2.) scaled.Resistances.r_sink);
    test "k2 divides only the liner resistances" (fun () ->
        let stack = Params.block () in
        let base = Resistances.of_stack stack in
        let scaled =
          Resistances.of_stack ~coeffs:(Coefficients.make ~k1:1. ~k2:4.) stack
        in
        Array.iteri
          (fun i (tr : Resistances.triple) ->
            let b = base.Resistances.triples.(i) in
            close_rel "liner" (b.Resistances.liner /. 4.) tr.Resistances.liner;
            close_rel "bulk unchanged" b.Resistances.bulk tr.Resistances.bulk)
          scaled.Resistances.triples);
    test "plane spans per the paper" (fun () ->
        let s = Params.block () in
        close_rel "plane1: tD+lext" (Units.um 5.) (Resistances.plane_span s 0);
        close_rel "plane2: tb+tSi+tD" (Units.um 50.) (Resistances.plane_span s 1);
        close_rel "plane3: tb+tSi" (Units.um 46.) (Resistances.plane_span s 2));
    test "coefficients validation" (fun () ->
        check_raises_invalid "k1" (fun () -> ignore (Coefficients.make ~k1:0. ~k2:1.)));
    test "paper coefficient presets" (fun () ->
        close "k1" 1.3 Coefficients.paper_block.Coefficients.k1;
        close "k2" 0.55 Coefficients.paper_block.Coefficients.k2;
        close "case k1" 1.6 Coefficients.paper_case_study.Coefficients.k1;
        close "case k2" 0.8 Coefficients.paper_case_study.Coefficients.k2);
  ]

let property_tests =
  [
    qtest ~count:40 "all resistances are positive and finite" gen_stack (fun s ->
        let rs = Resistances.of_stack s in
        rs.Resistances.r_sink > 0.
        && Array.for_all
             (fun (t : Resistances.triple) ->
               t.Resistances.bulk > 0. && t.Resistances.tsv > 0. && t.Resistances.liner > 0.
               && Float.is_finite t.Resistances.bulk)
             rs.Resistances.triples);
    qtest ~count:40 "larger radius lowers the TSV and liner resistances" gen_stack3 (fun s ->
        let bigger =
          Stack.with_tsv s (Ttsv_geometry.Tsv.with_radius s.Stack.tsv (s.Stack.tsv.Ttsv_geometry.Tsv.radius *. 1.5))
        in
        let r = Resistances.of_stack s and r' = Resistances.of_stack bigger in
        Array.for_all2
          (fun (a : Resistances.triple) (b : Resistances.triple) ->
            b.Resistances.tsv < a.Resistances.tsv && b.Resistances.liner < a.Resistances.liner)
          r.Resistances.triples r'.Resistances.triples);
    qtest ~count:40 "thicker liner raises only the liner resistance" gen_stack3 (fun s ->
        let thicker =
          Stack.with_tsv s
            (Ttsv_geometry.Tsv.with_liner_thickness s.Stack.tsv
               (s.Stack.tsv.Ttsv_geometry.Tsv.liner_thickness *. 2.))
        in
        let r = Resistances.of_stack s and r' = Resistances.of_stack thicker in
        Array.for_all2
          (fun (a : Resistances.triple) (b : Resistances.triple) ->
            b.Resistances.liner > a.Resistances.liner
            && Float.abs (b.Resistances.tsv -. a.Resistances.tsv)
               <= 1e-12 *. a.Resistances.tsv)
          r.Resistances.triples r'.Resistances.triples);
  ]

let suite = ("resistances", unit_tests @ property_tests)
