(* Tests for the k1/k2 calibration. *)

module Params = Ttsv_core.Params
module Units = Ttsv_physics.Units
module Model_a = Ttsv_core.Model_a
module Calibrate = Ttsv_core.Calibrate
module Coefficients = Ttsv_core.Coefficients
open Helpers

(* synthetic references produced by Model A itself with known coefficients:
   the fit must recover them *)
let synthetic coeffs =
  List.map
    (fun tl ->
      let stack = Params.fig5_stack (Units.um tl) in
      { Calibrate.stack; reference = Model_a.max_rise (Model_a.solve ~coeffs stack) })
    [ 0.5; 1.5; 3. ]

let unit_tests =
  [
    test "recovers known coefficients from synthetic references" (fun () ->
        let truth = Coefficients.make ~k1:1.2 ~k2:0.7 in
        let fit = Calibrate.fit (synthetic truth) in
        close_rel ~tol:0.02 "k1" 1.2 fit.Calibrate.coefficients.Coefficients.k1;
        close_rel ~tol:0.05 "k2" 0.7 fit.Calibrate.coefficients.Coefficients.k2;
        Alcotest.(check bool) "rms tiny" true (fit.Calibrate.rms_rel_error < 1e-4));
    test "objective at the truth is (near) zero" (fun () ->
        let truth = Coefficients.make ~k1:1.4 ~k2:0.6 in
        close ~tol:1e-12 "objective" 0. (Calibrate.objective truth (synthetic truth)));
    test "fit improves on the initial guess" (fun () ->
        let truth = Coefficients.make ~k1:1.5 ~k2:0.5 in
        let samples = synthetic truth in
        let initial = Coefficients.unity in
        let fit = Calibrate.fit ~initial samples in
        Alcotest.(check bool) "improved" true
          (Calibrate.objective fit.Calibrate.coefficients samples
          < Calibrate.objective initial samples));
    test "empty samples rejected" (fun () ->
        check_raises_invalid "empty" (fun () -> ignore (Calibrate.fit [])));
    test "nonpositive reference rejected" (fun () ->
        check_raises_invalid "reference" (fun () ->
            ignore (Calibrate.fit [ { Calibrate.stack = Params.block (); reference = 0. } ])));
  ]

let property_tests =
  [
    qtest ~count:8 "recovery across random truths"
      QCheck2.Gen.(pair (float_range 0.8 2.) (float_range 0.3 1.5))
      (fun (k1, k2) ->
        let truth = Coefficients.make ~k1 ~k2 in
        let fit = Calibrate.fit (synthetic truth) in
        fit.Calibrate.rms_rel_error < 1e-3);
  ]

let suite = ("calibrate", unit_tests @ property_tests)
