(* Golden regression values: Table I model-vs-FV errors and the Fig. 5
   midpoint temperatures, frozen at resolution 1.  Every number in this
   file was produced by the current implementation; the suite exists to
   catch unintended numerical drift from future refactors (assembly,
   solver or reduction changes), not to validate against the paper —
   test_experiments does that.  A legitimate numerical change (e.g. a
   different reduction grouping) must update these constants
   deliberately. *)

module E = Ttsv_experiments
module Params = Ttsv_core.Params
module Model_a = Ttsv_core.Model_a
module Model_b = Ttsv_core.Model_b
module Model_1d = Ttsv_core.Model_1d
module Stack = Ttsv_geometry.Stack
module Units = Ttsv_physics.Units
module Problem = Ttsv_fem.Problem
module Solver = Ttsv_fem.Solver
open Helpers

(* (label, max relative error, average relative error) per Table I row *)
let table1_golden =
  [
    ("B (1)", 0.27494732103897818, 0.24952187663708755);
    ("B (20)", 0.082624334631298452, 0.06380153822009331);
    ("B (100)", 0.03452930500835337, 0.020480664182264772);
    ("B (500)", 0.031423861904074139, 0.015876300199454966);
    ("A (fitted)", 0.030733826015117267, 0.02496461507748873);
    ("A (paper k)", 0.073590890272334203, 0.064244169189457453);
    ("1-D", 0.12311523484228305, 0.067210523684680321);
  ]

let golden_tests =
  [
    test "Table I errors match the frozen values" (fun () ->
        let rows = E.Table1.run ~resolution:1 () in
        List.iter
          (fun (label, max_err, avg_err) ->
            match
              List.find_opt (fun (r : E.Table1.row) -> r.E.Table1.label = label) rows
            with
            | None -> Alcotest.fail (Printf.sprintf "Table I row %S disappeared" label)
            | Some row ->
              close_rel ~tol:1e-6
                (Printf.sprintf "%s max err" label)
                max_err row.E.Table1.max_err;
              close_rel ~tol:1e-6
                (Printf.sprintf "%s avg err" label)
                avg_err row.E.Table1.avg_err)
          table1_golden);
    test "Fig. 5 midpoint temperatures match the frozen values" (fun () ->
        let stack = Params.fig5_stack (Units.um 1.) in
        let coeffs = E.Reference.block_coefficients () in
        close_rel ~tol:1e-6 "Model A" 37.546770032496546
          (Model_a.max_rise (Model_a.solve ~coeffs stack));
        close_rel ~tol:1e-6 "Model B(100)" 38.843515860690466
          (Model_b.max_rise (Model_b.solve_n stack 100));
        close_rel ~tol:1e-6 "Model 1D" 42.14961702566702
          (Model_1d.max_rise (Model_1d.solve stack));
        let res = Solver.solve (Problem.of_stack ~resolution:1 stack) in
        close_rel ~tol:1e-6 "FV max" 38.737315961551495 (Solver.max_rise res);
        close_rel ~tol:1e-6 "FV mid-height axis" 7.2031972647995639
          (Solver.rise_at res ~r:0. ~z:(Stack.total_height stack /. 2.)));
  ]

(* Mesh independence of the multigrid rung, frozen as iteration bands:
   CG+V-cycle counts must sit in a narrow band that does NOT widen with
   resolution (the counts at freeze time were 23/19/20/22 for
   resolutions 3..6).  IC(0) climbs from ~160 to ~260 over the same
   sweep, so a band violation means the hierarchy regressed — a
   legitimate multigrid change (smoother degree, coarsening rule) may
   move counts within the band or force a deliberate re-freeze. *)
let multigrid_band_tests =
  [
    test "2-D mg-CG iterations stay in the frozen band across resolutions" (fun () ->
        let stack = Params.fig5_stack (Units.um 1.) in
        let counts =
          List.map
            (fun resolution ->
              let p = Problem.of_stack ~resolution stack in
              let r = Solver.solve ~rungs:[ Ttsv_robust.Diagnostics.Cg_mg ] p in
              (match r.Solver.diagnostics.Ttsv_robust.Diagnostics.solved_by with
              | Some Ttsv_robust.Diagnostics.Cg_mg -> ()
              | _ -> Alcotest.fail "solve did not come from the multigrid rung");
              (resolution, r.Solver.iterations))
            [ 3; 4; 5; 6 ]
        in
        List.iter
          (fun (resolution, iters) ->
            Alcotest.(check bool)
              (Printf.sprintf "resolution %d: %d iterations within [15, 30]" resolution
                 iters)
              true
              (iters >= 15 && iters <= 30))
          counts;
        let iters = List.map snd counts in
        let lo = List.fold_left Stdlib.min max_int iters in
        let hi = List.fold_left Stdlib.max 0 iters in
        Alcotest.(check bool)
          (Printf.sprintf "finest/coarsest growth %d/%d within 1.5x" hi lo)
          true
          (float_of_int hi <= 1.5 *. float_of_int lo));
    test "3-D mg-CG iterations stay in the frozen band" (fun () ->
        let stack = Params.fig5_stack (Units.um 1.) in
        let p = Ttsv_fem.Problem3.of_stack ~resolution:1 stack in
        let r = Ttsv_fem.Solver3.solve ~rungs:[ Ttsv_robust.Diagnostics.Cg_mg ] p in
        (match r.Ttsv_fem.Solver3.diagnostics.Ttsv_robust.Diagnostics.solved_by with
        | Some Ttsv_robust.Diagnostics.Cg_mg -> ()
        | _ -> Alcotest.fail "solve did not come from the multigrid rung");
        (* frozen at 32 iterations for 156k cells; ic0 needs ~360 *)
        Alcotest.(check bool)
          (Printf.sprintf "%d iterations within [20, 45]" r.Ttsv_fem.Solver3.iterations)
          true
          (r.Ttsv_fem.Solver3.iterations >= 20 && r.Ttsv_fem.Solver3.iterations <= 45));
  ]

let suite = ("golden", golden_tests @ multigrid_band_tests)
