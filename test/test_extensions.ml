(* Tests for the variation study, the N-plane scaling experiment and the
   ASCII plot renderer. *)

module Variation = Ttsv_experiments.Variation
module Nplanes = Ttsv_experiments.Nplanes
module Ascii_plot = Ttsv_experiments.Ascii_plot
module Report = Ttsv_experiments.Report
module Model_a = Ttsv_core.Model_a
module Stack = Ttsv_geometry.Stack
open Helpers

let variation_tests =
  [
    test "deterministic for a fixed seed" (fun () ->
        let a = Variation.run ~samples:200 () in
        let b = Variation.run ~samples:200 () in
        close_rel "same mean" a.Variation.mean b.Variation.mean;
        close_rel "same worst" a.Variation.worst b.Variation.worst);
    test "order statistics are ordered" (fun () ->
        let s = Variation.run ~samples:500 () in
        Alcotest.(check bool) "p5<=p50" true (s.Variation.p5 <= s.Variation.p50);
        Alcotest.(check bool) "p50<=p95" true (s.Variation.p50 <= s.Variation.p95);
        Alcotest.(check bool) "p95<=p99" true (s.Variation.p95 <= s.Variation.p99);
        Alcotest.(check bool) "p99<=worst" true (s.Variation.p99 <= s.Variation.worst));
    test "mean is near the nominal design" (fun () ->
        let s = Variation.run ~samples:1000 () in
        let nominal =
          Model_a.max_rise
            (Model_a.solve ~coeffs:Ttsv_core.Params.block_coeffs
               (Ttsv_core.Params.fig5_stack (Ttsv_physics.Units.um 1.)))
        in
        close_rel ~tol:0.05 "centered" nominal s.Variation.mean);
    test "zero tolerances collapse the distribution" (fun () ->
        let tol =
          {
            Variation.radius_sigma = 0.;
            liner_sigma = 0.;
            substrate_sigma = 0.;
            conductivity_sigma = 0.;
          }
        in
        let s = Variation.run ~samples:50 ~tolerances:tol () in
        close ~tol:1e-9 "no spread" 0. s.Variation.stddev;
        close_rel "yield 1" 1. s.Variation.yield_at_budget);
    test "larger tolerances widen the distribution" (fun () ->
        let wide =
          {
            Variation.radius_sigma = 0.15;
            liner_sigma = 0.3;
            substrate_sigma = 0.15;
            conductivity_sigma = 0.15;
          }
        in
        let a = Variation.run ~samples:1000 () in
        let b = Variation.run ~samples:1000 ~tolerances:wide () in
        Alcotest.(check bool) "wider" true (b.Variation.stddev > a.Variation.stddev));
    test "budget controls yield" (fun () ->
        let tight = Variation.run ~samples:500 ~budget:1. () in
        let loose = Variation.run ~samples:500 ~budget:1000. () in
        close_rel "loose yield 1" 1. loose.Variation.yield_at_budget;
        Alcotest.(check bool) "tight yield 0" true (tight.Variation.yield_at_budget < 0.01));
  ]

let nplanes_tests =
  [
    test "stacks have the requested plane count" (fun () ->
        List.iter
          (fun n -> Alcotest.(check int) "planes" n (Stack.num_planes (Nplanes.stack_with_planes n)))
          Nplanes.plane_counts);
    test "superlinear growth with plane count (Model A)" (fun () ->
        let rise n =
          Model_a.max_rise
            (Model_a.solve ~coeffs:Ttsv_core.Params.block_coeffs (Nplanes.stack_with_planes n))
        in
        let r2 = rise 2 and r4 = rise 4 and r8 = rise 8 in
        Alcotest.(check bool) "monotone" true (r2 < r4 && r4 < r8);
        (* superlinear: doubling the planes more than doubles the rise *)
        Alcotest.(check bool) "superlinear 2->4" true (r4 > 2. *. r2);
        Alcotest.(check bool) "superlinear 4->8" true (r8 > 2. *. r4));
    test "validation" (fun () ->
        check_raises_invalid "planes" (fun () -> ignore (Nplanes.stack_with_planes 1)));
  ]

let sample_figure () =
  Report.figure ~title:"sample" ~x_label:"x" ~x_unit:"u" ~xs:[| 0.; 1.; 2. |]
    [
      { Report.label = "up"; ys = [| 0.; 1.; 2. |] };
      { Report.label = "down"; ys = [| 2.; 1.; 0. |] };
    ]

let plot_tests =
  [
    test "render contains title, legend and markers" (fun () ->
        let s = Ascii_plot.render (sample_figure ()) in
        let contains needle =
          let n = String.length s and m = String.length needle in
          let rec scan i = i + m <= n && (String.sub s i m = needle || scan (i + 1)) in
          scan 0
        in
        Alcotest.(check bool) "title" true (contains "sample");
        Alcotest.(check bool) "legend up" true (contains "* up");
        Alcotest.(check bool) "legend down" true (contains "o down");
        Alcotest.(check bool) "axis label" true (contains "(x [u])"));
    test "render has the requested height" (fun () ->
        let s = Ascii_plot.render ~width:40 ~height:10 (sample_figure ()) in
        let lines = List.length (String.split_on_char '\n' (String.trim s)) in
        (* title + 10 canvas rows + axis + labels + 2 legend entries *)
        Alcotest.(check int) "lines" 15 lines);
    test "constant series does not crash (degenerate range)" (fun () ->
        let fig =
          Report.figure ~title:"flat" ~x_label:"x" ~x_unit:"u" ~xs:[| 0.; 1. |]
            [ { Report.label = "c"; ys = [| 5.; 5. |] } ]
        in
        Alcotest.(check bool) "nonempty" true (String.length (Ascii_plot.render fig) > 0));
    test "canvas size validation" (fun () ->
        check_raises_invalid "too small" (fun () ->
            ignore (Ascii_plot.render ~width:5 ~height:3 (sample_figure ()))));
  ]

let suite = ("extensions", variation_tests @ nplanes_tests @ plot_tests)
