(* Tests for the CSR sparse matrix and its triplet builder. *)

module Sparse = Ttsv_numerics.Sparse
module Dense = Ttsv_numerics.Dense
module Vec = Ttsv_numerics.Vec
open Helpers

let unit_tests =
  [
    test "duplicates are summed" (fun () ->
        let b = Sparse.builder 2 2 in
        Sparse.add b 0 1 2.;
        Sparse.add b 0 1 3.;
        let m = Sparse.finalize b in
        close "summed" 5. (Sparse.get m 0 1);
        Alcotest.(check int) "one stored entry" 1 (Sparse.nnz m));
    test "out-of-range add raises" (fun () ->
        let b = Sparse.builder 2 2 in
        check_raises_invalid "row" (fun () -> Sparse.add b 2 0 1.);
        check_raises_invalid "col" (fun () -> Sparse.add b 0 (-1) 1.));
    test "empty matrix" (fun () ->
        let m = Sparse.finalize (Sparse.builder 3 3) in
        Alcotest.(check int) "nnz" 0 (Sparse.nnz m);
        close "getsz" 0. (Sparse.get m 1 1);
        let y = Sparse.mat_vec m [| 1.; 2.; 3. |] in
        close "mv" 0. (Vec.norm_inf y));
    test "mat_vec hand computed" (fun () ->
        let b = Sparse.builder 2 3 in
        Sparse.add b 0 0 1.;
        Sparse.add b 0 2 2.;
        Sparse.add b 1 1 3.;
        let m = Sparse.finalize b in
        let y = Sparse.mat_vec m [| 1.; 1.; 1. |] in
        close "y0" 3. y.(0);
        close "y1" 3. y.(1));
    test "diagonal extraction" (fun () ->
        let b = Sparse.builder 3 3 in
        Sparse.add b 0 0 4.;
        Sparse.add b 2 2 9.;
        Sparse.add b 0 1 7.;
        let d = Sparse.diagonal (Sparse.finalize b) in
        close "d0" 4. d.(0);
        close "d1" 0. d.(1);
        close "d2" 9. d.(2));
    test "builder growth beyond hint" (fun () ->
        let b = Sparse.builder ~hint:1 4 4 in
        for i = 0 to 3 do
          for j = 0 to 3 do
            Sparse.add b i j (float_of_int ((i * 4) + j))
          done
        done;
        let m = Sparse.finalize b in
        Alcotest.(check int) "nnz" 16 (Sparse.nnz m);
        close "last" 15. (Sparse.get m 3 3));
    test "transpose hand computed" (fun () ->
        let b = Sparse.builder 2 3 in
        Sparse.add b 0 2 5.;
        Sparse.add b 1 0 7.;
        let t = Sparse.transpose (Sparse.finalize b) in
        Alcotest.(check int) "rows" 3 (Sparse.rows t);
        close "t20" 5. (Sparse.get t 2 0);
        close "t01" 7. (Sparse.get t 0 1));
    test "is_symmetric detects asymmetry" (fun () ->
        let b = Sparse.builder 2 2 in
        Sparse.add b 0 1 1.;
        Alcotest.(check bool) "asym" false (Sparse.is_symmetric (Sparse.finalize b)));
  ]

let property_tests =
  [
    qtest ~count:40 "mat_vec agrees with dense mat_vec"
      QCheck2.Gen.(gen_spd 10 >>= fun m -> gen_vec 10 >|= fun x -> (m, x))
      (fun (m, x) ->
        Vec.approx_equal ~rtol:1e-12 ~atol:1e-12 (Sparse.mat_vec m x)
          (Dense.mat_vec (Sparse.to_dense m) x));
    qtest ~count:40 "of_dense/to_dense roundtrip" (gen_diag_dominant 7) (fun d ->
        Dense.approx_equal (Sparse.to_dense (Sparse.of_dense d)) d);
    qtest ~count:40 "transpose is involutive" (gen_spd 9) (fun m ->
        let tt = Sparse.transpose (Sparse.transpose m) in
        Dense.approx_equal (Sparse.to_dense tt) (Sparse.to_dense m));
    qtest ~count:40 "generated conductance matrices are symmetric" (gen_spd 12)
      Sparse.is_symmetric;
    qtest ~count:40 "get matches dense entry"
      QCheck2.Gen.(
        gen_spd 6 >>= fun m ->
        pair (int_range 0 5) (int_range 0 5) >|= fun (i, j) -> (m, i, j))
      (fun (m, i, j) -> Float.abs (Sparse.get m i j -. Dense.get (Sparse.to_dense m) i j) = 0.);
  ]

let suite = ("sparse", unit_tests @ property_tests)
