(* Tests for TSV electrical parasitics and Joule self-heating coupling. *)

module Units = Ttsv_physics.Units
module Params = Ttsv_core.Params
module Stack = Ttsv_geometry.Stack
module Parasitics = Ttsv_electrical.Parasitics
module Joule = Ttsv_electrical.Joule
open Helpers

let sink_k = Units.kelvin_of_celsius 27.

let parasitics_tests =
  [
    test "DC resistance hand computed" (fun () ->
        (* 100 um of copper, r = 5 um, at 293 K:
           1.72e-8 * 1e-4 / (pi * 25e-12) *)
        close_rel "R" (1.72e-8 *. 1e-4 /. (Float.pi *. 25e-12))
          (Parasitics.dc_resistance Parasitics.copper ~radius:5e-6 ~length:1e-4
             ~temp_k:293.15));
    test "resistivity rises with temperature" (fun () ->
        let r300 = Parasitics.resistivity Parasitics.copper ~temp_k:300. in
        let r400 = Parasitics.resistivity Parasitics.copper ~temp_k:400. in
        Alcotest.(check bool) "hotter is worse" true (r400 > r300);
        (* alpha=3.93e-3: 100 K adds ~39% *)
        close_rel ~tol:0.02 "39%" 1.39 (r400 /. r300));
    test "tungsten is more resistive than copper" (fun () ->
        Alcotest.(check bool) "W > Cu" true
          (Parasitics.resistivity Parasitics.tungsten ~temp_k:300.
          > Parasitics.resistivity Parasitics.copper ~temp_k:300.));
    test "skin depth shrinks with frequency" (fun () ->
        let d1 = Parasitics.skin_depth Parasitics.copper ~frequency:1e8 ~temp_k:300. in
        let d2 = Parasitics.skin_depth Parasitics.copper ~frequency:1e10 ~temp_k:300. in
        Alcotest.(check bool) "smaller" true (d2 < d1);
        close_rel ~tol:1e-6 "sqrt scaling" 10. (d1 /. d2));
    test "AC resistance reduces to DC at low frequency" (fun () ->
        let dc = Parasitics.dc_resistance Parasitics.copper ~radius:5e-6 ~length:1e-4 ~temp_k:300. in
        let ac =
          Parasitics.ac_resistance Parasitics.copper ~radius:5e-6 ~length:1e-4 ~frequency:1e6
            ~temp_k:300.
        in
        close_rel "same" dc ac);
    test "AC resistance exceeds DC once the skin depth bites" (fun () ->
        let dc =
          Parasitics.dc_resistance Parasitics.copper ~radius:20e-6 ~length:1e-4 ~temp_k:300.
        in
        let ac =
          Parasitics.ac_resistance Parasitics.copper ~radius:20e-6 ~length:1e-4
            ~frequency:1e10 ~temp_k:300.
        in
        Alcotest.(check bool) "skin effect" true (ac > dc));
    test "oxide capacitance hand computed" (fun () ->
        let c =
          Parasitics.oxide_capacitance ~radius:5e-6 ~liner_thickness:1e-6 ~length:1e-4 ()
        in
        let expected =
          2. *. Float.pi *. 8.8541878128e-12 *. 3.9 *. 1e-4 /. log (6. /. 5.)
        in
        close_rel "C" expected c;
        (* tens of femtofarads: the right order for a 100 um TSV *)
        Alcotest.(check bool) "order" true (c > 1e-14 && c < 1e-12));
    test "thinner liner means more capacitance" (fun () ->
        let c t = Parasitics.oxide_capacitance ~radius:5e-6 ~liner_thickness:t ~length:1e-4 () in
        Alcotest.(check bool) "monotone" true (c 0.5e-6 > c 2e-6));
    test "self inductance positive and grows with length" (fun () ->
        let l1 = Parasitics.self_inductance ~radius:5e-6 ~length:5e-5 in
        let l2 = Parasitics.self_inductance ~radius:5e-6 ~length:2e-4 in
        Alcotest.(check bool) "positive" true (l1 > 0.);
        Alcotest.(check bool) "grows" true (l2 > l1);
        check_raises_invalid "short" (fun () ->
            ignore (Parasitics.self_inductance ~radius:5e-6 ~length:1e-6)));
    test "rc delay" (fun () ->
        close_rel "tau" 6.9e-14 (Parasitics.rc_delay ~resistance:10. ~capacitance:1e-14));
    test "validation" (fun () ->
        check_raises_invalid "radius" (fun () ->
            ignore (Parasitics.dc_resistance Parasitics.copper ~radius:0. ~length:1. ~temp_k:300.));
        check_raises_invalid "frequency" (fun () ->
            ignore (Parasitics.skin_depth Parasitics.copper ~frequency:0. ~temp_k:300.)));
  ]

let joule_tests =
  [
    test "zero current returns the baseline" (fun () ->
        let stack = Params.block () in
        let r = Joule.solve ~sink_temperature_k:sink_k ~current_rms:0. stack in
        close_rel ~tol:1e-12 "baseline" r.Joule.baseline_rise r.Joule.rise;
        close "no power" 0. r.Joule.joule_power);
    test "current heats the stack, roughly quadratically" (fun () ->
        let stack = Params.block () in
        let extra i =
          let r = Joule.solve ~sink_temperature_k:sink_k ~current_rms:i stack in
          r.Joule.rise -. r.Joule.baseline_rise
        in
        let e1 = extra 0.5 and e2 = extra 1.0 in
        Alcotest.(check bool) "heats" true (e1 > 0.);
        (* superquadratic: resistivity also rises with temperature *)
        Alcotest.(check bool) "at least quadratic" true (e2 >= 4. *. e1 *. 0.99));
    test "fixed point reports a consistent operating point" (fun () ->
        let stack = Params.block () in
        let r = Joule.solve ~sink_temperature_k:sink_k ~current_rms:1. stack in
        (* P = I^2 R at the converged temperature *)
        close_rel ~tol:1e-9 "P = I2R" (1. *. r.Joule.resistance) r.Joule.joule_power;
        Alcotest.(check bool) "via hotter than sink" true (r.Joule.via_temperature > sink_k);
        Alcotest.(check bool) "converged quickly" true (r.Joule.iterations < 50));
    test "tungsten via heats more than copper at the same current" (fun () ->
        let stack = Params.block () in
        let rise c =
          (Joule.solve ~conductor:c ~sink_temperature_k:sink_k ~current_rms:1. stack).Joule.rise
        in
        Alcotest.(check bool) "W hotter" true
          (rise Parasitics.tungsten > rise Parasitics.copper));
    test "max_current_for_rise hits the budget" (fun () ->
        let stack = Params.block () in
        let baseline =
          (Joule.solve ~sink_temperature_k:sink_k ~current_rms:0. stack).Joule.baseline_rise
        in
        let budget = baseline +. 5. in
        let imax = Joule.max_current_for_rise ~sink_temperature_k:sink_k ~budget stack in
        let at_imax =
          (Joule.solve ~sink_temperature_k:sink_k ~current_rms:imax stack).Joule.rise
        in
        close_rel ~tol:1e-3 "on budget" budget at_imax;
        check_raises_invalid "impossible budget" (fun () ->
            ignore
              (Joule.max_current_for_rise ~sink_temperature_k:sink_k
                 ~budget:(baseline -. 1.) stack)));
    test "negative current rejected" (fun () ->
        check_raises_invalid "current" (fun () ->
            ignore
              (Joule.solve ~sink_temperature_k:sink_k ~current_rms:(-1.) (Params.block ()))));
  ]

let suite = ("electrical", parasitics_tests @ joule_tests)
