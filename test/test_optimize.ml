(* Tests for Nelder-Mead, golden-section and Brent root finding. *)

module Optimize = Ttsv_numerics.Optimize
open Helpers

let unit_tests =
  [
    test "nelder_mead on shifted quadratic" (fun () ->
        let f x = ((x.(0) -. 3.) ** 2.) +. ((x.(1) +. 1.) ** 2.) in
        let m = Optimize.nelder_mead f [| 0.; 0. |] in
        Alcotest.(check bool) "converged" true m.Optimize.converged;
        close ~tol:1e-4 "x" 3. m.Optimize.xmin.(0);
        close ~tol:1e-4 "y" (-1.) m.Optimize.xmin.(1));
    test "nelder_mead on rosenbrock" (fun () ->
        let f x =
          ((1. -. x.(0)) ** 2.) +. (100. *. ((x.(1) -. (x.(0) ** 2.)) ** 2.))
        in
        let m = Optimize.nelder_mead ~max_iter:5000 ~tol:1e-14 f [| -1.2; 1. |] in
        close ~tol:1e-3 "x" 1. m.Optimize.xmin.(0);
        close ~tol:1e-3 "y" 1. m.Optimize.xmin.(1));
    test "nelder_mead 1-d" (fun () ->
        let f x = ((x.(0) -. 7.) ** 2.) +. 3. in
        let m = Optimize.nelder_mead ~max_iter:500 f [| 0. |] in
        close ~tol:1e-4 "x" 7. m.Optimize.xmin.(0);
        close ~tol:1e-6 "f" 3. m.Optimize.fmin);
    test "nelder_mead empty start raises" (fun () ->
        check_raises_invalid "empty" (fun () -> ignore (Optimize.nelder_mead (fun _ -> 0.) [||])));
    test "golden_section on parabola" (fun () ->
        let m = Optimize.golden_section (fun x -> (x -. 2.5) ** 2.) 0. 10. in
        close ~tol:1e-6 "x" 2.5 m.Optimize.xmin.(0));
    test "golden_section handles swapped bounds" (fun () ->
        let m = Optimize.golden_section (fun x -> (x -. 2.5) ** 2.) 10. 0. in
        close ~tol:1e-6 "x" 2.5 m.Optimize.xmin.(0));
    test "brent_root on cubic" (fun () ->
        let root = Optimize.brent_root (fun x -> (x ** 3.) -. 8.) 0. 5. in
        close ~tol:1e-9 "root" 2. root);
    test "brent_root on cosine" (fun () ->
        let root = Optimize.brent_root cos 0. 3. in
        close ~tol:1e-9 "pi/2" (Float.pi /. 2.) root);
    test "brent_root requires a bracket" (fun () ->
        check_raises_invalid "bracket" (fun () ->
            ignore (Optimize.brent_root (fun x -> x +. 10.) 0. 1.)));
    test "bisect on line" (fun () ->
        close ~tol:1e-9 "root" 4. (Optimize.bisect (fun x -> x -. 4.) 0. 10.));
    test "bisect requires a bracket" (fun () ->
        check_raises_invalid "bracket" (fun () ->
            ignore (Optimize.bisect (fun _ -> 1.) 0. 1.)));
  ]

let property_tests =
  [
    qtest ~count:50 "nelder_mead finds random quadratic minima"
      QCheck2.Gen.(pair (float_range (-5.) 5.) (float_range (-5.) 5.))
      (fun (a, b) ->
        let f x = ((x.(0) -. a) ** 2.) +. (2. *. ((x.(1) -. b) ** 2.)) in
        let m = Optimize.nelder_mead ~max_iter:3000 ~tol:1e-14 f [| 0.; 0. |] in
        Float.abs (m.Optimize.xmin.(0) -. a) < 1e-3 && Float.abs (m.Optimize.xmin.(1) -. b) < 1e-3);
    qtest ~count:50 "brent agrees with bisect" (QCheck2.Gen.float_range 0.5 9.5) (fun r ->
        let f x = ((x -. r) ** 3.) +. (0.5 *. (x -. r)) in
        let b1 = Optimize.brent_root f 0. 10. and b2 = Optimize.bisect f 0. 10. in
        Float.abs (b1 -. b2) < 1e-6 && Float.abs (b1 -. r) < 1e-6);
    qtest ~count:50 "golden finds random parabola vertex" (QCheck2.Gen.float_range 1. 9.) (fun v ->
        let m = Optimize.golden_section (fun x -> (x -. v) ** 2.) 0. 10. in
        Float.abs (m.Optimize.xmin.(0) -. v) < 1e-5);
  ]

let suite = ("optimize", unit_tests @ property_tests)
