(* Observability layer: span nesting and per-domain isolation under the
   pool, histogram bucket geometry, snapshot merge algebra, JSONL
   round-tripping, the disabled-path cost contract, and the
   solve.iterations cross-check against the solver diagnostics. *)

module Json = Ttsv_obs.Json
module Span = Ttsv_obs.Span
module Metrics = Ttsv_obs.Metrics
module Sink = Ttsv_obs.Sink
module Config = Ttsv_obs.Config
module Pool = Ttsv_parallel.Pool
module Robust = Ttsv_robust.Robust
module Diagnostics = Ttsv_robust.Diagnostics

(* ------------------------------------------------------------- harness *)

let read_trace path =
  In_channel.with_open_bin path In_channel.input_all
  |> String.split_on_char '\n'
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map (fun l ->
         match Json.parse l with
         | Ok j -> j
         | Error e -> Alcotest.failf "unparseable JSONL line %S: %s" l e)

(* run [f] with metrics + a fresh temp trace enabled, both switched back
   off afterwards, and return the parsed trace lines *)
let traced f =
  let path = Filename.temp_file "ttsv_obs" ".jsonl" in
  Config.enable_metrics ();
  Metrics.reset ();
  Config.enable_trace path;
  Fun.protect
    ~finally:(fun () ->
      Config.disable_trace ();
      Config.disable_metrics ())
    f;
  let lines = read_trace path in
  Sys.remove path;
  lines

let get name j =
  match Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "record without field %S" name

let get_int name j =
  match Json.to_int_opt (get name j) with
  | Some i -> i
  | None -> Alcotest.failf "field %S is not an integer" name

let get_str name j =
  match Json.to_string_opt (get name j) with
  | Some s -> s
  | None -> Alcotest.failf "field %S is not a string" name

let records kind lines =
  List.filter (fun j -> Json.member "type" j = Some (Json.String kind)) lines

let span_named name spans =
  match List.find_opt (fun j -> get_str "name" j = name) spans with
  | Some s -> s
  | None -> Alcotest.failf "no span named %S in the trace" name

(* ------------------------------------------------------------- nesting *)

let test_nesting () =
  let lines =
    traced (fun () ->
        Span.with_ ~name:"outer" (fun () ->
            Span.with_ ~name:"inner" ~attrs:[ ("k", "v") ] (fun () ->
                ignore (Sys.opaque_identity (1 + 1)))))
  in
  (match lines with
  | meta :: _ ->
    Alcotest.(check string) "meta first" "meta" (get_str "type" meta);
    Alcotest.(check string) "schema" Sink.schema (get_str "schema" meta)
  | [] -> Alcotest.fail "empty trace");
  let spans = records "span" lines in
  let outer = span_named "outer" spans and inner = span_named "inner" spans in
  Alcotest.(check int) "outer at depth 0" 0 (get_int "depth" outer);
  Alcotest.(check int) "inner at depth 1" 1 (get_int "depth" inner);
  Alcotest.(check bool) "outer has no parent" true (get "parent" outer = Json.Null);
  Alcotest.(check (option int))
    "inner's parent is outer" (Some (get_int "id" outer))
    (Json.to_int_opt (get "parent" inner));
  Alcotest.(check (option string))
    "inner kept its attrs" (Some "v")
    (Option.bind (Json.member "attrs" inner) (fun a ->
         Option.bind (Json.member "k" a) Json.to_string_opt));
  (* spans are emitted as they close: the inner one must come first *)
  let order = List.map (fun j -> get_str "name" j) spans in
  Alcotest.(check (list string)) "close order" [ "inner"; "outer" ] order

let test_domain_isolation () =
  let leaves = 4096 in
  let lines =
    traced (fun () ->
        Pool.with_pool ~domains:4 (fun pool ->
            ignore
              (Pool.map_array pool
                 (fun i ->
                   Span.with_ ~name:"leaf" (fun () ->
                       (* enough work that every worker takes some chunks *)
                       let acc = ref 0. in
                       for k = 1 to 200 do
                         acc := !acc +. (1. /. float_of_int (i + k))
                       done;
                       !acc))
                 (Array.init leaves Fun.id))))
  in
  let spans = records "span" lines in
  let domain_of = Hashtbl.create 256 in
  List.iter (fun j -> Hashtbl.replace domain_of (get_int "id" j) (get_int "domain" j)) spans;
  (* a span's parent always lives on the same domain: the DLS stacks
     never leak frames across workers *)
  List.iter
    (fun j ->
      match Json.to_int_opt (get "parent" j) with
      | None -> ()
      | Some p -> (
        match Hashtbl.find_opt domain_of p with
        | None -> Alcotest.failf "span %d has an unknown parent %d" (get_int "id" j) p
        | Some pd ->
          Alcotest.(check int)
            (Printf.sprintf "span %d and its parent share a domain" (get_int "id" j))
            pd (get_int "domain" j)))
    spans;
  let leaf_spans = List.filter (fun j -> get_str "name" j = "leaf") spans in
  Alcotest.(check int) "every task produced a leaf span" leaves (List.length leaf_spans);
  let domains =
    List.sort_uniq compare (List.map (fun j -> get_int "domain" j) leaf_spans)
  in
  Alcotest.(check bool)
    (Printf.sprintf "leaves ran on several domains (saw %d)" (List.length domains))
    true
    (List.length domains >= 2)

(* ----------------------------------------------------------- histogram *)

let test_bucket_geometry () =
  let module H = Metrics.Histogram in
  Alcotest.(check int) "zero lands in bucket 0" 0 (H.bucket_index 0.);
  Alcotest.(check int) "negatives land in bucket 0" 0 (H.bucket_index (-3.));
  Alcotest.(check int) "nan lands in bucket 0" 0 (H.bucket_index Float.nan);
  Alcotest.(check int) "overflow lands in the last bucket" (H.nbuckets - 1)
    (H.bucket_index Float.infinity);
  for i = 1 to H.nbuckets - 2 do
    Helpers.close
      (Printf.sprintf "bucket %d upper = bucket %d lower" i (i + 1))
      (H.bucket_upper i)
      (H.bucket_lower (i + 1))
  done

let prop_bucket_contains v =
  let module H = Metrics.Histogram in
  let i = H.bucket_index v in
  H.bucket_lower i <= v && v < H.bucket_upper i

(* ----------------------------------------------------- merge algebra *)

(* Operations use integral values only: float addition over small
   integers is exact, so merge associativity can be checked with
   structural equality instead of tolerances. *)
let gen_ops =
  let open QCheck2.Gen in
  let instr = int_range 0 2 in
  small_list
    (oneof
       [
         (let* i = instr and* v = int_range 0 100 in
          return (`C (i, v)));
         (let* i = instr and* v = int_range (-50) 50 in
          return (`G (i, float_of_int v)));
         (let* i = instr and* v = int_range 0 1000 in
          return (`H (i, float_of_int v)));
       ])

let snapshot_of_ops ops =
  let r = Metrics.create () in
  let c = Array.init 3 (fun i -> Metrics.Counter.make ~registry:r (Printf.sprintf "c%d" i)) in
  let g = Array.init 3 (fun i -> Metrics.Gauge.make ~registry:r (Printf.sprintf "g%d" i)) in
  let h =
    Array.init 3 (fun i -> Metrics.Histogram.make ~registry:r (Printf.sprintf "h%d" i))
  in
  List.iter
    (function
      | `C (i, v) -> Metrics.Counter.add c.(i) v
      | `G (i, v) -> Metrics.Gauge.set g.(i) v
      | `H (i, v) -> Metrics.Histogram.observe h.(i) v)
    ops;
  Metrics.snapshot ~registry:r ()

let prop_merge_associative (o1, o2, o3) =
  (* updates are guarded by the metrics flag; restore whatever state the
     surrounding tests left behind *)
  Config.enable_metrics ();
  let finally () = Config.disable_metrics () in
  Fun.protect ~finally (fun () ->
      let a = snapshot_of_ops o1 and b = snapshot_of_ops o2 and c = snapshot_of_ops o3 in
      Metrics.merge a (Metrics.merge b c) = Metrics.merge (Metrics.merge a b) c
      && Metrics.merge Metrics.empty_snapshot a = a
      && Metrics.merge a Metrics.empty_snapshot = a)

(* ------------------------------------------------------- JSON round-trip *)

(* dyadic-rational floats are exactly representable, so a faithful
   printer/parser pair must reproduce them bit-for-bit *)
let gen_json =
  let open QCheck2.Gen in
  let key = string_size ~gen:(char_range 'a' 'z') (int_range 1 6) in
  let leaf =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) (int_range (-1_000_000) 1_000_000);
        map
          (fun (m, e) -> Json.Float (float_of_int m /. float_of_int (1 lsl e)))
          (pair (int_range (-4000) 4000) (int_range 0 10));
        map (fun s -> Json.String s) (string_size ~gen:printable (int_range 0 10));
      ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 0 then leaf
         else
           oneof
             [
               leaf;
               map (fun l -> Json.List l) (list_size (int_range 0 4) (self (n / 2)));
               map (fun kvs -> Json.Obj kvs) (list_size (int_range 0 4) (pair key (self (n / 2))));
             ])

let prop_json_roundtrip j = Json.parse (Json.to_string j) = Ok j

(* arbitrary byte strings — including invalid UTF-8 — must survive the
   surrogateescape emitter byte-for-byte, and the wire form must be pure
   ASCII so a JSONL trace never carries raw control or 8-bit bytes *)
let prop_string_bytes_roundtrip s =
  let wire = Json.to_string (Json.String s) in
  String.for_all (fun c -> Char.code c >= 0x20 && Char.code c < 0x80) wire
  && Json.parse wire = Ok (Json.String s)

let gen_bytes =
  QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_range 0 40))

(* ---------------------------------------------------------- percentiles *)

let test_percentiles () =
  Config.enable_metrics ();
  Fun.protect ~finally:Config.disable_metrics @@ fun () ->
  let r = Metrics.create () in
  let h = Metrics.Histogram.make ~registry:r "lat" in
  (* constant stream: every percentile collapses onto the single
     occupied bucket, clamped to the observed min/max *)
  for _ = 1 to 100 do
    Metrics.Histogram.observe h 4.0
  done;
  (match Metrics.snapshot ~registry:r () with
  | [ (_, Metrics.H s) ] ->
    Helpers.close "constant p50" 4.0 (Metrics.percentile s 0.50);
    Helpers.close "constant p99" 4.0 (Metrics.percentile s 0.99)
  | _ -> Alcotest.fail "expected exactly the one histogram");
  (* bimodal: 90 fast samples at 1.0, 10 slow at 1024.0 — p50 sits in
     the fast bucket, p99 in the slow one (log2 buckets are exact on
     powers of two, so bucket bounds pin the answer tightly) *)
  let r = Metrics.create () in
  let h = Metrics.Histogram.make ~registry:r "lat2" in
  for _ = 1 to 90 do
    Metrics.Histogram.observe h 1.0
  done;
  for _ = 1 to 10 do
    Metrics.Histogram.observe h 1024.0
  done;
  (match Metrics.snapshot ~registry:r () with
  | [ (_, Metrics.H s) ] ->
    let p50 = Metrics.percentile s 0.50 and p99 = Metrics.percentile s 0.99 in
    Alcotest.(check bool)
      (Printf.sprintf "p50 %g in the fast mode" p50)
      true
      (p50 >= 1.0 && p50 < 2.0);
    Alcotest.(check bool)
      (Printf.sprintf "p99 %g in the slow mode" p99)
      true
      (p99 >= 512. && p99 <= 1024.);
    Alcotest.(check bool) "p50 <= p99" true (p50 <= p99)
  | _ -> Alcotest.fail "expected exactly the one histogram");
  (* empty histogram: NaN, mirroring the null min/max in the JSON *)
  let r = Metrics.create () in
  ignore (Metrics.Histogram.make ~registry:r "lat3");
  match Metrics.snapshot ~registry:r () with
  | [ (_, Metrics.H s) ] ->
    Alcotest.(check bool) "empty p50 is NaN" true (Float.is_nan (Metrics.percentile s 0.5))
  | _ -> Alcotest.fail "expected exactly the one histogram"

(* -------------------------------------------------------- disabled path *)

let test_disabled_path () =
  Config.disable_trace ();
  Config.disable_metrics ();
  Metrics.reset ();
  let before = Sink.write_count () in
  let c = Metrics.Counter.make "test.disabled.counter" in
  let h = Metrics.Histogram.make "test.disabled.hist" in
  let result =
    Span.with_ ~name:"off" (fun () ->
        Metrics.Counter.incr c;
        Metrics.Histogram.observe h 1.0;
        (* sink calls without an open trace are silently dropped *)
        Sink.metric ~kind:"counter" ~name:"off.metric" (Json.Int 1);
        41 + 1)
  in
  Alcotest.(check int) "with_ still returns the result" 42 result;
  Alcotest.(check int) "no JSONL lines were written" before (Sink.write_count ());
  Alcotest.(check int) "counter stayed at 0" 0 (Metrics.Counter.value c);
  Alcotest.(check int) "histogram stayed empty" 0 (Metrics.Histogram.count h);
  Alcotest.(check (option int)) "no open span" None (Span.current ());
  Alcotest.(check int) "depth back to 0" 0 (Span.depth ())

(* --------------------------------------------------- concurrent emission *)

(* four domains hammering the sink concurrently: the line mutex must
   keep every JSONL line intact (read_trace fails the test on any
   unparseable line), and no event may be lost *)
let test_sink_concurrent () =
  let per_task = 8 and tasks = 256 in
  let lines =
    traced (fun () ->
        Pool.with_pool ~domains:4 (fun pool ->
            ignore
              (Pool.map_array pool
                 (fun i ->
                   Span.with_ ~name:"emit" (fun () ->
                       for k = 1 to per_task do
                         Sink.metric ~kind:"counter"
                           ~name:(Printf.sprintf "conc.%d" (i mod 7))
                           (Json.Int k)
                       done))
                 (Array.init tasks Fun.id))))
  in
  let metrics =
    List.filter
      (fun j ->
        match Json.member "name" j with
        | Some (Json.String s) -> String.length s >= 5 && String.sub s 0 5 = "conc."
        | _ -> false)
      (records "metric" lines)
  in
  Alcotest.(check int) "every metric event survived" (per_task * tasks) (List.length metrics);
  Alcotest.(check int) "every span closed into the trace" tasks
    (List.length (List.filter (fun j -> get_str "name" j = "emit") (records "span" lines)))

(* ---------------------------------------------------- convergence events *)

let test_conv_events () =
  let n = 40 in
  let a =
    QCheck2.Gen.generate1 ~rand:(Random.State.make [| 2027 |]) (Helpers.gen_spd n)
  in
  let b = Array.make n 1. in
  let diag = ref None in
  let lines =
    traced (fun () ->
        match Robust.solve a b with
        | Ok (_, d) -> diag := Some d
        | Error _ -> Alcotest.fail "Robust.solve failed on an SPD system")
  in
  let d = match !diag with Some d -> d | None -> Alcotest.fail "no diagnostics" in
  let snap =
    match d.Diagnostics.conv with
    | Some s -> s
    | None -> Alcotest.fail "diagnostics carry no convergence history with obs enabled"
  in
  let kept = Array.length snap.Ttsv_obs.History.residuals in
  Alcotest.(check bool) "history is non-empty" true (kept > 0);
  Alcotest.(check bool) "retained window bounded by total" true
    (kept <= snap.Ttsv_obs.History.total);
  (* the curve ends at least as low as it starts on an SPD solve *)
  Alcotest.(check bool) "residual did not grow overall" true
    (snap.Ttsv_obs.History.residuals.(kept - 1) <= snap.Ttsv_obs.History.residuals.(0));
  match records "conv" lines with
  | [] -> Alcotest.fail "no conv event in the trace"
  | ev :: _ ->
    Alcotest.(check string)
      "trace event names the same method" snap.Ttsv_obs.History.meth (get_str "method" ev);
    Alcotest.(check int)
      "trace event carries the same total" snap.Ttsv_obs.History.total (get_int "total" ev);
    (* the event is tagged with the enclosing rung span *)
    let span_id =
      match Json.to_int_opt (get "span" ev) with
      | Some id -> id
      | None -> Alcotest.fail "conv event without a span tag"
    in
    let rung =
      List.find_opt (fun j -> get_int "id" j = span_id) (records "span" lines)
    in
    (match rung with
    | Some s ->
      let name = get_str "name" s in
      Alcotest.(check bool)
        (Printf.sprintf "conv span %S is a robust rung" name)
        true
        (String.length name > 7 && String.sub name 0 7 = "robust.")
    | None -> Alcotest.failf "conv event points at unknown span %d" span_id)

let test_conv_disabled () =
  Config.disable_trace ();
  Config.disable_metrics ();
  let n = 24 in
  let a =
    QCheck2.Gen.generate1 ~rand:(Random.State.make [| 2028 |]) (Helpers.gen_spd n)
  in
  match Robust.solve a (Array.make n 1.) with
  | Ok (_, d) ->
    Alcotest.(check bool)
      "no ring buffer allocated with obs disabled" true
      (d.Diagnostics.conv = None)
  | Error _ -> Alcotest.fail "Robust.solve failed on an SPD system"

(* --------------------------------------------------------- GC telemetry *)

let test_gc_telemetry () =
  Config.enable_metrics ();
  Metrics.reset ();
  Fun.protect ~finally:Config.disable_metrics @@ fun () ->
  let snap_val name snap =
    match List.assoc_opt name snap with
    | Some (Metrics.G v) -> v
    | _ -> Alcotest.failf "gauge %S missing from the snapshot" name
  in
  Ttsv_obs.Gcstats.sample ();
  let snap = Metrics.snapshot () in
  Alcotest.(check bool) "gc.allocated_words is positive" true
    (snap_val "gc.allocated_words" snap > 0.);
  Alcotest.(check bool) "gc.heap_words is positive" true (snap_val "gc.heap_words" snap > 0.);
  (* spans record their allocation delta into the alloc.* histogram;
     allocate through minor-heap boxes — the young-pointer accounting is
     exact, whereas large direct-to-major blocks reach [quick_stat]'s
     counters only lazily *)
  Span.with_ ~name:"alloctest" (fun () ->
      (* cons cells and tuples: guaranteed minor-heap allocations (float
         refs unbox, large arrays go direct-to-major where the counters
         update lazily) *)
      ignore (Sys.opaque_identity (List.init 10_000 (fun i -> (i, i)))));
  match List.assoc_opt "alloc.alloctest" (Metrics.snapshot ()) with
  | Some (Metrics.H h) ->
    Alcotest.(check int) "one span, one alloc observation" 1 h.Metrics.count;
    Alcotest.(check bool)
      (Printf.sprintf "alloc delta %.0f covers the boxed floats" h.Metrics.sum)
      true (h.Metrics.sum >= 10_000.)
  | _ -> Alcotest.fail "no alloc.alloctest histogram in the registry"

(* -------------------------------------------- solve.iterations crosscheck *)

let test_solve_iterations () =
  let n = 40 in
  let a =
    QCheck2.Gen.generate1 ~rand:(Random.State.make [| 2026 |]) (Helpers.gen_spd n)
  in
  let b = Array.make n 1. in
  let expected = ref (-1) in
  let lines =
    traced (fun () ->
        match Robust.solve a b with
        | Ok (_, d) -> expected := d.Diagnostics.iterations
        | Error _ -> Alcotest.fail "Robust.solve failed on an SPD system")
  in
  Alcotest.(check bool) "the solve converged" true (!expected >= 0);
  let events =
    List.filter (fun j -> get_str "name" j = "solve.iterations") (records "metric" lines)
  in
  (match events with
  | [ e ] ->
    Alcotest.(check (option int))
      "trace event carries the diagnostics total" (Some !expected)
      (Json.to_int_opt (get "value" e))
  | l -> Alcotest.failf "expected exactly one solve.iterations event, got %d" (List.length l));
  (* the registry counter accumulated the same total (interning returns
     the instrument the solver wrote to) *)
  let counter = Metrics.Counter.make "solve.iterations" in
  Alcotest.(check int) "registry counter agrees" !expected (Metrics.Counter.value counter)

let suite =
  ( "obs",
    [
      Helpers.test "span nesting round-trips through the trace" test_nesting;
      Helpers.test "per-domain span isolation under a 4-domain pool" test_domain_isolation;
      Helpers.test "histogram bucket geometry" test_bucket_geometry;
      Helpers.qtest "histogram bucket bounds contain the sample"
        QCheck2.Gen.(float_range 1e-12 1e12)
        prop_bucket_contains;
      Helpers.qtest ~count:60 "snapshot merge is associative with identity"
        QCheck2.Gen.(triple gen_ops gen_ops gen_ops)
        prop_merge_associative;
      Helpers.qtest "JSON values survive to_string/parse" gen_json prop_json_roundtrip;
      Helpers.qtest ~count:500 "arbitrary byte strings round-trip through pure-ASCII JSON"
        gen_bytes prop_string_bytes_roundtrip;
      Helpers.test "histogram percentiles from log2 buckets" test_percentiles;
      Helpers.test "4-domain concurrent emission keeps every line parseable"
        test_sink_concurrent;
      Helpers.test "conv events mirror the diagnostics history" test_conv_events;
      Helpers.test "no convergence history on the disabled path" test_conv_disabled;
      Helpers.test "GC gauges and per-span allocation deltas" test_gc_telemetry;
      Helpers.test "disabled path writes nothing and counts nothing" test_disabled_path;
      Helpers.test "solve.iterations event matches the diagnostics" test_solve_iterations;
    ] )
