(* Observability layer: span nesting and per-domain isolation under the
   pool, histogram bucket geometry, snapshot merge algebra, JSONL
   round-tripping, the disabled-path cost contract, and the
   solve.iterations cross-check against the solver diagnostics. *)

module Json = Ttsv_obs.Json
module Span = Ttsv_obs.Span
module Metrics = Ttsv_obs.Metrics
module Sink = Ttsv_obs.Sink
module Config = Ttsv_obs.Config
module Pool = Ttsv_parallel.Pool
module Robust = Ttsv_robust.Robust
module Diagnostics = Ttsv_robust.Diagnostics

(* ------------------------------------------------------------- harness *)

let read_trace path =
  In_channel.with_open_bin path In_channel.input_all
  |> String.split_on_char '\n'
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map (fun l ->
         match Json.parse l with
         | Ok j -> j
         | Error e -> Alcotest.failf "unparseable JSONL line %S: %s" l e)

(* run [f] with metrics + a fresh temp trace enabled, both switched back
   off afterwards, and return the parsed trace lines *)
let traced f =
  let path = Filename.temp_file "ttsv_obs" ".jsonl" in
  Config.enable_metrics ();
  Metrics.reset ();
  Config.enable_trace path;
  Fun.protect
    ~finally:(fun () ->
      Config.disable_trace ();
      Config.disable_metrics ())
    f;
  let lines = read_trace path in
  Sys.remove path;
  lines

let get name j =
  match Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "record without field %S" name

let get_int name j =
  match Json.to_int_opt (get name j) with
  | Some i -> i
  | None -> Alcotest.failf "field %S is not an integer" name

let get_str name j =
  match Json.to_string_opt (get name j) with
  | Some s -> s
  | None -> Alcotest.failf "field %S is not a string" name

let records kind lines =
  List.filter (fun j -> Json.member "type" j = Some (Json.String kind)) lines

let span_named name spans =
  match List.find_opt (fun j -> get_str "name" j = name) spans with
  | Some s -> s
  | None -> Alcotest.failf "no span named %S in the trace" name

(* ------------------------------------------------------------- nesting *)

let test_nesting () =
  let lines =
    traced (fun () ->
        Span.with_ ~name:"outer" (fun () ->
            Span.with_ ~name:"inner" ~attrs:[ ("k", "v") ] (fun () ->
                ignore (Sys.opaque_identity (1 + 1)))))
  in
  (match lines with
  | meta :: _ ->
    Alcotest.(check string) "meta first" "meta" (get_str "type" meta);
    Alcotest.(check string) "schema" Sink.schema (get_str "schema" meta)
  | [] -> Alcotest.fail "empty trace");
  let spans = records "span" lines in
  let outer = span_named "outer" spans and inner = span_named "inner" spans in
  Alcotest.(check int) "outer at depth 0" 0 (get_int "depth" outer);
  Alcotest.(check int) "inner at depth 1" 1 (get_int "depth" inner);
  Alcotest.(check bool) "outer has no parent" true (get "parent" outer = Json.Null);
  Alcotest.(check (option int))
    "inner's parent is outer" (Some (get_int "id" outer))
    (Json.to_int_opt (get "parent" inner));
  Alcotest.(check (option string))
    "inner kept its attrs" (Some "v")
    (Option.bind (Json.member "attrs" inner) (fun a ->
         Option.bind (Json.member "k" a) Json.to_string_opt));
  (* spans are emitted as they close: the inner one must come first *)
  let order = List.map (fun j -> get_str "name" j) spans in
  Alcotest.(check (list string)) "close order" [ "inner"; "outer" ] order

let test_domain_isolation () =
  let leaves = 4096 in
  let lines =
    traced (fun () ->
        Pool.with_pool ~domains:4 (fun pool ->
            ignore
              (Pool.map_array pool
                 (fun i ->
                   Span.with_ ~name:"leaf" (fun () ->
                       (* enough work that every worker takes some chunks *)
                       let acc = ref 0. in
                       for k = 1 to 200 do
                         acc := !acc +. (1. /. float_of_int (i + k))
                       done;
                       !acc))
                 (Array.init leaves Fun.id))))
  in
  let spans = records "span" lines in
  let domain_of = Hashtbl.create 256 in
  List.iter (fun j -> Hashtbl.replace domain_of (get_int "id" j) (get_int "domain" j)) spans;
  (* a span's parent always lives on the same domain: the DLS stacks
     never leak frames across workers *)
  List.iter
    (fun j ->
      match Json.to_int_opt (get "parent" j) with
      | None -> ()
      | Some p -> (
        match Hashtbl.find_opt domain_of p with
        | None -> Alcotest.failf "span %d has an unknown parent %d" (get_int "id" j) p
        | Some pd ->
          Alcotest.(check int)
            (Printf.sprintf "span %d and its parent share a domain" (get_int "id" j))
            pd (get_int "domain" j)))
    spans;
  let leaf_spans = List.filter (fun j -> get_str "name" j = "leaf") spans in
  Alcotest.(check int) "every task produced a leaf span" leaves (List.length leaf_spans);
  let domains =
    List.sort_uniq compare (List.map (fun j -> get_int "domain" j) leaf_spans)
  in
  Alcotest.(check bool)
    (Printf.sprintf "leaves ran on several domains (saw %d)" (List.length domains))
    true
    (List.length domains >= 2)

(* ----------------------------------------------------------- histogram *)

let test_bucket_geometry () =
  let module H = Metrics.Histogram in
  Alcotest.(check int) "zero lands in bucket 0" 0 (H.bucket_index 0.);
  Alcotest.(check int) "negatives land in bucket 0" 0 (H.bucket_index (-3.));
  Alcotest.(check int) "nan lands in bucket 0" 0 (H.bucket_index Float.nan);
  Alcotest.(check int) "overflow lands in the last bucket" (H.nbuckets - 1)
    (H.bucket_index Float.infinity);
  for i = 1 to H.nbuckets - 2 do
    Helpers.close
      (Printf.sprintf "bucket %d upper = bucket %d lower" i (i + 1))
      (H.bucket_upper i)
      (H.bucket_lower (i + 1))
  done

let prop_bucket_contains v =
  let module H = Metrics.Histogram in
  let i = H.bucket_index v in
  H.bucket_lower i <= v && v < H.bucket_upper i

(* ----------------------------------------------------- merge algebra *)

(* Operations use integral values only: float addition over small
   integers is exact, so merge associativity can be checked with
   structural equality instead of tolerances. *)
let gen_ops =
  let open QCheck2.Gen in
  let instr = int_range 0 2 in
  small_list
    (oneof
       [
         (let* i = instr and* v = int_range 0 100 in
          return (`C (i, v)));
         (let* i = instr and* v = int_range (-50) 50 in
          return (`G (i, float_of_int v)));
         (let* i = instr and* v = int_range 0 1000 in
          return (`H (i, float_of_int v)));
       ])

let snapshot_of_ops ops =
  let r = Metrics.create () in
  let c = Array.init 3 (fun i -> Metrics.Counter.make ~registry:r (Printf.sprintf "c%d" i)) in
  let g = Array.init 3 (fun i -> Metrics.Gauge.make ~registry:r (Printf.sprintf "g%d" i)) in
  let h =
    Array.init 3 (fun i -> Metrics.Histogram.make ~registry:r (Printf.sprintf "h%d" i))
  in
  List.iter
    (function
      | `C (i, v) -> Metrics.Counter.add c.(i) v
      | `G (i, v) -> Metrics.Gauge.set g.(i) v
      | `H (i, v) -> Metrics.Histogram.observe h.(i) v)
    ops;
  Metrics.snapshot ~registry:r ()

let prop_merge_associative (o1, o2, o3) =
  (* updates are guarded by the metrics flag; restore whatever state the
     surrounding tests left behind *)
  Config.enable_metrics ();
  let finally () = Config.disable_metrics () in
  Fun.protect ~finally (fun () ->
      let a = snapshot_of_ops o1 and b = snapshot_of_ops o2 and c = snapshot_of_ops o3 in
      Metrics.merge a (Metrics.merge b c) = Metrics.merge (Metrics.merge a b) c
      && Metrics.merge Metrics.empty_snapshot a = a
      && Metrics.merge a Metrics.empty_snapshot = a)

(* ------------------------------------------------------- JSON round-trip *)

(* dyadic-rational floats are exactly representable, so a faithful
   printer/parser pair must reproduce them bit-for-bit *)
let gen_json =
  let open QCheck2.Gen in
  let key = string_size ~gen:(char_range 'a' 'z') (int_range 1 6) in
  let leaf =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) (int_range (-1_000_000) 1_000_000);
        map
          (fun (m, e) -> Json.Float (float_of_int m /. float_of_int (1 lsl e)))
          (pair (int_range (-4000) 4000) (int_range 0 10));
        map (fun s -> Json.String s) (string_size ~gen:printable (int_range 0 10));
      ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 0 then leaf
         else
           oneof
             [
               leaf;
               map (fun l -> Json.List l) (list_size (int_range 0 4) (self (n / 2)));
               map (fun kvs -> Json.Obj kvs) (list_size (int_range 0 4) (pair key (self (n / 2))));
             ])

let prop_json_roundtrip j = Json.parse (Json.to_string j) = Ok j

(* -------------------------------------------------------- disabled path *)

let test_disabled_path () =
  Config.disable_trace ();
  Config.disable_metrics ();
  Metrics.reset ();
  let before = Sink.write_count () in
  let c = Metrics.Counter.make "test.disabled.counter" in
  let h = Metrics.Histogram.make "test.disabled.hist" in
  let result =
    Span.with_ ~name:"off" (fun () ->
        Metrics.Counter.incr c;
        Metrics.Histogram.observe h 1.0;
        (* sink calls without an open trace are silently dropped *)
        Sink.metric ~kind:"counter" ~name:"off.metric" (Json.Int 1);
        41 + 1)
  in
  Alcotest.(check int) "with_ still returns the result" 42 result;
  Alcotest.(check int) "no JSONL lines were written" before (Sink.write_count ());
  Alcotest.(check int) "counter stayed at 0" 0 (Metrics.Counter.value c);
  Alcotest.(check int) "histogram stayed empty" 0 (Metrics.Histogram.count h);
  Alcotest.(check (option int)) "no open span" None (Span.current ());
  Alcotest.(check int) "depth back to 0" 0 (Span.depth ())

(* -------------------------------------------- solve.iterations crosscheck *)

let test_solve_iterations () =
  let n = 40 in
  let a =
    QCheck2.Gen.generate1 ~rand:(Random.State.make [| 2026 |]) (Helpers.gen_spd n)
  in
  let b = Array.make n 1. in
  let expected = ref (-1) in
  let lines =
    traced (fun () ->
        match Robust.solve a b with
        | Ok (_, d) -> expected := d.Diagnostics.iterations
        | Error _ -> Alcotest.fail "Robust.solve failed on an SPD system")
  in
  Alcotest.(check bool) "the solve converged" true (!expected >= 0);
  let events =
    List.filter (fun j -> get_str "name" j = "solve.iterations") (records "metric" lines)
  in
  (match events with
  | [ e ] ->
    Alcotest.(check (option int))
      "trace event carries the diagnostics total" (Some !expected)
      (Json.to_int_opt (get "value" e))
  | l -> Alcotest.failf "expected exactly one solve.iterations event, got %d" (List.length l));
  (* the registry counter accumulated the same total (interning returns
     the instrument the solver wrote to) *)
  let counter = Metrics.Counter.make "solve.iterations" in
  Alcotest.(check int) "registry counter agrees" !expected (Metrics.Counter.value counter)

let suite =
  ( "obs",
    [
      Helpers.test "span nesting round-trips through the trace" test_nesting;
      Helpers.test "per-domain span isolation under a 4-domain pool" test_domain_isolation;
      Helpers.test "histogram bucket geometry" test_bucket_geometry;
      Helpers.qtest "histogram bucket bounds contain the sample"
        QCheck2.Gen.(float_range 1e-12 1e12)
        prop_bucket_contains;
      Helpers.qtest ~count:60 "snapshot merge is associative with identity"
        QCheck2.Gen.(triple gen_ops gen_ops gen_ops)
        prop_merge_associative;
      Helpers.qtest "JSON values survive to_string/parse" gen_json prop_json_roundtrip;
      Helpers.test "disabled path writes nothing and counts nothing" test_disabled_path;
      Helpers.test "solve.iterations event matches the diagnostics" test_solve_iterations;
    ] )
