(* Tests for units, materials and conductivity mixing. *)

module Units = Ttsv_physics.Units
module Material = Ttsv_physics.Material
module Materials = Ttsv_physics.Materials
module Mixing = Ttsv_physics.Mixing
open Helpers

let units_tests =
  [
    test "um roundtrip" (fun () -> close ~tol:1e-12 "um" 5. (Units.to_um (Units.um 5.)));
    test "mm roundtrip" (fun () -> close ~tol:1e-12 "mm" 2.5 (Units.to_mm (Units.mm 2.5)));
    test "areas" (fun () ->
        close ~tol:1e-12 "um2" 1e-12 (Units.um2 1.);
        close ~tol:1e-12 "mm2" 1e-6 (Units.mm2 1.));
    test "power densities" (fun () ->
        close "w/mm3" 7e11 (Units.w_per_mm3 700.);
        close "w/cm2" 1e5 (Units.w_per_cm2 10.));
    test "temperature conversions" (fun () ->
        close ~tol:1e-12 "c of k" 26.85 (Units.celsius_of_kelvin 300.);
        close ~tol:1e-12 "k of c" 300.15 (Units.kelvin_of_celsius 27.));
  ]

let material_tests =
  [
    test "paper conductivities" (fun () ->
        close "si" 150. Materials.silicon.Material.conductivity;
        close "sio2" 1.4 Materials.silicon_dioxide.Material.conductivity;
        close "polyimide" 0.15 Materials.polyimide.Material.conductivity;
        close "cu" 400. Materials.copper.Material.conductivity);
    test "make rejects nonpositive k" (fun () ->
        check_raises_invalid "k" (fun () ->
            ignore (Material.make ~name:"bad" ~conductivity:0. ())));
    test "k_at constant material" (fun () ->
        close "const" 400. (Material.k_at Materials.copper 400.));
    test "k_at with law decreases with temperature" (fun () ->
        let k300 = Material.k_at Materials.silicon_k_of_t 300. in
        let k400 = Material.k_at Materials.silicon_k_of_t 400. in
        Alcotest.(check bool) "monotone" true (k400 < k300);
        close ~tol:1e-9 "at 300K" 154. k300);
    test "with_conductivity" (fun () ->
        let m = Material.with_conductivity Materials.silicon_dioxide 2.0 in
        close "updated" 2.0 m.Material.conductivity;
        close "original untouched" 1.4 Materials.silicon_dioxide.Material.conductivity);
    test "by_name is case insensitive" (fun () ->
        let m = Materials.by_name "Copper" in
        Alcotest.(check string) "name" "copper" m.Material.name);
    test "by_name unknown raises Not_found" (fun () ->
        match Materials.by_name "unobtainium" with
        | exception Not_found -> ()
        | _ -> Alcotest.fail "expected Not_found");
    test "all materials are distinct by name" (fun () ->
        let names = List.map (fun (m : Material.t) -> m.Material.name) Materials.all in
        Alcotest.(check int) "unique" (List.length names)
          (List.length (List.sort_uniq compare names)));
  ]

let mixing_tests =
  [
    test "parallel rule hand computed" (fun () ->
        close ~tol:1e-12 "parallel" 21.33 (Mixing.parallel [ (1.4, 0.95); (400., 0.05) ]));
    test "series of equal phases is that phase" (fun () ->
        close ~tol:1e-12 "series" 5. (Mixing.series [ (5., 0.5); (5., 0.5) ]));
    test "fractions must sum to one" (fun () ->
        check_raises_invalid "sum" (fun () -> ignore (Mixing.parallel [ (1., 0.5) ])));
    test "maxwell_garnett limits" (fun () ->
        close ~tol:1e-9 "f=0" 1.4
          (Mixing.maxwell_garnett ~k_matrix:1.4 ~k_inclusion:400. ~fraction:0.);
        let f1 = Mixing.maxwell_garnett ~k_matrix:1.4 ~k_inclusion:400. ~fraction:1. in
        Alcotest.(check bool) "f=1 near inclusion" true (Float.abs (f1 -. 400.) /. 400. < 0.05));
    test "ild_with_metal equals two-phase parallel" (fun () ->
        close ~tol:1e-12 "ild"
          (Mixing.parallel [ (1.4, 0.9); (400., 0.1) ])
          (Mixing.ild_with_metal ~k_dielectric:1.4 ~k_metal:400. ~metal_fraction:0.1));
  ]

let property_tests =
  [
    qtest ~count:60 "wiener bounds: series <= maxwell-garnett <= parallel"
      QCheck2.Gen.(triple (float_range 0.5 5.) (float_range 10. 500.) (float_range 0.05 0.6))
      (fun (k1, k2, f) ->
        let s = Mixing.series [ (k1, 1. -. f); (k2, f) ] in
        let p = Mixing.parallel [ (k1, 1. -. f); (k2, f) ] in
        let mg = Mixing.maxwell_garnett ~k_matrix:k1 ~k_inclusion:k2 ~fraction:f in
        s <= mg +. 1e-9 && mg <= p +. 1e-9);
    qtest ~count:60 "mixing results are bracketed by the phases"
      QCheck2.Gen.(triple (float_range 0.5 5.) (float_range 10. 500.) (float_range 0.01 0.99))
      (fun (k1, k2, f) ->
        let p = Mixing.parallel [ (k1, 1. -. f); (k2, f) ] in
        let lo = Float.min k1 k2 and hi = Float.max k1 k2 in
        lo -. 1e-9 <= p && p <= hi +. 1e-9);
  ]

let suite = ("physics", units_tests @ material_tests @ mixing_tests @ property_tests)
