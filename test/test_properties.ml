(* Cross-cutting property tests: physical invariants that must hold across
   random geometries and all implementations. *)

module Units = Ttsv_physics.Units
module Params = Ttsv_core.Params
module Model_a = Ttsv_core.Model_a
module Model_b = Ttsv_core.Model_b
module Resistances = Ttsv_core.Resistances
module Stack = Ttsv_geometry.Stack
module Tsv = Ttsv_geometry.Tsv
module Problem = Ttsv_fem.Problem
module Solver = Ttsv_fem.Solver
module Circuit = Ttsv_network.Circuit
module Pool = Ttsv_parallel.Pool
open Helpers

(* a small random circuit: a ladder with random rungs *)
let gen_ladder =
  let open QCheck2.Gen in
  let* n = int_range 3 8 in
  let* rs = array_size (return (3 * n)) (float_range 0.5 20.) in
  return (n, rs)

let build_ladder (n, (rs : float array)) =
  let c = Circuit.create () in
  let g = Circuit.ground c in
  let left = Array.init n (fun i -> Circuit.add_node c (Printf.sprintf "l%d" i)) in
  let right = Array.init n (fun i -> Circuit.add_node c (Printf.sprintf "r%d" i)) in
  Circuit.add_resistor c g left.(0) rs.(0);
  Circuit.add_resistor c g right.(0) rs.(1);
  for i = 0 to n - 2 do
    Circuit.add_resistor c left.(i) left.(i + 1) rs.((3 * i) + 2);
    Circuit.add_resistor c right.(i) right.(i + 1) rs.((3 * i) + 3);
    Circuit.add_resistor c left.(i) right.(i) rs.((3 * i) + 4)
  done;
  (c, left, right)

let property_tests =
  [
    qtest ~count:40 "equivalent resistance is symmetric" gen_ladder (fun spec ->
        let c, left, right = build_ladder spec in
        let n = Array.length left in
        let a = left.(n - 1) and b = right.(n - 1) in
        let r1 = Circuit.equivalent_resistance c a b in
        let r2 = Circuit.equivalent_resistance c b a in
        Float.abs (r1 -. r2) < 1e-9 *. Float.max 1. r1);
    qtest ~count:40 "equivalent resistance satisfies the triangle inequality" gen_ladder
      (fun spec ->
        (* resistance distance is a metric on the nodes of a resistive
           network *)
        let c, left, right = build_ladder spec in
        let g = Circuit.ground c in
        let a = left.(Array.length left - 1) and b = right.(Array.length right - 1) in
        let rab = Circuit.equivalent_resistance c a b in
        let rag = Circuit.equivalent_resistance c a g in
        let rgb = Circuit.equivalent_resistance c g b in
        rab <= rag +. rgb +. 1e-9);
    qtest ~count:20 "scaling all resistances scales all temperatures" gen_stack3 (fun s ->
        (* Model A is linear in the resistance scale at fixed heats *)
        let qs = Stack.heat_inputs s in
        let rs = Resistances.of_stack s in
        let scale_triple c (t : Resistances.triple) =
          {
            Resistances.bulk = c *. t.Resistances.bulk;
            tsv = c *. t.Resistances.tsv;
            liner = c *. t.Resistances.liner;
          }
        in
        let scaled =
          {
            rs with
            Resistances.triples = Array.map (scale_triple 2.5) rs.Resistances.triples;
            r_sink = 2.5 *. rs.Resistances.r_sink;
          }
        in
        let base = Model_a.solve_triples rs qs in
        let hot = Model_a.solve_triples scaled qs in
        Float.abs (Model_a.max_rise hot -. (2.5 *. Model_a.max_rise base))
        < 1e-9 *. Model_a.max_rise hot);
    qtest ~count:20 "Model B is linear in the heat inputs" gen_stack3 (fun s ->
        let seg = Model_b.paper_segmentation s 50 in
        let qs = Stack.heat_inputs s in
        let b1 = Model_b.max_rise (Model_b.solve_with_heats s seg qs) in
        let b2 =
          Model_b.max_rise (Model_b.solve_with_heats s seg (Ttsv_numerics.Vec.scale 3. qs))
        in
        Float.abs (b2 -. (3. *. b1)) < 1e-9 *. Float.max 1. b2);
    qtest ~count:20 "Model B rise decreases with radius at fixed heats" gen_stack3 (fun s ->
        let qs = Stack.heat_inputs s in
        let bigger = Stack.with_tsv s (Tsv.with_radius s.Stack.tsv (s.Stack.tsv.Tsv.radius *. 1.5)) in
        let rise st =
          Model_b.max_rise
            (Model_b.solve_with_heats st (Model_b.paper_segmentation st 50) qs)
        in
        rise bigger < rise s);
    qtest ~count:8 "FV rise is linear in the source (superposition)" gen_stack3 (fun s ->
        let p = Problem.of_stack s in
        let r1 = Solver.max_rise (Solver.solve p) in
        let doubled =
          Problem.make ~grid:p.Problem.grid ~conductivity:p.Problem.conductivity
            ~source:(Array.map (fun q -> 2. *. q) p.Problem.source)
        in
        let r2 = Solver.max_rise (Solver.solve doubled) in
        Float.abs (r2 -. (2. *. r1)) < 1e-6 *. Float.max 1. r2);
    qtest ~count:8 "every model agrees the top plane is the hottest" gen_stack3 (fun s ->
        let a = Model_a.solve s in
        let top_is_max =
          Array.for_all (fun t -> t <= a.Model_a.bulk.(2) +. 1e-12) a.Model_a.bulk
        in
        let b = Model_b.solve_n s 50 in
        let nb = Array.length b.Model_b.bulk_profile in
        let top_b = snd b.Model_b.bulk_profile.(nb - 1) in
        let b_top_near_max = top_b > 0.95 *. Model_b.max_rise b in
        top_is_max && b_top_near_max);
    qtest ~count:6 "FV and Model B(200) stay within 20% on random blocks" gen_stack3 (fun s ->
        (* the band must cover the generator's worst corner, not the
           typical draw: at t_si ~ 5 um with a thin liner the measured
           FV-vs-B(200) gap reaches ~17% (preconditioner-independent —
           mg/ic0 solutions agree to 1e-12 there), so 12% flaked on
           unlucky seeds *)
        let fv = Solver.max_rise (Solver.solve (Problem.of_stack s)) in
        let b = Model_b.max_rise (Model_b.solve_n s 200) in
        Float.abs (b -. fv) /. fv < 0.2);
  ]

(* pool-determinism properties: random sizes, chunkings and domain
   counts; integer payloads so "agrees" means exact equality *)
let gen_pool_case =
  let open QCheck2.Gen in
  let* n = int_range 0 5000 in
  let* chunk = int_range 1 64 in
  let* domains = int_range 1 4 in
  return (n, chunk, domains)

let parallel_properties =
  [
    qtest ~count:50 "map_reduce agrees with List.fold_left for associative ops"
      gen_pool_case
      (fun (n, chunk, domains) ->
        let xs = List.init n (fun i -> ((i * 37) mod 101) - 50) in
        let arr = Array.of_list xs in
        Pool.with_pool ~domains @@ fun pool ->
        let reduce_with op init =
          Pool.map_reduce ~chunk ~min_size:2 pool ~n
            ~map:(fun ~lo ~hi ->
              let acc = ref init in
              for i = lo to hi - 1 do
                acc := op !acc arr.(i)
              done;
              !acc)
            ~reduce:op ~init
        in
        reduce_with ( + ) 0 = List.fold_left ( + ) 0 xs
        && reduce_with Stdlib.max min_int
           = List.fold_left Stdlib.max min_int (min_int :: xs));
    qtest ~count:50 "parallel_for visits every index exactly once" gen_pool_case
      (fun (n, chunk, domains) ->
        Pool.with_pool ~domains @@ fun pool ->
        let counts = Array.make (Stdlib.max 1 n) 0 in
        Pool.parallel_for ~chunk ~min_size:2 pool n (fun i -> counts.(i) <- counts.(i) + 1);
        Array.for_all (fun c -> c = 1) (Array.sub counts 0 n));
  ]

let suite = ("properties", property_tests @ parallel_properties)
