(* Tests for the resistive-network substrate (Reduce + Circuit). *)

module Reduce = Ttsv_network.Reduce
module Circuit = Ttsv_network.Circuit
open Helpers

let reduce_tests =
  [
    test "series" (fun () -> close "s" 6. (Reduce.series [ 1.; 2.; 3. ]));
    test "series of empty list is zero" (fun () -> close "s0" 0. (Reduce.series []));
    test "parallel of equal pair halves" (fun () -> close "p" 5. (Reduce.parallel [ 10.; 10. ]));
    test "parallel hand computed" (fun () ->
        close ~tol:1e-12 "p" 2. (Reduce.parallel [ 3.; 6. ]));
    test "parallel rejects empty and nonpositive" (fun () ->
        check_raises_invalid "empty" (fun () -> ignore (Reduce.parallel []));
        check_raises_invalid "neg" (fun () -> ignore (Reduce.parallel [ -1. ])));
    test "slab formula" (fun () ->
        (* 100 um of silicon over 0.01 mm^2: 1e-4 / (150 * 1e-8) *)
        close_rel "slab" (1e-4 /. 1.5e-6)
          (Reduce.slab ~thickness:1e-4 ~conductivity:150. ~area:1e-8));
    test "cylinder axial formula" (fun () ->
        close_rel "cyl" (1e-4 /. (400. *. Float.pi *. 1e-10))
          (Reduce.cylinder_axial ~length:1e-4 ~conductivity:400. ~radius:1e-5));
    test "cylindrical shell (eq. 9 closed form)" (fun () ->
        let r = 5e-6 and t = 1e-6 and k = 1.4 and len = 5e-5 in
        close_rel "shell"
          (log ((r +. t) /. r) /. (2. *. Float.pi *. k *. len))
          (Reduce.cylindrical_shell_radial ~inner_radius:r ~thickness:t ~conductivity:k
             ~length:len));
    test "conductance" (fun () ->
        close "g" 0.25 (Reduce.conductance 4.);
        check_raises_invalid "zero" (fun () -> ignore (Reduce.conductance 0.)));
  ]

(* A two-resistor divider: q flows through r1 then r2 to ground. *)
let divider r1 r2 q =
  let c = Circuit.create () in
  let g = Circuit.ground c in
  let mid = Circuit.add_node c "mid" in
  let top = Circuit.add_node c "top" in
  Circuit.add_resistor c g mid r2;
  Circuit.add_resistor c mid top r1;
  Circuit.add_heat_source c top q;
  (c, mid, top)

let circuit_tests =
  [
    test "series divider temperatures" (fun () ->
        let c, mid, top = divider 3. 7. 2. in
        let s = Circuit.solve c in
        close_rel "mid" 14. (Circuit.temperature s mid);
        close_rel "top" 20. (Circuit.temperature s top));
    test "parallel resistors combine" (fun () ->
        let c = Circuit.create () in
        let g = Circuit.ground c in
        let n = Circuit.add_node c "n" in
        Circuit.add_resistor c g n 10.;
        Circuit.add_resistor c g n 10.;
        Circuit.add_heat_source c n 1.;
        let s = Circuit.solve c in
        close_rel "5 K/W" 5. (Circuit.temperature s n));
    test "ground temperature is zero" (fun () ->
        let c, _, _ = divider 1. 1. 1. in
        let s = Circuit.solve c in
        close "ground" 0. (Circuit.temperature s (Circuit.ground c)));
    test "disconnected node is reported by name" (fun () ->
        let c = Circuit.create () in
        let _ = Circuit.add_node c "floating" in
        (match Circuit.solve c with
        | exception Invalid_argument msg ->
          Alcotest.(check bool) "names the node" true
            (String.length msg > 0
            && Option.is_some (String.index_opt msg 'f'))
        | _ -> Alcotest.fail "expected Invalid_argument"));
    test "self loop rejected" (fun () ->
        let c = Circuit.create () in
        let n = Circuit.add_node c "n" in
        check_raises_invalid "self" (fun () -> Circuit.add_resistor c n n 1.));
    test "nonpositive resistance rejected" (fun () ->
        let c = Circuit.create () in
        let n = Circuit.add_node c "n" in
        check_raises_invalid "zero" (fun () -> Circuit.add_resistor c n (Circuit.ground c) 0.);
        check_raises_invalid "nan" (fun () ->
            Circuit.add_resistor c n (Circuit.ground c) Float.nan));
    test "foreign node rejected" (fun () ->
        let c1 = Circuit.create () and c2 = Circuit.create () in
        let n1 = Circuit.add_node c1 "a" and n2 = Circuit.add_node c2 "b" in
        check_raises_invalid "foreign" (fun () -> Circuit.add_resistor c1 n1 n2 1.));
    test "branch heat flow and conservation" (fun () ->
        let c, mid, top = divider 3. 7. 2. in
        let s = Circuit.solve c in
        close_rel "through r1" 2. (Circuit.branch_heat_flow s top mid);
        close_rel "through r2" 2. (Circuit.branch_heat_flow s mid (Circuit.ground c));
        close_rel "antisymmetry" (-2.) (Circuit.branch_heat_flow s mid top));
    test "sources accumulate" (fun () ->
        let c = Circuit.create () in
        let n = Circuit.add_node c "n" in
        Circuit.add_resistor c n (Circuit.ground c) 2.;
        Circuit.add_heat_source c n 1.;
        Circuit.add_heat_source c n 0.5;
        close "total" 1.5 (Circuit.total_injected c);
        let s = Circuit.solve c in
        close_rel "temp" 3. (Circuit.temperature s n));
    test "negative source extracts heat" (fun () ->
        let c = Circuit.create () in
        let n = Circuit.add_node c "n" in
        Circuit.add_resistor c n (Circuit.ground c) 2.;
        Circuit.add_heat_source c n (-1.);
        let s = Circuit.solve c in
        close_rel "below ambient" (-2.) (Circuit.temperature s n));
    test "node_name" (fun () ->
        let c = Circuit.create () in
        let a = Circuit.add_node c "alpha" in
        let b = Circuit.add_node c "beta" in
        Alcotest.(check string) "a" "alpha" (Circuit.node_name c a);
        Alcotest.(check string) "b" "beta" (Circuit.node_name c b);
        Alcotest.(check string) "gnd" "ground" (Circuit.node_name c (Circuit.ground c)));
    test "large ladder uses CG path and stays accurate" (fun () ->
        (* 400-node ladder: dense threshold is 256, so this exercises CG;
           closed form of a uniform ladder: T(k) = q * sum_{j<=k} j * r? ...
           simpler: all heat at the top, T_top = n * r * q *)
        let n = 400 and r = 0.5 and q = 2. in
        let c = Circuit.create () in
        let nodes =
          Array.init n (fun i -> Circuit.add_node c (Printf.sprintf "n%d" i))
        in
        Circuit.add_resistor c (Circuit.ground c) nodes.(0) r;
        for i = 0 to n - 2 do
          Circuit.add_resistor c nodes.(i) nodes.(i + 1) r
        done;
        Circuit.add_heat_source c nodes.(n - 1) q;
        let s = Circuit.solve c in
        close_rel ~tol:1e-6 "top of ladder" (float_of_int n *. r *. q)
          (Circuit.temperature s nodes.(n - 1));
        Alcotest.(check bool) "residual tiny" true (Circuit.residual_norm s < 1e-8));
    test "max_temperature of empty circuit is zero" (fun () ->
        close "empty" 0. (Circuit.max_temperature (Circuit.solve (Circuit.create ()))));
  ]

(* superposition: solving with q1+q2 equals sum of separate solutions *)
let superposition_prop (r1, r2, q1, q2) =
  let solve_with q =
    let c, mid, top = divider r1 r2 q in
    let s = Circuit.solve c in
    (Circuit.temperature s mid, Circuit.temperature s top)
  in
  let m1, t1 = solve_with q1 in
  let m2, t2 = solve_with q2 in
  let m12, t12 = solve_with (q1 +. q2) in
  Float.abs (m12 -. (m1 +. m2)) < 1e-9 && Float.abs (t12 -. (t1 +. t2)) < 1e-9

let property_tests =
  [
    qtest ~count:60 "superposition (linearity)"
      QCheck2.Gen.(
        let pos = float_range 0.1 50. in
        quad pos pos pos pos)
      superposition_prop;
    qtest ~count:60 "divider temperatures scale with resistance"
      QCheck2.Gen.(pair (float_range 0.1 10.) (float_range 0.1 10.))
      (fun (r1, r2) ->
        let c, _, top = divider r1 r2 1. in
        let s = Circuit.solve c in
        Float.abs (Circuit.temperature s top -. (r1 +. r2)) < 1e-9);
  ]

let suite = ("network", reduce_tests @ circuit_tests @ property_tests)
