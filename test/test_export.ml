(* Tests for CSV figure export and VTK field export. *)

module Report = Ttsv_experiments.Report
module Export = Ttsv_experiments.Export
module Problem = Ttsv_fem.Problem
module Solver = Ttsv_fem.Solver
module Vtk = Ttsv_fem.Vtk
module Grid = Ttsv_fem.Grid
open Helpers

let sample_figure () =
  Report.figure ~title:"t" ~x_label:"radius" ~x_unit:"um" ~xs:[| 1.; 2. |]
    [
      { Report.label = "Model A"; ys = [| 10.5; 9.25 |] };
      { Report.label = "FV"; ys = [| 10.; 9. |] };
    ]

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let csv_tests =
  [
    test "figure CSV layout" (fun () ->
        let csv = Export.figure_to_string (sample_figure ()) in
        let lines = String.split_on_char '\n' (String.trim csv) in
        Alcotest.(check int) "rows" 3 (List.length lines);
        Alcotest.(check string) "header" "radius [um],Model A,FV" (List.nth lines 0);
        Alcotest.(check string) "row1" "1,10.5,10" (List.nth lines 1);
        Alcotest.(check string) "row2" "2,9.25,9" (List.nth lines 2));
    test "cells with commas are quoted" (fun () ->
        let fig =
          Report.figure ~title:"t" ~x_label:"x" ~x_unit:"u" ~xs:[| 1. |]
            [ { Report.label = "a,b"; ys = [| 1. |] } ]
        in
        let header = List.hd (String.split_on_char '\n' (Export.figure_to_string fig)) in
        Alcotest.(check string) "quoted" "x [u],\"a,b\"" header);
    test "write_figure roundtrips through the filesystem" (fun () ->
        let path = Filename.temp_file "ttsv_test" ".csv" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Export.write_figure (sample_figure ()) path;
            Alcotest.(check string) "same content"
              (Export.figure_to_string (sample_figure ()))
              (read_file path)));
    test "table CSV has title row and data rows" (fun () ->
        let t =
          {
            Report.title = "Table I";
            columns = [ "Max"; "Avg" ];
            rows = [ ("B (1)", [ "23%"; "19%" ]); ("A", [ "4%"; "2%" ]) ];
          }
        in
        let path = Filename.temp_file "ttsv_test" ".csv" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Export.write_table t path;
            let lines = String.split_on_char '\n' (String.trim (read_file path)) in
            Alcotest.(check int) "rows" 3 (List.length lines);
            Alcotest.(check string) "header" "Table I,Max,Avg" (List.nth lines 0);
            Alcotest.(check string) "data" "B (1),23%,19%" (List.nth lines 1)));
  ]

let vtk_tests =
  [
    test "VTK structure: header, dimensions, point and cell counts" (fun () ->
        let res =
          Solver.solve
            (Problem.uniform_column ~layers:[ (1e-5, 10.) ] ~radius:1e-5 ~cells_per_layer:4
               ~top_flux:0.1)
        in
        let g = res.Solver.problem.Problem.grid in
        let path = Filename.temp_file "ttsv_test" ".vtk" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Vtk.write res path;
            let body = read_file path in
            let contains s =
              let n = String.length body and m = String.length s in
              let rec scan i = i + m <= n && (String.sub body i m = s || scan (i + 1)) in
              scan 0
            in
            Alcotest.(check bool) "header" true (contains "# vtk DataFile Version 2.0");
            Alcotest.(check bool) "dataset" true (contains "DATASET STRUCTURED_GRID");
            Alcotest.(check bool) "dims" true
              (contains
                 (Printf.sprintf "DIMENSIONS %d %d 1" (Grid.nr g + 1) (Grid.nz g + 1)));
            Alcotest.(check bool) "cell data" true
              (contains (Printf.sprintf "CELL_DATA %d" (Grid.nr g * Grid.nz g)));
            Alcotest.(check bool) "temperature field" true
              (contains "SCALARS temperature_rise double 1");
            Alcotest.(check bool) "conductivity field" true
              (contains "SCALARS conductivity double 1")));
  ]

let suite = ("export", csv_tests @ vtk_tests)
