(* Tests for interpolation and the error-metric/statistics module. *)

module Interp = Ttsv_numerics.Interp
module Stats = Ttsv_numerics.Stats
open Helpers

let interp_tests =
  [
    test "eval at knots" (fun () ->
        let t = Interp.create ~xs:[| 0.; 1.; 2. |] ~ys:[| 10.; 20.; 40. |] in
        close "k0" 10. (Interp.eval t 0.);
        close "k1" 20. (Interp.eval t 1.);
        close "k2" 40. (Interp.eval t 2.));
    test "eval midpoint" (fun () ->
        let t = Interp.create ~xs:[| 0.; 2. |] ~ys:[| 0.; 10. |] in
        close "mid" 5. (Interp.eval t 1.));
    test "constant extrapolation" (fun () ->
        let t = Interp.create ~xs:[| 0.; 1. |] ~ys:[| 3.; 4. |] in
        close "below" 3. (Interp.eval t (-5.));
        close "above" 4. (Interp.eval t 5.));
    test "linear extrapolation" (fun () ->
        let t = Interp.create ~xs:[| 0.; 1. |] ~ys:[| 0.; 2. |] in
        close "extrap" 4. (Interp.eval_extrapolate t 2.));
    test "derivative" (fun () ->
        let t = Interp.create ~xs:[| 0.; 1.; 3. |] ~ys:[| 0.; 2.; 2. |] in
        close "seg0" 2. (Interp.derivative t 0.5);
        close "seg1" 0. (Interp.derivative t 2.));
    test "of_points sorts" (fun () ->
        let t = Interp.of_points [ (2., 20.); (0., 0.); (1., 10.) ] in
        close "sorted" 15. (Interp.eval t 1.5));
    test "duplicate abscissae rejected" (fun () ->
        check_raises_invalid "dup" (fun () -> ignore (Interp.of_points [ (1., 0.); (1., 2.) ])));
    test "non-increasing rejected" (fun () ->
        check_raises_invalid "order" (fun () ->
            ignore (Interp.create ~xs:[| 1.; 0. |] ~ys:[| 0.; 1. |])));
    test "domain" (fun () ->
        let t = Interp.create ~xs:[| -1.; 4. |] ~ys:[| 0.; 0. |] in
        let lo, hi = Interp.domain t in
        close "lo" (-1.) lo;
        close "hi" 4. hi);
  ]

let stats_tests =
  [
    test "max and mean abs error" (fun () ->
        let xs = [| 1.; 2.; 3. |] and r = [| 1.5; 2.; 2. |] in
        close "max" 1. (Stats.max_abs_error xs r);
        close "mean" 0.5 (Stats.mean_abs_error xs r));
    test "relative errors (the paper's metric)" (fun () ->
        let xs = [| 11.; 18. |] and r = [| 10.; 20. |] in
        close "max" 0.1 (Stats.max_rel_error xs r);
        close ~tol:1e-12 "mean" 0.1 (Stats.mean_rel_error xs r));
    test "rel error rejects zero reference" (fun () ->
        check_raises_invalid "zero ref" (fun () ->
            ignore (Stats.max_rel_error [| 1. |] [| 0. |])));
    test "rmse" (fun () ->
        close ~tol:1e-12 "rmse" (sqrt 12.5) (Stats.rmse [| 3.; -4. |] [| 0.; 0. |]));
    test "variance and stddev" (fun () ->
        let v = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
        close "var" 4. (Stats.variance v);
        close "std" 2. (Stats.stddev v));
    test "median odd and even" (fun () ->
        close "odd" 3. (Stats.median [| 5.; 3.; 1. |]);
        close "even" 2.5 (Stats.median [| 4.; 1.; 2.; 3. |]));
    test "percentile" (fun () ->
        let v = [| 1.; 2.; 3.; 4.; 5. |] in
        close "p0" 1. (Stats.percentile 0. v);
        close "p50" 3. (Stats.percentile 50. v);
        close "p100" 5. (Stats.percentile 100. v);
        close "p25" 2. (Stats.percentile 25. v));
    test "linear regression recovers a line" (fun () ->
        let xs = [| 0.; 1.; 2.; 3. |] in
        let ys = Array.map (fun x -> (2.5 *. x) -. 1. ) xs in
        let slope, intercept = Stats.linear_regression xs ys in
        close ~tol:1e-10 "slope" 2.5 slope;
        close ~tol:1e-10 "intercept" (-1.) intercept);
    test "length mismatch raises" (fun () ->
        check_raises_invalid "mismatch" (fun () ->
            ignore (Stats.rmse [| 1. |] [| 1.; 2. |])));
  ]

let property_tests =
  [
    qtest ~count:50 "interp reproduces linear functions exactly"
      QCheck2.Gen.(triple (float_range (-2.) 2.) (float_range (-5.) 5.) (float_range 0.1 5.))
      (fun (slope, intercept, x) ->
        let xs = [| 0.; 1.; 3.; 6. |] in
        let ys = Array.map (fun xi -> (slope *. xi) +. intercept) xs in
        let t = Interp.create ~xs ~ys in
        Float.abs (Interp.eval t x -. ((slope *. x) +. intercept)) < 1e-9);
    qtest ~count:50 "rmse is zero iff identical" (gen_vec 8) (fun v ->
        Stats.rmse v v = 0.);
    qtest ~count:50 "variance is nonnegative" (gen_vec 9) (fun v -> Stats.variance v >= 0.);
    qtest ~count:50 "median within range" (gen_vec 9) (fun v ->
        let m = Stats.median v in
        m >= Ttsv_numerics.Vec.min_elt v && m <= Ttsv_numerics.Vec.max_elt v);
  ]

let suite = ("interp+stats", interp_tests @ stats_tests @ property_tests)
