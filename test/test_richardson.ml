(* Tests for Richardson extrapolation. *)

module Richardson = Ttsv_numerics.Richardson
open Helpers

(* synthetic convergence family v(h) = v* + C h^p *)
let v ~vstar ~c ~p h = vstar +. (c *. (h ** p))

let unit_tests =
  [
    test "two_point recovers the exact limit of a pure power law" (fun () ->
        let f = v ~vstar:36.9 ~c:2.1 ~p:2. in
        let lim =
          Richardson.two_point ~order:2. ~h_coarse:0.1 ~v_coarse:(f 0.1) ~h_fine:0.05
            ~v_fine:(f 0.05)
        in
        close_rel ~tol:1e-12 "limit" 36.9 lim);
    test "first-order law with first-order extrapolation" (fun () ->
        let f = v ~vstar:10. ~c:(-3.) ~p:1. in
        let lim =
          Richardson.two_point ~order:1. ~h_coarse:0.2 ~v_coarse:(f 0.2) ~h_fine:0.1
            ~v_fine:(f 0.1)
        in
        close_rel ~tol:1e-12 "limit" 10. lim);
    test "observed_order recovers the exponent" (fun () ->
        let f = v ~vstar:5. ~c:1. ~p:1.7 in
        let p =
          Richardson.observed_order ~h1:0.4 ~v1:(f 0.4) ~h2:0.2 ~v2:(f 0.2) ~h3:0.1
            ~v3:(f 0.1)
        in
        close_rel ~tol:1e-9 "order" 1.7 p);
    test "observed_order rejects non-geometric meshes" (fun () ->
        check_raises_invalid "family" (fun () ->
            ignore (Richardson.observed_order ~h1:1. ~v1:3. ~h2:0.5 ~v2:2. ~h3:0.3 ~v3:1.)));
    test "observed_order rejects non-monotone data" (fun () ->
        check_raises_invalid "monotone" (fun () ->
            ignore (Richardson.observed_order ~h1:1. ~v1:1. ~h2:0.5 ~v2:2. ~h3:0.25 ~v3:1.5)));
    test "two_point validates ordering" (fun () ->
        check_raises_invalid "h order" (fun () ->
            ignore (Richardson.two_point ~order:2. ~h_coarse:0.05 ~v_coarse:1. ~h_fine:0.1 ~v_fine:1.)));
    test "extrapolate_sequence picks the two finest pairs" (fun () ->
        let f = v ~vstar:(-2.) ~c:0.5 ~p:2. in
        let pairs = [ (0.4, f 0.4); (0.1, f 0.1); (0.2, f 0.2) ] in
        close_rel ~tol:1e-12 "limit" (-2.) (Richardson.extrapolate_sequence ~order:2. pairs));
    test "extrapolate_sequence needs two pairs" (fun () ->
        check_raises_invalid "pairs" (fun () ->
            ignore (Richardson.extrapolate_sequence ~order:1. [ (0.1, 1.) ])));
  ]

let property_tests =
  [
    qtest ~count:50 "exact for random power laws"
      QCheck2.Gen.(triple (float_range (-10.) 10.) (float_range 0.1 5.) (float_range 0.5 3.))
      (fun (vstar, c, p) ->
        let f = v ~vstar ~c ~p in
        let lim =
          Richardson.two_point ~order:p ~h_coarse:0.2 ~v_coarse:(f 0.2) ~h_fine:0.1
            ~v_fine:(f 0.1)
        in
        Float.abs (lim -. vstar) < 1e-9 *. Float.max 1. (Float.abs vstar));
  ]

let suite = ("richardson", unit_tests @ property_tests)
