(* Tests for CG, BiCGStab and the stationary iterations. *)

module Sparse = Ttsv_numerics.Sparse
module Iterative = Ttsv_numerics.Iterative
module Dense = Ttsv_numerics.Dense
module Vec = Ttsv_numerics.Vec
open Helpers

let gen_spd_system n =
  QCheck2.Gen.(gen_spd n >>= fun m -> gen_vec n >|= fun b -> (m, b))

let solves_to solver (m, b) =
  let r = solver m b in
  r.Iterative.converged
  && Vec.norm_inf (Vec.sub (Sparse.mat_vec m r.Iterative.solution) b)
     < 1e-6 *. Float.max 1. (Vec.norm_inf b)

let small_nonsym () =
  let b = Sparse.builder 3 3 in
  Sparse.add b 0 0 4.;
  Sparse.add b 0 1 1.;
  Sparse.add b 1 0 2.;
  Sparse.add b 1 1 5.;
  Sparse.add b 1 2 1.;
  Sparse.add b 2 1 (-1.);
  Sparse.add b 2 2 3.;
  Sparse.finalize b

let unit_tests =
  [
    test "cg solves identity" (fun () ->
        let m = Sparse.of_dense (Dense.identity 4) in
        let r = Iterative.cg m [| 1.; 2.; 3.; 4. |] in
        Alcotest.(check bool) "converged" true r.Iterative.converged;
        close "x2" 3. r.Iterative.solution.(2));
    test "cg zero rhs gives zero" (fun () ->
        let m = Sparse.of_dense (Dense.identity 3) in
        let r = Iterative.cg m [| 0.; 0.; 0. |] in
        close "norm" 0. (Vec.norm_inf r.Iterative.solution));
    test "cg_exn raises on tiny budget" (fun () ->
        let m, b = (small_nonsym (), [| 1.; 2.; 3. |]) in
        let spd = Sparse.of_dense (Dense.mat_mul (Dense.transpose (Sparse.to_dense m)) (Sparse.to_dense m)) in
        match Iterative.cg_exn ~max_iter:1 ~tol:1e-14 spd b with
        | exception Iterative.Not_converged _ -> ()
        | _ -> Alcotest.fail "expected Not_converged");
    test "bicgstab solves nonsymmetric" (fun () ->
        let m = small_nonsym () in
        let b = [| 1.; 2.; 3. |] in
        let r = Iterative.bicgstab ~tol:1e-12 m b in
        Alcotest.(check bool) "converged" true r.Iterative.converged;
        let exact = Dense.solve (Sparse.to_dense m) b in
        Alcotest.(check bool) "matches LU" true
          (Vec.approx_equal ~rtol:1e-6 ~atol:1e-9 r.Iterative.solution exact));
    test "jacobi rejects zero diagonal" (fun () ->
        let b = Sparse.builder 2 2 in
        Sparse.add b 0 1 1.;
        Sparse.add b 1 0 1.;
        check_raises_invalid "zero diag" (fun () ->
            ignore (Iterative.jacobi (Sparse.finalize b) [| 1.; 1. |])));
    test "sor validates omega" (fun () ->
        let m = Sparse.of_dense (Dense.identity 2) in
        check_raises_invalid "omega" (fun () ->
            ignore (Iterative.sor ~omega:2.5 m [| 1.; 1. |])));
    test "rhs dimension mismatch" (fun () ->
        let m = Sparse.of_dense (Dense.identity 2) in
        check_raises_invalid "dim" (fun () -> ignore (Iterative.cg m [| 1. |])));
    test "cg breakdown reports the true residual" (fun () ->
        (* diag(1, -1) is indefinite: p.Ap = 0 on the very first step, so
           the loop aborts before updating x.  The reported residual must
           be the recomputed ||b - A x|| / ||b|| = 1, not a stale
           recurrence value, and converged must agree with it. *)
        let b = Sparse.builder 2 2 in
        Sparse.add b 0 0 1.;
        Sparse.add b 1 1 (-1.);
        let m = Sparse.finalize b in
        let r = Iterative.cg ~tol:1e-10 m [| 1.; 1. |] in
        (match r.Iterative.status with
        | Iterative.Breakdown _ -> ()
        | s -> Alcotest.failf "expected Breakdown, got %a" Iterative.pp_status s);
        Alcotest.(check bool) "not converged" false r.Iterative.converged;
        close "true residual" 1. r.Iterative.residual);
    test "cg stagnating on an ill-conditioned system aborts long before the budget"
      (fun () ->
        (* the 12x12 Hilbert matrix (condition ~1e16) with an unreachable
           tolerance: CG floors well above tol and the stagnation guard
           must end the solve in a window's worth of iterations, not let
           it burn the whole budget *)
        let n = 12 in
        let b = Sparse.builder n n in
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            Sparse.add b i j (1. /. Float.of_int (i + j + 1))
          done
        done;
        let m = Sparse.finalize b in
        let rhs = Array.init n (fun i -> 1. /. Float.of_int (i + 1)) in
        let max_iter = 100_000 in
        (* the divergence guard is disarmed so the (also-valid) abort it
           would produce on recurrence noise cannot shadow the stagnation
           one under test *)
        let r =
          Iterative.cg ~tol:1e-20 ~max_iter ~stagnation_window:50 ~divergence_factor:1e300
            m rhs
        in
        (match r.Iterative.status with
        | Iterative.Stagnated _ -> ()
        | s -> Alcotest.failf "expected Stagnated, got %a" Iterative.pp_status s);
        Alcotest.(check bool)
          (Printf.sprintf "aborted early (%d iterations)" r.Iterative.iterations)
          true
          (r.Iterative.iterations < max_iter / 100));
    test "cg divergence guard trips when the recurrence blows up" (fun () ->
        (* same floored Hilbert solve, but with the stagnation guard
           disarmed instead: the residual recurrence drifts orders of
           magnitude above the best seen and the divergence guard fires *)
        let n = 12 in
        let b = Sparse.builder n n in
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            Sparse.add b i j (1. /. Float.of_int (i + j + 1))
          done
        done;
        let m = Sparse.finalize b in
        let rhs = Array.init n (fun i -> 1. /. Float.of_int (i + 1)) in
        let max_iter = 100_000 in
        let r = Iterative.cg ~tol:1e-20 ~max_iter ~stagnation_window:max_iter m rhs in
        (match r.Iterative.status with
        | Iterative.Diverged factor ->
          Alcotest.(check bool) "grew past the threshold" true (factor > 1e4)
        | s -> Alcotest.failf "expected Diverged, got %a" Iterative.pp_status s);
        Alcotest.(check bool)
          (Printf.sprintf "aborted early (%d iterations)" r.Iterative.iterations)
          true
          (r.Iterative.iterations < max_iter / 100));
  ]

(* the pre-optimization O(n^2) sweep, probing every (i, j) through
   Sparse.get: the regression reference for the O(nnz) row-iteration one *)
let reference_sweep omega a b d x =
  let n = Array.length x in
  for i = 0 to n - 1 do
    let acc = ref b.(i) in
    for j = 0 to n - 1 do
      acc := !acc -. (Sparse.get a i j *. x.(j))
    done;
    x.(i) <- x.(i) +. (omega *. !acc /. d.(i))
  done

let reference_stationary omega ~tol ~max_iter a b =
  let n = Array.length b in
  let d = Sparse.diagonal a in
  let x = Vec.zeros n in
  let nb = Float.max (Vec.norm2 b) 1e-300 in
  let res = ref (Vec.norm2 (Vec.sub b (Sparse.mat_vec a x)) /. nb) in
  let iter = ref 0 in
  while !res > tol && !iter < max_iter do
    incr iter;
    reference_sweep omega a b d x;
    res := Vec.norm2 (Vec.sub b (Sparse.mat_vec a x)) /. nb
  done;
  (x, !iter)

let property_tests =
  [
    qtest ~count:40 "cg solves SPD systems" (gen_spd_system 15)
      (solves_to (fun m b -> Iterative.cg ~tol:1e-12 m b));
    qtest ~count:30 "bicgstab solves SPD systems too" (gen_spd_system 10)
      (solves_to (fun m b -> Iterative.bicgstab ~tol:1e-12 m b));
    qtest ~count:20 "jacobi converges on these diagonally dominant systems" (gen_spd_system 8)
      (solves_to (fun m b -> Iterative.jacobi ~tol:1e-10 ~max_iter:20000 m b));
    qtest ~count:20 "gauss-seidel converges" (gen_spd_system 8)
      (solves_to (fun m b -> Iterative.gauss_seidel ~tol:1e-10 ~max_iter:20000 m b));
    qtest ~count:20 "sor with omega=1.3 converges" (gen_spd_system 8)
      (solves_to (fun m b -> Iterative.sor ~omega:1.3 ~tol:1e-10 ~max_iter:20000 m b));
    qtest ~count:30 "cg matches dense LU" (gen_spd_system 12) (fun (m, b) ->
        let r = Iterative.cg ~tol:1e-13 m b in
        let exact = Dense.solve (Sparse.to_dense m) b in
        Vec.approx_equal ~rtol:1e-6 ~atol:1e-8 r.Iterative.solution exact);
    qtest ~count:20 "warm start from the solution converges immediately" (gen_spd_system 10)
      (fun (m, b) ->
        let r1 = Iterative.cg ~tol:1e-13 m b in
        let r2 = Iterative.cg ~tol:1e-10 ~x0:r1.Iterative.solution m b in
        r2.Iterative.iterations = 0 && r2.Iterative.converged);
    (* the service solution cache's contract: on a reused operator with a
       nearby right-hand side, seeding from the cached solution can only
       save iterations, never add them *)
    qtest ~count:30 "warm start on a reused operator never adds iterations"
      (gen_spd_system 12)
      (fun (m, b) ->
        let cold = Iterative.cg ~tol:1e-10 m b in
        let b' = Array.map (fun v -> v *. (1. +. 1e-8)) b in
        let cold' = Iterative.cg ~tol:1e-10 m b' in
        let warm = Iterative.cg ~tol:1e-10 ~x0:cold.Iterative.solution m b' in
        warm.Iterative.converged
        && warm.Iterative.iterations <= cold'.Iterative.iterations);
    qtest ~count:20 "bicgstab warm start from the solution converges immediately"
      (gen_spd_system 10)
      (fun (m, b) ->
        let r1 = Iterative.bicgstab ~tol:1e-12 m b in
        let r2 = Iterative.bicgstab ~tol:1e-8 ~x0:r1.Iterative.solution m b in
        r2.Iterative.converged && r2.Iterative.iterations = 0);
    (* budget 200 < the minimum guard window of 250, so both loops run the
       same pure sweep schedule and must agree bit for bit *)
    qtest ~count:30 "gauss-seidel sweep matches the O(n^2) reference exactly"
      (gen_spd_system 10)
      (fun (m, b) ->
        let r = Iterative.gauss_seidel ~tol:1e-8 ~max_iter:200 m b in
        let x_ref, iters_ref = reference_stationary 1. ~tol:1e-8 ~max_iter:200 m b in
        r.Iterative.iterations = iters_ref && r.Iterative.solution = x_ref);
    qtest ~count:30 "sor sweep matches the O(n^2) reference exactly" (gen_spd_system 10)
      (fun (m, b) ->
        let r = Iterative.sor ~omega:1.3 ~tol:1e-8 ~max_iter:200 m b in
        let x_ref, iters_ref = reference_stationary 1.3 ~tol:1e-8 ~max_iter:200 m b in
        r.Iterative.iterations = iters_ref && r.Iterative.solution = x_ref);
  ]

let suite = ("iterative", unit_tests @ property_tests)
