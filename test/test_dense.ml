(* Unit and property tests for Ttsv_numerics.Dense (LU, det, inverse). *)

module Dense = Ttsv_numerics.Dense
module Vec = Ttsv_numerics.Vec
open Helpers

let residual a x b = Vec.norm_inf (Vec.sub (Dense.mat_vec a x) b)

let unit_tests =
  [
    test "identity solve returns rhs" (fun () ->
        let a = Dense.identity 3 in
        let x = Dense.solve a [| 1.; 2.; 3. |] in
        close "x0" 1. x.(0);
        close "x2" 3. x.(2));
    test "hand-computed 2x2" (fun () ->
        (* 2x + y = 5; x + 3y = 10 -> x = 1, y = 3 *)
        let a = Dense.of_arrays [| [| 2.; 1. |]; [| 1.; 3. |] |] in
        let x = Dense.solve a [| 5.; 10. |] in
        close "x" 1. x.(0);
        close "y" 3. x.(1));
    test "solve needs pivoting" (fun () ->
        (* zero in the leading position forces a row swap *)
        let a = Dense.of_arrays [| [| 0.; 1. |]; [| 1.; 0. |] |] in
        let x = Dense.solve a [| 2.; 7. |] in
        close "x" 7. x.(0);
        close "y" 2. x.(1));
    test "singular raises" (fun () ->
        let a = Dense.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |] |] in
        Alcotest.check_raises "singular" Dense.Singular (fun () ->
            ignore (Dense.solve a [| 1.; 1. |])));
    test "det identity" (fun () -> close "det" 1. (Dense.det (Dense.identity 4)));
    test "det of permutation is -1" (fun () ->
        let a = Dense.of_arrays [| [| 0.; 1. |]; [| 1.; 0. |] |] in
        close "det" (-1.) (Dense.det a));
    test "det triangular is diagonal product" (fun () ->
        let a = Dense.of_arrays [| [| 2.; 5.; 1. |]; [| 0.; 3.; 7. |]; [| 0.; 0.; 4. |] |] in
        close ~tol:1e-12 "det" 24. (Dense.det a));
    test "det singular is zero" (fun () ->
        let a = Dense.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |] |] in
        close "det" 0. (Dense.det a));
    test "inverse of 2x2" (fun () ->
        let a = Dense.of_arrays [| [| 4.; 7. |]; [| 2.; 6. |] |] in
        let inv = Dense.inverse a in
        let id = Dense.mat_mul a inv in
        Alcotest.(check bool) "a*inv = I" true
          (Dense.approx_equal ~atol:1e-12 id (Dense.identity 2)));
    test "mat_mul hand computed" (fun () ->
        let a = Dense.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
        let b = Dense.of_arrays [| [| 5.; 6. |]; [| 7.; 8. |] |] in
        let c = Dense.mat_mul a b in
        close "c00" 19. (Dense.get c 0 0);
        close "c11" 50. (Dense.get c 1 1));
    test "transpose" (fun () ->
        let a = Dense.of_arrays [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
        let at = Dense.transpose a in
        Alcotest.(check int) "rows" 3 (Dense.rows at);
        close "entry" 6. (Dense.get at 2 1));
    test "add_to accumulates" (fun () ->
        let m = Dense.create 2 2 in
        Dense.add_to m 0 0 1.5;
        Dense.add_to m 0 0 2.5;
        close "acc" 4. (Dense.get m 0 0));
    test "of_arrays rejects ragged" (fun () ->
        check_raises_invalid "ragged" (fun () ->
            Dense.of_arrays [| [| 1. |]; [| 1.; 2. |] |]));
    test "mat_vec dimension mismatch" (fun () ->
        check_raises_invalid "mat_vec" (fun () ->
            ignore (Dense.mat_vec (Dense.identity 2) [| 1. |])));
    test "is_symmetric" (fun () ->
        let s = Dense.of_arrays [| [| 1.; 2. |]; [| 2.; 5. |] |] in
        let ns = Dense.of_arrays [| [| 1.; 2. |]; [| 3.; 5. |] |] in
        Alcotest.(check bool) "sym" true (Dense.is_symmetric s);
        Alcotest.(check bool) "nonsym" false (Dense.is_symmetric ns));
    test "solve_many shares factorization" (fun () ->
        let a = Dense.of_arrays [| [| 2.; 0. |]; [| 0.; 4. |] |] in
        match Dense.solve_many a [ [| 2.; 4. |]; [| 4.; 8. |] ] with
        | [ x1; x2 ] ->
          close "x1" 1. x1.(0);
          close "x2" 2. x2.(0);
          close "y2" 2. x2.(1)
        | _ -> Alcotest.fail "wrong result count");
  ]

let property_tests =
  [
    qtest ~count:50 "LU solve has small residual"
      QCheck2.Gen.(gen_diag_dominant 8 >>= fun a -> gen_vec 8 >|= fun b -> (a, b))
      (fun (a, b) -> residual a (Dense.solve a b) b < 1e-8);
    qtest ~count:30 "inverse times matrix is identity" (gen_diag_dominant 6) (fun a ->
        Dense.approx_equal ~rtol:1e-7 ~atol:1e-8 (Dense.mat_mul a (Dense.inverse a))
          (Dense.identity 6));
    qtest ~count:30 "det of product is product of dets"
      QCheck2.Gen.(pair (gen_diag_dominant 4) (gen_diag_dominant 4))
      (fun (a, b) ->
        let lhs = Dense.det (Dense.mat_mul a b) and rhs = Dense.det a *. Dense.det b in
        Float.abs (lhs -. rhs) <= 1e-6 *. Float.max 1. (Float.abs rhs));
    qtest ~count:30 "transpose is involutive" (gen_diag_dominant 5) (fun a ->
        Dense.approx_equal (Dense.transpose (Dense.transpose a)) a);
    qtest ~count:30 "solve matches inverse application"
      QCheck2.Gen.(gen_diag_dominant 5 >>= fun a -> gen_vec 5 >|= fun b -> (a, b))
      (fun (a, b) ->
        let x1 = Dense.solve a b and x2 = Dense.mat_vec (Dense.inverse a) b in
        Vec.approx_equal ~rtol:1e-6 ~atol:1e-8 x1 x2);
  ]

let suite = ("dense", unit_tests @ property_tests)
