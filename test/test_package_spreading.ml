(* Tests for the package/ambient boundary and the spreading-resistance
   primitive. *)

module Package = Ttsv_core.Package
module Spreading = Ttsv_core.Spreading
open Helpers

let package_tests =
  [
    test "sink and junction temperatures" (fun () ->
        let pkg = Package.make ~ambient:25. ~resistance:0.5 () in
        close_rel "sink" 35. (Package.sink_temperature pkg ~total_power:20.);
        close_rel "junction" 47.8
          (Package.junction_temperature pkg ~total_power:20. ~model_rise:12.8));
    test "of_parts sums the chain" (fun () ->
        let pkg = Package.of_parts ~spreader:0.1 ~sink_to_air:0.4 () in
        close_rel "sum" 0.5 pkg.Package.resistance;
        close "default ambient" 25. pkg.Package.ambient);
    test "max power inverts the junction relation" (fun () ->
        let pkg = Package.make ~ambient:25. ~resistance:0.5 () in
        let rise_per_watt = 0.15 in
        let p = Package.max_power_for_junction pkg ~model_rise_per_watt:rise_per_watt
            ~junction_limit:85.
        in
        (* check the fixed point: junction at the limit for that power *)
        close_rel "fixed point" 85.
          (Package.junction_temperature pkg ~total_power:p ~model_rise:(rise_per_watt *. p)));
    test "required resistance closes the loop" (fun () ->
        let pkg = Package.make ~ambient:25. ~resistance:0. () in
        let r =
          Package.required_resistance pkg ~total_power:84. ~model_rise:12.8 ~junction_limit:85.
        in
        let pkg' = Package.make ~ambient:25. ~resistance:r () in
        close_rel "meets the limit" 85.
          (Package.junction_temperature pkg' ~total_power:84. ~model_rise:12.8));
    test "validation" (fun () ->
        check_raises_invalid "resistance" (fun () ->
            ignore (Package.make ~resistance:(-1.) ()));
        let pkg = Package.make ~resistance:0.5 () in
        check_raises_invalid "limit below ambient" (fun () ->
            ignore (Package.max_power_for_junction pkg ~model_rise_per_watt:0.1 ~junction_limit:20.)));
  ]

let spreading_tests =
  [
    test "full-coverage source recovers the exact 1-D slab" (fun () ->
        let b = 1e-3 and t = 5e-4 and k = 150. in
        close_rel ~tol:1e-9 "1-D limit"
          (Spreading.one_d_resistance ~cell_radius:b ~thickness:t ~conductivity:k)
          (Spreading.resistance ~source_radius:b ~cell_radius:b ~thickness:t ~conductivity:k ()));
    test "small sources constrict: factor > 1 and grows as the source shrinks" (fun () ->
        let factor a =
          Spreading.spreading_factor ~source_radius:a ~cell_radius:1e-3 ~thickness:5e-4
            ~conductivity:150.
        in
        Alcotest.(check bool) "f(0.5b) > 1" true (factor 5e-4 > 1.);
        Alcotest.(check bool) "monotone" true (factor 1e-4 > factor 5e-4);
        Alcotest.(check bool) "f(0.1b) substantial" true (factor 1e-4 > 2.));
    test "convective base adds resistance relative to isothermal" (fun () ->
        let iso =
          Spreading.resistance ~source_radius:2e-4 ~cell_radius:1e-3 ~thickness:5e-4
            ~conductivity:150. ()
        in
        let convective =
          Spreading.resistance ~source_radius:2e-4 ~cell_radius:1e-3 ~thickness:5e-4
            ~conductivity:150. ~heat_transfer_coeff:1e4 ()
        in
        Alcotest.(check bool) "higher with finite h" true (convective > iso));
    test "psi validation" (fun () ->
        check_raises_invalid "epsilon" (fun () ->
            ignore (Spreading.psi ~epsilon:1.5 ~tau:0.5 ~biot:Float.infinity));
        check_raises_invalid "tau" (fun () ->
            ignore (Spreading.psi ~epsilon:0.5 ~tau:0. ~biot:Float.infinity));
        check_raises_invalid "source size" (fun () ->
            ignore
              (Spreading.resistance ~source_radius:2e-3 ~cell_radius:1e-3 ~thickness:1e-4
                 ~conductivity:1. ())));
  ]

let property_tests =
  [
    qtest ~count:60 "spreading factor is always >= 1"
      QCheck2.Gen.(pair (float_range 0.05 1.) (float_range 0.05 2.))
      (fun (eps, tau) ->
        let b = 1e-3 in
        Spreading.spreading_factor ~source_radius:(eps *. b) ~cell_radius:b
          ~thickness:(tau *. b) ~conductivity:100.
        >= 1. -. 1e-9);
    qtest ~count:60 "resistance decreases with conductivity"
      QCheck2.Gen.(float_range 0.1 0.9)
      (fun eps ->
        let b = 1e-3 in
        let r k =
          Spreading.resistance ~source_radius:(eps *. b) ~cell_radius:b ~thickness:5e-4
            ~conductivity:k ()
        in
        r 300. < r 100.);
  ]

let suite = ("package+spreading", package_tests @ spreading_tests @ property_tests)
