(* Tests for the experiment harness: reporting plumbing plus the headline
   scientific claims of each reproduced figure (run at FV resolution 1 to
   keep the suite fast). *)

module Report = Ttsv_experiments.Report
module Fig4 = Ttsv_experiments.Fig4
module Fig5 = Ttsv_experiments.Fig5
module Fig6 = Ttsv_experiments.Fig6
module Fig7 = Ttsv_experiments.Fig7
module Table1 = Ttsv_experiments.Table1
module Case_study = Ttsv_experiments.Case_study
module Convergence = Ttsv_experiments.Convergence
module Reference = Ttsv_experiments.Reference
module Timing = Ttsv_experiments.Timing
open Helpers

let series label ys = { Report.label; ys }

let report_tests =
  [
    test "figure validates series lengths" (fun () ->
        check_raises_invalid "ragged" (fun () ->
            ignore
              (Report.figure ~title:"t" ~x_label:"x" ~x_unit:"u" ~xs:[| 1.; 2. |]
                 [ series "a" [| 1. |] ])));
    test "errors_vs computes the paper's metrics" (fun () ->
        let fig =
          Report.figure ~title:"t" ~x_label:"x" ~x_unit:"u" ~xs:[| 1.; 2. |]
            [ series "model" [| 11.; 18. |]; series "ref" [| 10.; 20. |] ]
        in
        match Report.errors_vs ~reference:"ref" fig with
        | [ { Report.model = "model"; max_rel; mean_rel } ] ->
          close ~tol:1e-12 "max" 0.1 max_rel;
          close ~tol:1e-12 "mean" 0.1 mean_rel
        | _ -> Alcotest.fail "unexpected rows");
    test "errors_vs missing reference raises Not_found" (fun () ->
        let fig =
          Report.figure ~title:"t" ~x_label:"x" ~x_unit:"u" ~xs:[| 1. |] [ series "a" [| 1. |] ]
        in
        match Report.errors_vs ~reference:"nope" fig with
        | exception Not_found -> ()
        | _ -> Alcotest.fail "expected Not_found");
    test "percent formatting" (fun () ->
        Alcotest.(check string) "4.2%" "4.2%" (Report.percent 0.042));
    test "print_table rejects ragged rows" (fun () ->
        let t = { Report.title = "x"; columns = [ "a"; "b" ]; rows = [ ("r", [ "1" ]) ] } in
        check_raises_invalid "ragged" (fun () ->
            Report.print_table (Format.make_formatter (fun _ _ _ -> ()) ignore) t));
    test "timing returns positive medians" (fun () ->
        let (), ms = Timing.time_ms ~repeats:3 (fun () -> ignore (Array.make 1000 0.)) in
        Alcotest.(check bool) "nonnegative" true (ms >= 0.));
  ]

let get_series fig label =
  match List.find_opt (fun s -> String.equal s.Report.label label) fig.Report.series with
  | Some s -> s.Report.ys
  | None -> Alcotest.failf "missing series %s" label

let monotone_decreasing ys =
  let ok = ref true in
  Array.iteri (fun i y -> if i > 0 && y > ys.(i - 1) +. 1e-12 then ok := false) ys;
  !ok

(* The scientific claims.  Resolution 1 keeps each figure under a second. *)
let figure_tests =
  [
    test "fig4: dT decreases with radius within each regime" (fun () ->
        let fig = Fig4.run ~resolution:1 () in
        let split = 4 in
        (* indices 0..4 are the 5-um-substrate regime, 5.. the 45-um one *)
        List.iter
          (fun label ->
            let ys = get_series fig label in
            Alcotest.(check bool) (label ^ " thin") true
              (monotone_decreasing (Array.sub ys 0 (split + 1)));
            Alcotest.(check bool) (label ^ " thick") true
              (monotone_decreasing (Array.sub ys (split + 1) (Array.length ys - split - 1))))
          [ "Model A"; "Model B(100)"; "FV" ]);
    test "fig4: proposed models beat 1-D at high aspect ratio" (fun () ->
        let fig = Fig4.run ~resolution:1 () in
        let fv = get_series fig "FV" and b = get_series fig "Model B(100)" in
        let one_d = get_series fig "Model 1D" in
        let err m = Float.abs (m.(0) -. fv.(0)) /. fv.(0) in
        Alcotest.(check bool) "B beats 1D at r=1um" true (err b < err one_d));
    test "fig5: dT increases with liner thickness except for 1-D" (fun () ->
        let fig = Fig5.run ~resolution:1 () in
        List.iter
          (fun label ->
            let ys = get_series fig label in
            Alcotest.(check bool) (label ^ " increasing") true
              (monotone_decreasing (Array.map (fun y -> -.y) ys)))
          [ "Model A"; "Model B(100)"; "FV" ];
        let one_d = get_series fig "Model 1D" in
        let spread =
          (Ttsv_numerics.Vec.max_elt one_d -. Ttsv_numerics.Vec.min_elt one_d)
          /. Ttsv_numerics.Vec.mean one_d
        in
        Alcotest.(check bool) "1-D flat within 2%" true (spread < 0.02));
    test "fig5: Model B error shrinks with segments" (fun () ->
        let fig = Fig5.run ~resolution:1 () in
        let fv = get_series fig "FV" in
        let err label =
          Ttsv_numerics.Stats.mean_rel_error (get_series fig label) fv
        in
        Alcotest.(check bool) "B(1)>B(20)" true (err "Model B(1)" > err "Model B(20)");
        Alcotest.(check bool) "B(20)>B(100)" true (err "Model B(20)" > err "Model B(100)");
        Alcotest.(check bool) "B(100)>B(500)" true (err "Model B(100)" > err "Model B(500)"));
    test "fig6: non-monotonic for the models, monotonic for 1-D" (fun () ->
        let fig = Fig6.run ~resolution:1 () in
        List.iter
          (fun label ->
            let min_at = Fig6.minimum_of fig label in
            Alcotest.(check bool)
              (Printf.sprintf "%s has an interior minimum (%g um)" label min_at)
              true
              (min_at > 5. && min_at < 80.))
          [ "Model A"; "Model B(100)"; "FV" ];
        let one_d = get_series fig "Model 1D" in
        Alcotest.(check bool) "1-D monotone increasing" true
          (monotone_decreasing (Array.map (fun y -> -.y) one_d)));
    test "fig7: division cools with saturation; 1-D is flat" (fun () ->
        let fig = Fig7.run ~resolution:1 () in
        List.iter
          (fun label ->
            Alcotest.(check bool) (label ^ " decreasing") true
              (monotone_decreasing (get_series fig label)))
          [ "Model A"; "Model B(100)"; "FV" ];
        let one_d = get_series fig "Model 1D" in
        Alcotest.(check bool) "1-D exactly flat" true
          (Array.for_all (fun y -> y = one_d.(0)) one_d));
    test "table1: errors fall and runtimes grow with segments" (fun () ->
        let rows = Table1.run ~resolution:1 () in
        let find label =
          match List.find_opt (fun r -> String.equal r.Table1.label label) rows with
          | Some r -> r
          | None -> Alcotest.failf "missing row %s" label
        in
        let b1 = find "B (1)" and b500 = find "B (500)" in
        Alcotest.(check bool) "error falls" true (b500.Table1.avg_err < b1.Table1.avg_err);
        (match (b1.Table1.time_ms, b500.Table1.time_ms) with
        | Some t1, Some t500 -> Alcotest.(check bool) "time grows" true (t500 > t1)
        | _ -> Alcotest.fail "missing timings"));
    test "case study: 1-D overestimates, models track the reference" (fun () ->
        let t = Case_study.run ~resolution:1 ~segments:200 () in
        let find label =
          match
            List.find_opt
              (fun e -> String.length e.Case_study.label >= String.length label
                        && String.sub e.Case_study.label 0 (String.length label) = label)
              t.Case_study.entries
          with
          | Some e -> e
          | None -> Alcotest.failf "missing entry %s" label
        in
        let fv = (find "FV").Case_study.max_rise in
        let a = (find "Model A").Case_study.max_rise in
        let one_d = (find "Model 1D").Case_study.max_rise in
        Alcotest.(check bool) "A within 15%" true (Float.abs (a -. fv) /. fv < 0.15);
        Alcotest.(check bool) "1-D overestimates by >40%" true (one_d > fv *. 1.4);
        Alcotest.(check int) "paper's via count" 177 t.Case_study.tsv_count);
    test "convergence: FV refinement is Cauchy" (fun () ->
        match Convergence.fv_mesh_convergence () with
        | (_, _, r1) :: (_, _, r2) :: (_, _, r3) :: _ ->
          Alcotest.(check bool) "increments shrink" true
            (Float.abs (r3 -. r2) < Float.abs (r2 -. r1))
        | _ -> Alcotest.fail "need at least three levels");
    test "block calibration lands in a plausible range" (fun () ->
        let c = Reference.block_coefficients () in
        Alcotest.(check bool) "k1" true
          (c.Ttsv_core.Coefficients.k1 > 0.5 && c.Ttsv_core.Coefficients.k1 < 3.);
        Alcotest.(check bool) "k2" true
          (c.Ttsv_core.Coefficients.k2 > 0.1 && c.Ttsv_core.Coefficients.k2 < 3.));
  ]

let suite = ("experiments", report_tests @ figure_tests)
