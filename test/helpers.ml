(* Shared test utilities: float comparisons, QCheck generators for
   geometries, and the alcotest/qcheck bridging boilerplate. *)

module Units = Ttsv_physics.Units
module Plane = Ttsv_geometry.Plane
module Tsv = Ttsv_geometry.Tsv
module Stack = Ttsv_geometry.Stack

let close ?(tol = 1e-9) msg expected actual =
  let scale = Float.max 1. (Float.abs expected) in
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.12g, got %.12g" msg expected actual)
    true
    (Float.abs (expected -. actual) <= tol *. scale)

let close_rel ?(tol = 1e-6) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.12g, got %.12g (rtol %g)" msg expected actual tol)
    true
    (Float.abs (expected -. actual) <= tol *. Float.abs expected)

let check_raises_invalid msg f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail (msg ^ ": expected Invalid_argument")

let test name f = Alcotest.test_case name `Quick f

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- geometry generators ------------------------------------------------- *)

(* A physically sensible random block: radius 1-15 um, liner 0.2-2 um,
   ILD 2-10 um, bond 0.5-3 um, substrates 5-80 um (500 um first plane),
   2 to 5 planes. *)
let gen_stack =
  let open QCheck2.Gen in
  let* r = float_range 1. 15. in
  let* t_liner = float_range 0.2 2. in
  let* t_ild = float_range 2. 10. in
  let* t_bond = float_range 0.5 3. in
  let* t_si = float_range 5. 80. in
  let* nplanes = int_range 2 5 in
  let tsv =
    Tsv.make ~radius:(Units.um r) ~liner_thickness:(Units.um t_liner)
      ~extension:(Units.um 1.) ()
  in
  let plane ~first =
    Plane.make
      ~t_substrate:(if first then Units.um 500. else Units.um t_si)
      ~t_ild:(Units.um t_ild)
      ~t_bond:(if first then 0. else Units.um t_bond)
      ~t_device:(Units.um 1.)
      ~device_power_density:(Units.w_per_mm3 700.)
      ~ild_power_density:(Units.w_per_mm3 70.) ()
  in
  let planes = plane ~first:true :: List.init (nplanes - 1) (fun _ -> plane ~first:false) in
  return (Stack.make ~footprint:(Units.um2 (100. *. 100.)) ~planes ~tsv ())

let gen_stack3 =
  let open QCheck2.Gen in
  let* r = float_range 1. 15. in
  let* t_liner = float_range 0.2 2. in
  let* t_si = float_range 5. 80. in
  return
    (Ttsv_core.Params.block ~r:(Units.um r) ~t_liner:(Units.um t_liner)
       ~t_si23:(Units.um t_si) ())

(* random positive heat triple, W *)
let gen_heats3 =
  let open QCheck2.Gen in
  let* q1 = float_range 1e-3 0.1 in
  let* q2 = float_range 1e-3 0.1 in
  let* q3 = float_range 1e-3 0.1 in
  return [| q1; q2; q3 |]

(* --- linear algebra generators ------------------------------------------ *)

(* strictly diagonally dominant random matrix: always nonsingular and safe
   for pivotless algorithms *)
let gen_diag_dominant n =
  let open QCheck2.Gen in
  let* entries = array_size (return (n * n)) (float_range (-1.) 1.) in
  return
    (Ttsv_numerics.Dense.init n n (fun i j ->
         let x = entries.((i * n) + j) in
         if i = j then 0. else x)
    |> fun m ->
    let row_sum i =
      let acc = ref 0. in
      for j = 0 to n - 1 do
        acc := !acc +. Float.abs (Ttsv_numerics.Dense.get m i j)
      done;
      !acc
    in
    Ttsv_numerics.Dense.init n n (fun i j ->
        if i = j then row_sum i +. 1. else Ttsv_numerics.Dense.get m i j))

let gen_vec n = QCheck2.Gen.(array_size (return n) (float_range (-10.) 10.))

(* random symmetric positive-definite sparse matrix built as a resistive
   grid-like graph plus diagonal anchoring *)
let gen_spd n =
  let open QCheck2.Gen in
  let* weights = array_size (return n) (float_range 0.1 10.) in
  let* anchors = array_size (return n) (float_range 0.1 5.) in
  let b = Ttsv_numerics.Sparse.builder n n in
  for i = 0 to n - 2 do
    let g = weights.(i) in
    Ttsv_numerics.Sparse.add b i i g;
    Ttsv_numerics.Sparse.add b (i + 1) (i + 1) g;
    Ttsv_numerics.Sparse.add b i (i + 1) (-.g);
    Ttsv_numerics.Sparse.add b (i + 1) i (-.g)
  done;
  for i = 0 to n - 1 do
    Ttsv_numerics.Sparse.add b i i anchors.(i)
  done;
  return (Ttsv_numerics.Sparse.finalize b)
