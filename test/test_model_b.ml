(* Tests for the distributed pi-segment Model B. *)

module Units = Ttsv_physics.Units
module Params = Ttsv_core.Params
module Model_a = Ttsv_core.Model_a
module Model_b = Ttsv_core.Model_b
module Stack = Ttsv_geometry.Stack
open Helpers

let gen_counts =
  QCheck2.Gen.(array_size (return 3) (int_range 1 30))

let unit_tests =
  [
    test "paper segmentation convention" (fun () ->
        let s = Params.block () in
        let seg = Model_b.paper_segmentation s 100 in
        let total i = fst seg.(i) + snd seg.(i) in
        Alcotest.(check int) "plane1 = n/10" 10 (total 0);
        Alcotest.(check int) "plane2 = n" 100 (total 1);
        Alcotest.(check int) "plane3 = n" 100 (total 2));
    test "paper segmentation of B(1)" (fun () ->
        let s = Params.block () in
        let seg = Model_b.paper_segmentation s 1 in
        Alcotest.(check int) "plane1" 1 (fst seg.(0) + snd seg.(0));
        (* the top plane keeps a substrate segment: bumped to 2 *)
        Alcotest.(check bool) "top has si seg" true (snd seg.(2) >= 1));
    test "node count matches segmentation" (fun () ->
        let s = Params.block () in
        let r = Model_b.solve_n s 10 in
        (* every non-top-ILD segment has 2 nodes, top-plane ILD segments 1,
           plus T0 *)
        Alcotest.(check bool) "plausible node count" true
          (r.Model_b.nodes > 20 && r.Model_b.nodes <= 2 + (2 * 2 * 21)));
    test "banded assembly equals the generic circuit solver" (fun () ->
        let s = Params.block () in
        let seg = Model_b.paper_segmentation s 20 in
        let banded = Model_b.max_rise (Model_b.solve s seg) in
        let circuit = Model_b.solve_via_circuit s seg in
        close_rel ~tol:1e-9 "same max" circuit banded);
    test "temperature profile rises with z on the bulk column" (fun () ->
        let s = Params.block () in
        let r = Model_b.solve_n s 50 in
        let profile = r.Model_b.bulk_profile in
        let n = Array.length profile in
        Alcotest.(check bool) "top hotter than bottom" true
          (snd profile.(n - 1) > snd profile.(0));
        (* z is strictly increasing *)
        let increasing = ref true in
        for i = 0 to n - 2 do
          if fst profile.(i) >= fst profile.(i + 1) then increasing := false
        done;
        Alcotest.(check bool) "z increasing" true !increasing;
        close_rel "profile spans the TSV-foot to top height"
          (Stack.total_height s -. (Stack.plane s 0).Ttsv_geometry.Plane.t_substrate
          +. s.Stack.tsv.Ttsv_geometry.Tsv.extension)
          (fst profile.(n - 1)));
    test "segment count convergence is monotone downward for the block" (fun () ->
        let s = Params.block () in
        let rise n = Model_b.max_rise (Model_b.solve_n s n) in
        let r1 = rise 1 and r20 = rise 20 and r100 = rise 100 and r500 = rise 500 in
        Alcotest.(check bool) "1>20" true (r1 > r20);
        Alcotest.(check bool) "20>100" true (r20 > r100);
        Alcotest.(check bool) "100>500" true (r100 > r500));
    test "B(500) vs B(1000) nearly converged" (fun () ->
        let s = Params.block () in
        let a = Model_b.max_rise (Model_b.solve_n s 500) in
        let b = Model_b.max_rise (Model_b.solve_n s 1000) in
        Alcotest.(check bool) "within 0.5%" true (Float.abs (a -. b) /. b < 0.005));
    test "t0 equals Rs * total heat" (fun () ->
        let s = Params.block () in
        let r = Model_b.solve_n s 50 in
        let rs = Ttsv_core.Resistances.of_stack s in
        close_rel ~tol:1e-9 "t0"
          (rs.Ttsv_core.Resistances.r_sink *. Stack.total_heat s)
          r.Model_b.t0);
    test "cluster division reduces the rise" (fun () ->
        let s = Params.fig7_stack () in
        let rise n = Model_b.max_rise (Model_b.solve_n ~cluster:n s 100) in
        Alcotest.(check bool) "n=4 cooler" true (rise 4 < rise 1);
        Alcotest.(check bool) "n=16 cooler still" true (rise 16 < rise 4));
    test "diminishing returns of cluster division" (fun () ->
        let s = Params.fig7_stack () in
        let rise n = Model_b.max_rise (Model_b.solve_n ~cluster:n s 100) in
        let d1 = rise 1 -. rise 4 and d2 = rise 4 -. rise 16 in
        Alcotest.(check bool) "saturating" true (d2 < d1));
    test "segmentation validation" (fun () ->
        let s = Params.block () in
        check_raises_invalid "counts length" (fun () ->
            ignore (Model_b.segmentation_for s ~counts:[| 1; 1 |]));
        check_raises_invalid "zero count" (fun () ->
            ignore (Model_b.segmentation_for s ~counts:[| 0; 1; 1 |]));
        check_raises_invalid "cluster" (fun () ->
            ignore (Model_b.solve ~cluster:0 s (Model_b.paper_segmentation s 10))));
    test "B(1) is close to unity-coefficient Model A" (fun () ->
        (* same physics, different lumping: they should agree within ~15% *)
        let s = Params.block () in
        let b1 = Model_b.max_rise (Model_b.solve_n s 1) in
        let a = Model_a.max_rise (Model_a.solve s) in
        Alcotest.(check bool)
          (Printf.sprintf "B(1)=%.2f vs A=%.2f" b1 a)
          true
          (Float.abs (b1 -. a) /. a < 0.15));
  ]

let property_tests =
  [
    qtest ~count:25 "banded equals circuit oracle on random segmentations"
      QCheck2.Gen.(pair gen_stack3 gen_counts)
      (fun (s, counts) ->
        let seg = Model_b.segmentation_for s ~counts in
        let banded = Model_b.max_rise (Model_b.solve s seg) in
        let oracle = Model_b.solve_via_circuit s seg in
        Float.abs (banded -. oracle) < 1e-8 *. Float.max 1. oracle);
    qtest ~count:25 "all nodal rises are positive" QCheck2.Gen.(pair gen_stack gen_counts)
      (fun (s, _) ->
        let r = Model_b.solve_n s 20 in
        Array.for_all (fun t -> t > 0.) r.Model_b.temps);
    qtest ~count:25 "refining the mesh never changes the answer wildly" gen_stack3 (fun s ->
        let a = Model_b.max_rise (Model_b.solve_n s 100) in
        let b = Model_b.max_rise (Model_b.solve_n s 200) in
        Float.abs (a -. b) /. b < 0.07);
  ]

let suite = ("model_b", unit_tests @ property_tests)
