(* Tests for power-trace parsing and evaluation. *)

module Trace = Ttsv_experiments.Trace
module Transient = Ttsv_core.Transient
module Params = Ttsv_core.Params
open Helpers

let unit_tests =
  [
    test "parse with header and comments" (fun () ->
        let t = Trace.parse "# a comment\ntime_s,scale\n0,1\n1,2\n2,0.5\n" in
        close_rel "duration" 2. (Trace.duration t);
        close_rel "peak" 2. (Trace.peak t);
        close "at 0" 1. (Trace.scale t 0.);
        close "midpoint interpolates" 1.5 (Trace.scale t 0.5));
    test "clamps outside the domain" (fun () ->
        let t = Trace.of_points [ (0., 1.); (1., 3.) ] in
        close "before" 1. (Trace.scale t (-5.));
        close "after" 3. (Trace.scale t 10.));
    test "single point is constant" (fun () ->
        let t = Trace.of_points [ (0., 0.7) ] in
        close "anywhere" 0.7 (Trace.scale t 42.);
        close "average" 0.7 (Trace.average t));
    test "average of a triangle" (fun () ->
        let t = Trace.of_points [ (0., 0.); (1., 1.) ] in
        close_rel "trapezoid" 0.5 (Trace.average t));
    test "malformed row after data fails with a line number" (fun () ->
        match Trace.parse "0,1\nnot,numbers\n" with
        | exception Failure msg ->
          Alcotest.(check bool) "mentions line" true
            (String.length msg > 0
            && Option.is_some (String.index_opt msg '2'))
        | _ -> Alcotest.fail "expected Failure");
    test "empty input fails" (fun () ->
        match Trace.parse "# nothing\n" with
        | exception Failure _ -> ()
        | _ -> Alcotest.fail "expected Failure");
    test "negative scale rejected" (fun () ->
        check_raises_invalid "scale" (fun () -> ignore (Trace.of_points [ (0., -1.) ])));
    test "square wave duty cycle and average" (fun () ->
        let t = Trace.square_wave ~period:1e-2 ~duty:0.25 ~high:1. ~low:0. ~samples:16 in
        close "high at start" 1. (Trace.scale t 1e-3);
        close "low in the tail" 0. (Trace.scale t 6e-3);
        (* average ~ duty * high + (1-duty) * low *)
        close ~tol:0.02 "average" 0.25 (Trace.average t));
    test "square wave validation" (fun () ->
        check_raises_invalid "duty" (fun () ->
            ignore (Trace.square_wave ~period:1. ~duty:1.5 ~high:1. ~low:0. ~samples:16)));
    test "trace drives the lumped transient" (fun () ->
        let stack = Params.block () in
        let t = Trace.square_wave ~period:8e-3 ~duty:0.5 ~high:1. ~low:0.2 ~samples:64 in
        let pulsed =
          Transient.solve ~power:(Trace.scale t) stack ~dt:2e-4 ~duration:0.04
        in
        let steady = Transient.solve stack ~dt:2e-4 ~duration:0.04 in
        let last a = a.(Array.length a - 1) in
        Alcotest.(check bool) "pulsed runs cooler" true
          (last pulsed.Transient.max_rise < last steady.Transient.max_rise);
        Alcotest.(check bool) "but not cold" true (last pulsed.Transient.max_rise > 0.));
    test "load roundtrips through a file" (fun () ->
        let path = Filename.temp_file "ttsv_trace" ".csv" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out path in
            output_string oc "0,1\n0.5,2\n";
            close_out oc;
            let t = Trace.load path in
            close_rel "peak" 2. (Trace.peak t)));
  ]

let suite = ("trace", unit_tests)
