(* Tests for the solver service: wire protocol round-trips, typed error
   responses for malformed input, the bounded LRU cache, and the engine's
   cache/warm-start behaviour end to end. *)

module Json = Ttsv_obs.Json
module P = Ttsv_service.Protocol
module Cache = Ttsv_service.Cache
module Engine = Ttsv_service.Engine
open Helpers

(* ---------------------------------------------------------------- protocol *)

let solve_request ?(id = "q") ?(radius_um = 5.) ?(resolution = 1) ?deadline_s () =
  {
    P.id;
    kind =
      P.Solve
        {
          geometry = { P.default_geometry with radius_um };
          resolution;
          tol = 1e-10;
          deadline_s;
        };
  }

let sweep_request ?(id = "s") () =
  {
    P.id;
    kind =
      P.Sweep
        {
          base = { geometry = P.default_geometry; resolution = 1; tol = 1e-10; deadline_s = None };
          param = P.Radius;
          from_um = 3.;
          to_um = 6.;
          points = 4;
        };
  }

let chip_request ?(id = "c") () =
  {
    P.id;
    kind =
      P.Chip_alloc
        {
          chip_geometry = P.default_geometry;
          grid = 4;
          size_mm = 2.;
          power_w = 4.;
          hotspot_w = 2.;
          budget_k = Some 30.;
          candidates = 1;
        };
  }

(* an id that is not UTF-8: surrogateescape must carry it byte-exact *)
let raw_id = "r\xc3\xa9q-\xff\x01/\"\\"

let roundtrips req =
  let s1 = Json.to_string (P.request_to_json req) in
  match P.parse_request s1 with
  | Error (_, e) -> Alcotest.failf "decode failed: %s" e.P.message
  | Ok req' ->
    let s2 = Json.to_string (P.request_to_json req') in
    Alcotest.(check string) "byte-exact re-encoding" s1 s2

let parse_error line =
  match P.parse_request line with
  | Ok _ -> Alcotest.fail "expected a decode error"
  | Error (id, e) -> (id, e)

let protocol_tests =
  [
    test "solve request round-trips byte-exact" (fun () ->
        roundtrips (solve_request ~id:"solve-1" ~radius_um:7.25 ());
        roundtrips (solve_request ~id:"with-deadline" ~deadline_s:1.5 ()));
    test "sweep request round-trips byte-exact" (fun () -> roundtrips (sweep_request ()));
    test "chip_alloc request round-trips byte-exact" (fun () -> roundtrips (chip_request ()));
    test "non-UTF-8 id survives encode/decode byte-exact" (fun () ->
        let req = solve_request ~id:raw_id () in
        roundtrips req;
        match P.parse_request (Json.to_string (P.request_to_json req)) with
        | Ok r -> Alcotest.(check string) "id bytes" raw_id r.P.id
        | Error _ -> Alcotest.fail "decode failed");
    test "omitted fields take the documented defaults" (fun () ->
        let line = {|{"schema":"ttsv.request.v1","id":"d","kind":"solve"}|} in
        match P.parse_request line with
        | Error (_, e) -> Alcotest.failf "decode failed: %s" e.P.message
        | Ok { P.kind = P.Solve s; _ } ->
          Alcotest.(check bool) "default geometry" true (s.P.geometry = P.default_geometry);
          Alcotest.(check int) "default resolution" 1 s.P.resolution;
          close "default tol" 1e-10 s.P.tol;
          Alcotest.(check bool) "no deadline" true (s.P.deadline_s = None)
        | Ok _ -> Alcotest.fail "wrong kind");
    test "a line that is not JSON maps to bad_json without an id" (fun () ->
        let id, e = parse_error "this is not json" in
        Alcotest.(check bool) "no id" true (id = None);
        Alcotest.(check string) "code" "bad_json" (P.error_code_name e.P.code));
    test "a non-object request maps to bad_request" (fun () ->
        let _, e = parse_error "[1,2,3]" in
        Alcotest.(check string) "code" "bad_request" (P.error_code_name e.P.code));
    test "a wrong schema still routes the id back" (fun () ->
        let id, e = parse_error {|{"schema":"ttsv.request.v2","id":"x","kind":"solve"}|} in
        Alcotest.(check bool) "id recovered" true (id = Some "x");
        Alcotest.(check string) "code" "bad_request" (P.error_code_name e.P.code));
    test "a typo'd field value is rejected, not defaulted" (fun () ->
        let id, e =
          parse_error {|{"schema":"ttsv.request.v1","id":"t","kind":"solve","tol":"tight"}|}
        in
        Alcotest.(check bool) "id recovered" true (id = Some "t");
        Alcotest.(check string) "code" "bad_request" (P.error_code_name e.P.code));
    test "an unknown kind is rejected by name" (fun () ->
        let contains s affix =
          let ls = String.length s and la = String.length affix in
          let rec at i = i + la <= ls && (String.sub s i la = affix || at (i + 1)) in
          at 0
        in
        let _, e = parse_error {|{"schema":"ttsv.request.v1","id":"k","kind":"melt"}|} in
        Alcotest.(check bool) "names the kind" true (contains e.P.message "melt"));
    test "error responses carry the typed code on the wire" (fun () ->
        let r =
          { P.request_id = None; result = Error (P.error P.Bad_json "nope") }
        in
        let s = P.response_to_string r in
        match Json.parse s with
        | Error m -> Alcotest.failf "response not JSON: %s" m
        | Ok j ->
          Alcotest.(check bool) "status error" true
            (Option.bind (Json.member "status" j) Json.to_string_opt = Some "error");
          Alcotest.(check bool) "null id" true (Json.member "id" j = Some Json.Null));
    test "tol and deadline do not perturb the cache key" (fun () ->
        let s r tol deadline_s =
          { P.geometry = { P.default_geometry with radius_um = r };
            resolution = 1; tol; deadline_s }
        in
        Alcotest.(check string) "same operator, same key" (P.solve_key (s 5. 1e-10 None))
          (P.solve_key (s 5. 1e-6 (Some 9.)));
        Alcotest.(check bool) "different radius, different key" true
          (P.solve_key (s 5. 1e-10 None) <> P.solve_key (s 6. 1e-10 None)));
  ]

(* ------------------------------------------------------------------- cache *)

let cache_tests =
  [
    test "lru evicts the least recently used entry" (fun () ->
        let c = Cache.create ~name:"t-lru" ~capacity:2 () in
        Cache.add c "a" 1;
        Cache.add c "b" 2;
        ignore (Cache.find c "a");
        Cache.add c "c" 3;
        Alcotest.(check int) "bounded" 2 (Cache.length c);
        Alcotest.(check bool) "a kept (recently used)" true (Cache.find c "a" = Some 1);
        Alcotest.(check bool) "b evicted" true (Cache.find c "b" = None);
        Alcotest.(check int) "one eviction" 1 (Cache.evictions c));
    test "hit and miss counters add up" (fun () ->
        let c = Cache.create ~name:"t-count" ~capacity:4 () in
        Cache.add c "k" 0;
        ignore (Cache.find c "k");
        ignore (Cache.find c "k");
        ignore (Cache.find c "absent");
        Alcotest.(check int) "hits" 2 (Cache.hits c);
        Alcotest.(check int) "misses" 1 (Cache.misses c);
        close "rate" (2. /. 3.) (Cache.hit_rate c));
    test "find_newest returns the freshest match" (fun () ->
        let c = Cache.create ~name:"t-newest" ~capacity:4 () in
        Cache.add c "old" 1;
        Cache.add c "young" 2;
        Cache.add c "odd" 3;
        Alcotest.(check bool) "freshest even" true
          (Cache.find_newest c (fun v -> v mod 2 = 0) = Some 2);
        Alcotest.(check bool) "no match" true (Cache.find_newest c (fun v -> v > 9) = None));
    test "overwriting a key does not grow the cache" (fun () ->
        let c = Cache.create ~name:"t-over" ~capacity:2 () in
        Cache.add c "k" 1;
        Cache.add c "k" 2;
        Alcotest.(check int) "one entry" 1 (Cache.length c);
        Alcotest.(check bool) "last write wins" true (Cache.find c "k" = Some 2));
    test "capacity below one is rejected" (fun () ->
        check_raises_invalid "capacity" (fun () ->
            ignore (Cache.create ~name:"t-bad" ~capacity:0 ())));
  ]

(* ------------------------------------------------------------------ engine *)

let expect_solved = function
  | { P.result = Ok (P.Solved s); _ } -> s
  | { P.result = Ok _; _ } -> Alcotest.fail "expected a solve payload"
  | { P.result = Error e; _ } -> Alcotest.failf "unexpected error: %s" e.P.message

let expect_error = function
  | { P.result = Error e; _ } -> e
  | { P.result = Ok _; _ } -> Alcotest.fail "expected an error response"

let engine_tests =
  [
    test "a repeated geometry is served from every cache level" (fun () ->
        let engine = Engine.create () in
        let req = solve_request ~id:"warm" () in
        let cold = expect_solved (Engine.handle engine req) in
        Alcotest.(check bool) "first solve is cold" true (cold.P.cache.P.warm = P.Cold);
        Alcotest.(check bool) "cold operator miss" true (not cold.P.cache.P.operator_hit);
        let warm = expect_solved (Engine.handle engine req) in
        Alcotest.(check bool) "operator hit" true warm.P.cache.P.operator_hit;
        Alcotest.(check bool) "precond hit" true warm.P.cache.P.precond_hit;
        Alcotest.(check bool) "exact warm start" true (warm.P.cache.P.warm = P.Warm_exact);
        Alcotest.(check int) "zero iterations" 0 warm.P.iterations;
        close "same answer" cold.P.max_rise_k warm.P.max_rise_k);
    test "a nearby geometry warm-starts from the freshest solution" (fun () ->
        let engine = Engine.create () in
        let a = expect_solved (Engine.handle engine (solve_request ~radius_um:5. ())) in
        let b = expect_solved (Engine.handle engine (solve_request ~radius_um:5.5 ())) in
        Alcotest.(check bool) "different operator" true (not b.P.cache.P.operator_hit);
        Alcotest.(check bool) "neighbour warm start" true
          (b.P.cache.P.warm = P.Warm_neighbour);
        Alcotest.(check bool) "fewer iterations than the cold solve" true
          (b.P.iterations <= a.P.iterations));
    test "a repeated sweep is answered entirely from cache" (fun () ->
        let engine = Engine.create () in
        let req = sweep_request () in
        let first =
          match (Engine.handle engine req).P.result with
          | Ok (P.Swept s) -> s
          | _ -> Alcotest.fail "expected a sweep payload"
        in
        Alcotest.(check int) "all points solved" 4 (List.length first.P.sweep_points);
        let again =
          match (Engine.handle engine req).P.result with
          | Ok (P.Swept s) -> s
          | _ -> Alcotest.fail "expected a sweep payload"
        in
        Alcotest.(check int) "every point warm" 4 again.P.warm_starts;
        Alcotest.(check int) "no iterations left to do" 0 again.P.sweep_iterations;
        List.iter2
          (fun (p : P.sweep_point) (q : P.sweep_point) ->
            close "same rise" p.P.point_rise_k q.P.point_rise_k)
          first.P.sweep_points again.P.sweep_points);
    test "invalid geometry maps to a typed invalid_geometry error" (fun () ->
        let engine = Engine.create () in
        let e = expect_error (Engine.handle engine (solve_request ~radius_um:(-2.) ())) in
        Alcotest.(check string) "code" "invalid_geometry" (P.error_code_name e.P.code));
    test "an impossible deadline maps to deadline_exceeded with diagnostics" (fun () ->
        let engine = Engine.create () in
        let e =
          expect_error (Engine.handle engine (solve_request ~deadline_s:1e-9 ()))
        in
        Alcotest.(check string) "code" "deadline_exceeded" (P.error_code_name e.P.code);
        Alcotest.(check bool) "diagnostics attached" true (e.P.diagnostics <> None));
    test "out-of-range resolution is rejected, never meshed" (fun () ->
        let engine = Engine.create () in
        let e = expect_error (Engine.handle engine (solve_request ~resolution:99 ())) in
        Alcotest.(check string) "code" "bad_request" (P.error_code_name e.P.code));
    test "handle_batch preserves request order" (fun () ->
        let engine = Engine.create () in
        let reqs =
          Array.init 6 (fun i ->
              solve_request ~id:(Printf.sprintf "b%d" i)
                ~radius_um:(float_of_int (3 + (i mod 3)))
                ())
        in
        let rs = Engine.handle_batch engine reqs in
        Alcotest.(check int) "one response per request" 6 (Array.length rs);
        Array.iteri
          (fun i r ->
            Alcotest.(check bool)
              (Printf.sprintf "response %d routed" i)
              true
              (r.P.request_id = Some (Printf.sprintf "b%d" i)))
          rs);
  ]

(* ------------------------------------------------------------------- serve *)

(* run [Engine.serve] over literal input lines through temp files and
   hand back the response lines *)
let serve_lines ?batch input_lines =
  let in_path = Filename.temp_file "ttsv_serve" ".in" in
  let out_path = Filename.temp_file "ttsv_serve" ".out" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove in_path;
      Sys.remove out_path)
    (fun () ->
      let oc = open_out in_path in
      List.iter (fun l -> output_string oc (l ^ "\n")) input_lines;
      close_out oc;
      let engine = Engine.create () in
      let ic = open_in in_path and oc = open_out out_path in
      let answered =
        Fun.protect
          ~finally:(fun () ->
            close_in ic;
            close_out oc)
          (fun () -> Engine.serve ?batch engine ic oc)
      in
      let ic = open_in out_path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      (answered, List.rev !lines))

let response_field line name =
  match Json.parse line with
  | Error m -> Alcotest.failf "response line is not JSON: %s" m
  | Ok j -> Json.member name j

let serve_tests =
  [
    test "serve answers every line in order, malformed lines included" (fun () ->
        let good id = Json.to_string (P.request_to_json (solve_request ~id ())) in
        let answered, lines =
          serve_lines ~batch:2
            [
              good "q0";
              "definitely not json";
              {|{"schema":"ttsv.request.v2","id":"q2","kind":"solve"}|};
              good "q3";
            ]
        in
        Alcotest.(check int) "answered all" 4 answered;
        Alcotest.(check int) "one response per line" 4 (List.length lines);
        let statuses =
          List.map
            (fun l -> Option.get (Option.bind (response_field l "status") Json.to_string_opt))
            lines
        in
        Alcotest.(check (list string)) "statuses in input order"
          [ "ok"; "error"; "error"; "ok" ] statuses;
        let ids = List.map (fun l -> response_field l "id") lines in
        Alcotest.(check bool) "ids routed in order" true
          (ids
          = [
              Some (Json.String "q0");
              Some Json.Null;
              Some (Json.String "q2");
              Some (Json.String "q3");
            ]));
    test "serve ignores blank lines and stops at end of input" (fun () ->
        let answered, lines =
          serve_lines [ ""; Json.to_string (P.request_to_json (solve_request ~id:"only" ())); "" ]
        in
        Alcotest.(check int) "one request" 1 answered;
        Alcotest.(check int) "one response" 1 (List.length lines));
    test "serve rejects a non-positive batch size" (fun () ->
        check_raises_invalid "batch" (fun () -> ignore (serve_lines ~batch:0 [])));
  ]

let suite =
  ( "service",
    protocol_tests @ cache_tests @ engine_tests @ serve_tests )
