(* Preconditioner correctness: IC(0)/SSOR-preconditioned CG agrees with
   the dense direct solve on the paper's Table I grids, preconditioning
   never costs iterations on random SPD systems, and IC(0) breakdown
   retries with growing diagonal shifts instead of giving up. *)

module Vec = Ttsv_numerics.Vec
module Sparse = Ttsv_numerics.Sparse
module Dense = Ttsv_numerics.Dense
module Precond = Ttsv_numerics.Precond
module Iterative = Ttsv_numerics.Iterative
module Units = Ttsv_physics.Units
module Params = Ttsv_core.Params
module Problem = Ttsv_fem.Problem
module Solver = Ttsv_fem.Solver
open Helpers

let get_ok what = function
  | Ok m -> m
  | Error why -> Alcotest.fail (Printf.sprintf "%s: construction failed: %s" what why)

(* dense tridiagonal SPD fixture: IC(0) on a tridiagonal matrix is the
   exact Cholesky factorization, so [apply] must invert it exactly *)
let tridiag_spd n =
  let b = Sparse.builder n n in
  for i = 0 to n - 1 do
    Sparse.add b i i (4. +. (0.1 *. float_of_int i));
    if i + 1 < n then begin
      Sparse.add b i (i + 1) (-1.);
      Sparse.add b (i + 1) i (-1.)
    end
  done;
  Sparse.finalize b

let sparse_of_dense rows =
  let n = Array.length rows in
  let b = Sparse.builder n n in
  Array.iteri
    (fun i row -> Array.iteri (fun j v -> if v <> 0. then Sparse.add b i j v) row)
    rows;
  Sparse.finalize b

(* --- Table I grid agreement with the dense direct solve ------------------ *)

(* the Table I sweep varies the TSV radius; resolution 1 keeps the grid
   (n = 1020) small enough to factor densely as the reference *)
let table1_grids () =
  List.map
    (fun r_um ->
      let stack = Params.block ~r:(Units.um r_um) () in
      let p = Problem.of_stack stack in
      let a = Solver.assemble p in
      (Printf.sprintf "r=%gum" r_um, a, p.Problem.source))
    [ 2.; 5.; 10. ]

let check_matches_direct name make_precond =
  List.iter
    (fun (grid, a, b) ->
      let exact = Dense.solve (Sparse.to_dense a) b in
      let m = make_precond a in
      let r = Iterative.cg ~tol:1e-13 ~precond:m a b in
      Alcotest.(check bool)
        (Printf.sprintf "%s converged on %s" name grid)
        true r.Iterative.converged;
      let scale = Float.max 1e-300 (Vec.norm_inf exact) in
      let diff = Vec.norm_inf (Vec.sub r.Iterative.solution exact) /. scale in
      Alcotest.(check bool)
        (Printf.sprintf "%s matches dense direct on %s (rel diff %.3g)" name grid diff)
        true
        (diff <= 1e-8))
    (table1_grids ())

let test_ic0_matches_direct () =
  check_matches_direct "IC(0)-CG" (fun a -> get_ok "ic0" (Precond.ic0 a))

let test_ssor_matches_direct () =
  check_matches_direct "SSOR-CG" (fun a -> get_ok "ssor" (Precond.ssor a))

(* --- preconditioning never costs iterations (qcheck) --------------------- *)

(* random SPD tridiagonal-perturbed system (resistive chain + anchors):
   CG with any of the three preconditioners must converge in no more
   iterations than unpreconditioned CG (identity preconditioner) *)
let gen_spd_system =
  let open QCheck2.Gen in
  let* n = int_range 10 60 in
  let* a = gen_spd n in
  let* b = gen_vec n in
  return (n, a, b)

let prop_preconditioned_no_worse (n, a, b) =
  let tol = 1e-10 and max_iter = 20 * n in
  let solve precond =
    let r = Iterative.cg ~tol ~max_iter ~precond a b in
    if not r.Iterative.converged then
      QCheck2.Test.fail_reportf "CG (%s) failed to converge" (Precond.name precond);
    r.Iterative.iterations
  in
  let identity = Precond.jacobi_of_diagonal (Array.make n 1.) in
  let plain = solve identity in
  let ic0 = solve (get_ok "ic0" (Precond.ic0 a)) in
  let ssor = solve (get_ok "ssor" (Precond.ssor a)) in
  if ic0 > plain then
    QCheck2.Test.fail_reportf "IC(0)-CG took %d iterations, plain CG %d" ic0 plain;
  if ssor > plain then
    QCheck2.Test.fail_reportf "SSOR-CG took %d iterations, plain CG %d" ssor plain;
  true

(* --- IC(0) breakdown and shift retry ------------------------------------- *)

let test_ic0_spd_no_shift () =
  let a = tridiag_spd 12 in
  let m = get_ok "ic0" (Precond.ic0 a) in
  Alcotest.(check (option (float 0.)))
    "SPD factorization needs no shift" (Some 0.) (Precond.ic0_shift m)

let test_ic0_breakdown_retries_shift () =
  (* symmetric indefinite with positive diagonal: the unshifted pivot is
     5 - 36/4 < 0, and only the last relative shift (1.0) rescues it *)
  let a = sparse_of_dense [| [| 4.; 6. |]; [| 6.; 5. |] |] in
  let m = get_ok "ic0" (Precond.ic0 a) in
  Alcotest.(check (option (float 0.)))
    "breakdown retried up to shift 1.0" (Some 1.) (Precond.ic0_shift m)

let test_ic0_all_shifts_fail () =
  (* pivot is a_11 (1 + s) - 9 / (1 + s): negative for every default
     shift (still -2.5 at s = 1), so construction must report the error *)
  let a = sparse_of_dense [| [| 1.; 3. |]; [| 3.; 1. |] |] in
  match Precond.ic0 a with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected breakdown at every shift"

let test_ic0_missing_diagonal () =
  let a = sparse_of_dense [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  match Precond.ic0 a with
  | Error why ->
    Alcotest.(check bool)
      (Printf.sprintf "error mentions the diagonal: %s" why)
      true
      (String.length why > 0)
  | Ok _ -> Alcotest.fail "expected missing-diagonal error"

(* --- apply semantics ------------------------------------------------------ *)

let test_ic0_exact_on_tridiagonal () =
  (* zero fill loses nothing on a tridiagonal pattern: IC(0) is the full
     Cholesky factorization and apply is an exact solve *)
  let n = 8 in
  let a = tridiag_spd n in
  let b = Array.init n (fun i -> float_of_int (i + 1)) in
  let exact = Dense.solve (Sparse.to_dense a) b in
  let m = get_ok "ic0" (Precond.ic0 a) in
  let x = Precond.apply m b in
  Array.iteri (fun i e -> close ~tol:1e-12 (Printf.sprintf "x[%d]" i) e x.(i)) exact

let test_jacobi_apply_scales_by_diagonal () =
  let a = tridiag_spd 5 in
  let d = Sparse.diagonal a in
  let b = Array.init 5 (fun i -> 1. +. float_of_int i) in
  let x = Precond.apply (Precond.jacobi a) b in
  Array.iteri (fun i bi -> close ~tol:1e-15 (Printf.sprintf "x[%d]" i) (bi /. d.(i)) x.(i)) b

let test_ssor_rejects_bad_omega () =
  let a = tridiag_spd 4 in
  check_raises_invalid "omega = 0" (fun () -> Precond.ssor ~omega:0. a);
  check_raises_invalid "omega = 2" (fun () -> Precond.ssor ~omega:2. a)

let test_ssor_zero_diagonal () =
  let a = sparse_of_dense [| [| 0.; 1. |]; [| 1.; 3. |] |] in
  match Precond.ssor a with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected zero-diagonal error"

let test_apply_dimension_mismatch () =
  let m = get_ok "ic0" (Precond.ic0 (tridiag_spd 6)) in
  check_raises_invalid "wrong dimension" (fun () -> Precond.apply m (Array.make 5 1.))

let test_cg_precond_dimension_mismatch () =
  let a = tridiag_spd 6 in
  let m = get_ok "ic0" (Precond.ic0 (tridiag_spd 5)) in
  check_raises_invalid "cg rejects mismatched preconditioner" (fun () ->
      Iterative.cg ~precond:m a (Array.make 6 1.))

let suite =
  ( "precond",
    [
      test "IC(0)-CG matches dense direct on Table I grids" test_ic0_matches_direct;
      test "SSOR-CG matches dense direct on Table I grids" test_ssor_matches_direct;
      qtest ~count:50 "preconditioned CG needs no more iterations than plain CG"
        gen_spd_system prop_preconditioned_no_worse;
      test "IC(0) on SPD input uses no diagonal shift" test_ic0_spd_no_shift;
      test "IC(0) breakdown retries with growing shifts" test_ic0_breakdown_retries_shift;
      test "IC(0) reports breakdown when every shift fails" test_ic0_all_shifts_fail;
      test "IC(0) rejects a row without a stored diagonal" test_ic0_missing_diagonal;
      test "IC(0) is exact Cholesky on a tridiagonal matrix" test_ic0_exact_on_tridiagonal;
      test "Jacobi apply divides by the diagonal" test_jacobi_apply_scales_by_diagonal;
      test "SSOR rejects omega outside (0, 2)" test_ssor_rejects_bad_omega;
      test "SSOR reports a zero diagonal" test_ssor_zero_diagonal;
      test "apply rejects dimension mismatch" test_apply_dimension_mismatch;
      test "cg rejects mismatched preconditioner" test_cg_precond_dimension_mismatch;
    ] )
