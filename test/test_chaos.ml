(* Chaos suite: budgets, fault injection, crash containment and
   checkpoint/resume.  The contract under test is uniform — whatever is
   injected (NaN matvecs, preconditioner failures, worker crashes,
   stalls, expired budgets), the library answers with a genuinely
   converged solution or a typed diagnostic, never an uncaught exception
   or a hang — and a killed-and-resumed sweep is byte-identical to an
   uninterrupted one.

   Under `dune runtest` the fault engine is disarmed and the ambient
   tests exercise the fault-free path; the CI chaos job re-runs this
   suite alone with TTSV_FAULTS armed across several seeds (test_main
   gates the other suites out, since a globally armed engine breaks
   their determinism contracts by design). *)

module Budget = Ttsv_parallel.Budget
module Fault = Ttsv_parallel.Fault
module Pool = Ttsv_parallel.Pool
module Sparse = Ttsv_numerics.Sparse
module Iterative = Ttsv_numerics.Iterative
module Robust = Ttsv_robust.Robust
module Diagnostics = Ttsv_robust.Diagnostics
module Solver = Ttsv_fem.Solver
module Problem = Ttsv_fem.Problem
module Params = Ttsv_core.Params
module Units = Ttsv_physics.Units
module Json = Ttsv_obs.Json
module E = Ttsv_experiments
open Helpers

(* run [f] under [spec], then restore whatever was armed before (the CI
   chaos job arms TTSV_FAULTS at load; tests must not disarm it for
   their neighbours) *)
let with_spec spec f =
  let prev = Fault.current_spec () in
  (match Fault.configure spec with
  | Ok () -> ()
  | Error why -> Alcotest.fail (Printf.sprintf "spec %S rejected: %s" spec why));
  Fun.protect
    ~finally:(fun () ->
      match prev with
      | Some s -> ignore (Fault.configure s)
      | None -> Fault.disarm ())
    f

let with_disarmed f =
  let prev = Fault.current_spec () in
  Fault.disarm ();
  Fun.protect
    ~finally:(fun () ->
      match prev with Some s -> ignore (Fault.configure s) | None -> ())
    f

(* a fixed SPD system, deterministic and quick to solve *)
let fixed_system n =
  let b = Sparse.builder n n in
  for i = 0 to n - 1 do
    Sparse.add b i i (4. +. (0.01 *. float_of_int i));
    if i > 0 then Sparse.add b i (i - 1) (-1.);
    if i < n - 1 then Sparse.add b i (i + 1) (-1.)
  done;
  let a = Sparse.finalize b in
  let rhs = Array.init n (fun i -> cos (0.3 *. float_of_int i) +. 0.5) in
  (a, rhs)

let rel_residual a x rhs =
  let ax = Sparse.mat_vec a x in
  let num = ref 0. and den = ref 0. in
  Array.iteri
    (fun i bi ->
      let r = bi -. ax.(i) in
      num := !num +. (r *. r);
      den := !den +. (bi *. bi))
    rhs;
  sqrt (!num /. !den)

(* --------------------------------------------------------------- budgets *)

let budget_tests =
  [
    test "make validates its limits" (fun () ->
        check_raises_invalid "negative deadline" (fun () ->
            ignore (Budget.make ~deadline_s:(-1.) ()));
        check_raises_invalid "nan deadline" (fun () ->
            ignore (Budget.make ~deadline_s:Float.nan ()));
        check_raises_invalid "negative work" (fun () ->
            ignore (Budget.make ~max_work:(-1) ()));
        check_raises_invalid "split ways < 1" (fun () ->
            ignore (Budget.split (Budget.make ()) ~ways:0)));
    test "an unlimited budget never expires" (fun () ->
        let b = Budget.make () in
        Budget.tick ~n:1_000_000 b;
        Alcotest.(check bool) "holds" true (Budget.check b = None);
        Budget.check_exn b;
        Alcotest.(check bool) "infinite clock" true (Budget.remaining_s b = infinity));
    test "the work cap expires after exactly its ticks" (fun () ->
        let b = Budget.make ~max_work:3 () in
        Budget.tick b;
        Budget.tick b;
        Alcotest.(check bool) "still alive at 2/3" true (Budget.check b = None);
        Budget.tick b;
        Alcotest.(check bool)
          "work verdict" true
          (Budget.check b = Some Budget.Work_exhausted);
        Alcotest.(check int) "spent" 3 (Budget.work_spent b);
        match Budget.check_exn b with
        | () -> Alcotest.fail "expected Expired"
        | exception Budget.Expired Budget.Work_exhausted -> ()
        | exception Budget.Expired Budget.Deadline_exceeded ->
          Alcotest.fail "work must be checked before the clock");
    test "a zero deadline expires as soon as the clock moves" (fun () ->
        let b = Budget.make ~deadline_s:0. () in
        Unix.sleepf 2e-3;
        Alcotest.(check bool)
          "deadline verdict" true
          (Budget.check b = Some Budget.Deadline_exceeded);
        Alcotest.(check (float 0.)) "no time left" 0. (Budget.remaining_s b));
    test "work is checked before the clock (deterministic verdicts)" (fun () ->
        let b = Budget.make ~deadline_s:0. ~max_work:0 () in
        Unix.sleepf 2e-3;
        Alcotest.(check bool)
          "work wins" true
          (Budget.check b = Some Budget.Work_exhausted));
    test "split rations the clock but shares the work counter" (fun () ->
        let b = Budget.make ~deadline_s:10. ~max_work:2 () in
        let s = Budget.split b ~ways:2 in
        Alcotest.(check bool)
          "child gets about half the clock" true
          (Budget.remaining_s s <= 5.1);
        Alcotest.(check bool)
          "parent keeps its deadline" true
          (Budget.remaining_s b > 9.);
        Budget.tick s;
        Budget.tick s;
        Alcotest.(check bool)
          "ticks on the share exhaust the parent" true
          (Budget.check b = Some Budget.Work_exhausted));
    test "cg reports Budget_exhausted with the iterate so far" (fun () ->
        with_disarmed @@ fun () ->
        let a, rhs = fixed_system 50 in
        let b = Budget.make ~max_work:1 () in
        let r = Iterative.cg ~tol:1e-12 ~budget:b a rhs in
        Alcotest.(check bool) "not converged" false r.Iterative.converged;
        match r.Iterative.status with
        | Iterative.Budget_exhausted Budget.Work_exhausted -> ()
        | s ->
          Alcotest.fail
            (Format.asprintf "expected Budget_exhausted, got %a" Iterative.pp_status s));
    test "Robust.solve degrades to a typed Deadline_exceeded" (fun () ->
        let a, rhs = fixed_system 50 in
        let b = Budget.make ~deadline_s:0. () in
        Unix.sleepf 2e-3;
        match Robust.solve ~budget:b a rhs with
        | Ok _ -> Alcotest.fail "expected a deadline failure"
        | Error f -> (
          match f.Robust.reason with
          | Robust.Deadline_exceeded ->
            ignore (Format.asprintf "%a" Robust.pp_failure f)
          | Robust.Invalid_input _ | Robust.Exhausted ->
            Alcotest.fail "expected Deadline_exceeded"));
    test "an FV solve under an expired deadline is a typed partial result" (fun () ->
        let p = Problem.of_stack ~resolution:1 (Params.fig5_stack (Units.um 1.)) in
        let b = Budget.make ~deadline_s:0. () in
        Unix.sleepf 2e-3;
        match Solver.try_solve ~budget:b p with
        | Ok _ -> Alcotest.fail "expected a deadline failure"
        | Error f -> (
          match f.Robust.reason with
          | Robust.Deadline_exceeded -> ()
          | Robust.Invalid_input _ | Robust.Exhausted ->
            Alcotest.fail "expected Deadline_exceeded"));
    test "a generous budget changes nothing, bit for bit" (fun () ->
        (* disarmed: an ambient fault spec would advance the draw counter
           differently in the two runs and void the bitwise claim *)
        with_disarmed @@ fun () ->
        let a, rhs = fixed_system 80 in
        let reference = Iterative.cg ~tol:1e-10 a rhs in
        let budget = Budget.make ~deadline_s:3600. ~max_work:max_int () in
        let r = Iterative.cg ~tol:1e-10 ~budget a rhs in
        Alcotest.(check int) "iterations" reference.Iterative.iterations
          r.Iterative.iterations;
        Alcotest.(check (array (float 0.)))
          "solution" reference.Iterative.solution r.Iterative.solution);
  ]

(* ---------------------------------------------------------- fault engine *)

let fault_tests =
  [
    test "malformed specs are rejected and leave the engine unchanged" (fun () ->
        with_spec "matvec=0.5:42" @@ fun () ->
        List.iter
          (fun bad ->
            match Fault.configure bad with
            | Ok () -> Alcotest.fail (Printf.sprintf "accepted %S" bad)
            | Error _ -> ())
          [
            "";
            "gibberish";
            "matvec=0.5" (* no seed *);
            "matvec=1.5:1" (* rate out of range *);
            "matvec=-0.1:1";
            "bogus=0.5:1" (* unknown site *);
            "matvec=0.5,matvec=0.5:1" (* duplicate site *);
            "matvec=0.5:notanint";
          ];
        Alcotest.(check bool) "still armed" true (Fault.armed ());
        Alcotest.(check (option string))
          "previous spec kept" (Some "matvec=0.5:42") (Fault.current_spec ()));
    test "draws replay identically for the same spec and seed" (fun () ->
        let draws () = List.init 200 (fun _ -> Fault.fire "matvec") in
        let first = with_spec "matvec=0.4:1234" draws in
        let second = with_spec "matvec=0.4:1234" draws in
        Alcotest.(check (list bool)) "same sequence" first second;
        let other = with_spec "matvec=0.4:1235" draws in
        Alcotest.(check bool) "a different seed differs" true (first <> other);
        Alcotest.(check bool)
          "a 0.4 rate fires sometimes" true
          (List.mem true first && List.mem false first));
    test "rate endpoints: 0 never fires, 1 always fires" (fun () ->
        with_spec "matvec=0,precond=1:7" @@ fun () ->
        for _ = 1 to 100 do
          Alcotest.(check bool) "rate 0" false (Fault.fire "matvec");
          Alcotest.(check bool) "rate 1" true (Fault.fire "precond")
        done);
    test "unconfigured or unknown sites never fire" (fun () ->
        with_spec "matvec=1:3" @@ fun () ->
        Alcotest.(check bool) "worker not in spec" false (Fault.fire "worker");
        Alcotest.(check bool) "unknown site" false (Fault.fire "no-such-site"));
    test "disarm turns every probe into a no-op" (fun () ->
        with_disarmed @@ fun () ->
        Alcotest.(check bool) "disarmed" false (Fault.armed ());
        Alcotest.(check (option string)) "no spec" None (Fault.current_spec ());
        Alcotest.(check bool) "no fire" false (Fault.fire "matvec");
        Fault.raise_if "worker";
        let v = [| 1.; 2. |] in
        Fault.poison "matvec" v;
        Alcotest.(check (float 0.)) "no poison" 1. v.(0));
    test "poison writes a NaN and injected_total counts it" (fun () ->
        with_spec "matvec=1:5" @@ fun () ->
        let before = Fault.injected_total () in
        let v = [| 1.; 2. |] in
        Fault.poison "matvec" v;
        Alcotest.(check bool) "NaN written" true (Float.is_nan v.(0));
        Alcotest.(check (float 0.)) "rest untouched" 2. v.(1);
        Alcotest.(check bool) "counted" true (Fault.injected_total () > before));
    test "raise_if carries the site name" (fun () ->
        with_spec "worker=1:5" @@ fun () ->
        match Fault.raise_if "worker" with
        | () -> Alcotest.fail "expected Injected"
        | exception Fault.Injected site ->
          Alcotest.(check string) "site" "worker" site);
  ]

(* ------------------------------------------------------- crash containment *)

let containment_tests =
  [
    test "worker crashes are contained: results complete, failures counted" (fun () ->
        with_spec "worker=1:11" @@ fun () ->
        Pool.with_pool ~domains:4 @@ fun pool ->
        let n = 5000 in
        let counts = Array.make n 0 in
        Pool.parallel_for ~chunk:64 ~min_size:2 pool n (fun i ->
            counts.(i) <- counts.(i) + 1);
        Alcotest.(check bool)
          "every index once" true
          (Array.for_all (( = ) 1) counts);
        Alcotest.(check bool) "failures counted" true (Pool.worker_failures pool > 0);
        (* the pool survives: disarm and run again *)
        with_disarmed (fun () ->
            let counts = Array.make n 0 in
            Pool.parallel_for ~chunk:64 ~min_size:2 pool n (fun i ->
                counts.(i) <- counts.(i) + 1);
            Alcotest.(check bool)
              "usable after the crash" true
              (Array.for_all (( = ) 1) counts)));
    test "a pooled solve under worker crashes equals the fault-free solve" (fun () ->
        let a, rhs = fixed_system 300 in
        let reference = with_disarmed (fun () -> Robust.solve a rhs) in
        with_spec "worker=1:13" @@ fun () ->
        Pool.with_pool ~domains:4 @@ fun pool ->
        match (reference, Robust.solve ~pool a rhs) with
        | Ok (x_ref, _), Ok (x, _) ->
          Alcotest.(check (array (float 0.))) "identical solution" x_ref x
        | Ok _, Error f ->
          Alcotest.fail
            (Format.asprintf "degraded solve failed: %a" Robust.pp_failure f)
        | Error _, _ -> Alcotest.fail "fault-free reference failed");
    test "stalled workers only slow the pool down, never change results" (fun () ->
        let a, rhs = fixed_system 200 in
        let reference = with_disarmed (fun () -> Robust.solve a rhs) in
        with_spec "stall=0.5:17" @@ fun () ->
        Pool.with_pool ~domains:2 @@ fun pool ->
        match (reference, Robust.solve ~pool a rhs) with
        | Ok (x_ref, _), Ok (x, _) ->
          Alcotest.(check (array (float 0.))) "identical solution" x_ref x;
          Alcotest.(check int) "no failures" 0 (Pool.worker_failures pool)
        | Ok _, Error _ | Error _, _ -> Alcotest.fail "stall must not fail a solve");
    test "sequential fault replay is deterministic end to end" (fun () ->
        let a, rhs = fixed_system 120 in
        let spec = "matvec=0.05,precond=0.5:23" in
        let outcome () =
          match Robust.solve a rhs with
          | Ok (x, d) -> Ok (x, List.length d.Diagnostics.attempts)
          | Error f -> Error f.Robust.reason
        in
        let first = with_spec spec outcome in
        let second = with_spec spec outcome in
        match (first, second) with
        | Ok (x1, n1), Ok (x2, n2) ->
          Alcotest.(check int) "same ladder path" n1 n2;
          Alcotest.(check (array (float 0.))) "same solution" x1 x2
        | Error r1, Error r2 ->
          Alcotest.(check bool) "same reason" true (r1 = r2)
        | _ -> Alcotest.fail "runs under the same spec diverged");
    test "injected preconditioner failures surface as Skipped attempts" (fun () ->
        let a, rhs = fixed_system 150 in
        with_spec "precond=1:29" @@ fun () ->
        match Robust.solve a rhs with
        | Error f ->
          Alcotest.fail (Format.asprintf "ladder gave up: %a" Robust.pp_failure f)
        | Ok (x, d) ->
          with_disarmed (fun () ->
              Alcotest.(check bool)
                "genuinely converged" true
                (rel_residual a x rhs <= 1e-6));
          let skipped =
            List.exists
              (fun (at : Diagnostics.attempt) ->
                match at.Diagnostics.outcome with
                | Diagnostics.Skipped _ -> true
                | Diagnostics.Success | Diagnostics.Iterative_failure _
                | Diagnostics.Singular | Diagnostics.Residual_too_large _ -> false)
              d.Diagnostics.attempts
          in
          Alcotest.(check bool) "some rung skipped" true skipped);
    test "an injected multigrid construction fault degrades to the IC(0) rung" (fun () ->
        (* seed 0 was probed to make the first precond-site draw (the mg
           build) fire and the second (the ic0 build) pass, so the
           ladder's new top rung dies and the old top rung answers *)
        let stack = Params.fig5_stack (Units.um 1.) in
        let p = Problem.of_stack ~resolution:1 stack in
        let a = Solver.assemble p in
        let g = p.Problem.grid in
        let shape = [| Ttsv_fem.Grid.nr g; Ttsv_fem.Grid.nz g |] in
        with_spec "precond=0.5:0" @@ fun () ->
        match Robust.solve ~shape a p.Problem.source with
        | Error f ->
          Alcotest.fail (Format.asprintf "ladder gave up: %a" Robust.pp_failure f)
        | Ok (_, d) ->
          (match d.Diagnostics.solved_by with
          | Some Diagnostics.Cg_ic0 -> ()
          | Some r ->
            Alcotest.fail ("expected the ic0 rung, got " ^ Diagnostics.rung_name r)
          | None -> Alcotest.fail "no rung recorded");
          (match d.Diagnostics.attempts with
          | { Diagnostics.rung = Diagnostics.Cg_mg;
              outcome = Diagnostics.Skipped why;
              _
            }
            :: _ ->
            Alcotest.(check string)
              "skip reason" "mg: injected construction fault" why
          | _ -> Alcotest.fail "first attempt was not a skipped multigrid rung"));
    test "a work budget expiring mid-V-cycle is a typed Deadline_exceeded" (fun () ->
        (* 50 work units let the hierarchy build and a few CG+V-cycle
           iterations complete, then the cycle's own matvec ticks
           exhaust the budget mid-cycle: the mg rung records its best
           iterate and the ladder's next-rung check converts the expiry
           into the typed deadline failure carrying that iterate.
           Disarmed: an ambient spec can skip rungs or corrupt matvecs,
           changing where the fixed work budget runs out *)
        with_disarmed @@ fun () ->
        let stack = Params.fig5_stack (Units.um 1.) in
        let p = Problem.of_stack ~resolution:1 stack in
        let b = Budget.make ~max_work:50 () in
        match Solver.try_solve ~budget:b p with
        | Ok _ -> Alcotest.fail "expected a budget failure"
        | Error f ->
          (match f.Robust.reason with
          | Robust.Deadline_exceeded -> ()
          | Robust.Invalid_input _ | Robust.Exhausted ->
            Alcotest.fail "expected Deadline_exceeded");
          Alcotest.(check bool)
            "the solver's work actually ticked the budget" true
            (Budget.work_spent b >= 50);
          (match f.Robust.best with
          | Some x -> Alcotest.(check int) "best iterate has full dimension"
              (Array.length p.Problem.source) (Array.length x)
          | None -> Alcotest.fail "no best iterate carried out of the expiry");
          ignore (Format.asprintf "%a" Robust.pp_failure f));
  ]

(* ------------------------------------------------------- chaos properties *)

let gen_fault_spec =
  let open QCheck2.Gen in
  let* m = float_range 0. 0.3 in
  let* p = float_range 0. 1. in
  let* w = float_range 0. 1. in
  let* s = float_range 0. 0.2 in
  let* seed = int_range 1 1_000_000 in
  return (Printf.sprintf "matvec=%.3f,precond=%.3f,worker=%.3f,stall=%.3f:%d" m p w s seed)

(* the central chaos property: whatever the armed spec, [Robust.solve]
   either converges for real (checked against the disarmed matrix) or
   returns a typed non-input failure — exceptions and hangs fail the
   qcheck harness on their own *)
let solve_is_typed ?pool a rhs =
  match Robust.solve ?pool a rhs with
  | Ok (x, _) ->
    with_disarmed (fun () -> rel_residual a x rhs <= 1e-6)
  | Error f -> (
    match f.Robust.reason with
    | Robust.Invalid_input _ -> false (* a healthy system must not be rejected *)
    | Robust.Exhausted | Robust.Deadline_exceeded -> true)

let property_tests =
  [
    qtest ~count:25 "chaos: any fault spec yields convergence or a typed failure"
      QCheck2.Gen.(pair (gen_spd 40) (pair (gen_vec 40) gen_fault_spec))
      (fun (a, (rhs, spec)) -> with_spec spec (fun () -> solve_is_typed a rhs));
    qtest ~count:10 "chaos: pooled solves under faults stay typed (2 domains)"
      QCheck2.Gen.(pair (gen_spd 40) (pair (gen_vec 40) gen_fault_spec))
      (fun (a, (rhs, spec)) ->
        with_spec spec (fun () ->
            Pool.with_pool ~domains:2 (fun pool -> solve_is_typed ~pool a rhs)));
    qtest ~count:10 "chaos: faults plus a work cap still yield a typed outcome"
      QCheck2.Gen.(
        pair (gen_spd 40) (pair (gen_vec 40) (pair gen_fault_spec (int_range 0 200))))
      (fun (a, (rhs, (spec, cap))) ->
        with_spec spec (fun () ->
            let budget = Budget.make ~max_work:cap () in
            match Robust.solve ~budget a rhs with
            | Ok (x, _) -> with_disarmed (fun () -> rel_residual a x rhs <= 1e-6)
            | Error f -> (
              match f.Robust.reason with
              | Robust.Invalid_input _ -> false
              | Robust.Exhausted | Robust.Deadline_exceeded -> true)));
    test "the ambient spec (TTSV_FAULTS, when set) is contained too" (fun () ->
        (* disarmed under plain `dune runtest`; the CI chaos job arms it *)
        let a, rhs = fixed_system 90 in
        for _ = 1 to 10 do
          Alcotest.(check bool) "typed outcome" true (solve_is_typed a rhs)
        done);
  ]

(* ------------------------------------------------- diagnostics serialization *)

let diagnostics_tests =
  [
    test "to_json with NaN/Inf residuals is valid JSON and parses back" (fun () ->
        let attempt rung outcome residual wall =
          { Diagnostics.rung; outcome; iterations = 3; residual; wall_time = wall; conv = None }
        in
        let d =
          {
            Diagnostics.attempts =
              [
                attempt Diagnostics.Cg_ic0
                  (Diagnostics.Iterative_failure (Iterative.Non_finite "iterates"))
                  Float.nan infinity;
                attempt Diagnostics.Direct
                  (Diagnostics.Residual_too_large infinity)
                  neg_infinity 0.;
                attempt Diagnostics.Cg
                  (Diagnostics.Iterative_failure
                     (Iterative.Budget_exhausted Budget.Deadline_exceeded))
                  0.5 1e-3;
              ];
            solved_by = None;
            iterations = 3;
            residual = Float.nan;
            trace = [| 1.; Float.nan; infinity; neg_infinity |];
            conv = None;
            wall_time = Float.nan;
          }
        in
        let s = Json.to_string (Diagnostics.to_json d) in
        Alcotest.(check bool)
          "no bare nan token" false
          (let lower = String.lowercase_ascii s in
           let contains needle =
             let nl = String.length needle and l = String.length lower in
             let rec go i = i + nl <= l && (String.sub lower i nl = needle || go (i + 1)) in
             go 0
           in
           contains "nan" || contains "inf");
        match Json.parse s with
        | Ok reparsed ->
          (* the non-finite floats degrade to null, by JSON necessity *)
          (match Json.member "residual" reparsed with
          | Some Json.Null -> ()
          | Some _ | None -> Alcotest.fail "NaN residual must serialize as null");
          (match Json.member "trace" reparsed with
          | Some (Json.List [ _; Json.Null; Json.Null; Json.Null ]) -> ()
          | Some _ | None -> Alcotest.fail "non-finite trace entries must be null")
        | Error e -> Alcotest.fail ("diagnostics JSON does not parse: " ^ e));
    test "a real failure's diagnostics serialize and parse" (fun () ->
        let a, rhs = fixed_system 30 in
        rhs.(0) <- Float.nan;
        match Robust.solve a rhs with
        | Ok _ -> Alcotest.fail "NaN input must be rejected"
        | Error f -> (
          match Json.parse (Json.to_string (Diagnostics.to_json f.Robust.diagnostics)) with
          | Ok _ -> ()
          | Error e -> Alcotest.fail ("failure diagnostics do not parse: " ^ e)));
  ]

(* --------------------------------------------------- checkpoint / resume *)

let tmp_file () = Filename.temp_file "ttsv_chaos_cp" ".jsonl"

let copy_first_lines src dst n =
  In_channel.with_open_bin src @@ fun ic ->
  Out_channel.with_open_bin dst @@ fun oc ->
  (try
     for _ = 1 to n do
       Out_channel.output_string oc (input_line ic);
       Out_channel.output_char oc '\n'
     done
   with End_of_file -> ())

let bits = Array.map Int64.bits_of_float

(* awkward floats on purpose: non-terminating binary fractions,
   subnormal-adjacent magnitudes, negative zero.  (A sweep value that
   overflows to inf cannot round-trip — JSON has no inf literal, so it
   records as null and the point recomputes on resume: still correct,
   just uncached — hence no max_float here.) *)
let awkward_points = [ 0.1; 1. /. 3.; 1e-300; -0.; 1e153; 4.25 ]

let checkpoint_tests =
  [
    test "record, close, resume: every point is found again" (fun () ->
        let path = tmp_file () in
        Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
        E.Checkpoint.with_file path (fun cp ->
            E.Checkpoint.record cp ~stage:"s" 0 (Json.Float 1.5);
            E.Checkpoint.record cp ~stage:"s" 2 (Json.List [ Json.Int 7 ]);
            E.Checkpoint.record cp ~stage:"other" 0 (Json.String "x"));
        E.Checkpoint.with_file ~resume:true path (fun cp ->
            Alcotest.(check int) "three records" 3 (E.Checkpoint.completed_count cp);
            (match E.Checkpoint.find cp ~stage:"s" 0 with
            | Some (Json.Float f) -> Alcotest.(check (float 0.)) "value" 1.5 f
            | Some _ | None -> Alcotest.fail "point (s,0) lost");
            Alcotest.(check bool)
              "uncompleted point absent" true
              (E.Checkpoint.find cp ~stage:"s" 1 = None);
            Alcotest.(check bool)
              "stages are namespaced" true
              (E.Checkpoint.find cp ~stage:"other" 2 = None)));
    test "a torn final line (kill mid-write) is skipped, not fatal" (fun () ->
        let path = tmp_file () in
        Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
        E.Checkpoint.with_file path (fun cp ->
            E.Checkpoint.record cp ~stage:"s" 0 (Json.Float 1.);
            E.Checkpoint.record cp ~stage:"s" 1 (Json.Float 2.));
        (* simulate the kill: truncate the last record mid-JSON *)
        let text = In_channel.with_open_bin path In_channel.input_all in
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc (String.sub text 0 (String.length text - 9)));
        E.Checkpoint.with_file ~resume:true path (fun cp ->
            Alcotest.(check int) "only the intact record" 1 (E.Checkpoint.completed_count cp);
            Alcotest.(check bool) "torn point gone" true (E.Checkpoint.find cp ~stage:"s" 1 = None);
            (* and the file still appends *)
            E.Checkpoint.record cp ~stage:"s" 1 (Json.Float 2.);
            Alcotest.(check bool) "re-recorded" true (E.Checkpoint.find cp ~stage:"s" 1 <> None)));
    test "resumed sweep: only missing points recompute, bitwise-identical results"
      (fun () ->
        let f x = (x *. 3.1) +. sin x in
        let full = E.Sweep.map f awkward_points in
        let path = tmp_file () and partial = tmp_file () in
        Fun.protect ~finally:(fun () ->
            Sys.remove path;
            Sys.remove partial)
        @@ fun () ->
        let recorded =
          E.Checkpoint.with_file path (fun cp ->
              E.Sweep.map ~checkpoint:(E.Sweep.float_stage cp "t") f awkward_points)
        in
        Alcotest.(check (array int64)) "checkpointed run identical" (bits full)
          (bits recorded);
        (* keep only the first half of the records, as a kill would *)
        copy_first_lines path partial 3;
        let calls = ref 0 in
        let resumed =
          E.Checkpoint.with_file ~resume:true partial (fun cp ->
              E.Sweep.map
                ~checkpoint:(E.Sweep.float_stage cp "t")
                (fun x ->
                  incr calls;
                  f x)
                awkward_points)
        in
        Alcotest.(check int) "only the unfinished points re-solved" 3 !calls;
        Alcotest.(check (array int64)) "resumed run bitwise identical" (bits full)
          (bits resumed));
    test "a fully recorded sweep resumes with zero recomputation" (fun () ->
        let f x = x *. x in
        let path = tmp_file () in
        Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
        let full =
          E.Checkpoint.with_file path (fun cp ->
              E.Sweep.map ~checkpoint:(E.Sweep.float_stage cp "t") f awkward_points)
        in
        let resumed =
          E.Checkpoint.with_file ~resume:true path (fun cp ->
              E.Sweep.map
                ~checkpoint:(E.Sweep.float_stage cp "t")
                (fun _ -> Alcotest.fail "a completed point was recomputed")
                awkward_points)
        in
        Alcotest.(check (array int64)) "loaded bitwise" (bits full) (bits resumed));
    test "pooled sweeps checkpoint from worker domains safely" (fun () ->
        let f x = sin x +. (2. *. x) in
        let xs = List.init 40 (fun i -> 0.1 *. float_of_int i) in
        let full = E.Sweep.map f xs in
        let path = tmp_file () in
        Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
        let pooled =
          Pool.with_pool ~domains:4 @@ fun pool ->
          E.Checkpoint.with_file path (fun cp ->
              E.Sweep.map ~pool ~checkpoint:(E.Sweep.float_stage cp "t") f xs)
        in
        Alcotest.(check (array int64)) "pooled+checkpointed identical" (bits full)
          (bits pooled);
        E.Checkpoint.with_file ~resume:true path (fun cp ->
            Alcotest.(check int)
              "every point recorded exactly once" (List.length xs)
              (E.Checkpoint.completed_count cp)));
    test "fig5 resumed from a truncated checkpoint is bitwise identical" (fun () ->
        (* disarmed: the FV reference solves inside fig5 are only
           run-to-run deterministic when no faults perturb the ladder *)
        with_disarmed @@ fun () ->
        let series_bits (fig : E.Report.figure) =
          List.map (fun (s : E.Report.series) -> (s.E.Report.label, bits s.E.Report.ys))
            fig.E.Report.series
        in
        let reference = E.Fig5.run ~resolution:1 () in
        let path = tmp_file () and partial = tmp_file () in
        Fun.protect ~finally:(fun () ->
            Sys.remove path;
            Sys.remove partial)
        @@ fun () ->
        ignore
          (E.Checkpoint.with_file path (fun cp -> E.Fig5.run ~resolution:1 ~checkpoint:cp ()));
        copy_first_lines path partial 17;
        let resumed =
          E.Checkpoint.with_file ~resume:true partial (fun cp ->
              E.Fig5.run ~resolution:1 ~checkpoint:cp ())
        in
        List.iter2
          (fun (label, ref_ys) (label', ys) ->
            Alcotest.(check string) "series" label label';
            Alcotest.(check (array int64)) label ref_ys ys)
          (series_bits reference) (series_bits resumed));
    test "a decode rejecting a record recomputes that point" (fun () ->
        let path = tmp_file () in
        Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
        E.Checkpoint.with_file path (fun cp ->
            E.Checkpoint.record cp ~stage:"t" 0 (Json.String "not a float"));
        E.Checkpoint.with_file ~resume:true path (fun cp ->
            let calls = ref 0 in
            let out =
              E.Sweep.map
                ~checkpoint:(E.Sweep.float_stage cp "t")
                (fun x ->
                  incr calls;
                  x +. 1.)
                [ 41. ]
            in
            Alcotest.(check int) "recomputed" 1 !calls;
            Alcotest.(check (float 0.)) "fresh value" 42. out.(0)));
  ]

let suite =
  ( "chaos",
    budget_tests @ fault_tests @ containment_tests @ property_tests @ diagnostics_tests
    @ checkpoint_tests )
