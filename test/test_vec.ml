(* Unit and property tests for Ttsv_numerics.Vec. *)

module Vec = Ttsv_numerics.Vec
open Helpers

let unit_tests =
  [
    test "create fills" (fun () ->
        let v = Vec.create 4 2.5 in
        Array.iter (fun x -> close "fill" 2.5 x) v);
    test "zeros" (fun () -> close "sum of zeros" 0. (Vec.sum (Vec.zeros 10)));
    test "init" (fun () ->
        let v = Vec.init 5 float_of_int in
        close "init sum" 10. (Vec.sum v));
    test "dot hand computed" (fun () ->
        close "dot" 32. (Vec.dot [| 1.; 2.; 3. |] [| 4.; 5.; 6. |]));
    test "dot dimension mismatch" (fun () ->
        check_raises_invalid "dot" (fun () -> Vec.dot [| 1. |] [| 1.; 2. |]));
    test "norm2 of 3-4-5" (fun () -> close "norm" 5. (Vec.norm2 [| 3.; 4. |]));
    test "norm_inf" (fun () -> close "ninf" 7. (Vec.norm_inf [| -7.; 3.; 2. |]));
    test "norm1" (fun () -> close "n1" 12. (Vec.norm1 [| -7.; 3.; 2. |]));
    test "add sub" (fun () ->
        let x = [| 1.; 2. |] and y = [| 10.; 20. |] in
        close "add" 11. (Vec.add x y).(0);
        close "sub" (-9.) (Vec.sub x y).(0));
    test "axpy in place" (fun () ->
        let y = [| 1.; 1. |] in
        Vec.axpy 2. [| 3.; 4. |] y;
        close "axpy0" 7. y.(0);
        close "axpy1" 9. y.(1));
    test "scale_in_place" (fun () ->
        let x = [| 2.; -4. |] in
        Vec.scale_in_place 0.5 x;
        close "s0" 1. x.(0);
        close "s1" (-2.) x.(1));
    test "map2" (fun () ->
        let v = Vec.map2 ( *. ) [| 2.; 3. |] [| 4.; 5. |] in
        close "map2" 8. v.(0);
        close "map2b" 15. v.(1));
    test "max min argmax" (fun () ->
        let v = [| 3.; -1.; 9.; 2. |] in
        close "max" 9. (Vec.max_elt v);
        close "min" (-1.) (Vec.min_elt v);
        Alcotest.(check int) "argmax" 2 (Vec.argmax v));
    test "max_elt empty raises" (fun () ->
        check_raises_invalid "max" (fun () -> Vec.max_elt [||]));
    test "mean" (fun () -> close "mean" 2. (Vec.mean [| 1.; 2.; 3. |]));
    test "linspace endpoints and spacing" (fun () ->
        let v = Vec.linspace 0. 1. 5 in
        close "first" 0. v.(0);
        close "last" 1. v.(4);
        close "step" 0.25 (v.(1) -. v.(0)));
    test "linspace needs 2 points" (fun () ->
        check_raises_invalid "linspace" (fun () -> Vec.linspace 0. 1. 1));
    test "approx_equal tolerances" (fun () ->
        Alcotest.(check bool) "close" true (Vec.approx_equal ~rtol:1e-3 [| 1.0001 |] [| 1. |]);
        Alcotest.(check bool) "far" false (Vec.approx_equal ~rtol:1e-6 [| 1.01 |] [| 1. |]));
    test "of_list to_list roundtrip" (fun () ->
        Alcotest.(check (list (float 0.))) "roundtrip" [ 1.; 2. ] (Vec.to_list (Vec.of_list [ 1.; 2. ])));
  ]

let property_tests =
  [
    qtest "dot is symmetric" QCheck2.Gen.(pair (gen_vec 8) (gen_vec 8)) (fun (x, y) ->
        Float.abs (Vec.dot x y -. Vec.dot y x) < 1e-9);
    qtest "cauchy-schwarz" QCheck2.Gen.(pair (gen_vec 8) (gen_vec 8)) (fun (x, y) ->
        Float.abs (Vec.dot x y) <= (Vec.norm2 x *. Vec.norm2 y) +. 1e-9);
    qtest "triangle inequality" QCheck2.Gen.(pair (gen_vec 8) (gen_vec 8)) (fun (x, y) ->
        Vec.norm2 (Vec.add x y) <= Vec.norm2 x +. Vec.norm2 y +. 1e-9);
    qtest "norm ordering ninf <= n2 <= n1" (gen_vec 10) (fun x ->
        let a = Vec.norm_inf x and b = Vec.norm2 x and c = Vec.norm1 x in
        a <= b +. 1e-9 && b <= c +. 1e-9);
    qtest "scale distributes over sum" (gen_vec 6) (fun x ->
        Float.abs (Vec.sum (Vec.scale 3. x) -. (3. *. Vec.sum x)) < 1e-8);
    qtest "sub self is zero" (gen_vec 6) (fun x ->
        Vec.norm_inf (Vec.sub x x) = 0.);
    qtest "mean bounded by extremes" (gen_vec 9) (fun x ->
        let m = Vec.mean x in
        Vec.min_elt x -. 1e-12 <= m && m <= Vec.max_elt x +. 1e-12);
  ]

let suite = ("vec", unit_tests @ property_tests)
