(* Tests for the Thomas-algorithm tridiagonal solver. *)

module Tridiag = Ttsv_numerics.Tridiag
module Dense = Ttsv_numerics.Dense
module Vec = Ttsv_numerics.Vec
open Helpers

let gen_system n =
  let open QCheck2.Gen in
  let* diag_mag = array_size (return n) (float_range 3. 10.) in
  let* lower = array_size (return (n - 1)) (float_range (-1.) 1.) in
  let* upper = array_size (return (n - 1)) (float_range (-1.) 1.) in
  let* b = gen_vec n in
  return (Tridiag.create ~lower ~diag:diag_mag ~upper, b)

let unit_tests =
  [
    test "1x1 system" (fun () ->
        let sys = Tridiag.create ~lower:[||] ~diag:[| 4. |] ~upper:[||] in
        close "x" 2. (Tridiag.solve sys [| 8. |]).(0));
    test "hand-computed 3x3" (fun () ->
        (* [2 -1 0; -1 2 -1; 0 -1 2] x = [1;0;1] -> x = [1;1;1] *)
        let sys =
          Tridiag.create ~lower:[| -1.; -1. |] ~diag:[| 2.; 2.; 2. |] ~upper:[| -1.; -1. |]
        in
        let x = Tridiag.solve sys [| 1.; 0.; 1. |] in
        Array.iter (fun xi -> close "xi" 1. xi) x);
    test "length validation" (fun () ->
        check_raises_invalid "lengths" (fun () ->
            Tridiag.create ~lower:[| 1. |] ~diag:[| 1. |] ~upper:[||]));
    test "rhs dimension mismatch" (fun () ->
        let sys = Tridiag.create ~lower:[||] ~diag:[| 1. |] ~upper:[||] in
        check_raises_invalid "rhs" (fun () -> Tridiag.solve sys [| 1.; 2. |]));
    test "zero pivot raises Singular" (fun () ->
        let sys = Tridiag.create ~lower:[||] ~diag:[| 0. |] ~upper:[||] in
        Alcotest.check_raises "singular" Dense.Singular (fun () ->
            ignore (Tridiag.solve sys [| 1. |])));
    test "to_dense layout" (fun () ->
        let sys = Tridiag.create ~lower:[| 7. |] ~diag:[| 1.; 2. |] ~upper:[| 9. |] in
        let d = Tridiag.to_dense sys in
        close "lower" 7. (Dense.get d 1 0);
        close "upper" 9. (Dense.get d 0 1);
        close "diag" 2. (Dense.get d 1 1));
  ]

let property_tests =
  [
    qtest ~count:60 "solve matches dense LU" (gen_system 9) (fun (sys, b) ->
        let x1 = Tridiag.solve sys b in
        let x2 = Dense.solve (Tridiag.to_dense sys) b in
        Vec.approx_equal ~rtol:1e-8 ~atol:1e-10 x1 x2);
    qtest ~count:60 "mat_vec of solution reproduces rhs" (gen_system 12) (fun (sys, b) ->
        let x = Tridiag.solve sys b in
        Vec.norm_inf (Vec.sub (Tridiag.mat_vec sys x) b) < 1e-8);
    qtest ~count:40 "mat_vec matches dense product" (gen_system 7) (fun (sys, b) ->
        Vec.approx_equal ~rtol:1e-10 ~atol:1e-12 (Tridiag.mat_vec sys b)
          (Dense.mat_vec (Tridiag.to_dense sys) b));
  ]

let suite = ("tridiag", unit_tests @ property_tests)
