(* Tests for the traditional 1-D baseline model. *)

module Units = Ttsv_physics.Units
module Params = Ttsv_core.Params
module Model_1d = Ttsv_core.Model_1d
module Stack = Ttsv_geometry.Stack
module Tsv = Ttsv_geometry.Tsv
open Helpers

let unit_tests =
  [
    test "liner thickness does not change the 1-D prediction" (fun () ->
        (* the central negative result the paper establishes: compare at
           fixed heat inputs *)
        let thin = Params.fig5_stack (Units.um 0.5) in
        let thick = Params.fig5_stack (Units.um 3.) in
        let qs = Stack.heat_inputs thin in
        let a = Model_1d.max_rise (Model_1d.solve_with_heats thin qs) in
        let b = Model_1d.max_rise (Model_1d.solve_with_heats thick qs) in
        close_rel ~tol:1e-12 "flat in t_L" a b);
    test "plane tops increase monotonically" (fun () ->
        let r = Model_1d.solve (Params.block ()) in
        Alcotest.(check bool) "t0 < p1" true (r.Model_1d.t0 < r.Model_1d.plane_tops.(0));
        Alcotest.(check bool) "p1 < p2" true
          (r.Model_1d.plane_tops.(0) < r.Model_1d.plane_tops.(1));
        Alcotest.(check bool) "p2 < p3" true
          (r.Model_1d.plane_tops.(1) < r.Model_1d.plane_tops.(2)));
    test "max rise is the chain top" (fun () ->
        let r = Model_1d.solve (Params.block ()) in
        close_rel "top" r.Model_1d.plane_tops.(2) (Model_1d.max_rise r));
    test "hand-computed single-plane chain" (fun () ->
        let tsv = Tsv.make ~radius:(Units.um 5.) ~liner_thickness:(Units.um 1.)
            ~extension:(Units.um 1.) ()
        in
        let plane =
          Ttsv_geometry.Plane.make ~t_substrate:(Units.um 500.) ~t_ild:(Units.um 4.)
            ~t_bond:0. ~t_device:(Units.um 1.)
            ~device_power_density:(Units.w_per_mm3 700.) ()
        in
        let stack = Stack.make ~footprint:1e-8 ~planes:[ plane ] ~tsv () in
        let q = Stack.total_heat stack in
        let r = Model_1d.solve stack in
        (* Rs = 499um/(150*A0); plane = (4um/1.4 + 1um/150)/(A0 - pi r^2)
           in parallel with 5um/(400 pi r^2) *)
        let rs = 499e-6 /. (150. *. 1e-8) in
        let area = 1e-8 -. (Float.pi *. 25e-12) in
        let bulk = ((4e-6 /. 1.4) +. (1e-6 /. 150.)) /. area in
        let via = 5e-6 /. (400. *. Float.pi *. 25e-12) in
        let plane_r = 1. /. ((1. /. bulk) +. (1. /. via)) in
        close_rel "t0" (rs *. q) r.Model_1d.t0;
        close_rel "top" ((rs +. plane_r) *. q) (Model_1d.max_rise r));
    test "heat vector length is validated" (fun () ->
        check_raises_invalid "qs" (fun () ->
            ignore (Model_1d.solve_with_heats (Params.block ()) [| 1. |])));
  ]

let property_tests =
  [
    qtest ~count:40 "monotone increasing with substrate thickness (the 1-D blind spot)"
      (QCheck2.Gen.float_range 10. 40.)
      (fun t_um ->
        (* fixed heats so only the resistances vary *)
        let s1 = Params.fig6_stack (Units.um t_um) in
        let s2 = Params.fig6_stack (Units.um (t_um *. 1.5)) in
        let qs = Stack.heat_inputs s1 in
        Model_1d.max_rise (Model_1d.solve_with_heats s2 qs)
        > Model_1d.max_rise (Model_1d.solve_with_heats s1 qs));
    qtest ~count:40 "1-D rise decreases with radius" gen_stack3 (fun s ->
        let bigger = Stack.with_tsv s (Tsv.with_radius s.Stack.tsv (s.Stack.tsv.Tsv.radius *. 1.5)) in
        let qs = Stack.heat_inputs s in
        Model_1d.max_rise (Model_1d.solve_with_heats bigger qs)
        < Model_1d.max_rise (Model_1d.solve_with_heats s qs));
    qtest ~count:40 "1-D rise is positive on random stacks" gen_stack (fun s ->
        Model_1d.max_rise (Model_1d.solve s) > 0.);
  ]

let suite = ("model_1d", unit_tests @ property_tests)
