(* Tests for Model A and its 3-plane closed form. *)

module Units = Ttsv_physics.Units
module Params = Ttsv_core.Params
module Coefficients = Ttsv_core.Coefficients
module Resistances = Ttsv_core.Resistances
module Model_a = Ttsv_core.Model_a
module Closed_form = Ttsv_core.Closed_form
module Stack = Ttsv_geometry.Stack
module Tsv = Ttsv_geometry.Tsv
open Helpers

let unit_tests =
  [
    test "T0 = Rs * total heat (eq. 6)" (fun () ->
        let stack = Params.block () in
        let r = Model_a.solve stack in
        let rs = Resistances.of_stack stack in
        close_rel "t0"
          (rs.Resistances.r_sink *. Stack.total_heat stack)
          r.Model_a.t0);
    test "energy conservation: all heat leaves through Rs" (fun () ->
        let stack = Params.block () in
        let r = Model_a.solve stack in
        close_rel ~tol:1e-9 "sink flow" (Stack.total_heat stack) (Model_a.sink_path_heat r));
    test "temperatures increase with height" (fun () ->
        let r = Model_a.solve (Params.block ()) in
        Alcotest.(check bool) "t0 < bulk1" true (r.Model_a.t0 < r.Model_a.bulk.(0));
        Alcotest.(check bool) "bulk1 < bulk2" true (r.Model_a.bulk.(0) < r.Model_a.bulk.(1));
        Alcotest.(check bool) "bulk2 < bulk3" true (r.Model_a.bulk.(1) < r.Model_a.bulk.(2)));
    test "max rise is the top bulk node for the paper block" (fun () ->
        let r = Model_a.solve (Params.block ()) in
        close_rel "max" r.Model_a.bulk.(2) (Model_a.max_rise r));
    test "TSV carries heat toward the sink" (fun () ->
        let r = Model_a.solve (Params.block ()) in
        Alcotest.(check bool) "positive" true (r.Model_a.tsv_heat > 0.));
    test "k1 > 1 reduces temperatures" (fun () ->
        let stack = Params.block () in
        let base = Model_a.max_rise (Model_a.solve stack) in
        let fitted =
          Model_a.max_rise (Model_a.solve ~coeffs:(Coefficients.make ~k1:1.3 ~k2:1.) stack)
        in
        Alcotest.(check bool) "cooler" true (fitted < base));
    test "single-plane stack is solvable" (fun () ->
        let tsv = Tsv.make ~radius:(Units.um 5.) ~liner_thickness:(Units.um 1.)
            ~extension:(Units.um 1.) ()
        in
        let plane =
          Ttsv_geometry.Plane.make ~t_substrate:(Units.um 500.) ~t_ild:(Units.um 4.)
            ~t_bond:0. ~t_device:(Units.um 1.)
            ~device_power_density:(Units.w_per_mm3 700.) ()
        in
        let stack = Stack.make ~footprint:1e-8 ~planes:[ plane ] ~tsv () in
        let r = Model_a.solve stack in
        Alcotest.(check bool) "positive" true (Model_a.max_rise r > 0.);
        close_rel ~tol:1e-9 "conservation" (Stack.total_heat stack) (Model_a.sink_path_heat r));
    test "more planes run hotter (same per-plane power)" (fun () ->
        let build n =
          let tsv = Tsv.make ~radius:(Units.um 5.) ~liner_thickness:(Units.um 1.)
              ~extension:(Units.um 1.) ()
          in
          let plane ~first =
            Ttsv_geometry.Plane.make ~t_substrate:(if first then Units.um 500. else Units.um 45.)
              ~t_ild:(Units.um 4.)
              ~t_bond:(if first then 0. else Units.um 1.)
              ~t_device:(Units.um 1.)
              ~device_power_density:(Units.w_per_mm3 700.)
              ~ild_power_density:(Units.w_per_mm3 70.) ()
          in
          Stack.make ~footprint:1e-8
            ~planes:(plane ~first:true :: List.init (n - 1) (fun _ -> plane ~first:false))
            ~tsv ()
        in
        let rise n = Model_a.max_rise (Model_a.solve (build n)) in
        Alcotest.(check bool) "2<3" true (rise 2 < rise 3);
        Alcotest.(check bool) "3<4" true (rise 3 < rise 4);
        Alcotest.(check bool) "4<5" true (rise 4 < rise 5));
    test "heat vector length is validated" (fun () ->
        let stack = Params.block () in
        check_raises_invalid "qs" (fun () ->
            ignore (Model_a.solve_with_heats stack [| 1.; 2. |])));
    test "closed form requires three planes" (fun () ->
        let rs = Resistances.of_stack (Params.block ()) in
        let bad = { rs with Resistances.triples = Array.sub rs.Resistances.triples 0 2 } in
        check_raises_invalid "planes" (fun () ->
            ignore (Closed_form.solve bad ~q1:1. ~q2:1. ~q3:1.)));
  ]

let closed_form_matches_network (stack, qs) =
  let rs = Resistances.of_stack ~coeffs:Coefficients.paper_block stack in
  let net = Model_a.solve_triples rs qs in
  let cf = Closed_form.solve rs ~q1:qs.(0) ~q2:qs.(1) ~q3:qs.(2) in
  let ok a b = Float.abs (a -. b) <= 1e-9 *. Float.max 1. (Float.abs b) in
  ok cf.Closed_form.t0 net.Model_a.t0
  && ok cf.Closed_form.t1 net.Model_a.bulk.(0)
  && ok cf.Closed_form.t3 net.Model_a.bulk.(1)
  && ok cf.Closed_form.t5 net.Model_a.bulk.(2)
  && ok cf.Closed_form.t2 net.Model_a.tsv.(0)
  && ok cf.Closed_form.t4 net.Model_a.tsv.(1)
  && ok (Closed_form.max_rise cf) (Model_a.max_rise net)

let property_tests =
  [
    qtest ~count:80 "closed form equals the network solve"
      QCheck2.Gen.(pair gen_stack3 gen_heats3)
      closed_form_matches_network;
    qtest ~count:40 "max rise decreases with TSV radius" gen_stack3 (fun s ->
        let grow =
          Stack.with_tsv s (Tsv.with_radius s.Stack.tsv (s.Stack.tsv.Tsv.radius *. 1.5))
        in
        Model_a.max_rise (Model_a.solve grow) < Model_a.max_rise (Model_a.solve s));
    qtest ~count:40 "max rise increases with liner thickness" gen_stack3 (fun s ->
        let thicker =
          Stack.with_tsv s
            (Tsv.with_liner_thickness s.Stack.tsv (s.Stack.tsv.Tsv.liner_thickness *. 2.))
        in
        (* heat inputs shrink slightly with the occupied area; compare at
           fixed heats to isolate the resistance effect *)
        let qs = Stack.heat_inputs s in
        Model_a.max_rise (Model_a.solve_with_heats thicker qs)
        > Model_a.max_rise (Model_a.solve_with_heats s qs));
    qtest ~count:40 "superposition over heat vectors"
      QCheck2.Gen.(triple gen_stack3 gen_heats3 gen_heats3)
      (fun (s, q1, q2) ->
        let rs = Resistances.of_stack s in
        let r1 = Model_a.solve_triples rs q1 in
        let r2 = Model_a.solve_triples rs q2 in
        let r12 = Model_a.solve_triples rs (Ttsv_numerics.Vec.add q1 q2) in
        let lin i =
          Float.abs (r12.Model_a.bulk.(i) -. (r1.Model_a.bulk.(i) +. r2.Model_a.bulk.(i)))
          < 1e-9
        in
        lin 0 && lin 1 && lin 2);
    qtest ~count:40 "energy conservation on random stacks" gen_stack (fun s ->
        let r = Model_a.solve s in
        Float.abs (Model_a.sink_path_heat r -. Stack.total_heat s)
        < 1e-8 *. Stack.total_heat s);
  ]

let suite = ("model_a", unit_tests @ property_tests)
