(* Tests for the eq. 22 cluster-division model. *)

module Params = Ttsv_core.Params
module Model_a = Ttsv_core.Model_a
module Cluster = Ttsv_core.Cluster
module Resistances = Ttsv_core.Resistances
module Coefficients = Ttsv_core.Coefficients
open Helpers

let unit_tests =
  [
    test "n=1 returns the plain resistances" (fun () ->
        let s = Params.fig7_stack () in
        let base = Resistances.of_stack s in
        let div1 = Cluster.divided_resistances s 1 in
        Array.iteri
          (fun i (t : Resistances.triple) ->
            let b = base.Resistances.triples.(i) in
            close_rel "liner" b.Resistances.liner t.Resistances.liner;
            close_rel "tsv" b.Resistances.tsv t.Resistances.tsv)
          div1.Resistances.triples);
    test "eq. 22 hand computed for plane 1" (fun () ->
        let s = Params.fig7_stack () in
        let n = 4 in
        let rs = Cluster.divided_resistances s n in
        (* r0=10um, tL=1um, span tD+lext = 5um, kL=1.4, k2=1 *)
        let expected =
          log (((1e-6 *. 2.) +. 1e-5) /. 1e-5)
          /. (2. *. 4. *. Float.pi *. 1.4 *. 5e-6)
        in
        close_rel "R3'" expected rs.Resistances.triples.(0).Resistances.liner);
    test "vertical resistances unchanged under division" (fun () ->
        let s = Params.fig7_stack () in
        let base = Resistances.of_stack s in
        let div = Cluster.divided_resistances s 9 in
        Array.iteri
          (fun i (t : Resistances.triple) ->
            let b = base.Resistances.triples.(i) in
            close_rel "tsv" b.Resistances.tsv t.Resistances.tsv;
            close_rel "bulk" b.Resistances.bulk t.Resistances.bulk)
          div.Resistances.triples);
    test "division monotonically cools" (fun () ->
        let s = Params.fig7_stack () in
        let rise n = Model_a.max_rise (Cluster.solve s n) in
        Alcotest.(check bool) "1>2" true (rise 1 > rise 2);
        Alcotest.(check bool) "2>4" true (rise 2 > rise 4);
        Alcotest.(check bool) "4>9" true (rise 4 > rise 9);
        Alcotest.(check bool) "9>16" true (rise 9 > rise 16));
    test "diminishing returns (saturation)" (fun () ->
        let s = Params.fig7_stack () in
        let rise n = Model_a.max_rise (Cluster.solve s n) in
        let d12 = rise 1 -. rise 2 in
        let d916 = rise 9 -. rise 16 in
        Alcotest.(check bool) "saturates" true (d916 < d12));
    test "naive recomputation stays close to eq. 22" (fun () ->
        let s = Params.fig7_stack () in
        List.iter
          (fun n ->
            let a = Model_a.max_rise (Cluster.solve s n) in
            let b = Model_a.max_rise (Cluster.solve_naive s n) in
            Alcotest.(check bool)
              (Printf.sprintf "n=%d: %.3f vs %.3f" n a b)
              true
              (Float.abs (a -. b) /. a < 0.02))
          [ 1; 2; 4; 9; 16 ]);
    test "n < 1 rejected" (fun () ->
        check_raises_invalid "n" (fun () ->
            ignore (Cluster.divided_resistances (Params.fig7_stack ()) 0)));
    test "max_rise_series shape" (fun () ->
        let series = Cluster.max_rise_series (Params.fig7_stack ()) [ 1; 4; 16 ] in
        match series with
        | [ a; b; c ] ->
          Alcotest.(check bool) "descending" true (a > b && b > c)
        | _ -> Alcotest.fail "wrong length");
  ]

let property_tests =
  [
    qtest ~count:30 "division cools every random block"
      QCheck2.Gen.(pair gen_stack3 (int_range 2 16))
      (fun (s, n) ->
        Model_a.max_rise (Cluster.solve s n) < Model_a.max_rise (Cluster.solve s 1));
    qtest ~count:30 "coefficients commute with division"
      QCheck2.Gen.(int_range 2 16)
      (fun n ->
        (* dividing then fitting-k2 equals fitting-k2 then dividing: both
           scale the liner identically *)
        let s = Params.fig7_stack () in
        let coeffs = Coefficients.make ~k1:1.3 ~k2:0.55 in
        let a = Cluster.divided_resistances ~coeffs s n in
        let b = Cluster.divided_resistances s n in
        Array.for_all2
          (fun (x : Resistances.triple) (y : Resistances.triple) ->
            Float.abs (x.Resistances.liner -. (y.Resistances.liner /. 0.55))
            < 1e-9 *. x.Resistances.liner)
          a.Resistances.triples b.Resistances.triples);
  ]

let suite = ("cluster", unit_tests @ property_tests)
