(* The multigrid hierarchy's algebraic contracts, checked on random
   anisotropic model problems: the transfer pair must be adjoint, the
   Galerkin coarse operators symmetric positive definite, the Chebyshev
   line smoother an A-norm contraction, and the two-grid cycle a real
   solver (asymptotic error contraction well under 1).  The golden and
   parallel suites pin the FV iteration counts and pool determinism;
   this one pins the linear algebra the counts depend on. *)

module Sparse = Ttsv_numerics.Sparse
module Dense = Ttsv_numerics.Dense
module Vec = Ttsv_numerics.Vec
module Multigrid = Ttsv_numerics.Multigrid
module Precond = Ttsv_numerics.Precond
module Iterative = Ttsv_numerics.Iterative
module Budget = Ttsv_parallel.Budget
open Helpers

(* 5-point anisotropic Poisson on an nx x ny tensor grid (x fastest),
   Dirichlet boundaries folded into the diagonal: SPD with coupling
   [ax] along x and [ay] along y, the model problem of every multigrid
   analysis.  Anisotropy ratios exercise the semicoarsening vote. *)
let model_poisson nx ny ~ax ~ay =
  let n = nx * ny in
  let b = Sparse.builder ~hint:(5 * n) n n in
  for i = 0 to n - 1 do
    let x = i mod nx and y = i / nx in
    if x > 0 then Sparse.add b i (i - 1) (-.ax);
    if x < nx - 1 then Sparse.add b i (i + 1) (-.ax);
    if y > 0 then Sparse.add b i (i - nx) (-.ay);
    if y < ny - 1 then Sparse.add b i (i + nx) (-.ay);
    (* Dirichlet everywhere: the diagonal keeps the full 2ax + 2ay
       stencil weight, so boundary rows are strictly dominant *)
    Sparse.add b i i ((2. *. ax) +. (2. *. ay))
  done;
  Sparse.finalize b

let build_exn ?max_levels ?coarse_cap ?nu ~shape a =
  match Multigrid.build ?max_levels ?coarse_cap ?nu ~shape a with
  | Ok h -> h
  | Error e -> Alcotest.fail ("multigrid build failed: " ^ e)

(* a deterministic pseudo-random vector, so property failures replay *)
let pseudo n seed =
  Array.init n (fun i ->
      let h = ((i + 1) * 2654435761) + (seed * 40503) in
      Float.of_int ((h land 0xffff) - 0x8000) /. 32768.)

let dot = Vec.dot
let a_norm a v = sqrt (dot v (Sparse.mat_vec a v))

(* random model problems: modest grids, anisotropy across four orders
   of magnitude in both directions *)
let gen_model =
  let open QCheck2.Gen in
  let* nx = int_range 4 24 in
  let* ny = int_range 4 24 in
  let* lax = float_range (-2.) 2. in
  let* lay = float_range (-2.) 2. in
  let* seed = int_range 0 1000 in
  return (nx, ny, 10. ** lax, 10. ** lay, seed)

let property_tests =
  [
    qtest ~count:40 "restriction and prolongation are adjoint" gen_model
      (fun (nx, ny, ax, ay, seed) ->
        let a = model_poisson nx ny ~ax ~ay in
        let h = build_exn ~coarse_cap:8 ~shape:[| nx; ny |] a in
        Multigrid.num_levels h < 2
        ||
        let nf = nx * ny in
        let nc = Array.fold_left ( * ) 1 (Multigrid.level_shape h 1) in
        let xc = pseudo nc seed and yf = pseudo nf (seed + 1) in
        let lhs = dot (Multigrid.prolong h ~level:0 xc) yf in
        let rhs = dot xc (Multigrid.restrict h ~level:0 yf) in
        Float.abs (lhs -. rhs) <= 1e-12 *. Float.max 1. (Float.abs lhs));
    qtest ~count:40 "every Galerkin coarse operator is symmetric positive definite"
      gen_model
      (fun (nx, ny, ax, ay, seed) ->
        let a = model_poisson nx ny ~ax ~ay in
        let h = build_exn ~coarse_cap:8 ~shape:[| nx; ny |] a in
        let ok = ref true in
        for l = 0 to Multigrid.num_levels h - 1 do
          let al = Multigrid.level_matrix h l in
          if not (Sparse.is_symmetric ~tol:1e-10 al) then ok := false;
          let z = pseudo (Sparse.rows al) (seed + l) in
          if dot z (Sparse.mat_vec al z) <= 0. then ok := false
        done;
        !ok);
    qtest ~count:40 "the smoother contracts the error in the A-norm" gen_model
      (fun (nx, ny, ax, ay, seed) ->
        let a = model_poisson nx ny ~ax ~ay in
        let h = build_exn ~shape:[| nx; ny |] a in
        let n = nx * ny in
        let exact = pseudo n seed in
        let b = Sparse.mat_vec a exact in
        let x1 = Multigrid.smooth h ~level:0 ~sweeps:2 (Array.make n 0.) b in
        let e1 = Array.mapi (fun i v -> v -. exact.(i)) x1 in
        (* the smoothing polynomial is 1 at eigenvalue 0 and strictly
           inside (-1, 1) on the spectrum, so the A-norm must drop *)
        a_norm a e1 < a_norm a exact);
    qtest ~count:25 "the two-grid cycle contracts errors by < 0.5" gen_model
      (fun (nx, ny, ax, ay, seed) ->
        let a = model_poisson nx ny ~ax ~ay in
        let h = build_exn ~max_levels:2 ~coarse_cap:1 ~shape:[| nx; ny |] a in
        (* solve A x = 0 from a random start: x_k is the error itself;
           measure the worst single-step A-norm contraction after the
           first few transient steps *)
        let x = ref (pseudo (nx * ny) seed) in
        let worst = ref 0. in
        for k = 1 to 10 do
          let r = Array.map (fun v -> -.v) (Sparse.mat_vec a !x) in
          let c = Multigrid.cycle h r in
          let x' = Array.mapi (fun i v -> v +. c.(i)) !x in
          let before = a_norm a !x and after = a_norm a x' in
          if k > 3 && before > 1e-200 then worst := Float.max !worst (after /. before);
          x := x'
        done;
        !worst < 0.5);
  ]

let unit_tests =
  [
    test "mg-preconditioned CG reproduces the dense direct solution" (fun () ->
        let nx = 19 and ny = 13 in
        let a = model_poisson nx ny ~ax:1. ~ay:25. in
        let b = pseudo (nx * ny) 7 in
        let direct = Dense.lu_solve (Dense.lu_factor (Sparse.to_dense a)) b in
        let pc =
          match Precond.mg ~shape:[| nx; ny |] a with
          | Ok p -> p
          | Error e -> Alcotest.fail e
        in
        let r = Iterative.cg ~tol:1e-12 ~precond:pc a b in
        Alcotest.(check bool) "converged" true r.Iterative.converged;
        Array.iteri (fun i d -> close ~tol:1e-8 (Printf.sprintf "x[%d]" i) d r.Iterative.solution.(i)) direct);
    test "level shapes shrink monotonically down the hierarchy" (fun () ->
        let nx = 32 and ny = 32 in
        let a = model_poisson nx ny ~ax:1. ~ay:1. in
        let h = build_exn ~coarse_cap:20 ~shape:[| nx; ny |] a in
        Alcotest.(check bool) "more than two levels" true (Multigrid.num_levels h > 2);
        for l = 1 to Multigrid.num_levels h - 1 do
          let prev = Multigrid.level_shape h (l - 1) in
          let cur = Multigrid.level_shape h l in
          let cells s = Array.fold_left ( * ) 1 s in
          Alcotest.(check bool)
            (Printf.sprintf "level %d smaller than level %d" l (l - 1))
            true
            (cells cur < cells prev && cur.(0) <= prev.(0) && cur.(1) <= prev.(1))
        done;
        let coarsest = Multigrid.level_shape h (Multigrid.num_levels h - 1) in
        Alcotest.(check bool) "coarsest within cap" true
          (Array.fold_left ( * ) 1 coarsest <= 20));
    test "a shape that does not match the matrix is an Error, not an exception"
      (fun () ->
        let a = model_poisson 8 8 ~ax:1. ~ay:1. in
        (match Multigrid.build ~shape:[| 8; 9 |] a with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "mismatched shape accepted");
        match Multigrid.build ~shape:[| 64 |] a with
        | Ok _ -> ()
        | Error e -> Alcotest.fail ("1-D view of the same cells rejected: " ^ e));
    test "nonsense construction arguments raise Invalid_argument" (fun () ->
        let a = model_poisson 8 8 ~ax:1. ~ay:1. in
        check_raises_invalid "nu = 0" (fun () ->
            Multigrid.build ~nu:0 ~shape:[| 8; 8 |] a);
        check_raises_invalid "max_levels = 0" (fun () ->
            Multigrid.build ~max_levels:0 ~shape:[| 8; 8 |] a);
        check_raises_invalid "coarse_cap = 0" (fun () ->
            Multigrid.build ~coarse_cap:0 ~shape:[| 8; 8 |] a));
    test "an already-spent budget turns build into an Error" (fun () ->
        let a = model_poisson 16 16 ~ax:1. ~ay:1. in
        let budget = Budget.make ~max_work:1 () in
        Budget.tick ~n:2 budget;
        match Multigrid.build ~budget ~shape:[| 16; 16 |] a with
        | Error e ->
          Alcotest.(check bool)
            (Printf.sprintf "error mentions the budget: %s" e)
            true
            (String.length e >= 6 && String.sub e 0 6 = "budget")
        | Ok _ -> Alcotest.fail "build succeeded with an expired budget");
    test "cycle rejects a residual of the wrong dimension" (fun () ->
        let a = model_poisson 8 8 ~ax:1. ~ay:1. in
        let h = build_exn ~shape:[| 8; 8 |] a in
        check_raises_invalid "short residual" (fun () ->
            Multigrid.cycle h (Array.make 63 0.)));
  ]

let suite = ("multigrid", property_tests @ unit_tests)
