(* Tests for the solver escalation ladder (Robust), the structured input
   validation (Validate) and the typed failure paths of the FEM front
   ends. *)

module Sparse = Ttsv_numerics.Sparse
module Dense = Ttsv_numerics.Dense
module Vec = Ttsv_numerics.Vec
module Iterative = Ttsv_numerics.Iterative
module Robust = Ttsv_robust.Robust
module Diagnostics = Ttsv_robust.Diagnostics
module Validate = Ttsv_robust.Validate
module Params = Ttsv_core.Params
module Materials = Ttsv_physics.Materials
module Material = Ttsv_physics.Material
module Problem = Ttsv_fem.Problem
module Solver = Ttsv_fem.Solver
open Helpers

let gen_spd_system n = QCheck2.Gen.(gen_spd n >>= fun m -> gen_vec n >|= fun b -> (m, b))

let contains s affix =
  let ls = String.length s and la = String.length affix in
  let rec at i = i + la <= ls && (String.sub s i la = affix || at (i + 1)) in
  at 0

(* a mildly nonsymmetric system: CG's recurrence is invalid here *)
let small_nonsym () =
  let b = Sparse.builder 3 3 in
  Sparse.add b 0 0 4.;
  Sparse.add b 0 1 1.;
  Sparse.add b 1 0 2.;
  Sparse.add b 1 1 5.;
  Sparse.add b 1 2 1.;
  Sparse.add b 2 1 (-1.);
  Sparse.add b 2 2 3.;
  Sparse.finalize b

(* the 2-D rotation [[0, 1]; [-1, 0]]: p.Ap = 0 and r_hat.v = 0 on the
   first step, so both Krylov rungs break down immediately; only a
   pivoting direct solve gets through *)
let rotation () =
  let b = Sparse.builder 2 2 in
  Sparse.add b 0 1 1.;
  Sparse.add b 1 0 (-1.);
  Sparse.finalize b

(* the n-by-n Hilbert matrix: condition number ~1e13 at n = 10 *)
let hilbert n =
  let b = Sparse.builder n n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Sparse.add b i j (1. /. Float.of_int (i + j + 1))
    done
  done;
  Sparse.finalize b

let matches_direct msg m b x =
  let exact = Dense.solve (Sparse.to_dense m) b in
  Alcotest.(check bool) msg true (Vec.approx_equal ~rtol:1e-6 ~atol:1e-9 x exact)

let ladder_tests =
  [
    test "ladder recovers a system plain CG cannot solve" (fun () ->
        let m = small_nonsym () in
        let b = [| 1.; 2.; 3. |] in
        let cg = Iterative.cg ~tol:1e-12 m b in
        Alcotest.(check bool) "plain CG fails here" false cg.Iterative.converged;
        match Robust.solve ~tol:1e-12 m b with
        | Error f -> Alcotest.failf "ladder failed: %a" Robust.pp_failure f
        | Ok (x, d) ->
          matches_direct "matches LU" m b x;
          Alcotest.(check bool) "not solved by plain Jacobi-CG" true
            (d.Diagnostics.solved_by <> Some Diagnostics.Cg);
          Alcotest.(check bool) "ladder starts at IC(0)-CG" true
            (match d.Diagnostics.attempts with
            | first :: _ -> first.Diagnostics.rung = Diagnostics.Cg_ic0
            | [] -> false));
    test "a failed rung keeps its own convergence history after escalation" (fun () ->
        (* per-attempt conv must survive escalation: the losing rung's
           curve, not the winner's, is what explains the failure *)
        let was_on = Ttsv_obs.Flags.metrics_on () in
        Ttsv_obs.Config.enable_metrics ();
        Fun.protect
          ~finally:(fun () -> if not was_on then Ttsv_obs.Config.disable_metrics ())
          (fun () ->
            let m = small_nonsym () in
            let b = [| 1.; 2.; 3. |] in
            match
              Robust.solve ~tol:1e-12 ~rungs:[ Diagnostics.Cg; Diagnostics.Direct ] m b
            with
            | Error f -> Alcotest.failf "ladder failed: %a" Robust.pp_failure f
            | Ok (_, d) -> (
              match d.Diagnostics.attempts with
              | [ failed; direct ] ->
                Alcotest.(check bool) "cg rung failed" true
                  (failed.Diagnostics.outcome <> Diagnostics.Success);
                (match failed.Diagnostics.conv with
                | Some s ->
                  Alcotest.(check string) "history is cg's" "cg" s.Ttsv_obs.History.meth;
                  Alcotest.(check bool) "non-empty window" true (s.Ttsv_obs.History.total > 0)
                | None -> Alcotest.fail "failed rung lost its convergence history");
                Alcotest.(check bool) "direct rung records no iterative history" true
                  (direct.Diagnostics.conv = None)
              | l -> Alcotest.failf "expected 2 attempts, got %d" (List.length l))));
    test "both Krylov rungs break down; the direct rung rescues" (fun () ->
        let m = rotation () in
        let b = [| 1.; 2. |] in
        match Robust.solve m b with
        | Error f -> Alcotest.failf "ladder failed: %a" Robust.pp_failure f
        | Ok (x, d) ->
          matches_direct "matches LU" m b x;
          Alcotest.(check bool) "solved by the direct rung" true
            (d.Diagnostics.solved_by = Some Diagnostics.Direct);
          Alcotest.(check int) "all five rungs attempted" 5
            (List.length d.Diagnostics.attempts);
          (* the matrix has no stored diagonal: both preconditioner
             constructions must fail closed as Skipped, costing zero
             iterations, rather than dividing by zero *)
          List.iter
            (fun a ->
              match a.Diagnostics.rung with
              | Diagnostics.Cg_ic0 | Diagnostics.Cg_ssor ->
                Alcotest.(check bool)
                  (Diagnostics.rung_name a.Diagnostics.rung ^ " skipped with 0 iterations")
                  true
                  (a.Diagnostics.iterations = 0
                  &&
                  match a.Diagnostics.outcome with Diagnostics.Skipped _ -> true | _ -> false)
              | _ -> ())
            d.Diagnostics.attempts);
    test "ill-conditioned Hilbert system ends with a usable answer" (fun () ->
        let n = 10 in
        let m = hilbert n in
        let b = Array.init n (fun i -> 1. /. Float.of_int (i + 1)) in
        match Robust.solve ~tol:1e-14 m b with
        | Error f -> Alcotest.failf "ladder failed: %a" Robust.pp_failure f
        | Ok (x, d) ->
          let res = Vec.norm2 (Vec.sub b (Sparse.mat_vec m x)) /. Vec.norm2 b in
          Alcotest.(check bool)
            (Printf.sprintf "residual %.3g within the direct floor" res)
            true (res <= 1e-8);
          Alcotest.(check bool) "some rung claimed it" true
            (d.Diagnostics.solved_by <> None));
    test "NaN in the rhs is rejected before any rung runs" (fun () ->
        let m = Sparse.of_dense (Dense.identity 3) in
        match Robust.solve m [| 1.; Float.nan; 3. |] with
        | Ok _ -> Alcotest.fail "expected rejection"
        | Error f ->
          (match f.Robust.reason with
          | Robust.Invalid_input problems ->
            Alcotest.(check bool) "mentions the rhs" true
              (List.exists (fun p -> String.length p > 0 && String.sub p 0 3 = "rhs") problems)
          | Robust.Exhausted | Robust.Deadline_exceeded ->
            Alcotest.fail "expected Invalid_input");
          Alcotest.(check int) "no rung ran" 0 (List.length f.Robust.diagnostics.Diagnostics.attempts);
          Alcotest.(check int) "no iterations spent" 0
            f.Robust.diagnostics.Diagnostics.iterations);
    test "Inf in the matrix is rejected before any rung runs" (fun () ->
        let b = Sparse.builder 2 2 in
        Sparse.add b 0 0 Float.infinity;
        Sparse.add b 1 1 1.;
        match Robust.solve (Sparse.finalize b) [| 1.; 1. |] with
        | Ok _ -> Alcotest.fail "expected rejection"
        | Error f -> (
          match f.Robust.reason with
          | Robust.Invalid_input _ -> ()
          | Robust.Exhausted | Robust.Deadline_exceeded ->
            Alcotest.fail "expected Invalid_input"));
    test "dimension mismatch is a typed failure, not an exception" (fun () ->
        let m = Sparse.of_dense (Dense.identity 3) in
        match Robust.solve m [| 1.; 2. |] with
        | Ok _ -> Alcotest.fail "expected rejection"
        | Error f -> (
          match f.Robust.reason with
          | Robust.Invalid_input problems ->
            Alcotest.(check bool) "at least one problem" true (problems <> [])
          | Robust.Exhausted | Robust.Deadline_exceeded ->
            Alcotest.fail "expected Invalid_input"));
    test "a stagnating iterative-only ladder aborts far below the budget" (fun () ->
        (* unreachable tolerance + no direct rung: both Krylov rungs hit
           the stagnation guard, and the whole ladder spends a couple of
           windows, not 2 * max_iter *)
        let n = 20 in
        let pair = QCheck2.Gen.generate1 ~rand:(Random.State.make [| 7 |]) (gen_spd_system n) in
        let m, b = pair in
        let max_iter = 50_000 in
        match
          Robust.solve ~tol:1e-300 ~max_iter ~stagnation_window:50
            ~rungs:[ Diagnostics.Cg; Diagnostics.Bicgstab ] m b
        with
        | Ok _ -> Alcotest.fail "1e-300 should be unreachable"
        | Error f ->
          Alcotest.(check bool) "exhausted" true (f.Robust.reason = Robust.Exhausted);
          Alcotest.(check bool)
            (Printf.sprintf "aborted early (%d iterations)"
               f.Robust.diagnostics.Diagnostics.iterations)
            true
            (f.Robust.diagnostics.Diagnostics.iterations < max_iter / 10);
          Alcotest.(check bool) "best iterate retained" true (f.Robust.best <> None);
          Alcotest.(check bool) "its residual is finite" true
            (Float.is_finite f.Robust.best_residual));
    qtest ~count:30 "SPD fast path: IC(0)-CG alone, one successful attempt" (gen_spd_system 12)
      (fun (m, b) ->
        match Robust.solve ~tol:1e-10 m b with
        | Error _ -> false
        | Ok (x, d) ->
          let exact = Dense.solve (Sparse.to_dense m) b in
          Vec.approx_equal ~rtol:1e-6 ~atol:1e-8 x exact
          && d.Diagnostics.solved_by = Some Diagnostics.Cg_ic0
          && List.length d.Diagnostics.attempts = 1
          && (List.hd d.Diagnostics.attempts).Diagnostics.outcome = Diagnostics.Success);
    test "on_iterate observes every iteration the ladder spends" (fun () ->
        let pair = QCheck2.Gen.generate1 ~rand:(Random.State.make [| 11 |]) (gen_spd_system 8) in
        let m, b = pair in
        let seen = ref 0 in
        match Robust.solve ~on_iterate:(fun _ _ -> incr seen) m b with
        | Error f -> Alcotest.failf "ladder failed: %a" Robust.pp_failure f
        | Ok (_, d) -> Alcotest.(check int) "callback count" d.Diagnostics.iterations !seen);
  ]

let validate_tests =
  [
    test "every violation is reported at once, not just the first" (fun () ->
        let vs =
          Validate.block ~r:(-.Units.um 3.) ~t_liner:Float.nan ~t_ild:(Units.um 4.)
            ~t_bond:(Units.um 1.) ~t_si23:(Units.um 45.) ~t_si1:(Units.um 1.)
            ~l_ext:(Units.um 5.) ~t_device:(Units.um 1.)
            ~footprint:(Units.um 100. *. Units.um 100.)
        in
        Alcotest.(check bool)
          (Printf.sprintf "%d violations" (List.length vs))
          true
          (List.length vs >= 3);
        let fields = List.map (fun v -> v.Validate.field) vs in
        Alcotest.(check bool) "radius sign" true (List.mem "radius" fields);
        Alcotest.(check bool) "liner finiteness" true (List.mem "liner_thickness" fields);
        Alcotest.(check bool) "extension vs substrate cross-check" true
          (List.mem "l_ext" fields));
    test "block_checked accepts the paper's defaults" (fun () ->
        match Params.block_checked () with
        | Error vs -> Alcotest.fail (Validate.to_string vs)
        | Ok stack ->
          let show s = Format.asprintf "%a" Ttsv_geometry.Stack.pp s in
          Alcotest.(check string) "same stack as the unchecked builder" (show (Params.block ()))
            (show stack));
    test "block_checked rejects a TSV wider than the footprint" (fun () ->
        match Params.block_checked ~r:(Units.um 80.) () with
        | Ok _ -> Alcotest.fail "an 80 um TSV cannot fit a 100x100 um cell"
        | Error vs ->
          Alcotest.(check bool) "footprint cross-check fired" true
            (List.exists (fun v -> v.Validate.field = "radius") vs));
    test "material validation flags nonpositive properties" (fun () ->
        let bad = { Materials.copper with Material.conductivity = -1. } in
        let vs = Validate.material bad in
        Alcotest.(check int) "one violation" 1 (List.length vs);
        Alcotest.(check bool) "names the material" true
          (String.length (List.hd vs).Validate.field > 0));
    test "violations render as readable text" (fun () ->
        let vs = Validate.tsv ~radius:(-1.) ~liner_thickness:1e-6 ~extension:1e-6 () in
        let s = Validate.to_string vs in
        Alcotest.(check bool) "mentions the field" true (contains s "radius"));
  ]

let fem_failure_tests =
  [
    test "NaN-poisoned conductivity is rejected up front by the FEM solver" (fun () ->
        let p = Problem.of_stack (Params.block ()) in
        p.Problem.conductivity.(0) <- Float.nan;
        match Solver.try_solve p with
        | Ok _ -> Alcotest.fail "expected rejection"
        | Error f -> (
          match f.Robust.reason with
          | Robust.Invalid_input problems ->
            Alcotest.(check bool) "points at the bad cell" true
              (List.exists (fun s -> contains s "cell 0") problems)
          | Robust.Exhausted | Robust.Deadline_exceeded ->
            Alcotest.fail "expected Invalid_input"));
    test "NaN-poisoned source is rejected up front by the FEM solver" (fun () ->
        let p = Problem.of_stack (Params.block ()) in
        p.Problem.source.(0) <- Float.neg_infinity;
        match Solver.try_solve p with
        | Ok _ -> Alcotest.fail "expected rejection"
        | Error f -> (
          match f.Robust.reason with
          | Robust.Invalid_input _ -> ()
          | Robust.Exhausted | Robust.Deadline_exceeded ->
            Alcotest.fail "expected Invalid_input"));
    test "a healthy FV solve reports its diagnostics" (fun () ->
        let p = Problem.of_stack (Params.block ()) in
        match Solver.try_solve p with
        | Error f -> Alcotest.failf "solve failed: %a" Robust.pp_failure f
        | Ok r ->
          let d = r.Solver.diagnostics in
          Alcotest.(check bool) "solved by some rung" true (d.Diagnostics.solved_by <> None);
          Alcotest.(check bool) "iterations recorded" true (d.Diagnostics.iterations > 0);
          Alcotest.(check bool) "trace recorded" true (Array.length d.Diagnostics.trace > 0);
          Alcotest.(check bool) "wall time recorded" true (d.Diagnostics.wall_time >= 0.));
  ]

let suite = ("robust", ladder_tests @ validate_tests @ fem_failure_tests)
