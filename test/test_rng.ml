(* Tests for the deterministic RNG. *)

module Rng = Ttsv_numerics.Rng
module Stats = Ttsv_numerics.Stats
open Helpers

let draw n f =
  let g = Rng.create 12345 in
  Array.init n (fun _ -> f g)

let unit_tests =
  [
    test "deterministic for a fixed seed" (fun () ->
        let a = draw 100 Rng.uniform and b = draw 100 Rng.uniform in
        Alcotest.(check bool) "identical streams" true (a = b));
    test "different seeds give different streams" (fun () ->
        let g1 = Rng.create 1 and g2 = Rng.create 2 in
        let a = Array.init 10 (fun _ -> Rng.uniform g1) in
        let b = Array.init 10 (fun _ -> Rng.uniform g2) in
        Alcotest.(check bool) "different" true (a <> b));
    test "uniform stays in [0, 1)" (fun () ->
        Array.iter
          (fun u -> Alcotest.(check bool) "range" true (u >= 0. && u < 1.))
          (draw 10000 Rng.uniform));
    test "uniform mean near 1/2 and variance near 1/12" (fun () ->
        let xs = draw 20000 Rng.uniform in
        close ~tol:0.01 "mean" 0.5 (Ttsv_numerics.Vec.mean xs);
        close ~tol:0.01 "variance" (1. /. 12.) (Stats.variance xs));
    test "uniform_range bounds and validation" (fun () ->
        let g = Rng.create 7 in
        for _ = 1 to 1000 do
          let x = Rng.uniform_range g 2. 5. in
          Alcotest.(check bool) "range" true (x >= 2. && x < 5.)
        done;
        check_raises_invalid "a > b" (fun () -> ignore (Rng.uniform_range g 5. 2.)));
    test "normal mean and sigma" (fun () ->
        let xs = draw 20000 (fun g -> Rng.normal g ~mean:3. ~sigma:2.) in
        close ~tol:0.05 "mean" 3. (Ttsv_numerics.Vec.mean xs);
        close ~tol:0.05 "sigma" 2. (Stats.stddev xs));
    test "normal sigma=0 is constant" (fun () ->
        let xs = draw 10 (fun g -> Rng.normal g ~mean:1.5 ~sigma:0.) in
        Array.iter (fun x -> close "const" 1.5 x) xs);
    test "normal rejects negative sigma" (fun () ->
        check_raises_invalid "sigma" (fun () ->
            ignore (Rng.normal (Rng.create 0) ~mean:0. ~sigma:(-1.))));
    test "lognormal factor has median ~1" (fun () ->
        let xs = draw 20001 (fun g -> Rng.lognormal_factor g ~sigma:0.3) in
        close ~tol:0.05 "median" 1. (Stats.median xs);
        Array.iter (fun x -> Alcotest.(check bool) "positive" true (x > 0.)) xs);
    test "int_below covers the range" (fun () ->
        let g = Rng.create 99 in
        let seen = Array.make 5 false in
        for _ = 1 to 1000 do
          let i = Rng.int_below g 5 in
          Alcotest.(check bool) "bounds" true (i >= 0 && i < 5);
          seen.(i) <- true
        done;
        Alcotest.(check bool) "all values seen" true (Array.for_all Fun.id seen);
        check_raises_invalid "n=0" (fun () -> ignore (Rng.int_below g 0)));
  ]

let suite = ("rng", unit_tests)
