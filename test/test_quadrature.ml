(* Tests for numerical integration, including the cross-validation of the
   paper's eq. 9 closed form against its defining integral. *)

module Quadrature = Ttsv_numerics.Quadrature
module Resistances = Ttsv_core.Resistances
module Params = Ttsv_core.Params
open Helpers

let unit_tests =
  [
    test "simpson exact on cubics" (fun () ->
        let f x = (2. *. (x ** 3.)) -. (x ** 2.) +. 4. in
        (* integral over [0,2]: 2*4 - 8/3 + 8 *)
        close_rel ~tol:1e-12 "cubic" (8. -. (8. /. 3.) +. 8.)
          (Quadrature.simpson ~intervals:2 f 0. 2.));
    test "simpson on sin over [0, pi]" (fun () ->
        close_rel ~tol:1e-8 "area 2" 2. (Quadrature.simpson sin 0. Float.pi));
    test "adaptive on a sharp exponential" (fun () ->
        (* integral of e^(-50x) over [0,1] = (1 - e^-50)/50 *)
        let f x = exp (-50. *. x) in
        close_rel ~tol:1e-9 "sharp" ((1. -. exp (-50.)) /. 50.) (Quadrature.adaptive f 0. 1.));
    test "adaptive handles reversed orientation via sign" (fun () ->
        close_rel ~tol:1e-9 "reversed" (-2.) (Quadrature.adaptive sin Float.pi 0.));
    test "trapezoid converges at second order" (fun () ->
        let exact = 2. in
        let err n = Float.abs (Quadrature.trapezoid ~intervals:n sin 0. Float.pi -. exact) in
        let e1 = err 16 and e2 = err 32 in
        close_rel ~tol:0.05 "order 2" 4. (e1 /. e2));
    test "validation" (fun () ->
        check_raises_invalid "nan bound" (fun () ->
            ignore (Quadrature.simpson sin 0. Float.nan));
        check_raises_invalid "intervals" (fun () ->
            ignore (Quadrature.simpson ~intervals:1 sin 0. 1.)));
    test "eq. 9: closed-form liner resistance equals its integral" (fun () ->
        (* R3 = int_0^tL dx / (2 pi kL (tD + lext) (r + x)) *)
        let stack = Params.block () in
        let rs = Resistances.of_stack stack in
        let r = 5e-6 and t_l = 1e-6 and k_l = 1.4 in
        let span = 5e-6 (* tD + lext *) in
        let integrand x = 1. /. (2. *. Float.pi *. k_l *. span *. (r +. x)) in
        let numeric = Quadrature.adaptive integrand 0. t_l in
        close_rel ~tol:1e-9 "eq. 9" numeric rs.Resistances.triples.(0).Resistances.liner);
  ]

let property_tests =
  [
    qtest ~count:50 "adaptive matches simpson on random polynomials"
      QCheck2.Gen.(triple (float_range (-3.) 3.) (float_range (-3.) 3.) (float_range (-3.) 3.))
      (fun (a, b, c) ->
        let f x = (a *. x *. x) +. (b *. x) +. c in
        let s = Quadrature.simpson ~intervals:64 f (-1.) 2. in
        let ad = Quadrature.adaptive f (-1.) 2. in
        Float.abs (s -. ad) < 1e-9 *. Float.max 1. (Float.abs s));
    qtest ~count:50 "linearity of the integral"
      QCheck2.Gen.(pair (float_range 0.1 5.) (float_range 0.1 5.))
      (fun (alpha, beta) ->
        let f x = sin x and g x = cos (2. *. x) in
        let combo x = (alpha *. f x) +. (beta *. g x) in
        let lhs = Quadrature.adaptive combo 0. 1.5 in
        let rhs =
          (alpha *. Quadrature.adaptive f 0. 1.5) +. (beta *. Quadrature.adaptive g 0. 1.5)
        in
        Float.abs (lhs -. rhs) < 1e-9);
  ]

let suite = ("quadrature", unit_tests @ property_tests)
