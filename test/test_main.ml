(* Aggregates every suite into one alcotest runner (dune runtest).

   When TTSV_FAULTS is set, only the chaos suite runs: a globally armed
   fault engine injects NaNs and worker crashes by design, which breaks
   the determinism and golden contracts every other suite pins.  The CI
   chaos job uses exactly this gate to replay the chaos suite across
   seeds. *)

let all_suites =
  [
    Test_vec.suite;
    Test_dense.suite;
    Test_tridiag.suite;
    Test_banded.suite;
    Test_sparse.suite;
    Test_iterative.suite;
    Test_multigrid.suite;
    Test_robust.suite;
    Test_optimize.suite;
    Test_interp_stats.suite;
    Test_physics.suite;
    Test_geometry.suite;
    Test_network.suite;
    Test_resistances.suite;
    Test_model_a.suite;
    Test_model_b.suite;
    Test_model_1d.suite;
    Test_cluster.suite;
    Test_transient.suite;
    Test_calibrate.suite;
    Test_fem.suite;
    Test_experiments.suite;
    Test_chip.suite;
    Test_export.suite;
    Test_fem3.suite;
    Test_richardson.suite;
    Test_sensitivity.suite;
    Test_rng.suite;
    Test_package_spreading.suite;
    Test_extensions.suite;
    Test_nonlinear.suite;
    Test_electrical.suite;
    Test_quadrature.suite;
    Test_fv_transient_layout.suite;
    Test_trace.suite;
    Test_integration.suite;
    Test_properties.suite;
    Test_precond.suite;
    Test_parallel.suite;
    Test_obs.suite;
    Test_service.suite;
    Test_profile.suite;
    Test_golden.suite;
    Test_chaos.suite;
  ]

let () =
  match Sys.getenv_opt "TTSV_FAULTS" with
  | Some spec when String.trim spec <> "" -> Alcotest.run "ttsv-chaos" [ Test_chaos.suite ]
  | Some _ | None -> Alcotest.run "ttsv" all_suites
