(* Tests for TSV, Plane and Stack geometry. *)

module Units = Ttsv_physics.Units
module Tsv = Ttsv_geometry.Tsv
module Plane = Ttsv_geometry.Plane
module Stack = Ttsv_geometry.Stack
module Vec = Ttsv_numerics.Vec
open Helpers

let tsv_tests =
  [
    test "areas hand computed" (fun () ->
        let t = Tsv.make ~radius:(Units.um 10.) ~liner_thickness:(Units.um 1.) () in
        close_rel "fill" (Float.pi *. 1e-10) (Tsv.fill_area t);
        close_rel "occupied" (Float.pi *. 1.21e-10) (Tsv.occupied_area t);
        close_rel "outer" (Units.um 11.) (Tsv.outer_radius t));
    test "divide preserves total metal area" (fun () ->
        let t = Tsv.make ~radius:(Units.um 10.) ~liner_thickness:(Units.um 1.) () in
        List.iter
          (fun n ->
            let thin = Tsv.divide t n in
            close_rel "metal area"
              (Tsv.fill_area t)
              (float_of_int n *. Tsv.fill_area thin))
          [ 1; 2; 4; 9; 16 ]);
    test "divide increases total liner surface" (fun () ->
        (* perimeter grows like sqrt n at constant metal area *)
        let t = Tsv.make ~radius:(Units.um 10.) ~liner_thickness:(Units.um 1.) () in
        let perimeter n = float_of_int n *. 2. *. Float.pi *. (Tsv.divide t n).Tsv.radius in
        Alcotest.(check bool) "grows" true (perimeter 4 > perimeter 1);
        close_rel "sqrt law" (2. *. perimeter 1) (perimeter 4));
    test "aspect ratio" (fun () ->
        let t = Tsv.make ~radius:(Units.um 5.) ~liner_thickness:(Units.um 1.) () in
        close_rel "ar" 10. (Tsv.aspect_ratio t (Units.um 100.)));
    test "validation" (fun () ->
        check_raises_invalid "radius" (fun () ->
            ignore (Tsv.make ~radius:0. ~liner_thickness:1e-6 ()));
        check_raises_invalid "liner" (fun () ->
            ignore (Tsv.make ~radius:1e-6 ~liner_thickness:0. ()));
        check_raises_invalid "ext" (fun () ->
            ignore (Tsv.make ~radius:1e-6 ~liner_thickness:1e-6 ~extension:(-1.) ()));
        check_raises_invalid "divide" (fun () ->
            ignore (Tsv.divide (Tsv.make ~radius:1e-6 ~liner_thickness:1e-6 ()) 0)));
  ]

let plane_tests =
  [
    test "height" (fun () ->
        let p =
          Plane.make ~t_substrate:(Units.um 50.) ~t_ild:(Units.um 5.) ~t_bond:(Units.um 2.) ()
        in
        close_rel "h" (Units.um 57.) (Plane.height p));
    test "heat input arithmetic" (fun () ->
        let p =
          Plane.make ~t_substrate:(Units.um 50.) ~t_ild:(Units.um 4.) ~t_bond:0.
            ~t_device:(Units.um 1.)
            ~device_power_density:(Units.w_per_mm3 700.)
            ~ild_power_density:(Units.w_per_mm3 70.) ()
        in
        (* over 0.01 mm^2: 700e9 * 1e-6 * 1e-8 + 70e9 * 4e-6 * 1e-8 = 7e-3 + 2.8e-3 *)
        close_rel "q" 9.8e-3 (Plane.heat_input p ~device_area:1e-8 ~ild_area:1e-8));
    test "device layer cannot exceed substrate" (fun () ->
        check_raises_invalid "device" (fun () ->
            ignore
              (Plane.make ~t_substrate:(Units.um 1.) ~t_ild:(Units.um 1.) ~t_bond:0.
                 ~t_device:(Units.um 2.) ())));
    test "with_power overrides selectively" (fun () ->
        let p = Plane.make ~t_substrate:1e-4 ~t_ild:1e-6 ~t_bond:0. () in
        let p' = Plane.with_power ~device_power_density:5. p in
        close "dev" 5. p'.Plane.device_power_density;
        close "ild kept" 0. p'.Plane.ild_power_density);
  ]

let block () = Ttsv_core.Params.block ()

let stack_tests =
  [
    test "paper block has three planes" (fun () ->
        Alcotest.(check int) "planes" 3 (Stack.num_planes (block ())));
    test "silicon area correction (eq. 7)" (fun () ->
        let s = block () in
        let expected = 1e-8 -. (Float.pi *. ((Units.um 6.) ** 2.)) in
        close_rel "A" expected (Stack.silicon_area s));
    test "tsv_length spans ext+ild1+bond2+si2+ild2+bond3+si3" (fun () ->
        let s = block () in
        (* 1 + 4 + 1 + 45 + 4 + 1 + 45 um *)
        close_rel "len" (Units.um 101.) (Stack.tsv_length s));
    test "heat inputs: top plane ILD heats over full footprint" (fun () ->
        let s = block () in
        let q = Stack.heat_inputs s in
        Alcotest.(check bool) "top plane slightly larger" true (q.(2) > q.(0));
        close_rel "q1=q2" q.(0) q.(1));
    test "total heat equals sum" (fun () ->
        let s = block () in
        close_rel "total" (Vec.sum (Stack.heat_inputs s)) (Stack.total_heat s));
    test "first plane must have no bond" (fun () ->
        let tsv = Tsv.make ~radius:1e-6 ~liner_thickness:1e-6 () in
        let p = Plane.make ~t_substrate:1e-4 ~t_ild:1e-6 ~t_bond:1e-6 () in
        check_raises_invalid "bond" (fun () ->
            ignore (Stack.make ~footprint:1e-8 ~planes:[ p ] ~tsv ())));
    test "upper planes need a bond" (fun () ->
        let tsv = Tsv.make ~radius:1e-6 ~liner_thickness:1e-6 () in
        let p0 = Plane.make ~t_substrate:1e-4 ~t_ild:1e-6 ~t_bond:0. () in
        check_raises_invalid "no bond above" (fun () ->
            ignore (Stack.make ~footprint:1e-8 ~planes:[ p0; p0 ] ~tsv ())));
    test "TSV must fit the footprint" (fun () ->
        let tsv = Tsv.make ~radius:(Units.um 60.) ~liner_thickness:(Units.um 1.) () in
        let p0 = Plane.make ~t_substrate:1e-4 ~t_ild:1e-6 ~t_bond:0. () in
        check_raises_invalid "fit" (fun () ->
            ignore (Stack.make ~footprint:(Units.um2 (100. *. 100.)) ~planes:[ p0 ] ~tsv ())));
    test "extension must stay inside the first substrate" (fun () ->
        let tsv = Tsv.make ~radius:1e-6 ~liner_thickness:1e-6 ~extension:(Units.um 600.) () in
        let p0 = Plane.make ~t_substrate:(Units.um 500.) ~t_ild:1e-6 ~t_bond:0. () in
        check_raises_invalid "ext" (fun () ->
            ignore (Stack.make ~footprint:1e-8 ~planes:[ p0 ] ~tsv ())));
    test "cells_for_density sizes the paper's case study" (fun () ->
        let tsv = Tsv.make ~radius:(Units.um 30.) ~liner_thickness:(Units.um 1.) () in
        let count, cell =
          Stack.cells_for_density ~footprint_total:(Units.mm 10. *. Units.mm 10.) ~density:0.005
            ~tsv
        in
        (* 0.5% of 100 mm^2 is 0.5 mm^2 of metal; each via is pi*(30um)^2 *)
        Alcotest.(check int) "count" 177 count;
        close_rel "tiling" 1e-4 (float_of_int count *. cell));
    test "cells_for_density validates" (fun () ->
        let tsv = Tsv.make ~radius:1e-6 ~liner_thickness:1e-6 () in
        check_raises_invalid "density" (fun () ->
            ignore (Stack.cells_for_density ~footprint_total:1. ~density:1.5 ~tsv)));
    test "map_planes rescales" (fun () ->
        let s = block () in
        let s' =
          Stack.map_planes s (fun i p ->
              if i = 0 then p else Plane.with_t_substrate p (Units.um 30.))
        in
        close_rel "t2" (Units.um 30.) (Stack.plane s' 1).Plane.t_substrate);
  ]

let property_tests =
  [
    qtest ~count:40 "silicon area positive and below footprint" gen_stack (fun s ->
        let a = Stack.silicon_area s in
        a > 0. && a < s.Stack.footprint);
    qtest ~count:40 "heat inputs are positive" gen_stack (fun s ->
        Array.for_all (fun q -> q > 0.) (Stack.heat_inputs s));
    qtest ~count:40 "total height is the sum of plane heights" gen_stack (fun s ->
        let sum = ref 0. in
        for i = 0 to Stack.num_planes s - 1 do
          sum := !sum +. Plane.height (Stack.plane s i)
        done;
        Float.abs (!sum -. Stack.total_height s) < 1e-12);
  ]

let suite = ("geometry", tsv_tests @ plane_tests @ stack_tests @ property_tests)
