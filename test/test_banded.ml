(* Tests for the banded solver (Model B's workhorse). *)

module Banded = Ttsv_numerics.Banded
module Dense = Ttsv_numerics.Dense
module Vec = Ttsv_numerics.Vec
open Helpers

(* diagonally dominant banded matrix with half-bandwidth bw *)
let gen_banded n bw =
  let open QCheck2.Gen in
  let* offdiag = array_size (return (n * ((2 * bw) + 1))) (float_range (-1.) 1.) in
  let* b = gen_vec n in
  let m = Banded.create ~n ~bw in
  for i = 0 to n - 1 do
    for j = Stdlib.max 0 (i - bw) to Stdlib.min (n - 1) (i + bw) do
      if i <> j then Banded.set m i j (0.3 *. offdiag.((i * ((2 * bw) + 1)) + (j - i + bw)))
    done
  done;
  for i = 0 to n - 1 do
    Banded.set m i i (float_of_int ((2 * bw) + 2))
  done;
  return (m, b)

let unit_tests =
  [
    test "get outside band is zero" (fun () ->
        let m = Banded.create ~n:5 ~bw:1 in
        close "far" 0. (Banded.get m 0 4));
    test "set outside band raises" (fun () ->
        let m = Banded.create ~n:5 ~bw:1 in
        check_raises_invalid "outside" (fun () -> Banded.set m 0 3 1.));
    test "add_to accumulates" (fun () ->
        let m = Banded.create ~n:3 ~bw:1 in
        Banded.add_to m 1 2 2.;
        Banded.add_to m 1 2 3.;
        close "acc" 5. (Banded.get m 1 2));
    test "diagonal solve" (fun () ->
        let m = Banded.create ~n:3 ~bw:0 in
        Banded.set m 0 0 2.;
        Banded.set m 1 1 4.;
        Banded.set m 2 2 8.;
        let x = Banded.solve m [| 2.; 4.; 8. |] in
        Array.iter (fun xi -> close "xi" 1. xi) x);
    test "of_dense rejects out-of-band nonzeros" (fun () ->
        let d = Dense.of_arrays [| [| 1.; 0.; 5. |]; [| 0.; 1.; 0. |]; [| 0.; 0.; 1. |] |] in
        check_raises_invalid "off-band" (fun () -> ignore (Banded.of_dense ~bw:1 d)));
    test "zero pivot raises Singular" (fun () ->
        let m = Banded.create ~n:2 ~bw:0 in
        Banded.set m 0 0 1.;
        Alcotest.check_raises "singular" Dense.Singular (fun () ->
            ignore (Banded.solve m [| 1.; 1. |])));
    test "order and bandwidth accessors" (fun () ->
        let m = Banded.create ~n:7 ~bw:2 in
        Alcotest.(check int) "order" 7 (Banded.order m);
        Alcotest.(check int) "bw" 2 (Banded.bandwidth m));
  ]

let property_tests =
  [
    qtest ~count:50 "bw=2 solve matches dense LU" (gen_banded 12 2) (fun (m, b) ->
        let x1 = Banded.solve m b in
        let x2 = Dense.solve (Banded.to_dense m) b in
        Vec.approx_equal ~rtol:1e-8 ~atol:1e-10 x1 x2);
    qtest ~count:40 "bw=1 equals tridiagonal structure" (gen_banded 10 1) (fun (m, b) ->
        let x = Banded.solve m b in
        Vec.norm_inf (Vec.sub (Banded.mat_vec m x) b) < 1e-8);
    qtest ~count:30 "mat_vec matches dense" (gen_banded 9 2) (fun (m, b) ->
        Vec.approx_equal ~rtol:1e-10 ~atol:1e-12 (Banded.mat_vec m b)
          (Dense.mat_vec (Banded.to_dense m) b));
    qtest ~count:30 "of_dense/to_dense roundtrip" (gen_banded 8 2) (fun (m, _) ->
        let d = Banded.to_dense m in
        Dense.approx_equal (Banded.to_dense (Banded.of_dense ~bw:2 d)) d);
  ]

let suite = ("banded", unit_tests @ property_tests)
