(* Tests for temperature-dependent-conductivity solving (core Picard + FV
   Picard) and the Thevenin equivalent-resistance extraction. *)

module Units = Ttsv_physics.Units
module Materials = Ttsv_physics.Materials
module Material = Ttsv_physics.Material
module Stack = Ttsv_geometry.Stack
module Plane = Ttsv_geometry.Plane
module Params = Ttsv_core.Params
module Model_a = Ttsv_core.Model_a
module Nonlinear = Ttsv_core.Nonlinear
module Problem = Ttsv_fem.Problem
module Solver = Ttsv_fem.Solver
module Circuit = Ttsv_network.Circuit
open Helpers

let sink_k = Units.kelvin_of_celsius 27.

let kt_stack () =
  Stack.map_planes (Params.fig5_stack (Units.um 1.)) (fun _ p ->
      { p with Plane.substrate = Materials.silicon_k_of_t })

let nonlinear_tests =
  [
    test "constant-k stack: nonlinear equals linear in two sweeps" (fun () ->
        let stack = Params.block () in
        let linear = Model_a.max_rise (Model_a.solve stack) in
        let r, sweeps = Nonlinear.solve ~sink_temperature_k:sink_k stack in
        close_rel ~tol:1e-12 "same" linear (Model_a.max_rise r);
        Alcotest.(check int) "two sweeps" 2 sweeps);
    test "k(T) silicon runs hotter than its 300 K baseline" (fun () ->
        let stack = kt_stack () in
        let linear = Model_a.max_rise (Model_a.solve stack) in
        let r, sweeps = Nonlinear.solve ~sink_temperature_k:sink_k stack in
        Alcotest.(check bool) "hotter" true (Model_a.max_rise r > linear);
        Alcotest.(check bool) "needed iterations" true (sweeps > 2));
    test "penalty grows with power" (fun () ->
        let at scale =
          let stack =
            Stack.map_planes (kt_stack ()) (fun _ p ->
                Plane.with_power
                  ~device_power_density:(p.Plane.device_power_density *. scale)
                  ~ild_power_density:(p.Plane.ild_power_density *. scale)
                  p)
          in
          Nonlinear.self_heating_penalty ~sink_temperature_k:sink_k stack
        in
        let p1 = at 1. and p2 = at 2. in
        Alcotest.(check bool) "positive" true (p1 > 0.);
        Alcotest.(check bool) "compounds" true (p2 > p1));
    test "penalty is zero for constant k" (fun () ->
        close ~tol:1e-9 "zero" 0.
          (Nonlinear.self_heating_penalty ~sink_temperature_k:sink_k (Params.block ())));
    test "FV Picard: constant-k returns the linear solution" (fun () ->
        let stack = Params.block () in
        let problem = Problem.of_stack stack in
        let linear = Solver.max_rise (Solver.solve problem) in
        let materials = Problem.materials_of_stack stack in
        let res, sweeps =
          Solver.solve_nonlinear_exn ~materials ~sink_temperature_k:sink_k problem
        in
        close_rel ~tol:1e-9 "same" linear (Solver.max_rise res);
        Alcotest.(check int) "two sweeps" 2 sweeps);
    test "FV Picard: k(T) runs hotter and conserves energy" (fun () ->
        let stack = kt_stack () in
        let problem = Problem.of_stack stack in
        let linear = Solver.max_rise (Solver.solve problem) in
        let materials = Problem.materials_of_stack stack in
        let res, _ =
          Solver.solve_nonlinear_exn ~materials ~sink_temperature_k:sink_k problem
        in
        Alcotest.(check bool) "hotter" true (Solver.max_rise res > linear);
        Alcotest.(check bool) "conserves" true (Solver.energy_imbalance res < 1e-6));
    test "FV Picard failure is typed and carries the last iterate" (fun () ->
        let problem = Problem.of_stack (Params.block ()) in
        let materials = Problem.materials_of_stack (Params.block ()) in
        (* one sweep can never satisfy the settle test, so every damping
           rung is exhausted and the structured failure surfaces *)
        match
          Solver.solve_nonlinear ~max_picard:1 ~materials ~sink_temperature_k:sink_k
            problem
        with
        | Ok _ -> Alcotest.fail "expected a Picard failure with max_picard = 1"
        | Error f ->
          Alcotest.(check int) "one sweep" 1 f.Solver.sweeps;
          Alcotest.(check bool) "most damped rung was tried" true (f.Solver.damping < 1.);
          Alcotest.(check bool) "last iterate attached" true
            (Solver.max_rise f.Solver.last > 0.);
          Alcotest.(check bool) "residual attached" true
            (Float.is_finite f.Solver.last.Solver.residual));
    test "FV Picard validates the materials map" (fun () ->
        let problem = Problem.of_stack (Params.block ()) in
        check_raises_invalid "length" (fun () ->
            ignore
              (Solver.solve_nonlinear ~materials:[| Materials.silicon |]
                 ~sink_temperature_k:sink_k problem)));
    test "materials map places copper on the axis" (fun () ->
        let stack = Params.block () in
        let materials = Problem.materials_of_stack stack in
        let p = Problem.of_stack stack in
        Array.iteri
          (fun i (m : Material.t) ->
            close_rel "k matches material" m.Material.conductivity p.Problem.conductivity.(i))
          materials;
        Alcotest.(check bool) "has copper cells" true
          (Array.exists (fun (m : Material.t) -> m.Material.name = "copper") materials));
  ]

let thevenin_tests =
  [
    test "series chain resistance" (fun () ->
        let c = Circuit.create () in
        let g = Circuit.ground c in
        let a = Circuit.add_node c "a" in
        let b = Circuit.add_node c "b" in
        Circuit.add_resistor c g a 3.;
        Circuit.add_resistor c a b 7.;
        close_rel "a-b" 7. (Circuit.equivalent_resistance c a b);
        close_rel "g-b" 10. (Circuit.equivalent_resistance c g b);
        close "self" 0. (Circuit.equivalent_resistance c a a));
    test "wheatstone-like bridge" (fun () ->
        (* two parallel 2-resistor branches between ground and top:
           (1+1) || (2+2) = 2*4/6 = 4/3 *)
        let c = Circuit.create () in
        let g = Circuit.ground c in
        let top = Circuit.add_node c "top" in
        let m1 = Circuit.add_node c "m1" in
        let m2 = Circuit.add_node c "m2" in
        Circuit.add_resistor c g m1 1.;
        Circuit.add_resistor c m1 top 1.;
        Circuit.add_resistor c g m2 2.;
        Circuit.add_resistor c m2 top 2.;
        close_rel "parallel branches" (4. /. 3.) (Circuit.equivalent_resistance c g top));
    test "sources do not affect the equivalent resistance" (fun () ->
        let c = Circuit.create () in
        let g = Circuit.ground c in
        let a = Circuit.add_node c "a" in
        Circuit.add_resistor c g a 5.;
        Circuit.add_heat_source c a 100.;
        close_rel "r" 5. (Circuit.equivalent_resistance c g a));
    test "model A network: foot-to-top equivalent is below the bulk chain" (fun () ->
        (* the TTSV provides a parallel path, so the two-port resistance
           from T0 to the top bulk node must be smaller than the series
           bulk resistances alone *)
        let stack = Params.block () in
        let rs = Ttsv_core.Resistances.of_stack stack in
        let net = Model_a.build_network rs (Stack.heat_inputs stack) in
        let series_bulk =
          Array.fold_left (fun acc (t : Ttsv_core.Resistances.triple) -> acc +. t.Ttsv_core.Resistances.bulk) 0.
            rs.Ttsv_core.Resistances.triples
        in
        let eq =
          Circuit.equivalent_resistance net.Model_a.circuit net.Model_a.t0_node
            net.Model_a.bulk_nodes.(2)
        in
        Alcotest.(check bool)
          (Printf.sprintf "eq %.1f < series %.1f" eq series_bulk)
          true (eq < series_bulk));
  ]

let suite = ("nonlinear+thevenin", nonlinear_tests @ thevenin_tests)
