(* The profiling layer: History ring-buffer semantics, Profile's trace
   analysis (exact on a hand-built trace, v1-compatible, and consistent
   with the raw span records of a real traced solve), the Regress bench
   gate (passes on identical benches, names the offending metric on
   injected wall/iteration regressions), and Multigrid's per-cycle
   history. *)

module Json = Ttsv_obs.Json
module History = Ttsv_obs.History
module Profile = Ttsv_obs.Profile
module Regress = Ttsv_obs.Regress
module Config = Ttsv_obs.Config
module Sink = Ttsv_obs.Sink
module Robust = Ttsv_robust.Robust
module Multigrid = Ttsv_numerics.Multigrid

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------- history *)

let test_history_ring () =
  Helpers.check_raises_invalid "cap must be positive" (fun () ->
      History.create ~cap:0 ~meth:"cg" ());
  let h = History.create ~cap:4 ~meth:"cg" () in
  Alcotest.(check int) "capacity" 4 (History.capacity h);
  for i = 0 to 2 do
    History.record h i (float_of_int (100 - i))
  done;
  let s = History.snapshot h in
  Alcotest.(check string) "method survives" "cg" s.History.meth;
  Alcotest.(check int) "total below cap" 3 s.History.total;
  Alcotest.(check (array int)) "window below cap keeps everything" [| 0; 1; 2 |]
    s.History.iterations;
  for i = 3 to 9 do
    History.record h i (float_of_int (100 - i))
  done;
  let s = History.snapshot h in
  Alcotest.(check int) "total counts overwritten entries" 10 s.History.total;
  Alcotest.(check (array int)) "ring keeps the newest cap entries, oldest first"
    [| 6; 7; 8; 9 |] s.History.iterations;
  Array.iteri
    (fun k iter ->
      Helpers.close
        (Printf.sprintf "residual %d rides with its iteration" k)
        (float_of_int (100 - iter))
        s.History.residuals.(k))
    s.History.iterations

(* ---------------------------------------------------- synthetic profile *)

let meta_line schema =
  Json.to_string
    (Json.Obj [ ("type", Json.String "meta"); ("schema", Json.String schema) ])

let span_line ~id ~parent ~name ~start ~dur =
  Json.to_string
    (Json.Obj
       [
         ("type", Json.String "span");
         ("id", Json.Int id);
         ("parent", match parent with Some p -> Json.Int p | None -> Json.Null);
         ("domain", Json.Int 0);
         ("depth", Json.Int (if parent = None then 0 else 1));
         ("name", Json.String name);
         ("start", Json.Float start);
         ("dur", Json.Float dur);
       ])

(* a: [0, 1.0] with two b-children of 0.4 and 0.3 — every derived number
   is a dyadic-free hand sum, so the checks are exact *)
let synthetic schema =
  [
    meta_line schema;
    span_line ~id:2 ~parent:(Some 1) ~name:"b" ~start:0.1 ~dur:0.4;
    span_line ~id:3 ~parent:(Some 1) ~name:"b" ~start:0.5 ~dur:0.3;
    span_line ~id:1 ~parent:None ~name:"a" ~start:0. ~dur:1.0;
    Json.to_string
      (Json.Obj
         [
           ("type", Json.String "conv");
           ("method", Json.String "cg");
           ("total", Json.Int 3);
           ("iterations", Json.List [ Json.Int 0; Json.Int 1; Json.Int 2 ]);
           ("residuals", Json.List [ Json.Float 1.0; Json.Float 0.5; Json.Float 0.25 ]);
           ("t", Json.Float 0.9);
           ("span", Json.Int 2);
         ]);
  ]

let profile_exn lines =
  match Profile.of_lines lines with
  | Ok t -> t
  | Error e -> Alcotest.fail ("Profile.of_lines failed: " ^ e)

let test_profile_synthetic () =
  let t = profile_exn (synthetic Sink.schema) in
  Alcotest.(check int) "three spans" 3 (List.length t.Profile.spans);
  Alcotest.(check int) "one root" 1 (List.length (Profile.roots t));
  (match Profile.totals t with
  | [ b; a ] ->
    Alcotest.(check string) "b leads on self time" "b" b.Profile.agg_name;
    Alcotest.(check int) "b count" 2 b.Profile.agg_count;
    Helpers.close "b total" 0.7 b.Profile.agg_total;
    Helpers.close "b self (leaves)" 0.7 b.Profile.agg_self;
    Helpers.close "a total" 1.0 a.Profile.agg_total;
    Helpers.close "a self = dur minus children" 0.3 a.Profile.agg_self
  | l -> Alcotest.failf "expected two aggregate rows, got %d" (List.length l));
  (match Profile.collapsed t with
  | [ ("a", sa); ("a;b", sb) ] ->
    Helpers.close "collapsed a" 0.3 sa;
    Helpers.close "collapsed a;b merges both children" 0.7 sb
  | l ->
    Alcotest.failf "unexpected collapsed stacks: %s"
      (String.concat " | " (List.map fst l)));
  (match Profile.critical_path t with
  | [ (r, _); (k, _) ] ->
    Alcotest.(check string) "path starts at the root" "a" r.Profile.name;
    Helpers.close "path follows the longest child" 0.4 k.Profile.dur
  | l -> Alcotest.failf "expected a 2-deep critical path, got %d" (List.length l));
  (match t.Profile.convs with
  | [ c ] ->
    Alcotest.(check string) "conv method" "cg" c.Profile.meth;
    Alcotest.(check (option string))
      "conv labelled with its stack" (Some "a;b")
      (Option.bind c.Profile.span (Profile.span_label t))
  | l -> Alcotest.failf "expected one conv record, got %d" (List.length l))

let test_profile_schemas () =
  (* a v1 trace (no conv records existed, but span parsing is identical) *)
  let t = profile_exn (synthetic Sink.schema_v1) in
  Alcotest.(check string) "v1 accepted" Sink.schema_v1 t.Profile.schema;
  (match Profile.of_lines (synthetic "ttsv.trace.v99") with
  | Error e ->
    Alcotest.(check bool)
      (Printf.sprintf "error %S names the schema" e)
      true
      (contains ~sub:"v99" e)
  | Ok _ -> Alcotest.fail "unknown schema must be rejected");
  match Profile.of_lines (List.tl (synthetic Sink.schema)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a trace without a meta line must be rejected"

(* ---------------------------------------------------------- real trace *)

(* trace an actual ladder solve, then check Profile's aggregates against
   the raw span records: per-name totals must match the plain sum of
   durations, and the collapsed stacks must account for the full traced
   wall time (sum of root durations) to within 1% *)
let test_profile_real_trace () =
  let n = 60 in
  let a =
    QCheck2.Gen.generate1 ~rand:(Random.State.make [| 2029 |]) (Helpers.gen_spd n)
  in
  let path = Filename.temp_file "ttsv_profile" ".jsonl" in
  Config.enable_trace path;
  (match Robust.solve a (Array.make n 1.) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "Robust.solve failed on an SPD system");
  Config.disable_trace ();
  let t = profile_exn (In_channel.with_open_text path In_channel.input_lines) in
  Sys.remove path;
  Alcotest.(check bool) "the solve produced spans" true (List.length t.Profile.spans > 0);
  let raw_totals = Hashtbl.create 16 in
  List.iter
    (fun (s : Profile.span) ->
      Hashtbl.replace raw_totals s.name
        (s.dur +. Option.value ~default:0. (Hashtbl.find_opt raw_totals s.name)))
    t.Profile.spans;
  List.iter
    (fun (r : Profile.agg) ->
      Helpers.close_rel ~tol:0.01
        (Printf.sprintf "aggregate total for %s matches the raw spans" r.Profile.agg_name)
        (Hashtbl.find raw_totals r.Profile.agg_name)
        r.Profile.agg_total)
    (Profile.totals t);
  let traced =
    List.fold_left (fun acc (s : Profile.span) -> acc +. s.dur) 0. (Profile.roots t)
  in
  let flame_total = List.fold_left (fun acc (_, self) -> acc +. self) 0. (Profile.collapsed t) in
  Helpers.close_rel ~tol:0.01 "collapsed stacks account for the traced time" traced
    flame_total

(* ------------------------------------------------------------- regress *)

(* a miniature BENCH_*.json in the committed shape; [wall] scales every
   wall_s, [iters] offsets the mg iteration count *)
let bench ?(wall = 1.0) ?(iters = 0) () =
  Json.Obj
    [
      ("bench", Json.String "multigrid");
      ( "artefacts",
        Json.List
          [
            Json.Obj
              [
                ("name", Json.String "solve_fv_fig5");
                ( "runs",
                  Json.List
                    [
                      Json.Obj
                        [
                          ("resolution", Json.Int 2);
                          ( "preconds",
                            Json.List
                              [
                                Json.Obj
                                  [
                                    ("name", Json.String "mg");
                                    ("iterations", Json.Int (20 + iters));
                                    ("wall_s", Json.Float (0.5 *. wall));
                                    ( "phases",
                                      Json.List
                                        [
                                          Json.Obj
                                            [
                                              ("name", Json.String "span.mg.cycle");
                                              ("sum_s", Json.Float (0.4 *. wall));
                                            ];
                                        ] );
                                  ];
                                Json.Obj
                                  [
                                    ("name", Json.String "ic0");
                                    ("iterations", Json.Int 35);
                                    ("wall_s", Json.Float (0.2 *. wall));
                                  ];
                              ] );
                        ];
                    ] );
              ];
          ] );
    ]

let test_regress_extract () =
  let ms = Regress.extract (bench ()) in
  let keys = List.map (fun (m : Regress.metric) -> (m.Regress.key, Regress.kind_name m.Regress.kind)) ms in
  Alcotest.(check bool) "mg iterations discovered" true
    (List.mem ("solve_fv_fig5/res2/mg", "iterations") keys);
  Alcotest.(check bool) "ic0 wall discovered" true
    (List.mem ("solve_fv_fig5/res2/ic0", "wall_s") keys);
  Alcotest.(check bool) "phase sums are not gated" true
    (List.for_all
       (fun (k, _) -> not (contains ~sub:"span.mg" k))
       keys)

let test_regress_identical () =
  let rows = Regress.compare_benches ~baseline:(bench ()) ~current:(bench ()) () in
  Alcotest.(check int) "four gated metrics" 4 (List.length rows);
  Alcotest.(check (list string)) "identical benches pass" [] (Regress.violations rows)

let test_regress_injected () =
  (* 2x wall regression: both wall metrics blow the default 2.0 ratio *)
  let rows =
    Regress.compare_benches ~baseline:(bench ()) ~current:(bench ~wall:2.5 ()) ()
  in
  let vs = Regress.violations rows in
  Alcotest.(check int) "both wall metrics flagged" 2 (List.length vs);
  Alcotest.(check bool) "violation names the metric and kind" true
    (List.exists
       (fun v ->
         contains ~sub:"solve_fv_fig5/res2/mg" v
         && contains ~sub:"wall_s" v)
       vs);
  (* +50% iterations on mg: exact band, one violation *)
  let rows =
    Regress.compare_benches ~baseline:(bench ()) ~current:(bench ~iters:10 ()) ()
  in
  (match Regress.violations rows with
  | [ v ] ->
    Alcotest.(check bool)
      (Printf.sprintf "violation %S names the mg iterations" v)
      true
      (contains ~sub:"solve_fv_fig5/res2/mg" v
      && contains ~sub:"iterations" v)
  | l -> Alcotest.failf "expected exactly one violation, got %d" (List.length l));
  (* an improvement passes the wall gate but trips the exact iteration band *)
  let rows =
    Regress.compare_benches ~baseline:(bench ~wall:2.5 ()) ~current:(bench ()) ()
  in
  Alcotest.(check (list string)) "getting faster is never a violation" []
    (Regress.violations rows);
  (* a metric missing from current is a violation, not a silent skip *)
  let rows =
    Regress.compare_benches ~baseline:(bench ())
      ~current:(Json.Obj [ ("bench", Json.String "multigrid") ])
      ()
  in
  Alcotest.(check int) "every baseline metric reported missing" 4
    (List.length (Regress.violations rows))

(* ------------------------------------------------------- multigrid conv *)

let test_multigrid_conv () =
  let n = 32 in
  let a =
    QCheck2.Gen.generate1 ~rand:(Random.State.make [| 2030 |]) (Helpers.gen_spd n)
  in
  (* disabled path first: no observability, no ring buffer *)
  (match Multigrid.build ~shape:[| n |] a with
  | Ok mg ->
    ignore (Multigrid.cycle mg (Array.make n 1.));
    Alcotest.(check bool) "no history with obs disabled" true (Multigrid.conv mg = None)
  | Error e -> Alcotest.fail ("multigrid build failed: " ^ e));
  Config.enable_metrics ();
  Fun.protect ~finally:Config.disable_metrics @@ fun () ->
  match Multigrid.build ~shape:[| n |] a with
  | Error e -> Alcotest.fail ("multigrid build failed: " ^ e)
  | Ok mg ->
    let r = Array.make n 1. in
    for _ = 1 to 5 do
      ignore (Multigrid.cycle mg r)
    done;
    (match Multigrid.conv mg with
    | None -> Alcotest.fail "no history with metrics enabled"
    | Some s ->
      Alcotest.(check string) "method is mg" "mg" s.History.meth;
      Alcotest.(check int) "one record per cycle" 5 s.History.total;
      Alcotest.(check (array int)) "cycles numbered in order" [| 0; 1; 2; 3; 4 |]
        s.History.iterations;
      let norm = Ttsv_numerics.Vec.norm2 r in
      Array.iter
        (fun res -> Helpers.close "each cycle saw the same residual norm" norm res)
        s.History.residuals)

let suite =
  ( "profile",
    [
      Helpers.test "history ring keeps the newest window and true total" test_history_ring;
      Helpers.test "profile analysis is exact on a synthetic trace" test_profile_synthetic;
      Helpers.test "profile accepts v1, rejects unknown schemas" test_profile_schemas;
      Helpers.test "profile aggregates agree with a real traced solve"
        test_profile_real_trace;
      Helpers.test "regress discovers bench metrics, skips phases" test_regress_extract;
      Helpers.test "regress passes on identical benches" test_regress_identical;
      Helpers.test "regress names injected wall and iteration regressions"
        test_regress_injected;
      Helpers.test "multigrid records one history entry per V-cycle" test_multigrid_conv;
    ] )
