(* Determinism suite for the domain-pool layer: pooled execution must be
   indistinguishable from sequential execution.  Kernels with disjoint
   writes (parallel_for, Sparse.mul, paxpy, assembly) and ordered sweeps
   must agree bit for bit across every domain count; chunk-grouped
   reductions (pdot) must agree bit for bit with the pool's own
   sequential fallback and within 1e-12 relative of a plain fold. *)

module Pool = Ttsv_parallel.Pool
module Vec = Ttsv_numerics.Vec
module Sparse = Ttsv_numerics.Sparse
module Iterative = Ttsv_numerics.Iterative
module Precond = Ttsv_numerics.Precond
module Multigrid = Ttsv_numerics.Multigrid
module Problem = Ttsv_fem.Problem
module Solver = Ttsv_fem.Solver
module Problem3 = Ttsv_fem.Problem3
module Solver3 = Ttsv_fem.Solver3
module Allocation = Ttsv_chip.Allocation
module Chip_model = Ttsv_chip.Chip_model
module Power_map = Ttsv_chip.Power_map
module Stack = Ttsv_geometry.Stack
module Params = Ttsv_core.Params
module Units = Ttsv_physics.Units
module E = Ttsv_experiments
open Helpers

let domain_counts = [ 1; 2; 4 ]

(* odd sizes on purpose: 1 (degenerate), 7 (single chunk), 1023/4097
   (partial last chunk on either side of the parallel cutoff) *)
let sizes = [ 1; 7; 1023; 4097 ]

let vec n = Array.init n (fun i -> sin (float_of_int i *. 0.7) +. (0.01 *. float_of_int i))

let check_float_array msg a b =
  Alcotest.(check (array (float 0.))) msg a b

let pool_tests =
  [
    test "create/domains/shutdown" (fun () ->
        let p = Pool.create ~domains:3 () in
        Alcotest.(check int) "domains" 3 (Pool.domains p);
        Pool.shutdown p;
        Pool.shutdown p (* idempotent *);
        check_raises_invalid "use after shutdown" (fun () ->
            Pool.parallel_for p 10 (fun _ -> ()));
        check_raises_invalid "too many domains" (fun () ->
            ignore (Pool.create ~domains:1000 ()));
        Alcotest.(check int) "seq is one domain" 1 (Pool.domains Pool.seq));
    test "parallel_for visits every index exactly once" (fun () ->
        List.iter
          (fun d ->
            Pool.with_pool ~domains:d @@ fun pool ->
            List.iter
              (fun n ->
                let counts = Array.make n 0 in
                Pool.parallel_for ~chunk:16 ~min_size:2 pool n (fun i ->
                    counts.(i) <- counts.(i) + 1);
                Alcotest.(check bool)
                  (Printf.sprintf "once each (domains=%d n=%d)" d n)
                  true
                  (Array.for_all (fun c -> c = 1) counts))
              sizes)
          domain_counts);
    test "for_chunks covers [0, n) with identical chunks at any domain count" (fun () ->
        let bounds pool n =
          let acc = ref [] in
          let m = Mutex.create () in
          Pool.for_chunks ~chunk:100 ~min_size:2 pool n (fun ~lo ~hi ->
              Mutex.protect m (fun () -> acc := (lo, hi) :: !acc));
          List.sort compare !acc
        in
        List.iter
          (fun n ->
            let reference = bounds Pool.seq n in
            List.iter
              (fun d ->
                Pool.with_pool ~domains:d @@ fun pool ->
                Alcotest.(check (list (pair int int)))
                  (Printf.sprintf "chunks (domains=%d n=%d)" d n)
                  reference (bounds pool n))
              domain_counts)
          sizes);
    test "map_reduce equals the sequential fallback exactly" (fun () ->
        List.iter
          (fun n ->
            let x = vec n in
            let sum pool =
              Pool.map_reduce ~chunk:64 ~min_size:2 pool ~n
                ~map:(fun ~lo ~hi ->
                  let acc = ref 0. in
                  for i = lo to hi - 1 do
                    acc := !acc +. x.(i)
                  done;
                  !acc)
                ~reduce:( +. ) ~init:0.
            in
            let reference = sum Pool.seq in
            List.iter
              (fun d ->
                Pool.with_pool ~domains:d @@ fun pool ->
                Alcotest.(check (float 0.))
                  (Printf.sprintf "sum (domains=%d n=%d)" d n)
                  reference (sum pool))
              domain_counts)
          sizes);
    test "map_array preserves input order" (fun () ->
        Pool.with_pool ~domains:4 @@ fun pool ->
        let xs = Array.init 37 (fun i -> i) in
        Alcotest.(check (array int))
          "squares in order"
          (Array.map (fun i -> i * i) xs)
          (Pool.map_array pool (fun i -> i * i) xs));
    test "exceptions propagate out of a region" (fun () ->
        Pool.with_pool ~domains:4 @@ fun pool ->
        (match Pool.parallel_for ~chunk:8 ~min_size:2 pool 5000 (fun i ->
                 if i = 4099 then failwith "boom")
         with
        | () -> Alcotest.fail "expected Failure"
        | exception Failure m -> Alcotest.(check string) "message" "boom" m);
        (* the pool survives a failed region *)
        let counts = Array.make 100 0 in
        Pool.parallel_for ~chunk:8 ~min_size:2 pool 100 (fun i -> counts.(i) <- 1);
        Alcotest.(check bool) "usable after failure" true (Array.for_all (( = ) 1) counts));
    test "nested regions run inline instead of deadlocking" (fun () ->
        Pool.with_pool ~domains:2 @@ fun pool ->
        let out = Array.make 64 0. in
        Pool.parallel_for ~chunk:8 ~min_size:2 pool 64 (fun i ->
            out.(i) <-
              Pool.map_reduce ~chunk:4 ~min_size:2 pool ~n:8
                ~map:(fun ~lo ~hi -> float_of_int (hi - lo))
                ~reduce:( +. ) ~init:(float_of_int i));
        Alcotest.(check (array (float 0.)))
          "inner reductions"
          (Array.init 64 (fun i -> float_of_int (i + 8)))
          out);
    test "am_worker marks pool runners and resets outside them" (fun () ->
        (* regression for the nested-pool slowdown: kernels invoked from
           inside a pool runner must see am_worker and stay inline
           instead of re-entering the fork/join machinery *)
        Alcotest.(check bool) "outside any pool" false (Pool.am_worker ());
        Pool.with_pool ~domains:2 @@ fun pool ->
        let all_marked = Atomic.make true in
        Pool.parallel_for ~chunk:4 ~min_size:2 pool 64 (fun _ ->
            if not (Pool.am_worker ()) then Atomic.set all_marked false);
        Alcotest.(check bool) "inside every runner" true (Atomic.get all_marked);
        Alcotest.(check bool) "cleared after the region" false (Pool.am_worker ()));
    test "TTSV_DOMAINS overrides the default domain count" (fun () ->
        Unix.putenv "TTSV_DOMAINS" "3";
        let p = Pool.create () in
        let d = Pool.domains p in
        Pool.shutdown p;
        Unix.putenv "TTSV_DOMAINS" "";
        Alcotest.(check int) "from env" 3 d);
  ]

let kernel_tests =
  [
    test "pdot pooled equals its sequential fallback exactly" (fun () ->
        List.iter
          (fun n ->
            let x = vec n and y = vec n in
            let reference = Vec.pdot x y in
            List.iter
              (fun d ->
                Pool.with_pool ~domains:d @@ fun pool ->
                Alcotest.(check (float 0.))
                  (Printf.sprintf "pdot (domains=%d n=%d)" d n)
                  reference (Vec.pdot ~pool x y))
              domain_counts)
          sizes);
    test "pdot within 1e-12 relative of the plain fold" (fun () ->
        let n = 4097 in
        let x = vec n and y = vec n in
        close_rel ~tol:1e-12 "pdot vs dot" (Vec.dot x y) (Vec.pdot x y));
    test "paxpy pooled equals axpy exactly" (fun () ->
        List.iter
          (fun n ->
            let x = vec n in
            let reference = vec n in
            Vec.axpy 1.5 x reference;
            List.iter
              (fun d ->
                Pool.with_pool ~domains:d @@ fun pool ->
                let y = vec n in
                Vec.paxpy ~pool 1.5 x y;
                check_float_array (Printf.sprintf "paxpy (domains=%d n=%d)" d n) reference y)
              domain_counts)
          sizes);
    test "Sparse.mul pooled equals mat_vec exactly" (fun () ->
        (* a banded test matrix large enough to split into many chunks *)
        let n = 3000 in
        let b = Sparse.builder n n in
        for i = 0 to n - 1 do
          Sparse.add b i i (4. +. (0.001 *. float_of_int i));
          if i > 0 then Sparse.add b i (i - 1) (-1.3);
          if i < n - 1 then Sparse.add b i (i + 1) (-0.7)
        done;
        let m = Sparse.finalize b in
        let x = vec n in
        let reference = Sparse.mat_vec m x in
        List.iter
          (fun d ->
            Pool.with_pool ~domains:d @@ fun pool ->
            check_float_array
              (Printf.sprintf "mul (domains=%d)" d)
              reference (Sparse.mul ~pool m x))
          domain_counts);
  ]

(* collect a sparse matrix into comparable (row, col, value) triplets *)
let triplets m =
  let acc = ref [] in
  for i = Sparse.rows m - 1 downto 0 do
    Sparse.iter_row m i (fun j v -> acc := (i, j, v) :: !acc)
  done;
  !acc

let fem_tests =
  [
    test "2-D assembly pooled equals sequential bit for bit" (fun () ->
        let p = Problem.of_stack ~resolution:2 (Params.fig5_stack (Units.um 1.)) in
        let reference = triplets (Solver.assemble p) in
        List.iter
          (fun d ->
            Pool.with_pool ~domains:d @@ fun pool ->
            Alcotest.(check bool)
              (Printf.sprintf "triplets equal (domains=%d)" d)
              true
              (reference = triplets (Solver.assemble ~pool p)))
          domain_counts);
    test "3-D assembly and build pooled equal sequential bit for bit" (fun () ->
        let stack = Params.fig5_stack (Units.um 1.) in
        let reference_p = Problem3.of_stack ~resolution:1 stack in
        let reference = triplets (Solver3.assemble reference_p) in
        Pool.with_pool ~domains:4 @@ fun pool ->
        let p = Problem3.of_stack ~resolution:1 ~pool stack in
        check_float_array "conductivity" reference_p.Problem3.conductivity
          p.Problem3.conductivity;
        check_float_array "source" reference_p.Problem3.source p.Problem3.source;
        Alcotest.(check bool)
          "triplets equal" true
          (reference = triplets (Solver3.assemble ~pool p)));
    test "pooled CG matches sequential iteration-for-iteration (fig5 system)" (fun () ->
        (* satellite regression: the stagnation/divergence guards observe
           the chunk-deterministic preconditioned residual, so a pooled
           matvec cannot shift the guard decisions or the iteration count *)
        let p = Problem.of_stack ~resolution:2 (Params.fig5_stack (Units.um 1.)) in
        let a = Solver.assemble p in
        let reference = Iterative.cg ~tol:1e-10 a p.Problem.source in
        List.iter
          (fun d ->
            Pool.with_pool ~domains:d @@ fun pool ->
            let r = Iterative.cg ~tol:1e-10 ~pool a p.Problem.source in
            Alcotest.(check int)
              (Printf.sprintf "iterations (domains=%d)" d)
              reference.Iterative.iterations r.Iterative.iterations;
            Alcotest.(check bool) "converged" reference.Iterative.converged
              r.Iterative.converged;
            Alcotest.(check (float 0.))
              "residual" reference.Iterative.residual r.Iterative.residual;
            check_float_array "trace" reference.Iterative.trace r.Iterative.trace;
            check_float_array "solution" reference.Iterative.solution r.Iterative.solution)
          domain_counts);
    test "preconditioned CG pooled matches sequential iteration-for-iteration" (fun () ->
        (* the fused kernels and persistent region must not perturb the
           iteration path of either strong preconditioner *)
        let p = Problem.of_stack ~resolution:2 (Params.fig5_stack (Units.um 1.)) in
        let a = Solver.assemble p in
        List.iter
          (fun (name, m) ->
            let reference = Iterative.cg ~tol:1e-10 ~precond:m a p.Problem.source in
            List.iter
              (fun d ->
                Pool.with_pool ~domains:d @@ fun pool ->
                let r = Iterative.cg ~tol:1e-10 ~pool ~precond:m a p.Problem.source in
                Alcotest.(check int)
                  (Printf.sprintf "%s iterations (domains=%d)" name d)
                  reference.Iterative.iterations r.Iterative.iterations;
                check_float_array
                  (Printf.sprintf "%s trace (domains=%d)" name d)
                  reference.Iterative.trace r.Iterative.trace;
                check_float_array
                  (Printf.sprintf "%s solution (domains=%d)" name d)
                  reference.Iterative.solution r.Iterative.solution)
              domain_counts)
          [
            ("ic0", Result.get_ok (Precond.ic0 a));
            ("ssor", Result.get_ok (Precond.ssor a));
          ]);
    test "multigrid setup and cycles pooled match sequential bit for bit" (fun () ->
        (* setup is sequential by construction, so a pooled build must
           yield the identical hierarchy; the cycle kernels are
           disjoint-slot maps and independent line solves, so a pooled
           cycle must reproduce the sequential one exactly *)
        let p = Problem.of_stack ~resolution:2 (Params.fig5_stack (Units.um 1.)) in
        let a = Solver.assemble p in
        let g = p.Problem.grid in
        let shape = [| Ttsv_fem.Grid.nr g; Ttsv_fem.Grid.nz g |] in
        let href = Result.get_ok (Multigrid.build ~shape a) in
        let r = vec (Sparse.rows a) in
        let reference = Multigrid.cycle href r in
        List.iter
          (fun d ->
            Pool.with_pool ~domains:d @@ fun pool ->
            let h = Result.get_ok (Multigrid.build ~pool ~shape a) in
            Alcotest.(check int)
              (Printf.sprintf "levels (domains=%d)" d)
              (Multigrid.num_levels href) (Multigrid.num_levels h);
            check_float_array
              (Printf.sprintf "pooled-build cycle (domains=%d)" d)
              reference (Multigrid.cycle h r);
            check_float_array
              (Printf.sprintf "pooled cycle (domains=%d)" d)
              reference
              (Multigrid.cycle ~pool href r))
          domain_counts);
    test "mg-preconditioned CG pooled matches sequential iteration-for-iteration"
      (fun () ->
        let p = Problem.of_stack ~resolution:2 (Params.fig5_stack (Units.um 1.)) in
        let a = Solver.assemble p in
        let g = p.Problem.grid in
        let shape = [| Ttsv_fem.Grid.nr g; Ttsv_fem.Grid.nz g |] in
        let m = Result.get_ok (Precond.mg ~shape a) in
        let reference = Iterative.cg ~tol:1e-10 ~precond:m a p.Problem.source in
        List.iter
          (fun d ->
            Pool.with_pool ~domains:d @@ fun pool ->
            (* the preconditioner itself is rebuilt under the pool, so
               both the setup path and the per-iteration cycles are
               exercised pooled *)
            let mp = Result.get_ok (Precond.mg ~pool ~shape a) in
            let r = Iterative.cg ~tol:1e-10 ~pool ~precond:mp a p.Problem.source in
            Alcotest.(check int)
              (Printf.sprintf "iterations (domains=%d)" d)
              reference.Iterative.iterations r.Iterative.iterations;
            check_float_array
              (Printf.sprintf "trace (domains=%d)" d)
              reference.Iterative.trace r.Iterative.trace;
            check_float_array
              (Printf.sprintf "solution (domains=%d)" d)
              reference.Iterative.solution r.Iterative.solution)
          domain_counts);
    test "inner preconditioned CG under a sweep runs inline and matches" (fun () ->
        (* a solve launched from inside an outer Sweep worker must not
           spawn a nested pool: am_worker forces it sequential, so the
           result is identical to a plain sequential solve *)
        let p = Problem.of_stack ~resolution:1 (Params.fig5_stack (Units.um 1.)) in
        let a = Solver.assemble p in
        let m = Result.get_ok (Precond.ic0 a) in
        let reference = Iterative.cg ~tol:1e-10 ~precond:m a p.Problem.source in
        Pool.with_pool ~domains:2 @@ fun pool ->
        let sols =
          E.Sweep.map ~pool
            (fun _ -> Iterative.cg ~tol:1e-10 ~pool ~precond:m a p.Problem.source)
            [ 0; 1; 2; 3 ]
        in
        Array.iter
          (fun (r : Iterative.result) ->
            Alcotest.(check int)
              "nested iterations" reference.Iterative.iterations r.Iterative.iterations;
            check_float_array "nested solution" reference.Iterative.solution
              r.Iterative.solution)
          sols);
    test "pooled BiCGStab matches sequential iteration-for-iteration" (fun () ->
        let p = Problem.of_stack ~resolution:1 (Params.fig5_stack (Units.um 1.)) in
        let a = Solver.assemble p in
        let reference = Iterative.bicgstab ~tol:1e-10 a p.Problem.source in
        Pool.with_pool ~domains:4 @@ fun pool ->
        let r = Iterative.bicgstab ~tol:1e-10 ~pool a p.Problem.source in
        Alcotest.(check int) "iterations" reference.Iterative.iterations
          r.Iterative.iterations;
        check_float_array "solution" reference.Iterative.solution r.Iterative.solution);
    test "full 2-D solve pooled equals sequential" (fun () ->
        let p = Problem.of_stack ~resolution:1 (Params.fig5_stack (Units.um 1.)) in
        let reference = Solver.solve p in
        Pool.with_pool ~domains:4 @@ fun pool ->
        let r = Solver.solve ~pool p in
        Alcotest.(check int) "iterations" reference.Solver.iterations r.Solver.iterations;
        check_float_array "temps" reference.Solver.temps r.Solver.temps);
    test "full 3-D solve pooled equals sequential" (fun () ->
        let stack = Params.fig5_stack (Units.um 1.) in
        let reference = Solver3.solve (Problem3.of_stack ~resolution:1 stack) in
        Pool.with_pool ~domains:4 @@ fun pool ->
        let r = Solver3.solve ~pool (Problem3.of_stack ~resolution:1 ~pool stack) in
        Alcotest.(check int) "iterations" reference.Solver3.iterations
          r.Solver3.iterations;
        check_float_array "temps" reference.Solver3.temps r.Solver3.temps);
  ]

let sweep_tests =
  [
    test "Sweep.map keeps sweep order at any domain count" (fun () ->
        let xs = List.init 23 (fun i -> i) in
        let reference = Array.of_list (List.map (fun i -> (i * 7) mod 11) xs) in
        List.iter
          (fun d ->
            Pool.with_pool ~domains:d @@ fun pool ->
            Alcotest.(check (array int))
              (Printf.sprintf "ordered (domains=%d)" d)
              reference
              (E.Sweep.map ~pool (fun i -> (i * 7) mod 11) xs))
          domain_counts);
    test "fig5 sweep pooled equals sequential bit for bit" (fun () ->
        let reference = E.Fig5.run ~resolution:1 () in
        Pool.with_pool ~domains:2 @@ fun pool ->
        let fig = E.Fig5.run ~resolution:1 ~pool () in
        List.iter2
          (fun (a : E.Report.series) (b : E.Report.series) ->
            Alcotest.(check string) "label" a.E.Report.label b.E.Report.label;
            check_float_array a.E.Report.label a.E.Report.ys b.E.Report.ys)
          reference.E.Report.series fig.E.Report.series);
    test "variation study pooled equals sequential bit for bit" (fun () ->
        let reference = E.Variation.run ~samples:500 () in
        Pool.with_pool ~domains:4 @@ fun pool ->
        let s = E.Variation.run ~samples:500 ~pool () in
        Alcotest.(check (float 0.)) "mean" reference.E.Variation.mean s.E.Variation.mean;
        Alcotest.(check (float 0.)) "stddev" reference.E.Variation.stddev
          s.E.Variation.stddev;
        Alcotest.(check (float 0.)) "p99" reference.E.Variation.p99 s.E.Variation.p99;
        Alcotest.(check (float 0.)) "worst" reference.E.Variation.worst
          s.E.Variation.worst;
        Alcotest.(check (float 0.))
          "yield" reference.E.Variation.yield_at_budget s.E.Variation.yield_at_budget);
    test "look-ahead allocation pooled equals sequential" (fun () ->
        let stack = Params.fig5_stack (Units.um 1.) in
        let chip =
          Chip_model.make ~width:(Units.mm 1.) ~height:(Units.mm 1.) ~nx:4 ~ny:4
            ~planes:(Array.to_list stack.Stack.planes)
            ~tsv:stack.Stack.tsv ()
        in
        let power =
          List.init
            (Array.length stack.Stack.planes)
            (fun _ ->
              Power_map.add_hotspot
                (Power_map.uniform ~nx:4 ~ny:4 ~total:0.2)
                ~x0:1 ~y0:1 ~x1:2 ~y1:2 ~watts:0.3)
        in
        let bare = Chip_model.solve chip (Chip_model.uniform_density chip 0.) power in
        let o = Allocation.default_options ~budget:(bare.Chip_model.max_rise *. 0.85) in
        let o = { o with Allocation.step = 0.01; candidates = 4 } in
        let reference = Allocation.allocate chip power o in
        Pool.with_pool ~domains:4 @@ fun pool ->
        let out = Allocation.allocate ~pool chip power o in
        Alcotest.(check bool) "feasible" reference.Allocation.feasible
          out.Allocation.feasible;
        Alcotest.(check int) "iterations" reference.Allocation.iterations
          out.Allocation.iterations;
        check_float_array "densities" reference.Allocation.densities
          out.Allocation.densities;
        (* the look-ahead picks at least as well as plain greedy *)
        let greedy =
          Allocation.allocate chip power { o with Allocation.candidates = 1 }
        in
        Alcotest.(check bool)
          "look-ahead not worse" true
          (out.Allocation.iterations <= greedy.Allocation.iterations));
  ]

module Budget = Ttsv_parallel.Budget

let budget_tests =
  [
    test "an expired budget aborts for_chunks with Expired on every path" (fun () ->
        let spent = Budget.make ~max_work:0 () in
        let attempt pool n =
          match
            Pool.for_chunks ~chunk:8 ~min_size:2 ~budget:spent pool n (fun ~lo:_ ~hi:_ -> ())
          with
          | () -> Alcotest.fail "expected Budget.Expired"
          | exception Budget.Expired Budget.Work_exhausted -> ()
          | exception Budget.Expired Budget.Deadline_exceeded ->
            Alcotest.fail "work cap must win over the clock"
        in
        attempt Pool.seq 100 (* sequential fallback *);
        Pool.with_pool ~domains:4 @@ fun pool ->
        attempt pool 5000 (* fork/join path *);
        (* and the pool is unharmed afterwards *)
        let counts = Array.make 100 0 in
        Pool.parallel_for ~chunk:8 ~min_size:2 pool 100 (fun i -> counts.(i) <- 1);
        Alcotest.(check bool) "usable after expiry" true (Array.for_all (( = ) 1) counts));
    test "map_array under an expired budget raises Expired" (fun () ->
        Pool.with_pool ~domains:2 @@ fun pool ->
        let spent = Budget.make ~max_work:0 () in
        match Pool.map_array ~budget:spent pool (fun i -> i * i) (Array.init 64 Fun.id) with
        | _ -> Alcotest.fail "expected Budget.Expired"
        | exception Budget.Expired _ -> ());
    test "budget expiry mid-sweep is prompt and loses no completed chunk" (fun () ->
        (* the budget is polled once per chunk before its body runs: with
           the work cap ticked inside the body, the sequential walk does
           exactly [cap] chunks and then raises *)
        let cap = 3 in
        let b = Budget.make ~max_work:cap () in
        let ran = ref 0 in
        (match
           Pool.for_chunks ~chunk:1 ~min_size:2 ~budget:b Pool.seq 10 (fun ~lo:_ ~hi:_ ->
               incr ran;
               Budget.tick b)
         with
        | () -> Alcotest.fail "expected Budget.Expired"
        | exception Budget.Expired _ -> ());
        Alcotest.(check int) "chunks before expiry" cap !ran);
    test "a generous budget leaves pooled results untouched" (fun () ->
        Pool.with_pool ~domains:4 @@ fun pool ->
        let xs = Array.init 37 Fun.id in
        let budget = Budget.make ~deadline_s:3600. ~max_work:max_int () in
        Alcotest.(check (array int))
          "same squares"
          (Array.map (fun i -> i * i) xs)
          (Pool.map_array ~budget pool (fun i -> i * i) xs));
  ]

let suite =
  ("parallel", pool_tests @ kernel_tests @ fem_tests @ sweep_tests @ budget_tests)
