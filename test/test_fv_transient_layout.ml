(* Tests for the FV transient solver, the convective bottom boundary, via
   layouts, and adaptive Model B refinement. *)

module Units = Ttsv_physics.Units
module Params = Ttsv_core.Params
module Model_b = Ttsv_core.Model_b
module Transient = Ttsv_core.Transient
module Problem = Ttsv_fem.Problem
module Solver = Ttsv_fem.Solver
module Layout = Ttsv_geometry.Layout
open Helpers

let fv_transient_tests =
  [
    test "FV transient converges to the FV steady state" (fun () ->
        let stack = Params.block () in
        let problem = Problem.of_stack stack in
        let steady = Solver.max_rise (Solver.solve problem) in
        let materials = Problem.materials_of_stack stack in
        let tr = Solver.solve_transient ~materials ~dt:2e-3 ~steps:60 problem in
        let last = tr.Solver.max_rises.(Array.length tr.Solver.max_rises - 1) in
        close_rel ~tol:0.01 "settles" steady last);
    test "FV transient is monotone under a power step" (fun () ->
        let stack = Params.block () in
        let problem = Problem.of_stack stack in
        let materials = Problem.materials_of_stack stack in
        let tr = Solver.solve_transient ~materials ~dt:1e-3 ~steps:20 problem in
        let ok = ref true in
        for i = 0 to Array.length tr.Solver.max_rises - 2 do
          if tr.Solver.max_rises.(i + 1) < tr.Solver.max_rises.(i) -. 1e-12 then ok := false
        done;
        Alcotest.(check bool) "monotone" true !ok;
        close "starts cold" 0. tr.Solver.max_rises.(0));
    test "FV and lumped transients agree on the time scale" (fun () ->
        (* the lumped Model A transient and the field transient should reach
           63% of their own steady states within a factor ~2 of each other *)
        let stack = Params.block () in
        let lumped = Transient.solve stack ~dt:2e-4 ~duration:0.05 in
        let tau_lumped = Transient.time_constant lumped in
        let problem = Problem.of_stack stack in
        let materials = Problem.materials_of_stack stack in
        let tr = Solver.solve_transient ~materials ~dt:5e-4 ~steps:100 problem in
        let steady = tr.Solver.max_rises.(Array.length tr.Solver.max_rises - 1) in
        let target = (1. -. exp (-1.)) *. steady in
        let tau_fv =
          let i = ref 0 in
          while tr.Solver.max_rises.(!i) < target do
            incr i
          done;
          tr.Solver.times.(!i)
        in
        Alcotest.(check bool)
          (Printf.sprintf "tau lumped %.2g vs FV %.2g" tau_lumped tau_fv)
          true
          (tau_fv /. tau_lumped < 2.5 && tau_lumped /. tau_fv < 2.5));
    test "transient validation" (fun () ->
        let stack = Params.block () in
        let problem = Problem.of_stack stack in
        let materials = Problem.materials_of_stack stack in
        check_raises_invalid "dt" (fun () ->
            ignore (Solver.solve_transient ~materials ~dt:0. ~steps:5 problem));
        check_raises_invalid "materials" (fun () ->
            ignore
              (Solver.solve_transient
                 ~materials:[| Ttsv_physics.Materials.silicon |]
                 ~dt:1e-3 ~steps:5 problem)));
  ]

let convective_tests =
  [
    test "a finite film coefficient raises every temperature" (fun () ->
        let stack = Params.block () in
        let problem = Problem.of_stack stack in
        let iso = Solver.max_rise (Solver.solve problem) in
        let conv = Solver.max_rise (Solver.solve ~bottom_h:5e4 problem) in
        Alcotest.(check bool) "hotter above a film" true (conv > iso));
    test "a huge film coefficient recovers the isothermal answer" (fun () ->
        let stack = Params.block () in
        let problem = Problem.of_stack stack in
        let iso = Solver.max_rise (Solver.solve problem) in
        let nearly = Solver.max_rise (Solver.solve ~bottom_h:1e12 problem) in
        close_rel ~tol:1e-4 "limit" iso nearly);
    test "film resistance adds about 1/(h A) for a uniform slab" (fun () ->
        let p =
          Problem.uniform_column ~layers:[ (1e-4, 150.) ] ~radius:1e-4 ~cells_per_layer:10
            ~top_flux:0.5
        in
        let h = 1e4 in
        let area = Float.pi *. 1e-8 in
        let iso = Solver.max_rise (Solver.solve p) in
        let conv = Solver.max_rise (Solver.solve ~bottom_h:h p) in
        close_rel ~tol:1e-6 "series film" (0.5 /. (h *. area)) (conv -. iso));
    test "nonpositive h rejected" (fun () ->
        let p = Problem.of_stack (Params.block ()) in
        check_raises_invalid "h" (fun () -> ignore (Solver.solve ~bottom_h:0. p)));
  ]

let layout_tests =
  [
    test "square grid count and containment" (fun () ->
        let side = 1e-4 in
        let centers = Layout.square_grid ~side ~rows:3 ~cols:4 in
        Alcotest.(check int) "count" 12 (List.length centers);
        Alcotest.(check bool) "fits" true (Layout.fits ~side ~margin:1e-5 centers));
    test "square grid pitch" (fun () ->
        let centers = Layout.square_grid ~side:1e-4 ~rows:2 ~cols:2 in
        close_rel "pitch is half the side" 5e-5 (Layout.min_pitch centers));
    test "hexagonal respects its pitch" (fun () ->
        let centers = Layout.hexagonal ~side:1e-4 ~pitch:2e-5 in
        Alcotest.(check bool) "nonempty" true (List.length centers > 10);
        Alcotest.(check bool) "drc" true
          (Layout.spacing_ok ~min_spacing:(2e-5 *. 0.999) centers);
        Alcotest.(check bool) "fits" true (Layout.fits ~side:1e-4 ~margin:(1e-5 *. 0.999) centers));
    test "hexagonal packs denser than square at equal spacing" (fun () ->
        let side = 2e-4 and pitch = 2e-5 in
        let hex = List.length (Layout.hexagonal ~side ~pitch) in
        let per_row = int_of_float (side /. pitch) in
        let square = per_row * per_row in
        Alcotest.(check bool)
          (Printf.sprintf "hex %d > square %d" hex square)
          true (hex > square));
    test "ring geometry" (fun () ->
        let side = 1e-4 in
        let centers = Layout.ring ~side ~count:8 ~radius:3e-5 in
        Alcotest.(check int) "count" 8 (List.length centers);
        List.iter
          (fun (x, y) ->
            close_rel ~tol:1e-9 "on circle" 3e-5
              (Float.hypot (x -. (side /. 2.)) (y -. (side /. 2.))))
          centers;
        check_raises_invalid "too large" (fun () ->
            ignore (Layout.ring ~side ~count:4 ~radius:6e-5)));
    test "min_pitch of a singleton is infinite" (fun () ->
        Alcotest.(check bool) "inf" true (Layout.min_pitch [ (0., 0.) ] = Float.infinity));
  ]

let adaptive_tests =
  [
    test "adaptive Model B converges and reports its ladder" (fun () ->
        let stack = Params.block () in
        let r, ladder = Model_b.solve_adaptive ~rel_tol:0.005 stack in
        (match ladder with
        | 10 :: _ :: _ -> ()
        | _ -> Alcotest.fail "expected a doubling ladder from 10");
        let reference = Model_b.max_rise (Model_b.solve_n stack 1000) in
        close_rel ~tol:0.01 "near converged" reference (Model_b.max_rise r));
    test "tighter tolerance climbs further" (fun () ->
        let stack = Params.block () in
        let _, loose = Model_b.solve_adaptive ~rel_tol:0.05 stack in
        let _, tight = Model_b.solve_adaptive ~rel_tol:0.001 stack in
        Alcotest.(check bool) "more levels" true (List.length tight >= List.length loose));
    test "validation" (fun () ->
        check_raises_invalid "tol" (fun () ->
            ignore (Model_b.solve_adaptive ~rel_tol:0. (Params.block ()))));
  ]

let suite =
  ("fv-transient+layout", fv_transient_tests @ convective_tests @ layout_tests @ adaptive_tests)
