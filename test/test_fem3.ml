(* Tests for the 3-D Cartesian finite-volume solver. *)

module Units = Ttsv_physics.Units
module Tsv = Ttsv_geometry.Tsv
module Plane = Ttsv_geometry.Plane
module Stack = Ttsv_geometry.Stack
module Grid3 = Ttsv_fem.Grid3
module Problem3 = Ttsv_fem.Problem3
module Solver3 = Ttsv_fem.Solver3
module Problem = Ttsv_fem.Problem
module Solver = Ttsv_fem.Solver
open Helpers

let grid_tests =
  [
    test "volumes tile the box" (fun () ->
        let g =
          Grid3.make ~x_faces:[| 0.; 1e-6; 3e-6 |] ~y_faces:[| 0.; 2e-6 |]
            ~z_faces:[| 0.; 1e-6; 2e-6; 5e-6 |]
        in
        let total = ref 0. in
        for ix = 0 to Grid3.nx g - 1 do
          for iy = 0 to Grid3.ny g - 1 do
            for iz = 0 to Grid3.nz g - 1 do
              total := !total +. Grid3.volume g ix iy iz
            done
          done
        done;
        close_rel "W*D*H" (3e-6 *. 2e-6 *. 5e-6) !total);
    test "face areas" (fun () ->
        let g =
          Grid3.make ~x_faces:[| 0.; 2e-6 |] ~y_faces:[| 0.; 3e-6 |] ~z_faces:[| 0.; 5e-6 |]
        in
        close_rel "x-normal" (3e-6 *. 5e-6) (Grid3.face_area_x g 0 0);
        close_rel "y-normal" (2e-6 *. 5e-6) (Grid3.face_area_y g 0 0);
        close_rel "z-normal" (2e-6 *. 3e-6) (Grid3.face_area_z g 0 0));
    test "index round trip" (fun () ->
        let g =
          Grid3.make ~x_faces:[| 0.; 1.; 2. |] ~y_faces:[| 0.; 1.; 2.; 3. |]
            ~z_faces:[| 0.; 1. |]
        in
        Alcotest.(check int) "cells" 6 (Grid3.cells g);
        Alcotest.(check int) "idx" 5 (Grid3.index g 1 2 0));
    test "validation" (fun () ->
        check_raises_invalid "start" (fun () ->
            ignore
              (Grid3.make ~x_faces:[| 1.; 2. |] ~y_faces:[| 0.; 1. |] ~z_faces:[| 0.; 1. |])));
  ]

(* Uniform slab with top heating: same analytic oracle as the axisymmetric
   solver, now in Cartesian coordinates. *)
let slab3 () =
  let n = 6 and nz = 20 in
  let side = 1e-4 and h = 1e-4 and k = 25. and q = 0.5 in
  let faces len m = Array.init (m + 1) (fun i -> len *. float_of_int i /. float_of_int m) in
  let g = Grid3.make ~x_faces:(faces side n) ~y_faces:(faces side n) ~z_faces:(faces h nz) in
  let cells = Grid3.cells g in
  let conductivity = Array.make cells k in
  let source = Array.make cells 0. in
  for iy = 0 to n - 1 do
    for ix = 0 to n - 1 do
      let idx = Grid3.index g ix iy (nz - 1) in
      source.(idx) <- q /. float_of_int (n * n)
    done
  done;
  let p = Problem3.make ~grid:g ~conductivity ~source in
  let expected =
    (* temperature at the top cell centre: q * (h - dz/2) / (k A) *)
    q *. (h -. (h /. float_of_int nz /. 2.)) /. (k *. side *. side)
  in
  (Solver3.solve p, expected)

let small_stack () =
  (* a small, quick-to-solve block: 30 um cell, 3 um via *)
  let tsv =
    Tsv.make ~radius:(Units.um 3.) ~liner_thickness:(Units.um 0.5) ~extension:(Units.um 1.) ()
  in
  let plane ~first =
    Plane.make
      ~t_substrate:(Units.um (if first then 80. else 20.))
      ~t_ild:(Units.um 3.)
      ~t_bond:(Units.um (if first then 0. else 1.))
      ~t_device:(Units.um 1.)
      ~device_power_density:(Units.w_per_mm3 700.)
      ~ild_power_density:(Units.w_per_mm3 70.) ()
  in
  Stack.make
    ~footprint:(Units.um2 (30. *. 30.))
    ~planes:[ plane ~first:true; plane ~first:false; plane ~first:false ]
    ~tsv ()

let solver_tests =
  [
    test "uniform slab matches the analytic series resistance" (fun () ->
        let res, expected = slab3 () in
        close_rel ~tol:1e-6 "dT" expected (Solver3.max_rise res));
    test "energy conservation on the slab" (fun () ->
        let res, _ = slab3 () in
        Alcotest.(check bool) "balance" true (Solver3.energy_imbalance res < 1e-8));
    test "stack problem: wattage matches the analytic heat inputs" (fun () ->
        let stack = small_stack () in
        let p = Problem3.of_stack stack in
        close_rel ~tol:1e-9 "wattage"
          (Ttsv_numerics.Vec.sum (Stack.heat_inputs stack))
          (Problem3.total_source p));
    test "stack solve conserves energy and agrees with the axisymmetric solver" (fun () ->
        let stack = small_stack () in
        let r3 = Solver3.solve (Problem3.of_stack stack) in
        Alcotest.(check bool) "balance" true (Solver3.energy_imbalance r3 < 1e-6);
        let r2 = Solver.solve (Problem.of_stack ~resolution:2 stack) in
        let a = Solver3.max_rise r3 and b = Solver.max_rise r2 in
        Alcotest.(check bool)
          (Printf.sprintf "square %.3f vs cylinder %.3f within 6%%" a b)
          true
          (Float.abs (a -. b) /. b < 0.06));
    test "via cluster: centers land on a grid and must fit" (fun () ->
        let stack = small_stack () in
        (match Problem3.grid_centers_for_cluster stack 4 with
        | [ (x0, y0); _; _; (x3, y3) ] ->
          close_rel "first quadrant" (Units.um 7.5) x0;
          close_rel "first quadrant y" (Units.um 7.5) y0;
          close_rel "last" (Units.um 22.5) x3;
          close_rel "last y" (Units.um 22.5) y3
        | _ -> Alcotest.fail "expected four centers");
        check_raises_invalid "not a square" (fun () ->
            ignore (Problem3.grid_centers_for_cluster stack 5)));
    test "off-cell via rejected" (fun () ->
        let stack = small_stack () in
        check_raises_invalid "outside" (fun () ->
            ignore (Problem3.of_stack ~via_centers:[ (0., 0.) ] stack)));
    test "cluster of four cools the cell (true layout)" (fun () ->
        let stack = small_stack () in
        let single = Solver3.max_rise (Solver3.solve (Problem3.of_stack stack)) in
        let divided = Stack.with_tsv stack (Tsv.divide stack.Stack.tsv 4) in
        let centers = Problem3.grid_centers_for_cluster divided 4 in
        let four =
          Solver3.max_rise (Solver3.solve (Problem3.of_stack ~via_centers:centers divided))
        in
        Alcotest.(check bool)
          (Printf.sprintf "four vias %.3f < one via %.3f" four single)
          true (four < single));
    test "rise_at top center above rise at sink corner" (fun () ->
        let stack = small_stack () in
        let r = Solver3.solve (Problem3.of_stack stack) in
        let side = sqrt stack.Stack.footprint in
        let top = Solver3.rise_at r ~x:(side /. 2.) ~y:(side /. 2.) ~z:(Units.um 130.) in
        let bottom = Solver3.rise_at r ~x:0. ~y:0. ~z:0. in
        Alcotest.(check bool) "ordering" true (top > bottom);
        Alcotest.(check bool) "bottom near sink" true (bottom < 0.2 *. Solver3.max_rise r));
    test "top_field has the grid's size and contains the max" (fun () ->
        let stack = small_stack () in
        let r = Solver3.solve (Problem3.of_stack stack) in
        let g = r.Solver3.problem.Problem3.grid in
        let field = Solver3.top_field r in
        Alcotest.(check int) "size" (Grid3.nx g * Grid3.ny g) (Array.length field);
        let fmax = Array.fold_left Float.max 0. field in
        close_rel ~tol:0.2 "top row holds (nearly) the max" (Solver3.max_rise r) fmax);
  ]

let suite = ("fem3", grid_tests @ solver_tests)
