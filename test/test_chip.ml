(* Tests for the full-chip compact model and the via allocator. *)

module Units = Ttsv_physics.Units
module Plane = Ttsv_geometry.Plane
module Tsv = Ttsv_geometry.Tsv
module Stack = Ttsv_geometry.Stack
module Model_a = Ttsv_core.Model_a
module Coefficients = Ttsv_core.Coefficients
module Power_map = Ttsv_chip.Power_map
module Chip_model = Ttsv_chip.Chip_model
module Allocation = Ttsv_chip.Allocation
open Helpers

let power_map_tests =
  [
    test "uniform splits evenly" (fun () ->
        let m = Power_map.uniform ~nx:4 ~ny:2 ~total:8. in
        close_rel "tile" 1. (Power_map.get m 3 1);
        close_rel "total" 8. (Power_map.total m));
    test "hotspot adds on top" (fun () ->
        let m = Power_map.uniform ~nx:4 ~ny:4 ~total:16. in
        let m = Power_map.add_hotspot m ~x0:1 ~y0:1 ~x1:2 ~y1:2 ~watts:4. in
        close_rel "inside" 2. (Power_map.get m 1 1);
        close_rel "outside" 1. (Power_map.get m 0 0);
        close_rel "total" 20. (Power_map.total m));
    test "hotspot clamps to the grid" (fun () ->
        let m = Power_map.add_hotspot (Power_map.zero ~nx:2 ~ny:2) ~x0:(-5) ~y0:0 ~x1:0 ~y1:0
            ~watts:3.
        in
        close_rel "clamped" 3. (Power_map.get m 0 0));
    test "hottest tile" (fun () ->
        let m = Power_map.of_function ~nx:3 ~ny:3 (fun x y -> float_of_int (x + (3 * y))) in
        Alcotest.(check (pair int int)) "corner" (2, 2) (Power_map.hottest_tile m));
    test "validation" (fun () ->
        check_raises_invalid "grid" (fun () -> ignore (Power_map.uniform ~nx:0 ~ny:1 ~total:1.));
        check_raises_invalid "negative" (fun () ->
            ignore (Power_map.of_function ~nx:1 ~ny:1 (fun _ _ -> -1.)));
        check_raises_invalid "scale" (fun () ->
            ignore (Power_map.scale (Power_map.zero ~nx:1 ~ny:1) (-1.))));
  ]

(* a chip whose single tile matches the paper block exactly *)
let block_planes () =
  let plane ~first =
    Plane.make
      ~t_substrate:(Units.um (if first then 500. else 45.))
      ~t_ild:(Units.um 4.)
      ~t_bond:(Units.um (if first then 0. else 1.))
      ()
  in
  [ plane ~first:true; plane ~first:false; plane ~first:false ]

let block_tsv () =
  Tsv.make ~radius:(Units.um 5.) ~liner_thickness:(Units.um 1.) ~extension:(Units.um 1.) ()

let single_tile_chip coeffs =
  Chip_model.make ~coeffs ~width:(Units.um 100.) ~height:(Units.um 100.) ~nx:1 ~ny:1
    ~planes:(block_planes ()) ~tsv:(block_tsv ()) ()

let chip_tests =
  [
    test "single tile with one via degenerates to Model A" (fun () ->
        let coeffs = Coefficients.paper_block in
        let chip = single_tile_chip coeffs in
        (* density putting exactly one via in the tile *)
        let d = Tsv.fill_area (block_tsv ()) /. Units.um2 (100. *. 100.) in
        let ds = Chip_model.uniform_density chip d in
        close_rel "one via" 1. (Chip_model.vias_per_tile chip ds 0 0);
        let stack = Ttsv_core.Params.block () in
        let qs = Stack.heat_inputs stack in
        let power =
          List.init 3 (fun j -> Power_map.of_function ~nx:1 ~ny:1 (fun _ _ -> qs.(j)))
        in
        let r = Chip_model.solve chip ds power in
        let a = Model_a.solve_with_heats ~coeffs stack qs in
        close_rel ~tol:1e-9 "same max" (Model_a.max_rise a) r.Chip_model.max_rise;
        Array.iteri
          (fun j t -> close_rel ~tol:1e-9 "plane rise" t r.Chip_model.rises.(j).(0))
          a.Model_a.bulk);
    test "energy conservation through the sink" (fun () ->
        let chip =
          Chip_model.make ~width:(Units.mm 1.) ~height:(Units.mm 1.) ~nx:4 ~ny:4
            ~planes:(block_planes ()) ~tsv:(block_tsv ()) ()
        in
        let ds = Chip_model.uniform_density chip 0.005 in
        let power = List.init 3 (fun _ -> Power_map.uniform ~nx:4 ~ny:4 ~total:0.5) in
        let r = Chip_model.solve chip ds power in
        close_rel ~tol:1e-8 "sink flow" 1.5 r.Chip_model.sink_heat);
    test "a hotspot heats its own column the most" (fun () ->
        let chip =
          Chip_model.make ~width:(Units.mm 2.) ~height:(Units.mm 2.) ~nx:8 ~ny:8
            ~planes:(block_planes ()) ~tsv:(block_tsv ()) ()
        in
        let ds = Chip_model.uniform_density chip 0.002 in
        let base = Power_map.uniform ~nx:8 ~ny:8 ~total:0.5 in
        let hot = Power_map.add_hotspot base ~x0:6 ~y0:6 ~x1:6 ~y1:6 ~watts:0.5 in
        let r = Chip_model.solve chip ds [ base; base; hot ] in
        let _, hx, hy = r.Chip_model.hottest in
        Alcotest.(check (pair int int)) "hotspot location" (6, 6) (hx, hy));
    test "adding vias under the hotspot cools it" (fun () ->
        let chip =
          Chip_model.make ~width:(Units.mm 2.) ~height:(Units.mm 2.) ~nx:4 ~ny:4
            ~planes:(block_planes ()) ~tsv:(block_tsv ()) ()
        in
        let power =
          List.init 3 (fun _ ->
              Power_map.add_hotspot (Power_map.zero ~nx:4 ~ny:4) ~x0:2 ~y0:2 ~x1:2 ~y1:2
                ~watts:0.4)
        in
        let cold = Chip_model.solve chip (Chip_model.uniform_density chip 0.) power in
        let ds = Chip_model.uniform_density chip 0. in
        ds.((2 * 4) + 2) <- 0.05;
        let vias = Chip_model.solve chip ds power in
        Alcotest.(check bool) "cooler with vias" true
          (vias.Chip_model.max_rise < cold.Chip_model.max_rise));
    test "lateral spreading: neighbours of a hotspot warm up" (fun () ->
        let chip =
          Chip_model.make ~width:(Units.mm 1.) ~height:(Units.mm 1.) ~nx:5 ~ny:5
            ~planes:(block_planes ()) ~tsv:(block_tsv ()) ()
        in
        let power =
          List.init 3 (fun _ ->
              Power_map.add_hotspot (Power_map.zero ~nx:5 ~ny:5) ~x0:2 ~y0:2 ~x1:2 ~y1:2
                ~watts:0.2)
        in
        let r = Chip_model.solve chip (Chip_model.uniform_density chip 0.) power in
        let center = Chip_model.rise_at r ~plane:2 ~x:2 ~y:2 in
        let neighbour = Chip_model.rise_at r ~plane:2 ~x:1 ~y:2 in
        let corner = Chip_model.rise_at r ~plane:2 ~x:0 ~y:0 in
        Alcotest.(check bool) "center > neighbour" true (center > neighbour);
        Alcotest.(check bool) "neighbour > corner" true (neighbour > corner);
        Alcotest.(check bool) "corner still warm" true (corner > 0.));
    test "validation" (fun () ->
        let chip = single_tile_chip Coefficients.unity in
        check_raises_invalid "densities length" (fun () ->
            ignore (Chip_model.solve chip [| 0.; 0. |] [ Power_map.zero ~nx:1 ~ny:1 ]));
        check_raises_invalid "plane count" (fun () ->
            ignore
              (Chip_model.solve chip
                 (Chip_model.uniform_density chip 0.)
                 [ Power_map.zero ~nx:1 ~ny:1 ]));
        check_raises_invalid "grid mismatch" (fun () ->
            ignore
              (Chip_model.solve chip
                 (Chip_model.uniform_density chip 0.)
                 [
                   Power_map.zero ~nx:2 ~ny:1;
                   Power_map.zero ~nx:2 ~ny:1;
                   Power_map.zero ~nx:2 ~ny:1;
                 ])));
  ]

let alloc_fixture () =
  let chip =
    Chip_model.make ~width:(Units.mm 1.) ~height:(Units.mm 1.) ~nx:4 ~ny:4
      ~planes:(block_planes ()) ~tsv:(block_tsv ()) ()
  in
  let power =
    List.init 3 (fun _ ->
        Power_map.add_hotspot
          (Power_map.uniform ~nx:4 ~ny:4 ~total:0.2)
          ~x0:1 ~y0:1 ~x1:2 ~y1:2 ~watts:0.3)
  in
  (chip, power)

let allocation_tests =
  [
    test "allocator meets a reachable budget" (fun () ->
        let chip, power = alloc_fixture () in
        let bare = Chip_model.solve chip (Chip_model.uniform_density chip 0.) power in
        let budget = bare.Chip_model.max_rise *. 0.8 in
        let o = Allocation.default_options ~budget in
        let out = Allocation.allocate chip power { o with step = 0.01 } in
        Alcotest.(check bool) "feasible" true out.Allocation.feasible;
        Alcotest.(check bool) "met" true (out.Allocation.final.Chip_model.max_rise <= budget);
        Alcotest.(check bool) "spent metal" true (out.Allocation.metal_area > 0.));
    test "allocation history is monotone decreasing" (fun () ->
        let chip, power = alloc_fixture () in
        let bare = Chip_model.solve chip (Chip_model.uniform_density chip 0.) power in
        let o = Allocation.default_options ~budget:(bare.Chip_model.max_rise *. 0.85) in
        let out = Allocation.allocate chip power { o with step = 0.01 } in
        let h = out.Allocation.history in
        let ok = ref true in
        for i = 0 to Array.length h - 2 do
          if h.(i + 1) > h.(i) +. 1e-9 then ok := false
        done;
        Alcotest.(check bool) "monotone" true !ok);
    test "vias go where the heat is" (fun () ->
        let chip, power = alloc_fixture () in
        let bare = Chip_model.solve chip (Chip_model.uniform_density chip 0.) power in
        let o = Allocation.default_options ~budget:(bare.Chip_model.max_rise *. 0.85) in
        let out = Allocation.allocate chip power { o with step = 0.01 } in
        let ds = out.Allocation.densities in
        let inside = ds.((1 * 4) + 1) +. ds.((1 * 4) + 2) +. ds.((2 * 4) + 1) +. ds.((2 * 4) + 2) in
        let corners = ds.(0) +. ds.(3) +. ds.((3 * 4) + 0) +. ds.((3 * 4) + 3) in
        Alcotest.(check bool) "hotspot gets the metal" true (inside > corners));
    test "unreachable budget reported infeasible" (fun () ->
        let chip, power = alloc_fixture () in
        let o = Allocation.default_options ~budget:1e-6 in
        let out = Allocation.allocate chip power { o with step = 0.05; max_iterations = 50 } in
        Alcotest.(check bool) "infeasible" true (not out.Allocation.feasible));
    test "options validation" (fun () ->
        let chip, power = alloc_fixture () in
        let o = Allocation.default_options ~budget:10. in
        check_raises_invalid "step" (fun () ->
            ignore (Allocation.allocate chip power { o with step = 0. }));
        check_raises_invalid "cap" (fun () ->
            ignore (Allocation.allocate chip power { o with max_density = 1.5 }));
        check_raises_invalid "budget" (fun () ->
            ignore (Allocation.default_options ~budget:0.)));
  ]

let property_tests =
  [
    qtest ~count:10 "uniform chip is symmetric under 90-degree rotation"
      (QCheck2.Gen.float_range 0.001 0.02)
      (fun d ->
        let chip =
          Chip_model.make ~width:(Units.mm 1.) ~height:(Units.mm 1.) ~nx:3 ~ny:3
            ~planes:(block_planes ()) ~tsv:(block_tsv ()) ()
        in
        let power = List.init 3 (fun _ -> Power_map.uniform ~nx:3 ~ny:3 ~total:0.3) in
        let r = Chip_model.solve chip (Chip_model.uniform_density chip d) power in
        let t x y = Chip_model.rise_at r ~plane:2 ~x ~y in
        Float.abs (t 0 0 -. t 2 2) < 1e-9 && Float.abs (t 0 2 -. t 2 0) < 1e-9
        && Float.abs (t 1 0 -. t 0 1) < 1e-9);
    qtest ~count:10 "more uniform via density is never hotter"
      (QCheck2.Gen.float_range 0.001 0.01)
      (fun d ->
        let chip, power = alloc_fixture () in
        let lo = Chip_model.solve chip (Chip_model.uniform_density chip d) power in
        let hi = Chip_model.solve chip (Chip_model.uniform_density chip (2. *. d)) power in
        hi.Chip_model.max_rise <= lo.Chip_model.max_rise +. 1e-9);
  ]

let suite = ("chip", power_map_tests @ chip_tests @ allocation_tests @ property_tests)
