(* Tests for the transient RC extension. *)

module Params = Ttsv_core.Params
module Model_a = Ttsv_core.Model_a
module Transient = Ttsv_core.Transient
open Helpers

(* the block's thermal time constant is dominated by the thick first
   substrate: R ~ 400 K/W, C ~ 8e-6 J/K, tau ~ 3 ms *)
let dt = 2e-4
let duration = 0.2

let run = lazy (Transient.solve (Params.block ()) ~dt ~duration)

let unit_tests =
  [
    test "starts cold" (fun () ->
        let r = Lazy.force run in
        close "t=0" 0. r.Transient.max_rise.(0));
    test "monotone heating under a power step" (fun () ->
        let r = Lazy.force run in
        let ok = ref true in
        for i = 0 to Array.length r.Transient.max_rise - 2 do
          if r.Transient.max_rise.(i + 1) < r.Transient.max_rise.(i) -. 1e-12 then ok := false
        done;
        Alcotest.(check bool) "monotone" true !ok);
    test "settles to the steady Model A solution" (fun () ->
        let r = Lazy.force run in
        Alcotest.(check bool) "settled" true (Transient.settled ~tol:0.01 r);
        let final = r.Transient.max_rise.(Array.length r.Transient.max_rise - 1) in
        close_rel ~tol:0.01 "steady limit" (Model_a.max_rise r.Transient.steady) final);
    test "never overshoots steady state" (fun () ->
        let r = Lazy.force run in
        let steady = Model_a.max_rise r.Transient.steady in
        Array.iter
          (fun x -> Alcotest.(check bool) "below steady" true (x <= steady *. (1. +. 1e-9)))
          r.Transient.max_rise);
    test "time constant is positive and less than the settle time" (fun () ->
        let r = Lazy.force run in
        let tau = Transient.time_constant r in
        Alcotest.(check bool) "positive" true (tau > 0.);
        Alcotest.(check bool) "well within duration" true (tau < duration /. 2.));
    test "zero power function keeps the stack cold" (fun () ->
        let r =
          Transient.solve ~power:(fun _ -> 0.) (Params.block ()) ~dt:1e-3 ~duration:1e-2
        in
        Array.iter (fun x -> close "cold" 0. x) r.Transient.max_rise);
    test "bulk trace dimensions" (fun () ->
        let r = Lazy.force run in
        Alcotest.(check int) "planes" 3 (Array.length r.Transient.bulk.(0));
        Alcotest.(check int) "samples" (Array.length r.Transient.times)
          (Array.length r.Transient.max_rise));
    test "validation" (fun () ->
        check_raises_invalid "dt" (fun () ->
            ignore (Transient.solve (Params.block ()) ~dt:0. ~duration:1.));
        check_raises_invalid "duration" (fun () ->
            ignore (Transient.solve (Params.block ()) ~dt:1e-3 ~duration:0.)));
    test "duty-cycled power stays below the constant-power response" (fun () ->
        let stack = Params.block () in
        let steady = Transient.solve stack ~dt ~duration in
        let pulsed =
          Transient.solve
            ~power:(fun t -> if Float.rem t 2e-2 < 1e-2 then 1. else 0.2)
            stack ~dt ~duration
        in
        let last a = a.(Array.length a - 1) in
        Alcotest.(check bool) "pulsed cooler" true
          (last pulsed.Transient.max_rise < last steady.Transient.max_rise));
  ]

let property_tests =
  [
    qtest ~count:10 "transient limit equals steady state on random blocks" gen_stack3 (fun s ->
        let r = Transient.solve s ~dt:2e-4 ~duration:0.3 in
        let final = r.Transient.max_rise.(Array.length r.Transient.max_rise - 1) in
        Float.abs (final -. Model_a.max_rise r.Transient.steady)
        /. Model_a.max_rise r.Transient.steady
        < 0.02);
  ]

let suite = ("transient", unit_tests @ property_tests)
