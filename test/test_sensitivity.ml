(* Tests for the sensitivity experiment: signs and model/FV agreement. *)

module Sensitivity = Ttsv_experiments.Sensitivity
open Helpers

let rows = lazy (Sensitivity.sensitivities ~resolution:1 ())

let find p =
  let _, a, b, fv = List.find (fun (q, _, _, _) -> q = p) (Lazy.force rows) in
  (a, b, fv)

let sign_tests =
  [
    test "radius cools (negative S) in every solver" (fun () ->
        let a, b, fv = find Sensitivity.Radius in
        Alcotest.(check bool) "all negative" true (a < 0. && b < 0. && fv < 0.));
    test "liner thickness heats (positive S)" (fun () ->
        let a, b, fv = find Sensitivity.Liner in
        Alcotest.(check bool) "all positive" true (a > 0. && b > 0. && fv > 0.));
    test "ILD thickness heats and dominates the liner" (fun () ->
        let a, _, fv = find Sensitivity.Ild in
        let a_liner, _, fv_liner = find Sensitivity.Liner in
        Alcotest.(check bool) "positive" true (a > 0. && fv > 0.);
        Alcotest.(check bool) "dominant" true (a > a_liner && fv > fv_liner));
    test "filler conductivity cools" (fun () ->
        let a, b, fv = find Sensitivity.Filler_k in
        Alcotest.(check bool) "all negative" true (a < 0. && b < 0. && fv < 0.));
    test "liner conductivity cools" (fun () ->
        let a, _, fv = find Sensitivity.Liner_k in
        Alcotest.(check bool) "negative" true (a < 0. && fv < 0.));
    test "models track the FV derivative within 0.15 absolute" (fun () ->
        List.iter
          (fun (p, a, b, fv) ->
            Alcotest.(check bool)
              (Printf.sprintf "%s: A=%+.3f B=%+.3f FV=%+.3f" (Sensitivity.name p) a b fv)
              true
              (Float.abs (a -. fv) < 0.15 && Float.abs (b -. fv) < 0.15))
          (Lazy.force rows));
    test "every parameter has a distinct name" (fun () ->
        let names = List.map Sensitivity.name Sensitivity.all_parameters in
        Alcotest.(check int) "unique" (List.length names)
          (List.length (List.sort_uniq compare names)));
  ]

let suite = ("sensitivity", sign_tests)
