(* obs_report — render a human profile from a ttsv JSONL trace.

   Default output: top-N spans by self time, the critical path, and the
   convergence curves recorded by the solvers.  With --flame, emit only
   flamegraph.pl collapsed stacks ("a;b;c <count>", counts in
   microseconds of self time) so the output pipes straight into
   flamegraph.pl.

   All analysis lives in Ttsv_obs.Profile; this file is rendering. *)

module Profile = Ttsv_obs.Profile

let usage () =
  prerr_endline "usage: obs_report [--top N] [--flame] TRACE.jsonl";
  prerr_endline "  --top N   rows in the self-time table (default 15)";
  prerr_endline "  --flame   emit collapsed stacks for flamegraph.pl instead of the report";
  exit 2

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("obs_report: " ^ m); exit 1) fmt

(* ---------------------------------------------------------------- flame *)

let print_flame t =
  List.iter
    (fun (path, self) ->
      (* flamegraph.pl wants integer counts; microseconds keep three
         decades of resolution below the millisecond spans we care about *)
      let us = int_of_float (Float.round (self *. 1e6)) in
      if us > 0 then Printf.printf "%s %d\n" path us)
    (Profile.collapsed t)

(* --------------------------------------------------------------- report *)

let duration s = if s >= 1. then Printf.sprintf "%.2fs" s else Printf.sprintf "%.2fms" (1e3 *. s)

let print_top t n =
  let rows = Profile.totals t in
  let shown = List.filteri (fun i _ -> i < n) rows in
  let total_self = List.fold_left (fun acc r -> acc +. r.Profile.agg_self) 0. rows in
  Printf.printf "top %d spans by self time (of %d named):\n" (List.length shown)
    (List.length rows);
  Printf.printf "  %-28s %8s %12s %12s %7s\n" "name" "count" "total" "self" "self%";
  List.iter
    (fun r ->
      Printf.printf "  %-28s %8d %12s %12s %6.1f%%\n" r.Profile.agg_name r.Profile.agg_count
        (duration r.Profile.agg_total) (duration r.Profile.agg_self)
        (if total_self > 0. then 100. *. r.Profile.agg_self /. total_self else 0.))
    shown;
  print_newline ()

let print_critical_path t =
  match Profile.critical_path t with
  | [] -> ()
  | path ->
    Printf.printf "critical path (longest child at every level):\n  ";
    List.iteri
      (fun i (s, _) ->
        if i > 0 then print_string " > ";
        Printf.printf "%s (%s)" s.Profile.name (duration s.Profile.dur))
      path;
    print_newline ();
    print_newline ()

(* log-scale sparkline over the residual curve: eight shade levels from
   the largest to the smallest residual seen *)
let sparkline residuals =
  let shades = [| " "; "."; ":"; "-"; "="; "+"; "*"; "#" |] in
  let logs =
    Array.to_list residuals
    |> List.filter_map (fun r -> if r > 0. && Float.is_finite r then Some (Float.log10 r) else None)
  in
  match logs with
  | [] -> ""
  | l0 :: rest ->
    let lmin = List.fold_left Float.min l0 rest and lmax = List.fold_left Float.max l0 rest in
    let range = Float.max (lmax -. lmin) 1e-9 in
    String.concat ""
      (List.map
         (fun l ->
           let i = int_of_float (7. *. ((l -. lmin) /. range)) in
           shades.(max 0 (min 7 i)))
         logs)

let print_convs t =
  match t.Profile.convs with
  | [] -> ()
  | convs ->
    Printf.printf "convergence curves (%d):\n" (List.length convs);
    List.iter
      (fun (c : Profile.conv) ->
        let label =
          match Option.bind c.span (Profile.span_label t) with
          | Some path -> path
          | None -> "(no span)"
        in
        let n = Array.length c.residuals in
        let first = if n > 0 then c.residuals.(0) else Float.nan in
        let last = if n > 0 then c.residuals.(n - 1) else Float.nan in
        Printf.printf "  %-10s %4d recs  %9.3g -> %9.3g  |%s|\n" c.meth c.total first last
          (sparkline c.residuals);
        Printf.printf "             in %s\n" label)
      convs;
    print_newline ()

let print_report path t top =
  Printf.printf "%s: schema %s, %d spans, %d roots, %d convergence curves\n" path t.Profile.schema
    (List.length t.Profile.spans)
    (List.length (Profile.roots t))
    (List.length t.Profile.convs);
  let traced =
    List.fold_left (fun acc (s : Profile.span) -> acc +. s.dur) 0. (Profile.roots t)
  in
  Printf.printf "total traced time (root spans): %s\n\n" (duration traced);
  print_top t top;
  print_critical_path t;
  print_convs t

(* ----------------------------------------------------------------- main *)

let () =
  let args = Array.to_list Sys.argv in
  let rec parse top flame path = function
    | [] -> (top, flame, path)
    | "--top" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n > 0 -> parse n flame path rest
      | _ -> usage ())
    | "--flame" :: rest -> parse top true path rest
    | ("--help" | "-h") :: _ -> usage ()
    | p :: rest when path = None -> parse top flame (Some p) rest
    | _ -> usage ()
  in
  let top, flame, path = parse 15 false None (List.tl args) in
  let path = match path with Some p -> p | None -> usage () in
  match Profile.load path with
  | Error e -> fail "%s: %s" path e
  | Ok t -> if flame then print_flame t else print_report path t top
