(* ttsv — command-line front end for the TTSV thermal-model library.

   Subcommands:
     solve       analyze one unit cell with a chosen model
     sweep       sweep one geometric parameter and print the curve
     figures     regenerate the paper's figures/tables (same as bench)
     calibrate   fit Model A's k1/k2 against the finite-volume reference
     case-study  run the section IV-E DRAM-uP analysis
     transient   step response and thermal time constant (extension)
     chip        full-chip compact model with a hotspot (extension)
     serve       batch request/response engine over stdin/stdout (JSONL)
     export      write the figures/tables as CSV files
     materials   list the material library *)

module Units = Ttsv_physics.Units
module Materials = Ttsv_physics.Materials
module Material = Ttsv_physics.Material
module Stack = Ttsv_geometry.Stack
module Params = Ttsv_core.Params
module Coefficients = Ttsv_core.Coefficients
module Model_a = Ttsv_core.Model_a
module Model_b = Ttsv_core.Model_b
module Model_1d = Ttsv_core.Model_1d
module Transient = Ttsv_core.Transient
module Calibrate = Ttsv_core.Calibrate
module Problem = Ttsv_fem.Problem
module Solver = Ttsv_fem.Solver
module Validate = Ttsv_robust.Validate
module Diagnostics = Ttsv_robust.Diagnostics
module Robust = Ttsv_robust.Robust
module Budget = Ttsv_parallel.Budget
module Json = Ttsv_obs.Json
module E = Ttsv_experiments
open Cmdliner

(* ---------------------------------------------------------------- geometry *)

let um_arg ~doc ~default name =
  Arg.(value & opt float default & info [ name ] ~docv:"UM" ~doc:(doc ^ " [µm]"))

let radius_t = um_arg ~doc:"TTSV radius" ~default:5. "radius"
let liner_t = um_arg ~doc:"liner thickness" ~default:1. "liner"
let ild_t = um_arg ~doc:"ILD/BEOL thickness" ~default:4. "ild"
let bond_t = um_arg ~doc:"bonding layer thickness" ~default:1. "bond"
let tsi_t = um_arg ~doc:"substrate thickness of the upper planes" ~default:45. "tsi"
let tsi1_t = um_arg ~doc:"substrate thickness of the first plane" ~default:500. "tsi1"
let lext_t = um_arg ~doc:"TSV extension into the first substrate" ~default:1. "lext"

(* every geometry flag is untrusted input: run it through the accumulating
   validator so the user sees ALL the problems at once, not just the first *)
let stack_t =
  let build r t_liner t_ild t_bond t_si t_si1 l_ext =
    Params.block_checked ~r:(Units.um r) ~t_liner:(Units.um t_liner)
      ~t_ild:(Units.um t_ild) ~t_bond:(Units.um t_bond) ~t_si23:(Units.um t_si)
      ~t_si1:(Units.um t_si1) ~l_ext:(Units.um l_ext) ()
    |> Result.map_error (fun violations -> `Msg (Validate.to_string violations))
  in
  Term.term_result
    Term.(const build $ radius_t $ liner_t $ ild_t $ bond_t $ tsi_t $ tsi1_t $ lext_t)

let k1_t = Arg.(value & opt float 1.3 & info [ "k1" ] ~doc:"Model A vertical fitting coefficient")
let k2_t = Arg.(value & opt float 0.55 & info [ "k2" ] ~doc:"Model A lateral fitting coefficient")

let coeffs_t =
  let build k1 k2 = Coefficients.make ~k1 ~k2 in
  Term.(const build $ k1_t $ k2_t)

let segments_t =
  Arg.(value & opt int 100 & info [ "segments"; "n" ] ~doc:"Model B segments per upper plane")

let resolution_t =
  Arg.(value & opt int 2 & info [ "resolution" ] ~doc:"finite-volume mesh resolution factor")

module Pool = Ttsv_parallel.Pool

let domains_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "worker domains for pooled execution. Defaults to the TTSV_DOMAINS environment \
           variable when set, otherwise to the recommended domain count capped at 8; 1 \
           disables parallelism.")

(* every pooled command funnels through here so the pool is always shut
   down, whatever the command does *)
let with_pool domains f = Pool.with_pool ?domains f

let deadline_t =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:
          "wall-clock budget for the FV reference solve; on expiry the solve stops \
           cooperatively and reports a typed deadline-exceeded diagnostic carrying the best \
           iterate reached, instead of running to convergence")

(* the deadline is anchored the moment the budget is built, so build it
   as late as possible — right before the solve *)
let budget_of_deadline = Option.map (fun d -> Budget.make ~deadline_s:d ())

let checkpoint_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "record every completed sweep point to $(docv) (JSONL, flushed per point) so an \
           interrupted run can be restarted with $(b,--resume)")

let resume_t =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "load the points already recorded in $(b,--checkpoint) and recompute only the \
           missing ones; the resumed output is byte-identical to an uninterrupted run")

(* [--checkpoint]/[--resume] plumbing shared by sweep and figures: no
   file means no checkpointing, [--resume] without a file is almost
   certainly a mistake, so say so *)
let with_checkpoint checkpoint resume f =
  match checkpoint with
  | None ->
    if resume then Format.eprintf "warning: --resume has no effect without --checkpoint@.";
    f None
  | Some path -> E.Checkpoint.with_file ~resume path (fun cp -> f (Some cp))

let model_t =
  let models = [ ("a", `A); ("b", `B); ("1d", `One_d); ("fv", `Fv); ("all", `All) ] in
  Arg.(value & opt (enum models) `All & info [ "model" ] ~doc:"model to run: a, b, 1d, fv or all")

(* ------------------------------------------------------------ observability *)

let obs_trace_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "write a ttsv.trace.v2 JSONL trace of spans, metric, and solver convergence \
           (conv) events to $(docv) (equivalent to setting TTSV_TRACE=$(docv)); the \
           summary snapshot is appended when the trace closes, and the file feeds \
           obs_check validate and obs_report")

let obs_metrics_t =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "collect runtime metrics and print the summary table on stderr at exit (equivalent \
           to TTSV_METRICS=1)")

(* evaluated before the command body runs, so every span of the run is
   captured; the Config at_exit hook closes the trace and prints the
   summary on the way out *)
let obs_t =
  let setup trace metrics =
    (match trace with None -> () | Some path -> Ttsv_obs.Config.enable_trace path);
    if metrics then Ttsv_obs.Config.enable_metrics ()
  in
  Term.(const setup $ obs_trace_t $ obs_metrics_t)

(* ------------------------------------------------------------------- solve *)

let print_rise label dt = Format.printf "%-14s max dT = %6.3f K@." label dt

let run_model ~solver_report ~pool ~rungs ~deadline stack coeffs segments resolution = function
  | `A -> print_rise "Model A" (Model_a.max_rise (Model_a.solve ~coeffs stack))
  | `B ->
    print_rise
      (Printf.sprintf "Model B(%d)" segments)
      (Model_b.max_rise (Model_b.solve_n stack segments))
  | `One_d -> print_rise "Model 1D" (Model_1d.max_rise (Model_1d.solve stack))
  | `Fv -> (
    let budget = budget_of_deadline deadline in
    match Solver.try_solve ~pool ?rungs ?budget (Problem.of_stack ~resolution stack) with
    | Ok res ->
      print_rise "FV reference" (Solver.max_rise res);
      if solver_report then
        Format.printf "@[<v 2>solver report:@,%a@]@." Diagnostics.pp res.Solver.diagnostics
    | Error failure ->
      Format.printf "@[<v 2>FV reference: no converged solution@,%a@]@." Robust.pp_failure
        failure)

(* pin the FV solve to one preconditioner (the direct fallback stays as
   the backstop so a pinned run still terminates); "auto" keeps the full
   escalation ladder *)
let precond_t =
  let kinds =
    [
      ("auto", None);
      ("mg", Some [ Diagnostics.Cg_mg; Diagnostics.Direct ]);
      ("ic0", Some [ Diagnostics.Cg_ic0; Diagnostics.Direct ]);
      ("ssor", Some [ Diagnostics.Cg_ssor; Diagnostics.Direct ]);
      ("jacobi", Some [ Diagnostics.Cg; Diagnostics.Bicgstab; Diagnostics.Direct ]);
    ]
  in
  Arg.(
    value
    & opt (enum kinds) None
    & info [ "precond" ] ~docv:"KIND"
        ~doc:
          "preconditioner for the FV reference solve: $(b,auto) (the full multigrid -> IC(0) \
           -> SSOR -> Jacobi escalation ladder, the default), or pin $(b,mg), $(b,ic0), \
           $(b,ssor) or $(b,jacobi); combine with $(b,--solver-report) to see the iteration \
           counts")

let solver_report_t =
  Arg.(
    value & flag
    & info [ "solver-report" ]
        ~doc:
          "print the linear-solver diagnostics of the FV reference: which escalation rungs \
           ran, iteration counts, residuals and wall time")

let ambient_t =
  Arg.(value & opt float 25. & info [ "ambient" ] ~doc:"ambient temperature [°C]")

let r_package_t =
  Arg.(
    value
    & opt (some float) None
    & info [ "r-package" ] ~doc:"sink-to-ambient package resistance [K/W]")

let solve_cmd =
  let run stack coeffs segments resolution model ambient r_package solver_report rungs
      deadline domains () =
    with_pool domains @@ fun pool ->
    let qs = Stack.heat_inputs stack in
    Format.printf "unit cell: %a@." Stack.pp stack;
    Array.iteri (fun i q -> Format.printf "q%d = %.4g W@." (i + 1) q) qs;
    (match model with
    | `All ->
      List.iter
        (run_model ~solver_report ~pool ~rungs ~deadline stack coeffs segments resolution)
        [ `A; `B; `One_d; `Fv ]
    | (`A | `B | `One_d | `Fv) as m ->
      run_model ~solver_report ~pool ~rungs ~deadline stack coeffs segments resolution m);
    let detail = Model_a.solve ~coeffs stack in
    Format.printf "@.Model A nodal rises:@.";
    Format.printf "  T0 (TSV foot) = %6.3f K@." detail.Model_a.t0;
    Array.iteri
      (fun i t -> Format.printf "  plane %d bulk  = %6.3f K@." (i + 1) t)
      detail.Model_a.bulk;
    Array.iteri
      (fun i t -> Format.printf "  plane %d TTSV  = %6.3f K@." (i + 1) t)
      detail.Model_a.tsv;
    Format.printf "  heat down the TTSV at its foot = %.4g W (%.1f%% of total)@."
      detail.Model_a.tsv_heat
      (100. *. detail.Model_a.tsv_heat /. Stack.total_heat stack);
    match r_package with
    | None -> ()
    | Some resistance ->
      let pkg = Ttsv_core.Package.make ~ambient ~resistance () in
      let total_power = Stack.total_heat stack in
      Format.printf "@.with the package (R=%.3g K/W, ambient %.1f C):@." resistance ambient;
      Format.printf "  sink surface   = %.2f C@."
        (Ttsv_core.Package.sink_temperature pkg ~total_power);
      Format.printf "  junction (max) = %.2f C@."
        (Ttsv_core.Package.junction_temperature pkg ~total_power
           ~model_rise:(Model_a.max_rise detail))
  in
  let info = Cmd.info "solve" ~doc:"analyze one unit cell with the chosen model(s)" in
  Cmd.v info
    Term.(
      const run $ stack_t $ coeffs_t $ segments_t $ resolution_t $ model_t $ ambient_t
      $ r_package_t $ solver_report_t $ precond_t $ deadline_t $ domains_t $ obs_t)

(* ------------------------------------------------------------------- sweep *)

let sweep_cmd =
  let param_t =
    let params = [ ("radius", `Radius); ("liner", `Liner); ("tsi", `Tsi) ] in
    Arg.(
      value
      & opt (enum params) `Radius
      & info [ "param" ] ~doc:"swept parameter: radius, liner or tsi")
  in
  let from_t = Arg.(value & opt float 1. & info [ "from" ] ~doc:"sweep start [µm]") in
  let to_t = Arg.(value & opt float 20. & info [ "to" ] ~doc:"sweep end [µm]") in
  let points_t = Arg.(value & opt int 10 & info [ "points" ] ~doc:"number of sweep points") in
  let with_fv_t = Arg.(value & flag & info [ "with-fv" ] ~doc:"include the FV reference") in
  (* one sweep row, checkpoint-encoded: [x; a; b; d] plus the FV value
     when --with-fv is on (arity distinguishes the two shapes) *)
  let encode_row (x, a, b, d, fv) =
    Json.List
      (Json.Float x :: Json.Float a :: Json.Float b :: Json.Float d
      :: (match fv with None -> [] | Some v -> [ Json.Float v ]))
  in
  let decode_row = function
    | Json.List (jx :: ja :: jb :: jd :: rest) -> (
      let f = Json.to_float_opt in
      match (f jx, f ja, f jb, f jd, rest) with
      | Some x, Some a, Some b, Some d, [] -> Some (x, a, b, d, None)
      | Some x, Some a, Some b, Some d, [ jfv ] ->
        Option.map (fun fv -> (x, a, b, d, Some fv)) (f jfv)
      | _ -> None)
    | _ -> None
  in
  let run stack coeffs segments resolution param from_ to_ points with_fv checkpoint resume
      domains () =
    if points < 2 then invalid_arg "sweep: need at least two points";
    with_pool domains @@ fun pool ->
    with_checkpoint checkpoint resume @@ fun checkpoint ->
    let checkpoint =
      Option.map
        (fun cp -> E.Sweep.stage cp ~name:"cli.sweep" ~encode:encode_row ~decode:decode_row)
        checkpoint
    in
    let xs = Ttsv_numerics.Vec.linspace from_ to_ points in
    let rebuild x =
      let v = Units.um x in
      match param with
      | `Radius -> Stack.with_tsv stack (Ttsv_geometry.Tsv.with_radius stack.Stack.tsv v)
      | `Liner -> Stack.with_tsv stack (Ttsv_geometry.Tsv.with_liner_thickness stack.Stack.tsv v)
      | `Tsi ->
        Stack.map_planes stack (fun i p ->
            if i = 0 then p else Ttsv_geometry.Plane.with_t_substrate p v)
    in
    Format.printf "%12s %12s %12s %12s%s@." "x [um]" "Model A" "Model B" "Model 1D"
      (if with_fv then "          FV" else "");
    (* evaluate the (independent) sweep points over the pool; the rows
       come back in sweep order, so the printout is unchanged *)
    let rows =
      E.Sweep.map_array ~pool ?checkpoint
        (fun x ->
          let s = rebuild x in
          let a = Model_a.max_rise (Model_a.solve ~coeffs s) in
          let b = Model_b.max_rise (Model_b.solve_n s segments) in
          let d = Model_1d.max_rise (Model_1d.solve s) in
          let fv =
            if with_fv then
              Some (Solver.max_rise (Solver.solve (Problem.of_stack ~resolution s)))
            else None
          in
          (x, a, b, d, fv))
        xs
    in
    Array.iter
      (fun (x, a, b, d, fv) ->
        match fv with
        | Some fv -> Format.printf "%12.3f %12.3f %12.3f %12.3f %12.3f@." x a b d fv
        | None -> Format.printf "%12.3f %12.3f %12.3f %12.3f@." x a b d)
      rows
  in
  let info = Cmd.info "sweep" ~doc:"sweep a geometric parameter and print the dT curve" in
  Cmd.v info
    Term.(
      const run $ stack_t $ coeffs_t $ segments_t $ resolution_t $ param_t $ from_t $ to_t
      $ points_t $ with_fv_t $ checkpoint_t $ resume_t $ domains_t $ obs_t)

(* ----------------------------------------------------------------- figures *)

let figures_cmd =
  let which_t =
    Arg.(
      value
      & pos_all string [ "fig4"; "fig5"; "fig6"; "fig7"; "table1"; "case" ]
      & info [] ~docv:"ARTEFACT"
          ~doc:
            "artefacts to run: fig4 fig5 fig6 fig7 table1 case ablation convergence shape \
             sensitivity nplanes variation nonlinear fillers")
  in
  let run which checkpoint resume domains () =
    with_pool domains @@ fun pool ->
    with_checkpoint checkpoint resume @@ fun checkpoint ->
    let ppf = Format.std_formatter in
    List.iter
      (fun name ->
        match name with
        | "fig4" -> E.Fig4.print ~pool ppf ()
        | "fig5" -> E.Fig5.print ~pool ?checkpoint ppf ()
        | "fig6" -> E.Fig6.print ppf ()
        | "fig7" -> E.Fig7.print ~pool ppf ()
        | "table1" -> E.Table1.print ppf ()
        | "case" -> E.Case_study.print ppf ()
        | "ablation" -> E.Ablation.print ppf ()
        | "convergence" -> E.Convergence.print ppf ()
        | "shape" -> E.Shape.print ppf ()
        | "sensitivity" -> E.Sensitivity.print ~pool ?checkpoint ppf ()
        | "nplanes" -> E.Nplanes.print ~pool ppf ()
        | "variation" -> E.Variation.print ~pool ppf ()
        | "nonlinear" -> E.Nonlinear_study.print ppf ()
        | "fillers" -> E.Fillers.print ppf ()
        | other -> Format.eprintf "unknown artefact %S (skipped)@." other)
      which
  in
  let info = Cmd.info "figures" ~doc:"regenerate the paper's figures and tables" in
  Cmd.v info Term.(const run $ which_t $ checkpoint_t $ resume_t $ domains_t $ obs_t)

(* --------------------------------------------------------------- calibrate *)

let calibrate_cmd =
  let run stack resolution =
    let reference = Solver.max_rise (Solver.solve (Problem.of_stack ~resolution stack)) in
    let fit = Calibrate.fit [ { Calibrate.stack; reference } ] in
    Format.printf "FV reference max dT = %.3f K@." reference;
    Format.printf "fitted coefficients: %a (rms rel err %.2e, %d simplex steps)@."
      Coefficients.pp fit.Calibrate.coefficients fit.Calibrate.rms_rel_error
      fit.Calibrate.iterations
  in
  let info =
    Cmd.info "calibrate"
      ~doc:"fit Model A's k1/k2 on the given geometry against the FV reference"
  in
  Cmd.v info Term.(const run $ stack_t $ resolution_t)

(* -------------------------------------------------------------- case study *)

let case_cmd =
  let segments_t =
    Arg.(value & opt int 1000 & info [ "segments" ] ~doc:"Model B segments per upper plane")
  in
  let run resolution segments =
    E.Case_study.print ~resolution ~segments Format.std_formatter ()
  in
  let info = Cmd.info "case-study" ~doc:"run the section IV-E 3-D DRAM-uP analysis" in
  Cmd.v info Term.(const run $ resolution_t $ segments_t)

(* --------------------------------------------------------------- transient *)

let transient_cmd =
  let dt_t = Arg.(value & opt float 0.2 & info [ "dt" ] ~doc:"time step [ms]") in
  let duration_t = Arg.(value & opt float 200. & info [ "duration" ] ~doc:"duration [ms]") in
  let trace_t =
    Arg.(
      value
      & opt (some file) None
      & info [ "trace" ] ~doc:"CSV power trace (time_s,scale) scaling the heat over time")
  in
  let run stack coeffs dt duration trace =
    let power =
      match trace with
      | None -> fun _ -> 1.
      | Some path ->
        let t = E.Trace.load path in
        Format.printf "trace: %s (peak %.2fx, average %.2fx over %.3f s)@." path (E.Trace.peak t)
          (E.Trace.average t) (E.Trace.duration t);
        E.Trace.scale t
    in
    let r =
      Transient.solve ~coeffs ~power stack ~dt:(dt /. 1000.) ~duration:(duration /. 1000.)
    in
    let n = Array.length r.Transient.times in
    let stride = Stdlib.max 1 (n / 20) in
    Format.printf "%12s %12s@." "t [ms]" "max dT [K]";
    let i = ref 0 in
    while !i < n do
      Format.printf "%12.3f %12.4f@." (r.Transient.times.(!i) *. 1000.) r.Transient.max_rise.(!i);
      i := !i + stride
    done;
    Format.printf "@.steady max dT   = %.4f K@." (Model_a.max_rise r.Transient.steady);
    Format.printf "thermal time constant = %.4f ms@." (Transient.time_constant r *. 1000.);
    Format.printf "settled within 1%%: %b@." (Transient.settled r)
  in
  let info = Cmd.info "transient" ~doc:"step response of the unit cell (RC extension)" in
  Cmd.v info Term.(const run $ stack_t $ coeffs_t $ dt_t $ duration_t $ trace_t)

(* -------------------------------------------------------------------- chip *)

let chip_cmd =
  let grid_t = Arg.(value & opt int 10 & info [ "grid" ] ~doc:"tiles per side") in
  let size_t = Arg.(value & opt float 4. & info [ "size" ] ~doc:"chip edge [mm]") in
  let power_t = Arg.(value & opt float 10. & info [ "power" ] ~doc:"total power per plane [W]") in
  let hotspot_t =
    Arg.(value & opt float 5. & info [ "hotspot" ] ~doc:"extra watts on the hottest tile block")
  in
  let budget_t =
    Arg.(value & opt (some float) None & info [ "budget" ] ~doc:"allocate TTSVs for this max dT [K]")
  in
  let candidates_t =
    Arg.(
      value & opt int 1
      & info [ "candidates" ]
          ~doc:"tiles trial-solved per allocation step (1 = classic greedy)")
  in
  let run stack grid size power hotspot budget candidates domains =
    with_pool domains @@ fun pool ->
    let module Chip = Ttsv_chip.Chip_model in
    let module Pm = Ttsv_chip.Power_map in
    let module Alloc = Ttsv_chip.Allocation in
    let planes = Array.to_list stack.Stack.planes in
    let chip =
      Chip.make ~width:(Units.mm size) ~height:(Units.mm size) ~nx:grid ~ny:grid ~planes
        ~tsv:stack.Stack.tsv ()
    in
    let base = Pm.uniform ~nx:grid ~ny:grid ~total:power in
    let c = (2 * grid) / 3 in
    let top = Pm.add_hotspot base ~x0:c ~y0:c ~x1:(c + 1) ~y1:(c + 1) ~watts:hotspot in
    let maps = List.mapi (fun i _ -> if i = List.length planes - 1 then top else base) planes in
    let bare = Chip.solve chip (Chip.uniform_density chip 0.) maps in
    Format.printf "no TTSVs: max dT = %.2f K at plane %d tile (%d,%d)@."
      bare.Chip.max_rise
      ((fun (p, _, _) -> p + 1) bare.Chip.hottest)
      ((fun (_, x, _) -> x) bare.Chip.hottest)
      ((fun (_, _, y) -> y) bare.Chip.hottest);
    Format.printf "top plane field:@.%t@." (Chip.pp_plane bare ~plane:(List.length planes - 1));
    match budget with
    | None -> ()
    | Some budget ->
      let out =
        Alloc.allocate ~pool chip maps
          {
            (Alloc.default_options ~budget) with
            Alloc.step = 0.01;
            max_density = 0.15;
            candidates;
          }
      in
      Format.printf "@.allocation for dT <= %.2f K: feasible=%b after %d iterations@." budget
        out.Alloc.feasible out.Alloc.iterations;
      Format.printf "max dT = %.2f K, via metal %.4f mm^2@."
        out.Alloc.final.Chip.max_rise
        (out.Alloc.metal_area *. 1e6);
      Format.printf "density map:@.%t@." (Alloc.pp_densities chip out.Alloc.densities)
  in
  let info = Cmd.info "chip" ~doc:"full-chip compact model with a hotspot (extension)" in
  Cmd.v info
    Term.(
      const run $ stack_t $ grid_t $ size_t $ power_t $ hotspot_t $ budget_t $ candidates_t
      $ domains_t)

(* ------------------------------------------------------------------- serve *)

let serve_cmd =
  let module Engine = Ttsv_service.Engine in
  let batch_t =
    Arg.(
      value & opt int 64
      & info [ "batch" ] ~docv:"N"
          ~doc:
            "requests read per batch; the batch is sharded across the worker domains and \
             answered in input order before the next one is read")
  in
  let cap name default doc =
    Arg.(value & opt int default & info [ name ] ~docv:"N" ~doc)
  in
  let operators_t = cap "cache-operators" 32 "assembled-operator cache capacity (LRU)" in
  let preconds_t = cap "cache-preconds" 32 "preconditioner-setup cache capacity (LRU)" in
  let solutions_t = cap "cache-solutions" 64 "warm-start solution cache capacity (LRU)" in
  let run batch operators preconds solutions domains () =
    with_pool domains @@ fun pool ->
    let engine = Engine.create ~pool ~operators ~preconds ~solutions () in
    let answered = Engine.serve ~batch engine stdin stdout in
    Format.eprintf "served %d request(s), cache hit rate %.2f@." answered
      (Engine.hit_rate engine)
  in
  let info =
    Cmd.info "serve"
      ~doc:"answer batched solve/sweep/chip-allocation requests over stdin/stdout"
      ~man:
        [
          `S Manpage.s_description;
          `P
            "Reads one ttsv.request.v1 JSON object per line from stdin and writes one \
             ttsv.response.v1 object per line to stdout, in input order.  Repeated or \
             nearby geometries are served from bounded LRU caches (assembled operators, \
             preconditioner setups, warm-start solutions); malformed lines yield typed \
             error responses, never a crash.  Combine with $(b,--trace)/$(b,--metrics) to \
             profile a serving session with obs_report.";
        ]
  in
  Cmd.v info
    Term.(
      const run $ batch_t $ operators_t $ preconds_t $ solutions_t $ domains_t $ obs_t)

(* ------------------------------------------------------------------ export *)

let export_cmd =
  let out_t =
    Arg.(value & opt string "results" & info [ "out" ] ~doc:"output directory for CSV files")
  in
  let run out domains =
    with_pool domains @@ fun pool ->
    if not (Sys.file_exists out) then Sys.mkdir out 0o755;
    let figure name fig =
      let path = Filename.concat out (name ^ ".csv") in
      E.Export.write_figure fig path;
      Format.printf "wrote %s@." path
    in
    figure "fig4" (E.Fig4.run ~pool ());
    figure "fig5" (E.Fig5.run ~pool ());
    figure "fig6" (E.Fig6.run ());
    figure "fig7" (E.Fig7.run ~pool ());
    let table1 = E.Table1.to_table (E.Table1.run ()) in
    let path = Filename.concat out "table1.csv" in
    E.Export.write_table table1 path;
    Format.printf "wrote %s@." path
  in
  let info = Cmd.info "export" ~doc:"write the reproduced figures and tables as CSV" in
  Cmd.v info Term.(const run $ out_t $ domains_t)

(* --------------------------------------------------------------- materials *)

let materials_cmd =
  let run () =
    Format.printf "%-20s %14s %18s@." "name" "k [W/m.K]" "rho*c [J/m^3.K]";
    List.iter
      (fun (m : Material.t) ->
        Format.printf "%-20s %14.3f %18.3g@." m.Material.name m.Material.conductivity
          m.Material.volumetric_heat_capacity)
      Materials.all
  in
  let info = Cmd.info "materials" ~doc:"list the material library" in
  Cmd.v info Term.(const run $ const ())

let main =
  let doc = "analytical heat-transfer models for thermal through-silicon vias (DATE 2011)" in
  let info = Cmd.info "ttsv" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      solve_cmd;
      sweep_cmd;
      figures_cmd;
      calibrate_cmd;
      case_cmd;
      transient_cmd;
      chip_cmd;
      serve_cmd;
      export_cmd;
      materials_cmd;
    ]

let () = exit (Cmd.eval main)
