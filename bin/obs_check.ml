(* obs_check — schema-check a ttsv JSONL trace, or sanity-check the
   phase breakdowns in BENCH_parallel.json against the measured wall
   times.

   Usage:
     obs_check validate TRACE.jsonl [MIN_DEPTH]
     obs_check bench BENCH_parallel.json
     obs_check precond BENCH_precond.json
     obs_check multigrid BENCH_multigrid.json
     obs_check idle TRACE.jsonl MAX_SECONDS
     obs_check regress BASELINE.json CURRENT.json [WALL_TOL]
     obs_check service BENCH_service.json
     obs_check hitrate TRACE.jsonl MIN_RATE

   [validate] exits 1 on the first malformed line — and, when MIN_DEPTH
   is given, when no span nests that deep.  [bench] only prints
   warnings and always exits 0: phase sums are measured under domain
   scheduling noise, so a mismatch is a signal to look at, not a CI
   failure.  [precond] is a CI gate: it exits 1 unless IC(0)-CG needs
   strictly fewer than half the Jacobi-CG iterations on every artefact —
   iteration counts are deterministic, so this check is noise-free.
   [multigrid] is the mesh-independence gate: it exits 1 when the mg-CG
   iteration count at the finest resolution of any sweep exceeds the
   file's growth_limit (default 1.5x) times the coarsest resolution's.
   [idle] is the regression gate on the pool's spin-then-park behaviour:
   it reads the [pool.idle_seconds] gauge out of the trace's summary
   lines and exits 1 when the workers burned more than MAX_SECONDS
   spinning — the failure mode of an idle loop that never parks.
   [regress] is the bench-regression gate: it compares every
   iterations/wall_s metric in CURRENT against BASELINE (exact band on
   iteration counts, WALL_TOL ratio tolerance — default 2.0 — on wall
   clocks), prints the trend table, and exits 1 naming each offending
   metric.  [service] is the serving-throughput gate on
   BENCH_service.json: every batch of >= 100 repeated-geometry requests
   must show a cache hit rate above 0.5 and a throughput at least 3x the
   batch-1 run's — the whole point of the batch engine's caches.
   [hitrate] reads the [service.cache.*] counters out of a serve trace's
   summary lines and exits 1 when the pooled hit rate is below
   MIN_RATE. *)

module Json = Ttsv_obs.Json

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("obs_check: " ^ s);
      exit 1)
    fmt

let warn fmt = Printf.ksprintf (fun s -> prerr_endline ("obs_check: warning: " ^ s)) fmt

let read_lines path =
  In_channel.with_open_bin path @@ fun ic ->
  let rec go acc n =
    match In_channel.input_line ic with
    | Some l when String.trim l = "" -> go acc (n + 1)
    | Some l -> go ((n, l) :: acc) (n + 1)
    | None -> List.rev acc
  in
  go [] 1

let field name j = Json.member name j

let str_field lineno name j =
  match Option.bind (field name j) Json.to_string_opt with
  | Some s -> s
  | None -> fail "line %d: missing string field %S" lineno name

let int_field lineno name j =
  match Option.bind (field name j) Json.to_int_opt with
  | Some i -> i
  | None -> fail "line %d: missing integer field %S" lineno name

let num_field lineno name j =
  match Option.bind (field name j) Json.to_float_opt with
  | Some f -> f
  | None -> fail "line %d: missing numeric field %S" lineno name

(* ---------------------------------------------------------------- validate *)

type stats = {
  mutable spans : int;
  mutable metrics : int;
  mutable summaries : int;
  mutable convs : int;
  mutable max_depth : int;
  mutable names : string list;
}

let check_span lineno j st ids parents =
  let id = int_field lineno "id" j in
  if Hashtbl.mem ids id then fail "line %d: duplicate span id %d" lineno id;
  Hashtbl.add ids id ();
  (match field "parent" j with
  | Some Json.Null | None -> ()
  | Some p -> (
    match Json.to_int_opt p with
    | Some parent -> parents := (lineno, id, parent) :: !parents
    | None -> fail "line %d: span \"parent\" must be an integer or null" lineno));
  ignore (int_field lineno "domain" j);
  let depth = int_field lineno "depth" j in
  if depth < 0 then fail "line %d: negative span depth %d" lineno depth;
  let name = str_field lineno "name" j in
  ignore (num_field lineno "start" j);
  let dur = num_field lineno "dur" j in
  if dur < 0. then fail "line %d: negative span duration %g" lineno dur;
  (match field "attrs" j with
  | None -> ()
  | Some (Json.Obj kvs) ->
    List.iter
      (fun (k, v) ->
        match v with
        | Json.String _ -> ()
        | _ -> fail "line %d: span attr %S must be a string" lineno k)
      kvs
  | Some _ -> fail "line %d: span \"attrs\" must be an object" lineno);
  st.spans <- st.spans + 1;
  st.max_depth <- Stdlib.max st.max_depth depth;
  if not (List.mem name st.names) then st.names <- name :: st.names

let check_metric lineno j st =
  ignore (str_field lineno "name" j);
  let kind = str_field lineno "kind" j in
  if not (List.mem kind [ "counter"; "gauge"; "histogram" ]) then
    fail "line %d: unknown metric kind %S" lineno kind;
  if field "value" j = None then fail "line %d: metric without a \"value\"" lineno;
  ignore (num_field lineno "t" j);
  (match field "span" j with
  | None -> ()
  | Some s ->
    if Json.to_int_opt s = None then fail "line %d: metric \"span\" must be an integer" lineno);
  st.metrics <- st.metrics + 1

let check_summary lineno j st =
  ignore (str_field lineno "name" j);
  if field "data" j = None then fail "line %d: summary without \"data\"" lineno;
  st.summaries <- st.summaries + 1

(* [conv] records are new in v2: a solver's residual history, with the
   retained window in two equal-length arrays *)
let check_conv lineno j st =
  ignore (str_field lineno "method" j);
  let total = int_field lineno "total" j in
  if total < 0 then fail "line %d: negative conv total %d" lineno total;
  let list_len what =
    match field what j with
    | Some (Json.List l) ->
      List.iter
        (fun v -> if Json.to_float_opt v = None then fail "line %d: non-numeric %s entry" lineno what)
        l;
      List.length l
    | _ -> fail "line %d: conv without %S list" lineno what
  in
  let ni = list_len "iterations" and nr = list_len "residuals" in
  if ni <> nr then
    fail "line %d: conv iterations (%d) and residuals (%d) differ in length" lineno ni nr;
  if ni > total then fail "line %d: conv retains %d entries but total is %d" lineno ni total;
  ignore (num_field lineno "t" j);
  (match field "span" j with
  | None -> ()
  | Some s ->
    if Json.to_int_opt s = None then fail "line %d: conv \"span\" must be an integer" lineno);
  st.convs <- st.convs + 1

let validate path min_depth =
  let lines = read_lines path in
  (match lines with
  | [] -> fail "%s: empty trace" path
  | (lineno, first) :: _ -> (
    match Json.parse first with
    | Error e -> fail "line %d: not valid JSON: %s" lineno e
    | Ok j ->
      if str_field lineno "type" j <> "meta" then
        fail "line %d: first line must be the meta record" lineno;
      let schema = str_field lineno "schema" j in
      if schema <> Ttsv_obs.Sink.schema && schema <> Ttsv_obs.Sink.schema_v1 then
        fail "line %d: schema %S, expected %S (or the older %S)" lineno schema
          Ttsv_obs.Sink.schema Ttsv_obs.Sink.schema_v1;
      ignore (str_field lineno "clock_unit" j)));
  let st = { spans = 0; metrics = 0; summaries = 0; convs = 0; max_depth = 0; names = [] } in
  let ids = Hashtbl.create 64 in
  let parents = ref [] in
  List.iteri
    (fun i (lineno, line) ->
      if i > 0 then
        match Json.parse line with
        | Error e -> fail "line %d: not valid JSON: %s" lineno e
        | Ok j -> (
          match str_field lineno "type" j with
          | "span" -> check_span lineno j st ids parents
          | "metric" -> check_metric lineno j st
          | "summary" -> check_summary lineno j st
          | "conv" -> check_conv lineno j st
          | "meta" -> fail "line %d: duplicate meta record" lineno
          | other -> fail "line %d: unknown record type %S" lineno other))
    lines;
  (* spans are written at completion, so a child can precede its parent:
     resolve the references only once the whole file is read *)
  List.iter
    (fun (lineno, id, parent) ->
      if not (Hashtbl.mem ids parent) then
        fail "line %d: span %d references unknown parent %d" lineno id parent)
    !parents;
  (match min_depth with
  | Some d when st.max_depth < d ->
    fail "%s: max span depth %d, expected nesting of at least %d" path st.max_depth d
  | Some _ | None -> ());
  Printf.printf
    "%s: OK — %d spans (%d distinct names, max depth %d), %d metrics, %d convs, %d summaries\n"
    path st.spans (List.length st.names) st.max_depth st.metrics st.convs st.summaries

(* ------------------------------------------------------------------- bench *)

let bench path =
  let text = In_channel.with_open_bin path In_channel.input_all in
  let j = match Json.parse text with Ok j -> j | Error e -> fail "%s: %s" path e in
  let artefacts =
    match field "artefacts" j with
    | Some (Json.List l) -> l
    | _ -> fail "%s: no \"artefacts\" array" path
  in
  let checked = ref 0 in
  List.iter
    (fun art ->
      let name =
        match Option.bind (field "name" art) Json.to_string_opt with
        | Some n -> n
        | None -> fail "%s: artefact without a name" path
      in
      let runs =
        match field "runs" art with Some (Json.List l) -> l | _ -> [] in
      List.iter
        (fun run ->
          let domains = Option.bind (field "domains" run) Json.to_int_opt in
          let wall = Option.bind (field "wall_s" run) Json.to_float_opt in
          match (domains, wall, field "phases" run) with
          | Some domains, Some wall, Some (Json.List phases) ->
            incr checked;
            List.iter
              (fun ph ->
                let pname =
                  Option.value ~default:"?"
                    (Option.bind (field "name" ph) Json.to_string_opt)
                in
                match Option.bind (field "sum_s" ph) Json.to_float_opt with
                | None -> warn "%s domains=%d: phase %s has no sum_s" name domains pname
                | Some sum_s ->
                  (* a phase cannot burn more than the run's total core
                     capacity; 10%% slack absorbs clock skew *)
                  let capacity = wall *. float_of_int domains in
                  if sum_s > capacity *. 1.10 +. 1e-6 then
                    warn
                      "%s domains=%d: phase %s sums to %.3fs, above the %.3fs capacity of \
                       the %.3fs run"
                      name domains pname sum_s capacity wall)
              phases
          | _, _, None ->
            warn "%s: run without a phase breakdown (old BENCH_parallel.json?)" name
          | _ -> warn "%s: malformed run entry" name)
        runs)
    artefacts;
  Printf.printf "%s: checked %d runs (warnings, if any, are non-blocking)\n" path !checked

(* ----------------------------------------------------------------- precond *)

(* CI gate on BENCH_precond.json: IC(0) must earn its place at the top
   of the escalation ladder by needing < 0.5x the Jacobi-CG iterations
   on every artefact.  Iteration counts are chunk-deterministic, so the
   threshold can be hard without flaking. *)
let precond path =
  let text = In_channel.with_open_bin path In_channel.input_all in
  let j = match Json.parse text with Ok j -> j | Error e -> fail "%s: %s" path e in
  let artefacts =
    match field "artefacts" j with
    | Some (Json.List l) -> l
    | _ -> fail "%s: no \"artefacts\" array" path
  in
  if artefacts = [] then fail "%s: empty artefact list" path;
  let iterations_of precond_entry =
    match field "runs" precond_entry with
    | Some (Json.List (first_run :: _)) ->
      Option.bind (field "iterations" first_run) Json.to_int_opt
    | _ -> None
  in
  List.iter
    (fun art ->
      let name =
        match Option.bind (field "name" art) Json.to_string_opt with
        | Some n -> n
        | None -> fail "%s: artefact without a name" path
      in
      let preconds =
        match field "preconds" art with
        | Some (Json.List l) -> l
        | _ -> fail "%s: artefact %s has no \"preconds\" array" path name
      in
      let find pname =
        match
          List.find_opt
            (fun p ->
              Option.bind (field "name" p) Json.to_string_opt = Some pname)
            preconds
        with
        | Some p -> (
          match iterations_of p with
          | Some i -> i
          | None -> fail "%s: artefact %s: no iteration count for %s" path name pname)
        | None -> fail "%s: artefact %s: missing preconditioner %s" path name pname
      in
      let ic0 = find "ic0" and jacobi = find "jacobi" in
      if ic0 <= 0 || jacobi <= 0 then
        fail "%s: artefact %s: non-positive iteration counts (ic0=%d jacobi=%d)" path name
          ic0 jacobi;
      let ratio = float_of_int ic0 /. float_of_int jacobi in
      if ratio >= 0.5 then
        fail
          "%s: artefact %s: IC(0)-CG took %d iterations vs %d for Jacobi-CG (ratio %.2f \
           >= 0.50) — the strongest rung is not pulling its weight"
          path name ic0 jacobi ratio;
      Printf.printf "%s: %s ok — ic0 %d vs jacobi %d iterations (%.1fx fewer)\n" path name
        ic0 jacobi
        (float_of_int jacobi /. float_of_int ic0))
    artefacts

(* --------------------------------------------------------------- multigrid *)

(* CI gate on BENCH_multigrid.json: the V-cycle preconditioner's claim
   is mesh independence, so across each artefact's resolution sweep the
   mg iteration count at the finest grid must stay within
   [growth_limit] (the file's own, 1.5 by default) times the coarsest
   grid's.  Iteration counts are deterministic, so the gate is
   noise-free.  A sweep with a single resolution (the small CI 3-D
   case, when present) has no growth to measure and passes. *)
let multigrid path =
  let text = In_channel.with_open_bin path In_channel.input_all in
  let j = match Json.parse text with Ok j -> j | Error e -> fail "%s: %s" path e in
  let limit =
    match Option.bind (field "growth_limit" j) Json.to_float_opt with
    | Some l when l > 0. -> l
    | Some l -> fail "%s: non-positive growth_limit %g" path l
    | None -> 1.5
  in
  let artefacts =
    match field "artefacts" j with
    | Some (Json.List l) -> l
    | _ -> fail "%s: no \"artefacts\" array" path
  in
  if artefacts = [] then fail "%s: empty artefact list" path;
  List.iter
    (fun art ->
      let name =
        match Option.bind (field "name" art) Json.to_string_opt with
        | Some n -> n
        | None -> fail "%s: artefact without a name" path
      in
      let runs =
        match field "runs" art with
        | Some (Json.List (_ :: _ as l)) -> l
        | _ -> fail "%s: artefact %s has no runs" path name
      in
      let mg_iters run =
        let res =
          match Option.bind (field "resolution" run) Json.to_int_opt with
          | Some r -> r
          | None -> fail "%s: artefact %s: run without a resolution" path name
        in
        match field "preconds" run with
        | Some (Json.List ps) -> (
          match
            List.find_opt
              (fun p -> Option.bind (field "name" p) Json.to_string_opt = Some "mg")
              ps
          with
          | Some p -> (
            match Option.bind (field "iterations" p) Json.to_int_opt with
            | Some i when i > 0 -> (res, i)
            | Some i ->
              fail "%s: artefact %s resolution %d: non-positive mg iterations %d" path
                name res i
            | None ->
              fail "%s: artefact %s resolution %d: mg entry without iterations" path name
                res)
          | None ->
            fail "%s: artefact %s resolution %d: no mg preconditioner entry" path name res)
        | _ -> fail "%s: artefact %s resolution %d: no \"preconds\" array" path name res
      in
      let counts = List.map mg_iters runs in
      let res0, i0 = List.hd counts and res1, i1 = List.hd (List.rev counts) in
      let growth = float_of_int i1 /. float_of_int i0 in
      if growth > limit then
        fail
          "%s: artefact %s: mg iterations grew %d (resolution %d) -> %d (resolution %d), \
           %.2fx > %.2fx — the V-cycle has lost mesh independence"
          path name i0 res0 i1 res1 growth limit;
      Printf.printf "%s: %s ok — mg iterations %d -> %d across resolutions %d..%d (%.2fx <= %.2fx)\n"
        path name i0 i1 res0 res1 growth limit)
    artefacts

(* -------------------------------------------------------------------- idle *)

(* the workers' spin-stretch gauge, summed across summary snapshots (a
   trace normally carries exactly one).  A pool whose idle loop fails to
   park shows up here as seconds of spinning per worker per quiet gap,
   instead of the microseconds a bounded spin costs. *)
let idle path max_seconds =
  let total = ref 0. and seen = ref false in
  List.iter
    (fun (lineno, line) ->
      match Json.parse line with
      | Error _ -> () (* validate's job, not ours *)
      | Ok j ->
        if
          Option.bind (field "type" j) Json.to_string_opt = Some "summary"
          && Option.bind (field "name" j) Json.to_string_opt = Some "pool.idle_seconds"
        then (
          match Option.bind (field "data" j) (fun d -> Option.bind (field "value" d) Json.to_float_opt) with
          | Some v ->
            seen := true;
            total := !total +. v
          | None -> fail "line %d: pool.idle_seconds summary without a numeric value" lineno))
    (read_lines path);
  if not !seen then
    fail "%s: no pool.idle_seconds summary — did the run use a pool with metrics on?" path;
  if !total > max_seconds then
    fail "%s: pool workers spent %.3fs spinning idle (budget %.3fs) — the idle loop is not parking"
      path !total max_seconds;
  Printf.printf "%s: OK — pool.idle_seconds %.6fs within the %.3fs budget\n" path !total
    max_seconds

(* ----------------------------------------------------------------- regress *)

let read_bench path =
  let text = In_channel.with_open_bin path In_channel.input_all in
  match Json.parse text with Ok j -> j | Error e -> fail "%s: %s" path e

let regress ?wall_tol base_path cur_path =
  let baseline = read_bench base_path and current = read_bench cur_path in
  let rows = Ttsv_obs.Regress.compare_benches ?wall_tol ~baseline ~current () in
  if rows = [] then fail "%s: no iterations/wall_s metrics found to compare" base_path;
  Format.printf "%a@." Ttsv_obs.Regress.pp_table rows;
  match Ttsv_obs.Regress.violations rows with
  | [] ->
    Printf.printf "%s vs %s: OK — %d metrics within bands\n" cur_path base_path
      (List.length rows)
  | vs ->
    List.iter (fun v -> prerr_endline ("obs_check: regression: " ^ v)) vs;
    fail "%s vs %s: %d metric(s) regressed" cur_path base_path (List.length vs)

(* ----------------------------------------------------------------- service *)

(* CI gate on BENCH_service.json: amortization must actually pay.  Each
   artefact's batch-1 run is the no-reuse baseline; every run with >= 100
   requests over repeated geometries must clear a 0.5 cache hit rate and
   3x the baseline throughput.  Hit rates are deterministic; the
   throughput ratio compares two measurements from the same process, so
   runner speed largely cancels. *)
let service path =
  let j = read_bench path in
  let artefacts =
    match field "artefacts" j with
    | Some (Json.List (_ :: _ as l)) -> l
    | _ -> fail "%s: no \"artefacts\" array" path
  in
  List.iter
    (fun art ->
      let name =
        match Option.bind (field "name" art) Json.to_string_opt with
        | Some n -> n
        | None -> fail "%s: artefact without a name" path
      in
      let runs =
        match field "runs" art with
        | Some (Json.List (_ :: _ as l)) -> l
        | _ -> fail "%s: artefact %s has no runs" path name
      in
      let run_field run what into =
        match Option.bind (field what run) into with
        | Some v -> v
        | None -> fail "%s: artefact %s: run without %S" path name what
      in
      let batch run = run_field run "batch" Json.to_int_opt in
      let baseline =
        match List.find_opt (fun r -> batch r = 1) runs with
        | Some r -> run_field r "throughput_rps" Json.to_float_opt
        | None -> fail "%s: artefact %s: no batch-1 baseline run" path name
      in
      if baseline <= 0. then fail "%s: artefact %s: non-positive baseline throughput" path name;
      let gated = List.filter (fun r -> batch r >= 100) runs in
      if gated = [] then fail "%s: artefact %s: no run with batch >= 100 to gate" path name;
      List.iter
        (fun run ->
          let b = batch run in
          let hit_rate = run_field run "hit_rate" Json.to_float_opt in
          let throughput = run_field run "throughput_rps" Json.to_float_opt in
          if hit_rate <= 0.5 then
            fail
              "%s: artefact %s batch %d: cache hit rate %.3f <= 0.50 — repeated geometries \
               are not being served from cache"
              path name b hit_rate;
          let speedup = throughput /. baseline in
          if speedup < 3. then
            fail
              "%s: artefact %s batch %d: %.1f solves/s vs %.1f at batch 1 (%.2fx < 3x) — \
               setup amortization is not paying"
              path name b throughput baseline speedup;
          Printf.printf "%s: %s batch %d ok — hit rate %.2f, %.1f solves/s (%.1fx batch-1)\n"
            path name b hit_rate throughput speedup)
        gated)
    artefacts

(* ----------------------------------------------------------------- hitrate *)

(* pooled hit rate of the service caches, from the trace's summary
   snapshot: counters named service.cache.<level>.hits|misses *)
let hitrate path min_rate =
  let hits = ref 0. and misses = ref 0. in
  let ends_with suffix s =
    let ls = String.length suffix and l = String.length s in
    l >= ls && String.sub s (l - ls) ls = suffix
  in
  List.iter
    (fun (lineno, line) ->
      match Json.parse line with
      | Error _ -> () (* validate's job, not ours *)
      | Ok j ->
        if Option.bind (field "type" j) Json.to_string_opt = Some "summary" then (
          match Option.bind (field "name" j) Json.to_string_opt with
          | Some name
            when String.length name > 14 && String.sub name 0 14 = "service.cache." -> (
            let value () =
              match
                Option.bind (field "data" j) (fun d ->
                    Option.bind (field "value" d) Json.to_float_opt)
              with
              | Some v -> v
              | None -> fail "line %d: %s summary without a numeric value" lineno name
            in
            if ends_with ".hits" name then hits := !hits +. value ()
            else if ends_with ".misses" name then misses := !misses +. value ())
          | _ -> ()))
    (read_lines path);
  let total = !hits +. !misses in
  if total = 0. then
    fail "%s: no service.cache.* counters — did the serve run have --metrics on?" path;
  let rate = !hits /. total in
  if rate < min_rate then
    fail "%s: cache hit rate %.3f below the %.3f floor (%.0f hits / %.0f lookups)" path rate
      min_rate !hits total;
  Printf.printf "%s: OK — cache hit rate %.3f (%.0f hits / %.0f lookups) >= %.3f\n" path rate
    !hits total min_rate

let usage () =
  fail
    "usage: obs_check validate TRACE.jsonl [MIN_DEPTH] | obs_check bench FILE | obs_check \
     precond FILE | obs_check multigrid FILE | obs_check idle TRACE.jsonl MAX_SECONDS | \
     obs_check regress BASELINE.json CURRENT.json [WALL_TOL] | obs_check service FILE | \
     obs_check hitrate TRACE.jsonl MIN_RATE"

let () =
  match Array.to_list Sys.argv with
  | [ _; "validate"; path ] -> validate path None
  | [ _; "validate"; path; depth ] -> (
    match int_of_string_opt depth with
    | Some d -> validate path (Some d)
    | None -> usage ())
  | [ _; "bench"; path ] -> bench path
  | [ _; "precond"; path ] -> precond path
  | [ _; "multigrid"; path ] -> multigrid path
  | [ _; "idle"; path; budget ] -> (
    match float_of_string_opt budget with
    | Some b when b >= 0. -> idle path b
    | _ -> usage ())
  | [ _; "regress"; base; cur ] -> regress base cur
  | [ _; "regress"; base; cur; tol ] -> (
    match float_of_string_opt tol with
    | Some t when t >= 1. -> regress ~wall_tol:t base cur
    | _ -> usage ())
  | [ _; "service"; path ] -> service path
  | [ _; "hitrate"; path; min_rate ] -> (
    match float_of_string_opt min_rate with
    | Some r when r >= 0. && r <= 1. -> hitrate path r
    | _ -> usage ())
  | _ -> usage ()
