module Stack = Ttsv_geometry.Stack
module Plane = Ttsv_geometry.Plane
module Tsv = Ttsv_geometry.Tsv

type t = {
  thickness : float;
  material : Ttsv_physics.Material.t;
  tsv : bool;
  source_density : float;
  annular_source : bool;
  ncells : int;
}

let cells_for resolution thickness =
  let res = float_of_int resolution in
  let ideal = Float.ceil (thickness /. 8e-6 *. res) in
  Stdlib.max 2 (Stdlib.min (int_of_float (40. *. res)) (int_of_float ideal))

(* Split one substrate of thickness [t_sub] into bulk/device (and, for the
   first plane, below/above the TSV tip) slices. *)
let substrate_layers resolution (p : Plane.t) ~tip_depth =
  let t_sub = p.Plane.t_substrate in
  let marks =
    List.sort_uniq compare
      (List.filter
         (fun z -> z > 0. && z < t_sub)
         [
           t_sub -. p.Plane.t_device;
           (match tip_depth with Some d -> t_sub -. d | None -> -1.);
         ])
  in
  let bounds = (0. :: marks) @ [ t_sub ] in
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | [ _ ] | [] -> []
  in
  List.map
    (fun (a, b) ->
      let in_device = b > t_sub -. p.Plane.t_device +. 1e-30 in
      let in_tsv = match tip_depth with Some d -> a >= t_sub -. d -. 1e-30 | None -> false in
      {
        thickness = b -. a;
        material = p.Plane.substrate;
        tsv = in_tsv;
        source_density = (if in_device then p.Plane.device_power_density else 0.);
        annular_source = true;
        ncells = cells_for resolution (b -. a);
      })
    (pairs bounds)

let of_stack ~resolution stack =
  if resolution < 1 then invalid_arg "Layers.of_stack: resolution must be >= 1";
  let n = Stack.num_planes stack in
  let tsv = stack.Stack.tsv in
  let plane_layers i =
    let p = Stack.plane stack i in
    let bond =
      if p.Plane.t_bond > 0. then
        [
          {
            thickness = p.Plane.t_bond;
            material = p.Plane.bond;
            tsv = true;
            source_density = 0.;
            annular_source = true;
            ncells = cells_for resolution p.Plane.t_bond;
          };
        ]
      else []
    in
    let tip_depth = if i = 0 then Some tsv.Tsv.extension else None in
    let subs =
      if i = 0 then substrate_layers resolution p ~tip_depth
      else List.map (fun l -> { l with tsv = true }) (substrate_layers resolution p ~tip_depth:None)
    in
    let top = i = n - 1 in
    let ild =
      {
        thickness = p.Plane.t_ild;
        material = p.Plane.ild;
        tsv = not top;
        source_density = p.Plane.ild_power_density;
        annular_source = not top;
        ncells = cells_for resolution p.Plane.t_ild;
      }
    in
    bond @ subs @ [ ild ]
  in
  List.concat (List.init n plane_layers)

let z_faces layers =
  let faces = ref [ 0. ] and z = ref 0. in
  List.iter
    (fun l ->
      let z1 = !z +. l.thickness in
      let h = l.thickness /. float_of_int l.ncells in
      for s = 1 to l.ncells - 1 do
        faces := (!z +. (h *. float_of_int s)) :: !faces
      done;
      faces := z1 :: !faces;
      z := z1)
    layers;
  Array.of_list (List.rev !faces)

let row_layers layers =
  let total = List.fold_left (fun acc l -> acc + l.ncells) 0 layers in
  match layers with
  | [] -> invalid_arg "Layers.row_layers: empty layer list"
  | first :: _ ->
    let rows = Array.make total first in
    let row = ref 0 in
    List.iter
      (fun l ->
        for _ = 1 to l.ncells do
          rows.(!row) <- l;
          incr row
        done)
      layers;
    rows
