(** Finite-volume solution of a 3-D Cartesian conduction problem.

    Same discretization and boundary conditions as the axisymmetric
    {!Solver} — harmonic-mean two-point fluxes, isothermal sink at z = 0,
    adiabatic everywhere else — over the square-cell {!Problem3}
    geometry; solved through the {!Ttsv_robust.Robust} escalation
    ladder. *)

type result = {
  problem : Problem3.t;
  temps : float array;  (** per-cell rise above the sink, K *)
  iterations : int;
  residual : float;
  diagnostics : Ttsv_robust.Diagnostics.t;
}

val assemble : ?pool:Ttsv_parallel.Pool.t -> Problem3.t -> Ttsv_numerics.Sparse.t
(** [assemble p] builds the 3-D conductance matrix in CSR form, row by
    row.  [pool] fills disjoint row chunks across a domain pool; the
    pooled matrix is bitwise identical to the sequential one. *)

val try_solve :
  ?tol:float ->
  ?max_iter:int ->
  ?x0:float array ->
  ?on_iterate:(int -> float -> unit) ->
  ?pool:Ttsv_parallel.Pool.t ->
  ?rungs:Ttsv_robust.Diagnostics.rung list ->
  ?budget:Ttsv_parallel.Budget.t ->
  Problem3.t ->
  (result, Ttsv_robust.Robust.failure) Stdlib.result
(** [try_solve p] assembles and solves ([tol] defaults to [1e-9]);
    every failure is a typed {!Ttsv_robust.Robust.failure}.  [x0]
    warm-starts the iterative rungs from a nearby solution.  [pool]
    parallelizes assembly and the iterative rungs without changing any
    computed bit.  [rungs] overrides the escalation ladder.  [budget]
    bounds the ladder's wall-clock/work: expiry yields an [Error] with
    reason [Deadline_exceeded] carrying the best iterate reached. *)

val solve :
  ?tol:float ->
  ?max_iter:int ->
  ?x0:float array ->
  ?on_iterate:(int -> float -> unit) ->
  ?pool:Ttsv_parallel.Pool.t ->
  ?rungs:Ttsv_robust.Diagnostics.rung list ->
  ?budget:Ttsv_parallel.Budget.t ->
  Problem3.t ->
  result
(** Like {!try_solve} but raises {!Ttsv_robust.Robust.Solve_failed}. *)

val max_rise : result -> float

val rise_at : result -> x:float -> y:float -> z:float -> float
(** Rise of the cell containing the point (clamped to the domain). *)

val sink_heat_flow : result -> float
(** Heat leaving through the bottom boundary, W. *)

val energy_imbalance : result -> float
(** |sink flow − total source| / total source. *)

val top_field : result -> float array
(** The top row of cells as a row-major nx × ny field (hotspot maps). *)
