module Stack = Ttsv_geometry.Stack
module Tsv = Ttsv_geometry.Tsv
module Material = Ttsv_physics.Material

type t = { grid : Grid3.t; conductivity : float array; source : float array }

let make ~grid ~conductivity ~source =
  let n = Grid3.cells grid in
  if Array.length conductivity <> n then
    invalid_arg "Problem3.make: conductivity length mismatch";
  if Array.length source <> n then invalid_arg "Problem3.make: source length mismatch";
  Array.iter
    (fun k ->
      if k <= 0. || not (Float.is_finite k) then
        invalid_arg "Problem3.make: conductivities must be positive and finite")
    conductivity;
  { grid; conductivity = Array.copy conductivity; source = Array.copy source }

let total_source p = Array.fold_left ( +. ) 0. p.source
let cell_count p = Grid3.cells p.grid


(* Lateral faces: coarse background spacing away from the vias and fine
   spacing (about one liner thickness) in a band around every via, so the
   staircase representation resolves the liner ring.  Material interfaces
   at +/- r and +/- (r + t_L) along the axes land exactly on faces. *)
let lateral_faces side n vias r_in r_out =
  let fine = Float.max ((r_out -. r_in) /. 1.5) (r_in /. 8.) in
  let pad = 2. *. (r_out -. r_in) in
  let coarse = side /. float_of_int n in
  let eps = side *. 1e-9 in
  (* merge per-via refinement bands *)
  let bands =
    List.sort compare
      (List.map
         (fun v -> (Float.max 0. (v -. r_out -. pad), Float.min side (v +. r_out +. pad)))
         vias)
  in
  let rec merge = function
    | (a1, b1) :: (a2, b2) :: rest when a2 <= b1 +. coarse -> merge ((a1, Float.max b1 b2) :: rest)
    | band :: rest -> band :: merge rest
    | [] -> []
  in
  let bands = merge bands in
  let subdivide a b h acc =
    if b <= a +. eps then acc
    else begin
      let cells = Stdlib.max 1 (int_of_float (Float.ceil ((b -. a) /. h))) in
      let step = (b -. a) /. float_of_int cells in
      let out = ref acc in
      for i = 1 to cells do
        out := (a +. (step *. float_of_int i)) :: !out
      done;
      !out
    end
  in
  (* walk the axis: coarse gaps between bands, fine inside them, and exact
     faces at each via's material radii *)
  let faces = ref [] and pos = ref 0. in
  List.iter
    (fun (a, b) ->
      faces := subdivide !pos a coarse !faces;
      faces := subdivide (Float.max !pos a) b fine !faces;
      pos := Float.max !pos b)
    bands;
  faces := subdivide !pos side coarse !faces;
  let exact =
    List.concat_map (fun v -> [ v -. r_out; v -. r_in; v; v +. r_in; v +. r_out ]) vias
  in
  let all =
    List.filter (fun x -> x > eps && x < side -. eps) (exact @ !faces)
    |> List.sort_uniq compare
  in
  let rec dedup = function
    | a :: b :: rest ->
      if b -. a < fine /. 4. then dedup (a :: rest) else a :: dedup (b :: rest)
    | rest -> rest
  in
  Array.of_list ((0. :: dedup all) @ [ side ])

let grid_centers_for_cluster stack n =
  if n < 1 then invalid_arg "Problem3.grid_centers_for_cluster: n must be >= 1";
  let m = int_of_float (Float.round (sqrt (float_of_int n))) in
  if m * m <> n then
    invalid_arg "Problem3.grid_centers_for_cluster: n must be a perfect square";
  let side = sqrt stack.Stack.footprint in
  List.concat
    (List.init m (fun i ->
         List.init m (fun j ->
             ( side *. (float_of_int i +. 0.5) /. float_of_int m,
               side *. (float_of_int j +. 0.5) /. float_of_int m ))))

let of_stack ?(resolution = 1) ?via_centers ?pool stack =
  if resolution < 1 then invalid_arg "Problem3.of_stack: resolution must be >= 1";
  let pool = Option.value pool ~default:Ttsv_parallel.Pool.seq in
  let side = sqrt stack.Stack.footprint in
  let tsv = stack.Stack.tsv in
  let r_in = tsv.Tsv.radius and r_out = Tsv.outer_radius tsv in
  let centers =
    match via_centers with Some cs -> cs | None -> [ (side /. 2., side /. 2.) ]
  in
  List.iter
    (fun (x, y) ->
      if x -. r_out < 0. || x +. r_out > side || y -. r_out < 0. || y +. r_out > side then
        invalid_arg "Problem3.of_stack: via (incl. liner) outside the cell")
    centers;
  let n_lat = 24 * resolution in
  let layers = Layers.of_stack ~resolution stack in
  let xs_vias = List.map fst centers and ys_vias = List.map snd centers in
  let grid =
    Grid3.make
      ~x_faces:(lateral_faces side n_lat xs_vias r_in r_out)
      ~y_faces:(lateral_faces side n_lat ys_vias r_in r_out)
      ~z_faces:(Layers.z_faces layers)
  in
  let nx = Grid3.nx grid and ny = Grid3.ny grid and nz = Grid3.nz grid in
  let row_layer = Layers.row_layers layers in
  assert (Array.length row_layer = nz);
  let conductivity = Array.make (nx * ny * nz) 0. in
  let source = Array.make (nx * ny * nz) 0. in
  (* distance from a point to the nearest via axis *)
  let nearest_via_distance xc yc =
    List.fold_left
      (fun acc (vx, vy) ->
        let d = Float.hypot (xc -. vx) (yc -. vy) in
        Float.min acc d)
      Float.infinity centers
  in
  (* Staircase centre sampling: the graded faces keep the lateral spacing
     near each via at about one liner thickness, so the thin ring is
     resolved without anisotropy-corrupting conductivity blending. *)
  let cell_conductivity l ix iy =
    let k_of (m : Material.t) = m.Material.conductivity in
    if not l.Layers.tsv then k_of l.Layers.material
    else begin
      let d = nearest_via_distance (Grid3.x_center grid ix) (Grid3.y_center grid iy) in
      if d < r_in then k_of tsv.Tsv.filler
      else if d < r_out then k_of tsv.Tsv.liner
      else k_of l.Layers.material
    end
  in
  (* per-layer raw deposited power, for normalization to the analytic
     wattage (see the interface) *)
  let silicon_area = Stack.silicon_area stack in
  let plane = nx * ny in
  let fill_chunk = 1024 in
  let row0 = ref 0 in
  List.iter
    (fun (l : Layers.t) ->
      let rows = l.Layers.ncells in
      (* a layer occupies the contiguous index range [base, base + m):
         fill it per-chunk over the pool, accumulating the raw deposited
         power with a chunk-deterministic reduction so pooled and
         sequential builds agree bitwise *)
      let base = !row0 * plane in
      let m = rows * plane in
      let fill j =
        let idx = base + j in
        let ix = idx mod nx and iy = idx / nx mod ny and iz = idx / plane in
        let d = nearest_via_distance (Grid3.x_center grid ix) (Grid3.y_center grid iy) in
        conductivity.(idx) <- cell_conductivity l ix iy;
        let heated = if l.Layers.annular_source then d > r_out else true in
        if heated && l.Layers.source_density > 0. then begin
          let w = l.Layers.source_density *. Grid3.volume grid ix iy iz in
          source.(idx) <- w;
          w
        end
        else 0.
      in
      let raw =
        Ttsv_parallel.Pool.map_reduce ~chunk:fill_chunk pool ~n:m
          ~map:(fun ~lo ~hi ->
            let acc = ref 0. in
            for j = lo to hi - 1 do
              acc := !acc +. fill j
            done;
            !acc)
          ~reduce:( +. ) ~init:0.
      in
      (* normalize the slab to the analytic wattage *)
      if l.Layers.source_density > 0. then begin
        let area =
          if l.Layers.annular_source then silicon_area else stack.Stack.footprint
        in
        let target = l.Layers.source_density *. l.Layers.thickness *. area in
        if raw <= 0. then invalid_arg "Problem3.of_stack: a heated slab received no cells";
        let scale = target /. raw in
        Ttsv_parallel.Pool.for_chunks ~chunk:fill_chunk pool m (fun ~lo ~hi ->
            for j = lo to hi - 1 do
              source.(base + j) <- source.(base + j) *. scale
            done)
      end;
      row0 := !row0 + rows)
    layers;
  { grid; conductivity; source }
