(** Tensor-product Cartesian grids for the 3-D finite-volume solver.

    Unlike the axisymmetric {!Grid}, this grid carries the paper's actual
    validation geometry: a {e square} unit cell with one or more
    cylindrical vias represented by staircase (cell-centre sampled)
    conductivities.  Cells are indexed [(ix, iy, iz)]; the flattened
    unknown index is [((iz * ny) + iy) * nx + ix]. *)

type t = private {
  x_faces : float array;
  y_faces : float array;
  z_faces : float array;
}

val make : x_faces:float array -> y_faces:float array -> z_faces:float array -> t
(** Validates each axis (strictly increasing, starting at 0, at least one
    cell). *)

val nx : t -> int

val ny : t -> int

val nz : t -> int

val cells : t -> int

val index : t -> int -> int -> int -> int
(** [index g ix iy iz] is the flattened cell index. *)

val x_center : t -> int -> float

val y_center : t -> int -> float

val z_center : t -> int -> float

val dx : t -> int -> float

val dy : t -> int -> float

val dz : t -> int -> float

val volume : t -> int -> int -> int -> float

val face_area_x : t -> int -> int -> float
(** [face_area_x g iy iz] — area of a face normal to x: Δy·Δz. *)

val face_area_y : t -> int -> int -> float
(** [face_area_y g ix iz] — Δx·Δz. *)

val face_area_z : t -> int -> int -> float
(** [face_area_z g ix iy] — Δx·Δy. *)

val extent : t -> float * float * float
(** Total (width, depth, height). *)
