type t = { r_faces : float array; z_faces : float array }

let validate_faces name faces ~from_zero =
  let n = Array.length faces in
  if n < 2 then invalid_arg ("Grid.make: " ^ name ^ " needs at least one cell");
  if from_zero && Float.abs faces.(0) > 1e-30 then
    invalid_arg ("Grid.make: " ^ name ^ " must start at 0");
  for i = 0 to n - 2 do
    if faces.(i) >= faces.(i + 1) then
      invalid_arg ("Grid.make: " ^ name ^ " must be strictly increasing")
  done

let make ~r_faces ~z_faces =
  validate_faces "r_faces" r_faces ~from_zero:true;
  validate_faces "z_faces" z_faces ~from_zero:true;
  { r_faces = Array.copy r_faces; z_faces = Array.copy z_faces }

let nr g = Array.length g.r_faces - 1
let nz g = Array.length g.z_faces - 1
let cells g = nr g * nz g
let index g ir iz = (iz * nr g) + ir
let r_center g ir = 0.5 *. (g.r_faces.(ir) +. g.r_faces.(ir + 1))
let z_center g iz = 0.5 *. (g.z_faces.(iz) +. g.z_faces.(iz + 1))
let dr g ir = g.r_faces.(ir + 1) -. g.r_faces.(ir)
let dz g iz = g.z_faces.(iz + 1) -. g.z_faces.(iz)

let annulus_area g ir =
  let rw = g.r_faces.(ir) and re = g.r_faces.(ir + 1) in
  Float.pi *. ((re *. re) -. (rw *. rw))

let volume g ir iz = annulus_area g ir *. dz g iz
let radial_face_area g ir iz = 2. *. Float.pi *. g.r_faces.(ir + 1) *. dz g iz
let axial_face_area g ir = annulus_area g ir
let outer_radius g = g.r_faces.(Array.length g.r_faces - 1)
let height g = g.z_faces.(Array.length g.z_faces - 1)

let refine_interval a b n =
  if n < 1 then invalid_arg "Grid.refine_interval: need n >= 1";
  if b <= a then invalid_arg "Grid.refine_interval: empty interval";
  let h = (b -. a) /. float_of_int n in
  List.init (n - 1) (fun i -> a +. (h *. float_of_int (i + 1)))

let geometric_interval a b n ratio =
  if n < 1 then invalid_arg "Grid.geometric_interval: need n >= 1";
  if b <= a then invalid_arg "Grid.geometric_interval: empty interval";
  if ratio <= 0. then invalid_arg "Grid.geometric_interval: ratio must be positive";
  if n = 1 then []
  else begin
    (* widths w, w*ratio, ... summing to (b - a) *)
    let total = ref 0. and w = ref 1. in
    for _ = 1 to n do
      total := !total +. !w;
      w := !w *. ratio
    done;
    let w0 = (b -. a) /. !total in
    let acc = ref a and cur = ref w0 in
    List.init (n - 1) (fun _ ->
        acc := !acc +. !cur;
        cur := !cur *. ratio;
        !acc)
  end
