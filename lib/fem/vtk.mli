(** Legacy-VTK export of finite-volume solutions.

    Writes the axisymmetric (r–z) temperature and conductivity fields as a
    VTK 2.0 structured grid (the r–z plane embedded at y = 0), which
    ParaView and VisIt open directly — the replacement for COMSOL's
    built-in post-processing in this reproduction. *)

val to_channel : Solver.result -> out_channel -> unit
(** [to_channel res oc] writes the dataset: STRUCTURED_GRID points at the
    cell corners plus CELL_DATA scalars [temperature_rise] (K) and
    [conductivity] (W/(m·K)). *)

val write : Solver.result -> string -> unit
(** [write res path] writes (and overwrites) [path]. *)
