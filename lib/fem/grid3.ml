type t = { x_faces : float array; y_faces : float array; z_faces : float array }

let validate name faces =
  let n = Array.length faces in
  if n < 2 then invalid_arg ("Grid3.make: " ^ name ^ " needs at least one cell");
  if Float.abs faces.(0) > 1e-30 then invalid_arg ("Grid3.make: " ^ name ^ " must start at 0");
  for i = 0 to n - 2 do
    if faces.(i) >= faces.(i + 1) then
      invalid_arg ("Grid3.make: " ^ name ^ " must be strictly increasing")
  done

let make ~x_faces ~y_faces ~z_faces =
  validate "x_faces" x_faces;
  validate "y_faces" y_faces;
  validate "z_faces" z_faces;
  { x_faces = Array.copy x_faces; y_faces = Array.copy y_faces; z_faces = Array.copy z_faces }

let nx g = Array.length g.x_faces - 1
let ny g = Array.length g.y_faces - 1
let nz g = Array.length g.z_faces - 1
let cells g = nx g * ny g * nz g
let index g ix iy iz = ((((iz * ny g) + iy) * nx g) + ix)
let center faces i = 0.5 *. (faces.(i) +. faces.(i + 1))
let x_center g i = center g.x_faces i
let y_center g i = center g.y_faces i
let z_center g i = center g.z_faces i
let delta faces i = faces.(i + 1) -. faces.(i)
let dx g i = delta g.x_faces i
let dy g i = delta g.y_faces i
let dz g i = delta g.z_faces i
let volume g ix iy iz = dx g ix *. dy g iy *. dz g iz
let face_area_x g iy iz = dy g iy *. dz g iz
let face_area_y g ix iz = dx g ix *. dz g iz
let face_area_z g ix iy = dx g ix *. dy g iy

let extent g =
  ( g.x_faces.(Array.length g.x_faces - 1),
    g.y_faces.(Array.length g.y_faces - 1),
    g.z_faces.(Array.length g.z_faces - 1) )
