(** Axisymmetric (r–z) structured grids.

    The FEM-substitute solver discretizes the unit cell as a cylinder:
    radial faces from the axis to the cell's outer radius, axial faces
    from the heat sink upward.  This module owns the pure geometry —
    face positions, cell centres, cylindrical face areas and volumes —
    while {!Problem} assigns materials and sources and {!Solver}
    assembles and solves.

    Cells are indexed [(ir, iz)] with [ir] counting radially outward and
    [iz] counting upward; the flattened unknown index is
    [iz * nr + ir]. *)

type t = private {
  r_faces : float array;  (** radial face positions, length nr+1, starting at 0 *)
  z_faces : float array;  (** axial face positions, length nz+1, starting at 0 *)
}

val make : r_faces:float array -> z_faces:float array -> t
(** [make ~r_faces ~z_faces] validates (strictly increasing, starting at
    0, at least one cell each way) and builds the grid. *)

val nr : t -> int
(** Number of radial cells. *)

val nz : t -> int
(** Number of axial cells. *)

val cells : t -> int
(** [nr * nz]. *)

val index : t -> int -> int -> int
(** [index g ir iz] is the flattened cell index. *)

val r_center : t -> int -> float
(** Radial centre of column [ir] (mid-point of its faces). *)

val z_center : t -> int -> float
(** Axial centre of row [iz]. *)

val dr : t -> int -> float
(** Radial extent of column [ir]. *)

val dz : t -> int -> float
(** Axial extent of row [iz]. *)

val volume : t -> int -> int -> float
(** Cell volume π(r_e² − r_w²)·Δz. *)

val radial_face_area : t -> int -> int -> float
(** [radial_face_area g ir iz] is the area of the face between columns
    [ir] and [ir+1] in row [iz]: 2π·r_face·Δz. *)

val axial_face_area : t -> int -> float
(** [axial_face_area g ir] is the area of a horizontal face of column
    [ir]: π(r_e² − r_w²). *)

val outer_radius : t -> float

val height : t -> float

val refine_interval : float -> float -> int -> float list
(** [refine_interval a b n] is the interior subdivision of [[a, b]] into
    [n] equal cells, returned as the [n−1] interior points — the helper
    the problem builder uses to mesh each material layer. *)

val geometric_interval : float -> float -> int -> float -> float list
(** [geometric_interval a b n ratio] subdivides [[a, b]] into [n] cells
    whose widths grow geometrically by [ratio]; used to coarsen the mesh
    away from the TSV where gradients are mild. *)
