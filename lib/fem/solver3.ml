module Sparse = Ttsv_numerics.Sparse
module Robust = Ttsv_robust.Robust
module Diagnostics = Ttsv_robust.Diagnostics

type result = {
  problem : Problem3.t;
  temps : float array;
  iterations : int;
  residual : float;
  diagnostics : Diagnostics.t;
}

let face_conductance a d1 k1 d2 k2 = a /. ((d1 /. k1) +. (d2 /. k2))

let assemble (p : Problem3.t) =
  let g = p.Problem3.grid in
  let nx = Grid3.nx g and ny = Grid3.ny g and nz = Grid3.nz g in
  let n = nx * ny * nz in
  let b = Sparse.builder ~hint:(7 * n) n n in
  let k ix iy iz = p.Problem3.conductivity.(Grid3.index g ix iy iz) in
  let stamp i j cond =
    Sparse.add b i i cond;
    Sparse.add b j j cond;
    Sparse.add b i j (-.cond);
    Sparse.add b j i (-.cond)
  in
  for iz = 0 to nz - 1 do
    for iy = 0 to ny - 1 do
      for ix = 0 to nx - 1 do
        let idx = Grid3.index g ix iy iz in
        if ix < nx - 1 then begin
          let a = Grid3.face_area_x g iy iz in
          let cond =
            face_conductance a
              (0.5 *. Grid3.dx g ix)
              (k ix iy iz)
              (0.5 *. Grid3.dx g (ix + 1))
              (k (ix + 1) iy iz)
          in
          stamp idx (Grid3.index g (ix + 1) iy iz) cond
        end;
        if iy < ny - 1 then begin
          let a = Grid3.face_area_y g ix iz in
          let cond =
            face_conductance a
              (0.5 *. Grid3.dy g iy)
              (k ix iy iz)
              (0.5 *. Grid3.dy g (iy + 1))
              (k ix (iy + 1) iz)
          in
          stamp idx (Grid3.index g ix (iy + 1) iz) cond
        end;
        if iz < nz - 1 then begin
          let a = Grid3.face_area_z g ix iy in
          let cond =
            face_conductance a
              (0.5 *. Grid3.dz g iz)
              (k ix iy iz)
              (0.5 *. Grid3.dz g (iz + 1))
              (k ix iy (iz + 1))
          in
          stamp idx (Grid3.index g ix iy (iz + 1)) cond
        end;
        if iz = 0 then begin
          (* isothermal sink across the bottom half cell *)
          let a = Grid3.face_area_z g ix iy in
          Sparse.add b idx idx (a *. k ix iy iz /. (0.5 *. Grid3.dz g iz))
        end
      done
    done
  done;
  Sparse.finalize b

let try_solve ?(tol = 1e-9) ?max_iter ?on_iterate p =
  let matrix = assemble p in
  let n = Sparse.rows matrix in
  let max_iter = match max_iter with Some m -> m | None -> Stdlib.max 4000 (10 * n) in
  match Robust.solve ~tol ~max_iter ?on_iterate matrix p.Problem3.source with
  | Error f -> Error f
  | Ok (x, d) ->
    Ok
      {
        problem = p;
        temps = x;
        iterations = d.Diagnostics.iterations;
        residual = d.Diagnostics.residual;
        diagnostics = d;
      }

let solve ?tol ?max_iter ?on_iterate p =
  match try_solve ?tol ?max_iter ?on_iterate p with
  | Ok r -> r
  | Error f -> raise (Robust.Solve_failed f)

let max_rise r = Array.fold_left Float.max 0. r.temps

let find_cell faces x =
  let n = Array.length faces - 1 in
  if x <= faces.(0) then 0
  else if x >= faces.(n) then n - 1
  else begin
    let lo = ref 0 and hi = ref n in
    while !hi - !lo > 1 do
      let m = (!lo + !hi) / 2 in
      if faces.(m) <= x then lo := m else hi := m
    done;
    !lo
  end

let rise_at res ~x ~y ~z =
  let g = res.problem.Problem3.grid in
  let ix = find_cell g.Grid3.x_faces x in
  let iy = find_cell g.Grid3.y_faces y in
  let iz = find_cell g.Grid3.z_faces z in
  res.temps.(Grid3.index g ix iy iz)

let sink_heat_flow res =
  let p = res.problem in
  let g = p.Problem3.grid in
  let acc = ref 0. in
  for iy = 0 to Grid3.ny g - 1 do
    for ix = 0 to Grid3.nx g - 1 do
      let idx = Grid3.index g ix iy 0 in
      let a = Grid3.face_area_z g ix iy in
      let cond = a *. p.Problem3.conductivity.(idx) /. (0.5 *. Grid3.dz g 0) in
      acc := !acc +. (cond *. res.temps.(idx))
    done
  done;
  !acc

let energy_imbalance res =
  let src = Problem3.total_source res.problem in
  if src = 0. then 0. else Float.abs (sink_heat_flow res -. src) /. src

let top_field res =
  let g = res.problem.Problem3.grid in
  let nx = Grid3.nx g and ny = Grid3.ny g and nz = Grid3.nz g in
  Array.init (nx * ny) (fun i -> res.temps.(Grid3.index g (i mod nx) (i / nx) (nz - 1)))
