module Sparse = Ttsv_numerics.Sparse
module Robust = Ttsv_robust.Robust
module Diagnostics = Ttsv_robust.Diagnostics
module Obs_span = Ttsv_obs.Span
module Obs_metrics = Ttsv_obs.Metrics

(* same interned instruments as the 2-D solver: "assembly.nnz" and
   "grid.cells" describe whichever assembly ran last *)
let m_nnz = Obs_metrics.Gauge.make "assembly.nnz"
let m_cells = Obs_metrics.Gauge.make "grid.cells"

let record_assembly matrix =
  if Ttsv_obs.Flags.enabled () then begin
    let nnz = Sparse.nnz matrix in
    Obs_metrics.Gauge.set m_nnz (float_of_int nnz);
    Obs_metrics.Gauge.set m_cells (float_of_int (Sparse.rows matrix));
    if Ttsv_obs.Flags.trace_on () then
      Ttsv_obs.Sink.metric ?span:(Obs_span.current ()) ~kind:"gauge" ~name:"assembly.nnz"
        (Ttsv_obs.Json.Int nnz)
  end;
  matrix

type result = {
  problem : Problem3.t;
  temps : float array;
  iterations : int;
  residual : float;
  diagnostics : Diagnostics.t;
}

let face_conductance a d1 k1 d2 k2 = a /. ((d1 /. k1) +. (d2 /. k2))

(* Row-direct CSR assembly, mirroring the 2-D {!Solver.assemble}: every
   row is built independently with neighbour columns in ascending order
   and a fixed diagonal accumulation order (-z, -y, -x, +x, +y, +z,
   boundary), so rows can be filled per-chunk across a domain pool and
   the pooled matrix is bitwise identical to the sequential one.  Face
   conductances are evaluated in the lower-index orientation so both
   rows sharing a face store exactly opposite off-diagonal values. *)
let assemble_rows ?pool (p : Problem3.t) =
  let g = p.Problem3.grid in
  let nx = Grid3.nx g and ny = Grid3.ny g and nz = Grid3.nz g in
  let n = nx * ny * nz in
  let plane = nx * ny in
  let k ix iy iz = p.Problem3.conductivity.(Grid3.index g ix iy iz) in
  let cond_x ix iy iz =
    face_conductance (Grid3.face_area_x g iy iz)
      (0.5 *. Grid3.dx g ix)
      (k ix iy iz)
      (0.5 *. Grid3.dx g (ix + 1))
      (k (ix + 1) iy iz)
  in
  let cond_y ix iy iz =
    face_conductance (Grid3.face_area_y g ix iz)
      (0.5 *. Grid3.dy g iy)
      (k ix iy iz)
      (0.5 *. Grid3.dy g (iy + 1))
      (k ix (iy + 1) iz)
  in
  let cond_z ix iy iz =
    face_conductance (Grid3.face_area_z g ix iy)
      (0.5 *. Grid3.dz g iz)
      (k ix iy iz)
      (0.5 *. Grid3.dz g (iz + 1))
      (k ix iy (iz + 1))
  in
  (* isothermal sink across the bottom half cell *)
  let bottom_cond ix iy = Grid3.face_area_z g ix iy *. k ix iy 0 /. (0.5 *. Grid3.dz g 0) in
  let row_ptr = Array.make (n + 1) 0 in
  for idx = 0 to n - 1 do
    let ix = idx mod nx and iy = idx / nx mod ny and iz = idx / plane in
    let nn =
      (if iz > 0 then 1 else 0)
      + (if iy > 0 then 1 else 0)
      + (if ix > 0 then 1 else 0)
      + (if ix < nx - 1 then 1 else 0)
      + (if iy < ny - 1 then 1 else 0)
      + if iz < nz - 1 then 1 else 0
    in
    row_ptr.(idx + 1) <- nn + 1
  done;
  for i = 1 to n do
    row_ptr.(i) <- row_ptr.(i) + row_ptr.(i - 1)
  done;
  let col_idx = Array.make row_ptr.(n) 0 in
  let values = Array.make row_ptr.(n) 0. in
  let fill_row idx =
    let ix = idx mod nx and iy = idx / nx mod ny and iz = idx / plane in
    let pos = ref row_ptr.(idx) in
    let diag = ref 0. in
    let off j c =
      col_idx.(!pos) <- j;
      values.(!pos) <- -.c;
      incr pos;
      diag := !diag +. c
    in
    if iz > 0 then off (idx - plane) (cond_z ix iy (iz - 1));
    if iy > 0 then off (idx - nx) (cond_y ix (iy - 1) iz);
    if ix > 0 then off (idx - 1) (cond_x (ix - 1) iy iz);
    let dslot = !pos in
    col_idx.(dslot) <- idx;
    incr pos;
    if ix < nx - 1 then off (idx + 1) (cond_x ix iy iz);
    if iy < ny - 1 then off (idx + nx) (cond_y ix iy iz);
    if iz < nz - 1 then off (idx + plane) (cond_z ix iy iz);
    if iz = 0 then diag := !diag +. bottom_cond ix iy;
    values.(dslot) <- !diag
  in
  (match pool with
  | None ->
    for idx = 0 to n - 1 do
      fill_row idx
    done
  | Some pool -> Ttsv_parallel.Pool.parallel_for ~chunk:64 ~min_size:256 pool n fill_row);
  Sparse.of_csr ~nrows:n ~ncols:n ~row_ptr ~col_idx ~values

let assemble ?pool p =
  Obs_span.with_ ~name:"solver3.assemble" (fun () ->
      record_assembly (assemble_rows ?pool p))

let try_solve ?(tol = 1e-9) ?max_iter ?x0 ?on_iterate ?pool ?rungs ?budget p =
  let matrix = assemble ?pool p in
  let n = Sparse.rows matrix in
  let max_iter = match max_iter with Some m -> m | None -> Stdlib.max 4000 (10 * n) in
  (* Grid3.index: ix fastest, then iy, then iz — the multigrid rung's
     tensor-grid layout *)
  let g3 = p.Problem3.grid in
  let shape = [| Grid3.nx g3; Grid3.ny g3; Grid3.nz g3 |] in
  match
    Obs_span.with_ ~name:"solver3.solve" (fun () ->
        Robust.solve ~tol ~max_iter ?x0 ?on_iterate ?pool ?rungs ~shape ?budget matrix
          p.Problem3.source)
  with
  | Error f -> Error f
  | Ok (x, d) ->
    Ok
      {
        problem = p;
        temps = x;
        iterations = d.Diagnostics.iterations;
        residual = d.Diagnostics.residual;
        diagnostics = d;
      }

let solve ?tol ?max_iter ?x0 ?on_iterate ?pool ?rungs ?budget p =
  match try_solve ?tol ?max_iter ?x0 ?on_iterate ?pool ?rungs ?budget p with
  | Ok r -> r
  | Error f -> raise (Robust.Solve_failed f)

let max_rise r = Array.fold_left Float.max 0. r.temps

let find_cell faces x =
  let n = Array.length faces - 1 in
  if x <= faces.(0) then 0
  else if x >= faces.(n) then n - 1
  else begin
    let lo = ref 0 and hi = ref n in
    while !hi - !lo > 1 do
      let m = (!lo + !hi) / 2 in
      if faces.(m) <= x then lo := m else hi := m
    done;
    !lo
  end

let rise_at res ~x ~y ~z =
  let g = res.problem.Problem3.grid in
  let ix = find_cell g.Grid3.x_faces x in
  let iy = find_cell g.Grid3.y_faces y in
  let iz = find_cell g.Grid3.z_faces z in
  res.temps.(Grid3.index g ix iy iz)

let sink_heat_flow res =
  let p = res.problem in
  let g = p.Problem3.grid in
  let acc = ref 0. in
  for iy = 0 to Grid3.ny g - 1 do
    for ix = 0 to Grid3.nx g - 1 do
      let idx = Grid3.index g ix iy 0 in
      let a = Grid3.face_area_z g ix iy in
      let cond = a *. p.Problem3.conductivity.(idx) /. (0.5 *. Grid3.dz g 0) in
      acc := !acc +. (cond *. res.temps.(idx))
    done
  done;
  !acc

let energy_imbalance res =
  let src = Problem3.total_source res.problem in
  if src = 0. then 0. else Float.abs (sink_heat_flow res -. src) /. src

let top_field res =
  let g = res.problem.Problem3.grid in
  let nx = Grid3.nx g and ny = Grid3.ny g and nz = Grid3.nz g in
  Array.init (nx * ny) (fun i -> res.temps.(Grid3.index g (i mod nx) (i / nx) (nz - 1)))
