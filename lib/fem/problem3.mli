(** 3-D Cartesian heat-conduction problems — the paper's actual COMSOL
    geometry: a square unit cell with cylindrical TTSVs.

    Where the axisymmetric {!Problem} maps the square footprint to an
    area-equivalent cylinder around a single centred via, this builder
    keeps the square cell and places any number of vias at arbitrary
    (x, y) centres, sampling the filler/liner cylinders at cell centres
    (a staircase representation whose error vanishes with resolution).
    It exists to (a) quantify the cylinder-cell substitution documented
    in DESIGN.md and (b) solve Fig. 7's via {e clusters} with their true
    layout, as the paper's FEM did.

    Sources are deposited as in {!Problem}: device and crossed-ILD heat
    outside every via's outer radius, top-plane ILD heat everywhere; each
    heated slab is then normalized so its wattage matches the analytic
    {!Ttsv_geometry.Stack.heat_inputs} exactly, making Max ΔT comparisons
    between solvers and models meaningful at any staircase resolution. *)

type t = {
  grid : Grid3.t;
  conductivity : float array;  (** per cell, W/(m·K), indexed by {!Grid3.index} *)
  source : float array;  (** per cell, W *)
}

val make : grid:Grid3.t -> conductivity:float array -> source:float array -> t
(** Validated direct constructor (tests). *)

val of_stack :
  ?resolution:int ->
  ?via_centers:(float * float) list ->
  ?pool:Ttsv_parallel.Pool.t ->
  Ttsv_geometry.Stack.t ->
  t
(** [of_stack ?resolution ?via_centers stack] builds the square-cell
    problem.  The cell is [s × s] with [s = √footprint].  [via_centers]
    (metres, relative to the cell's corner) defaults to one via at the
    centre; every via uses the stack's TSV geometry and must lie inside
    the cell.  [resolution] scales both the lateral grid (24·resolution
    cells per side) and the axial {!Layers} meshing.  [pool] fills the
    conductivity/source fields per-chunk across a domain pool; the
    chunk-deterministic power reduction makes the pooled build bitwise
    identical to the sequential one. *)

val grid_centers_for_cluster : Ttsv_geometry.Stack.t -> int -> (float * float) list
(** [grid_centers_for_cluster stack n] lays the √n × √n regular array of
    via centres the Fig. 7 cluster experiment uses ([n] must be a perfect
    square; raises [Invalid_argument] otherwise). *)

val total_source : t -> float

val cell_count : t -> int
