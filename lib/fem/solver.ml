module Grid = Grid
module Sparse = Ttsv_numerics.Sparse
module Iterative = Ttsv_numerics.Iterative
module Robust = Ttsv_robust.Robust
module Diagnostics = Ttsv_robust.Diagnostics
module Validate = Ttsv_robust.Validate
module Obs_span = Ttsv_obs.Span
module Obs_metrics = Ttsv_obs.Metrics

let m_nnz = Obs_metrics.Gauge.make "assembly.nnz"
let m_cells = Obs_metrics.Gauge.make "grid.cells"

(* record assembled-system shape: gauges for the registry and, when a
   trace is open, a point event tied to the enclosing assembly span *)
let record_assembly matrix =
  if Ttsv_obs.Flags.enabled () then begin
    let nnz = Sparse.nnz matrix in
    Obs_metrics.Gauge.set m_nnz (float_of_int nnz);
    Obs_metrics.Gauge.set m_cells (float_of_int (Sparse.rows matrix));
    if Ttsv_obs.Flags.trace_on () then
      Ttsv_obs.Sink.metric ?span:(Obs_span.current ()) ~kind:"gauge" ~name:"assembly.nnz"
        (Ttsv_obs.Json.Int nnz)
  end;
  matrix

type result = {
  problem : Problem.t;
  temps : float array;
  iterations : int;
  residual : float;
  diagnostics : Diagnostics.t;
}

(* Series (harmonic) combination of the two half-cell conductances across an
   internal face of area [a]. *)
let face_conductance a d1 k1 d2 k2 = a /. ((d1 /. k1) +. (d2 /. k2))

(* Row-direct CSR assembly: each matrix row is built independently —
   neighbour columns in ascending order, the diagonal accumulated in a
   fixed (-z, -r, +r, +z, boundary, extra) order — so rows can be filled
   per-chunk across a domain pool and the pooled matrix is bitwise
   identical to the sequential one.  Face conductances are evaluated in a
   canonical (lower-index) orientation, so the two rows sharing a face
   store exactly opposite off-diagonal values. *)
let assemble_rows ?pool ?bottom_h ?extra_diagonal (p : Problem.t) =
  let g = p.Problem.grid in
  let nr = Grid.nr g and nz = Grid.nz g in
  let n = nr * nz in
  (match extra_diagonal with
  | Some d when Array.length d <> n ->
    invalid_arg "Solver.assemble: extra diagonal length mismatch"
  | Some _ | None -> ());
  (match bottom_h with
  | Some h when h <= 0. -> invalid_arg "Solver.solve: bottom_h must be positive"
  | Some _ | None -> ());
  let k ir iz = p.Problem.conductivity.(Grid.index g ir iz) in
  let cond_r ir iz =
    face_conductance (Grid.radial_face_area g ir iz)
      (0.5 *. Grid.dr g ir)
      (k ir iz)
      (0.5 *. Grid.dr g (ir + 1))
      (k (ir + 1) iz)
  in
  let cond_z ir iz =
    face_conductance (Grid.axial_face_area g ir)
      (0.5 *. Grid.dz g iz)
      (k ir iz)
      (0.5 *. Grid.dz g (iz + 1))
      (k ir (iz + 1))
  in
  (* bottom boundary: isothermal sink across the half cell, or a
     convective film in series with it *)
  let bottom_cond ir =
    let a = Grid.axial_face_area g ir in
    let half_cell = 0.5 *. Grid.dz g 0 /. (a *. k ir 0) in
    match bottom_h with
    | None -> 1. /. half_cell
    | Some h -> 1. /. (half_cell +. (1. /. (h *. a)))
  in
  let row_ptr = Array.make (n + 1) 0 in
  for idx = 0 to n - 1 do
    let ir = idx mod nr and iz = idx / nr in
    let nn =
      (if iz > 0 then 1 else 0)
      + (if ir > 0 then 1 else 0)
      + (if ir < nr - 1 then 1 else 0)
      + if iz < nz - 1 then 1 else 0
    in
    row_ptr.(idx + 1) <- nn + 1
  done;
  for i = 1 to n do
    row_ptr.(i) <- row_ptr.(i) + row_ptr.(i - 1)
  done;
  let col_idx = Array.make row_ptr.(n) 0 in
  let values = Array.make row_ptr.(n) 0. in
  let fill_row idx =
    let ir = idx mod nr and iz = idx / nr in
    let pos = ref row_ptr.(idx) in
    let diag = ref 0. in
    let off j c =
      col_idx.(!pos) <- j;
      values.(!pos) <- -.c;
      incr pos;
      diag := !diag +. c
    in
    if iz > 0 then off (idx - nr) (cond_z ir (iz - 1));
    if ir > 0 then off (idx - 1) (cond_r (ir - 1) iz);
    let dslot = !pos in
    col_idx.(dslot) <- idx;
    incr pos;
    if ir < nr - 1 then off (idx + 1) (cond_r ir iz);
    if iz < nz - 1 then off (idx + nr) (cond_z ir iz);
    if iz = 0 then diag := !diag +. bottom_cond ir;
    (match extra_diagonal with None -> () | Some d -> diag := !diag +. d.(idx));
    values.(dslot) <- !diag
  in
  (match pool with
  | None ->
    for idx = 0 to n - 1 do
      fill_row idx
    done
  | Some pool -> Ttsv_parallel.Pool.parallel_for ~chunk:64 ~min_size:256 pool n fill_row);
  Sparse.of_csr ~nrows:n ~ncols:n ~row_ptr ~col_idx ~values

let assemble ?pool ?bottom_h ?extra_diagonal p =
  Obs_span.with_ ~name:"solver.assemble" (fun () ->
      record_assembly (assemble_rows ?pool ?bottom_h ?extra_diagonal p))

(* Reject physically meaningless fields before assembling: a single NaN
   conductivity or source poisons the whole system. *)
let check_problem (p : Problem.t) =
  let bad name arr pred =
    match Array.exists (fun v -> not (pred v)) arr with
    | false -> []
    | true ->
      let i = ref 0 in
      Array.iteri (fun j v -> if not (pred v) && !i = 0 then i := j) arr;
      [ Printf.sprintf "%s contains invalid entries (first at cell %d)" name !i ]
  in
  bad "conductivity field" p.Problem.conductivity (fun k -> Float.is_finite k && k > 0.)
  @ bad "source field" p.Problem.source Float.is_finite

let invalid_input problems =
  {
    Robust.reason = Robust.Invalid_input problems;
    diagnostics = Diagnostics.empty;
    best = None;
    best_residual = Float.nan;
  }

let try_solve ?(tol = 1e-10) ?max_iter ?x0 ?bottom_h ?on_iterate ?pool ?rungs ?budget p =
  match check_problem p with
  | _ :: _ as problems -> Error (invalid_input problems)
  | [] -> (
    let matrix = assemble ?pool ?bottom_h p in
    let n = Sparse.rows matrix in
    let max_iter = match max_iter with Some m -> m | None -> Stdlib.max 2000 (40 * n) in
    (* declare the unknowns' tensor-grid layout (Grid.index: ir fastest)
       so the ladder can top itself with the geometric multigrid rung *)
    let g = p.Problem.grid in
    let shape = [| Grid.nr g; Grid.nz g |] in
    match
      Obs_span.with_ ~name:"solver.solve" (fun () ->
          Robust.solve ~tol ~max_iter ?x0 ?on_iterate ?pool ?rungs ~shape ?budget matrix
            p.Problem.source)
    with
    | Error f -> Error f
    | Ok (x, d) ->
      Ok
        {
          problem = p;
          temps = x;
          iterations = d.Diagnostics.iterations;
          residual = d.Diagnostics.residual;
          diagnostics = d;
        })

let solve ?tol ?max_iter ?x0 ?bottom_h ?on_iterate ?pool ?rungs ?budget p =
  match try_solve ?tol ?max_iter ?x0 ?bottom_h ?on_iterate ?pool ?rungs ?budget p with
  | Ok r -> r
  | Error f -> raise (Robust.Solve_failed f)

let max_rise r = Array.fold_left Float.max 0. r.temps

type transient = { times : float array; max_rises : float array; final : result }

let solve_transient ?(tol = 1e-10) ?bottom_h ?(power = fun _ -> 1.) ?pool ~materials ~dt
    ~steps p =
  if dt <= 0. then invalid_arg "Solver.solve_transient: dt must be positive";
  if steps < 1 then invalid_arg "Solver.solve_transient: steps must be >= 1";
  let n = Array.length p.Problem.conductivity in
  if Array.length materials <> n then
    invalid_arg "Solver.solve_transient: materials length mismatch";
  let module Material = Ttsv_physics.Material in
  let g = p.Problem.grid in
  let nr = Grid.nr g in
  let caps =
    Array.init n (fun i ->
        Grid.volume g (i mod nr) (i / nr)
        *. materials.(i).Material.volumetric_heat_capacity)
  in
  (* backward Euler: (G + C/dt) T_next = q(t_next) + (C/dt) T_now; the
     system matrix is assembled once and every step warm-starts CG from the
     previous instant *)
  let cdt = Array.map (fun c -> c /. dt) caps in
  let system = assemble ?pool ?bottom_h ~extra_diagonal:cdt p in
  let times = Array.make (steps + 1) 0. in
  let maxes = Array.make (steps + 1) 0. in
  let temps = ref (Array.make n 0.) in
  let total_iters = ref 0 in
  let last_diag = ref Diagnostics.empty in
  for m = 1 to steps do
    let time = float_of_int m *. dt in
    let scale = power time in
    let rhs =
      Array.init n (fun i -> (p.Problem.source.(i) *. scale) +. (cdt.(i) *. !temps.(i)))
    in
    let x, d =
      Robust.solve_exn ~tol ~max_iter:(Stdlib.max 2000 (40 * n)) ~x0:!temps ?pool
        ~shape:[| nr; Grid.nz g |] system rhs
    in
    temps := x;
    total_iters := !total_iters + d.Diagnostics.iterations;
    last_diag := d;
    times.(m) <- time;
    maxes.(m) <- Array.fold_left Float.max 0. !temps
  done;
  {
    times;
    max_rises = maxes;
    final =
      {
        problem = p;
        temps = !temps;
        iterations = !total_iters;
        residual = !last_diag.Diagnostics.residual;
        diagnostics = !last_diag;
      };
  }

type picard_failure = { sweeps : int; damping : float; change : float; last : result }

exception Picard_failed of picard_failure

let default_dampings = [ 1.; 0.5; 0.25 ]

let solve_nonlinear ?tol ?(picard_tol = 1e-4) ?(max_picard = 50) ?(dampings = default_dampings)
    ~materials ~sink_temperature_k p =
  let n = Array.length p.Problem.conductivity in
  if Array.length materials <> n then
    invalid_arg "Solver.solve_nonlinear: materials length mismatch";
  if dampings = [] then invalid_arg "Solver.solve_nonlinear: dampings must be nonempty";
  List.iter
    (fun d ->
      if not (Float.is_finite d) || d <= 0. || d > 1. then
        invalid_arg "Solver.solve_nonlinear: damping factors must lie in (0, 1]")
    dampings;
  let module Material = Ttsv_physics.Material in
  (* One Picard attempt at a fixed damping: each sweep relaxes the
     conductivity field toward k(T of the last solve) by [theta]. *)
  let attempt theta =
    let rec picard sweep conductivity prev_max =
      let problem =
        if sweep = 1 then p
        else Problem.make ~grid:p.Problem.grid ~conductivity ~source:p.Problem.source
      in
      let res = solve ?tol problem in
      let m = max_rise res in
      let change = Float.abs (m -. prev_max) /. Float.max m 1e-12 in
      if Float.abs (m -. prev_max) <= picard_tol *. Float.max m 1e-12 then Ok (res, sweep)
      else if sweep >= max_picard then Error (res, change, sweep)
      else begin
        let next =
          Array.init n (fun i ->
              let target =
                Material.k_at materials.(i) (sink_temperature_k +. res.temps.(i))
              in
              ((1. -. theta) *. conductivity.(i)) +. (theta *. target))
        in
        picard (sweep + 1) next m
      end
    in
    picard 1 (Array.copy p.Problem.conductivity) Float.neg_infinity
  in
  let rec escalate = function
    | [] -> assert false
    | theta :: rest -> (
      match attempt theta with
      | Ok r -> Ok r
      | Error (last, change, sweeps) ->
        if rest = [] then Error { sweeps; damping = theta; change; last } else escalate rest)
  in
  escalate dampings

let solve_nonlinear_exn ?tol ?picard_tol ?max_picard ?dampings ~materials ~sink_temperature_k
    p =
  match
    solve_nonlinear ?tol ?picard_tol ?max_picard ?dampings ~materials ~sink_temperature_k p
  with
  | Ok r -> r
  | Error f -> raise (Picard_failed f)

let find_cell faces x =
  let n = Array.length faces - 1 in
  if x <= faces.(0) then 0
  else if x >= faces.(n) then n - 1
  else begin
    let lo = ref 0 and hi = ref n in
    while !hi - !lo > 1 do
      let m = (!lo + !hi) / 2 in
      if faces.(m) <= x then lo := m else hi := m
    done;
    !lo
  end

let rise_at res ~r ~z =
  let g = res.problem.Problem.grid in
  let ir = find_cell g.Grid.r_faces r and iz = find_cell g.Grid.z_faces z in
  res.temps.(Grid.index g ir iz)

let top_rise_profile res =
  let g = res.problem.Problem.grid in
  let nz = Grid.nz g in
  Array.init (Grid.nr g) (fun ir -> (Grid.r_center g ir, res.temps.(Grid.index g ir (nz - 1))))

let axis_profile res =
  let g = res.problem.Problem.grid in
  Array.init (Grid.nz g) (fun iz -> (Grid.z_center g iz, res.temps.(Grid.index g 0 iz)))

let sink_heat_flow res =
  let p = res.problem in
  let g = p.Problem.grid in
  let acc = ref 0. in
  for ir = 0 to Grid.nr g - 1 do
    let idx = Grid.index g ir 0 in
    let a = Grid.axial_face_area g ir in
    let cond = a *. p.Problem.conductivity.(idx) /. (0.5 *. Grid.dz g 0) in
    acc := !acc +. (cond *. res.temps.(idx))
  done;
  !acc

let energy_imbalance res =
  let src = Problem.total_source res.problem in
  if src = 0. then 0. else Float.abs (sink_heat_flow res -. src) /. src
