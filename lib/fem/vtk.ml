let to_channel (res : Solver.result) oc =
  let p = res.Solver.problem in
  let g = p.Problem.grid in
  let nr = Grid.nr g and nz = Grid.nz g in
  let pr = Printf.fprintf in
  pr oc "# vtk DataFile Version 2.0\n";
  pr oc "TTSV finite-volume solution (r-z axisymmetric section)\n";
  pr oc "ASCII\n";
  pr oc "DATASET STRUCTURED_GRID\n";
  pr oc "DIMENSIONS %d %d 1\n" (nr + 1) (nz + 1);
  pr oc "POINTS %d double\n" ((nr + 1) * (nz + 1));
  for iz = 0 to nz do
    for ir = 0 to nr do
      pr oc "%.9e 0.0 %.9e\n" g.Grid.r_faces.(ir) g.Grid.z_faces.(iz)
    done
  done;
  pr oc "CELL_DATA %d\n" (nr * nz);
  pr oc "SCALARS temperature_rise double 1\n";
  pr oc "LOOKUP_TABLE default\n";
  Array.iter (fun t -> pr oc "%.9e\n" t) res.Solver.temps;
  pr oc "SCALARS conductivity double 1\n";
  pr oc "LOOKUP_TABLE default\n";
  Array.iter (fun k -> pr oc "%.9e\n" k) p.Problem.conductivity

let write res path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel res oc)
