module Stack = Ttsv_geometry.Stack
module Plane = Ttsv_geometry.Plane
module Tsv = Ttsv_geometry.Tsv
module Material = Ttsv_physics.Material

type t = { grid : Grid.t; conductivity : float array; source : float array }

let make ~grid ~conductivity ~source =
  let n = Grid.cells grid in
  if Array.length conductivity <> n then invalid_arg "Problem.make: conductivity length mismatch";
  if Array.length source <> n then invalid_arg "Problem.make: source length mismatch";
  Array.iter
    (fun k -> if k <= 0. || not (Float.is_finite k) then
        invalid_arg "Problem.make: conductivities must be positive and finite")
    conductivity;
  { grid; conductivity = Array.copy conductivity; source = Array.copy source }

let total_source p = Array.fold_left ( +. ) 0. p.source
let cell_count p = Grid.cells p.grid

(* Shared discretization: the graded r-z grid, per-row layers, and the
   per-cell material classifier. *)
let discretize resolution stack =
  if resolution < 1 then invalid_arg "Problem.of_stack: resolution must be >= 1";
  let tsv = stack.Stack.tsv in
  let r_in = tsv.Tsv.radius and r_out = Tsv.outer_radius tsv in
  let r0 = sqrt (stack.Stack.footprint /. Float.pi) in
  (* radial faces: filler, liner, geometrically graded outside *)
  let n_fill = 3 * resolution and n_liner = 2 * resolution and n_outer = 10 * resolution in
  let r_faces =
    Array.of_list
      ((0. :: Grid.refine_interval 0. r_in n_fill)
      @ (r_in :: Grid.refine_interval r_in r_out n_liner)
      @ (r_out :: Grid.geometric_interval r_out r0 n_outer 1.25)
      @ [ r0 ])
  in
  let layers = Layers.of_stack ~resolution stack in
  let grid = Grid.make ~r_faces ~z_faces:(Layers.z_faces layers) in
  let row_layer = Layers.row_layers layers in
  assert (Array.length row_layer = Grid.nz grid);
  let material_at ir iz =
    let l = row_layer.(iz) in
    let rc = Grid.r_center grid ir in
    if l.Layers.tsv && rc < r_in then tsv.Tsv.filler
    else if l.Layers.tsv && rc < r_out then tsv.Tsv.liner
    else l.Layers.material
  in
  (grid, row_layer, material_at, r_out)

let of_stack ?(resolution = 1) stack =
  let grid, row_layer, material_at, r_out = discretize resolution stack in
  let nr = Grid.nr grid and nz = Grid.nz grid in
  let conductivity = Array.make (nr * nz) 0. in
  let source = Array.make (nr * nz) 0. in
  for iz = 0 to nz - 1 do
    let l = row_layer.(iz) in
    for ir = 0 to nr - 1 do
      let rc = Grid.r_center grid ir in
      let idx = Grid.index grid ir iz in
      conductivity.(idx) <- (material_at ir iz).Material.conductivity;
      let heated = if l.Layers.annular_source then rc > r_out else true in
      if heated && l.Layers.source_density > 0. then
        source.(idx) <- l.Layers.source_density *. Grid.volume grid ir iz
    done
  done;
  { grid; conductivity; source }

let materials_of_stack ?(resolution = 1) stack =
  let grid, _, material_at, _ = discretize resolution stack in
  let nr = Grid.nr grid in
  Array.init (Grid.cells grid) (fun idx -> material_at (idx mod nr) (idx / nr))

let uniform_column ~layers ~radius ~cells_per_layer ~top_flux =
  if layers = [] then invalid_arg "Problem.uniform_column: no layers";
  if cells_per_layer < 1 then invalid_arg "Problem.uniform_column: cells_per_layer must be >= 1";
  let r_faces = Array.of_list ((0. :: Grid.refine_interval 0. radius 4) @ [ radius ]) in
  let z_faces =
    let faces = ref [ 0. ] and z = ref 0. in
    List.iter
      (fun (th, _) ->
        let z1 = !z +. th in
        faces := List.rev_append (Grid.refine_interval !z z1 cells_per_layer) !faces;
        faces := z1 :: !faces;
        z := z1)
      layers;
    Array.of_list (List.rev !faces)
  in
  let grid = Grid.make ~r_faces ~z_faces in
  let nr = Grid.nr grid and nz = Grid.nz grid in
  let conductivity = Array.make (nr * nz) 1. in
  let source = Array.make (nr * nz) 0. in
  List.iteri
    (fun li (_, k) ->
      for s = 0 to cells_per_layer - 1 do
        let iz = (li * cells_per_layer) + s in
        for ir = 0 to nr - 1 do
          conductivity.(Grid.index grid ir iz) <- k
        done
      done)
    layers;
  (* spread the flux over the top row, proportionally to face area *)
  let total_area = Float.pi *. radius *. radius in
  for ir = 0 to nr - 1 do
    let idx = Grid.index grid ir (nz - 1) in
    source.(idx) <- top_flux *. Grid.axial_face_area grid ir /. total_area
  done;
  { grid; conductivity; source }
