(** Axial (z) slicing of a stack into homogeneous layers.

    Both finite-volume discretizations — the axisymmetric r–z solver and
    the 3-D Cartesian solver — mesh the vertical direction the same way:
    every material interface, the device layer, and the TSV tip land
    exactly on a face.  This module owns that decomposition. *)

type t = {
  thickness : float;  (** layer extent, m *)
  material : Ttsv_physics.Material.t;  (** base material away from the TSV *)
  tsv : bool;  (** whether the TTSV crosses this z-range *)
  source_density : float;  (** volumetric heat, W/m³ *)
  annular_source : bool;
      (** when true the source exists only outside the TTSV's outer radius
          (device keep-out and crossed ILDs); when false it covers the
          whole footprint (the top plane's ILD) *)
  ncells : int;  (** axial cells this layer receives at the chosen resolution *)
}

val cells_for : int -> float -> int
(** [cells_for resolution thickness] is the meshing rule: roughly one
    cell per 8 µm/resolution, clamped to [2, 40·resolution]. *)

val of_stack : resolution:int -> Ttsv_geometry.Stack.t -> t list
(** Bottom-to-top slicing of the stack.  Within each plane: bonding layer
    (if any), substrate below the device layer, device layer, ILD; the
    first plane's substrate additionally splits at the TSV tip. *)

val z_faces : t list -> float array
(** The axial face positions the slicing induces (each layer subdivided
    into [ncells] equal cells), starting at 0. *)

val row_layers : t list -> t array
(** One entry per axial cell row, bottom to top — the lookup the
    assemblers use. *)
