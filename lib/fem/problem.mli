(** Discretized axisymmetric heat-conduction problems.

    A problem is a grid plus per-cell conductivity (W/(m·K)) and total
    source (W).  {!of_stack} builds the paper's validation setup: the
    square unit cell is mapped to the area-equivalent cylinder
    (R₀ = √(A₀/π)) with the TTSV on the axis; every material interface
    (filler/liner/silicon radially; substrate, device layer, ILD and
    bond axially, plus the TSV tip) lands exactly on a grid face, so no
    material is smeared.  Device and ILD heat is deposited outside the
    TTSV's outer radius, matching {!Ttsv_geometry.Stack.heat_inputs}
    wattage exactly.

    The bottom boundary (z = 0) is the isothermal heat sink; all other
    boundaries are adiabatic — the paper's COMSOL configuration. *)

type t = {
  grid : Grid.t;
  conductivity : float array;  (** per cell, W/(m·K), indexed by {!Grid.index} *)
  source : float array;  (** per cell, W *)
}

val make : grid:Grid.t -> conductivity:float array -> source:float array -> t
(** [make ~grid ~conductivity ~source] validates lengths and positivity
    of conductivities; used directly by tests to set up problems with
    known analytic solutions. *)

val of_stack : ?resolution:int -> Ttsv_geometry.Stack.t -> t
(** [of_stack ?resolution stack] builds the unit-cell problem.
    [resolution] (default 1) scales the cell counts in every direction;
    2 roughly quadruples the cell count (mesh-convergence ablations). *)

val materials_of_stack : ?resolution:int -> Ttsv_geometry.Stack.t -> Ttsv_physics.Material.t array
(** [materials_of_stack ?resolution stack] is the per-cell material map of
    the grid {!of_stack} builds with the same arguments (same indexing);
    the nonlinear solver uses it to re-evaluate k(T) per Picard sweep. *)

val total_source : t -> float
(** Sum of all cell sources, W. *)

val cell_count : t -> int

val uniform_column :
  layers:(float * float) list -> radius:float -> cells_per_layer:int -> top_flux:float -> t
(** [uniform_column ~layers ~radius ~cells_per_layer ~top_flux] builds a
    radially uniform stack of slabs [(thickness, conductivity)] heated
    with [top_flux] watts spread over the top row of cells — the
    configuration with the textbook series-resistance solution, used as
    the solver's analytic oracle. *)
