(** Finite-volume solution of an axisymmetric conduction problem.

    Conservative two-point flux discretization: the conductance of each
    internal face combines the two adjacent cells' conductivities in
    series over their centre-to-face distances (the harmonic-mean rule,
    exact for piecewise-constant k in 1-D, which is how every material
    interface in this library is meshed).  The bottom boundary is an
    isothermal sink at rise 0; all other boundaries are adiabatic.

    The assembled conductance matrix is solved through the
    {!Ttsv_robust.Robust} escalation ladder (CG, then BiCGStab, then a
    direct fallback); every result carries the ladder's
    {!Ttsv_robust.Diagnostics.t} and every failure is a typed value or
    typed exception — never a bare [Failure]. *)

type result = {
  problem : Problem.t;
  temps : float array;  (** per-cell temperature rise above the sink, K *)
  iterations : int;  (** total linear iterations used *)
  residual : float;  (** final relative residual *)
  diagnostics : Ttsv_robust.Diagnostics.t;  (** which solver rungs fired and why *)
}

val assemble :
  ?pool:Ttsv_parallel.Pool.t ->
  ?bottom_h:float ->
  ?extra_diagonal:float array ->
  Problem.t ->
  Ttsv_numerics.Sparse.t
(** [assemble p] builds the finite-volume conductance matrix in CSR form,
    row by row.  [extra_diagonal], when given, is added to the matrix
    diagonal (used by the transient stepper for the C/Δt term;
    length-checked).  [pool] fills disjoint row chunks across a domain
    pool; chunk boundaries and per-row evaluation order are fixed, so the
    pooled matrix is bitwise identical to the sequential one. *)

val try_solve :
  ?tol:float ->
  ?max_iter:int ->
  ?x0:float array ->
  ?bottom_h:float ->
  ?on_iterate:(int -> float -> unit) ->
  ?pool:Ttsv_parallel.Pool.t ->
  ?rungs:Ttsv_robust.Diagnostics.rung list ->
  ?budget:Ttsv_parallel.Budget.t ->
  Problem.t ->
  (result, Ttsv_robust.Robust.failure) Stdlib.result
(** [try_solve p] assembles and solves, escalating through the
    {!Ttsv_robust.Robust} ladder.  [tol] defaults to [1e-10].
    [bottom_h], when given, replaces the isothermal sink with a
    convective boundary of that heat-transfer coefficient (W/(m²·K)) to
    a 0-rise coolant — the package-level boundary §II mentions; rises
    are then above the coolant, not the die surface.  [on_iterate]
    observes every linear iteration.  Non-finite or non-positive
    conductivities and non-finite sources are rejected up front as
    [Invalid_input].  [x0] warm-starts the iterative rungs from a
    previous nearby solution (length-checked by the ladder); solving a
    perturbed geometry from a neighbour's field typically converges in a
    fraction of the cold-start iterations, which is what the service
    layer's solution cache exploits.  [pool] parallelizes assembly and
    the iterative rungs; results are bitwise identical to a sequential
    solve.
    [rungs] overrides the escalation ladder (e.g. to pin a single
    preconditioner, as the CLI's [--precond] flag does).  [budget]
    bounds the ladder's wall-clock/work (the CLI's [--deadline]): when
    it expires the result is an [Error] with reason [Deadline_exceeded]
    carrying the best iterate reached — never a hang. *)

val solve :
  ?tol:float ->
  ?max_iter:int ->
  ?x0:float array ->
  ?bottom_h:float ->
  ?on_iterate:(int -> float -> unit) ->
  ?pool:Ttsv_parallel.Pool.t ->
  ?rungs:Ttsv_robust.Diagnostics.rung list ->
  ?budget:Ttsv_parallel.Budget.t ->
  Problem.t ->
  result
(** Like {!try_solve} but raises {!Ttsv_robust.Robust.Solve_failed}
    (carrying the full diagnostics) when every rung fails. *)

type transient = {
  times : float array;  (** sample instants, s *)
  max_rises : float array;  (** Max ΔT at each instant, K *)
  final : result;  (** the state after the last step *)
}

val solve_transient :
  ?tol:float ->
  ?bottom_h:float ->
  ?power:(float -> float) ->
  ?pool:Ttsv_parallel.Pool.t ->
  materials:Ttsv_physics.Material.t array ->
  dt:float ->
  steps:int ->
  Problem.t ->
  transient
(** [solve_transient ~materials ~dt ~steps p] integrates
    C·dT/dt + G·T = q(t) by backward Euler from a uniform 0-rise start:
    the field-solver counterpart of {!Ttsv_core.Transient}, used to
    validate its lumped capacitances.  Cell capacities are volume ×
    the material's volumetric heat capacity ([materials] from
    {!Problem.materials_of_stack}).  [power] scales the source over
    time (default constant 1).  Each step solves (G + C/Δt) through the
    escalation ladder, warm-started from the previous instant.  Raises
    {!Ttsv_robust.Robust.Solve_failed} when a step cannot be solved. *)

type picard_failure = {
  sweeps : int;  (** sweeps spent in the last (most damped) attempt *)
  damping : float;  (** the damping factor of that attempt *)
  change : float;  (** last relative change of the maximum rise *)
  last : result;  (** the last iterate, residual attached *)
}
(** Everything known when the Picard iteration gives up. *)

exception Picard_failed of picard_failure

val solve_nonlinear :
  ?tol:float ->
  ?picard_tol:float ->
  ?max_picard:int ->
  ?dampings:float list ->
  materials:Ttsv_physics.Material.t array ->
  sink_temperature_k:float ->
  Problem.t ->
  (result * int, picard_failure) Stdlib.result
(** [solve_nonlinear ~materials ~sink_temperature_k p] solves with
    temperature-dependent conductivities by damped Picard iteration:
    solve with the current k field, relax every cell's conductivity
    toward {!Ttsv_physics.Material.k_at} at its absolute temperature
    ([sink_temperature_k] + rise) by the current damping factor, repeat
    until the maximum rise changes by less than [picard_tol] (default
    1e-4 relative; [max_picard] defaults to 50 sweeps per attempt).
    Attempts run through [dampings] (default [[1.; 0.5; 0.25]]): plain
    Picard first, then progressively damped retries before giving up.
    Returns [Ok (result, sweeps)] with the sweeps of the successful
    attempt, or [Error] carrying the last iterate and residual.
    [materials] comes from {!Problem.materials_of_stack}
    (length-checked, [Invalid_argument]).  With temperature-independent
    materials this returns after the second sweep with the linear
    solution. *)

val solve_nonlinear_exn :
  ?tol:float ->
  ?picard_tol:float ->
  ?max_picard:int ->
  ?dampings:float list ->
  materials:Ttsv_physics.Material.t array ->
  sink_temperature_k:float ->
  Problem.t ->
  result * int
(** Like {!solve_nonlinear} but raises {!Picard_failed}. *)

val max_rise : result -> float
(** Largest cell temperature rise — the paper's Max ΔT. *)

val rise_at : result -> r:float -> z:float -> float
(** [rise_at res ~r ~z] is the rise of the cell containing the point
    (nearest cell when outside the domain). *)

val top_rise_profile : result -> (float * float) array
(** (r, ΔT) along the top row of cells. *)

val axis_profile : result -> (float * float) array
(** (z, ΔT) along the innermost (axis) column of cells. *)

val sink_heat_flow : result -> float
(** Heat leaving through the bottom boundary, W (isothermal-boundary
    formula; results obtained with [bottom_h] report the half-cell
    conduction only).  Energy conservation demands this equal
    {!Problem.total_source} for isothermal solves; the tests assert the
    relative imbalance is below 1e-6. *)

val energy_imbalance : result -> float
(** |sink flow − total source| / total source (0 when there is no
    source). *)
