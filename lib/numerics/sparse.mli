(** Sparse matrices in compressed-sparse-row (CSR) form.

    Assembly happens through a mutable {!builder} of (row, col, value)
    triplets — duplicate entries are summed, which matches the stamping
    discipline of finite-volume and network assembly — and is then frozen
    into an immutable CSR matrix for fast products. *)

type t
(** An immutable CSR matrix. *)

type builder
(** A mutable triplet accumulator. *)

val builder : ?hint:int -> int -> int -> builder
(** [builder ?hint rows cols] creates an empty accumulator; [hint] is the
    expected number of nonzeros. *)

val add : builder -> int -> int -> float -> unit
(** [add b i j x] accumulates [x] into entry [(i, j)].  Raises
    [Invalid_argument] when the indices are out of range. *)

val finalize : builder -> t
(** [finalize b] sums duplicates and freezes the matrix.  Entries that sum
    to exactly [0.] are kept (structural nonzeros), which keeps symbolic
    structure stable across parameter sweeps. *)

val rows : t -> int
val cols : t -> int

val nnz : t -> int
(** Number of stored entries. *)

val of_csr :
  nrows:int ->
  ncols:int ->
  row_ptr:int array ->
  col_idx:int array ->
  values:float array ->
  t
(** [of_csr ~nrows ~ncols ~row_ptr ~col_idx ~values] adopts pre-built
    CSR arrays (no copy) — the fast path for assemblers that construct
    rows directly, e.g. the chunked FEM assembly.  Validates monotone
    [row_ptr] and strictly increasing in-range columns per row; raises
    [Invalid_argument] otherwise. *)

val mat_vec : t -> Vec.t -> Vec.t
(** [mat_vec m x] is the product [m * x]. *)

val mul : ?pool:Ttsv_parallel.Pool.t -> t -> Vec.t -> Vec.t
(** Pool-aware {!mat_vec}: rows are computed across the pool in chunks.
    Each row's accumulation order is unchanged and rows land in disjoint
    slots, so the result is bitwise identical to [mat_vec m x] for any
    domain count. *)

val diagonal : t -> Vec.t
(** [diagonal m] extracts the main diagonal (zeros where absent). *)

val csr : t -> int array * int array * float array
(** [csr m] is [(row_ptr, col_idx, values)] — the internal CSR arrays,
    with columns sorted strictly increasing within each row.  They are
    {e the} backing store, not a copy: treat them as read-only.  Used by
    factorizations ({!Precond}) that need O(nnz) row traversal without
    closure allocation per entry. *)

val get : t -> int -> int -> float
(** [get m i j] is the stored value at [(i, j)], or [0.] if absent.
    O(row nnz). *)

val iter_row : t -> int -> (int -> float -> unit) -> unit
(** [iter_row m i f] applies [f col value] to every stored entry of row
    [i] in ascending column order.  O(row nnz) — the building block for
    sweeps and scans that must not probe all [n] columns. *)

val bandwidth : t -> int
(** [bandwidth m] is the half-bandwidth [max |i - j|] over stored
    entries (0 for a diagonal or empty matrix). *)

val all_finite : t -> bool
(** [all_finite m] is [true] when no stored entry is NaN or infinite. *)

val to_dense : t -> Dense.t
(** Expands to dense form (testing/debugging only). *)

val of_dense : ?drop_tol:float -> Dense.t -> t
(** [of_dense ?drop_tol m] converts, dropping entries with absolute value
    [<= drop_tol] (default [0.], i.e. keep all nonzeros). *)

val is_symmetric : ?tol:float -> t -> bool
(** Structural + numeric symmetry check used by the CG preconditions. *)

val transpose : t -> t
