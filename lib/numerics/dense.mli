(** Dense matrices and direct linear solvers.

    Matrices are stored row-major.  The factorization behind {!solve} is LU
    with partial pivoting, which is robust for the small, well-conditioned
    conductance matrices produced by the lumped thermal models.  Matrices of
    order up to a few thousand are practical; larger systems should use
    {!Sparse} with {!Cg}. *)

type t
(** A mutable [rows x cols] matrix of floats. *)

exception Singular
(** Raised by factorization and solve routines when a pivot underflows,
    i.e. the matrix is (numerically) singular. *)

val create : int -> int -> t
(** [create rows cols] is a zero matrix. *)

val identity : int -> t
(** [identity n] is the [n x n] identity. *)

val of_arrays : float array array -> t
(** [of_arrays a] copies a row-major array-of-rows.  All rows must have the
    same length. *)

val to_arrays : t -> float array array
(** [to_arrays m] is a fresh row-major copy. *)

val init : int -> int -> (int -> int -> float) -> t
(** [init rows cols f] fills entry [(i, j)] with [f i j]. *)

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> float
(** [get m i j] is the entry at row [i], column [j]. *)

val set : t -> int -> int -> float -> unit
(** [set m i j x] writes entry [(i, j)]. *)

val add_to : t -> int -> int -> float -> unit
(** [add_to m i j x] accumulates [x] into entry [(i, j)]; the fundamental
    stamping operation for assembling conductance matrices. *)

val copy : t -> t

val transpose : t -> t

val mat_vec : t -> Vec.t -> Vec.t
(** [mat_vec m x] is the product [m * x]. *)

val mat_mul : t -> t -> t
(** [mat_mul a b] is the product [a * b]. *)

val scale : float -> t -> t

val add : t -> t -> t

val sub : t -> t -> t

type lu
(** An LU factorization with its pivot permutation, reusable across multiple
    right-hand sides. *)

val lu_factor : t -> lu
(** [lu_factor m] factors square [m].  Raises {!Singular} if a pivot is
    smaller than [1e-300] in absolute value.  [m] is not modified. *)

val lu_solve : lu -> Vec.t -> Vec.t
(** [lu_solve f b] solves [A x = b] given [f = lu_factor A]. *)

val solve : t -> Vec.t -> Vec.t
(** [solve a b] factors and solves in one call. *)

val solve_many : t -> Vec.t list -> Vec.t list
(** [solve_many a bs] solves against several right-hand sides reusing one
    factorization. *)

val det : t -> float
(** [det m] is the determinant (via LU; 0. if singular). *)

val inverse : t -> t
(** [inverse m] is the matrix inverse.  Raises {!Singular}. *)

val approx_equal : ?rtol:float -> ?atol:float -> t -> t -> bool
(** Elementwise closeness with the same semantics as {!Vec.approx_equal}. *)

val is_symmetric : ?tol:float -> t -> bool
(** [is_symmetric ?tol m] checks [|m(i,j) - m(j,i)| <= tol * max_abs m].
    Default [tol = 1e-10]. *)

val pp : Format.formatter -> t -> unit
(** Prints the matrix row by row with 6 significant digits. *)
