type t = float array

let create n x = Array.make n x
let zeros n = create n 0.
let init = Array.init
let copy = Array.copy
let dim = Array.length
let get (v : t) i = v.(i)
let set (v : t) i x = v.(i) <- x
let of_list = Array.of_list
let to_list = Array.to_list

let check_same_dim name x y =
  if Array.length x <> Array.length y then
    invalid_arg (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name (Array.length x) (Array.length y))

let dot x y =
  check_same_dim "dot" x y;
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let norm2 x = sqrt (dot x x)

module Pool = Ttsv_parallel.Pool

(* Chunk size of the deterministic reductions: fixed, never derived from
   the pool, so pooled and sequential runs fold the identical partials. *)
let reduce_chunk = 2048

let partial_dot (x : t) (y : t) lo hi =
  let acc = ref 0. in
  for i = lo to hi - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let pdot ?pool x y =
  check_same_dim "pdot" x y;
  Pool.map_reduce ~chunk:reduce_chunk
    (Option.value pool ~default:Pool.seq)
    ~n:(Array.length x)
    ~map:(fun ~lo ~hi -> partial_dot x y lo hi)
    ~reduce:( +. ) ~init:0.

let pnorm2 ?pool x = sqrt (pdot ?pool x x)

let paxpy ?pool a x y =
  check_same_dim "paxpy" x y;
  Pool.for_chunks ~chunk:reduce_chunk
    (Option.value pool ~default:Pool.seq)
    (Array.length x)
    (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        y.(i) <- (a *. x.(i)) +. y.(i)
      done)

(* Fused CG update kernels: one pass over the index space instead of
   two, one pool dispatch instead of two.  Element-wise (no reduction),
   so pooled and sequential results are bitwise identical. *)

let paxpy2 ?pool a p q x r =
  check_same_dim "paxpy2" p x;
  check_same_dim "paxpy2" q r;
  check_same_dim "paxpy2" p q;
  Pool.for_chunks ~chunk:reduce_chunk
    (Option.value pool ~default:Pool.seq)
    (Array.length x)
    (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        x.(i) <- (a *. p.(i)) +. x.(i);
        r.(i) <- r.(i) -. (a *. q.(i))
      done)

let pxpby ?pool z b p =
  check_same_dim "pxpby" z p;
  Pool.for_chunks ~chunk:reduce_chunk
    (Option.value pool ~default:Pool.seq)
    (Array.length p)
    (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        p.(i) <- z.(i) +. (b *. p.(i))
      done)

let norm_inf x =
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    let a = Float.abs x.(i) in
    if a > !acc then acc := a
  done;
  !acc

let norm1 x =
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. Float.abs x.(i)
  done;
  !acc

let add x y =
  check_same_dim "add" x y;
  Array.mapi (fun i xi -> xi +. y.(i)) x

let sub x y =
  check_same_dim "sub" x y;
  Array.mapi (fun i xi -> xi -. y.(i)) x

let scale a x = Array.map (fun xi -> a *. xi) x

let axpy a x y =
  check_same_dim "axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

let scale_in_place a x =
  for i = 0 to Array.length x - 1 do
    x.(i) <- a *. x.(i)
  done

let map = Array.map

let map2 f x y =
  check_same_dim "map2" x y;
  Array.mapi (fun i xi -> f xi y.(i)) x

let sum x =
  let acc = ref 0. in
  Array.iter (fun xi -> acc := !acc +. xi) x;
  !acc

let nonempty name x =
  if Array.length x = 0 then invalid_arg ("Vec." ^ name ^ ": empty vector")

let max_elt x =
  nonempty "max_elt" x;
  Array.fold_left Float.max x.(0) x

let min_elt x =
  nonempty "min_elt" x;
  Array.fold_left Float.min x.(0) x

let argmax x =
  nonempty "argmax" x;
  let best = ref 0 in
  for i = 1 to Array.length x - 1 do
    if x.(i) > x.(!best) then best := i
  done;
  !best

let mean x =
  nonempty "mean" x;
  sum x /. float_of_int (Array.length x)

let approx_equal ?(rtol = 1e-9) ?(atol = 1e-12) x y =
  Array.length x = Array.length y
  &&
  let ok = ref true in
  for i = 0 to Array.length x - 1 do
    if Float.abs (x.(i) -. y.(i)) > atol +. (rtol *. Float.abs y.(i)) then ok := false
  done;
  !ok

let linspace a b n =
  if n < 2 then invalid_arg "Vec.linspace: need n >= 2";
  let h = (b -. a) /. float_of_int (n - 1) in
  init n (fun i -> a +. (h *. float_of_int i))

let pp ppf v =
  Format.fprintf ppf "[@[";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf ppf ";@ ";
      Format.fprintf ppf "%.6g" x)
    v;
  Format.fprintf ppf "@]]"
