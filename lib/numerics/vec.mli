(** Dense vectors of floats.

    A vector is a plain [float array]; this module gathers the numerical
    primitives the rest of the library needs (BLAS level-1 style operations,
    norms, elementwise maps, comparisons with tolerances).  All binary
    operations require equal lengths and raise [Invalid_argument]
    otherwise. *)

type t = float array

val create : int -> float -> t
(** [create n x] is a fresh vector of length [n] filled with [x]. *)

val zeros : int -> t
(** [zeros n] is [create n 0.]. *)

val init : int -> (int -> float) -> t
(** [init n f] is [[| f 0; ...; f (n-1) |]]. *)

val copy : t -> t
(** [copy v] is a fresh copy of [v]. *)

val dim : t -> int
(** [dim v] is the length of [v]. *)

val get : t -> int -> float
(** [get v i] is [v.(i)]. *)

val set : t -> int -> float -> unit
(** [set v i x] assigns [v.(i) <- x]. *)

val of_list : float list -> t
(** [of_list xs] converts a list to a vector. *)

val to_list : t -> float list
(** [to_list v] converts a vector to a list. *)

val dot : t -> t -> float
(** [dot x y] is the inner product {%html:Σ%}[x.(i) *. y.(i)]. *)

val pdot : ?pool:Ttsv_parallel.Pool.t -> t -> t -> float
(** Pool-aware inner product.  The summation is chunked with a fixed
    chunk size independent of the pool, and the per-chunk partials are
    folded in chunk order — so the result is {e identical} for any
    domain count, including [?pool:None].  It differs from {!dot} only
    by that reassociation (≲ 1e-15 relative on well-scaled data). *)

val pnorm2 : ?pool:Ttsv_parallel.Pool.t -> t -> float
(** [sqrt (pdot ?pool x x)] — same determinism contract as {!pdot}. *)

val norm2 : t -> float
(** [norm2 x] is the Euclidean norm of [x]. *)

val norm_inf : t -> float
(** [norm_inf x] is the maximum absolute entry of [x]. *)

val norm1 : t -> float
(** [norm1 x] is the sum of absolute entries of [x]. *)

val add : t -> t -> t
(** [add x y] is the elementwise sum. *)

val sub : t -> t -> t
(** [sub x y] is the elementwise difference [x - y]. *)

val scale : float -> t -> t
(** [scale a x] is [a *. x] elementwise. *)

val axpy : float -> t -> t -> unit
(** [axpy a x y] performs [y <- a*x + y] in place. *)

val paxpy : ?pool:Ttsv_parallel.Pool.t -> float -> t -> t -> unit
(** Pool-aware {!axpy}.  Elementwise with disjoint writes, hence bitwise
    identical to the sequential update for any domain count. *)

val paxpy2 : ?pool:Ttsv_parallel.Pool.t -> float -> t -> t -> t -> t -> unit
(** [paxpy2 a p q x r] performs the fused CG update
    [x <- a*p + x] and [r <- r - a*q] in a single pass (one pool
    dispatch instead of two).  Bitwise identical to the two separate
    {!paxpy} calls [paxpy a p x; paxpy (-.a) q r]. *)

val pxpby : ?pool:Ttsv_parallel.Pool.t -> t -> float -> t -> unit
(** [pxpby z b p] performs the fused direction update [p <- z + b*p] in
    place, in one pooled pass.  Elementwise, hence pool-independent. *)

val scale_in_place : float -> t -> unit
(** [scale_in_place a x] performs [x <- a*x] in place. *)

val map : (float -> float) -> t -> t
(** [map f v] applies [f] elementwise. *)

val map2 : (float -> float -> float) -> t -> t -> t
(** [map2 f x y] applies [f] to corresponding elements. *)

val sum : t -> float
(** [sum v] is the sum of all entries. *)

val max_elt : t -> float
(** [max_elt v] is the largest entry.  Raises [Invalid_argument] on the
    empty vector. *)

val min_elt : t -> float
(** [min_elt v] is the smallest entry.  Raises [Invalid_argument] on the
    empty vector. *)

val argmax : t -> int
(** [argmax v] is the index of the largest entry (first occurrence). *)

val mean : t -> float
(** [mean v] is the arithmetic mean.  Raises [Invalid_argument] on the
    empty vector. *)

val approx_equal : ?rtol:float -> ?atol:float -> t -> t -> bool
(** [approx_equal ?rtol ?atol x y] tests elementwise closeness:
    [|x.(i) - y.(i)| <= atol + rtol *. |y.(i)|] for every [i].
    Defaults: [rtol = 1e-9], [atol = 1e-12]. *)

val linspace : float -> float -> int -> t
(** [linspace a b n] is [n] evenly spaced points from [a] to [b]
    inclusive.  Requires [n >= 2]. *)

val pp : Format.formatter -> t -> unit
(** [pp ppf v] prints [v] as [[x0; x1; ...]] with 6 significant digits. *)
