type t = { xs : float array; ys : float array }

let create ~xs ~ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Interp.create: length mismatch";
  if n < 2 then invalid_arg "Interp.create: need at least two points";
  for i = 0 to n - 2 do
    if xs.(i) >= xs.(i + 1) then invalid_arg "Interp.create: abscissae not strictly increasing"
  done;
  { xs = Array.copy xs; ys = Array.copy ys }

let of_points pts =
  let pts = List.sort (fun (a, _) (b, _) -> compare a b) pts in
  let xs = Array.of_list (List.map fst pts) in
  let ys = Array.of_list (List.map snd pts) in
  create ~xs ~ys

(* index of the segment [xs.(i), xs.(i+1)] containing x, clamped *)
let segment t x =
  let n = Array.length t.xs in
  if x <= t.xs.(0) then 0
  else if x >= t.xs.(n - 1) then n - 2
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let m = (!lo + !hi) / 2 in
      if t.xs.(m) <= x then lo := m else hi := m
    done;
    !lo
  end

let slope t i = (t.ys.(i + 1) -. t.ys.(i)) /. (t.xs.(i + 1) -. t.xs.(i))

let eval_extrapolate t x =
  let i = segment t x in
  t.ys.(i) +. (slope t i *. (x -. t.xs.(i)))

let eval t x =
  let n = Array.length t.xs in
  if x <= t.xs.(0) then t.ys.(0)
  else if x >= t.xs.(n - 1) then t.ys.(n - 1)
  else eval_extrapolate t x

let domain t = (t.xs.(0), t.xs.(Array.length t.xs - 1))

let derivative t x = slope t (segment t x)
