let check_interval name a b =
  if not (Float.is_finite a && Float.is_finite b) then
    invalid_arg ("Quadrature." ^ name ^ ": bounds must be finite")

let simpson ?(intervals = 128) f a b =
  check_interval "simpson" a b;
  if intervals < 2 then invalid_arg "Quadrature.simpson: need at least 2 intervals";
  let n = if intervals mod 2 = 0 then intervals else intervals + 1 in
  let h = (b -. a) /. float_of_int n in
  let acc = ref (f a +. f b) in
  for i = 1 to n - 1 do
    let x = a +. (h *. float_of_int i) in
    acc := !acc +. (if i mod 2 = 1 then 4. else 2.) *. f x
  done;
  !acc *. h /. 3.

let simpson_3 f a b =
  let m = 0.5 *. (a +. b) in
  (b -. a) /. 6. *. (f a +. (4. *. f m) +. f b)

let adaptive ?(tol = 1e-12) ?(max_depth = 40) f a b =
  check_interval "adaptive" a b;
  let rec refine a b whole depth tol =
    let m = 0.5 *. (a +. b) in
    let left = simpson_3 f a m and right = simpson_3 f m b in
    let delta = left +. right -. whole in
    if Float.abs delta <= 15. *. tol || depth >= max_depth then
      left +. right +. (delta /. 15.)
    else
      refine a m left (depth + 1) (tol /. 2.) +. refine m b right (depth + 1) (tol /. 2.)
  in
  let whole = simpson_3 f a b in
  refine a b whole 0 (tol *. Float.max 1. (Float.abs whole))

let trapezoid ?(intervals = 256) f a b =
  check_interval "trapezoid" a b;
  if intervals < 1 then invalid_arg "Quadrature.trapezoid: need at least 1 interval";
  let h = (b -. a) /. float_of_int intervals in
  let acc = ref (0.5 *. (f a +. f b)) in
  for i = 1 to intervals - 1 do
    acc := !acc +. f (a +. (h *. float_of_int i))
  done;
  !acc *. h
