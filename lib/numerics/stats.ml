let check name xs ref_ =
  if Array.length xs <> Array.length ref_ then invalid_arg ("Stats." ^ name ^ ": length mismatch");
  if Array.length xs = 0 then invalid_arg ("Stats." ^ name ^ ": empty input")

let fold2 name f init xs ref_ =
  check name xs ref_;
  let acc = ref init in
  for i = 0 to Array.length xs - 1 do
    acc := f !acc xs.(i) ref_.(i)
  done;
  !acc

let max_abs_error xs ref_ =
  fold2 "max_abs_error" (fun acc x r -> Float.max acc (Float.abs (x -. r))) 0. xs ref_

let mean_abs_error xs ref_ =
  fold2 "mean_abs_error" (fun acc x r -> acc +. Float.abs (x -. r)) 0. xs ref_
  /. float_of_int (Array.length xs)

let rel_err name x r =
  if Float.abs r < 1e-300 then invalid_arg ("Stats." ^ name ^ ": reference entry is zero");
  Float.abs (x -. r) /. Float.abs r

let max_rel_error xs ref_ =
  fold2 "max_rel_error" (fun acc x r -> Float.max acc (rel_err "max_rel_error" x r)) 0. xs ref_

let mean_rel_error xs ref_ =
  fold2 "mean_rel_error" (fun acc x r -> acc +. rel_err "mean_rel_error" x r) 0. xs ref_
  /. float_of_int (Array.length xs)

let rmse xs ref_ =
  let ss = fold2 "rmse" (fun acc x r -> acc +. ((x -. r) ** 2.)) 0. xs ref_ in
  sqrt (ss /. float_of_int (Array.length xs))

let variance v =
  if Array.length v = 0 then invalid_arg "Stats.variance: empty input";
  let m = Vec.mean v in
  let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. v in
  ss /. float_of_int (Array.length v)

let stddev v = sqrt (variance v)

let sorted v =
  let s = Array.copy v in
  Array.sort compare s;
  s

let median v =
  if Array.length v = 0 then invalid_arg "Stats.median: empty input";
  let s = sorted v in
  let n = Array.length s in
  if n mod 2 = 1 then s.(n / 2) else 0.5 *. (s.((n / 2) - 1) +. s.(n / 2))

let percentile p v =
  if Array.length v = 0 then invalid_arg "Stats.percentile: empty input";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of [0, 100]";
  let s = sorted v in
  let n = Array.length s in
  if n = 1 then s.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    s.(lo) +. (frac *. (s.(hi) -. s.(lo)))
  end

let linear_regression xs ys =
  check "linear_regression" xs ys;
  let n = float_of_int (Array.length xs) in
  if Array.length xs < 2 then invalid_arg "Stats.linear_regression: need at least two points";
  let sx = Vec.sum xs and sy = Vec.sum ys in
  let sxx = Vec.dot xs xs and sxy = Vec.dot xs ys in
  let denom = (n *. sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-300 then
    invalid_arg "Stats.linear_regression: degenerate abscissae";
  let slope = ((n *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. n in
  (slope, intercept)
