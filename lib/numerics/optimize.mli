(** Derivative-free optimization and root finding.

    Used by {!Ttsv_core.Calibrate} to fit the Model A coefficients (k1, k2)
    against the finite-volume reference, and by the planner example to
    invert monotone temperature-vs-parameter curves. *)

type minimum = {
  xmin : Vec.t;     (** location of the best point found *)
  fmin : float;     (** objective value at [xmin] *)
  iterations : int; (** simplex/section steps performed *)
  converged : bool; (** whether the spread criterion was met *)
}

val nelder_mead :
  ?tol:float ->
  ?max_iter:int ->
  ?step:float ->
  (Vec.t -> float) ->
  Vec.t ->
  minimum
(** [nelder_mead f x0] minimizes [f] starting from [x0] with the
    Nelder–Mead downhill-simplex method (reflection 1, expansion 2,
    contraction 0.5, shrink 0.5).  The initial simplex is [x0] plus
    [step] (default [0.1 * (1 + |x0_i|)]) along each axis.  Convergence:
    the simplex function spread falls below [tol] (default [1e-10]). *)

val golden_section :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> minimum
(** [golden_section f a b] minimizes a unimodal [f] on [[a, b]].
    [tol] is the final interval width (default [1e-9]). *)

val brent_root :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float
(** [brent_root f a b] finds a root of [f] in the bracketing interval
    [[a, b]] (requires [f a *. f b <= 0.], otherwise raises
    [Invalid_argument]) by Brent's method (bisection/secant/inverse
    quadratic).  [tol] is the x-tolerance (default [1e-12]). *)

val bisect :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float
(** Plain bisection with the same contract as {!brent_root}; kept as an
    always-converges fallback and as a test oracle for {!brent_root}. *)
