type t = { n : int; bw : int; band : float array array }

let create ~n ~bw =
  if n < 0 || bw < 0 then invalid_arg "Banded.create: negative size";
  { n; bw; band = Array.make_matrix n ((2 * bw) + 1) 0. }

let order m = m.n
let bandwidth m = m.bw

let in_band m i j = i >= 0 && i < m.n && j >= 0 && j < m.n && abs (i - j) <= m.bw

let get m i j = if in_band m i j then m.band.(i).(j - i + m.bw) else 0.

let set m i j x =
  if not (in_band m i j) then invalid_arg "Banded.set: outside band";
  m.band.(i).(j - i + m.bw) <- x

let add_to m i j x =
  if not (in_band m i j) then invalid_arg "Banded.add_to: outside band";
  m.band.(i).(j - i + m.bw) <- m.band.(i).(j - i + m.bw) +. x

let of_dense ~bw d =
  let n = Dense.rows d in
  if Dense.cols d <> n then invalid_arg "Banded.of_dense: matrix not square";
  let m = create ~n ~bw in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let x = Dense.get d i j in
      if x <> 0. then
        if abs (i - j) <= bw then set m i j x
        else invalid_arg "Banded.of_dense: nonzero outside band"
    done
  done;
  m

let to_dense m = Dense.init m.n m.n (fun i j -> get m i j)

let mat_vec m x =
  if Array.length x <> m.n then invalid_arg "Banded.mat_vec: dimension mismatch";
  Array.init m.n (fun i ->
      let acc = ref 0. in
      let jlo = Stdlib.max 0 (i - m.bw) and jhi = Stdlib.min (m.n - 1) (i + m.bw) in
      for j = jlo to jhi do
        acc := !acc +. (get m i j *. x.(j))
      done;
      !acc)

let solve m0 b =
  if Array.length b <> m0.n then invalid_arg "Banded.solve: dimension mismatch";
  let n = m0.n and bw = m0.bw in
  let a = { m0 with band = Array.map Array.copy m0.band } in
  let x = Array.copy b in
  (* forward elimination within the band *)
  for k = 0 to n - 1 do
    let pivot = get a k k in
    if Float.abs pivot < 1e-300 then raise Dense.Singular;
    let ihi = Stdlib.min (n - 1) (k + bw) in
    for i = k + 1 to ihi do
      let factor = get a i k /. pivot in
      if factor <> 0. then begin
        let jhi = Stdlib.min (n - 1) (k + bw) in
        for j = k to jhi do
          add_to a i j (-.factor *. get a k j)
        done;
        x.(i) <- x.(i) -. (factor *. x.(k))
      end
    done
  done;
  (* back substitution *)
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    let jhi = Stdlib.min (n - 1) (i + bw) in
    for j = i + 1 to jhi do
      acc := !acc -. (get a i j *. x.(j))
    done;
    x.(i) <- !acc /. get a i i
  done;
  x
