(** Deterministic pseudo-random numbers for reproducible experiments.

    A small splitmix64 generator: every Monte-Carlo experiment in this
    repository is seeded explicitly, so published tables regenerate
    bit-identically.  Not cryptographic. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from any integer seed. *)

val uniform : t -> float
(** [uniform g] is the next double in [[0, 1)]. *)

val uniform_range : t -> float -> float -> float
(** [uniform_range g a b] is uniform in [[a, b)]; [a <= b] required. *)

val normal : t -> mean:float -> sigma:float -> float
(** [normal g ~mean ~sigma] draws from N(mean, sigma²) (Box–Muller).
    [sigma >= 0] required. *)

val lognormal_factor : t -> sigma:float -> float
(** [lognormal_factor g ~sigma] is exp(N(0, sigma²)) — a multiplicative
    process-variation factor with median 1. *)

val int_below : t -> int -> int
(** [int_below g n] is uniform in [[0, n)]; [n > 0] required. *)
