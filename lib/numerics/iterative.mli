(** Iterative solvers for sparse linear systems.

    The finite-volume heat solver produces large symmetric positive-definite
    conductance matrices; {!cg} (Jacobi-preconditioned conjugate gradients)
    is the work-horse.  {!bicgstab} handles the occasional nonsymmetric
    system, and the stationary methods ({!jacobi}, {!gauss_seidel}, {!sor})
    exist mainly as slow-but-simple cross-checks in the test suite. *)

type result = {
  solution : Vec.t;
  iterations : int;  (** iterations actually performed *)
  residual : float;  (** final 2-norm of [b - A x], relative to [||b||] *)
  converged : bool;  (** whether [residual <= tol] was reached *)
}

exception Not_converged of result
(** Raised by the [_exn] variants when the iteration budget is exhausted. *)

val cg : ?tol:float -> ?max_iter:int -> ?x0:Vec.t -> Sparse.t -> Vec.t -> result
(** [cg a b] solves [a x = b] for symmetric positive-definite [a] with
    Jacobi (diagonal) preconditioning.  [tol] is the relative residual
    target (default [1e-10]); [max_iter] defaults to [10 * n];
    [x0] defaults to the zero vector. *)

val cg_exn : ?tol:float -> ?max_iter:int -> ?x0:Vec.t -> Sparse.t -> Vec.t -> Vec.t
(** Like {!cg} but returns the solution directly and raises
    {!Not_converged} on failure. *)

val bicgstab : ?tol:float -> ?max_iter:int -> ?x0:Vec.t -> Sparse.t -> Vec.t -> result
(** [bicgstab a b] solves general [a x = b] with Jacobi preconditioning. *)

val jacobi : ?tol:float -> ?max_iter:int -> Sparse.t -> Vec.t -> result
(** Pointwise Jacobi iteration; requires a nonzero diagonal. *)

val gauss_seidel : ?tol:float -> ?max_iter:int -> Sparse.t -> Vec.t -> result
(** Forward Gauss–Seidel sweep iteration. *)

val sor : ?tol:float -> ?max_iter:int -> omega:float -> Sparse.t -> Vec.t -> result
(** Successive over-relaxation with relaxation factor [omega] in (0, 2). *)
