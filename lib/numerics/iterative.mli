(** Iterative solvers for sparse linear systems.

    The finite-volume heat solver produces large symmetric positive-definite
    conductance matrices; {!cg} (Jacobi-preconditioned conjugate gradients)
    is the work-horse.  {!bicgstab} handles the occasional nonsymmetric
    system, and the stationary methods ({!jacobi}, {!gauss_seidel}, {!sor})
    exist mainly as slow-but-simple cross-checks in the test suite.

    Every solver carries in-flight health guards: matrices and right-hand
    sides containing NaN/Inf are rejected up front ({!Non_finite}), a
    residual that stops improving for a window of iterations aborts the
    loop ({!Stagnated}), and a residual growing far beyond the best seen
    aborts it too ({!Diverged}) — so a hopeless solve stops after tens of
    iterations instead of burning the full [10 * n] budget.  The
    {!Ttsv_robust.Robust} escalation ladder builds on these statuses. *)

type status =
  | Converged  (** the relative residual reached [tol] *)
  | Iteration_limit  (** the iteration budget ran out while still improving *)
  | Breakdown of string  (** an inner product underflowed (which one) *)
  | Stagnated of int
      (** no meaningful residual improvement for that many iterations *)
  | Diverged of float  (** the residual grew by that factor over the best seen *)
  | Non_finite of string  (** NaN/Inf detected in the matrix, rhs or iterates *)
  | Budget_exhausted of Ttsv_parallel.Budget.verdict
      (** the {!Ttsv_parallel.Budget} handed to the solver expired; the
          result carries the iterate reached so far *)

type result = {
  solution : Vec.t;
  iterations : int;  (** iterations actually performed *)
  residual : float;  (** final 2-norm of [b - A x], relative to [||b||] *)
  converged : bool;  (** whether [residual <= tol] was reached *)
  status : status;  (** why the iteration stopped *)
  trace : float array;  (** relative-residual history, initial guess included *)
  conv : Ttsv_obs.History.snapshot option;
      (** bounded convergence history, recorded only while observability
          is enabled ({!Ttsv_obs.Flags.enabled}) — [None] on the
          disabled path (no ring buffer is allocated) and for the
          stationary methods.  When a trace file is open the same
          snapshot is emitted as a [conv] JSONL event tagged with the
          enclosing span. *)
}

exception Not_converged of result
(** Raised by the [_exn] variants when the iteration budget is exhausted. *)

val pp_status : Format.formatter -> status -> unit

val cg :
  ?tol:float ->
  ?max_iter:int ->
  ?x0:Vec.t ->
  ?on_iterate:(int -> float -> unit) ->
  ?stagnation_window:int ->
  ?divergence_factor:float ->
  ?pool:Ttsv_parallel.Pool.t ->
  ?precond:Precond.t ->
  ?budget:Ttsv_parallel.Budget.t ->
  Sparse.t ->
  Vec.t ->
  result
(** [cg a b] solves [a x = b] for symmetric positive-definite [a] with
    Jacobi (diagonal) preconditioning by default; pass [precond] to use
    a stronger {!Precond.t} (IC(0), SSOR) instead — the Jacobi array is
    then never built.  [tol] is the relative residual
    target (default [1e-10]); [max_iter] defaults to [10 * n];
    [x0] defaults to the zero vector.  [on_iterate] is called with
    [(iteration, relative residual)] after every step.
    [stagnation_window] (default [max 250 (max_iter / 10)] — Krylov
    residuals legitimately plateau for long stretches before the
    superlinear phase, so the default scales with the budget) and
    [divergence_factor] (default [1e4]) tune the health guards.  When
    the loop exits on anything but a
    verified [residual <= tol], the true residual [||b - A x|| / ||b||]
    is recomputed before reporting, so [converged] cannot be stale.

    [pool], when given, runs the matvec and the BLAS-1 kernels across
    the domain pool, inside one persistent {!Ttsv_parallel.Pool.with_region}
    spanning the whole solve (the workers stay resident; no per-kernel
    fork/join).  All reductions are chunk-deterministic ({!Vec.pdot})
    and preconditioner applications pool-independent, so a pooled run
    observes the exact residual sequence of a sequential run — same
    iterates, same guard decisions, same iteration count.  When called
    from inside a pool task (an outer sweep fan-out), the kernels run
    sequentially instead of nesting parallelism.

    [budget], when given, is polled once per iteration (and ticked once
    per matvec): an expired budget stops the loop with
    {!Budget_exhausted}, the result carrying the current iterate and its
    recomputed true residual — the overshoot past a wall-clock deadline
    is bounded by one iteration. *)

val cg_exn : ?tol:float -> ?max_iter:int -> ?x0:Vec.t -> Sparse.t -> Vec.t -> Vec.t
(** Like {!cg} but returns the solution directly and raises
    {!Not_converged} on failure. *)

val bicgstab :
  ?tol:float ->
  ?max_iter:int ->
  ?x0:Vec.t ->
  ?on_iterate:(int -> float -> unit) ->
  ?stagnation_window:int ->
  ?divergence_factor:float ->
  ?pool:Ttsv_parallel.Pool.t ->
  ?precond:Precond.t ->
  ?budget:Ttsv_parallel.Budget.t ->
  Sparse.t ->
  Vec.t ->
  result
(** [bicgstab a b] solves general [a x = b] with Jacobi preconditioning
    (or the supplied [precond]).  Guards, callbacks, the [pool]
    determinism contract, the persistent region and the [budget]
    semantics as in {!cg}; the reported residual is always the
    recomputed true residual. *)

val jacobi : ?tol:float -> ?max_iter:int -> Sparse.t -> Vec.t -> result
(** Pointwise Jacobi iteration; requires a nonzero diagonal. *)

val gauss_seidel : ?tol:float -> ?max_iter:int -> Sparse.t -> Vec.t -> result
(** Forward Gauss–Seidel sweep iteration.  Each sweep visits only the
    stored row entries (O(nnz), not O(n²)). *)

val sor : ?tol:float -> ?max_iter:int -> omega:float -> Sparse.t -> Vec.t -> result
(** Successive over-relaxation with relaxation factor [omega] in (0, 2). *)
