let two_point ~order ~h_coarse ~v_coarse ~h_fine ~v_fine =
  if not (h_coarse > h_fine && h_fine > 0.) then
    invalid_arg "Richardson.two_point: need h_coarse > h_fine > 0";
  if order <= 0. then invalid_arg "Richardson.two_point: order must be positive";
  let ratio = (h_coarse /. h_fine) ** order in
  v_fine +. ((v_fine -. v_coarse) /. (ratio -. 1.))

let observed_order ~h1 ~v1 ~h2 ~v2 ~h3 ~v3 =
  if not (h1 > h2 && h2 > h3 && h3 > 0.) then
    invalid_arg "Richardson.observed_order: need h1 > h2 > h3 > 0";
  let r12 = h1 /. h2 and r23 = h2 /. h3 in
  if Float.abs (r12 -. r23) > 0.01 *. r12 then
    invalid_arg "Richardson.observed_order: mesh family must be geometric";
  let d12 = v1 -. v2 and d23 = v2 -. v3 in
  if d12 *. d23 <= 0. then
    invalid_arg "Richardson.observed_order: differences not monotone (pre-asymptotic data)";
  log (Float.abs (d12 /. d23)) /. log r12

let extrapolate_sequence ~order pairs =
  let sorted = List.sort (fun (h1, _) (h2, _) -> compare h2 h1) pairs in
  match List.rev sorted with
  | (h_fine, v_fine) :: (h_coarse, v_coarse) :: _ ->
    two_point ~order ~h_coarse ~v_coarse ~h_fine ~v_fine
  | _ -> invalid_arg "Richardson.extrapolate_sequence: need at least two pairs"
