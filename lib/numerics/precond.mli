(** Pluggable SPD preconditioners for the Krylov solvers.

    One abstract interface, four constructions, in decreasing order of
    strength on the library's finite-volume conductance matrices:

    - {!mg} — one symmetric geometric-multigrid V-cycle per application
      (see {!Multigrid}).  Strongest on the structured tensor grids and
      the only rung whose iteration counts stay near-constant as the
      grid refines; needs the grid [shape], so it is only available
      where one is known.  Every kernel it runs is embarrassingly
      parallel, unlike the triangular sweeps below.
    - {!ic0} — incomplete Cholesky with zero fill.  Strongest
      shape-oblivious option: on the
      fig5/Table I grids it cuts CG iteration counts by roughly an order
      of magnitude over Jacobi.  Construction can {e break down} (a
      non-positive pivot) on SPD matrices that are not H-matrices; the
      constructor retries internally with growing relative diagonal
      shifts and only then reports an error.
    - {!ssor} — symmetric successive over-relaxation,
      [M = (D + wL) D^-1 (D + wU) / (w (2 - w))].  Matrix-free (no
      stored factorization, just two O(nnz) triangular sweeps over A's
      CSR arrays), never breaks down on a nonzero diagonal, usually
      two-to-four times fewer iterations than Jacobi.  The rung to fall
      back on when IC(0) cannot be built.
    - {!jacobi} — diagonal scaling.  Weakest, but total: defined for
      every matrix, zero construction cost.

    Applications are deterministic: the triangular sweeps of {!ic0} and
    {!ssor} are sequential by data dependence (and identical under any
    pool), and the pooled {!jacobi} scaling is elementwise — so a
    preconditioned solve takes the same iteration path with or without a
    domain pool. *)

type t

val name : t -> string
(** ["mg"], ["ic0"], ["ssor"] or ["jacobi"]. *)

val dim : t -> int
(** The order of the matrix the preconditioner was built from. *)

val apply : ?pool:Ttsv_parallel.Pool.t -> t -> Vec.t -> Vec.t
(** [apply m r] computes [M^-1 r] (a fresh vector).  [pool] is used only
    by the embarrassingly parallel {!jacobi} scaling; the result never
    depends on it.  Raises [Invalid_argument] on a dimension
    mismatch. *)

val jacobi : Sparse.t -> t
(** Diagonal (Jacobi) scaling.  Total: zero or denormal diagonal entries
    scale by 1 instead of dividing by ~0. *)

val jacobi_of_diagonal : Vec.t -> t
(** {!jacobi} from an already-extracted diagonal, for callers that have
    one (avoids a second [Sparse.diagonal] pass). *)

val ssor : ?omega:float -> Sparse.t -> (t, string) result
(** SSOR preconditioner with relaxation factor [omega] (default [1.0],
    i.e. symmetric Gauss–Seidel; must be in (0, 2), else
    [Invalid_argument]).  [Error] when the matrix is not square or has a
    (near-)zero diagonal entry. *)

val ssor_omega : t -> float option
(** The relaxation factor, for SSOR preconditioners. *)

val default_shifts : float list
(** The relative diagonal shifts {!ic0} tries in order:
    [[0.; 1e-3; 1e-2; 1e-1; 1.]]. *)

val ic0 :
  ?shifts:float list -> ?budget:Ttsv_parallel.Budget.t -> Sparse.t -> (t, string) result
(** Incomplete Cholesky factorization with zero fill on the lower
    triangle of [a].  On a non-positive pivot the factorization is
    retried from scratch with the next relative diagonal shift in
    [shifts] (the diagonal becomes [a_ii * (1 + shift)]); [Error] when
    every shift breaks down, when the matrix is not square, or when some
    row has no stored diagonal entry.  [budget] is polled between shift
    retries (each is a full refactorization): an expired budget reports
    as [Error "budget expired (...)"], and the caller demotes exactly as
    for a breakdown.

    Both fallible constructors ({!ic0}, {!ssor}) double as the
    {!Ttsv_parallel.Fault} ["precond"] chaos site: when armed and fired
    they return [Error "injected construction fault"]. *)

val ic0_shift : t -> float option
(** The diagonal shift the successful IC(0) factorization used ([0.]
    when the unshifted factorization went through); [None] for other
    kinds. *)

val mg :
  ?pool:Ttsv_parallel.Pool.t ->
  ?budget:Ttsv_parallel.Budget.t ->
  shape:int array ->
  Sparse.t ->
  (t, string) result
(** Geometric-multigrid preconditioner: each application is one
    symmetric V(ν,ν) cycle of {!Multigrid.cycle} on the hierarchy built
    by {!Multigrid.build} (Chebyshev-accelerated line smoothing,
    Galerkin coarse operators, semicoarsening on anisotropic grids), so
    the preconditioner is itself symmetric positive definite and safe
    inside CG.  [shape] gives the
    tensor-grid extents, first dimension fastest-varying — [[|nr; nz|]]
    for the 2-D unit cell, [[|nx; ny; nz|]] for the 3-D stack.

    [Error] on a shape/matrix mismatch or any hierarchy failure, and the
    constructor is a ["precond"] chaos site like {!ic0}/{!ssor}.
    [budget] is polled during setup {e and} captured into the returned
    preconditioner: an expiry mid-V-cycle raises
    {!Ttsv_parallel.Budget.Expired} from {!apply}, which the Robust
    ladder converts to a typed deadline failure with the best iterate.
    Applications are bitwise deterministic across pool sizes. *)

val mg_levels : t -> int option
(** Number of levels in the multigrid hierarchy; [None] for other
    kinds. *)
