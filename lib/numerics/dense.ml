type t = { nrows : int; ncols : int; data : float array }

exception Singular

let create nrows ncols = { nrows; ncols; data = Array.make (nrows * ncols) 0. }

let idx m i j = (i * m.ncols) + j

let get m i j = m.data.(idx m i j)
let set m i j x = m.data.(idx m i j) <- x
let add_to m i j x = m.data.(idx m i j) <- m.data.(idx m i j) +. x

let identity n =
  let m = create n n in
  for i = 0 to n - 1 do
    set m i i 1.
  done;
  m

let of_arrays a =
  let nrows = Array.length a in
  if nrows = 0 then { nrows = 0; ncols = 0; data = [||] }
  else begin
    let ncols = Array.length a.(0) in
    Array.iter
      (fun row ->
        if Array.length row <> ncols then invalid_arg "Dense.of_arrays: ragged rows")
      a;
    let m = create nrows ncols in
    for i = 0 to nrows - 1 do
      for j = 0 to ncols - 1 do
        set m i j a.(i).(j)
      done
    done;
    m
  end

let to_arrays m = Array.init m.nrows (fun i -> Array.init m.ncols (fun j -> get m i j))

let init nrows ncols f =
  let m = create nrows ncols in
  for i = 0 to nrows - 1 do
    for j = 0 to ncols - 1 do
      set m i j (f i j)
    done
  done;
  m

let rows m = m.nrows
let cols m = m.ncols

let copy m = { m with data = Array.copy m.data }

let transpose m = init m.ncols m.nrows (fun i j -> get m j i)

let mat_vec m x =
  if Array.length x <> m.ncols then invalid_arg "Dense.mat_vec: dimension mismatch";
  Array.init m.nrows (fun i ->
      let acc = ref 0. in
      for j = 0 to m.ncols - 1 do
        acc := !acc +. (get m i j *. x.(j))
      done;
      !acc)

let mat_mul a b =
  if a.ncols <> b.nrows then invalid_arg "Dense.mat_mul: dimension mismatch";
  let m = create a.nrows b.ncols in
  for i = 0 to a.nrows - 1 do
    for k = 0 to a.ncols - 1 do
      let aik = get a i k in
      if aik <> 0. then
        for j = 0 to b.ncols - 1 do
          add_to m i j (aik *. get b k j)
        done
    done
  done;
  m

let scale a m = { m with data = Array.map (fun x -> a *. x) m.data }

let elementwise name f a b =
  if a.nrows <> b.nrows || a.ncols <> b.ncols then
    invalid_arg ("Dense." ^ name ^ ": dimension mismatch");
  { a with data = Array.mapi (fun i x -> f x b.data.(i)) a.data }

let add a b = elementwise "add" ( +. ) a b
let sub a b = elementwise "sub" ( -. ) a b

type lu = { lu : t; perm : int array; sign : float }

(* Crout-style LU with partial pivoting; the factored matrix stores L (unit
   diagonal, below) and U (on and above the diagonal) in place. *)
let lu_factor m0 =
  if m0.nrows <> m0.ncols then invalid_arg "Dense.lu_factor: matrix not square";
  let n = m0.nrows in
  let a = copy m0 in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1. in
  for k = 0 to n - 1 do
    (* find pivot *)
    let p = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs (get a i k) > Float.abs (get a !p k) then p := i
    done;
    if !p <> k then begin
      for j = 0 to n - 1 do
        let tmp = get a k j in
        set a k j (get a !p j);
        set a !p j tmp
      done;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!p);
      perm.(!p) <- tmp;
      sign := -. !sign
    end;
    let pivot = get a k k in
    if Float.abs pivot < 1e-300 then raise Singular;
    for i = k + 1 to n - 1 do
      let factor = get a i k /. pivot in
      set a i k factor;
      if factor <> 0. then
        for j = k + 1 to n - 1 do
          add_to a i j (-.factor *. get a k j)
        done
    done
  done;
  { lu = a; perm; sign = !sign }

let lu_solve { lu = a; perm; sign = _ } b =
  let n = a.nrows in
  if Array.length b <> n then invalid_arg "Dense.lu_solve: dimension mismatch";
  let x = Array.init n (fun i -> b.(perm.(i))) in
  (* forward substitution, L has unit diagonal *)
  for i = 1 to n - 1 do
    let acc = ref x.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (get a i j *. x.(j))
    done;
    x.(i) <- !acc
  done;
  (* back substitution *)
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (get a i j *. x.(j))
    done;
    x.(i) <- !acc /. get a i i
  done;
  x

let solve a b = lu_solve (lu_factor a) b

let solve_many a bs =
  let f = lu_factor a in
  List.map (lu_solve f) bs

let det m =
  match lu_factor m with
  | exception Singular -> 0.
  | { lu = a; sign; _ } ->
    let acc = ref sign in
    for i = 0 to a.nrows - 1 do
      acc := !acc *. get a i i
    done;
    !acc

let inverse m =
  let n = m.nrows in
  let f = lu_factor m in
  let inv = create n n in
  for j = 0 to n - 1 do
    let e = Array.make n 0. in
    e.(j) <- 1.;
    let col = lu_solve f e in
    for i = 0 to n - 1 do
      set inv i j col.(i)
    done
  done;
  inv

let approx_equal ?(rtol = 1e-9) ?(atol = 1e-12) a b =
  a.nrows = b.nrows && a.ncols = b.ncols
  &&
  let ok = ref true in
  Array.iteri
    (fun i x ->
      if Float.abs (x -. b.data.(i)) > atol +. (rtol *. Float.abs b.data.(i)) then ok := false)
    a.data;
  !ok

let is_symmetric ?(tol = 1e-10) m =
  m.nrows = m.ncols
  &&
  let scale = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0. m.data in
  let bound = tol *. Float.max scale 1. in
  let ok = ref true in
  for i = 0 to m.nrows - 1 do
    for j = i + 1 to m.ncols - 1 do
      if Float.abs (get m i j -. get m j i) > bound then ok := false
    done
  done;
  !ok

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.nrows - 1 do
    Format.fprintf ppf "[@[";
    for j = 0 to m.ncols - 1 do
      if j > 0 then Format.fprintf ppf ";@ ";
      Format.fprintf ppf "%.6g" (get m i j)
    done;
    Format.fprintf ppf "@]]";
    if i < m.nrows - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
