type t = { mutable state : int64; mutable spare : float option }

let create seed = { state = Int64.of_int seed; spare = None }

(* splitmix64 *)
let next_int64 g =
  g.state <- Int64.add g.state 0x9E3779B97F4A7C15L;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let uniform g =
  (* top 53 bits to a double in [0, 1) *)
  let bits = Int64.shift_right_logical (next_int64 g) 11 in
  Int64.to_float bits /. 9007199254740992.

let uniform_range g a b =
  if a > b then invalid_arg "Rng.uniform_range: a > b";
  a +. ((b -. a) *. uniform g)

let normal g ~mean ~sigma =
  if sigma < 0. then invalid_arg "Rng.normal: negative sigma";
  match g.spare with
  | Some z ->
    g.spare <- None;
    mean +. (sigma *. z)
  | None ->
    (* Box-Muller on two uniforms, avoiding log 0 *)
    let u1 = Float.max (uniform g) 1e-300 in
    let u2 = uniform g in
    let r = sqrt (-2. *. log u1) in
    let theta = 2. *. Float.pi *. u2 in
    g.spare <- Some (r *. sin theta);
    mean +. (sigma *. r *. cos theta)

let lognormal_factor g ~sigma = exp (normal g ~mean:0. ~sigma)

let int_below g n =
  if n <= 0 then invalid_arg "Rng.int_below: n must be positive";
  let u = uniform g in
  Stdlib.min (n - 1) (int_of_float (u *. float_of_int n))
