module Obs_metrics = Ttsv_obs.Metrics
module Budget = Ttsv_parallel.Budget
module Fault = Ttsv_parallel.Fault

(* per-attempt observability: total Krylov iterations spent and the final
   true relative residual of each attempt, per method *)
let m_cg_iters = Obs_metrics.Counter.make "cg.iterations"
let m_cg_res = Obs_metrics.Histogram.make "cg.residual_final"
let m_bicg_iters = Obs_metrics.Counter.make "bicgstab.iterations"
let m_bicg_res = Obs_metrics.Histogram.make "bicgstab.residual_final"

let record_attempt iters_c res_h iterations residual =
  if Ttsv_obs.Flags.metrics_on () then begin
    Obs_metrics.Counter.add iters_c iterations;
    Obs_metrics.Histogram.observe res_h residual
  end

type status =
  | Converged
  | Iteration_limit
  | Breakdown of string
  | Stagnated of int
  | Diverged of float
  | Non_finite of string
  | Budget_exhausted of Budget.verdict

type result = {
  solution : Vec.t;
  iterations : int;
  residual : float;
  converged : bool;
  status : status;
  trace : float array;
  conv : Ttsv_obs.History.snapshot option;
}

(* Residual history recording, active only while observability is on:
   the disabled path allocates no ring buffer and costs one atomic read
   (inside [Flags.enabled]) per solve, not per iteration.  When a trace
   file is open, the snapshot is also emitted as a [conv] line tagged
   with the enclosing span (the [robust.<rung>] span when the Robust
   ladder is driving). *)
let history_create meth =
  if Ttsv_obs.Flags.enabled () then Some (Ttsv_obs.History.create ~meth ()) else None

let history_record hist iter res =
  match hist with Some h -> Ttsv_obs.History.record h iter res | None -> ()

let history_finish hist =
  match hist with
  | None -> None
  | Some h ->
    let s = Ttsv_obs.History.snapshot h in
    if Ttsv_obs.Flags.trace_on () then Ttsv_obs.Sink.conv ?span:(Ttsv_obs.Span.current ()) s;
    Some s

exception Not_converged of result

let pp_status ppf = function
  | Converged -> Format.fprintf ppf "converged"
  | Iteration_limit -> Format.fprintf ppf "iteration limit reached"
  | Breakdown what -> Format.fprintf ppf "breakdown (%s)" what
  | Stagnated k -> Format.fprintf ppf "stagnated (%d iterations without progress)" k
  | Diverged factor -> Format.fprintf ppf "diverged (residual grew %.3gx)" factor
  | Non_finite where -> Format.fprintf ppf "non-finite values in %s" where
  | Budget_exhausted v -> Format.fprintf ppf "budget exhausted (%a)" Budget.pp_verdict v

let norm_b_floor b = Float.max (Vec.norm2 b) 1e-300

(* Budget poll, once per Krylov iteration: overshoot past a deadline is
   bounded by a single iteration (plus the final true-residual matvec). *)
let budget_status = function
  | None -> None
  | Some b -> (
    match Budget.check b with Some v -> Some (Budget_exhausted v) | None -> None)

let budget_tick = function Some b -> Budget.tick b | None -> ()

let default_max_iter n max_iter =
  match max_iter with Some m -> m | None -> Stdlib.max 100 (10 * n)

let default_stagnation_window = 250
let default_divergence_factor = 1e4

(* Krylov methods routinely plateau for long stretches before their
   superlinear phase kicks in (the plateau length tracks the spectrum,
   not the user's patience), so the default window scales with the
   iteration budget: give up only after 10 % of the budget passes with
   no meaningful progress. *)
let resolve_window max_iter = function
  | Some w -> w
  | None -> Stdlib.max default_stagnation_window (max_iter / 10)

(* In-flight health guard shared by every iteration: watches the residual
   history for NaN/Inf, for growth beyond [growth] times the best residual
   seen, and for [window] consecutive iterations without a meaningful
   (0.1 %) improvement over that best.  [best]/[best_iter] are the mutable
   monitor state. *)
let guard ~window ~growth best best_iter iter res =
  if not (Float.is_finite res) then Some (Non_finite "iterates")
  else if res < 0.999 *. !best then begin
    best := res;
    best_iter := iter;
    None
  end
  else if res > growth *. !best then Some (Diverged (res /. !best))
  else if iter - !best_iter >= window then Some (Stagnated (iter - !best_iter))
  else None

let notify on_iterate iter res =
  match on_iterate with Some f -> f iter res | None -> ()

(* Pre-flight scan: a single NaN in the matrix or the right-hand side
   poisons every inner product, so reject it before spending iterations. *)
let check_inputs a b =
  if not (Sparse.all_finite a) then Some "matrix"
  else if not (Array.for_all Float.is_finite b) then Some "rhs"
  else None

let rejected n x0 where =
  let x = match x0 with Some v -> Vec.copy v | None -> Vec.zeros n in
  {
    solution = x;
    iterations = 0;
    residual = Float.nan;
    converged = false;
    status = Non_finite where;
    trace = [||];
    conv = None;
  }

(* Preconditioned conjugate gradients (Jacobi by default, or any
   [Precond.t] the caller supplies — the Robust ladder passes IC(0) and
   SSOR here).

   Every reduction (dots, residual norms) goes through the chunked
   [Vec.pdot]/[Vec.pnorm2], whose value does not depend on the pool, and
   every preconditioner application is pool-independent too: the
   stagnation/divergence guard therefore observes the *same* residual
   sequence whether the kernels are pooled or not, and a pooled run
   takes exactly the iteration count of a sequential one.

   The whole solve runs inside one persistent [Pool.with_region], so the
   thousands of sub-millisecond Krylov kernels are published to
   already-resident workers instead of paying a fork/join each. *)
let cg ?(tol = 1e-10) ?max_iter ?x0 ?on_iterate ?stagnation_window
    ?(divergence_factor = default_divergence_factor) ?pool ?precond ?budget a b =
  let n = Sparse.rows a in
  if Sparse.cols a <> n then invalid_arg "Iterative.cg: matrix not square";
  if Array.length b <> n then invalid_arg "Iterative.cg: rhs dimension mismatch";
  match check_inputs a b with
  | Some where -> rejected n x0 where
  | None ->
    let max_iter = default_max_iter n max_iter in
    let stagnation_window = resolve_window max_iter stagnation_window in
    (* the Jacobi fallback is built only when no preconditioner was
       supplied: one Sparse.diagonal pass, not a wasted one per call *)
    let m =
      match precond with
      | Some m -> m
      | None -> Precond.jacobi_of_diagonal (Sparse.diagonal a)
    in
    if Precond.dim m <> n then invalid_arg "Iterative.cg: preconditioner dimension mismatch";
    Ttsv_parallel.Pool.with_region
      (Option.value pool ~default:Ttsv_parallel.Pool.seq)
      (fun () ->
        let x = match x0 with Some v -> Vec.copy v | None -> Vec.zeros n in
        let ax0 = Sparse.mul ?pool a x in
        budget_tick budget;
        Fault.poison "matvec" ax0;
        let r = Vec.sub b ax0 in
        let z = Precond.apply ?pool m r in
        let p = Vec.copy z in
        let nb = norm_b_floor b in
        let rz = ref (Vec.pdot ?pool r z) in
        let res = ref (Vec.pnorm2 ?pool r /. nb) in
        let trace = ref [ !res ] in
        let hist = history_create "cg" in
        history_record hist 0 !res;
        let iter = ref 0 in
        let best = ref !res and best_iter = ref 0 in
        let status = ref (if !res <= tol then Some Converged else None) in
        while !status = None && !iter < max_iter do
          match budget_status budget with
          | Some s -> status := Some s
          | None ->
          incr iter;
          let ap = Sparse.mul ?pool a p in
          budget_tick budget;
          Fault.poison "matvec" ap;
          let pap = Vec.pdot ?pool p ap in
          if Float.abs pap < 1e-300 then status := Some (Breakdown "p.Ap underflow")
          else begin
            let alpha = !rz /. pap in
            (* fused: x += alpha p and r -= alpha Ap in one pass *)
            Vec.paxpy2 ?pool alpha p ap x r;
            res := Vec.pnorm2 ?pool r /. nb;
            trace := !res :: !trace;
            history_record hist !iter !res;
            notify on_iterate !iter !res;
            if !res <= tol then status := Some Converged
            else begin
              (match
                 guard ~window:stagnation_window ~growth:divergence_factor best best_iter
                   !iter !res
               with
              | Some s -> status := Some s
              | None -> ());
              if !status = None then begin
                let z' = Precond.apply ?pool m r in
                let rz' = Vec.pdot ?pool r z' in
                let beta = rz' /. !rz in
                rz := rz';
                (* fused: p <- z' + beta p in one pass *)
                Vec.pxpby ?pool z' beta p
              end
            end
          end
        done;
        let status = match !status with Some s -> s | None -> Iteration_limit in
        (* On any exit that did not just verify [res <= tol] the recurrence
           residual may have drifted from the truth (most visibly on p.Ap
           breakdown, where the loop aborts with a stale update); recompute
           the true residual so [converged] cannot lie. *)
        let residual =
          match status with
          | Converged -> !res
          | _ -> Vec.pnorm2 ?pool (Vec.sub b (Sparse.mul ?pool a x)) /. nb
        in
        let converged = Float.is_finite residual && residual <= tol in
        record_attempt m_cg_iters m_cg_res !iter residual;
        {
          solution = x;
          iterations = !iter;
          residual;
          converged;
          status = (if converged then Converged else status);
          trace = Array.of_list (List.rev !trace);
          conv = history_finish hist;
        })

let cg_exn ?tol ?max_iter ?x0 a b =
  let r = cg ?tol ?max_iter ?x0 a b in
  if r.converged then r.solution else raise (Not_converged r)

(* Preconditioned BiCGStab (van der Vorst), Jacobi by default.  Same
   pooled-kernel discipline and persistent region as [cg]: reductions
   are chunk-deterministic, so the guard sees identical residuals with
   or without a pool. *)
let bicgstab ?(tol = 1e-10) ?max_iter ?x0 ?on_iterate ?stagnation_window
    ?(divergence_factor = default_divergence_factor) ?pool ?precond ?budget a b =
  let n = Sparse.rows a in
  if Sparse.cols a <> n then invalid_arg "Iterative.bicgstab: matrix not square";
  if Array.length b <> n then invalid_arg "Iterative.bicgstab: rhs dimension mismatch";
  match check_inputs a b with
  | Some where -> rejected n x0 where
  | None ->
    let max_iter = default_max_iter n max_iter in
    let stagnation_window = resolve_window max_iter stagnation_window in
    let m =
      match precond with
      | Some m -> m
      | None -> Precond.jacobi_of_diagonal (Sparse.diagonal a)
    in
    if Precond.dim m <> n then
      invalid_arg "Iterative.bicgstab: preconditioner dimension mismatch";
    Ttsv_parallel.Pool.with_region
      (Option.value pool ~default:Ttsv_parallel.Pool.seq)
      (fun () ->
    let apply_m v = Precond.apply ?pool m v in
    let x = match x0 with Some v -> Vec.copy v | None -> Vec.zeros n in
    let ax0 = Sparse.mul ?pool a x in
    budget_tick budget;
    Fault.poison "matvec" ax0;
    let r = Vec.sub b ax0 in
    let r_hat = Vec.copy r in
    let nb = norm_b_floor b in
    let rho = ref 1. and alpha = ref 1. and omega = ref 1. in
    let v = Vec.zeros n and p = Vec.zeros n in
    let res = ref (Vec.pnorm2 ?pool r /. nb) in
    let trace = ref [ !res ] in
    let hist = history_create "bicgstab" in
    history_record hist 0 !res;
    let iter = ref 0 in
    let best = ref !res and best_iter = ref 0 in
    let status = ref (if !res <= tol then Some Converged else None) in
    while !status = None && !iter < max_iter do
      match budget_status budget with
      | Some s -> status := Some s
      | None ->
      incr iter;
      let rho' = Vec.pdot ?pool r_hat r in
      if Float.abs rho' < 1e-300 then status := Some (Breakdown "rho underflow")
      else begin
        let beta = rho' /. !rho *. (!alpha /. !omega) in
        rho := rho';
        for i = 0 to n - 1 do
          p.(i) <- r.(i) +. (beta *. (p.(i) -. (!omega *. v.(i))))
        done;
        let p_hat = apply_m p in
        let v' = Sparse.mul ?pool a p_hat in
        budget_tick budget;
        Fault.poison "matvec" v';
        Array.blit v' 0 v 0 n;
        let denom = Vec.pdot ?pool r_hat v in
        if Float.abs denom < 1e-300 then status := Some (Breakdown "r_hat.v underflow")
        else begin
          alpha := rho' /. denom;
          let s = Vec.copy r in
          Vec.paxpy ?pool (-. !alpha) v s;
          if Vec.pnorm2 ?pool s /. nb <= tol then begin
            Vec.paxpy ?pool !alpha p_hat x;
            res := Vec.pnorm2 ?pool s /. nb;
            trace := !res :: !trace;
            history_record hist !iter !res;
            notify on_iterate !iter !res;
            status := Some Converged
          end
          else begin
            let s_hat = apply_m s in
            let t = Sparse.mul ?pool a s_hat in
            budget_tick budget;
            Fault.poison "matvec" t;
            let tt = Vec.pdot ?pool t t in
            if Float.abs tt < 1e-300 then status := Some (Breakdown "t.t underflow")
            else begin
              omega := Vec.pdot ?pool t s /. tt;
              Vec.paxpy ?pool !alpha p_hat x;
              Vec.paxpy ?pool !omega s_hat x;
              let r' = Vec.copy s in
              Vec.paxpy ?pool (-. !omega) t r';
              Array.blit r' 0 r 0 n;
              res := Vec.pnorm2 ?pool r /. nb;
              trace := !res :: !trace;
              history_record hist !iter !res;
              notify on_iterate !iter !res;
              if !res <= tol then status := Some Converged
              else
                match
                  guard ~window:stagnation_window ~growth:divergence_factor best best_iter
                    !iter !res
                with
                | Some s -> status := Some s
                | None -> ()
            end
          end
        end
      end
    done;
    let status = match !status with Some s -> s | None -> Iteration_limit in
    (* recompute true residual for the report *)
    let true_res = Vec.pnorm2 ?pool (Vec.sub b (Sparse.mul ?pool a x)) /. nb in
    let converged = Float.is_finite true_res && true_res <= tol in
    record_attempt m_bicg_iters m_bicg_res !iter true_res;
    {
      solution = x;
      iterations = !iter;
      residual = true_res;
      converged;
      status = (if converged then Converged else status);
      trace = Array.of_list (List.rev !trace);
      conv = history_finish hist;
    })

let stationary name ?(tol = 1e-10) ?max_iter ?on_iterate update a b =
  let n = Sparse.rows a in
  if Sparse.cols a <> n then invalid_arg ("Iterative." ^ name ^ ": matrix not square");
  if Array.length b <> n then invalid_arg ("Iterative." ^ name ^ ": rhs dimension mismatch");
  match check_inputs a b with
  | Some where -> rejected n None where
  | None ->
    let max_iter = default_max_iter n max_iter in
    let window = resolve_window max_iter None in
    let d = Sparse.diagonal a in
    Array.iter
      (fun di ->
        if Float.abs di < 1e-300 then invalid_arg ("Iterative." ^ name ^ ": zero diagonal"))
      d;
    let x = Vec.zeros n in
    let nb = norm_b_floor b in
    let res = ref (Vec.norm2 (Vec.sub b (Sparse.mat_vec a x)) /. nb) in
    let trace = ref [ !res ] in
    let iter = ref 0 in
    let best = ref !res and best_iter = ref 0 in
    let status = ref (if !res <= tol then Some Converged else None) in
    while !status = None && !iter < max_iter do
      incr iter;
      update a b d x;
      res := Vec.norm2 (Vec.sub b (Sparse.mat_vec a x)) /. nb;
      trace := !res :: !trace;
      notify on_iterate !iter !res;
      if !res <= tol then status := Some Converged
      else
        match
          guard ~window ~growth:default_divergence_factor best best_iter !iter !res
        with
        | Some s -> status := Some s
        | None -> ()
    done;
    let status = match !status with Some s -> s | None -> Iteration_limit in
    {
      solution = x;
      iterations = !iter;
      residual = !res;
      converged = !res <= tol;
      status;
      trace = Array.of_list (List.rev !trace);
      (* stationary methods are debugging tools, not ladder rungs; no
         replayable curve needed beyond [trace] *)
      conv = None;
    }

let jacobi ?tol ?max_iter a b =
  let update a b d x =
    let ax = Sparse.mat_vec a x in
    for i = 0 to Array.length x - 1 do
      x.(i) <- x.(i) +. ((b.(i) -. ax.(i)) /. d.(i))
    done
  in
  stationary "jacobi" ?tol ?max_iter update a b

(* A Gauss-Seidel / SOR sweep recomputes the residual of row i against the
   *current* x, which mixes old and new values as required.  Only the
   stored entries of row i are visited, so one sweep is O(nnz), not
   O(n^2). *)
let sweep omega a b d x =
  let n = Array.length x in
  for i = 0 to n - 1 do
    let acc = ref b.(i) in
    Sparse.iter_row a i (fun j v -> acc := !acc -. (v *. x.(j)));
    x.(i) <- x.(i) +. (omega *. !acc /. d.(i))
  done

let gauss_seidel ?tol ?max_iter a b = stationary "gauss_seidel" ?tol ?max_iter (sweep 1.) a b

let sor ?tol ?max_iter ~omega a b =
  if omega <= 0. || omega >= 2. then invalid_arg "Iterative.sor: omega must be in (0, 2)";
  stationary "sor" ?tol ?max_iter (sweep omega) a b
