type result = { solution : Vec.t; iterations : int; residual : float; converged : bool }

exception Not_converged of result

let norm_b_floor b = Float.max (Vec.norm2 b) 1e-300

let default_max_iter n max_iter =
  match max_iter with Some m -> m | None -> Stdlib.max 100 (10 * n)

(* Jacobi-preconditioned conjugate gradients. *)
let cg ?(tol = 1e-10) ?max_iter ?x0 a b =
  let n = Sparse.rows a in
  if Sparse.cols a <> n then invalid_arg "Iterative.cg: matrix not square";
  if Array.length b <> n then invalid_arg "Iterative.cg: rhs dimension mismatch";
  let max_iter = default_max_iter n max_iter in
  let d = Sparse.diagonal a in
  let precond = Array.map (fun di -> if Float.abs di > 1e-300 then 1. /. di else 1.) d in
  let x = match x0 with Some v -> Vec.copy v | None -> Vec.zeros n in
  let r = Vec.sub b (Sparse.mat_vec a x) in
  let z = Vec.map2 ( *. ) precond r in
  let p = Vec.copy z in
  let nb = norm_b_floor b in
  let rz = ref (Vec.dot r z) in
  let res = ref (Vec.norm2 r /. nb) in
  let iter = ref 0 in
  let continue_ = ref (!res > tol) in
  while !continue_ && !iter < max_iter do
    incr iter;
    let ap = Sparse.mat_vec a p in
    let pap = Vec.dot p ap in
    if Float.abs pap < 1e-300 then continue_ := false
    else begin
      let alpha = !rz /. pap in
      Vec.axpy alpha p x;
      Vec.axpy (-.alpha) ap r;
      res := Vec.norm2 r /. nb;
      if !res <= tol then continue_ := false
      else begin
        let z' = Vec.map2 ( *. ) precond r in
        let rz' = Vec.dot r z' in
        let beta = rz' /. !rz in
        rz := rz';
        for i = 0 to n - 1 do
          p.(i) <- z'.(i) +. (beta *. p.(i))
        done
      end
    end
  done;
  { solution = x; iterations = !iter; residual = !res; converged = !res <= tol }

let cg_exn ?tol ?max_iter ?x0 a b =
  let r = cg ?tol ?max_iter ?x0 a b in
  if r.converged then r.solution else raise (Not_converged r)

(* Jacobi-preconditioned BiCGStab (van der Vorst). *)
let bicgstab ?(tol = 1e-10) ?max_iter ?x0 a b =
  let n = Sparse.rows a in
  if Sparse.cols a <> n then invalid_arg "Iterative.bicgstab: matrix not square";
  if Array.length b <> n then invalid_arg "Iterative.bicgstab: rhs dimension mismatch";
  let max_iter = default_max_iter n max_iter in
  let d = Sparse.diagonal a in
  let precond = Array.map (fun di -> if Float.abs di > 1e-300 then 1. /. di else 1.) d in
  let apply_m v = Vec.map2 ( *. ) precond v in
  let x = match x0 with Some v -> Vec.copy v | None -> Vec.zeros n in
  let r = Vec.sub b (Sparse.mat_vec a x) in
  let r_hat = Vec.copy r in
  let nb = norm_b_floor b in
  let rho = ref 1. and alpha = ref 1. and omega = ref 1. in
  let v = Vec.zeros n and p = Vec.zeros n in
  let res = ref (Vec.norm2 r /. nb) in
  let iter = ref 0 in
  let continue_ = ref (!res > tol) in
  while !continue_ && !iter < max_iter do
    incr iter;
    let rho' = Vec.dot r_hat r in
    if Float.abs rho' < 1e-300 then continue_ := false
    else begin
      let beta = rho' /. !rho *. (!alpha /. !omega) in
      rho := rho';
      for i = 0 to n - 1 do
        p.(i) <- r.(i) +. (beta *. (p.(i) -. (!omega *. v.(i))))
      done;
      let p_hat = apply_m p in
      let v' = Sparse.mat_vec a p_hat in
      Array.blit v' 0 v 0 n;
      let denom = Vec.dot r_hat v in
      if Float.abs denom < 1e-300 then continue_ := false
      else begin
        alpha := rho' /. denom;
        let s = Vec.copy r in
        Vec.axpy (-. !alpha) v s;
        if Vec.norm2 s /. nb <= tol then begin
          Vec.axpy !alpha p_hat x;
          res := Vec.norm2 s /. nb;
          continue_ := false
        end
        else begin
          let s_hat = apply_m s in
          let t = Sparse.mat_vec a s_hat in
          let tt = Vec.dot t t in
          if Float.abs tt < 1e-300 then continue_ := false
          else begin
            omega := Vec.dot t s /. tt;
            Vec.axpy !alpha p_hat x;
            Vec.axpy !omega s_hat x;
            let r' = Vec.copy s in
            Vec.axpy (-. !omega) t r';
            Array.blit r' 0 r 0 n;
            res := Vec.norm2 r /. nb;
            if !res <= tol then continue_ := false
          end
        end
      end
    end
  done;
  (* recompute true residual for the report *)
  let true_res = Vec.norm2 (Vec.sub b (Sparse.mat_vec a x)) /. nb in
  { solution = x; iterations = !iter; residual = true_res; converged = true_res <= tol }

let stationary name ?(tol = 1e-10) ?max_iter update a b =
  let n = Sparse.rows a in
  if Sparse.cols a <> n then invalid_arg ("Iterative." ^ name ^ ": matrix not square");
  if Array.length b <> n then invalid_arg ("Iterative." ^ name ^ ": rhs dimension mismatch");
  let max_iter = default_max_iter n max_iter in
  let d = Sparse.diagonal a in
  Array.iter
    (fun di -> if Float.abs di < 1e-300 then invalid_arg ("Iterative." ^ name ^ ": zero diagonal"))
    d;
  let x = Vec.zeros n in
  let nb = norm_b_floor b in
  let res = ref (Vec.norm2 (Vec.sub b (Sparse.mat_vec a x)) /. nb) in
  let iter = ref 0 in
  while !res > tol && !iter < max_iter do
    incr iter;
    update a b d x;
    res := Vec.norm2 (Vec.sub b (Sparse.mat_vec a x)) /. nb
  done;
  { solution = x; iterations = !iter; residual = !res; converged = !res <= tol }

let jacobi ?tol ?max_iter a b =
  let update a b d x =
    let ax = Sparse.mat_vec a x in
    for i = 0 to Array.length x - 1 do
      x.(i) <- x.(i) +. ((b.(i) -. ax.(i)) /. d.(i))
    done
  in
  stationary "jacobi" ?tol ?max_iter update a b

(* A Gauss-Seidel / SOR sweep needs row access; recompute the residual of row
   i against the *current* x, which mixes old and new values as required. *)
let sweep omega a b d x =
  let n = Array.length x in
  for i = 0 to n - 1 do
    (* row residual with current values *)
    let acc = ref b.(i) in
    for j = 0 to n - 1 do
      let v = Sparse.get a i j in
      if v <> 0. then acc := !acc -. (v *. x.(j))
    done;
    x.(i) <- x.(i) +. (omega *. !acc /. d.(i))
  done

let gauss_seidel ?tol ?max_iter a b = stationary "gauss_seidel" ?tol ?max_iter (sweep 1.) a b

let sor ?tol ?max_iter ~omega a b =
  if omega <= 0. || omega >= 2. then invalid_arg "Iterative.sor: omega must be in (0, 2)";
  stationary "sor" ?tol ?max_iter (sweep omega) a b
