(** Richardson extrapolation for mesh-convergence studies.

    Given solutions computed at decreasing mesh sizes h with an error of
    the form C·hᵖ, these helpers estimate the converged value and the
    observed order — used by the convergence experiment to certify the
    finite-volume reference. *)

val two_point : order:float -> h_coarse:float -> v_coarse:float -> h_fine:float -> v_fine:float -> float
(** [two_point ~order ~h_coarse ~v_coarse ~h_fine ~v_fine] is the
    extrapolated limit v* = v_f + (v_f − v_c)/((h_c/h_f)^order − 1).
    Requires [h_coarse > h_fine > 0] ([Invalid_argument] otherwise). *)

val observed_order : h1:float -> v1:float -> h2:float -> v2:float -> h3:float -> v3:float -> float
(** [observed_order] estimates p from three values on a geometric mesh
    family: p = ln((v1 − v2)/(v2 − v3)) / ln(h1/h2).  Requires
    [h1 > h2 > h3 > 0] with [h1/h2 = h2/h3] (within 1 %), and monotone
    differences (raises [Invalid_argument] when the sequence has not
    entered its asymptotic regime). *)

val extrapolate_sequence : order:float -> (float * float) list -> float
(** [extrapolate_sequence ~order pairs] applies {!two_point} to the two
    finest of the given (h, value) pairs.  Needs at least two pairs. *)
