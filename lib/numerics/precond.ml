module Pool = Ttsv_parallel.Pool
module Budget = Ttsv_parallel.Budget
module Fault = Ttsv_parallel.Fault

(* Constructors are fallible by contract, so the chaos "precond" fault
   site maps onto the existing Error channel: callers (the Robust
   ladder) already demote on any construction failure. *)
let injected () = Fault.fire "precond"
let injected_error = "injected construction fault"

type kind = Jacobi | Ssor of float | Ic0 of float | Mg of int

type t = {
  kind : kind;
  dim : int;
  apply_fn : ?pool:Pool.t -> Vec.t -> Vec.t;
}

let name t =
  match t.kind with Jacobi -> "jacobi" | Ssor _ -> "ssor" | Ic0 _ -> "ic0" | Mg _ -> "mg"

let dim t = t.dim
let ic0_shift t = match t.kind with Ic0 s -> Some s | _ -> None
let ssor_omega t = match t.kind with Ssor w -> Some w | _ -> None
let mg_levels t = match t.kind with Mg l -> Some l | _ -> None

let apply ?pool t r =
  if Array.length r <> t.dim then
    invalid_arg
      (Printf.sprintf "Precond.apply: vector has dimension %d, expected %d" (Array.length r)
         t.dim);
  t.apply_fn ?pool r

(* ------------------------------------------------------------- Jacobi *)

(* The diagonal fallback: never fails.  Zero/denormal diagonal entries
   map to 1 (identity on that component) so a structurally defective
   matrix still gets an answer from CG's own guards rather than a
   division blow-up here. *)
let jacobi_of_diagonal d =
  let n = Array.length d in
  let inv = Array.map (fun di -> if Float.abs di > 1e-300 then 1. /. di else 1.) d in
  let apply_fn ?pool r =
    let z = Array.make n 0. in
    Pool.for_chunks ~chunk:2048
      (Option.value pool ~default:Pool.seq)
      n
      (fun ~lo ~hi ->
        for i = lo to hi - 1 do
          z.(i) <- inv.(i) *. r.(i)
        done);
    z
  in
  { kind = Jacobi; dim = n; apply_fn }

let jacobi a = jacobi_of_diagonal (Sparse.diagonal a)

(* --------------------------------------------------------------- SSOR *)

(* M = (D + wL) D^-1 (D + wU) / (w (2 - w)): matrix-free in the sense
   that only the CSR arrays of A are referenced — no factorization is
   stored.  Each application is two O(nnz) triangular sweeps, reusing
   the same row walk as the Gauss-Seidel machinery.  The sweeps are
   inherently sequential (each unknown depends on the previous ones), so
   [?pool] is ignored: pooled and sequential applications are trivially
   identical. *)
let ssor ?(omega = 1.0) a =
  if not (omega > 0. && omega < 2.) then invalid_arg "Precond.ssor: omega must be in (0, 2)";
  let n = Sparse.rows a in
  if injected () then Error injected_error
  else if Sparse.cols a <> n then Error "matrix not square"
  else begin
    let d = Sparse.diagonal a in
    if Array.exists (fun di -> Float.abs di < 1e-300) d then Error "zero diagonal entry"
    else begin
      let row_ptr, col_idx, values = Sparse.csr a in
      let scale = omega *. (2. -. omega) in
      let apply_fn ?pool:_ r =
        (* forward sweep: (D + wL) u = r *)
        let u = Array.make n 0. in
        for i = 0 to n - 1 do
          let acc = ref r.(i) in
          let k = ref row_ptr.(i) in
          let stop = row_ptr.(i + 1) in
          while !k < stop && col_idx.(!k) < i do
            acc := !acc -. (omega *. values.(!k) *. u.(col_idx.(!k)));
            incr k
          done;
          u.(i) <- !acc /. d.(i)
        done;
        (* backward sweep: (D + wU) z = D u, then scale by w (2 - w) *)
        let z = Array.make n 0. in
        for i = n - 1 downto 0 do
          let acc = ref (d.(i) *. u.(i)) in
          for k = row_ptr.(i + 1) - 1 downto row_ptr.(i) do
            let j = col_idx.(k) in
            if j > i then acc := !acc -. (omega *. values.(k) *. z.(j))
          done;
          z.(i) <- scale *. !acc /. d.(i)
        done;
        z
      in
      Ok { kind = Ssor omega; dim = n; apply_fn }
    end
  end

(* -------------------------------------------------------------- IC(0) *)

let default_shifts = [ 0.; 1e-3; 1e-2; 1e-1; 1. ]

(* Incomplete Cholesky with zero fill: L has exactly the lower-triangle
   sparsity of A.  Entries are produced row by row,

      L[i,j] = (A[i,j] - sum_{k<j} L[i,k] L[j,k]) / L[j,j]   (j < i)
      L[i,i] = sqrt(A[i,i] (1 + shift) - sum_{k<i} L[i,k]^2)

   with the inner sums computed as sorted-merge intersections of the two
   CSR rows.  A non-positive pivot is the classical IC(0) breakdown on
   matrices that are SPD but not H-matrices; the standard remedy is to
   refactor with a progressively larger relative diagonal shift
   (Manteuffel 1980), which this constructor does internally before
   giving up. *)
let ic0 ?(shifts = default_shifts) ?budget a =
  let n = Sparse.rows a in
  if injected () then Error injected_error
  else if Sparse.cols a <> n then Error "matrix not square"
  else begin
    let row_ptr, col_idx, values = Sparse.csr a in
    (* lower-triangular pattern, diagonal included and required *)
    let l_ptr = Array.make (n + 1) 0 in
    let count = ref 0 in
    let missing_diag = ref (-1) in
    for i = 0 to n - 1 do
      l_ptr.(i) <- !count;
      let has_diag = ref false in
      for k = row_ptr.(i) to row_ptr.(i + 1) - 1 do
        let j = col_idx.(k) in
        if j < i then incr count
        else if j = i then begin
          has_diag := true;
          incr count
        end
      done;
      if (not !has_diag) && !missing_diag < 0 then missing_diag := i
    done;
    l_ptr.(n) <- !count;
    if !missing_diag >= 0 then
      Error (Printf.sprintf "row %d has no stored diagonal entry" !missing_diag)
    else begin
      let nnz_l = !count in
      let l_col = Array.make nnz_l 0 in
      let a_low = Array.make nnz_l 0. in
      let pos = ref 0 in
      for i = 0 to n - 1 do
        for k = row_ptr.(i) to row_ptr.(i + 1) - 1 do
          let j = col_idx.(k) in
          if j <= i then begin
            l_col.(!pos) <- j;
            a_low.(!pos) <- values.(k);
            incr pos
          end
        done
      done;
      (* columns sorted within each row, so the diagonal of row i is the
         last entry of its lower pattern: index l_ptr.(i+1) - 1 *)
      let l_val = Array.make nnz_l 0. in
      let factor shift =
        let ok = ref true in
        let i = ref 0 in
        while !ok && !i < n do
          let rlo = l_ptr.(!i) and rhi = l_ptr.(!i + 1) in
          let k = ref rlo in
          while !ok && !k < rhi do
            let j = l_col.(!k) in
            (* s = <row i, row j> over shared columns < j *)
            let s = ref 0. in
            let pa = ref rlo and pb = ref l_ptr.(j) in
            let alim = !k and blim = l_ptr.(j + 1) - 1 in
            while !pa < alim && !pb < blim do
              let ca = l_col.(!pa) and cb = l_col.(!pb) in
              if ca = cb then begin
                s := !s +. (l_val.(!pa) *. l_val.(!pb));
                incr pa;
                incr pb
              end
              else if ca < cb then incr pa
              else incr pb
            done;
            if j < !i then l_val.(!k) <- (a_low.(!k) -. !s) /. l_val.(l_ptr.(j + 1) - 1)
            else begin
              let piv = (a_low.(!k) *. (1. +. shift)) -. !s in
              if piv > 1e-300 then l_val.(!k) <- sqrt piv else ok := false
            end;
            incr k
          done;
          incr i
        done;
        !ok
      in
      (* each shift retry is a full O(nnz) refactorization, so the budget
         is polled between them: an expired budget reports as a
         construction failure and the ladder demotes to a cheaper rung *)
      let rec attempt = function
        | [] -> Error "non-positive pivot at every diagonal shift"
        | shift :: rest -> (
          match Option.bind budget Budget.check with
          | Some v -> Error (Format.asprintf "budget expired (%a)" Budget.pp_verdict v)
          | None -> if factor shift then Ok shift else attempt rest)
      in
      match attempt shifts with
      | Error _ as e -> e
      | Ok shift ->
        let apply_fn ?pool:_ r =
          (* forward substitution: L y = r *)
          let y = Array.make n 0. in
          for i = 0 to n - 1 do
            let acc = ref r.(i) in
            let di = l_ptr.(i + 1) - 1 in
            for k = l_ptr.(i) to di - 1 do
              acc := !acc -. (l_val.(k) *. y.(l_col.(k)))
            done;
            y.(i) <- !acc /. l_val.(di)
          done;
          (* backward substitution: L^T z = y, via column saxpy on L's
             rows (in place on y) *)
          for i = n - 1 downto 0 do
            let di = l_ptr.(i + 1) - 1 in
            let zi = y.(i) /. l_val.(di) in
            y.(i) <- zi;
            for k = l_ptr.(i) to di - 1 do
              let j = l_col.(k) in
              y.(j) <- y.(j) -. (l_val.(k) *. zi)
            done
          done;
          y
        in
        Ok { kind = Ic0 shift; dim = n; apply_fn }
    end
  end

(* ---------------------------------------------------------- multigrid *)

(* One symmetric V-cycle per application.  The hierarchy setup can fail
   (shape mismatch, zero diagonal, singular coarse operator, expired
   budget) and doubles as the "precond" chaos site, exactly like the
   other fallible constructors; the budget is captured by the hierarchy
   and keeps being polled inside every cycle, so an expiry mid-V-cycle
   surfaces as [Budget.Expired] from [apply]. *)
let mg ?pool ?budget ~shape a =
  if injected () then Error injected_error
  else
    match Multigrid.build ?pool ?budget ~shape a with
    | Error _ as e -> e
    | Ok hierarchy ->
      let apply_fn ?pool r = Multigrid.cycle ?pool hierarchy r in
      Ok { kind = Mg (Multigrid.num_levels hierarchy); dim = Sparse.rows a; apply_fn }
