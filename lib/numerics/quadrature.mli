(** Numerical integration.

    Used by the test suite to validate closed forms against their defining
    integrals — e.g. the paper's eq. 9 liner resistance, stated as an
    integral and evaluated analytically in {!Ttsv_core.Resistances} — and
    available for material laws with no antiderivative. *)

val simpson : ?intervals:int -> (float -> float) -> float -> float -> float
(** [simpson f a b] is the composite Simpson rule with [intervals]
    (default 128, forced even) subdivisions.  Exact for cubics. *)

val adaptive :
  ?tol:float -> ?max_depth:int -> (float -> float) -> float -> float -> float
(** [adaptive f a b] is adaptive Simpson quadrature with local error
    control ([tol] defaults to 1e-12 of the running estimate,
    [max_depth] to 40 bisection levels; subintervals that cannot meet
    the tolerance contribute their best estimate). *)

val trapezoid : ?intervals:int -> (float -> float) -> float -> float -> float
(** Composite trapezoid rule (default 256 subdivisions) — the
    second-order baseline the tests compare convergence orders
    against. *)
