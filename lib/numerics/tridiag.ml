type t = { lower : float array; diag : float array; upper : float array }

let create ~lower ~diag ~upper =
  let n = Array.length diag in
  if Array.length lower <> n - 1 || Array.length upper <> n - 1 then
    invalid_arg "Tridiag.create: off-diagonals must have length n-1";
  { lower; diag; upper }

let order t = Array.length t.diag

(* Thomas algorithm: forward elimination then back substitution on copies. *)
let solve t b =
  let n = order t in
  if Array.length b <> n then invalid_arg "Tridiag.solve: dimension mismatch";
  if n = 0 then [||]
  else begin
    let c' = Array.make (Stdlib.max (n - 1) 0) 0. in
    let d' = Array.make n 0. in
    let pivot0 = t.diag.(0) in
    if Float.abs pivot0 < 1e-300 then raise Dense.Singular;
    if n > 1 then c'.(0) <- t.upper.(0) /. pivot0;
    d'.(0) <- b.(0) /. pivot0;
    for i = 1 to n - 1 do
      let denom = t.diag.(i) -. (t.lower.(i - 1) *. c'.(i - 1)) in
      if Float.abs denom < 1e-300 then raise Dense.Singular;
      if i < n - 1 then c'.(i) <- t.upper.(i) /. denom;
      d'.(i) <- (b.(i) -. (t.lower.(i - 1) *. d'.(i - 1))) /. denom
    done;
    let x = Array.make n 0. in
    x.(n - 1) <- d'.(n - 1);
    for i = n - 2 downto 0 do
      x.(i) <- d'.(i) -. (c'.(i) *. x.(i + 1))
    done;
    x
  end

let mat_vec t x =
  let n = order t in
  if Array.length x <> n then invalid_arg "Tridiag.mat_vec: dimension mismatch";
  Array.init n (fun i ->
      let acc = ref (t.diag.(i) *. x.(i)) in
      if i > 0 then acc := !acc +. (t.lower.(i - 1) *. x.(i - 1));
      if i < n - 1 then acc := !acc +. (t.upper.(i) *. x.(i + 1));
      !acc)

let to_dense t =
  let n = order t in
  Dense.init n n (fun i j ->
      if i = j then t.diag.(i)
      else if i = j + 1 then t.lower.(j)
      else if j = i + 1 then t.upper.(i)
      else 0.)
