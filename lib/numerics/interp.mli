(** Piecewise interpolation over tabulated data.

    Used for temperature-dependent material properties and for reading
    values off computed sweep curves (e.g. finding the crossover thickness
    in the Fig. 6 reproduction). *)

type t
(** A piecewise-linear interpolant over strictly increasing abscissae. *)

val create : xs:float array -> ys:float array -> t
(** [create ~xs ~ys] builds an interpolant.  Raises [Invalid_argument] when
    lengths differ, fewer than two points are given, or [xs] is not
    strictly increasing. *)

val of_points : (float * float) list -> t
(** [of_points pts] sorts the points by abscissa and builds the
    interpolant.  Duplicate abscissae raise [Invalid_argument]. *)

val eval : t -> float -> float
(** [eval t x] evaluates with constant extrapolation outside the table. *)

val eval_extrapolate : t -> float -> float
(** [eval_extrapolate t x] evaluates with linear extrapolation from the
    terminal segments. *)

val domain : t -> float * float
(** [domain t] is [(min_x, max_x)]. *)

val derivative : t -> float -> float
(** [derivative t x] is the slope of the segment containing [x] (the right
    segment at knots; terminal slopes outside the domain). *)
