(** Tridiagonal linear systems (Thomas algorithm).

    Ladder-style thermal networks such as the paper's Model B reduce, in
    their decoupled-column form, to tridiagonal systems; the finite-volume
    solver also uses this module for 1-D slab reference solutions.

    A system of order [n] is represented by its three diagonals:
    [lower] (length [n-1], entry [i] sits on row [i+1]),
    [diag]  (length [n]), and
    [upper] (length [n-1], entry [i] sits on row [i]). *)

type t = { lower : float array; diag : float array; upper : float array }

val create : lower:float array -> diag:float array -> upper:float array -> t
(** [create ~lower ~diag ~upper] validates lengths and packs the system.
    Raises [Invalid_argument] if [lower] and [upper] are not one shorter
    than [diag]. *)

val order : t -> int
(** Number of unknowns. *)

val solve : t -> Vec.t -> Vec.t
(** [solve sys b] solves the tridiagonal system by the Thomas algorithm
    (no pivoting; raises {!Dense.Singular} if a pivot underflows).  The
    algorithm is stable for the diagonally dominant matrices produced by
    conductance stamping. *)

val mat_vec : t -> Vec.t -> Vec.t
(** [mat_vec sys x] multiplies the tridiagonal matrix by [x]; used by the
    tests to verify residuals. *)

val to_dense : t -> Dense.t
(** Expands to a dense matrix (testing/debugging). *)
