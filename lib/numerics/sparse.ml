type t = {
  nrows : int;
  ncols : int;
  row_ptr : int array; (* length nrows + 1 *)
  col_idx : int array; (* length nnz, sorted within each row *)
  values : float array;
}

type builder = {
  b_rows : int;
  b_cols : int;
  mutable n : int;
  mutable ri : int array;
  mutable ci : int array;
  mutable vs : float array;
}

let builder ?(hint = 64) nrows ncols =
  let hint = Stdlib.max hint 1 in
  { b_rows = nrows; b_cols = ncols; n = 0; ri = Array.make hint 0; ci = Array.make hint 0; vs = Array.make hint 0. }

let grow b =
  let cap = Array.length b.ri in
  let cap' = 2 * cap in
  let extend a fill =
    let a' = Array.make cap' fill in
    Array.blit a 0 a' 0 cap;
    a'
  in
  b.ri <- extend b.ri 0;
  b.ci <- extend b.ci 0;
  b.vs <- extend b.vs 0.

let add b i j x =
  if i < 0 || i >= b.b_rows || j < 0 || j >= b.b_cols then
    invalid_arg (Printf.sprintf "Sparse.add: index (%d,%d) out of %dx%d" i j b.b_rows b.b_cols);
  if b.n = Array.length b.ri then grow b;
  b.ri.(b.n) <- i;
  b.ci.(b.n) <- j;
  b.vs.(b.n) <- x;
  b.n <- b.n + 1

(* Two-pass counting sort by row, then per-row sort by column with duplicate
   summation. *)
let finalize b =
  let nrows = b.b_rows and ncols = b.b_cols in
  let counts = Array.make (nrows + 1) 0 in
  for k = 0 to b.n - 1 do
    counts.(b.ri.(k) + 1) <- counts.(b.ri.(k) + 1) + 1
  done;
  for i = 1 to nrows do
    counts.(i) <- counts.(i) + counts.(i - 1)
  done;
  let fill = Array.copy counts in
  let cols_tmp = Array.make b.n 0 in
  let vals_tmp = Array.make b.n 0. in
  for k = 0 to b.n - 1 do
    let r = b.ri.(k) in
    let pos = fill.(r) in
    cols_tmp.(pos) <- b.ci.(k);
    vals_tmp.(pos) <- b.vs.(k);
    fill.(r) <- pos + 1
  done;
  (* per-row: sort by column and merge duplicates *)
  let row_ptr = Array.make (nrows + 1) 0 in
  let col_out = Array.make b.n 0 in
  let val_out = Array.make b.n 0. in
  let out = ref 0 in
  for r = 0 to nrows - 1 do
    row_ptr.(r) <- !out;
    let lo = counts.(r) and hi = fill.(r) in
    let len = hi - lo in
    if len > 0 then begin
      let order = Array.init len (fun i -> lo + i) in
      Array.sort (fun a bidx -> compare cols_tmp.(a) cols_tmp.(bidx)) order;
      let k = ref 0 in
      while !k < len do
        let c = cols_tmp.(order.(!k)) in
        let acc = ref 0. in
        while !k < len && cols_tmp.(order.(!k)) = c do
          acc := !acc +. vals_tmp.(order.(!k));
          incr k
        done;
        col_out.(!out) <- c;
        val_out.(!out) <- !acc;
        incr out
      done
    end
  done;
  row_ptr.(nrows) <- !out;
  {
    nrows;
    ncols;
    row_ptr;
    col_idx = Array.sub col_out 0 !out;
    values = Array.sub val_out 0 !out;
  }

let of_csr ~nrows ~ncols ~row_ptr ~col_idx ~values =
  if nrows < 0 || ncols < 0 then invalid_arg "Sparse.of_csr: negative dimension";
  if Array.length row_ptr <> nrows + 1 then invalid_arg "Sparse.of_csr: row_ptr length";
  if Array.length col_idx <> Array.length values then
    invalid_arg "Sparse.of_csr: col_idx/values length mismatch";
  if nrows > 0 && row_ptr.(0) <> 0 then invalid_arg "Sparse.of_csr: row_ptr must start at 0";
  if (nrows = 0 || row_ptr.(nrows) = Array.length values) = false then
    invalid_arg "Sparse.of_csr: row_ptr end does not match nnz";
  for i = 0 to nrows - 1 do
    if row_ptr.(i + 1) < row_ptr.(i) then invalid_arg "Sparse.of_csr: row_ptr not monotone";
    for k = row_ptr.(i) to row_ptr.(i + 1) - 1 do
      if col_idx.(k) < 0 || col_idx.(k) >= ncols then
        invalid_arg "Sparse.of_csr: column index out of range";
      if k > row_ptr.(i) && col_idx.(k) <= col_idx.(k - 1) then
        invalid_arg "Sparse.of_csr: columns not strictly increasing within a row"
    done
  done;
  { nrows; ncols; row_ptr; col_idx; values }

let rows m = m.nrows
let cols m = m.ncols
let nnz m = Array.length m.values

let row_dot m (x : float array) i =
  let acc = ref 0. in
  for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
    acc := !acc +. (m.values.(k) *. x.(m.col_idx.(k)))
  done;
  !acc

let mat_vec m x =
  if Array.length x <> m.ncols then invalid_arg "Sparse.mat_vec: dimension mismatch";
  Array.init m.nrows (fun i -> row_dot m x i)

(* Row-parallel product: each row is one accumulation in the same order
   as [mat_vec], written to a disjoint slot, so the pooled result is
   bitwise identical to the sequential one. *)
let mul ?pool m x =
  match pool with
  | None -> mat_vec m x
  | Some pool ->
    if Array.length x <> m.ncols then invalid_arg "Sparse.mul: dimension mismatch";
    let out = Array.make m.nrows 0. in
    Ttsv_parallel.Pool.for_chunks ~chunk:256 ~min_size:512 pool m.nrows (fun ~lo ~hi ->
        for i = lo to hi - 1 do
          out.(i) <- row_dot m x i
        done);
    out

let diagonal m =
  Array.init m.nrows (fun i ->
      let acc = ref 0. in
      for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
        if m.col_idx.(k) = i then acc := !acc +. m.values.(k)
      done;
      !acc)

let csr m = (m.row_ptr, m.col_idx, m.values)

let get m i j =
  if i < 0 || i >= m.nrows || j < 0 || j >= m.ncols then
    invalid_arg "Sparse.get: index out of range";
  let acc = ref 0. in
  for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
    if m.col_idx.(k) = j then acc := !acc +. m.values.(k)
  done;
  !acc

let iter_row m i f =
  if i < 0 || i >= m.nrows then invalid_arg "Sparse.iter_row: row out of range";
  for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
    f m.col_idx.(k) m.values.(k)
  done

let bandwidth m =
  let bw = ref 0 in
  for i = 0 to m.nrows - 1 do
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      bw := Stdlib.max !bw (abs (m.col_idx.(k) - i))
    done
  done;
  !bw

let all_finite m = Array.for_all Float.is_finite m.values

let to_dense m =
  let d = Dense.create m.nrows m.ncols in
  for i = 0 to m.nrows - 1 do
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      Dense.add_to d i m.col_idx.(k) m.values.(k)
    done
  done;
  d

let of_dense ?(drop_tol = 0.) d =
  let b = builder (Dense.rows d) (Dense.cols d) in
  for i = 0 to Dense.rows d - 1 do
    for j = 0 to Dense.cols d - 1 do
      let x = Dense.get d i j in
      if Float.abs x > drop_tol || (x <> 0. && drop_tol = 0.) then add b i j x
    done
  done;
  finalize b

let transpose m =
  let b = builder ~hint:(nnz m) m.ncols m.nrows in
  for i = 0 to m.nrows - 1 do
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      add b m.col_idx.(k) i m.values.(k)
    done
  done;
  finalize b

let is_symmetric ?(tol = 1e-10) m =
  m.nrows = m.ncols
  &&
  let mt = transpose m in
  let scale = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 1. m.values in
  let ok = ref true in
  (* same structure after finalize: compare row by row *)
  if m.row_ptr <> mt.row_ptr || m.col_idx <> mt.col_idx then ok := false
  else
    Array.iteri
      (fun k v -> if Float.abs (v -. mt.values.(k)) > tol *. scale then ok := false)
      m.values;
  !ok
