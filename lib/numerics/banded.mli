(** Banded linear systems.

    Model B's π-segment ladder produces matrices whose bandwidth is the
    node-numbering distance between the two rails (2 for the interleaved
    numbering used by {!Ttsv_core.Model_b}); a banded LU solves them in
    O(n·bw²) instead of O(n³).

    Storage is the LAPACK-style band layout: entry [(i, j)] with
    [|i - j| <= bw] lives at [band.(i).(j - i + bw)]. *)

type t

val create : n:int -> bw:int -> t
(** [create ~n ~bw] is an [n x n] zero matrix with half-bandwidth [bw]. *)

val order : t -> int

val bandwidth : t -> int

val get : t -> int -> int -> float
(** [get m i j] is the entry at [(i, j)]; [0.] outside the band. *)

val set : t -> int -> int -> float -> unit
(** [set m i j x] writes inside the band; raises [Invalid_argument] when
    [(i, j)] lies outside it. *)

val add_to : t -> int -> int -> float -> unit
(** Accumulating variant of {!set}. *)

val of_dense : bw:int -> Dense.t -> t
(** [of_dense ~bw m] copies the band of a dense matrix; raises
    [Invalid_argument] if [m] has nonzeros outside the band. *)

val to_dense : t -> Dense.t

val mat_vec : t -> Vec.t -> Vec.t

val solve : t -> Vec.t -> Vec.t
(** [solve m b] performs an in-band Gaussian elimination *without
    pivoting* — valid for the diagonally dominant conductance matrices this
    library builds — on a copy of [m].  Raises {!Dense.Singular} when a
    pivot underflows. *)
