(** Geometric multigrid V-cycles for structured tensor grids.

    The FV discretisations all live on tensor-product grids — the 2-D
    r–z unit cell ([Grid], shape [|nr; nz|]) and the 3-D chip stack
    ([Grid3], shape [|nx; ny; nz|]) — indexed with the first dimension
    varying fastest.  That structure makes geometric coarsening trivial:
    no aggregation heuristics, just cell-centred coarsening by two along
    the strongly coupled dimension.

    A hierarchy built here is used as a preconditioner (one symmetric
    V(ν,ν) cycle per application, see {!Precond.mg}): Chebyshev
    smoothing with equal pre- and post-sweep degrees and Galerkin coarse
    operators [Ac = Pᵀ A P] keep the cycle a symmetric positive-definite
    operator, so it is safe inside CG.  Every kernel in the cycle —
    smoothing polynomials, per-line solves, residuals, grid transfers
    (stored as sparse matrices), corrections — is an embarrassingly
    parallel map, a set of independent line solves or a {!Sparse.mul},
    so unlike the IC(0)/SSOR triangular sweeps the whole preconditioner
    runs through {!Ttsv_parallel.Pool} and stays bitwise deterministic
    for any domain count.

    Robustness on the anisotropic, graded, coefficient-jumping grids
    comes from three choices working together:

    - {e Semicoarsening}: per-dimension coupling strengths are measured
      from the matrix stencil (off-diagonal mass at ±1 steps along each
      dimension) and only the strongest-coupled dimension is coarsened
      on each level — on the r–z grids the graded radial spacings
      dominate, so the radial extent shrinks first while the axial
      direction rides along at full resolution until radial coupling is
      exhausted.
    - {e Operator-induced interpolation}: each fine cell interpolates
      from its two coarse parents weighted by the fine-grid couplings
      toward each, which encode both the graded spacings and the
      conductivity jumps that positional 3/4–1/4 weights get wrong.
    - {e Line smoothing}: the smoother's inner preconditioner is the
      block diagonal of whole grid lines along the strongest uncoarsened
      dimension (banded LU per line, every line independent), wrapped in
      a Chebyshev polynomial.  A line solve damps every mode that is
      oscillatory along the coarsened dimension by a bounded factor
      {e whatever the local anisotropy} — the property point smoothers
      lose on grids whose strong direction varies from region to region
      (the liner annulus, the thin stacked layers).  Levels with no
      second dimension left fall back to the point diagonal. *)

type t
(** An immutable multigrid hierarchy for one SPD matrix. *)

val build :
  ?pool:Ttsv_parallel.Pool.t ->
  ?budget:Ttsv_parallel.Budget.t ->
  ?max_levels:int ->
  ?coarse_cap:int ->
  ?nu:int ->
  shape:int array ->
  Sparse.t ->
  (t, string) result
(** [build ~shape a] constructs the hierarchy for [a], whose rows are
    the cells of a tensor grid of extents [shape] (first dimension
    fastest-varying, so [Array.fold_left ( * ) 1 shape = rows a]).
    Levels are added until the coarsest system has at most [coarse_cap]
    cells (default 200; it is then LU-factored once, dense) or
    [max_levels] (default 32) is reached.  [nu] (default 2) is the
    degree of the Chebyshev smoothing polynomial, applied identically
    pre- and post-correction — the cycle is V(ν,ν) by construction so
    the preconditioner stays symmetric positive definite.

    Setup is sequential where summation order matters (the Galerkin
    triple products), so the hierarchy is identical whatever [pool] is
    supplied; [budget] is polled between levels and makes [build] return
    [Error "budget expired (..)"] rather than overrun a deadline.

    Returns [Error _] (never raises) on shape/matrix mismatch, a zero
    diagonal entry on any level, or a singular coarsest operator.
    Raises [Invalid_argument] only for genuine programming errors:
    [nu < 1], [max_levels < 1], [coarse_cap < 1]. *)

val cycle : ?pool:Ttsv_parallel.Pool.t -> t -> Vec.t -> Vec.t
(** [cycle mg r] applies one symmetric V(ν,ν) cycle to the residual [r]
    — i.e. computes [M⁻¹ r] for the multigrid preconditioner [M].  The
    budget captured at {!build} time is polled once per level on the way
    down and ticked per matrix-vector product; expiry raises
    {!Ttsv_parallel.Budget.Expired} mid-cycle, which {!Robust.solve}
    turns into a typed [Deadline_exceeded] carrying the best iterate.
    Bitwise deterministic across pool sizes. *)

val conv : t -> Ttsv_obs.History.snapshot option
(** Per-V-cycle convergence history (method ["mg"]): one entry per
    {!cycle} call, recording the 2-norm of the residual handed in.
    [None] unless observability was enabled when {!build} ran — the
    disabled path allocates no ring buffer.  Driving the same hierarchy
    through many CG solves keeps appending; the ring keeps the last
    {!Ttsv_obs.History.default_cap} entries. *)

val num_levels : t -> int
(** Number of levels in the hierarchy, finest first (at least 1). *)

val level_shape : t -> int -> int array
(** [level_shape mg l] is the tensor-grid extents of level [l]
    (a fresh copy; [l = 0] is the finest level). *)

val level_matrix : t -> int -> Sparse.t
(** [level_matrix mg l] is the (Galerkin) operator on level [l]. *)

val restrict : ?pool:Ttsv_parallel.Pool.t -> t -> level:int -> Vec.t -> Vec.t
(** [restrict mg ~level v] maps a fine vector on [level] to [level + 1]
    via [Pᵀ].  Raises [Invalid_argument] on the coarsest level. *)

val prolong : ?pool:Ttsv_parallel.Pool.t -> t -> level:int -> Vec.t -> Vec.t
(** [prolong mg ~level v] maps a coarse vector on [level + 1] up to
    [level] via [P] — the exact transpose of {!restrict}, making the
    pair adjoint: [⟨P xc, yf⟩ = ⟨xc, Pᵀ yf⟩]. *)

val smooth :
  ?pool:Ttsv_parallel.Pool.t -> t -> level:int -> sweeps:int -> Vec.t -> Vec.t -> Vec.t
(** [smooth mg ~level ~sweeps x b] applies the level's degree-[sweeps]
    Chebyshev smoothing polynomial to [a x = b] from iterate [x] (not
    mutated; a fresh vector is returned; [sweeps = 0] returns [x]
    unchanged).  Exposed for the convergence property tests. *)
