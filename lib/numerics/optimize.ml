type minimum = { xmin : Vec.t; fmin : float; iterations : int; converged : bool }

let nelder_mead ?(tol = 1e-10) ?(max_iter = 2000) ?step f x0 =
  let n = Array.length x0 in
  if n = 0 then invalid_arg "Optimize.nelder_mead: empty starting point";
  let step_for i = match step with Some s -> s | None -> 0.1 *. (1. +. Float.abs x0.(i)) in
  (* simplex of n+1 vertices with their values, kept sorted best-first *)
  let vertices =
    Array.init (n + 1) (fun k ->
        let x = Vec.copy x0 in
        if k > 0 then x.(k - 1) <- x.(k - 1) +. step_for (k - 1);
        (x, f x))
  in
  let sort () = Array.sort (fun (_, fa) (_, fb) -> compare fa fb) vertices in
  sort ();
  let centroid_excl_worst () =
    let c = Vec.zeros n in
    for k = 0 to n - 1 do
      let x, _ = vertices.(k) in
      Vec.axpy 1. x c
    done;
    Vec.scale_in_place (1. /. float_of_int n) c;
    c
  in
  let combine c x alpha = Vec.init n (fun i -> c.(i) +. (alpha *. (c.(i) -. x.(i)))) in
  let iter = ref 0 in
  (* converged when BOTH the function values and the vertex positions have
     collapsed: a function-only criterion stalls when the simplex straddles
     the minimum with equal values (e.g. symmetric 1-d quadratics) *)
  let spread () =
    let _, fbest = vertices.(0) and _, fworst = vertices.(n) in
    Float.abs (fworst -. fbest)
  in
  let diameter () =
    let xb, _ = vertices.(0) in
    let d = ref 0. in
    for k = 1 to n do
      let x, _ = vertices.(k) in
      for i = 0 to n - 1 do
        d := Float.max !d (Float.abs (x.(i) -. xb.(i)))
      done
    done;
    !d
  in
  let scale () =
    let xb, _ = vertices.(0) in
    1. +. Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0. xb
  in
  let converged () = spread () <= tol && diameter () <= sqrt tol *. scale () in
  while (not (converged ())) && !iter < max_iter do
    incr iter;
    let c = centroid_excl_worst () in
    let xw, fw = vertices.(n) in
    let _, fbest = vertices.(0) in
    let _, fsecond = vertices.(n - 1) in
    let xr = combine c xw 1. in
    let fr = f xr in
    if fr < fbest then begin
      (* try expansion *)
      let xe = combine c xw 2. in
      let fe = f xe in
      if fe < fr then vertices.(n) <- (xe, fe) else vertices.(n) <- (xr, fr)
    end
    else if fr < fsecond then vertices.(n) <- (xr, fr)
    else begin
      (* contraction: outside if reflected better than worst, else inside *)
      let xc, fc =
        if fr < fw then
          let x = combine c xw 0.5 in
          (x, f x)
        else
          let x = combine c xw (-0.5) in
          (x, f x)
      in
      if fc < Float.min fr fw then vertices.(n) <- (xc, fc)
      else begin
        (* shrink toward best *)
        let xb, _ = vertices.(0) in
        for k = 1 to n do
          let x, _ = vertices.(k) in
          let x' = Vec.init n (fun i -> xb.(i) +. (0.5 *. (x.(i) -. xb.(i)))) in
          vertices.(k) <- (x', f x')
        done
      end
    end;
    sort ()
  done;
  let xbest, fbest = vertices.(0) in
  { xmin = xbest; fmin = fbest; iterations = !iter; converged = converged () }

let phi = (sqrt 5. -. 1.) /. 2.

let golden_section ?(tol = 1e-9) ?(max_iter = 500) f a b =
  let a = ref (Float.min a b) and b = ref (Float.max a b) in
  let x1 = ref (!b -. (phi *. (!b -. !a))) in
  let x2 = ref (!a +. (phi *. (!b -. !a))) in
  let f1 = ref (f !x1) and f2 = ref (f !x2) in
  let iter = ref 0 in
  while !b -. !a > tol && !iter < max_iter do
    incr iter;
    if !f1 < !f2 then begin
      b := !x2;
      x2 := !x1;
      f2 := !f1;
      x1 := !b -. (phi *. (!b -. !a));
      f1 := f !x1
    end
    else begin
      a := !x1;
      x1 := !x2;
      f1 := !f2;
      x2 := !a +. (phi *. (!b -. !a));
      f2 := f !x2
    end
  done;
  let xm = 0.5 *. (!a +. !b) in
  { xmin = [| xm |]; fmin = f xm; iterations = !iter; converged = !b -. !a <= tol }

let check_bracket name fa fb =
  if fa *. fb > 0. then invalid_arg ("Optimize." ^ name ^ ": interval does not bracket a root")

let bisect ?(tol = 1e-12) ?(max_iter = 200) f a b =
  let fa = f a and fb = f b in
  check_bracket "bisect" fa fb;
  let a = ref a and b = ref b and fa = ref fa in
  let iter = ref 0 in
  while !b -. !a > tol && !iter < max_iter do
    incr iter;
    let m = 0.5 *. (!a +. !b) in
    let fm = f m in
    if !fa *. fm <= 0. then b := m
    else begin
      a := m;
      fa := fm
    end
  done;
  0.5 *. (!a +. !b)

(* Brent's method, following the classic Numerical Recipes formulation. *)
let brent_root ?(tol = 1e-12) ?(max_iter = 200) f a b =
  let fa = f a and fb = f b in
  check_bracket "brent_root" fa fb;
  let a = ref a and b = ref b and fa = ref fa and fb = ref fb in
  let c = ref !a and fc = ref !fa in
  let d = ref (!b -. !a) and e = ref (!b -. !a) in
  let result = ref None in
  let iter = ref 0 in
  while !result = None && !iter < max_iter do
    incr iter;
    if Float.abs !fc < Float.abs !fb then begin
      a := !b;
      b := !c;
      c := !a;
      fa := !fb;
      fb := !fc;
      fc := !fa
    end;
    let tol1 = (2. *. epsilon_float *. Float.abs !b) +. (0.5 *. tol) in
    let xm = 0.5 *. (!c -. !b) in
    if Float.abs xm <= tol1 || !fb = 0. then result := Some !b
    else begin
      if Float.abs !e >= tol1 && Float.abs !fa > Float.abs !fb then begin
        (* attempt inverse quadratic interpolation / secant *)
        let s = !fb /. !fa in
        let p, q =
          if !a = !c then
            let p = 2. *. xm *. s in
            (p, 1. -. s)
          else begin
            let q = !fa /. !fc and r = !fb /. !fc in
            let p = s *. ((2. *. xm *. q *. (q -. r)) -. ((!b -. !a) *. (r -. 1.))) in
            (p, (q -. 1.) *. (r -. 1.) *. (s -. 1.))
          end
        in
        let p, q = if p > 0. then (p, -.q) else (-.p, q) in
        let min1 = (3. *. xm *. q) -. Float.abs (tol1 *. q) in
        let min2 = Float.abs (!e *. q) in
        if 2. *. p < Float.min min1 min2 then begin
          e := !d;
          d := p /. q
        end
        else begin
          d := xm;
          e := xm
        end
      end
      else begin
        d := xm;
        e := xm
      end;
      a := !b;
      fa := !fb;
      if Float.abs !d > tol1 then b := !b +. !d
      else b := !b +. (if xm > 0. then tol1 else -.tol1);
      fb := f !b;
      if (!fb > 0. && !fc > 0.) || (!fb < 0. && !fc < 0.) then begin
        c := !a;
        fc := !fa;
        d := !b -. !a;
        e := !d
      end
    end
  done;
  match !result with Some r -> r | None -> !b
