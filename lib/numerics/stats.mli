(** Error metrics and summary statistics.

    The paper reports model accuracy as maximum and average relative error
    against the FEM reference (Table I and the per-figure error text);
    this module implements exactly those metrics plus the usual summary
    statistics used in the benchmark reports. *)

val max_abs_error : Vec.t -> Vec.t -> float
(** [max_abs_error xs ref_] is [max_i |xs.(i) - ref_.(i)|]. *)

val mean_abs_error : Vec.t -> Vec.t -> float
(** Mean of the absolute deviations. *)

val max_rel_error : Vec.t -> Vec.t -> float
(** [max_rel_error xs ref_] is [max_i |xs.(i) - ref_.(i)| / |ref_.(i)|];
    the paper's "maximum error".  Reference entries of magnitude below
    [1e-300] raise [Invalid_argument]. *)

val mean_rel_error : Vec.t -> Vec.t -> float
(** The paper's "average error": mean of the pointwise relative errors. *)

val rmse : Vec.t -> Vec.t -> float
(** Root-mean-square deviation. *)

val variance : Vec.t -> float
(** Population variance.  Raises [Invalid_argument] on empty input. *)

val stddev : Vec.t -> float
(** Population standard deviation. *)

val median : Vec.t -> float
(** Median (average of middle pair for even lengths). *)

val percentile : float -> Vec.t -> float
(** [percentile p v] for [p] in [[0, 100]], linear interpolation between
    order statistics. *)

val linear_regression : Vec.t -> Vec.t -> float * float
(** [linear_regression xs ys] is the least-squares [(slope, intercept)].
    Requires at least two distinct abscissae. *)
