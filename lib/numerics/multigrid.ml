(* Geometric multigrid hierarchies for the structured tensor grids.

   Setup (strength analysis, transfers, Galerkin products, line
   factorizations, coarse LU) runs sequentially: it is a one-time cost
   per matrix and keeping the duplicate-summation order fixed makes the
   hierarchy — and therefore every cycle — bitwise identical whatever
   pool is later supplied.  The cycles themselves are disjoint-slot
   maps, [Sparse.mul]s and independent per-line solves, which carry the
   pool determinism contract already. *)

module Pool = Ttsv_parallel.Pool
module Budget = Ttsv_parallel.Budget

type transfer = {
  p : Sparse.t;  (* prolongation: level-l cells x level-(l+1) cells *)
  pt : Sparse.t; (* restriction, the stored transpose *)
}

(* banded LU factors of every grid line along one dimension: the block
   diagonal of A whose blocks are the lines.  [fact] holds, line after
   line, [llen] rows of the [2 * lband + 1]-wide band (factored in
   place, multipliers below the diagonal). *)
type lines = {
  lstride : int;     (* flat-index step between consecutive line cells *)
  llen : int;        (* cells per line *)
  lband : int;       (* within-line half bandwidth *)
  starts : int array; (* first cell of each line *)
  fact : float array;
}

(* the smoother's preconditioner M: line-block Jacobi when the level
   has an uncoarsened dimension to run lines along (the robust partner
   of semicoarsening on locally anisotropic grids), the inverse
   diagonal otherwise *)
type smoother = Point of Vec.t | Lines of lines

type level = {
  a : Sparse.t;
  shape : int array;
  sm : smoother;
  lmax : float; (* power-iteration estimate of the top eigenvalue of M^-1 A *)
  down : transfer option; (* [None] on the coarsest level *)
}

type t = {
  levels : level array; (* finest first *)
  coarse_lu : Dense.lu;
  nu : int;
  budget : Budget.t option; (* captured at build time, polled per level *)
  hist : Ttsv_obs.History.t option;
      (* per-V-cycle residual history; allocated at build time only when
         observability is on, so the disabled path stays allocation-free *)
}

let default_coarse_cap = 200
let default_max_levels = 32
let chunk = 2048
let line_chunk = 4
let cells shape = Array.fold_left ( * ) 1 shape

(* decode a flat cell index into per-dimension coordinates; the first
   dimension varies fastest, matching [Grid.index] / [Grid3.index] *)
let decode shape idx out =
  let k = ref idx in
  Array.iteri
    (fun d nd ->
      out.(d) <- !k mod nd;
      k := !k / nd)
    shape

(* per-dimension coupling strength: total |off-diagonal| mass between
   cells exactly one step apart along that dimension.  Entries that are
   not single-step neighbours (Galerkin coarse stencils grow corner and
   distance-2 links) vote for no dimension — the one-step entries always
   dominate them, so the heuristic stays sound down the hierarchy. *)
let coupling_strengths a shape =
  let d = Array.length shape in
  let strength = Array.make d 0. in
  let ci = Array.make d 0 and cj = Array.make d 0 in
  for i = 0 to Sparse.rows a - 1 do
    decode shape i ci;
    Sparse.iter_row a i (fun j v ->
        if j <> i then begin
          decode shape j cj;
          let dim = ref (-1) and single = ref true in
          for k = 0 to d - 1 do
            match abs (ci.(k) - cj.(k)) with
            | 0 -> ()
            | 1 -> if !dim >= 0 then single := false else dim := k
            | _ -> single := false
          done;
          if !single && !dim >= 0 then
            strength.(!dim) <- strength.(!dim) +. Float.abs v
        end)
  done;
  strength

(* classic semicoarsening: coarsen only the strongest-coupled
   dimension.  On the r-z grids the graded radial spacings make the
   radial couplings dwarf the axial ones, so the radial extent shrinks
   level by level while the axial direction rides along at full
   resolution (the line smoother runs down it).  Coarsening every
   dimension at once was measured an order of magnitude worse on those
   grids — error components that are smooth in the strong dimension but
   oscillatory in a locally strong weak dimension are sampled wrongly.
   An extent guard keeps the vote honest: once a dimension has been
   coarsened under 1/16 of the largest remaining extent, halving it
   further no longer shrinks the problem yet still piles interpolation
   error onto the hardest-graded cells (measured: the [12x334]->[6x334]
   step alone pushed the two-grid contraction from 0.47 to 0.93), so it
   drops out of the vote and coarsening moves to the next-strongest
   dimension — typically the axial one.  A coupling-free matrix (all
   strengths zero) still picks a dimension with extent > 1, which keeps
   the hierarchy shrinking. *)
let semicoarsen_mask shape strength =
  let d = Array.length shape in
  let emax = Array.fold_left Stdlib.max 1 shape in
  let eligible k = shape.(k) > 1 && 16 * shape.(k) > emax in
  let best = ref (-1) in
  for k = 0 to d - 1 do
    if eligible k && (!best < 0 || strength.(k) > strength.(!best)) then best := k
  done;
  if !best < 0 then
    (* every remaining dimension is tiny relative to the largest — fall
       back to plain strongest-dimension coarsening *)
    for k = 0 to d - 1 do
      if shape.(k) > 1 && (!best < 0 || strength.(k) > strength.(!best)) then best := k
    done;
  Array.init d (fun k -> k = !best)

(* cell-centred prolongation by two with operator-induced weights:
   along each coarsened dimension a fine cell is interpolated from its
   parent coarse cell and the adjacent coarse cell on the side it sits
   on, weighted by the fine-grid couplings toward each — the couplings
   encode both the (strongly graded) spacings and the conductivity
   jumps, which fixed 3/4-1/4 positional weights get badly wrong on
   these meshes.  The side weight is capped at 1/2 so every coarse cell
   dominates its home children: P keeps full column rank and the
   Galerkin product stays SPD.  Weights tensor-multiply across
   dimensions; a clamped boundary gives the parent the full weight. *)
let prolongation a fshape mask =
  let d = Array.length fshape in
  let cshape =
    Array.init d (fun k -> if mask.(k) then (fshape.(k) + 1) / 2 else fshape.(k))
  in
  let fstride = Array.make d 1 and cstride = Array.make d 1 in
  for k = 1 to d - 1 do
    fstride.(k) <- fstride.(k - 1) * fshape.(k - 1);
    cstride.(k) <- cstride.(k - 1) * cshape.(k - 1)
  done;
  let nf = cells fshape in
  let b = Sparse.builder ~hint:(2 * nf) nf (cells cshape) in
  let ci = Array.make d 0 in
  (* |coupling| from fine cell [i] to its dim-k neighbour [step] away *)
  let coupling i k step =
    let c = ci.(k) + step in
    if c < 0 || c >= fshape.(k) then 0.
    else Float.abs (Sparse.get a i (i + (step * fstride.(k))))
  in
  for i = 0 to nf - 1 do
    decode fshape i ci;
    let rec emit k col w =
      if k = d then Sparse.add b i col w
      else if not mask.(k) then emit (k + 1) (col + (ci.(k) * cstride.(k))) w
      else begin
        let home = ci.(k) / 2 in
        let to_side = if ci.(k) land 1 = 0 then -1 else 1 in
        let side = home + to_side in
        if side < 0 || side >= cshape.(k) then
          emit (k + 1) (col + (home * cstride.(k))) w
        else begin
          let c_side = coupling i k to_side and c_home = coupling i k (-to_side) in
          let total = c_side +. c_home in
          let w_side =
            if Float.is_finite total && total > 0. then
              Float.min 0.5 (c_side /. total)
            else 0.25
          in
          emit (k + 1) (col + (home * cstride.(k))) (w *. (1. -. w_side));
          emit (k + 1) (col + (side * cstride.(k))) (w *. w_side)
        end
      end
    in
    emit 0 0 1.
  done;
  (Sparse.finalize b, cshape)

(* Ac = P^T A P.  The product [w_I * w_J] is computed before scaling by
   [v] so the (I, J) and (J, I) buckets of a symmetric A receive
   bitwise-equal contributions; summation order inside a bucket still
   differs, so coarse operators are symmetric to rounding, not exactly
   — CG only ever sees the cycle output, which is built from the
   operator as stored, so determinism is unaffected. *)
let galerkin p a =
  let row_ptr, col_idx, values = Sparse.csr p in
  let nc = Sparse.cols p in
  let b = Sparse.builder ~hint:(4 * Sparse.nnz a) nc nc in
  for i = 0 to Sparse.rows a - 1 do
    Sparse.iter_row a i (fun j v ->
        for ki = row_ptr.(i) to row_ptr.(i + 1) - 1 do
          for kj = row_ptr.(j) to row_ptr.(j + 1) - 1 do
            Sparse.add b col_idx.(ki) col_idx.(kj)
              (v *. (values.(ki) *. values.(kj)))
          done
        done)
  done;
  Sparse.finalize b

let inverted_diagonal a =
  let d = Sparse.diagonal a in
  if Array.exists (fun di -> Float.abs di < 1e-300) d then
    Error "zero diagonal entry"
  else Ok (Array.map (fun di -> 1. /. di) d)

(* extract and factor (banded LU, no pivoting) every line along
   [line_dim]: the uniform smoother for semicoarsening — a damped
   line solve reduces every mode that is oscillatory along the
   coarsened dimension by a bounded factor whatever the local
   anisotropy, which point smoothers cannot do on grids whose strong
   direction varies from region to region (the liner annulus and the
   thin stacked layers here).  Returns [None] when a line hits a
   near-zero pivot or the within-line band covers the whole line, and
   the caller falls back to the point smoother. *)
let build_lines a shape line_dim =
  let d = Array.length shape in
  let len = shape.(line_dim) in
  let stride = ref 1 in
  for k = 0 to line_dim - 1 do
    stride := !stride * shape.(k)
  done;
  let stride = !stride in
  let n = Sparse.rows a in
  let count = n / len in
  let starts = Array.make count 0 in
  let ci = Array.make d 0 and cj = Array.make d 0 in
  let pos = ref 0 and band = ref 1 in
  for i = 0 to n - 1 do
    decode shape i ci;
    if ci.(line_dim) = 0 then begin
      starts.(!pos) <- i;
      incr pos
    end;
    Sparse.iter_row a i (fun j _ ->
        if j <> i then begin
          decode shape j cj;
          let inline = ref true in
          for k = 0 to d - 1 do
            if k <> line_dim && ci.(k) <> cj.(k) then inline := false
          done;
          if !inline then band := max !band (abs (ci.(line_dim) - cj.(line_dim)))
        end)
  done;
  let b = !band in
  if b >= len then None
  else begin
    let w = (2 * b) + 1 in
    let fact = Array.make (count * len * w) 0. in
    let ok = ref true in
    (let s = ref 0 in
     while !ok && !s < count do
       let base = !s * len * w in
       let i0 = starts.(!s) in
       for t = 0 to len - 1 do
         let i = i0 + (t * stride) in
         for u = -b to b do
           if t + u >= 0 && t + u < len then
             fact.(base + (t * w) + b + u) <- Sparse.get a i (i + (u * stride))
         done
       done;
       (try
          for c = 0 to len - 1 do
            let piv = fact.(base + (c * w) + b) in
            if not (Float.is_finite piv) || Float.abs piv < 1e-300 then raise Exit;
            for r = c + 1 to min (c + b) (len - 1) do
              let off = r - c in
              let m = fact.(base + (r * w) + b - off) /. piv in
              fact.(base + (r * w) + b - off) <- m;
              for k = 1 to b do
                fact.(base + (r * w) + b - off + k) <-
                  fact.(base + (r * w) + b - off + k)
                  -. (m *. fact.(base + (c * w) + b + k))
              done
            done
          done
        with Exit -> ok := false);
       incr s
     done);
    if !ok then Some { lstride = stride; llen = len; lband = b; starts; fact }
    else None
  end

(* z = M^-1 src: a disjoint-slot scaling for the point smoother, one
   independent banded solve per line for the line smoother — both
   bitwise deterministic for any pool *)
let apply_sm ?pool sm src =
  let n = Array.length src in
  let pl = Option.value pool ~default:Pool.seq in
  match sm with
  | Point inv ->
    let z = Array.make n 0. in
    Pool.for_chunks ~chunk pl n (fun ~lo ~hi ->
        for i = lo to hi - 1 do
          z.(i) <- inv.(i) *. src.(i)
        done);
    z
  | Lines l ->
    let z = Array.copy src in
    let b = l.lband in
    let w = (2 * b) + 1 in
    Pool.for_chunks ~chunk:line_chunk pl (Array.length l.starts) (fun ~lo ~hi ->
        for s = lo to hi - 1 do
          let base = s * l.llen * w in
          let i0 = l.starts.(s) in
          for t = 0 to l.llen - 1 do
            let acc = ref z.(i0 + (t * l.lstride)) in
            for off = 1 to min b t do
              acc :=
                !acc
                -. (l.fact.(base + (t * w) + b - off)
                   *. z.(i0 + ((t - off) * l.lstride)))
            done;
            z.(i0 + (t * l.lstride)) <- !acc
          done;
          for t = l.llen - 1 downto 0 do
            let acc = ref z.(i0 + (t * l.lstride)) in
            for k = 1 to min b (l.llen - 1 - t) do
              acc :=
                !acc
                -. (l.fact.(base + (t * w) + b + k)
                   *. z.(i0 + ((t + k) * l.lstride)))
            done;
            z.(i0 + (t * l.lstride)) <- !acc /. l.fact.(base + (t * w) + b)
          done
        done);
    z

(* largest eigenvalue of M^-1 A by power iteration.  M^-1 A is
   self-adjoint in the A-inner product, so the Rayleigh quotient is
   taken there — [(Av)·(M^-1 Av) / v·(Av)] — where it increases
   monotonically toward the true lambda_max instead of wobbling below it
   the way the Euclidean quotient of this non-normal matrix does: a
   Chebyshev interval clipped to an {e under}estimate amplifies the top
   modes and can make the whole cycle divergent, so the bias direction
   matters more than the rate.  Started from an oscillatory
   deterministic vector seeded with a slow index ramp (the dominant
   eigenvector of a diffusion stencil is high-frequency, but pure ±1
   alternation can sit in an invariant subspace of a symmetric line
   block); callers pad the estimate with a safety factor before
   clipping the Chebyshev interval to it. *)
let estimate_lmax a sm =
  let n = Sparse.rows a in
  let normalize u =
    let s = ref 0. in
    Array.iter (fun x -> s := !s +. (x *. x)) u;
    let nrm = sqrt !s in
    if nrm > 0. then Array.map (fun x -> x /. nrm) u else u
  in
  let v =
    ref
      (normalize
         (Array.init n (fun i ->
              let sign = if i land 1 = 0 then 1. else -1. in
              sign *. (1. +. (float_of_int (i mod 17) /. 17.)))))
  in
  let est = ref 0. in
  for _ = 1 to 20 do
    let av = Sparse.mat_vec a !v in
    let z = apply_sm sm av in
    let num = Vec.dot av z and den = Vec.dot !v av in
    if Float.is_finite num && Float.is_finite den && den > 0. && num > 0. then
      est := Float.max !est (num /. den);
    v := normalize z
  done;
  if !est > 0. then !est
  else 2. (* block-Jacobi-scaled diffusion operators live in (0, 2] *)

(* a level's smoother: lines along the strongest-coupled dimension that
   is NOT being coarsened (so the line solves stay full resolution while
   the coarsening shrinks the other), the point diagonal when every
   other dimension is already flat *)
let make_smoother a shape strength mask inv_diag =
  let d = Array.length shape in
  let ldim = ref (-1) in
  for k = 0 to d - 1 do
    if (not mask.(k)) && shape.(k) > 1
       && (!ldim < 0 || strength.(k) > strength.(!ldim))
    then ldim := k
  done;
  if !ldim < 0 then Point inv_diag
  else
    match build_lines a shape !ldim with
    | Some l -> Lines l
    | None -> Point inv_diag

let build ?pool ?budget ?(max_levels = default_max_levels)
    ?(coarse_cap = default_coarse_cap) ?(nu = 2) ~shape a =
  let _ : Pool.t option = pool in
  if nu < 1 then invalid_arg "Multigrid.build: nu must be >= 1";
  if max_levels < 1 then invalid_arg "Multigrid.build: max_levels must be >= 1";
  if coarse_cap < 1 then invalid_arg "Multigrid.build: coarse_cap must be >= 1";
  let n = Sparse.rows a in
  if Sparse.cols a <> n then Error "matrix is not square"
  else if Array.length shape = 0 then Error "empty grid shape"
  else if Array.exists (fun s -> s < 1) shape then Error "grid extents must be >= 1"
  else if cells shape <> n then
    Error
      (Printf.sprintf "grid shape (%d cells) does not match matrix order %d"
         (cells shape) n)
  else
    (* the one-time hierarchy construction (coarsening, Galerkin
       products, line factorisations) under its own span, so profiles
       separate setup cost from per-cycle cost *)
    Ttsv_obs.Span.with_ ~name:"mg.setup" @@ fun () ->
    begin
    let exception Expired of Budget.verdict in
    let poll () =
      match Option.bind budget Budget.check with
      | Some v -> raise (Expired v)
      | None -> ()
    in
    let rec descend acc a shape remaining =
      poll ();
      match inverted_diagonal a with
      | Error _ as e -> e
      | Ok inv_diag ->
        if Sparse.rows a <= coarse_cap || remaining <= 1 then
          (* the coarsest level is solved by LU: its smoother fields are
             never exercised, so the cheap point fallback will do *)
          Ok (List.rev ({ a; shape; sm = Point inv_diag; lmax = 2.; down = None } :: acc))
        else begin
          let strength = coupling_strengths a shape in
          let mask = semicoarsen_mask shape strength in
          if not (Array.exists Fun.id mask) then
            Ok
              (List.rev
                 ({ a; shape; sm = Point inv_diag; lmax = 2.; down = None } :: acc))
          else begin
            let sm = make_smoother a shape strength mask inv_diag in
            let lmax = estimate_lmax a sm in
            let p, cshape = prolongation a shape mask in
            let pt = Sparse.transpose p in
            let ac = galerkin p a in
            descend
              ({ a; shape; sm; lmax; down = Some { p; pt } } :: acc)
              ac cshape (remaining - 1)
          end
        end
    in
    match descend [] a shape max_levels with
    | Error _ as e -> e
    | exception Expired v ->
      Error (Format.asprintf "budget expired (%a)" Budget.pp_verdict v)
    | Ok levels -> (
      let levels = Array.of_list levels in
      let coarsest = levels.(Array.length levels - 1) in
      match Dense.lu_factor (Sparse.to_dense coarsest.a) with
      | lu ->
        let hist =
          if Ttsv_obs.Flags.enabled () then Some (Ttsv_obs.History.create ~meth:"mg" ())
          else None
        in
        Ok { levels; coarse_lu = lu; nu; budget; hist }
      | exception Dense.Singular -> Error "singular coarsest-level operator")
  end

(* degree-[deg] Chebyshev smoother on the interval
   [lmax / 4, 1.1 lmax] of M^-1 A (Saad, Iterative Methods, alg. 12.1,
   preconditioned by the level's M).  The polynomial's coefficients
   depend only on the interval, never on the data, so the smoother is a
   fixed polynomial in M^-1 A — A-self-adjoint, which is what keeps the
   V(nu, nu) cycle symmetric positive definite.  [x] is updated in
   place; when [from_zero] the initial residual is [b] itself and the
   first matvec is skipped. *)
let cheb_smooth ?pool t lev ~from_zero x b deg =
  Ttsv_obs.Span.with_ ~name:"mg.smooth" @@ fun () ->
  let n = Array.length x in
  let pl = Option.value pool ~default:Pool.seq in
  let beta = 1.1 *. lev.lmax in
  let alpha = beta /. 4. in
  let theta = (beta +. alpha) /. 2. and delta = (beta -. alpha) /. 2. in
  let sigma = theta /. delta in
  let r =
    if from_zero then Array.copy b
    else begin
      Option.iter (fun bd -> Budget.tick bd) t.budget;
      let ax = Sparse.mul ?pool lev.a x in
      let r = Array.make n 0. in
      Pool.for_chunks ~chunk pl n (fun ~lo ~hi ->
          for i = lo to hi - 1 do
            r.(i) <- b.(i) -. ax.(i)
          done);
      r
    end
  in
  let d = apply_sm ?pool lev.sm r in
  Pool.for_chunks ~chunk pl n (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        d.(i) <- d.(i) /. theta
      done);
  let rho = ref (1. /. sigma) in
  for _ = 2 to deg do
    Option.iter (fun bd -> Budget.tick bd) t.budget;
    let ad = Sparse.mul ?pool lev.a d in
    Pool.for_chunks ~chunk pl n (fun ~lo ~hi ->
        for i = lo to hi - 1 do
          x.(i) <- x.(i) +. d.(i);
          r.(i) <- r.(i) -. ad.(i)
        done);
    let z = apply_sm ?pool lev.sm r in
    let rho' = 1. /. ((2. *. sigma) -. !rho) in
    let k1 = rho' *. !rho and k2 = 2. *. rho' /. delta in
    Pool.for_chunks ~chunk pl n (fun ~lo ~hi ->
        for i = lo to hi - 1 do
          d.(i) <- (k1 *. d.(i)) +. (k2 *. z.(i))
        done);
    rho := rho'
  done;
  Pool.for_chunks ~chunk pl n (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        x.(i) <- x.(i) +. d.(i)
      done)

let rec vcycle ?pool t l r =
  (match t.budget with Some b -> Budget.check_exn b | None -> ());
  if l = Array.length t.levels - 1 then Dense.lu_solve t.coarse_lu r
  else begin
    let lev = t.levels.(l) in
    let n = Array.length r in
    let pl = Option.value pool ~default:Pool.seq in
    (* pre-smooth from a zero initial guess: the initial residual is r
       itself, saving the first matvec *)
    let x = Array.make n 0. in
    cheb_smooth ?pool t lev ~from_zero:true x r t.nu;
    (* coarse-grid correction on the smoothed residual *)
    Option.iter (fun bd -> Budget.tick bd) t.budget;
    let ax = Sparse.mul ?pool lev.a x in
    let res = Array.make n 0. in
    Pool.for_chunks ~chunk pl n (fun ~lo ~hi ->
        for i = lo to hi - 1 do
          res.(i) <- r.(i) -. ax.(i)
        done);
    let tr = match lev.down with Some tr -> tr | None -> assert false in
    let rc = Sparse.mul ?pool tr.pt res in
    let ec = vcycle ?pool t (l + 1) rc in
    let e = Sparse.mul ?pool tr.p ec in
    Pool.for_chunks ~chunk pl n (fun ~lo ~hi ->
        for i = lo to hi - 1 do
          x.(i) <- x.(i) +. e.(i)
        done);
    (* post-smooth with the same polynomial as pre-smoothing: the cycle
       operator stays symmetric positive definite *)
    cheb_smooth ?pool t lev ~from_zero:false x r t.nu;
    x
  end

let cycle ?pool t r =
  if Array.length r <> Sparse.rows t.levels.(0).a then
    invalid_arg "Multigrid.cycle: dimension mismatch";
  (* one history point per V-cycle: the norm of the residual handed in.
     Sequential norm, computed only when the history exists, so pooled
     runs stay bitwise identical to sequential ones. *)
  (match t.hist with
  | Some h -> Ttsv_obs.History.record h (Ttsv_obs.History.total h) (Vec.norm2 r)
  | None -> ());
  Ttsv_obs.Span.with_ ~name:"mg.cycle" @@ fun () -> vcycle ?pool t 0 r

let conv t = Option.map Ttsv_obs.History.snapshot t.hist

let num_levels t = Array.length t.levels
let level_shape t l = Array.copy t.levels.(l).shape
let level_matrix t l = t.levels.(l).a

let transfer t level what =
  if level < 0 || level >= Array.length t.levels - 1 then
    invalid_arg (Printf.sprintf "Multigrid.%s: no coarser level below %d" what level)
  else match t.levels.(level).down with Some tr -> tr | None -> assert false

let restrict ?pool t ~level v = Sparse.mul ?pool (transfer t level "restrict").pt v
let prolong ?pool t ~level v = Sparse.mul ?pool (transfer t level "prolong").p v

let smooth ?pool t ~level ~sweeps x b =
  if sweeps < 0 then invalid_arg "Multigrid.smooth: sweeps must be >= 0";
  let lev = t.levels.(level) in
  let x = Array.copy x in
  if sweeps > 0 then cheb_smooth ?pool t lev ~from_zero:false x b sweeps;
  x
