let silicon =
  Material.make ~name:"silicon" ~conductivity:150. ~volumetric_heat_capacity:1.63e6 ()

let silicon_k_of_t =
  let k_of_t temp_k = 154. *. ((temp_k /. 300.) ** (-4. /. 3.)) in
  (* the frozen (linear-model) value is the law at 300 K so that linear and
     nonlinear analyses share their baseline *)
  Material.make ~name:"silicon-k(T)" ~conductivity:(k_of_t 300.) ~conductivity_of_t:k_of_t
    ~volumetric_heat_capacity:1.63e6 ()

let silicon_dioxide =
  Material.make ~name:"silicon-dioxide" ~conductivity:1.4 ~volumetric_heat_capacity:1.64e6 ()

let polyimide =
  Material.make ~name:"polyimide" ~conductivity:0.15 ~volumetric_heat_capacity:1.55e6 ()

let copper = Material.make ~name:"copper" ~conductivity:400. ~volumetric_heat_capacity:3.45e6 ()
let tungsten = Material.make ~name:"tungsten" ~conductivity:173. ~volumetric_heat_capacity:2.58e6 ()
let air = Material.make ~name:"air" ~conductivity:0.026 ~volumetric_heat_capacity:1.2e3 ()
let aluminum = Material.make ~name:"aluminum" ~conductivity:237. ~volumetric_heat_capacity:2.42e6 ()

let benzocyclobutene =
  Material.make ~name:"benzocyclobutene" ~conductivity:0.29 ~volumetric_heat_capacity:1.3e6 ()

let all =
  [
    silicon;
    silicon_k_of_t;
    silicon_dioxide;
    polyimide;
    copper;
    tungsten;
    air;
    aluminum;
    benzocyclobutene;
  ]

let by_name s =
  let s = String.lowercase_ascii s in
  match List.find_opt (fun (m : Material.t) -> String.lowercase_ascii m.name = s) all with
  | Some m -> m
  | None -> raise Not_found
