(** Thermal materials.

    A material carries the properties the steady-state models need
    (thermal conductivity) plus volumetric heat capacity for the transient
    extension.  Conductivity may optionally be temperature dependent; the
    steady-state solvers evaluate it at the reference temperature. *)

type t = {
  name : string;
  conductivity : float;  (** thermal conductivity k at the reference temperature, W/(m·K) *)
  conductivity_of_t : (float -> float) option;
      (** optional k(T) law, T in kelvin; [None] means constant *)
  volumetric_heat_capacity : float;  (** ρ·c_p, J/(m³·K); used by the transient extension *)
}

val make :
  ?conductivity_of_t:(float -> float) ->
  ?volumetric_heat_capacity:float ->
  name:string ->
  conductivity:float ->
  unit ->
  t
(** [make ~name ~conductivity ()] builds a material.  [conductivity] must
    be positive ([Invalid_argument] otherwise).
    [volumetric_heat_capacity] defaults to [1.6e6] J/(m³·K) (a generic
    solid); provide real values when running transients. *)

val k_at : t -> float -> float
(** [k_at m temp_k] is the conductivity at absolute temperature [temp_k],
    using the k(T) law when present. *)

val with_conductivity : t -> float -> t
(** [with_conductivity m k] is [m] with a new constant conductivity —
    used e.g. to adapt the ILD conductivity to include the embedded metal
    (§IV of the paper). *)

val pp : Format.formatter -> t -> unit
(** Prints e.g. ["silicon (k=130 W/m.K)"]. *)

val equal : t -> t -> bool
(** Name and constant-property equality (the k(T) closure is not
    compared). *)
