let validate name phases =
  if phases = [] then invalid_arg ("Mixing." ^ name ^ ": no phases");
  let total = List.fold_left (fun acc (_, f) -> acc +. f) 0. phases in
  List.iter
    (fun (k, f) ->
      if k <= 0. then invalid_arg ("Mixing." ^ name ^ ": conductivity must be positive");
      if f < 0. then invalid_arg ("Mixing." ^ name ^ ": negative fraction"))
    phases;
  if Float.abs (total -. 1.) > 1e-9 then
    invalid_arg ("Mixing." ^ name ^ ": fractions must sum to 1")

let parallel phases =
  validate "parallel" phases;
  List.fold_left (fun acc (k, f) -> acc +. (k *. f)) 0. phases

let series phases =
  validate "series" phases;
  1. /. List.fold_left (fun acc (k, f) -> acc +. (f /. k)) 0. phases

let maxwell_garnett ~k_matrix ~k_inclusion ~fraction =
  if k_matrix <= 0. || k_inclusion <= 0. then
    invalid_arg "Mixing.maxwell_garnett: conductivities must be positive";
  if fraction < 0. || fraction > 1. then
    invalid_arg "Mixing.maxwell_garnett: fraction out of [0, 1]";
  let beta = (k_inclusion -. k_matrix) /. (k_inclusion +. (2. *. k_matrix)) in
  k_matrix *. (1. +. (3. *. fraction *. beta) /. (1. -. (fraction *. beta)))

let ild_with_metal ~k_dielectric ~k_metal ~metal_fraction =
  parallel [ (k_dielectric, 1. -. metal_fraction); (k_metal, metal_fraction) ]
