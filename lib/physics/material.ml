type t = {
  name : string;
  conductivity : float;
  conductivity_of_t : (float -> float) option;
  volumetric_heat_capacity : float;
}

let make ?conductivity_of_t ?(volumetric_heat_capacity = 1.6e6) ~name ~conductivity () =
  if conductivity <= 0. then invalid_arg "Material.make: conductivity must be positive";
  if volumetric_heat_capacity <= 0. then
    invalid_arg "Material.make: volumetric heat capacity must be positive";
  { name; conductivity; conductivity_of_t; volumetric_heat_capacity }

let k_at m temp_k =
  match m.conductivity_of_t with None -> m.conductivity | Some f -> f temp_k

let with_conductivity m k =
  if k <= 0. then invalid_arg "Material.with_conductivity: conductivity must be positive";
  { m with conductivity = k; conductivity_of_t = None }

let pp ppf m = Format.fprintf ppf "%s (k=%g W/m.K)" m.name m.conductivity

let equal a b =
  String.equal a.name b.name
  && a.conductivity = b.conductivity
  && a.volumetric_heat_capacity = b.volumetric_heat_capacity
