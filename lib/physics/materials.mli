(** The material library used by the paper's experiments.

    Conductivities follow §IV of the paper: SiO₂ 1.4 W/(m·K) for both the
    ILD and the TSV liner, polyimide 0.15 W/(m·K) for the bonding layer,
    copper 400 W/(m·K) for the TSV filler.  The paper does not state the
    silicon conductivity; we use 150 W/(m·K) (bulk Si, the value
    used by Pavlidis & Friedman, the paper's reference [6]).  Volumetric
    heat capacities are standard handbook values and only matter for the
    transient extension. *)

val silicon : Material.t
(** Bulk silicon, k = 150 W/(m·K), ρc = 1.63e6 J/(m³·K). *)

val silicon_k_of_t : Material.t
(** Silicon with the k(T) = 154·(T/300K)^(-4/3) power law (frozen value:
    the law at 300 K) — an optional refinement; the paper and the default
    experiments use constant k. *)

val silicon_dioxide : Material.t
(** SiO₂, k = 1.4 W/(m·K) — the paper's ILD and liner material. *)

val polyimide : Material.t
(** Polyimide adhesive, k = 0.15 W/(m·K) — the paper's bonding layer. *)

val copper : Material.t
(** Copper, k = 400 W/(m·K) — the paper's TSV filler. *)

val tungsten : Material.t
(** Tungsten, k = 173 W/(m·K) — an alternative TSV filler for ablations. *)

val air : Material.t
(** Still air, k = 0.026 W/(m·K). *)

val aluminum : Material.t
(** Aluminum, k = 237 W/(m·K). *)

val benzocyclobutene : Material.t
(** BCB adhesive, k = 0.29 W/(m·K) — an alternative bonding polymer. *)

val by_name : string -> Material.t
(** [by_name s] looks a material up case-insensitively.
    Raises [Not_found] for unknown names. *)

val all : Material.t list
(** Every material above, for enumeration in CLIs and tests. *)
