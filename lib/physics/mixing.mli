(** Effective-medium conductivity mixing.

    §IV of the paper notes that "since metal interconnects are embedded in
    the ILD, k_D can be adapted to include the effect of the metal within
    the ILD layer".  These rules compute such effective conductivities
    from volume fractions. *)

val parallel : (float * float) list -> float
(** [parallel [(k1, f1); ...]] is the volume-fraction-weighted arithmetic
    mean Σ f_i·k_i — the exact effective conductivity when the phases
    form slabs parallel to the heat flow (upper Wiener bound).  Fractions
    must be nonnegative and sum to 1 within 1e-9
    ([Invalid_argument] otherwise). *)

val series : (float * float) list -> float
(** [series [(k1, f1); ...]] is the harmonic mean (Σ f_i/k_i)⁻¹ — exact
    for slabs perpendicular to the flow (lower Wiener bound). *)

val maxwell_garnett : k_matrix:float -> k_inclusion:float -> fraction:float -> float
(** [maxwell_garnett ~k_matrix ~k_inclusion ~fraction] is the
    Maxwell–Garnett effective conductivity for dilute spherical inclusions
    of volume fraction [fraction] in a host matrix; the customary model
    for via/wire-loaded dielectrics at low metal density. *)

val ild_with_metal : k_dielectric:float -> k_metal:float -> metal_fraction:float -> float
(** [ild_with_metal ~k_dielectric ~k_metal ~metal_fraction] is the
    effective vertical ILD conductivity with vertically threaded metal:
    the parallel rule on two phases, the library's recommended adaptation
    of k_D per the paper's remark. *)
