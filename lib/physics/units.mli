(** SI unit helpers.

    All quantities inside the library are SI: metres, watts, kelvins,
    W/(m·K), W/m³.  The paper (and IC practice) quotes dimensions in
    micrometres and power densities in W/mm³; these helpers perform the
    conversions at the API boundary so the numeric core never mixes
    scales. *)

val um : float -> float
(** [um x] converts micrometres to metres. *)

val mm : float -> float
(** [mm x] converts millimetres to metres. *)

val to_um : float -> float
(** [to_um x] converts metres to micrometres. *)

val to_mm : float -> float
(** [to_mm x] converts metres to millimetres. *)

val um2 : float -> float
(** [um2 a] converts µm² to m². *)

val mm2 : float -> float
(** [mm2 a] converts mm² to m². *)

val w_per_mm3 : float -> float
(** [w_per_mm3 p] converts a volumetric power density from W/mm³ to
    W/m³ (multiplies by 1e9). *)

val w_per_cm2 : float -> float
(** [w_per_cm2 p] converts a surface power density from W/cm² to W/m². *)

val celsius_of_kelvin : float -> float
(** [celsius_of_kelvin t] subtracts 273.15. *)

val kelvin_of_celsius : float -> float
(** [kelvin_of_celsius t] adds 273.15. *)

val pp_temperature_rise : Format.formatter -> float -> unit
(** Prints a temperature difference as e.g. ["12.84 °C"] (a rise is the
    same in kelvin and Celsius). *)

val pp_length_um : Format.formatter -> float -> unit
(** Prints a length in metres as e.g. ["5.0 µm"]. *)
