(** A minimal JSON value, printer, and parser.

    The build deliberately carries no third-party JSON dependency; this
    covers exactly what the observability layer needs — emitting JSONL
    trace lines and parsing them back in tests and the [obs_check]
    schema validator.  Non-finite floats print as [null] (JSON has no
    NaN/Inf literal).

    Emitted strings are pure ASCII and lossless for arbitrary byte
    sequences: valid UTF-8 becomes [\uXXXX] escapes (surrogate pairs
    above the BMP), and bytes that are not part of a valid UTF-8
    sequence are escaped as lone low surrogates [\udc80]..[\udcff] (the
    surrogateescape convention).  The parser inverts both, so
    [parse (to_string (String s)) = Ok (String s)] holds byte-for-byte
    for every [s]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering (never contains a newline), so one
    value per line is a valid JSONL record. *)

val parse : string -> (t, string) result
(** Parse one complete JSON value; trailing non-whitespace is an error. *)

val member : string -> t -> t option
(** [member key (Obj ...)] looks up a field; [None] on any other
    constructor. *)

val to_int_opt : t -> int option
val to_float_opt : t -> float option
(** Accepts [Int] too — JSON readers routinely print whole floats
    without a decimal point. *)

val to_string_opt : t -> string option
