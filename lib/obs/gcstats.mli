(** GC and allocation telemetry.

    {!sample} refreshes the [gc.*] gauges in the default metrics
    registry from [Gc.quick_stat] (no-op when metrics are off); it is
    called automatically before every summary snapshot by {!Config}, so
    printed summaries and JSONL [summary] lines carry current GC
    counters without any instrumentation in user code.

    Per-span allocation deltas are handled in {!Span}: when metrics are
    on, the span records the difference in {!allocated_words} between
    open and close into the ["alloc.<name>"] histogram via
    {!Metrics.span_alloc}. *)

val allocated_words : unit -> float
(** Total words allocated since program start
    ([Gc.minor_words () + major_words - promoted_words]); monotone and
    suitable for deltas.  The minor component reads the young pointer
    and is exact even in native code; direct-to-major allocations reach
    the counters only at collection slices. *)

val sample : unit -> unit
(** Set the [gc.minor_words], [gc.promoted_words], [gc.major_words],
    [gc.allocated_words], [gc.minor_collections],
    [gc.major_collections], [gc.compactions] and [gc.heap_words]
    gauges.  No-op when metrics are off. *)
