(* Bench-regression gate: compare a current BENCH_*.json against a
   committed baseline.  Metrics are discovered generically — walking the
   JSON, extending a path at each object from its identifying fields
   ("name", "resolution", "domains") and recording every "iterations"
   and "wall_s" leaf — so the gate keeps working as bench artefacts grow
   fields.  Iteration counts are chunk-deterministic, so they gate with
   an exact band (default 0); wall clocks gate with a ratio tolerance
   and improvements always pass. *)

type kind = Iterations | Wall

let kind_name = function Iterations -> "iterations" | Wall -> "wall_s"

type metric = { key : string; kind : kind; value : float }

type status = Ok_ | Regressed of string | Missing | New

type row = {
  key : string;
  kind : kind;
  baseline : float option;
  current : float option;
  status : status;
}

(* path segments contributed by one object's identifying fields *)
let labels_of kvs =
  List.filter_map
    (fun (field, prefix, render) ->
      Option.bind (List.assoc_opt field kvs) (fun v ->
          Option.map (fun s -> prefix ^ s) (render v)))
    [
      ("name", "", Json.to_string_opt);
      ("resolution", "res", fun v -> Option.map string_of_int (Json.to_int_opt v));
      ("domains", "d", fun v -> Option.map string_of_int (Json.to_int_opt v));
    ]

let extract json =
  let out = ref [] in
  let rec go path j =
    match j with
    | Json.Obj kvs ->
      let path = path @ labels_of kvs in
      List.iter
        (fun (k, v) ->
          match (k, v) with
          | "iterations", _ -> (
            match Json.to_float_opt v with
            | Some x -> out := { key = String.concat "/" path; kind = Iterations; value = x } :: !out
            | None -> ())
          | "wall_s", _ -> (
            match Json.to_float_opt v with
            | Some x -> out := { key = String.concat "/" path; kind = Wall; value = x } :: !out
            | None -> ())
          (* phase breakdowns are diagnostic, not gated: their sums move
             with scheduling noise and would make the gate flaky *)
          | "phases", _ -> ()
          | _, (Json.Obj _ | Json.List _) -> go path v
          | _ -> ())
        kvs
    | Json.List xs -> List.iter (go path) xs
    | _ -> ()
  in
  go [] json;
  List.rev !out

let default_wall_tol = 2.0

let compare_benches ?(wall_tol = default_wall_tol) ?(iter_band = 0) ~baseline ~current () =
  let base = extract baseline and cur = extract current in
  let find (l : metric list) key kind =
    List.find_opt (fun (m : metric) -> m.key = key && m.kind = kind) l
  in
  let compared =
    List.map
      (fun (b : metric) ->
        match find cur b.key b.kind with
        | None ->
          { key = b.key; kind = b.kind; baseline = Some b.value; current = None; status = Missing }
        | Some c ->
          let status =
            match b.kind with
            | Iterations ->
              (* exact band, both directions: iteration counts are
                 deterministic, so any drift is a behaviour change *)
              let delta = int_of_float c.value - int_of_float b.value in
              if abs delta > iter_band then
                Regressed
                  (Printf.sprintf "iterations %d -> %d (band \xc2\xb1%d)" (int_of_float b.value)
                     (int_of_float c.value) iter_band)
              else Ok_
            | Wall ->
              if b.value > 0. && c.value > wall_tol *. b.value then
                Regressed
                  (Printf.sprintf "wall_s %.4g -> %.4g (%.2fx > %.2fx tolerance)" b.value
                     c.value (c.value /. b.value) wall_tol)
              else Ok_
          in
          { key = b.key; kind = b.kind; baseline = Some b.value; current = Some c.value; status })
      base
  in
  let fresh =
    List.filter_map
      (fun (c : metric) ->
        if find base c.key c.kind = None then
          Some { key = c.key; kind = c.kind; baseline = None; current = Some c.value; status = New }
        else None)
      cur
  in
  compared @ fresh

let violations rows =
  List.filter_map
    (fun r ->
      match r.status with
      | Regressed why -> Some (Printf.sprintf "%s:%s — %s" r.key (kind_name r.kind) why)
      | Missing -> Some (Printf.sprintf "%s:%s — present in baseline, missing now" r.key (kind_name r.kind))
      | Ok_ | New -> None)
    rows

let pp_table ppf rows =
  let open Format in
  let cell = function None -> "-" | Some v -> sprintf "%.6g" v in
  fprintf ppf "@[<v>%-44s %-10s %12s %12s %8s  %s@," "metric" "kind" "baseline" "current"
    "ratio" "status";
  fprintf ppf "%s@," (String.make 100 '-');
  List.iter
    (fun r ->
      let ratio =
        match (r.baseline, r.current) with
        | Some b, Some c when b > 0. -> sprintf "%.3f" (c /. b)
        | _ -> "-"
      in
      let status =
        match r.status with
        | Ok_ -> "ok"
        | Regressed _ -> "REGRESSED"
        | Missing -> "MISSING"
        | New -> "new"
      in
      fprintf ppf "%-44s %-10s %12s %12s %8s  %s@," r.key (kind_name r.kind) (cell r.baseline)
        (cell r.current) ratio status)
    rows;
  fprintf ppf "@]"
