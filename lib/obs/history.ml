(* Bounded ring buffer of (iteration, residual) pairs recorded inside
   iterative solvers.  Preallocated at creation so the per-iteration
   record is two array stores and an increment; when the buffer wraps,
   the oldest entries are overwritten and [total] keeps counting. *)

type t = {
  meth : string;
  cap : int;
  iters : int array;
  residuals : float array;
  mutable total : int;
}

type snapshot = {
  meth : string;
  total : int;
  iterations : int array;
  residuals : float array;
}

let default_cap = 512

let create ?(cap = default_cap) ~meth () =
  if cap < 1 then invalid_arg "History.create: cap must be positive";
  {
    meth;
    cap;
    iters = Array.make cap 0;
    residuals = Array.make cap 0.;
    total = 0;
  }

let record (t : t) iter res =
  let slot = t.total mod t.cap in
  t.iters.(slot) <- iter;
  t.residuals.(slot) <- res;
  t.total <- t.total + 1

let total (t : t) = t.total
let capacity (t : t) = t.cap

let snapshot (t : t) =
  let kept = min t.total t.cap in
  let first = t.total - kept in
  {
    meth = t.meth;
    total = t.total;
    iterations = Array.init kept (fun i -> t.iters.((first + i) mod t.cap));
    residuals = Array.init kept (fun i -> t.residuals.((first + i) mod t.cap));
  }

let snapshot_fields s =
  [
    ("method", Json.String s.meth);
    ("total", Json.Int s.total);
    ( "iterations",
      Json.List (Array.to_list (Array.map (fun i -> Json.Int i) s.iterations))
    );
    ( "residuals",
      Json.List (Array.to_list (Array.map (fun r -> Json.Float r) s.residuals))
    );
  ]

let snapshot_to_json s = Json.Obj (snapshot_fields s)
