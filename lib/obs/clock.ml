let start_epoch = Unix.gettimeofday ()
let now () = Unix.gettimeofday ()
let elapsed () = now () -. start_epoch
