type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------- printing *)

(* Strings are arbitrary byte sequences but emitted lines must be pure
   ASCII.  Valid UTF-8 sequences become \uXXXX escapes (surrogate pairs
   above the BMP); a byte that is not part of a valid sequence is
   escaped as the lone low surrogate \udcXX ("surrogateescape"), which
   the parser folds back to the raw byte — emission is lossless for any
   byte string. *)

(* [utf8_decode s i] returns [Some (code, len)] when [s] carries a valid
   UTF-8 sequence at byte [i]: no overlong forms, no surrogate code
   points, nothing above U+10FFFF. *)
let utf8_decode s i =
  let n = String.length s in
  let byte k = Char.code s.[k] in
  let cont k = k < n && byte k land 0xC0 = 0x80 in
  let b0 = byte i in
  if b0 < 0xC2 then None
  else if b0 <= 0xDF then
    if cont (i + 1) then Some (((b0 land 0x1F) lsl 6) lor (byte (i + 1) land 0x3F), 2)
    else None
  else if b0 <= 0xEF then
    if cont (i + 1) && cont (i + 2) then begin
      let code =
        ((b0 land 0x0F) lsl 12)
        lor ((byte (i + 1) land 0x3F) lsl 6)
        lor (byte (i + 2) land 0x3F)
      in
      if code >= 0x800 && not (code >= 0xD800 && code <= 0xDFFF) then Some (code, 3)
      else None
    end
    else None
  else if b0 <= 0xF4 then
    if cont (i + 1) && cont (i + 2) && cont (i + 3) then begin
      let code =
        ((b0 land 0x07) lsl 18)
        lor ((byte (i + 1) land 0x3F) lsl 12)
        lor ((byte (i + 2) land 0x3F) lsl 6)
        lor (byte (i + 3) land 0x3F)
      in
      if code >= 0x10000 && code <= 0x10FFFF then Some (code, 4) else None
    end
    else None
  else None

let add_uescape buf code =
  if code < 0x10000 then Buffer.add_string buf (Printf.sprintf "\\u%04x" code)
  else begin
    let c = code - 0x10000 in
    Buffer.add_string buf
      (Printf.sprintf "\\u%04x\\u%04x" (0xD800 lor (c lsr 10)) (0xDC00 lor (c land 0x3FF)))
  end

let escape buf s =
  Buffer.add_char buf '"';
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    (match c with
    | '"' ->
      Buffer.add_string buf "\\\"";
      incr i
    | '\\' ->
      Buffer.add_string buf "\\\\";
      incr i
    | '\n' ->
      Buffer.add_string buf "\\n";
      incr i
    | '\r' ->
      Buffer.add_string buf "\\r";
      incr i
    | '\t' ->
      Buffer.add_string buf "\\t";
      incr i
    | c when Char.code c < 0x20 ->
      Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c));
      incr i
    | c when Char.code c < 0x80 ->
      Buffer.add_char buf c;
      incr i
    | c -> (
      match utf8_decode s !i with
      | Some (code, len) ->
        add_uescape buf code;
        i := !i + len
      | None ->
        (* invalid byte: lone low surrogate carrying the byte value *)
        add_uescape buf (0xDC00 lor Char.code c);
        incr i))
  done;
  Buffer.add_char buf '"'

(* JSON has no NaN/Inf literal; non-finite floats degrade to null so every
   emitted line stays parseable by any consumer. *)
let add_float buf x =
  if not (Float.is_finite x) then Buffer.add_string buf "null"
  else begin
    let s = Printf.sprintf "%.17g" x in
    Buffer.add_string buf s;
    (* keep floats round-trippable as floats: 1. prints as "1", add ".0" *)
    if String.for_all (fun c -> (c >= '0' && c <= '9') || c = '-') s then
      Buffer.add_string buf ".0"
  end

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> add_float buf x
  | String s -> escape buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        add buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        add buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  add buf j;
  Buffer.contents buf

(* -------------------------------------------------------------- parsing *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))
let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.src
    && match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string_body c =
  let buf = Buffer.create 16 in
  let rec go () =
    if c.pos >= String.length c.src then fail c "unterminated string";
    let ch = c.src.[c.pos] in
    c.pos <- c.pos + 1;
    match ch with
    | '"' -> Buffer.contents buf
    | '\\' -> begin
      if c.pos >= String.length c.src then fail c "unterminated escape";
      let e = c.src.[c.pos] in
      c.pos <- c.pos + 1;
      (match e with
      | '"' -> Buffer.add_char buf '"'
      | '\\' -> Buffer.add_char buf '\\'
      | '/' -> Buffer.add_char buf '/'
      | 'b' -> Buffer.add_char buf '\b'
      | 'f' -> Buffer.add_char buf '\012'
      | 'n' -> Buffer.add_char buf '\n'
      | 'r' -> Buffer.add_char buf '\r'
      | 't' -> Buffer.add_char buf '\t'
      | 'u' ->
        if c.pos + 4 > String.length c.src then fail c "truncated \\u escape";
        let hex = String.sub c.src c.pos 4 in
        c.pos <- c.pos + 4;
        let code =
          match int_of_string_opt ("0x" ^ hex) with
          | Some v -> v
          | None -> fail c "bad \\u escape"
        in
        (* a high surrogate followed by \uDCxx..\uDFxx is an astral
           pair; combine before encoding *)
        let code =
          if
            code >= 0xD800 && code <= 0xDBFF
            && c.pos + 6 <= String.length c.src
            && c.src.[c.pos] = '\\'
            && c.src.[c.pos + 1] = 'u'
          then begin
            match int_of_string_opt ("0x" ^ String.sub c.src (c.pos + 2) 4) with
            | Some low when low >= 0xDC00 && low <= 0xDFFF ->
              c.pos <- c.pos + 6;
              0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00)
            | _ -> code
          end
          else code
        in
        (* lone low surrogates \udc80..\udcff are surrogateescape-encoded
           raw bytes (see [escape]); everything else is UTF-8-encoded
           (lone surrogates outside that band fall through to WTF-8
           rather than failing the whole line) *)
        if code >= 0xDC80 && code <= 0xDCFF then Buffer.add_char buf (Char.chr (code land 0xFF))
        else add_utf8 buf code
      | _ -> fail c "bad escape");
      go ()
    end
    | c -> Buffer.add_char buf c; go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    (ch >= '0' && ch <= '9') || ch = '-' || ch = '+' || ch = '.' || ch = 'e' || ch = 'E'
  in
  while c.pos < String.length c.src && is_num_char c.src.[c.pos] do
    c.pos <- c.pos + 1
  done;
  let s = String.sub c.src start (c.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt s with Some f -> Float f | None -> fail c "bad number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some '}' then begin
      c.pos <- c.pos + 1;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws c;
        expect c '"';
        let k = parse_string_body c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          members ((k, v) :: acc)
        | Some '}' ->
          c.pos <- c.pos + 1;
          Obj (List.rev ((k, v) :: acc))
        | _ -> fail c "expected ',' or '}'"
      in
      members []
    end
  | Some '[' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some ']' then begin
      c.pos <- c.pos + 1;
      List []
    end
    else begin
      let rec elements acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          elements (v :: acc)
        | Some ']' ->
          c.pos <- c.pos + 1;
          List (List.rev (v :: acc))
        | _ -> fail c "expected ',' or ']'"
      in
      elements []
    end
  | Some '"' ->
    c.pos <- c.pos + 1;
    String (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let parse s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length s then Error (Printf.sprintf "trailing input at offset %d" c.pos)
    else Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------ accessors *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
