(** The JSONL trace writer.

    One JSON object per line.  Every file starts with a [meta] line
    carrying the schema version ({!schema}); subsequent lines are
    [span], [metric], [conv] and [summary] events.  Writes are
    mutex-serialised (spans close concurrently on pooled domains) and
    silently dropped when no trace file is open, so callers only guard
    for performance, not correctness. *)

val schema : string
(** Current schema identifier, ["ttsv.trace.v2"].  v2 added the [conv]
    convergence-history record; all v1 record kinds are unchanged.
    [obs_check] and {!Profile} accept {!schema_v1} files too. *)

val schema_v1 : string
(** The previous identifier, ["ttsv.trace.v1"], kept so consumers can
    stay backward compatible. *)

val write_count : unit -> int
(** Total JSONL lines written over the process lifetime (never reset).
    The disabled-path guard test asserts it stays flat while
    observability is off. *)

val open_trace : string -> unit
(** Open (truncate) [path] and write the [meta] line.  An already-open
    trace is closed first. *)

val close_trace : unit -> unit
val flush_trace : unit -> unit
val trace_path : unit -> string option

val span :
  id:int ->
  parent:int option ->
  domain:int ->
  depth:int ->
  name:string ->
  start:float ->
  dur:float ->
  attrs:(string * string) list ->
  unit
(** Emit one closed span.  [start] is seconds since {!Clock.start_epoch};
    [attrs] is omitted from the JSON when empty. *)

val metric : ?span:int -> kind:string -> name:string -> Json.t -> unit
(** Emit a point-in-time metric sample (e.g. the [solve.iterations]
    total of one finished solve), tagged with the enclosing span id when
    the caller has one. *)

val conv : ?span:int -> History.snapshot -> unit
(** Emit one [conv] line — the residual history of one finished solve
    (method, total count, retained iteration/residual window), tagged
    with the enclosing span id when the caller has one. *)

val snapshot : Metrics.snapshot -> unit
(** Emit one [summary] line per metric — written when a trace closes so
    the file is self-contained. *)
