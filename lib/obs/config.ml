let enable_trace path =
  Sink.open_trace path;
  Atomic.set Flags.trace true;
  Flags.refresh ()

let disable_trace () =
  Atomic.set Flags.trace false;
  Flags.refresh ();
  (* flush accumulated metrics into the file before closing so a trace
     is self-contained even when nobody prints the summary *)
  if Flags.metrics_on () then begin
    Gcstats.sample ();
    Sink.snapshot (Metrics.snapshot ())
  end;
  Sink.close_trace ()

let enable_metrics () =
  Atomic.set Flags.metrics true;
  Flags.refresh ()

let disable_metrics () =
  Atomic.set Flags.metrics false;
  Flags.refresh ()

let print_summary ppf =
  Gcstats.sample ();
  Format.fprintf ppf "@[<v>observability summary (registry: default)@,%a@]@."
    Metrics.pp_summary (Metrics.snapshot ())

(* at_exit: close an open trace cleanly and, when metrics ran, print the
   human-readable summary table.  Registered once at library load; the
   body checks the flags at exit time so it is a no-op for untraced runs. *)
let () =
  at_exit (fun () ->
      if Flags.metrics_on () then print_summary Format.err_formatter;
      if Flags.trace_on () then disable_trace ())

let env_truthy = function
  | None -> false
  | Some s -> (
    match String.lowercase_ascii (String.trim s) with
    | "" | "0" | "false" | "no" | "off" -> false
    | _ -> true)

let init_from_env () =
  (match Sys.getenv_opt "TTSV_TRACE" with
  | Some path when String.trim path <> "" -> enable_trace (String.trim path)
  | Some _ | None -> ());
  if env_truthy (Sys.getenv_opt "TTSV_METRICS") then enable_metrics ()

(* honour TTSV_TRACE / TTSV_METRICS in every binary that links this
   library, without each main having to remember to call us *)
let () = init_from_env ()
