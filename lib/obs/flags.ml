let trace = Atomic.make false
let metrics = Atomic.make false
let active = Atomic.make false
let refresh () = Atomic.set active (Atomic.get trace || Atomic.get metrics)
let trace_on () = Atomic.get trace
let metrics_on () = Atomic.get metrics
let enabled () = Atomic.get active
