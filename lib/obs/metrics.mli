(** The metrics registry: named counters, gauges and histograms with
    atomic updates, plus an immutable snapshot/merge API.

    Handles are interned by name (creating twice returns the same
    instrument; re-using a name with a different kind raises
    [Invalid_argument]).  Handle {e creation} takes the registry mutex —
    do it once at module initialisation.  The update operations
    ([incr]/[add]/[set]/[observe]) are the instrumentation hot path:
    each is guarded by a single {!Flags.metrics_on} read and performs
    only atomic arithmetic when enabled, nothing when disabled. *)

type t
(** A registry.  Instrumented library code uses {!default}; tests create
    private registries with {!create} to stay isolated. *)

type registry = t
(** Alias usable inside the instrument submodules, where [t] is the
    instrument itself. *)

val default : t
val create : unit -> t

module Counter : sig
  type t

  val make : ?registry:registry -> string -> t
  val incr : t -> unit
  val add : t -> int -> unit

  val value : t -> int
  (** Reads are never guarded — they see whatever was accumulated while
      metrics were on. *)
end

module Gauge : sig
  type t

  val make : ?registry:registry -> string -> t
  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  val make : ?registry:registry -> string -> t

  val observe : t -> float -> unit
  (** Records [v] into the fixed log-scale bucket layout shared by every
      histogram: bucket [i] covers [[bucket_lower i, bucket_upper i)],
      with bucket 0 also catching zero/negative/NaN values and the last
      bucket catching overflow. *)

  val count : t -> int
  val sum : t -> float
  val nbuckets : int
  val bucket_index : float -> int
  val bucket_lower : int -> float
  val bucket_upper : int -> float
end

val span_duration : ?registry:t -> string -> float -> unit
(** [span_duration name dur] accumulates a closed span's duration into
    the ["span.<name>"] histogram (no-op when metrics are off).  This is
    how phase breakdowns reach the bench JSON without the bench knowing
    every span site. *)

val span_alloc : ?registry:t -> string -> float -> unit
(** [span_alloc name words] accumulates a closed span's allocation delta
    (in words, from [Gc.quick_stat]) into the ["alloc.<name>"]
    histogram.  Kept out of the ["span."] namespace so phase/wall-clock
    consumers never mix words with seconds. *)

val reset : ?registry:t -> unit -> unit
(** Zero every instrument in place (handles stay valid). *)

(** {2 Snapshots} *)

type hist_snapshot = {
  buckets : int array;
  count : int;
  sum : float;
  min : float;  (** [infinity] when empty *)
  max : float;  (** [neg_infinity] when empty *)
}

type sample = C of int | G of float | H of hist_snapshot

type snapshot = (string * sample) list
(** Sorted by name — the canonical form {!merge} relies on. *)

val empty_snapshot : snapshot

val snapshot : ?registry:t -> unit -> snapshot

val merge : snapshot -> snapshot -> snapshot
(** Associative and commutative, with {!empty_snapshot} as identity:
    counters and histograms add, gauges keep the max.  Raises
    [Invalid_argument] if the same name carries different kinds. *)

val percentile : hist_snapshot -> float -> float
(** [percentile h q] estimates the [q]-quantile ([0. <= q <= 1.]) from
    the log2 buckets: cumulative walk to the bucket holding the target
    rank, linear interpolation inside it, clamped to the observed
    [min]/[max].  Accurate to one octave at worst; NaN when empty. *)

val sample_to_json : sample -> Json.t
(** Histogram samples carry [p50]/[p95]/[p99] estimates (null when the
    histogram is empty, like [min]/[max]). *)

val snapshot_to_json : snapshot -> Json.t
val pp_summary : Format.formatter -> snapshot -> unit
