(** Offline trace analysis: load a JSONL trace ({!Sink.schema} v2 or the
    older v1), rebuild the span tree, and derive the aggregates
    [bin/obs_report] renders — per-name self/total times, the critical
    path, flamegraph.pl collapsed stacks, and convergence curves. *)

type span = {
  id : int;
  parent : int option;
  domain : int;
  depth : int;
  name : string;
  start : float;
  dur : float;
}

type conv = {
  meth : string;
  span : int option;  (** enclosing span id, when the solve had one *)
  total : int;
  iterations : int array;
  residuals : float array;
}

type t = { schema : string; spans : span list; convs : conv list }

type agg = {
  agg_name : string;
  agg_count : int;
  agg_total : float;  (** summed span durations, children included *)
  agg_self : float;  (** summed durations minus direct children, >= 0 *)
}

val of_lines : string list -> (t, string) result
(** Parse trace lines (blank lines skipped).  Fails on an unparseable
    line, an unsupported schema, or a malformed span/conv record;
    [metric] and [summary] records are skipped. *)

val load : string -> (t, string) result

val roots : t -> span list

val totals : t -> agg list
(** Per-name aggregation over every span, sorted by self time
    descending. *)

val critical_path : t -> (span * float) list
(** The longest root span, then repeatedly its longest child; each entry
    carries the span's self time. *)

val collapsed : t -> (string * float) list
(** Flamegraph collapsed stacks: one entry per distinct root-to-span
    name path (names joined with [';']), carrying the aggregated self
    time in seconds.  Summing all entries reproduces the total traced
    wall time (sum of root span durations) up to clock-jitter clamping. *)

val span_label : t -> int -> string option
(** Root-to-span name path for one span id — used to label convergence
    curves with the rung that produced them. *)
