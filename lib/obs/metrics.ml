(* Counters are plain atomic ints.  Gauges and histogram float
   accumulators use the CAS-retry idiom on ['a Atomic.t]: the box read by
   [Atomic.get] is the physical value [compare_and_set] tests against, so
   the loop is correct even though floats are boxed. *)

let rec atomic_add_float a dx =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (old +. dx)) then atomic_add_float a dx

let rec atomic_max_float a x =
  let old = Atomic.get a in
  if x > old && not (Atomic.compare_and_set a old x) then atomic_max_float a x

let rec atomic_min_float a x =
  let old = Atomic.get a in
  if x < old && not (Atomic.compare_and_set a old x) then atomic_min_float a x

(* ----------------------------------------------------- histogram layout *)

(* Fixed log-scale (base-2) buckets shared by every histogram: bucket [i]
   covers [2^(i + min_exp - 1), 2^(i + min_exp)), i.e. values whose
   [frexp] exponent is [i + min_exp].  Bucket 0 additionally catches
   everything below the range (including 0 and negatives); the last
   bucket catches everything above.  2^-31 s ~ 0.5 ns and 2^32 ~ 4e9
   bracket every duration, count and residual the layer records. *)
let min_exp = -31
let nbuckets = 64

let bucket_index v =
  if not (v > 0.) || Float.is_nan v then 0
  else if v = Float.infinity then nbuckets - 1 (* frexp inf reports exponent 0 *)
  else begin
    let _, e = Float.frexp v in
    (* v in [2^(e-1), 2^e) *)
    let i = e - min_exp in
    if i < 0 then 0 else if i >= nbuckets then nbuckets - 1 else i
  end

let bucket_lower i =
  if i <= 0 then 0. else Float.ldexp 1. (i + min_exp - 1)

let bucket_upper i =
  if i >= nbuckets - 1 then Float.infinity else Float.ldexp 1. (i + min_exp)

type hist = {
  buckets : int Atomic.t array;
  count : int Atomic.t;
  sum : float Atomic.t;
  vmin : float Atomic.t;
  vmax : float Atomic.t;
}

let hist_make () =
  {
    buckets = Array.init nbuckets (fun _ -> Atomic.make 0);
    count = Atomic.make 0;
    sum = Atomic.make 0.;
    vmin = Atomic.make Float.infinity;
    vmax = Atomic.make Float.neg_infinity;
  }

let hist_observe h v =
  ignore (Atomic.fetch_and_add h.buckets.(bucket_index v) 1);
  ignore (Atomic.fetch_and_add h.count 1);
  atomic_add_float h.sum v;
  atomic_min_float h.vmin v;
  atomic_max_float h.vmax v

(* -------------------------------------------------------------- registry *)

type instrument =
  | Counter_i of int Atomic.t
  | Gauge_i of float Atomic.t
  | Hist_i of hist

type t = { mutex : Mutex.t; table : (string, instrument) Hashtbl.t }
type registry = t

let create () = { mutex = Mutex.create (); table = Hashtbl.create 64 }
let default = create ()

let locked r f =
  Mutex.lock r.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock r.mutex) f

let intern r name make describe =
  locked r (fun () ->
      match Hashtbl.find_opt r.table name with
      | Some existing -> (
        match describe existing with
        | Some v -> v
        | None -> invalid_arg (Printf.sprintf "Metrics: %S already registered with another kind" name))
      | None ->
        let i, v = make () in
        Hashtbl.add r.table name i;
        v)

module Counter = struct
  type nonrec t = int Atomic.t

  let make ?(registry = default) name =
    intern registry name
      (fun () ->
        let a = Atomic.make 0 in
        (Counter_i a, a))
      (function Counter_i a -> Some a | _ -> None)

  let add c n = if Flags.metrics_on () then ignore (Atomic.fetch_and_add c n)
  let incr c = add c 1
  let value c = Atomic.get c
end

module Gauge = struct
  type nonrec t = float Atomic.t

  let make ?(registry = default) name =
    intern registry name
      (fun () ->
        let a = Atomic.make 0. in
        (Gauge_i a, a))
      (function Gauge_i a -> Some a | _ -> None)

  let set g v = if Flags.metrics_on () then Atomic.set g v
  let add g dv = if Flags.metrics_on () then atomic_add_float g dv
  let value g = Atomic.get g
end

module Histogram = struct
  type nonrec t = hist

  let make ?(registry = default) name =
    intern registry name
      (fun () ->
        let h = hist_make () in
        (Hist_i h, h))
      (function Hist_i h -> Some h | _ -> None)

  let observe h v = if Flags.metrics_on () then hist_observe h v
  let count h = Atomic.get h.count
  let sum h = Atomic.get h.sum
  let nbuckets = nbuckets
  let bucket_index = bucket_index
  let bucket_lower = bucket_lower
  let bucket_upper = bucket_upper
end

(* observe a span duration into the ["span.<name>"] histogram; the
   registry lookup only runs when metrics are on, so the disabled path
   never touches the mutex *)
let span_duration ?(registry = default) name dur =
  if Flags.metrics_on () then begin
    let h = Histogram.make ~registry ("span." ^ name) in
    hist_observe h dur
  end

(* per-span allocation deltas live under "alloc.", not "span.": the
   bench phase harvester and the obs_check capacity check fold every
   "span.*" histogram into wall-clock sums, and words are not seconds *)
let span_alloc ?(registry = default) name words =
  if Flags.metrics_on () then begin
    let h = Histogram.make ~registry ("alloc." ^ name) in
    hist_observe h words
  end

let reset ?(registry = default) () =
  locked registry (fun () ->
      Hashtbl.iter
        (fun _ i ->
          match i with
          | Counter_i a -> Atomic.set a 0
          | Gauge_i a -> Atomic.set a 0.
          | Hist_i h ->
            Array.iter (fun b -> Atomic.set b 0) h.buckets;
            Atomic.set h.count 0;
            Atomic.set h.sum 0.;
            Atomic.set h.vmin Float.infinity;
            Atomic.set h.vmax Float.neg_infinity)
        registry.table)

(* ------------------------------------------------------------- snapshots *)

type hist_snapshot = {
  buckets : int array;
  count : int;
  sum : float;
  min : float;  (** [infinity] when empty *)
  max : float;  (** [neg_infinity] when empty *)
}

type sample = C of int | G of float | H of hist_snapshot
type snapshot = (string * sample) list

let empty_snapshot = []

let snapshot ?(registry = default) () =
  let rows =
    locked registry (fun () ->
        Hashtbl.fold
          (fun name i acc ->
            let s =
              match i with
              | Counter_i a -> C (Atomic.get a)
              | Gauge_i a -> G (Atomic.get a)
              | Hist_i h ->
                H
                  {
                    buckets = Array.map Atomic.get h.buckets;
                    count = Atomic.get h.count;
                    sum = Atomic.get h.sum;
                    min = Atomic.get h.vmin;
                    max = Atomic.get h.vmax;
                  }
            in
            (name, s) :: acc)
          registry.table [])
  in
  List.sort (fun (a, _) (b, _) -> compare a b) rows

(* Merge is associative and commutative with [empty_snapshot] as the
   identity: counters and histogram contents add, gauges keep the max
   (a sum of last-seen levels from different domains means nothing). *)
let merge_sample a b =
  match (a, b) with
  | C x, C y -> C (x + y)
  | G x, G y -> G (Float.max x y)
  | H x, H y ->
    H
      {
        buckets = Array.init nbuckets (fun i -> x.buckets.(i) + y.buckets.(i));
        count = x.count + y.count;
        sum = x.sum +. y.sum;
        min = Float.min x.min y.min;
        max = Float.max x.max y.max;
      }
  | _ -> invalid_arg "Metrics.merge: kind mismatch for the same name"

let merge a b =
  let rec go a b =
    match (a, b) with
    | [], rest | rest, [] -> rest
    | (ka, va) :: ta, (kb, vb) :: tb ->
      let c = compare ka kb in
      if c < 0 then (ka, va) :: go ta b
      else if c > 0 then (kb, vb) :: go a tb
      else (ka, merge_sample va vb) :: go ta tb
  in
  go a b

(* Percentile estimate from the log2 buckets: walk the cumulative
   counts to the bucket holding rank [q * count], then interpolate
   linearly inside that bucket, clamped to the observed [min, max] so
   the estimate never leaves the data range.  Resolution is therefore
   one octave at worst.  NaN on an empty histogram. *)
let percentile (h : hist_snapshot) q =
  if h.count = 0 then Float.nan
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let target = q *. float_of_int h.count in
    let rec go i cum =
      if i >= nbuckets then h.max
      else begin
        let n = h.buckets.(i) in
        if n > 0 && float_of_int (cum + n) >= target then begin
          let lo = Float.max (bucket_lower i) h.min in
          let hi = Float.min (bucket_upper i) h.max in
          let lo = Float.min lo hi in
          let frac = Float.max 0. ((target -. float_of_int cum) /. float_of_int n) in
          lo +. (frac *. (hi -. lo))
        end
        else go (i + 1) (cum + n)
      end
    in
    go 0 0
  end

let sample_to_json = function
  | C n -> Json.Obj [ ("kind", Json.String "counter"); ("value", Json.Int n) ]
  | G v -> Json.Obj [ ("kind", Json.String "gauge"); ("value", Json.Float v) ]
  | H h ->
    let nonzero =
      List.filteri (fun i _ -> h.buckets.(i) > 0) (Array.to_list (Array.mapi (fun i n -> (i, n)) h.buckets))
    in
    Json.Obj
      [
        ("kind", Json.String "histogram");
        ("count", Json.Int h.count);
        ("sum", Json.Float h.sum);
        ("min", Json.Float (if h.count = 0 then Float.nan else h.min));
        ("max", Json.Float (if h.count = 0 then Float.nan else h.max));
        ("p50", Json.Float (percentile h 0.50));
        ("p95", Json.Float (percentile h 0.95));
        ("p99", Json.Float (percentile h 0.99));
        ( "buckets",
          Json.List
            (List.map
               (fun (i, n) ->
                 Json.Obj [ ("ge", Json.Float (bucket_lower i)); ("n", Json.Int n) ])
               nonzero) );
      ]

let snapshot_to_json s =
  Json.Obj (List.map (fun (name, sample) -> (name, sample_to_json sample)) s)

let pp_summary ppf s =
  let open Format in
  fprintf ppf "@[<v>%-32s %-9s %s@," "metric" "kind" "value";
  fprintf ppf "%s@," (String.make 72 '-');
  List.iter
    (fun (name, sample) ->
      match sample with
      | C n -> fprintf ppf "%-32s %-9s %d@," name "counter" n
      | G v -> fprintf ppf "%-32s %-9s %.6g@," name "gauge" v
      | H h ->
        if h.count = 0 then fprintf ppf "%-32s %-9s (empty)@," name "histogram"
        else
          fprintf ppf
            "%-32s %-9s n=%d sum=%.6g avg=%.3g min=%.3g max=%.3g p50=%.3g p95=%.3g p99=%.3g@,"
            name "histogram" h.count h.sum
            (h.sum /. float_of_int h.count)
            h.min h.max (percentile h 0.50) (percentile h 0.95) (percentile h 0.99))
    s;
  fprintf ppf "@]"
