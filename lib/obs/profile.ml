(* Offline analysis of a JSONL trace: span tree reconstruction, self/total
   time aggregation, critical path, collapsed stacks for flamegraph.pl,
   and convergence curves.  Pure — reads lines, returns data; rendering
   lives in bin/obs_report. *)

type span = {
  id : int;
  parent : int option;
  domain : int;
  depth : int;
  name : string;
  start : float;
  dur : float;
}

type conv = {
  meth : string;
  span : int option;
  total : int;
  iterations : int array;
  residuals : float array;
}

type t = { schema : string; spans : span list; convs : conv list }

type agg = {
  agg_name : string;
  agg_count : int;
  agg_total : float;  (** summed span durations (children included) *)
  agg_self : float;  (** summed durations minus direct children *)
}

(* ------------------------------------------------------------- loading *)

let ( let* ) = Result.bind

let field_int name j =
  match Option.bind (Json.member name j) Json.to_int_opt with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing int field %S" name)

let field_float name j =
  match Option.bind (Json.member name j) Json.to_float_opt with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing number field %S" name)

let field_str name j =
  match Option.bind (Json.member name j) Json.to_string_opt with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing string field %S" name)

let opt_int name j = Option.bind (Json.member name j) Json.to_int_opt

let parse_span j =
  let* id = field_int "id" j in
  let* domain = field_int "domain" j in
  let* depth = field_int "depth" j in
  let* name = field_str "name" j in
  let* start = field_float "start" j in
  let* dur = field_float "dur" j in
  Ok { id; parent = opt_int "parent" j; domain; depth; name; start; dur }

let num_array name j =
  match Json.member name j with
  | Some (Json.List xs) -> (
    let floats = List.filter_map Json.to_float_opt xs in
    if List.length floats = List.length xs then Ok (Array.of_list floats)
    else Error (Printf.sprintf "non-numeric entry in %S" name))
  | _ -> Error (Printf.sprintf "missing list field %S" name)

let parse_conv j =
  let* meth = field_str "method" j in
  let* total = field_int "total" j in
  let* iters = num_array "iterations" j in
  let* residuals = num_array "residuals" j in
  if Array.length iters <> Array.length residuals then
    Error "conv: iterations and residuals differ in length"
  else
    Ok
      {
        meth;
        span = opt_int "span" j;
        total;
        iterations = Array.map int_of_float iters;
        residuals;
      }

let of_lines lines =
  let rec go lineno schema spans convs = function
    | [] -> (
      match schema with
      | None -> Error "no meta line found"
      | Some schema -> Ok { schema; spans = List.rev spans; convs = List.rev convs })
    | line :: rest -> (
      let lineno = lineno + 1 in
      if String.trim line = "" then go lineno schema spans convs rest
      else begin
        match Json.parse line with
        | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
        | Ok j -> (
          let typ = Option.bind (Json.member "type" j) Json.to_string_opt in
          match typ with
          | Some "meta" -> (
            match Option.bind (Json.member "schema" j) Json.to_string_opt with
            | Some s when s = Sink.schema || s = Sink.schema_v1 ->
              go lineno (Some s) spans convs rest
            | Some s -> Error (Printf.sprintf "line %d: unsupported schema %S" lineno s)
            | None -> Error (Printf.sprintf "line %d: meta without schema" lineno))
          | Some "span" -> (
            match parse_span j with
            | Ok s -> go lineno schema (s :: spans) convs rest
            | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
          | Some "conv" -> (
            match parse_conv j with
            | Ok c -> go lineno schema spans (c :: convs) rest
            | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
          | Some _ -> go lineno schema spans convs rest (* metric/summary *)
          | None -> Error (Printf.sprintf "line %d: record without type" lineno))
      end)
  in
  go 0 None [] [] lines

let load path =
  match In_channel.with_open_text path In_channel.input_lines with
  | lines -> of_lines lines
  | exception Sys_error e -> Error e

(* ------------------------------------------------------------ analysis *)

let by_id t =
  let tbl = Hashtbl.create 256 in
  List.iter (fun s -> Hashtbl.replace tbl s.id s) t.spans;
  tbl

let children t =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun s ->
      match s.parent with
      | Some p -> Hashtbl.replace tbl p (s :: (Option.value ~default:[] (Hashtbl.find_opt tbl p)))
      | None -> ())
    t.spans;
  tbl

(* self time = own duration minus the sum of direct children, clamped at
   zero (clock jitter can make children sum to slightly more than the
   parent) *)
let self_time children_tbl s =
  let kids = Option.value ~default:[] (Hashtbl.find_opt children_tbl s.id) in
  Float.max 0. (s.dur -. List.fold_left (fun acc k -> acc +. k.dur) 0. kids)

let roots t = List.filter (fun s -> s.parent = None) t.spans

let totals t =
  let kids = children t in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun s ->
      let c, tot, self =
        Option.value ~default:(0, 0., 0.) (Hashtbl.find_opt tbl s.name)
      in
      Hashtbl.replace tbl s.name (c + 1, tot +. s.dur, self +. self_time kids s))
    t.spans;
  let rows =
    Hashtbl.fold
      (fun name (c, tot, self) acc ->
        { agg_name = name; agg_count = c; agg_total = tot; agg_self = self } :: acc)
      tbl []
  in
  List.sort
    (fun a b ->
      match compare b.agg_self a.agg_self with 0 -> compare a.agg_name b.agg_name | c -> c)
    rows

let critical_path t =
  let kids = children t in
  let longest spans =
    List.fold_left
      (fun acc s -> match acc with Some m when m.dur >= s.dur -> acc | _ -> Some s)
      None spans
  in
  let rec descend acc s =
    let acc = (s, self_time kids s) :: acc in
    match longest (Option.value ~default:[] (Hashtbl.find_opt kids s.id)) with
    | Some k -> descend acc k
    | None -> List.rev acc
  in
  match longest (roots t) with None -> [] | Some r -> descend [] r

(* path from root to [s], as span names joined with ';' (the collapsed
   stack key).  Orphaned parents (span id never closed in the trace) end
   the chain silently. *)
let stack_of ids s =
  let rec up acc s =
    match s.parent with
    | None -> s.name :: acc
    | Some p -> (
      match Hashtbl.find_opt ids p with
      | Some ps -> up (s.name :: acc) ps
      | None -> s.name :: acc)
  in
  String.concat ";" (up [] s)

let collapsed t =
  let ids = by_id t in
  let kids = children t in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun s ->
      let path = stack_of ids s in
      let self = self_time kids s in
      Hashtbl.replace tbl path (self +. Option.value ~default:0. (Hashtbl.find_opt tbl path)))
    t.spans;
  List.sort compare (Hashtbl.fold (fun path self acc -> (path, self) :: acc) tbl [])

let span_label t id =
  let ids = by_id t in
  Option.map (stack_of ids) (Hashtbl.find_opt ids id)
