type frame = { id : int; name : string; start : float }

let next_id = Atomic.make 1

(* One span stack per domain: pooled workers each trace their own nesting
   without locks, and a span closed on domain d can only pop d's stack. *)
let key : frame list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])
let domain_id () = (Domain.self () :> int)

let current () =
  match !(Domain.DLS.get key) with [] -> None | fr :: _ -> Some fr.id

let depth () = List.length !(Domain.DLS.get key)

let with_ ?(attrs = []) ~name f =
  if not (Flags.enabled ()) then f ()
  else begin
    let stack = Domain.DLS.get key in
    let parent = match !stack with [] -> None | fr :: _ -> Some fr.id in
    let depth = List.length !stack in
    let id = Atomic.fetch_and_add next_id 1 in
    (* NaN marks "metrics were off at open", so a span that straddles an
       enable_metrics call never records a bogus since-startup delta *)
    let alloc0 = if Flags.metrics_on () then Gcstats.allocated_words () else Float.nan in
    let start = Clock.elapsed () in
    stack := { id; name; start } :: !stack;
    let finish error =
      let dur = Clock.elapsed () -. start in
      (* pop our own frame even if an inner span leaked (exception paths
         are popped by their own [finish], so this only drops us) *)
      (match !stack with _ :: rest -> stack := rest | [] -> ());
      Metrics.span_duration name dur;
      if Flags.metrics_on () && Float.is_finite alloc0 then
        Metrics.span_alloc name (Gcstats.allocated_words () -. alloc0);
      if Flags.trace_on () then
        Sink.span ~id ~parent ~domain:(domain_id ()) ~depth ~name ~start ~dur
          ~attrs:(if error then ("error", "true") :: attrs else attrs)
    in
    match f () with
    | v ->
      finish false;
      v
    | exception e ->
      finish true;
      raise e
  end

let time ?(attrs = []) ?(name = "timed") f =
  let t0 = Clock.now () in
  let v = if Flags.enabled () then with_ ~attrs ~name f else f () in
  (v, Clock.now () -. t0)
