(** Nested wall-time scopes with a per-domain span stack.

    Each domain (the main one and every pooled worker) owns its own
    stack via [Domain.DLS], so spans opened on different domains nest
    independently and never contend.  A span is emitted to the trace
    sink when it {e closes}, carrying its id, parent id (within the same
    domain), depth, start offset and duration; when metrics are on its
    duration also accumulates into the ["span.<name>"] histogram.

    When observability is disabled, {!with_} costs one [Atomic.get] and
    a branch on top of calling [f] — build attribute lists at call sites
    only under a {!Flags.enabled} check if they require formatting. *)

val with_ : ?attrs:(string * string) list -> name:string -> (unit -> 'a) -> 'a
(** [with_ ~name f] runs [f] inside a span.  If [f] raises, the span is
    closed with an ["error"] attribute and the exception is re-raised. *)

val time : ?attrs:(string * string) list -> ?name:string -> (unit -> 'a) -> 'a * float
(** [time f] always returns [f ()]'s result together with its wall-clock
    seconds (measured whether or not observability is on), wrapping it
    in a span named [name] (default ["timed"]) when enabled.
    {!Ttsv_experiments.Timing} is built on this. *)

val current : unit -> int option
(** Id of the innermost open span on the calling domain, for tagging
    metric events. *)

val depth : unit -> int
(** Nesting depth on the calling domain (0 outside any span). *)
