(** The bench-regression gate behind [obs_check regress].

    Metrics are discovered generically from a BENCH_*.json value: the
    walk extends a [/]-separated key path at each object from its
    identifying fields ([name], [resolution] as [res<k>], [domains] as
    [d<k>]) and records every [iterations] and [wall_s] leaf, so e.g.
    the mg entry of the res-3 multigrid run gates under
    [solve_fv_fig5/res3/mg].  [phases] subtrees are skipped — phase
    sums move with scheduling noise.

    Iteration counts are chunk-deterministic, so they compare with an
    exact band (default [0], both directions).  Wall clocks compare
    with a ratio tolerance; getting faster always passes. *)

type kind = Iterations | Wall

val kind_name : kind -> string

type metric = { key : string; kind : kind; value : float }

type status =
  | Ok_
  | Regressed of string  (** human-readable reason naming the values *)
  | Missing  (** in the baseline, absent from current — a violation *)
  | New  (** only in current — informational *)

type row = {
  key : string;
  kind : kind;
  baseline : float option;
  current : float option;
  status : status;
}

val default_wall_tol : float
(** [2.0] — current wall time may be at most twice the baseline. *)

val extract : Json.t -> metric list

val compare_benches :
  ?wall_tol:float -> ?iter_band:int -> baseline:Json.t -> current:Json.t -> unit -> row list
(** One row per baseline metric (plus [New] rows for metrics only in
    current), in extraction order. *)

val violations : row list -> string list
(** The gate: one line per [Regressed]/[Missing] row, naming the
    offending metric.  Empty means pass. *)

val pp_table : Format.formatter -> row list -> unit
(** The trend table printed by [obs_check regress]. *)
