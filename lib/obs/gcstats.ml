(* GC telemetry gauges fed from [Gc.quick_stat].  [quick_stat] reads
   per-domain counters without forcing a collection, so sampling is
   cheap; under multiple domains the word counts are the usual OCaml 5
   approximation (exact for the calling domain, eventually consistent
   for the others), which is fine for telemetry. *)

let g_minor_words = Metrics.Gauge.make "gc.minor_words"
let g_promoted_words = Metrics.Gauge.make "gc.promoted_words"
let g_major_words = Metrics.Gauge.make "gc.major_words"
let g_allocated_words = Metrics.Gauge.make "gc.allocated_words"
let g_minor_collections = Metrics.Gauge.make "gc.minor_collections"
let g_major_collections = Metrics.Gauge.make "gc.major_collections"
let g_compactions = Metrics.Gauge.make "gc.compactions"
let g_heap_words = Metrics.Gauge.make "gc.heap_words"

(* [Gc.minor_words ()] reads the young pointer and is exact in native
   code; [quick_stat]'s [minor_words] field only advances at minor
   collections, which would make small per-span deltas read as zero.
   Direct-to-major blocks still surface lazily (at slice boundaries) —
   acceptable for telemetry. *)
let allocated_of (s : Gc.stat) = Gc.minor_words () +. s.major_words -. s.promoted_words
let allocated_words () = allocated_of (Gc.quick_stat ())

let sample () =
  if Flags.metrics_on () then begin
    let s = Gc.quick_stat () in
    Metrics.Gauge.set g_minor_words (Gc.minor_words ());
    Metrics.Gauge.set g_promoted_words s.promoted_words;
    Metrics.Gauge.set g_major_words s.major_words;
    Metrics.Gauge.set g_allocated_words (allocated_of s);
    Metrics.Gauge.set g_minor_collections (float_of_int s.minor_collections);
    Metrics.Gauge.set g_major_collections (float_of_int s.major_collections);
    Metrics.Gauge.set g_compactions (float_of_int s.compactions);
    Metrics.Gauge.set g_heap_words (float_of_int s.heap_words)
  end
