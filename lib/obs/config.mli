(** Turning the observability layer on and off.

    At library load the [TTSV_TRACE] (a file path) and [TTSV_METRICS]
    (truthy: anything but empty/0/false/no/off) environment variables
    are honoured automatically; the CLI's [--trace]/[--metrics] flags
    call {!enable_trace}/{!enable_metrics} directly.  Everything is off
    by default and an [at_exit] hook closes an open trace and prints the
    metrics summary table to stderr. *)

val enable_trace : string -> unit
(** Open a JSONL trace at the given path (truncating) and start
    emitting span/metric events. *)

val disable_trace : unit -> unit
(** Stop emitting, append the metrics snapshot as [summary] lines (when
    metrics are on), and close the file. *)

val enable_metrics : unit -> unit
val disable_metrics : unit -> unit

val print_summary : Format.formatter -> unit
(** Print the current default-registry snapshot as the human-readable
    summary table. *)

val init_from_env : unit -> unit
(** Re-read [TTSV_TRACE]/[TTSV_METRICS].  Called automatically at load. *)
