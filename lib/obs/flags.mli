(** The observability on/off switches, read on every instrumentation hook.

    Each predicate is a single [Atomic.get] — this is the entire cost the
    instrumented hot paths pay when observability is disabled, which is
    what keeps the "< 2% overhead with [TTSV_TRACE] unset" contract
    cheap to honour.  Mutation goes through {!Config}; these are split
    out so low-level modules can read the flags without a dependency
    cycle. *)

val trace : bool Atomic.t
val metrics : bool Atomic.t

val refresh : unit -> unit
(** Recompute the combined [active] flag after flipping [trace] or
    [metrics].  {!Config} calls this; instrumentation never should. *)

val trace_on : unit -> bool
(** JSONL trace sink enabled. *)

val metrics_on : unit -> bool
(** Metrics registry accumulation enabled. *)

val enabled : unit -> bool
(** [trace_on () || metrics_on ()] via one atomic read — the guard for
    hooks that feed both. *)
