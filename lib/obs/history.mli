(** Bounded residual-history ring buffer.

    Iterative solvers record one (iteration, residual) pair per
    iteration into a [t]; when more than [cap] pairs arrive the oldest
    are overwritten, so memory stays bounded no matter how long the
    solve runs.  A {!snapshot} freezes the retained window (in
    chronological order) together with the true total count, ready to be
    attached to a diagnostics record or emitted as a [conv] trace event.

    Callers are expected to allocate a [t] only when observability is
    enabled ({!Flags.enabled}): the disabled path of an instrumented
    solver must not allocate ring buffers. *)

type t

type snapshot = {
  meth : string;  (** solver that produced the curve, e.g. ["cg"] *)
  total : int;  (** pairs recorded over the solve, including overwritten *)
  iterations : int array;  (** retained window, oldest first *)
  residuals : float array;  (** same length as [iterations] *)
}

val default_cap : int
(** Default ring capacity (512 entries). *)

val create : ?cap:int -> meth:string -> unit -> t
(** [create ~meth ()] preallocates a ring of [cap] entries (default
    {!default_cap}).  @raise Invalid_argument if [cap < 1]. *)

val record : t -> int -> float -> unit
(** [record t iter res] appends one pair, overwriting the oldest entry
    once the ring is full. *)

val total : t -> int
(** Pairs recorded so far (not capped). *)

val capacity : t -> int

val snapshot : t -> snapshot
(** Freeze the retained window, oldest entry first. *)

val snapshot_fields : snapshot -> (string * Json.t) list
(** Fields of the JSON encoding, for embedding into a larger object
    (the trace [conv] event adds [type]/[t]/[span] around these). *)

val snapshot_to_json : snapshot -> Json.t
