(** Shared wall clock for the observability layer.

    All trace timestamps are seconds relative to {!start_epoch} (process
    start), so traces from one run are directly comparable and the JSONL
    stays compact. *)

val start_epoch : float
(** [Unix.gettimeofday] captured when the library was initialised. *)

val now : unit -> float
(** Current wall time, seconds since the Unix epoch. *)

val elapsed : unit -> float
(** Seconds since {!start_epoch}. *)
