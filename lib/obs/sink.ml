let schema = "ttsv.trace.v2"

(* v2 added the "conv" record; every v1 record kind is unchanged, so
   consumers accept both *)
let schema_v1 = "ttsv.trace.v1"

(* Counts every JSONL line ever written, always (not guarded): the
   disabled-path regression test asserts this stays flat while
   observability is off. *)
let writes = Atomic.make 0
let write_count () = Atomic.get writes

type sink = { oc : out_channel; mutex : Mutex.t; path : string }

let current : sink option Atomic.t = Atomic.make None
let trace_path () = Option.map (fun s -> s.path) (Atomic.get current)

let emit_json j =
  match Atomic.get current with
  | None -> ()
  | Some s ->
    let line = Json.to_string j in
    Mutex.lock s.mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock s.mutex)
      (fun () ->
        output_string s.oc line;
        output_char s.oc '\n');
    ignore (Atomic.fetch_and_add writes 1)

let meta () =
  Json.Obj
    [
      ("type", Json.String "meta");
      ("schema", Json.String schema);
      ("clock_unit", Json.String "s");
      ("pid", Json.Int (Unix.getpid ()));
      ("start_epoch", Json.Float Clock.start_epoch);
    ]

let open_trace path =
  (match Atomic.get current with
  | Some s ->
    Atomic.set current None;
    close_out_noerr s.oc
  | None -> ());
  let oc = open_out path in
  Atomic.set current (Some { oc; mutex = Mutex.create (); path });
  emit_json (meta ())

let close_trace () =
  match Atomic.get current with
  | None -> ()
  | Some s ->
    Atomic.set current None;
    (try flush s.oc with Sys_error _ -> ());
    close_out_noerr s.oc

let flush_trace () =
  match Atomic.get current with
  | None -> ()
  | Some s ->
    Mutex.lock s.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock s.mutex) (fun () -> flush s.oc)

let attrs_json attrs =
  Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) attrs)

let span ~id ~parent ~domain ~depth ~name ~start ~dur ~attrs =
  emit_json
    (Json.Obj
       ([
          ("type", Json.String "span");
          ("id", Json.Int id);
          ("parent", match parent with Some p -> Json.Int p | None -> Json.Null);
          ("domain", Json.Int domain);
          ("depth", Json.Int depth);
          ("name", Json.String name);
          ("start", Json.Float start);
          ("dur", Json.Float dur);
        ]
       @ match attrs with [] -> [] | attrs -> [ ("attrs", attrs_json attrs) ]))

let metric ?span ~kind ~name value =
  emit_json
    (Json.Obj
       ([
          ("type", Json.String "metric");
          ("name", Json.String name);
          ("kind", Json.String kind);
          ("value", value);
          ("t", Json.Float (Clock.elapsed ()));
        ]
       @ match span with Some id -> [ ("span", Json.Int id) ] | None -> []))

let conv ?span (s : History.snapshot) =
  emit_json
    (Json.Obj
       ((("type", Json.String "conv") :: History.snapshot_fields s)
       @ [ ("t", Json.Float (Clock.elapsed ())) ]
       @ match span with Some id -> [ ("span", Json.Int id) ] | None -> []))

let snapshot s =
  List.iter
    (fun (name, sample) ->
      emit_json
        (Json.Obj
           [
             ("type", Json.String "summary");
             ("name", Json.String name);
             ("data", Metrics.sample_to_json sample);
           ]))
    s
