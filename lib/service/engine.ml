module P = Protocol
module Sparse = Ttsv_numerics.Sparse
module Vec = Ttsv_numerics.Vec
module Iterative = Ttsv_numerics.Iterative
module Precond = Ttsv_numerics.Precond
module Pool = Ttsv_parallel.Pool
module Budget = Ttsv_parallel.Budget
module Units = Ttsv_physics.Units
module Params = Ttsv_core.Params
module Validate = Ttsv_robust.Validate
module Robust = Ttsv_robust.Robust
module Diagnostics = Ttsv_robust.Diagnostics
module Problem = Ttsv_fem.Problem
module Solver = Ttsv_fem.Solver
module Grid = Ttsv_fem.Grid
module Chip = Ttsv_chip.Chip_model
module Pm = Ttsv_chip.Power_map
module Alloc = Ttsv_chip.Allocation
module Obs_span = Ttsv_obs.Span
module Metrics = Ttsv_obs.Metrics

let m_requests = Metrics.Counter.make "service.requests"
let m_errors = Metrics.Counter.make "service.errors"
let m_batches = Metrics.Counter.make "service.batches"
let m_warm_starts = Metrics.Counter.make "service.warm_starts"
let m_iterations = Metrics.Counter.make "service.iterations"
let m_request_wall = Metrics.Histogram.make "service.request_seconds"

type operator = { matrix : Sparse.t; shape : int array; source : Vec.t }

type t = {
  pool : Pool.t option;
  operators : operator Cache.t;
  preconds : (string * Precond.t) option Cache.t;
      (* [None] is a cached "no preconditioner builds for this operator":
         the construction failure is as expensive to rediscover as the
         setup itself *)
  solutions : Vec.t Cache.t;
}

let create ?pool ?(operators = 32) ?(preconds = 32) ?(solutions = 64) () =
  {
    pool;
    operators = Cache.create ~name:"operator" ~capacity:operators ();
    preconds = Cache.create ~name:"precond" ~capacity:preconds ();
    solutions = Cache.create ~name:"solution" ~capacity:solutions ();
  }

let cache_stats t =
  List.map
    (fun stats -> stats ())
    [
      (fun () -> (Cache.name t.operators, (Cache.hits t.operators, Cache.misses t.operators, Cache.evictions t.operators)));
      (fun () -> (Cache.name t.preconds, (Cache.hits t.preconds, Cache.misses t.preconds, Cache.evictions t.preconds)));
      (fun () -> (Cache.name t.solutions, (Cache.hits t.solutions, Cache.misses t.solutions, Cache.evictions t.solutions)));
    ]

let hit_rate t =
  let hits, misses =
    List.fold_left
      (fun (h, m) (_, (hits, misses, _)) -> (h + hits, m + misses))
      (0, 0) (cache_stats t)
  in
  if hits + misses = 0 then 0. else float_of_int hits /. float_of_int (hits + misses)

(* ------------------------------------------------------------- validation *)

let stack_of_geometry (g : P.geometry) =
  Params.block_checked ~r:(Units.um g.radius_um) ~t_liner:(Units.um g.liner_um)
    ~t_ild:(Units.um g.ild_um) ~t_bond:(Units.um g.bond_um) ~t_si23:(Units.um g.tsi_um)
    ~t_si1:(Units.um g.tsi1_um) ~l_ext:(Units.um g.lext_um) ()
  |> Result.map_error (fun violations ->
         P.error P.Invalid_geometry (Validate.to_string violations))

let bad fmt = Printf.ksprintf (fun msg -> Error (P.error P.Bad_request msg)) fmt

(* semantic bounds the structural decoder cannot know; resolution and
   grid caps bound the memory one request may pin *)
let check_solve (s : P.solve) =
  if s.resolution < 1 || s.resolution > 8 then
    bad "resolution %d out of range [1, 8]" s.resolution
  else if not (Float.is_finite s.tol && s.tol > 0. && s.tol < 1.) then
    bad "tol %g must be in (0, 1)" s.tol
  else
    match s.deadline_s with
    | Some d when not (Float.is_finite d && d > 0.) -> bad "deadline_s %g must be positive" d
    | _ -> Ok ()

let check_sweep (sw : P.sweep) =
  if sw.points < 2 || sw.points > 1000 then bad "points %d out of range [2, 1000]" sw.points
  else if not (Float.is_finite sw.from_um && Float.is_finite sw.to_um) then
    bad "sweep range must be finite"
  else check_solve sw.base

let check_chip (c : P.chip_alloc) =
  if c.grid < 2 || c.grid > 128 then bad "grid %d out of range [2, 128]" c.grid
  else if not (Float.is_finite c.size_mm && c.size_mm > 0.) then
    bad "size_mm %g must be positive" c.size_mm
  else if not (Float.is_finite c.power_w && c.power_w >= 0.) then
    bad "power_w %g must be nonnegative" c.power_w
  else if not (Float.is_finite c.hotspot_w && c.hotspot_w >= 0.) then
    bad "hotspot_w %g must be nonnegative" c.hotspot_w
  else if c.candidates < 1 || c.candidates > 64 then
    bad "candidates %d out of range [1, 64]" c.candidates
  else
    match c.budget_k with
    | Some b when not (Float.is_finite b && b > 0.) -> bad "budget_k %g must be positive" b
    | _ -> Ok ()

(* ------------------------------------------------------------ solve path *)

let error_of_failure (f : Robust.failure) =
  let diagnostics = Diagnostics.to_json f.Robust.diagnostics in
  match f.Robust.reason with
  | Robust.Invalid_input problems ->
    P.error ~diagnostics P.Bad_request (String.concat "; " problems)
  | Robust.Exhausted -> P.error ~diagnostics P.Solver_failure "every solver rung failed"
  | Robust.Deadline_exceeded ->
    P.error ~diagnostics P.Deadline_exceeded "deadline expired before convergence"

let ( let* ) = Result.bind

(* The cached-solve core shared by solve and sweep requests: operator
   from the operator cache, preconditioner setup from the precond cache,
   initial guess from the solution cache (exact key hit first, else the
   freshest dimension-compatible field).  The fast path runs one
   preconditioned CG; anything unconverged falls back to the full Robust
   ladder, warm-started from the fast attempt's iterate. *)
let solve_field t ?budget (s : P.solve) =
  let* () = check_solve s in
  let* stack = stack_of_geometry s.geometry in
  let key = P.solve_key s in
  let op, operator_hit =
    match Cache.find t.operators key with
    | Some op -> (op, true)
    | None ->
      let op =
        Obs_span.with_ ~name:"service.assemble" (fun () ->
            let p = Problem.of_stack ~resolution:s.resolution stack in
            let matrix = Solver.assemble ?pool:t.pool p in
            let g = p.Problem.grid in
            { matrix; shape = [| Grid.nr g; Grid.nz g |]; source = p.Problem.source })
      in
      Cache.add t.operators key op;
      (op, false)
  in
  let precond, precond_hit =
    match Cache.find t.preconds key with
    | Some pc -> (pc, true)
    | None ->
      let pc =
        Obs_span.with_ ~name:"service.precond_setup" (fun () ->
            match Precond.mg ?pool:t.pool ~shape:op.shape op.matrix with
            | Ok m -> Some ("cg-mg", m)
            | Error _ -> (
              match Precond.ic0 op.matrix with
              | Ok m -> Some ("cg-ic0", m)
              | Error _ -> None))
      in
      Cache.add t.preconds key pc;
      (pc, false)
  in
  let n = Array.length op.source in
  let x0, warm =
    match Cache.find t.solutions key with
    | Some x -> (Some x, P.Warm_exact)
    | None -> (
      match Cache.find_newest t.solutions (fun x -> Array.length x = n) with
      | Some x -> (Some x, P.Warm_neighbour)
      | None -> (None, P.Cold))
  in
  (match warm with P.Cold -> () | _ -> Metrics.Counter.incr m_warm_starts);
  let budget =
    match budget with
    | Some _ as b -> b
    | None -> Option.map (fun d -> Budget.make ~deadline_s:d ()) s.deadline_s
  in
  let max_iter = Stdlib.max 2000 (40 * n) in
  let outcome =
    Obs_span.with_ ~name:"service.solve" @@ fun () ->
    let fast =
      Option.map
        (fun (_, m) ->
          Iterative.cg ~tol:s.tol ~max_iter ?x0 ?pool:t.pool ~precond:m ?budget op.matrix
            op.source)
        precond
    in
    match (fast, precond) with
    | Some r, Some (rung, _) when r.Iterative.converged ->
      Ok (r.Iterative.solution, r.Iterative.iterations, r.Iterative.residual, rung)
    | _ -> (
      (* the fast path missed (or there was no preconditioner): run the
         full escalation ladder, seeded with the best iterate so far *)
      let fast_iters = match fast with Some r -> r.Iterative.iterations | None -> 0 in
      let x0 = match fast with Some r -> Some r.Iterative.solution | None -> x0 in
      match
        Robust.solve ~tol:s.tol ~max_iter ?x0 ?pool:t.pool ~shape:op.shape ?budget op.matrix
          op.source
      with
      | Ok (x, d) ->
        let rung =
          match d.Diagnostics.solved_by with
          | Some r -> Diagnostics.rung_name r
          | None -> "unknown"
        in
        Ok (x, fast_iters + d.Diagnostics.iterations, d.Diagnostics.residual, rung)
      | Error f -> Error (error_of_failure f))
  in
  match outcome with
  | Error e -> Error e
  | Ok (x, iterations, residual, rung) ->
    Cache.add t.solutions key x;
    Metrics.Counter.add m_iterations iterations;
    let max_rise_k = Array.fold_left Float.max 0. x in
    Ok
      {
        P.max_rise_k;
        iterations;
        residual;
        rung;
        cache = { P.operator_hit; precond_hit; warm };
        wall_s = 0.;  (* stamped by the caller *)
      }

let handle_solve t s =
  let t0 = Unix.gettimeofday () in
  let* solved = solve_field t s in
  Ok (P.Solved { solved with P.wall_s = Unix.gettimeofday () -. t0 })

(* ----------------------------------------------------------------- sweep *)

let apply_param (g : P.geometry) param x =
  match param with
  | P.Radius -> { g with P.radius_um = x }
  | P.Liner -> { g with P.liner_um = x }
  | P.Tsi -> { g with P.tsi_um = x }

let handle_sweep t (sw : P.sweep) =
  let* () = check_sweep sw in
  let t0 = Unix.gettimeofday () in
  (* one budget over the whole sweep: a deadline bounds the request, not
     each point *)
  let budget = Option.map (fun d -> Budget.make ~deadline_s:d ()) sw.base.P.deadline_s in
  let xs = Vec.linspace sw.from_um sw.to_um sw.points in
  (* points run in sweep order so each one can warm-start from its
     neighbour's just-cached field *)
  let rec run acc warm_starts total_iters = function
    | [] ->
      Ok
        (P.Swept
           {
             P.sweep_points = List.rev acc;
             sweep_iterations = total_iters;
             warm_starts;
             sweep_wall_s = Unix.gettimeofday () -. t0;
           })
    | x :: rest -> (
      let s = { sw.base with P.geometry = apply_param sw.base.P.geometry sw.param x } in
      match solve_field t ?budget s with
      | Error e ->
        Error { e with P.message = Printf.sprintf "at %g um: %s" x e.P.message }
      | Ok solved ->
        let point =
          {
            P.x_um = x;
            point_rise_k = solved.P.max_rise_k;
            point_iterations = solved.P.iterations;
          }
        in
        let warm_starts =
          match solved.P.cache.P.warm with P.Cold -> warm_starts | _ -> warm_starts + 1
        in
        run (point :: acc) warm_starts (total_iters + solved.P.iterations) rest)
  in
  run [] 0 0 (Array.to_list xs)

(* ------------------------------------------------------------ chip_alloc *)

let handle_chip t (c : P.chip_alloc) =
  let* () = check_chip c in
  let* stack = stack_of_geometry c.chip_geometry in
  let t0 = Unix.gettimeofday () in
  let planes = Array.to_list stack.Ttsv_geometry.Stack.planes in
  let chip =
    Chip.make ~width:(Units.mm c.size_mm) ~height:(Units.mm c.size_mm) ~nx:c.grid ~ny:c.grid
      ~planes ~tsv:stack.Ttsv_geometry.Stack.tsv ()
  in
  let base = Pm.uniform ~nx:c.grid ~ny:c.grid ~total:c.power_w in
  let h = (2 * c.grid) / 3 in
  let top = Pm.add_hotspot base ~x0:h ~y0:h ~x1:(h + 1) ~y1:(h + 1) ~watts:c.hotspot_w in
  let nplanes = List.length planes in
  let maps = List.mapi (fun i _ -> if i = nplanes - 1 then top else base) planes in
  let bare = Chip.solve chip (Chip.uniform_density chip 0.) maps in
  let* final, feasible, metal_area_mm2, iterations =
    match c.budget_k with
    | None -> Ok (bare, None, 0., 0)
    | Some budget ->
      let out =
        Alloc.allocate ?pool:t.pool chip maps
          {
            (Alloc.default_options ~budget) with
            Alloc.step = 0.01;
            max_density = 0.15;
            candidates = c.candidates;
          }
      in
      Ok
        ( out.Alloc.final,
          Some out.Alloc.feasible,
          out.Alloc.metal_area *. 1e6,
          out.Alloc.iterations )
  in
  Ok
    (P.Allocated
       {
         P.bare_rise_k = bare.Chip.max_rise;
         final_rise_k = final.Chip.max_rise;
         feasible;
         metal_area_mm2;
         alloc_iterations = iterations;
         alloc_wall_s = Unix.gettimeofday () -. t0;
       })

(* --------------------------------------------------------------- requests *)

let kind_name = function
  | P.Solve _ -> "solve"
  | P.Sweep _ -> "sweep"
  | P.Chip_alloc _ -> "chip_alloc"

let handle t (req : P.request) =
  let t0 = Unix.gettimeofday () in
  Metrics.Counter.incr m_requests;
  let result =
    Obs_span.with_ ~name:"service.request" ~attrs:[ ("kind", kind_name req.P.kind) ]
    @@ fun () ->
    (* the no-crash contract: geometry constructors and the chip model
       raise Invalid_argument on inputs the bounds checks cannot
       anticipate; anything else escaping a solver is an internal error
       — both become typed responses *)
    match
      match req.P.kind with
      | P.Solve s -> handle_solve t s
      | P.Sweep sw -> handle_sweep t sw
      | P.Chip_alloc c -> handle_chip t c
    with
    | outcome -> outcome
    | exception Invalid_argument msg -> Error (P.error P.Bad_request msg)
    | exception exn -> Error (P.error P.Internal (Printexc.to_string exn))
  in
  (match result with Error _ -> Metrics.Counter.incr m_errors | Ok _ -> ());
  Metrics.Histogram.observe m_request_wall (Unix.gettimeofday () -. t0);
  { P.request_id = Some req.P.id; result }

let handle_batch t reqs =
  Metrics.Counter.incr m_batches;
  Obs_span.with_ ~name:"service.batch"
    ~attrs:[ ("size", string_of_int (Array.length reqs)) ]
  @@ fun () ->
  match t.pool with
  | Some pool when Array.length reqs > 1 ->
    (* chunk 1: requests are coarse, unequal units of work — let each
       worker pull the next one as it frees up *)
    Pool.map_array ~chunk:1 pool (handle t) reqs
  | _ -> Array.map (handle t) reqs

(* ------------------------------------------------------------------ serve *)

let serve ?(batch = 64) t ic oc =
  if batch < 1 then invalid_arg "Engine.serve: batch must be >= 1";
  let answered = ref 0 in
  let rec read_group acc k =
    if k = 0 then List.rev acc
    else
      match In_channel.input_line ic with
      | None -> List.rev acc
      | Some line when String.trim line = "" -> read_group acc k
      | Some line -> read_group (line :: acc) (k - 1)
  in
  let rec loop () =
    match read_group [] batch with
    | [] -> ()
    | lines ->
      let items = List.map P.parse_request lines in
      let requests =
        Array.of_list (List.filter_map (function Ok r -> Some r | Error _ -> None) items)
      in
      let responses = if Array.length requests = 0 then [||] else handle_batch t requests in
      (* stitch handled responses and per-line parse errors back into
         input order *)
      let next = ref 0 in
      List.iter
        (fun item ->
          let response =
            match item with
            | Ok _ ->
              let r = responses.(!next) in
              incr next;
              r
            | Error (request_id, e) ->
              Metrics.Counter.incr m_requests;
              Metrics.Counter.incr m_errors;
              { P.request_id; result = Error e }
          in
          output_string oc (P.response_to_string response);
          output_char oc '\n';
          incr answered)
        items;
      flush oc;
      loop ()
  in
  loop ();
  !answered
