module Metrics = Ttsv_obs.Metrics

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;  (** toward MRU *)
  mutable next : 'a node option;  (** toward LRU *)
}

type 'a t = {
  cache_name : string;
  cap : int;
  tbl : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;  (* most recently used *)
  mutable tail : 'a node option;  (* least recently used *)
  mutable n_hits : int;
  mutable n_misses : int;
  mutable n_evictions : int;
  lock : Mutex.t;
  m_hits : Metrics.Counter.t;
  m_misses : Metrics.Counter.t;
  m_evictions : Metrics.Counter.t;
}

let create ~name ~capacity () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  let metric suffix = Metrics.Counter.make ("service.cache." ^ name ^ "." ^ suffix) in
  {
    cache_name = name;
    cap = capacity;
    tbl = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    n_hits = 0;
    n_misses = 0;
    n_evictions = 0;
    lock = Mutex.create ();
    m_hits = metric "hits";
    m_misses = metric "misses";
    m_evictions = metric "evictions";
  }

let name t = t.cache_name
let capacity t = t.cap

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let length t = locked t (fun () -> Hashtbl.length t.tbl)

(* list surgery; callers hold the lock *)

let unlink t node =
  (match node.prev with Some p -> p.next <- node.next | None -> t.head <- node.next);
  (match node.next with Some n -> n.prev <- node.prev | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.prev <- None;
  node.next <- t.head;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let hit t =
  t.n_hits <- t.n_hits + 1;
  Metrics.Counter.incr t.m_hits

let miss t =
  t.n_misses <- t.n_misses + 1;
  Metrics.Counter.incr t.m_misses

let find t key =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.tbl key with
  | Some node ->
    hit t;
    unlink t node;
    push_front t node;
    Some node.value
  | None ->
    miss t;
    None

let find_newest t pred =
  locked t @@ fun () ->
  let rec scan = function
    | None ->
      miss t;
      None
    | Some node -> if pred node.value then Some node.value else scan node.next
  in
  match scan t.head with
  | Some v ->
    hit t;
    Some v
  | None -> None

let add t key value =
  locked t @@ fun () ->
  (match Hashtbl.find_opt t.tbl key with
  | Some node ->
    node.value <- value;
    unlink t node;
    push_front t node
  | None ->
    let node = { key; value; prev = None; next = None } in
    Hashtbl.replace t.tbl key node;
    push_front t node);
  if Hashtbl.length t.tbl > t.cap then
    match t.tail with
    | None -> assert false
    | Some lru ->
      unlink t lru;
      Hashtbl.remove t.tbl lru.key;
      t.n_evictions <- t.n_evictions + 1;
      Metrics.Counter.incr t.m_evictions

let hits t = locked t (fun () -> t.n_hits)
let misses t = locked t (fun () -> t.n_misses)
let evictions t = locked t (fun () -> t.n_evictions)

let hit_rate t =
  locked t @@ fun () ->
  let total = t.n_hits + t.n_misses in
  if total = 0 then 0. else float_of_int t.n_hits /. float_of_int total

let clear t =
  locked t @@ fun () ->
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None
