(** The solver service's wire protocol.

    One JSON object per line ([ttsv.request.v1] in, [ttsv.response.v1]
    out), built on the zero-dependency {!Ttsv_obs.Json} value: floats
    are emitted with 17 significant digits and strings through the
    surrogateescape convention, so [request_to_json] followed by
    {!Ttsv_obs.Json.to_string}, {!Ttsv_obs.Json.parse} and
    [request_of_json] reproduces the original request — and its
    re-encoding — byte for byte, for arbitrary byte sequences in the
    request id.

    Decoding is total: a line that is not valid JSON, not a request
    object, or carries malformed fields comes back as a typed {!error}
    value (with the request id attached whenever one could be read), so
    a malformed line in a batch costs one error response, never the
    process. *)

(** {2 Requests} *)

type geometry = {
  radius_um : float;  (** TSV radius *)
  liner_um : float;  (** liner thickness *)
  ild_um : float;  (** ILD/BEOL thickness *)
  bond_um : float;  (** bonding layer thickness *)
  tsi_um : float;  (** substrate thickness of the upper planes *)
  tsi1_um : float;  (** substrate thickness of the first plane *)
  lext_um : float;  (** TSV extension into the first substrate *)
}
(** The paper's block-geometry knobs, all in µm.  Values are untrusted:
    the engine runs them through {!Ttsv_core.Params.block_checked}
    before meshing anything. *)

val default_geometry : geometry
(** The paper's defaults (r = 5, t_L = 1, t_D = 4, t_b = 1, t_Si = 45,
    t_Si1 = 500, l_ext = 1 µm); every omitted request field falls back
    to it. *)

type solve = {
  geometry : geometry;
  resolution : int;  (** finite-volume mesh resolution factor (default 1) *)
  tol : float;  (** relative residual target (default 1e-10) *)
  deadline_s : float option;  (** per-request wall-clock budget *)
}

type sweep_param = Radius | Liner | Tsi

type sweep = {
  base : solve;  (** geometry/solver settings of every point *)
  param : sweep_param;
  from_um : float;
  to_um : float;
  points : int;
}

type chip_alloc = {
  chip_geometry : geometry;  (** per-cell stack the chip tiles repeat *)
  grid : int;  (** tiles per side *)
  size_mm : float;  (** chip edge *)
  power_w : float;  (** total power per plane *)
  hotspot_w : float;  (** extra watts on the hotspot tile *)
  budget_k : float option;  (** allocate TSVs for this max rise; [None] solves bare *)
  candidates : int;  (** tiles trial-solved per allocation step *)
}

type kind = Solve of solve | Sweep of sweep | Chip_alloc of chip_alloc

type request = { id : string; kind : kind }
(** [id] is an arbitrary byte string echoed on the response. *)

(** {2 Responses} *)

type error_code =
  | Bad_json  (** the line did not parse as JSON *)
  | Bad_request  (** parsed, but not a well-formed request *)
  | Invalid_geometry  (** {!Ttsv_core.Params.block_checked} rejected it *)
  | Deadline_exceeded
  | Solver_failure  (** every ladder rung failed *)
  | Internal  (** an unexpected exception, contained *)

type error = {
  code : error_code;
  message : string;
  diagnostics : Ttsv_obs.Json.t option;
      (** {!Ttsv_robust.Diagnostics.to_json} when a solve failed *)
}

type warm = Cold | Warm_exact | Warm_neighbour

type cache_info = { operator_hit : bool; precond_hit : bool; warm : warm }
(** Which cache levels served this solve — the per-response view of the
    engine's hit counters. *)

type solved = {
  max_rise_k : float;
  iterations : int;
  residual : float;
  rung : string;  (** solver rung that produced the answer *)
  cache : cache_info;
  wall_s : float;
}

type sweep_point = { x_um : float; point_rise_k : float; point_iterations : int }

type swept = {
  sweep_points : sweep_point list;
  sweep_iterations : int;  (** total over all points *)
  warm_starts : int;  (** points that started from a cached solution *)
  sweep_wall_s : float;
}

type allocated = {
  bare_rise_k : float;  (** max rise with no thermal TSVs *)
  final_rise_k : float;  (** max rise after allocation (= bare without a budget) *)
  feasible : bool option;  (** [None] when no budget was requested *)
  metal_area_mm2 : float;
  alloc_iterations : int;
  alloc_wall_s : float;
}

type payload = Solved of solved | Swept of swept | Allocated of allocated

type response = {
  request_id : string option;  (** [None] when the id could not be read *)
  result : (payload, error) result;
}

(** {2 Wire form} *)

val request_schema : string
(** ["ttsv.request.v1"] *)

val response_schema : string
(** ["ttsv.response.v1"] *)

val error_code_name : error_code -> string
val sweep_param_name : sweep_param -> string

val error : ?diagnostics:Ttsv_obs.Json.t -> error_code -> string -> error

val request_to_json : request -> Ttsv_obs.Json.t
(** Canonical encoding: every field explicit, fields in a fixed order —
    the byte-exact round-trip anchor. *)

val request_of_json : Ttsv_obs.Json.t -> (request, string option * error) result
(** Decode one request value.  Omitted optional fields take their
    defaults; a malformed or missing mandatory field is an [Error]
    carrying the id when one was readable. *)

val parse_request : string -> (request, string option * error) result
(** [request_of_json] composed with {!Ttsv_obs.Json.parse}; a line that
    is not JSON maps to [Bad_json] with no id. *)

val response_to_json : response -> Ttsv_obs.Json.t
val response_to_string : response -> string
(** One line, no trailing newline. *)

val solve_key : solve -> string
(** Canonical geometry/params cache key: the seven geometry fields plus
    the resolution, each float printed with 17 significant digits —
    requests that mesh to the same operator share a key, [tol] and
    [deadline_s] (which don't change the operator) are excluded. *)
