(** The batch solve engine behind [ttsv_cli serve].

    One engine owns three {!Cache} levels, all keyed by the canonical
    {!Protocol.solve_key}:

    - {b operators}: assembled CSR conductance matrices with their
      tensor-grid shape and source vector — skips meshing + assembly on
      a repeated geometry;
    - {b preconds}: preconditioner setups (the multigrid hierarchy when
      it builds, IC(0) factors otherwise) — the single biggest
      per-request win, since ~60 % of a multigrid solve's wall time is
      one-time hierarchy setup;
    - {b solutions}: previous temperature fields, used to warm-start
      repeated queries (exact key hit) and nearby ones (freshest
      dimension-compatible field), which converge in a fraction of the
      cold-start iterations.

    Every request is handled inside a [service.request] span and feeds
    [service.*] metrics; every failure path maps to a typed
    {!Protocol.error} response — an engine never lets an exception
    escape a request. *)

type t

val create :
  ?pool:Ttsv_parallel.Pool.t ->
  ?operators:int ->
  ?preconds:int ->
  ?solutions:int ->
  unit ->
  t
(** [create ()] builds an engine with the given per-level cache
    capacities (defaults: 32 operators, 32 preconditioner setups, 64
    solutions).  [pool], when given, shards batches across its domains
    and parallelizes assembly/solve kernels. *)

val handle : t -> Protocol.request -> Protocol.response
(** Handle one request; total (never raises). *)

val handle_batch : t -> Protocol.request array -> Protocol.response array
(** Handle a batch, sharding the (independent) requests across the
    engine's pool one request per task; responses come back in request
    order.  Cache effects depend on completion order under a pool —
    results never do. *)

val serve : ?batch:int -> t -> in_channel -> out_channel -> int
(** [serve t ic oc] reads JSONL requests from [ic] in groups of at most
    [batch] lines (default 64), handles each group with {!handle_batch},
    and writes one JSONL response per input line to [oc] (in input
    order, flushed per group) until end of input.  Malformed lines
    become typed [error] responses in place.  Returns the number of
    lines answered.
    @raise Invalid_argument when [batch < 1]. *)

val cache_stats : t -> (string * (int * int * int)) list
(** Per-level [(name, (hits, misses, evictions))], in (operator,
    precond, solution) order. *)

val hit_rate : t -> float
(** Pooled hit rate over all three levels; 0 before any lookup. *)
