module Json = Ttsv_obs.Json

type geometry = {
  radius_um : float;
  liner_um : float;
  ild_um : float;
  bond_um : float;
  tsi_um : float;
  tsi1_um : float;
  lext_um : float;
}

let default_geometry =
  {
    radius_um = 5.;
    liner_um = 1.;
    ild_um = 4.;
    bond_um = 1.;
    tsi_um = 45.;
    tsi1_um = 500.;
    lext_um = 1.;
  }

type solve = { geometry : geometry; resolution : int; tol : float; deadline_s : float option }
type sweep_param = Radius | Liner | Tsi

type sweep = {
  base : solve;
  param : sweep_param;
  from_um : float;
  to_um : float;
  points : int;
}

type chip_alloc = {
  chip_geometry : geometry;
  grid : int;
  size_mm : float;
  power_w : float;
  hotspot_w : float;
  budget_k : float option;
  candidates : int;
}

type kind = Solve of solve | Sweep of sweep | Chip_alloc of chip_alloc
type request = { id : string; kind : kind }

type error_code =
  | Bad_json
  | Bad_request
  | Invalid_geometry
  | Deadline_exceeded
  | Solver_failure
  | Internal

type error = { code : error_code; message : string; diagnostics : Json.t option }
type warm = Cold | Warm_exact | Warm_neighbour
type cache_info = { operator_hit : bool; precond_hit : bool; warm : warm }

type solved = {
  max_rise_k : float;
  iterations : int;
  residual : float;
  rung : string;
  cache : cache_info;
  wall_s : float;
}

type sweep_point = { x_um : float; point_rise_k : float; point_iterations : int }

type swept = {
  sweep_points : sweep_point list;
  sweep_iterations : int;
  warm_starts : int;
  sweep_wall_s : float;
}

type allocated = {
  bare_rise_k : float;
  final_rise_k : float;
  feasible : bool option;
  metal_area_mm2 : float;
  alloc_iterations : int;
  alloc_wall_s : float;
}

type payload = Solved of solved | Swept of swept | Allocated of allocated
type response = { request_id : string option; result : (payload, error) result }

let request_schema = "ttsv.request.v1"
let response_schema = "ttsv.response.v1"

let error_code_name = function
  | Bad_json -> "bad_json"
  | Bad_request -> "bad_request"
  | Invalid_geometry -> "invalid_geometry"
  | Deadline_exceeded -> "deadline_exceeded"
  | Solver_failure -> "solver_failure"
  | Internal -> "internal"

let sweep_param_name = function Radius -> "radius" | Liner -> "liner" | Tsi -> "tsi"
let error ?diagnostics code message = { code; message; diagnostics }

(* ---------------------------------------------------------------- encoding *)

let geometry_to_json g =
  Json.Obj
    [
      ("radius_um", Json.Float g.radius_um);
      ("liner_um", Json.Float g.liner_um);
      ("ild_um", Json.Float g.ild_um);
      ("bond_um", Json.Float g.bond_um);
      ("tsi_um", Json.Float g.tsi_um);
      ("tsi1_um", Json.Float g.tsi1_um);
      ("lext_um", Json.Float g.lext_um);
    ]

let opt_float = function None -> Json.Null | Some x -> Json.Float x

let solve_fields s =
  [
    ("geometry", geometry_to_json s.geometry);
    ("resolution", Json.Int s.resolution);
    ("tol", Json.Float s.tol);
    ("deadline_s", opt_float s.deadline_s);
  ]

let request_to_json r =
  let head kind = [ ("schema", Json.String request_schema); ("id", Json.String r.id);
                    ("kind", Json.String kind) ]
  in
  match r.kind with
  | Solve s -> Json.Obj (head "solve" @ solve_fields s)
  | Sweep sw ->
    Json.Obj
      (head "sweep" @ solve_fields sw.base
      @ [
          ("param", Json.String (sweep_param_name sw.param));
          ("from_um", Json.Float sw.from_um);
          ("to_um", Json.Float sw.to_um);
          ("points", Json.Int sw.points);
        ])
  | Chip_alloc c ->
    Json.Obj
      (head "chip_alloc"
      @ [
          ("geometry", geometry_to_json c.chip_geometry);
          ("grid", Json.Int c.grid);
          ("size_mm", Json.Float c.size_mm);
          ("power_w", Json.Float c.power_w);
          ("hotspot_w", Json.Float c.hotspot_w);
          ("budget_k", opt_float c.budget_k);
          ("candidates", Json.Int c.candidates);
        ])

(* ---------------------------------------------------------------- decoding *)

(* Field accessors are total: [Ok default] when the field is absent,
   [Error what] when it is present with the wrong type — a typo'd value
   must not be silently replaced by a default. *)

let field_float j name default =
  match Json.member name j with
  | None | Some Json.Null -> Ok default
  | Some v -> (
    match Json.to_float_opt v with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "field %S must be a number" name))

let field_int j name default =
  match Json.member name j with
  | None | Some Json.Null -> Ok default
  | Some v -> (
    match Json.to_int_opt v with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "field %S must be an integer" name))

let field_opt_float j name =
  match Json.member name j with
  | None | Some Json.Null -> Ok None
  | Some v -> (
    match Json.to_float_opt v with
    | Some x -> Ok (Some x)
    | None -> Error (Printf.sprintf "field %S must be a number or null" name))

let ( let* ) = Result.bind

let geometry_of_json j =
  match Json.member "geometry" j with
  | None | Some Json.Null -> Ok default_geometry
  | Some (Json.Obj _ as g) ->
    let d = default_geometry in
    let* radius_um = field_float g "radius_um" d.radius_um in
    let* liner_um = field_float g "liner_um" d.liner_um in
    let* ild_um = field_float g "ild_um" d.ild_um in
    let* bond_um = field_float g "bond_um" d.bond_um in
    let* tsi_um = field_float g "tsi_um" d.tsi_um in
    let* tsi1_um = field_float g "tsi1_um" d.tsi1_um in
    let* lext_um = field_float g "lext_um" d.lext_um in
    Ok { radius_um; liner_um; ild_um; bond_um; tsi_um; tsi1_um; lext_um }
  | Some _ -> Error "field \"geometry\" must be an object"

let solve_of_json j =
  let* geometry = geometry_of_json j in
  let* resolution = field_int j "resolution" 1 in
  let* tol = field_float j "tol" 1e-10 in
  let* deadline_s = field_opt_float j "deadline_s" in
  Ok { geometry; resolution; tol; deadline_s }

let sweep_param_of_string = function
  | "radius" -> Ok Radius
  | "liner" -> Ok Liner
  | "tsi" -> Ok Tsi
  | other -> Error (Printf.sprintf "unknown sweep param %S (radius, liner or tsi)" other)

let kind_of_json j = function
  | "solve" ->
    let* s = solve_of_json j in
    Ok (Solve s)
  | "sweep" ->
    let* base = solve_of_json j in
    let* param =
      match Json.member "param" j with
      | None -> Ok Radius
      | Some v -> (
        match Json.to_string_opt v with
        | Some s -> sweep_param_of_string s
        | None -> Error "field \"param\" must be a string")
    in
    let* from_um = field_float j "from_um" 1. in
    let* to_um = field_float j "to_um" 20. in
    let* points = field_int j "points" 10 in
    Ok (Sweep { base; param; from_um; to_um; points })
  | "chip_alloc" ->
    let* chip_geometry = geometry_of_json j in
    let* grid = field_int j "grid" 10 in
    let* size_mm = field_float j "size_mm" 4. in
    let* power_w = field_float j "power_w" 10. in
    let* hotspot_w = field_float j "hotspot_w" 5. in
    let* budget_k = field_opt_float j "budget_k" in
    let* candidates = field_int j "candidates" 1 in
    Ok (Chip_alloc { chip_geometry; grid; size_mm; power_w; hotspot_w; budget_k; candidates })
  | other -> Error (Printf.sprintf "unknown kind %S (solve, sweep or chip_alloc)" other)

let request_of_json j =
  (* the id is recovered before anything else so even a rejected request
     gets its error response routed back to the right caller *)
  let id = Option.bind (Json.member "id" j) Json.to_string_opt in
  let fail msg = Error (id, error Bad_request msg) in
  match j with
  | Json.Obj _ -> (
    match Option.map Json.to_string_opt (Json.member "schema" j) with
    | None -> fail "missing \"schema\" field"
    | Some None -> fail "field \"schema\" must be a string"
    | Some (Some s) when s <> request_schema ->
      fail (Printf.sprintf "unsupported schema %S (expected %S)" s request_schema)
    | Some (Some _) -> (
      match id with
      | None -> fail "missing or non-string \"id\" field"
      | Some id -> (
        match Option.map Json.to_string_opt (Json.member "kind" j) with
        | None -> fail "missing \"kind\" field"
        | Some None -> fail "field \"kind\" must be a string"
        | Some (Some kind) -> (
          match kind_of_json j kind with
          | Ok kind -> Ok { id; kind }
          | Error msg -> Error (Some id, error Bad_request msg)))))
  | _ -> fail "request must be a JSON object"

let parse_request line =
  match Json.parse line with
  | Error msg -> Error (None, error Bad_json ("not valid JSON: " ^ msg))
  | Ok j -> request_of_json j

(* --------------------------------------------------------------- responses *)

let warm_name = function Cold -> "cold" | Warm_exact -> "exact" | Warm_neighbour -> "neighbour"

let cache_to_json c =
  Json.Obj
    [
      ("operator", Json.Bool c.operator_hit);
      ("precond", Json.Bool c.precond_hit);
      ("warm", Json.String (warm_name c.warm));
    ]

let payload_fields = function
  | Solved s ->
    [
      ("kind", Json.String "solve");
      ("max_rise_k", Json.Float s.max_rise_k);
      ("iterations", Json.Int s.iterations);
      ("residual", Json.Float s.residual);
      ("rung", Json.String s.rung);
      ("cache", cache_to_json s.cache);
      ("wall_s", Json.Float s.wall_s);
    ]
  | Swept s ->
    [
      ("kind", Json.String "sweep");
      ( "points",
        Json.List
          (List.map
             (fun p ->
               Json.Obj
                 [
                   ("x_um", Json.Float p.x_um);
                   ("max_rise_k", Json.Float p.point_rise_k);
                   ("iterations", Json.Int p.point_iterations);
                 ])
             s.sweep_points) );
      ("iterations", Json.Int s.sweep_iterations);
      ("warm_starts", Json.Int s.warm_starts);
      ("wall_s", Json.Float s.sweep_wall_s);
    ]
  | Allocated a ->
    [
      ("kind", Json.String "chip_alloc");
      ("bare_max_rise_k", Json.Float a.bare_rise_k);
      ("max_rise_k", Json.Float a.final_rise_k);
      ("feasible", match a.feasible with None -> Json.Null | Some b -> Json.Bool b);
      ("metal_area_mm2", Json.Float a.metal_area_mm2);
      ("iterations", Json.Int a.alloc_iterations);
      ("wall_s", Json.Float a.alloc_wall_s);
    ]

let response_to_json r =
  let id = match r.request_id with None -> Json.Null | Some id -> Json.String id in
  let head status = [ ("schema", Json.String response_schema); ("id", id);
                      ("status", Json.String status) ]
  in
  match r.result with
  | Ok payload -> Json.Obj (head "ok" @ payload_fields payload)
  | Error e ->
    Json.Obj
      (head "error"
      @ [
          ( "error",
            Json.Obj
              [
                ("code", Json.String (error_code_name e.code));
                ("message", Json.String e.message);
                ( "diagnostics",
                  match e.diagnostics with None -> Json.Null | Some d -> d );
              ] );
        ])

let response_to_string r = Json.to_string (response_to_json r)

(* ------------------------------------------------------------------- keys *)

let solve_key s =
  let g = s.geometry in
  Printf.sprintf "r=%.17g;tl=%.17g;ti=%.17g;tb=%.17g;ts=%.17g;t1=%.17g;lx=%.17g;res=%d"
    g.radius_um g.liner_um g.ild_um g.bond_um g.tsi_um g.tsi1_um g.lext_um s.resolution
