(** Bounded, thread-safe LRU cache — one instance per cache level.

    The engine keeps three of these (assembled operators, preconditioner
    setups, previous solutions), all keyed by the canonical
    {!Protocol.solve_key} string.  Capacity is a hard bound: inserting
    into a full cache evicts the least-recently-used entry.  Every
    operation takes the cache's mutex, so batch workers on different
    domains share one cache safely; a concurrent miss may compute the
    same value twice (last writer wins), which costs duplicate work but
    never a wrong answer.

    Hit/miss/eviction counts are kept in plain fields (always on, read
    by the bench harness) and mirrored into the metrics registry as
    [service.cache.<name>.hits|misses|evictions] counters (subject to
    {!Ttsv_obs.Flags.metrics_on}, like every other metric). *)

type 'a t

val create : name:string -> capacity:int -> unit -> 'a t
(** @raise Invalid_argument when [capacity < 1]. *)

val name : 'a t -> string
val capacity : 'a t -> int
val length : 'a t -> int

val find : 'a t -> string -> 'a option
(** Lookup; a hit marks the entry most-recently-used and bumps the hit
    counter, a miss bumps the miss counter. *)

val find_newest : 'a t -> ('a -> bool) -> 'a option
(** Scan from most- to least-recently-used and return the first entry
    satisfying the predicate — how a solve with no exact key match picks
    the freshest dimension-compatible solution to warm-start from.
    Counts as a hit/miss like {!find}; does not change recency order. *)

val add : 'a t -> string -> 'a -> unit
(** Insert or overwrite, marking the entry most-recently-used; evicts
    the LRU entry when the cache is over capacity. *)

val hits : 'a t -> int
val misses : 'a t -> int
val evictions : 'a t -> int

val hit_rate : 'a t -> float
(** [hits / (hits + misses)]; 0 before any lookup. *)

val clear : 'a t -> unit
(** Drop every entry (counters keep accumulating). *)
