module Material = Ttsv_physics.Material

type violation = { field : string; value : float; requirement : string }

let pp_violation ppf v =
  Format.fprintf ppf "%s = %g: %s" v.field v.value v.requirement

let pp_violations ppf vs =
  Format.fprintf ppf "@[<v>%d invalid input%s:@," (List.length vs)
    (if List.length vs = 1 then "" else "s");
  List.iter (fun v -> Format.fprintf ppf "  - %a@," pp_violation v) vs;
  Format.fprintf ppf "@]"

let to_string vs = Format.asprintf "%a" pp_violations vs

(* Accumulating primitives.  Each check conses its violation (if any) onto
   the accumulator; a non-finite value reports only the finiteness
   violation, not the sign one it would trivially also fail. *)
let finite ~field value acc =
  if Float.is_finite value then acc
  else { field; value; requirement = "must be finite" } :: acc

let positive ~field value acc =
  if not (Float.is_finite value) then { field; value; requirement = "must be finite" } :: acc
  else if value <= 0. then { field; value; requirement = "must be positive" } :: acc
  else acc

let nonnegative ~field value acc =
  if not (Float.is_finite value) then { field; value; requirement = "must be finite" } :: acc
  else if value < 0. then { field; value; requirement = "must be nonnegative" } :: acc
  else acc

let check ~field ~value ~requirement ok acc =
  if ok then acc else { field; value; requirement } :: acc

let tsv ?(prefix = "tsv.") ~radius ~liner_thickness ~extension () =
  []
  |> positive ~field:(prefix ^ "radius") radius
  |> positive ~field:(prefix ^ "liner_thickness") liner_thickness
  |> nonnegative ~field:(prefix ^ "extension") extension
  |> List.rev

let plane ?(prefix = "plane.") ~first ~t_substrate ~t_ild ~t_bond ~t_device
    ~device_power_density ~ild_power_density () =
  []
  |> positive ~field:(prefix ^ "t_substrate") t_substrate
  |> positive ~field:(prefix ^ "t_ild") t_ild
  |> (if first then
        check ~field:(prefix ^ "t_bond") ~value:t_bond
          ~requirement:"the first plane must have no bonding layer below it" (t_bond = 0.)
      else positive ~field:(prefix ^ "t_bond") t_bond)
  |> nonnegative ~field:(prefix ^ "t_device") t_device
  |> check ~field:(prefix ^ "t_device") ~value:t_device
       ~requirement:"device layer must not be thicker than the substrate"
       (not (Float.is_finite t_device && Float.is_finite t_substrate)
       || t_device <= t_substrate)
  |> nonnegative ~field:(prefix ^ "device_power_density") device_power_density
  |> nonnegative ~field:(prefix ^ "ild_power_density") ild_power_density
  |> List.rev

let material ?(prefix = "") (m : Material.t) =
  let p field = prefix ^ m.Material.name ^ "." ^ field in
  []
  |> positive ~field:(p "conductivity") m.Material.conductivity
  |> positive ~field:(p "volumetric_heat_capacity") m.Material.volumetric_heat_capacity
  |> List.rev

let block ~r ~t_liner ~t_ild ~t_bond ~t_si23 ~t_si1 ~l_ext ~t_device ~footprint =
  let per_part =
    tsv ~prefix:"" ~radius:r ~liner_thickness:t_liner ~extension:l_ext ()
    @ plane ~prefix:"plane1." ~first:true ~t_substrate:t_si1 ~t_ild ~t_bond:0. ~t_device
        ~device_power_density:0. ~ild_power_density:0. ()
    @ plane ~prefix:"plane2+." ~first:false ~t_substrate:t_si23 ~t_ild ~t_bond ~t_device
        ~device_power_density:0. ~ild_power_density:0. ()
    @ ([] |> positive ~field:"footprint" footprint |> List.rev)
  in
  (* each cross-check runs as soon as the values it relates are
     individually sane, even when unrelated fields are not *)
  let dirty fields =
    List.exists (fun v -> List.mem v.field fields) per_part
  in
  let cross =
    []
    |> (if dirty [ "extension"; "plane1.t_substrate" ] then Fun.id
        else
          check ~field:"l_ext" ~value:l_ext
            ~requirement:"TSV extension must be smaller than the first substrate thickness"
            (l_ext < t_si1))
    |> (if dirty [ "radius"; "liner_thickness"; "footprint" ] then Fun.id
        else
          check ~field:"radius" ~value:r
            ~requirement:"TTSV including its liner must fit inside the footprint"
            (Float.pi *. ((r +. t_liner) ** 2.) < footprint))
    |> List.rev
  in
  per_part @ cross
