module Vec = Ttsv_numerics.Vec
module Sparse = Ttsv_numerics.Sparse
module Dense = Ttsv_numerics.Dense
module Banded = Ttsv_numerics.Banded
module Iterative = Ttsv_numerics.Iterative
module Precond = Ttsv_numerics.Precond
module Obs_span = Ttsv_obs.Span
module Obs_metrics = Ttsv_obs.Metrics

let m_solves = Obs_metrics.Counter.make "solve.count"
let m_solve_iters = Obs_metrics.Counter.make "solve.iterations"
let m_solve_wall = Obs_metrics.Histogram.make "solve.wall_seconds"

(* one counter per rung, bumped when that rung produces the answer: the
   fleet-level view of which preconditioner actually carries the load *)
let all_rungs =
  [ Diagnostics.Cg_mg; Diagnostics.Cg_ic0; Diagnostics.Cg_ssor; Diagnostics.Cg;
    Diagnostics.Bicgstab; Diagnostics.Direct ]

let m_rung =
  List.map
    (fun r -> (r, Obs_metrics.Counter.make ("precond.rung." ^ Diagnostics.rung_name r)))
    all_rungs

module Budget = Ttsv_parallel.Budget
module Fault = Ttsv_parallel.Fault

type reason = Invalid_input of string list | Exhausted | Deadline_exceeded

type failure = {
  reason : reason;
  diagnostics : Diagnostics.t;
  best : Vec.t option;
  best_residual : float;
}

exception Solve_failed of failure

let pp_reason ppf = function
  | Invalid_input problems ->
    Format.fprintf ppf "invalid input: %s" (String.concat "; " problems)
  | Exhausted -> Format.fprintf ppf "every solver rung failed"
  | Deadline_exceeded ->
    Format.fprintf ppf "budget expired before the ladder converged (best iterate attached)"

let pp_failure ppf f =
  Format.fprintf ppf "@[<v>solve failed: %a@,%a@]" pp_reason f.reason Diagnostics.pp
    f.diagnostics

let default_rungs =
  [ Diagnostics.Cg_ic0; Diagnostics.Cg_ssor; Diagnostics.Cg; Diagnostics.Bicgstab;
    Diagnostics.Direct ]

(* the ladder used when a structured-grid [shape] is known: multigrid
   tops it, everything below is the shape-oblivious default ladder *)
let mg_rungs = Diagnostics.Cg_mg :: default_rungs

(* Direct solves are the last resort: accept them at a looser floor than
   the iterative target, since there is nothing left to escalate to and an
   LU residual of ~1e-12 on an ill-conditioned system is still the best
   available answer. *)
let direct_accept tol = Float.max tol 1e-8

(* Largest order for which an O(n^3)/O(n^2)-memory dense fallback is
   still sensible. *)
let dense_limit = 3000

let preflight a b =
  let problems = ref [] in
  let push p = problems := p :: !problems in
  let n = Sparse.rows a in
  if Sparse.cols a <> n then
    push (Printf.sprintf "matrix is %dx%d, not square" n (Sparse.cols a));
  if Array.length b <> n then
    push (Printf.sprintf "rhs has dimension %d, expected %d" (Array.length b) n);
  if not (Sparse.all_finite a) then push "matrix contains NaN/Inf entries";
  if not (Array.for_all Float.is_finite b) then push "rhs contains NaN/Inf entries";
  List.rev !problems

let true_residual a b x =
  Vec.norm2 (Vec.sub b (Sparse.mat_vec a x)) /. Float.max (Vec.norm2 b) 1e-300

let banded_of_sparse a bw =
  let n = Sparse.rows a in
  let m = Banded.create ~n ~bw in
  for i = 0 to n - 1 do
    Sparse.iter_row a i (fun j v -> Banded.add_to m i j v)
  done;
  m

(* The direct rung: a pivotless banded LU when the band is narrow enough
   to pay off, falling back to dense LU with partial pivoting when the
   band solve needs pivoting or the band is wide.  Returns the candidate
   solution or the reason there is none. *)
let direct_candidate a =
  let n = Sparse.rows a in
  let bw = Sparse.bandwidth a in
  let banded_ok = n * ((2 * bw) + 1) <= 50_000_000 && (2 * bw) + 1 < n in
  if banded_ok then Ok (`Banded (banded_of_sparse a bw))
  else if n > dense_limit then Error (Diagnostics.Skipped "matrix too large for dense fallback")
  else Ok (`Dense (Sparse.to_dense a))

let solve_direct a b =
  match direct_candidate a with
  | Error e -> Error e
  | Ok (`Banded m) -> (
    match Banded.solve m b with
    | x -> Ok x
    | exception Dense.Singular -> (
      (* the band needed pivoting; retry densely when affordable *)
      if Sparse.rows a > dense_limit then Error Diagnostics.Singular
      else
        match Dense.solve (Sparse.to_dense a) b with
        | x -> Ok x
        | exception Dense.Singular -> Error Diagnostics.Singular))
  | Ok (`Dense d) -> (
    match Dense.solve d b with x -> Ok x | exception Dense.Singular -> Error Diagnostics.Singular)

let solve ?(tol = 1e-10) ?max_iter ?x0 ?on_iterate ?stagnation_window ?divergence_factor
    ?pool ?rungs ?shape ?budget a b =
  (* without an explicit [rungs] list the ladder adapts to what is
     known about the system: a structured-grid [shape] promotes the
     multigrid rung to the top, otherwise the shape-oblivious default
     ladder runs unchanged *)
  let rungs =
    match (rungs, shape) with
    | Some r, _ -> r
    | None, Some _ -> mg_rungs
    | None, None -> default_rungs
  in
  let start = Unix.gettimeofday () in
  match preflight a b with
  | _ :: _ as problems ->
    Error
      {
        reason = Invalid_input problems;
        diagnostics = { Diagnostics.empty with wall_time = Unix.gettimeofday () -. start };
        best = None;
        best_residual = Float.nan;
      }
  | [] ->
    let best = ref x0 in
    let best_res = ref Float.infinity in
    let attempts = ref [] in
    let total_iters = ref 0 in
    let trace = ref [||] in
    let conv = ref None in
    let note a = attempts := a :: !attempts in
    let consider x res =
      if Float.is_finite res && res < !best_res then begin
        best := Some x;
        best_res := res
      end
    in
    let finish solved_by residual =
      let wall_time = Unix.gettimeofday () -. start in
      if Ttsv_obs.Flags.enabled () then begin
        Obs_metrics.Counter.incr m_solves;
        (match solved_by with
        | Some rung -> Obs_metrics.Counter.incr (List.assoc rung m_rung)
        | None -> ());
        Obs_metrics.Counter.add m_solve_iters !total_iters;
        Obs_metrics.Histogram.observe m_solve_wall wall_time;
        (* one point event per solve: its value equals this solve's
           Diagnostics.iterations total, which the trace checker and the
           acceptance test cross-validate *)
        if Ttsv_obs.Flags.trace_on () then
          Ttsv_obs.Sink.metric ?span:(Obs_span.current ()) ~kind:"counter"
            ~name:"solve.iterations"
            (Ttsv_obs.Json.Int !total_iters)
      end;
      {
        Diagnostics.attempts = List.rev !attempts;
        solved_by;
        iterations = !total_iters;
        residual;
        trace = !trace;
        conv = !conv;
        wall_time;
      }
    in
    (* Build the preconditioner a rung asks for.  [Error why] means the
       construction itself failed (IC(0) pivot breakdown at every shift,
       zero diagonal for SSOR): the rung is recorded as Skipped and the
       ladder demotes without spending a single iteration. *)
    let precond_for ?budget rung =
      match rung with
      | Diagnostics.Cg_mg -> (
        match shape with
        | None -> Error "mg: no structured-grid shape"
        | Some shape -> (
          match Precond.mg ?pool ?budget ~shape a with
          | Ok m -> Ok (Some m)
          | Error why -> Error ("mg: " ^ why)))
      | Diagnostics.Cg_ic0 -> (
        match Precond.ic0 ?budget a with
        | Ok m -> Ok (Some m)
        | Error why -> Error ("ic0: " ^ why))
      | Diagnostics.Cg_ssor -> (
        match Precond.ssor a with
        | Ok m -> Ok (Some m)
        | Error why -> Error ("ssor: " ^ why))
      | Diagnostics.Cg | Diagnostics.Bicgstab -> Ok None
      | Diagnostics.Direct -> assert false
    in
    let run_iterative ?budget rung =
      let t0 = Unix.gettimeofday () in
      match precond_for ?budget rung with
      | Error why ->
        note
          {
            Diagnostics.rung;
            outcome = Diagnostics.Skipped why;
            iterations = 0;
            residual = Float.nan;
            wall_time = Unix.gettimeofday () -. t0;
            conv = None;
          };
        None
      | Ok precond ->
        let solver =
          match rung with
          | Diagnostics.Bicgstab -> Iterative.bicgstab
          | _ -> Iterative.cg
        in
        let r =
          solver ~tol ?max_iter ?x0:!best ?on_iterate ?stagnation_window ?divergence_factor
            ?pool ?precond ?budget a b
        in
        total_iters := !total_iters + r.Iterative.iterations;
        trace := r.Iterative.trace;
        conv := r.Iterative.conv;
        consider r.Iterative.solution r.Iterative.residual;
        let outcome =
          if r.Iterative.converged then Diagnostics.Success
          else Diagnostics.Iterative_failure r.Iterative.status
        in
        note
          {
            Diagnostics.rung;
            outcome;
            iterations = r.Iterative.iterations;
            residual = r.Iterative.residual;
            wall_time = Unix.gettimeofday () -. t0;
            (* per-attempt history: an escalated-past failure keeps its
               convergence record instead of being overwritten by the
               winning rung's *)
            conv = r.Iterative.conv;
          };
        if r.Iterative.converged then Some r.Iterative.solution else None
    in
    let run_direct () =
      let t0 = Unix.gettimeofday () in
      match solve_direct a b with
      | Error outcome ->
        note
          {
            Diagnostics.rung = Direct;
            outcome;
            iterations = 0;
            residual = Float.nan;
            wall_time = Unix.gettimeofday () -. t0;
            conv = None;
          };
        None
      | Ok x ->
        let res = true_residual a b x in
        consider x res;
        let ok = Float.is_finite res && res <= direct_accept tol in
        trace := [| res |];
        conv := None;
        note
          {
            Diagnostics.rung = Direct;
            outcome = (if ok then Success else Residual_too_large res);
            iterations = 0;
            residual = res;
            wall_time = Unix.gettimeofday () -. t0;
            conv = None;
          };
        if ok then Some x else None
    in
    let rec climb = function
      | [] ->
        Error
          {
            reason = Exhausted;
            diagnostics = finish None !best_res;
            best = !best;
            best_residual = !best_res;
          }
      | rung :: rest -> (
        match Option.bind budget Budget.check with
        | Some _ ->
          (* the global budget is spent: stop the ladder here — before
             the (non-interruptible) direct rung in particular — and
             surface the best iterate reached so far *)
          Error
            {
              reason = Deadline_exceeded;
              diagnostics = finish None !best_res;
              best = !best;
              best_residual = !best_res;
            }
        | None ->
          (* each rung gets an even share of the remaining wall-clock:
             a stagnating IC(0) attempt cannot starve the cheaper rungs
             (or the direct fallback) of their chance *)
          let rung_budget =
            Option.map (fun b -> Budget.split b ~ways:(1 + List.length rest)) budget
          in
          let t0 = Unix.gettimeofday () in
          let solution =
            match
              Obs_span.with_
                ~name:("robust." ^ Diagnostics.rung_name rung)
                (fun () ->
                  match rung with
                  | Diagnostics.Direct -> run_direct ()
                  | _ -> run_iterative ?budget:rung_budget rung)
            with
            | s -> s
            | exception Fault.Injected site ->
              (* an injected fault escaped to the ladder (possible for
                 owner-side probes): contain it as a skipped attempt and
                 demote, upholding the no-uncaught-exception contract *)
              note
                {
                  Diagnostics.rung;
                  outcome = Diagnostics.Skipped ("injected fault at " ^ site);
                  iterations = 0;
                  residual = Float.nan;
                  wall_time = Unix.gettimeofday () -. t0;
                  conv = None;
                };
              None
            | exception Budget.Expired v ->
              note
                {
                  Diagnostics.rung;
                  outcome =
                    Diagnostics.Skipped
                      (Format.asprintf "budget expired (%a)" Budget.pp_verdict v);
                  iterations = 0;
                  residual = Float.nan;
                  wall_time = Unix.gettimeofday () -. t0;
                  conv = None;
                };
              None
          in
          match solution with
          | Some x ->
            let res = (List.hd !attempts).Diagnostics.residual in
            Ok (x, finish (Some rung) res)
          | None -> climb rest)
    in
    climb rungs

let solve_exn ?tol ?max_iter ?x0 ?on_iterate ?stagnation_window ?divergence_factor ?pool
    ?rungs ?shape ?budget a b =
  match
    solve ?tol ?max_iter ?x0 ?on_iterate ?stagnation_window ?divergence_factor ?pool ?rungs
      ?shape ?budget a b
  with
  | Ok r -> r
  | Error f -> raise (Solve_failed f)
