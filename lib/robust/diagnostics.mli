(** Structured solver diagnostics.

    {!Robust.solve} climbs an escalation ladder of solver {e rungs}; the
    diagnostics record every attempt — which rung, why it stopped, how
    many iterations it spent, its final true relative residual, and its
    wall time — together with the residual trace of the last attempt.
    The record is surfaced through {!Ttsv_fem.Solver.solve},
    {!Ttsv_fem.Solver3.solve} and the CLI's [--solver-report] flag. *)

type rung =
  | Cg_mg
      (** geometric-multigrid-preconditioned conjugate gradients
          (strongest; needs a structured-grid shape, so it only joins
          the ladder when one is known) *)
  | Cg_ic0  (** IC(0)-preconditioned conjugate gradients (strongest shape-oblivious rung) *)
  | Cg_ssor  (** SSOR-preconditioned conjugate gradients *)
  | Cg  (** Jacobi-preconditioned conjugate gradients *)
  | Bicgstab  (** Jacobi-preconditioned BiCGStab *)
  | Direct  (** banded or dense LU fallback *)

type outcome =
  | Success
  | Iterative_failure of Ttsv_numerics.Iterative.status
  | Singular  (** the direct factorization hit a zero pivot *)
  | Residual_too_large of float
      (** the direct solve went through but its residual failed the
          acceptance check *)
  | Skipped of string  (** the rung was not attempted (and why) *)

type attempt = {
  rung : rung;
  outcome : outcome;
  iterations : int;  (** iterations this attempt spent (0 for direct) *)
  residual : float;  (** true relative residual after the attempt; NaN if skipped *)
  wall_time : float;  (** seconds *)
  conv : Ttsv_obs.History.snapshot option;
      (** this attempt's own bounded convergence history, kept even when
          the ladder escalates past a failed rung — present only when
          observability was enabled during the solve; [None] for direct
          and skipped rungs *)
}

type t = {
  attempts : attempt list;  (** in execution order *)
  solved_by : rung option;  (** the rung that produced the answer *)
  iterations : int;  (** total across attempts *)
  residual : float;  (** final true relative residual *)
  trace : float array;  (** residual history of the deciding attempt *)
  conv : Ttsv_obs.History.snapshot option;
      (** bounded convergence history of the deciding attempt — present
          only when observability was enabled during the solve (see
          {!Ttsv_numerics.Iterative.result}); [None] for direct solves.
          Failed rungs keep their own history in [attempts]. *)
  wall_time : float;  (** total seconds *)
}

val empty : t

val rung_name : rung -> string
val pp_outcome : Format.formatter -> outcome -> unit
val pp_attempt : Format.formatter -> attempt -> unit

val default_trace_cap : int
(** Residual-history entries shown by {!pp} and {!to_json} before the
    explicit truncation marker kicks in (32). *)

val pp_trace : ?max_trace:int -> Format.formatter -> t -> unit
(** Print the residual trace capped at [max_trace] (default
    {!default_trace_cap}) entries, appending
    ["... (truncated, showing k of n)"] when the history is longer —
    never the silent full dump.  Raises [Invalid_argument] on a negative
    cap. *)

val pp : Format.formatter -> t -> unit
(** Attempts, verdict and (capped, see {!pp_trace}) residual trace. *)

val to_json : ?max_trace:int -> t -> Ttsv_obs.Json.t
(** Machine-readable form of the record.  The ["trace"] array is capped
    like {!pp_trace}, with ["truncated"] set [true] and ["trace_len"]
    carrying the full history length.  ["conv"] carries the
    {!Ttsv_obs.History.snapshot} of the deciding attempt ([null] when
    absent); each attempt additionally carries its own ["conv"], so an
    escalated-past failure keeps its convergence history. *)
