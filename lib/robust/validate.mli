(** Structured, accumulating input validation.

    The geometry constructors ({!Ttsv_geometry.Stack.make} and friends)
    die on the {e first} [Invalid_argument]; this module runs the same
    physical constraints over raw values and returns {e every} violation
    as a typed list, so a caller (the CLI, a batch sweep driver) can
    report all problems in one pass before constructing anything.
    {!Ttsv_core.Params.block_checked} wires it in front of the paper's
    block geometry. *)

type violation = {
  field : string;  (** dotted path of the offending input, e.g. ["tsv.radius"] *)
  value : float;
  requirement : string;  (** human-readable constraint, e.g. ["must be positive"] *)
}

val pp_violation : Format.formatter -> violation -> unit
val pp_violations : Format.formatter -> violation list -> unit
val to_string : violation list -> string

(** {2 Accumulating primitives}

    Each check prepends its violation (if any) to the accumulator and
    returns it, so checks chain with [|>].  A non-finite value reports
    only the finiteness violation. *)

val finite : field:string -> float -> violation list -> violation list
val positive : field:string -> float -> violation list -> violation list
val nonnegative : field:string -> float -> violation list -> violation list

val check :
  field:string ->
  value:float ->
  requirement:string ->
  bool ->
  violation list ->
  violation list
(** [check ~field ~value ~requirement ok acc] records a violation when
    [ok] is false. *)

(** {2 Domain checks} — each returns its violations in field order. *)

val tsv :
  ?prefix:string -> radius:float -> liner_thickness:float -> extension:float -> unit ->
  violation list
(** The {!Ttsv_geometry.Tsv.make} constraints, accumulated. *)

val plane :
  ?prefix:string ->
  first:bool ->
  t_substrate:float ->
  t_ild:float ->
  t_bond:float ->
  t_device:float ->
  device_power_density:float ->
  ild_power_density:float ->
  unit ->
  violation list
(** The {!Ttsv_geometry.Plane.make} constraints plus the stack-level bond
    rule ([first] planes need [t_bond = 0], the rest [t_bond > 0]). *)

val material : ?prefix:string -> Ttsv_physics.Material.t -> violation list
(** Conductivity and volumetric heat capacity must be positive and
    finite. *)

val block :
  r:float ->
  t_liner:float ->
  t_ild:float ->
  t_bond:float ->
  t_si23:float ->
  t_si1:float ->
  l_ext:float ->
  t_device:float ->
  footprint:float ->
  violation list
(** All constraints of the paper's block unit cell
    ({!Ttsv_core.Params.block}): per-part positivity plus the cross
    checks ([l_ext] inside the first substrate, the lined TTSV inside the
    footprint).  Cross checks run only once the parts are individually
    sane, so one bad radius does not cascade. *)
