module Iterative = Ttsv_numerics.Iterative

type rung = Cg | Bicgstab | Direct

type outcome =
  | Success
  | Iterative_failure of Iterative.status
  | Singular
  | Residual_too_large of float
  | Skipped of string

type attempt = {
  rung : rung;
  outcome : outcome;
  iterations : int;
  residual : float;
  wall_time : float;
}

type t = {
  attempts : attempt list;
  solved_by : rung option;
  iterations : int;
  residual : float;
  trace : float array;
  wall_time : float;
}

let empty =
  {
    attempts = [];
    solved_by = None;
    iterations = 0;
    residual = Float.nan;
    trace = [||];
    wall_time = 0.;
  }

let rung_name = function Cg -> "cg" | Bicgstab -> "bicgstab" | Direct -> "direct"

let pp_outcome ppf = function
  | Success -> Format.fprintf ppf "ok"
  | Iterative_failure s -> Format.fprintf ppf "failed: %a" Iterative.pp_status s
  | Singular -> Format.fprintf ppf "failed: singular factorization"
  | Residual_too_large r -> Format.fprintf ppf "failed: residual %.3g too large" r
  | Skipped why -> Format.fprintf ppf "skipped: %s" why

let pp_attempt ppf a =
  Format.fprintf ppf "%-8s %a" (rung_name a.rung) pp_outcome a.outcome;
  match a.outcome with
  | Skipped _ -> ()
  | _ ->
    Format.fprintf ppf " — %d iterations, residual %.3g, %.2f ms" a.iterations a.residual
      (1000. *. a.wall_time)

let pp ppf d =
  Format.fprintf ppf "@[<v>";
  List.iter (fun a -> Format.fprintf ppf "%a@," pp_attempt a) d.attempts;
  (match d.solved_by with
  | Some r -> Format.fprintf ppf "solved by %s" (rung_name r)
  | None -> Format.fprintf ppf "unsolved");
  Format.fprintf ppf ": %d total iterations, residual %.3g, %.2f ms@]" d.iterations d.residual
    (1000. *. d.wall_time)
