module Iterative = Ttsv_numerics.Iterative

type rung = Cg_mg | Cg_ic0 | Cg_ssor | Cg | Bicgstab | Direct

type outcome =
  | Success
  | Iterative_failure of Iterative.status
  | Singular
  | Residual_too_large of float
  | Skipped of string

type attempt = {
  rung : rung;
  outcome : outcome;
  iterations : int;
  residual : float;
  wall_time : float;
  conv : Ttsv_obs.History.snapshot option;
}

type t = {
  attempts : attempt list;
  solved_by : rung option;
  iterations : int;
  residual : float;
  trace : float array;
  conv : Ttsv_obs.History.snapshot option;
  wall_time : float;
}

let empty =
  {
    attempts = [];
    solved_by = None;
    iterations = 0;
    residual = Float.nan;
    trace = [||];
    conv = None;
    wall_time = 0.;
  }

let rung_name = function
  | Cg_mg -> "cg-mg"
  | Cg_ic0 -> "cg-ic0"
  | Cg_ssor -> "cg-ssor"
  | Cg -> "cg"
  | Bicgstab -> "bicgstab"
  | Direct -> "direct"

let pp_outcome ppf = function
  | Success -> Format.fprintf ppf "ok"
  | Iterative_failure s -> Format.fprintf ppf "failed: %a" Iterative.pp_status s
  | Singular -> Format.fprintf ppf "failed: singular factorization"
  | Residual_too_large r -> Format.fprintf ppf "failed: residual %.3g too large" r
  | Skipped why -> Format.fprintf ppf "skipped: %s" why

let pp_attempt ppf a =
  Format.fprintf ppf "%-8s %a" (rung_name a.rung) pp_outcome a.outcome;
  match a.outcome with
  | Skipped _ -> ()
  | _ ->
    Format.fprintf ppf " — %d iterations, residual %.3g, %.2f ms" a.iterations a.residual
      (1000. *. a.wall_time)

let default_trace_cap = 32

(* Cap the residual history to its first [max_trace] entries (the final
   residual is already carried by [residual], so the tail is redundant)
   and say so explicitly — a 40k-iteration CG run must not silently dump
   40k numbers into a report or a JSON payload. *)
let capped_trace max_trace trace =
  let n = Array.length trace in
  if max_trace < 0 then invalid_arg "Diagnostics: max_trace must be >= 0";
  if n <= max_trace then (trace, false) else (Array.sub trace 0 max_trace, true)

let pp_trace ?(max_trace = default_trace_cap) ppf d =
  let shown, truncated = capped_trace max_trace d.trace in
  Format.fprintf ppf "@[<hov 2>trace:";
  Array.iter (fun r -> Format.fprintf ppf "@ %.3g" r) shown;
  if truncated then
    Format.fprintf ppf "@ ... (truncated, showing %d of %d)" (Array.length shown)
      (Array.length d.trace);
  Format.fprintf ppf "@]"

let pp ppf d =
  Format.fprintf ppf "@[<v>";
  List.iter (fun a -> Format.fprintf ppf "%a@," pp_attempt a) d.attempts;
  (match d.solved_by with
  | Some r -> Format.fprintf ppf "solved by %s" (rung_name r)
  | None -> Format.fprintf ppf "unsolved");
  Format.fprintf ppf ": %d total iterations, residual %.3g, %.2f ms" d.iterations d.residual
    (1000. *. d.wall_time);
  if Array.length d.trace > 0 then Format.fprintf ppf "@,%a" (pp_trace ?max_trace:None) d;
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ JSON *)

module Json = Ttsv_obs.Json

let outcome_to_json = function
  | Success -> Json.Obj [ ("status", Json.String "ok") ]
  | Iterative_failure s ->
    Json.Obj
      [
        ("status", Json.String "failed");
        ("why", Json.String (Format.asprintf "%a" Iterative.pp_status s));
      ]
  | Singular ->
    Json.Obj [ ("status", Json.String "failed"); ("why", Json.String "singular factorization") ]
  | Residual_too_large r ->
    Json.Obj
      [
        ("status", Json.String "failed");
        ("why", Json.String "residual too large");
        ("residual", Json.Float r);
      ]
  | Skipped why -> Json.Obj [ ("status", Json.String "skipped"); ("why", Json.String why) ]

let attempt_to_json a =
  Json.Obj
    [
      ("rung", Json.String (rung_name a.rung));
      ("outcome", outcome_to_json a.outcome);
      ("iterations", Json.Int a.iterations);
      ("residual", Json.Float a.residual);
      ("wall_seconds", Json.Float a.wall_time);
      ( "conv",
        match a.conv with
        | Some s -> Ttsv_obs.History.snapshot_to_json s
        | None -> Json.Null );
    ]

let to_json ?(max_trace = default_trace_cap) d =
  let shown, truncated = capped_trace max_trace d.trace in
  Json.Obj
    [
      ("attempts", Json.List (List.map attempt_to_json d.attempts));
      ( "solved_by",
        match d.solved_by with Some r -> Json.String (rung_name r) | None -> Json.Null );
      ("iterations", Json.Int d.iterations);
      ("residual", Json.Float d.residual);
      ("wall_seconds", Json.Float d.wall_time);
      ("trace", Json.List (Array.to_list (Array.map (fun r -> Json.Float r) shown)));
      ("trace_len", Json.Int (Array.length d.trace));
      ("truncated", Json.Bool truncated);
      ( "conv",
        match d.conv with
        | Some s -> Ttsv_obs.History.snapshot_to_json s
        | None -> Json.Null );
    ]
