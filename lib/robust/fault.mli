(** Seeded fault injection, re-exported from {!Ttsv_parallel.Fault}.

    The engine itself lives in [ttsv_parallel] so the pool and the
    numerics kernels can host probe sites without a dependency cycle;
    this alias puts it next to {!Robust} and {!Diagnostics}, where the
    recovery machinery it exercises is defined.  See
    {!Ttsv_parallel.Fault} for the [TTSV_FAULTS] spec grammar and the
    probe-site list, and {!Robust.solve} for the containment contract
    the chaos suite asserts. *)

include module type of Ttsv_parallel.Fault
