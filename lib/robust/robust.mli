(** Resilient linear solving: the escalation ladder.

    [solve] climbs a ladder of solver rungs — geometric-multigrid CG
    first when the structured-grid [shape] is known, then
    IC(0)-preconditioned CG, demoting to SSOR-CG, then Jacobi-CG, then
    BiCGStab (warm-started from the best iterate so far), then a direct
    banded/dense LU fallback — until one of them produces a solution,
    and returns a {!Diagnostics.t} recording which rungs fired (the
    preconditioner rung included), why the failed ones stopped, and the
    residual history.  A preconditioner whose {e construction} fails
    (IC(0) pivot breakdown at every diagonal shift, SSOR on a zero
    diagonal) costs zero iterations: the rung is recorded as [Skipped]
    with the reason and the ladder demotes immediately.  Inputs
    containing NaN/Inf (or with mismatched dimensions) are rejected up
    front without spending a single iteration.

    Every failure path is a typed value: no [failwith], no silently
    non-converged result. *)

type reason =
  | Invalid_input of string list
      (** the system was rejected before any rung ran (each entry is one
          human-readable problem) *)
  | Exhausted  (** every rung was attempted and none produced a solution *)
  | Deadline_exceeded
      (** the {!Ttsv_parallel.Budget} expired (deadline or work cap)
          before any rung converged — a {e partial} result: [best]
          carries the least-bad iterate reached and the diagnostics
          record how far each rung got *)

type failure = {
  reason : reason;
  diagnostics : Diagnostics.t;
  best : Ttsv_numerics.Vec.t option;
      (** the least-bad iterate seen across the rungs, when any rung got
          that far — useful for post-mortems and damped restarts *)
  best_residual : float;  (** its true relative residual (NaN when [best] is [None]) *)
}

exception Solve_failed of failure
(** Raised by {!solve_exn} and by the exception-style FEM entry points. *)

val pp_reason : Format.formatter -> reason -> unit
val pp_failure : Format.formatter -> failure -> unit

val default_rungs : Diagnostics.rung list
(** [[Cg_ic0; Cg_ssor; Cg; Bicgstab; Direct]] — the ladder used when
    neither [rungs] nor [shape] is supplied. *)

val mg_rungs : Diagnostics.rung list
(** [Cg_mg :: default_rungs] — the ladder used when a structured-grid
    [shape] is supplied without an explicit [rungs] list. *)

val solve :
  ?tol:float ->
  ?max_iter:int ->
  ?x0:Ttsv_numerics.Vec.t ->
  ?on_iterate:(int -> float -> unit) ->
  ?stagnation_window:int ->
  ?divergence_factor:float ->
  ?pool:Ttsv_parallel.Pool.t ->
  ?rungs:Diagnostics.rung list ->
  ?shape:int array ->
  ?budget:Ttsv_parallel.Budget.t ->
  Ttsv_numerics.Sparse.t ->
  Ttsv_numerics.Vec.t ->
  (Ttsv_numerics.Vec.t * Diagnostics.t, failure) result
(** [solve a b] solves [a x = b], escalating through [rungs] (default
    {!default_rungs}, or {!mg_rungs} when [shape] is given).  [shape]
    declares that the unknowns live on a structured tensor grid with the
    given extents (first dimension fastest-varying; the FEM solvers pass
    [[|nr; nz|]] / [[|nx; ny; nz|]]), which is what the geometric
    multigrid rung needs to build its hierarchy — a [Cg_mg] rung
    requested without a [shape] is recorded as
    [Skipped "mg: no structured-grid shape"] and the ladder demotes at
    zero cost.  [tol] (default [1e-10]) is the relative residual
    target; [max_iter] is the per-rung iteration budget of the iterative
    rungs (default [10 * n] each).  [on_iterate] observes every iteration
    of every iterative rung; [stagnation_window] and [divergence_factor]
    are passed through to {!Ttsv_numerics.Iterative} for both iterative
    rungs.  The direct rung builds a pivotless banded LU
    when the bandwidth is narrow, retries with dense partial-pivoting LU
    when the band factorization hits a zero pivot, and accepts the result
    at [max tol 1e-8] (it is the last resort).  [pool] is threaded to the
    iterative rungs' matvec and BLAS-1 kernels; their reductions are
    chunk-deterministic, so pooled and sequential climbs take identical
    paths through the ladder.  Matrices of order beyond
    a few thousand with a wide band skip the dense fallback rather than
    allocating O(n²).

    [budget], when given, bounds the whole climb: the global budget is
    checked before every rung (an expired one stops the ladder with
    {!Deadline_exceeded} — before the non-interruptible direct rung in
    particular — carrying the best iterate so far), and each rung runs
    under an even {!Ttsv_parallel.Budget.split} of the remaining
    wall-clock so one stagnating rung cannot starve the rest.  The
    overshoot past the deadline is bounded by one Krylov iteration plus
    one residual recompute.

    Under an armed {!Ttsv_parallel.Fault} engine the contract tightens
    rather than loosens: injected matvec NaNs surface as
    [Non_finite]/demotion, injected preconditioner failures as
    [Skipped] attempts, and a [Fault.Injected] exception reaching the
    ladder is contained as a [Skipped] attempt — [solve] never leaks an
    uncaught exception. *)

val solve_exn :
  ?tol:float ->
  ?max_iter:int ->
  ?x0:Ttsv_numerics.Vec.t ->
  ?on_iterate:(int -> float -> unit) ->
  ?stagnation_window:int ->
  ?divergence_factor:float ->
  ?pool:Ttsv_parallel.Pool.t ->
  ?rungs:Diagnostics.rung list ->
  ?shape:int array ->
  ?budget:Ttsv_parallel.Budget.t ->
  Ttsv_numerics.Sparse.t ->
  Ttsv_numerics.Vec.t ->
  Ttsv_numerics.Vec.t * Diagnostics.t
(** Like {!solve} but raises {!Solve_failed}. *)
