(* The engine lives in Ttsv_parallel (the pool's workers are a probe
   site, and numerics must see it without a dependency cycle); this
   facade re-exports it where the robustness story is documented. *)
include Ttsv_parallel.Fault
