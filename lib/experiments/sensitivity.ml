module Params = Ttsv_core.Params
module Model_a = Ttsv_core.Model_a
module Model_b = Ttsv_core.Model_b
module Stack = Ttsv_geometry.Stack
module Tsv = Ttsv_geometry.Tsv
module Material = Ttsv_physics.Material
module Units = Ttsv_physics.Units

type parameter = Radius | Liner | Ild | Bond | Substrate | Filler_k | Liner_k

let all_parameters = [ Radius; Liner; Ild; Bond; Substrate; Filler_k; Liner_k ]

let name = function
  | Radius -> "TTSV radius r"
  | Liner -> "liner thickness t_L"
  | Ild -> "ILD thickness t_D"
  | Bond -> "bond thickness t_b"
  | Substrate -> "substrate thickness t_Si2,3"
  | Filler_k -> "filler conductivity k_f"
  | Liner_k -> "liner conductivity k_L"

(* the Fig. 5 midpoint geometry with one parameter scaled by [f] *)
let perturbed param f =
  let base ?r ?t_liner ?t_ild ?t_bond ?t_si23 () =
    Params.block
      ~r:(Option.value r ~default:(Units.um 5.))
      ~t_liner:(Option.value t_liner ~default:(Units.um 1.))
      ~t_ild:(Option.value t_ild ~default:(Units.um 7.))
      ~t_bond:(Option.value t_bond ~default:(Units.um 1.))
      ~t_si23:(Option.value t_si23 ~default:(Units.um 45.))
      ()
  in
  match param with
  | Radius -> base ~r:(Units.um (5. *. f)) ()
  | Liner -> base ~t_liner:(Units.um (1. *. f)) ()
  | Ild -> base ~t_ild:(Units.um (7. *. f)) ()
  | Bond -> base ~t_bond:(Units.um (1. *. f)) ()
  | Substrate -> base ~t_si23:(Units.um (45. *. f)) ()
  | Filler_k ->
    let s = base () in
    let tsv = s.Stack.tsv in
    Stack.with_tsv s
      { tsv with Tsv.filler = Material.with_conductivity tsv.Tsv.filler (400. *. f) }
  | Liner_k ->
    let s = base () in
    let tsv = s.Stack.tsv in
    Stack.with_tsv s
      { tsv with Tsv.liner = Material.with_conductivity tsv.Tsv.liner (1.4 *. f) }

let log_sensitivity rise param =
  let h = 0.02 in
  let up = rise (perturbed param (1. +. h)) in
  let down = rise (perturbed param (1. -. h)) in
  let mid = rise (perturbed param 1.) in
  (up -. down) /. (2. *. h *. mid)

module Json = Ttsv_obs.Json

(* the checkpointed value of one sweep point: the (S_A, S_B, S_fv)
   triple — the parameter itself is recovered positionally from
   [all_parameters] on resume, so it never needs encoding *)
let encode_triple (a, b, fv) = Json.List [ Json.Float a; Json.Float b; Json.Float fv ]

let decode_triple = function
  | Json.List [ a; b; fv ] -> (
    match (Json.to_float_opt a, Json.to_float_opt b, Json.to_float_opt fv) with
    | Some a, Some b, Some fv -> Some (a, b, fv)
    | _ -> None)
  | _ -> None

let sensitivities ?resolution ?pool ?checkpoint () =
  let coeffs = Reference.block_coefficients () in
  let rise_a s = Model_a.max_rise (Model_a.solve ~coeffs s) in
  let rise_b s = Model_b.max_rise (Model_b.solve_n s 100) in
  let rise_fv s = Reference.max_rise ?resolution s in
  let checkpoint =
    Option.map
      (fun cp ->
        Sweep.stage cp ~name:"sensitivity" ~encode:encode_triple ~decode:decode_triple)
      checkpoint
  in
  let triples =
    Sweep.map ?pool ?checkpoint
      (fun p ->
        (log_sensitivity rise_a p, log_sensitivity rise_b p, log_sensitivity rise_fv p))
      all_parameters
  in
  List.map2
    (fun p (a, b, fv) -> (p, a, b, fv))
    all_parameters
    (Array.to_list triples)

let run_body ?resolution ?pool ?checkpoint () =
  let rows =
    List.map
      (fun (p, a, b, fv) ->
        ( name p,
          [ Printf.sprintf "%+.3f" a; Printf.sprintf "%+.3f" b; Printf.sprintf "%+.3f" fv ] ))
      (sensitivities ?resolution ?pool ?checkpoint ())
  in
  {
    Report.title = "Sensitivity S = dln(max dT)/dln(p) at the Fig. 5 midpoint";
    columns = [ "Model A"; "Model B(100)"; "FV" ];
    rows;
  }

let run ?resolution ?pool ?checkpoint () =
  Ttsv_obs.Span.with_ ~name:"experiment.sensitivity" (fun () ->
      run_body ?resolution ?pool ?checkpoint ())

let print ?resolution ?pool ?checkpoint ppf () =
  Format.fprintf ppf "@[<v>";
  Report.print_table ppf (run ?resolution ?pool ?checkpoint ());
  Format.fprintf ppf
    "@,negative S: growing the parameter cools the stack; the models must@,\
     reproduce both sign and magnitude to be usable for design exploration.@]@."
