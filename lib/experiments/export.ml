let escape_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let figure_to_buffer (fig : Report.figure) buf =
  let add = Buffer.add_string buf in
  add (escape_cell (Printf.sprintf "%s [%s]" fig.Report.x_label fig.Report.x_unit));
  List.iter
    (fun s ->
      add ",";
      add (escape_cell s.Report.label))
    fig.Report.series;
  add "\n";
  Array.iteri
    (fun i x ->
      add (Printf.sprintf "%.9g" x);
      List.iter (fun s -> add (Printf.sprintf ",%.9g" s.Report.ys.(i))) fig.Report.series;
      add "\n")
    fig.Report.xs

let figure_to_string fig =
  let buf = Buffer.create 1024 in
  figure_to_buffer fig buf;
  Buffer.contents buf

let figure_to_channel fig oc = output_string oc (figure_to_string fig)

let write_figure fig path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> figure_to_channel fig oc)

let table_to_string (t : Report.table) =
  let buf = Buffer.create 1024 in
  let add = Buffer.add_string buf in
  add (escape_cell t.Report.title);
  List.iter
    (fun c ->
      add ",";
      add (escape_cell c))
    t.Report.columns;
  add "\n";
  List.iter
    (fun (label, cells) ->
      add (escape_cell label);
      List.iter
        (fun c ->
          add ",";
          add (escape_cell c))
        cells;
      add "\n")
    t.Report.rows;
  Buffer.contents buf

let table_to_channel t oc = output_string oc (table_to_string t)

let write_table t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> table_to_channel t oc)
