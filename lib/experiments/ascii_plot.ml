let markers = [| '*'; 'o'; 'x'; '+'; '#'; '@' |]

let padded_range values =
  let lo = Array.fold_left Float.min Float.infinity values in
  let hi = Array.fold_left Float.max Float.neg_infinity values in
  let span = hi -. lo in
  if span <= 0. then (lo -. (Float.max 1. (Float.abs lo) *. 0.05), hi +. (Float.max 1. (Float.abs hi) *. 0.05))
  else (lo -. (0.05 *. span), hi +. (0.05 *. span))

let render ?(width = 64) ?(height = 20) (fig : Report.figure) =
  if width < 16 || height < 6 then invalid_arg "Ascii_plot.render: canvas too small";
  let all_ys = Array.concat (List.map (fun s -> s.Report.ys) fig.Report.series) in
  if Array.length all_ys = 0 || Array.length fig.Report.xs = 0 then
    invalid_arg "Ascii_plot.render: empty figure";
  let x_lo, x_hi = padded_range fig.Report.xs in
  let y_lo, y_hi = padded_range all_ys in
  let canvas = Array.make_matrix height width ' ' in
  let col x =
    int_of_float (Float.round ((x -. x_lo) /. (x_hi -. x_lo) *. float_of_int (width - 1)))
  in
  let row y =
    height - 1
    - int_of_float (Float.round ((y -. y_lo) /. (y_hi -. y_lo) *. float_of_int (height - 1)))
  in
  List.iteri
    (fun si s ->
      let m = markers.(si mod Array.length markers) in
      Array.iteri
        (fun i x ->
          let c = col x and r = row s.Report.ys.(i) in
          if r >= 0 && r < height && c >= 0 && c < width then canvas.(r).(c) <- m)
        fig.Report.xs)
    fig.Report.series;
  let buf = Buffer.create ((width + 16) * (height + 4)) in
  Buffer.add_string buf fig.Report.title;
  Buffer.add_char buf '\n';
  Array.iteri
    (fun r line ->
      let label =
        if r = 0 then Printf.sprintf "%8.3g |" y_hi
        else if r = height - 1 then Printf.sprintf "%8.3g |" y_lo
        else "         |"
      in
      Buffer.add_string buf label;
      Buffer.add_string buf (String.init width (fun c -> line.(c)));
      Buffer.add_char buf '\n')
    canvas;
  Buffer.add_string buf ("         +" ^ String.make width '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "%10s%-8.3g%s%8.3g   (%s [%s])" "" x_lo
       (String.make (Stdlib.max 1 (width - 16)) ' ')
       x_hi fig.Report.x_label fig.Report.x_unit);
  Buffer.add_char buf '\n';
  List.iteri
    (fun si s ->
      Buffer.add_string buf
        (Printf.sprintf "%10s%c %s" "" markers.(si mod Array.length markers) s.Report.label);
      Buffer.add_char buf '\n')
    fig.Report.series;
  Buffer.contents buf

let print ppf fig = Format.fprintf ppf "%s@." (render fig)
