(** Ablations of the design choices DESIGN.md calls out.

    1. {b Fitting coefficients} — Model A with fitted, paper, and unity
       coefficients over the Fig. 5 sweep, errors vs. the FV reference.
       Shows what the calibration buys (and that unity-coefficient
       Model A ≈ Model B(1), the structural content of the network).
    2. {b Cluster model} — eq. 22 vs. the first-principles sub-via
       recomputation ({!Ttsv_core.Cluster.solve_naive}) over the Fig. 7
       divisions: quantifies the cost of the paper's
       "vertical resistances unchanged" approximation. *)

val coefficients : ?resolution:int -> unit -> Report.figure
(** The coefficient ablation over the Fig. 5 liner sweep. *)

val cluster : unit -> Report.figure
(** eq. 22 vs. naive recomputation over the Fig. 7 divisions (pure
    model comparison; no FV needed). *)

val print : ?resolution:int -> Format.formatter -> unit -> unit
(** Renders both ablations with error summaries. *)
