module Params = Ttsv_core.Params
module Model_a = Ttsv_core.Model_a
module Model_b = Ttsv_core.Model_b
module Stack = Ttsv_geometry.Stack
module Tsv = Ttsv_geometry.Tsv
module Material = Ttsv_physics.Material
module Materials = Ttsv_physics.Materials
module Units = Ttsv_physics.Units
module Optimize = Ttsv_numerics.Optimize

let poly_silicon =
  Material.make ~name:"poly-silicon" ~conductivity:30. ~volumetric_heat_capacity:1.63e6 ()

let fillers =
  [ ("copper", Materials.copper); ("tungsten", Materials.tungsten); ("poly-Si", poly_silicon) ]

let with_filler ?r filler =
  let base = Params.fig5_stack (Units.um 1.) in
  let tsv = { base.Stack.tsv with Tsv.filler } in
  let tsv = match r with Some r -> Tsv.with_radius tsv r | None -> tsv in
  Stack.with_tsv base tsv

let run ?resolution () =
  let coeffs = Reference.block_coefficients () in
  let rows =
    List.map
      (fun (name, filler) ->
        let stack = with_filler filler in
        let a = Model_a.max_rise (Model_a.solve ~coeffs stack) in
        let b = Model_b.max_rise (Model_b.solve_n stack 100) in
        let fv = Reference.max_rise ?resolution stack in
        ( Printf.sprintf "%s (k=%g)" name filler.Material.conductivity,
          [ Printf.sprintf "%.3f" a; Printf.sprintf "%.3f" b; Printf.sprintf "%.3f" fv ] ))
      fillers
  in
  {
    Report.title = "Extension - TTSV filler material, Max dT [C] (Fig. 5 midpoint)";
    columns = [ "Model A"; "Model B(100)"; "FV" ];
    rows;
  }

let equivalent_radius filler =
  let coeffs = Reference.block_coefficients () in
  let rise stack = Model_a.max_rise (Model_a.solve ~coeffs stack) in
  let target = rise (with_filler Materials.copper) in
  let f r_um = rise (with_filler ~r:(Units.um r_um) filler) -. target in
  if f 20. > 0. then
    invalid_arg "Fillers.equivalent_radius: no radius below 20 um matches copper";
  if f 5. <= 0. then Units.um 5.
  else Units.um (Optimize.bisect ~tol:1e-4 f 5. 20.)

let print ?resolution ppf () =
  Format.fprintf ppf "@[<v>";
  Report.print_table ppf (run ?resolution ());
  List.iter
    (fun (name, filler) ->
      if not (Material.equal filler Materials.copper) then
        match equivalent_radius filler with
        | r ->
          Format.fprintf ppf "@,a %s via needs r = %.1f um to match the 5 um copper via" name
            (Units.to_um r)
        | exception Invalid_argument _ ->
          Format.fprintf ppf "@,no %s via below r = 20 um matches the 5 um copper via" name)
    fillers;
  Format.fprintf ppf "@]@."
