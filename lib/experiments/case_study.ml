module Params = Ttsv_core.Params
module Model_a = Ttsv_core.Model_a
module Model_b = Ttsv_core.Model_b
module Model_1d = Ttsv_core.Model_1d

type entry = { label : string; max_rise : float; time_ms : float; paper_value : float option }

type t = { entries : entry list; tsv_count : int; cell_area : float }

let run_body ?resolution ?(segments = 1000) () =
  let stack, tsv_count = Params.case_study () in
  let coeffs = Reference.calibrate_for stack in
  let timed label paper_value f =
    let m = Timing.measure f in
    { label; max_rise = m.Timing.result; time_ms = m.Timing.median_ms; paper_value }
  in
  let a =
    timed "Model A (fitted)" (Some 12.8) (fun () ->
        Model_a.max_rise (Model_a.solve ~coeffs stack))
  in
  let b =
    timed
      (Printf.sprintf "Model B(%d)" segments)
      (Some 13.9)
      (fun () -> Model_b.max_rise (Model_b.solve_n stack segments))
  in
  let one_d = timed "Model 1D" (Some 20.) (fun () -> Model_1d.max_rise (Model_1d.solve stack)) in
  let fv =
    timed "FV reference" (Some 12.) (fun () -> Reference.max_rise ?resolution stack)
  in
  { entries = [ a; b; one_d; fv ]; tsv_count; cell_area = stack.Ttsv_geometry.Stack.footprint }

let run ?resolution ?segments () =
  Ttsv_obs.Span.with_ ~name:"experiment.case_study" (fun () ->
      run_body ?resolution ?segments ())

let print ?resolution ?segments ppf () =
  let t = run ?resolution ?segments () in
  Format.fprintf ppf "@[<v>";
  Report.heading ppf "Case study - 3-D DRAM-uP system (section IV-E)";
  Format.fprintf ppf "TTSVs at 0.5%% density: %d vias, unit cell %.4g mm^2@,@," t.tsv_count
    (t.cell_area *. 1e6);
  Report.print_table ppf
    {
      Report.title = "Max dT above heat sink";
      columns = [ "ours [C]"; "paper [C]"; "time [ms]" ];
      rows =
        List.map
          (fun e ->
            ( e.label,
              [
                Printf.sprintf "%.1f" e.max_rise;
                (match e.paper_value with Some v -> Printf.sprintf "%.1f" v | None -> "-");
                Printf.sprintf "%.2f" e.time_ms;
              ] ))
          t.entries;
    };
  Format.fprintf ppf "@]@."
