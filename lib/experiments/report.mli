(** Result containers and ASCII rendering for the experiment suite.

    Every reproduced figure is a set of named series over a common sweep
    variable; every table is a grid of labelled cells.  The benchmark
    binary prints these in the same row/series layout the paper reports,
    and the error summaries reproduce the paper's "maximum / average
    error vs. FEM" statements. *)

type series = { label : string; ys : float array }

type figure = {
  title : string;  (** e.g. "Fig. 4 - Max dT vs TTSV radius" *)
  x_label : string;
  x_unit : string;
  xs : float array;  (** sweep points *)
  series : series list;  (** curves, reference (FV) last by convention *)
}

val figure :
  title:string -> x_label:string -> x_unit:string -> xs:float array -> series list -> figure
(** Validates that every series has one entry per sweep point. *)

val print_figure : Format.formatter -> figure -> unit
(** Renders the sweep as an aligned table, one row per sweep point, one
    column per series. *)

type error_row = {
  model : string;
  max_rel : float;  (** maximum pointwise |model − ref|/ref *)
  mean_rel : float;  (** mean pointwise relative error *)
}

val errors_vs : reference:string -> figure -> error_row list
(** [errors_vs ~reference fig] compares every other series against the
    series labelled [reference].  Raises [Not_found] if absent. *)

val print_errors : Format.formatter -> error_row list -> unit
(** Renders the error summary ("model: max X%, avg Y%" rows). *)

type table = { title : string; columns : string list; rows : (string * string list) list }
(** A generic labelled table: column headers plus (row label, cells). *)

val print_table : Format.formatter -> table -> unit

val percent : float -> string
(** [percent 0.042] is ["4.2%"]. *)

val heading : Format.formatter -> string -> unit
(** Prints an underlined section heading. *)
