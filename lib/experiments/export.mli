(** CSV export of reproduced figures and tables.

    Every figure renders to one CSV with the sweep variable in the first
    column and one column per series — the format plotting scripts
    (gnuplot, matplotlib, …) consume directly. *)

val figure_to_channel : Report.figure -> out_channel -> unit
(** Writes a header row ([x_label [unit], series labels…]) and one row
    per sweep point. *)

val figure_to_string : Report.figure -> string
(** The same CSV as a string (used by the tests). *)

val write_figure : Report.figure -> string -> unit
(** [write_figure fig path] writes (and overwrites) [path]. *)

val table_to_channel : Report.table -> out_channel -> unit
(** Writes a generic labelled table as CSV. *)

val write_table : Report.table -> string -> unit
