(** Plane-count scaling (the §II closing remark, exercised).

    The paper's models are presented on three planes and stated to
    "extend to any number of planes"; this experiment exercises that
    extension: Max ΔT of stacks of 2 to 8 planes (the Fig. 5 midpoint
    per-plane geometry and power), for Model A (fitted on the 3-plane
    block), Model B(100), the 1-D model and the FV reference.

    Expected shape: superlinear growth with the plane count — each plane
    adds both heat and resistance in series — with the model-vs-FV error
    staying bounded as N grows (the extension stays valid). *)

val plane_counts : int list

val stack_with_planes : int -> Ttsv_geometry.Stack.t
(** The N-plane version of the Fig. 5 midpoint geometry. *)

val run : ?resolution:int -> ?pool:Ttsv_parallel.Pool.t -> unit -> Report.figure
(** [pool] evaluates the sweep points concurrently, results in sweep
    order. *)

val print :
  ?resolution:int -> ?pool:Ttsv_parallel.Pool.t -> Format.formatter -> unit -> unit
