module Params = Ttsv_core.Params
module Model_a = Ttsv_core.Model_a
module Model_b = Ttsv_core.Model_b
module Model_1d = Ttsv_core.Model_1d
module Stack = Ttsv_geometry.Stack
module Plane = Ttsv_geometry.Plane
module Tsv = Ttsv_geometry.Tsv
module Units = Ttsv_physics.Units

let plane_counts = [ 2; 3; 4; 5; 6; 8 ]

let stack_with_planes n =
  if n < 2 then invalid_arg "Nplanes.stack_with_planes: need at least two planes";
  let tsv =
    Tsv.make ~radius:(Units.um 5.) ~liner_thickness:(Units.um 1.) ~extension:(Units.um 1.) ()
  in
  let plane ~first =
    Plane.make
      ~t_substrate:(Units.um (if first then 500. else 45.))
      ~t_ild:(Units.um 7.)
      ~t_bond:(Units.um (if first then 0. else 1.))
      ~t_device:(Units.um 1.)
      ~device_power_density:(Units.w_per_mm3 700.)
      ~ild_power_density:(Units.w_per_mm3 70.) ()
  in
  Stack.make
    ~footprint:(Units.um2 (100. *. 100.))
    ~planes:(plane ~first:true :: List.init (n - 1) (fun _ -> plane ~first:false))
    ~tsv ()

let run_body ?resolution ?pool () =
  let coeffs = Reference.block_coefficients () in
  let stacks = List.map stack_with_planes plane_counts in
  let of_list f = Sweep.map ?pool f stacks in
  Report.figure ~title:"Extension - Max dT [C] vs number of planes" ~x_label:"planes"
    ~x_unit:"-"
    ~xs:(Array.of_list (List.map float_of_int plane_counts))
    [
      {
        Report.label = "Model A";
        ys = of_list (fun s -> Model_a.max_rise (Model_a.solve ~coeffs s));
      };
      {
        Report.label = "Model B(100)";
        ys = of_list (fun s -> Model_b.max_rise (Model_b.solve_n s 100));
      };
      {
        Report.label = "Model 1D";
        ys = of_list (fun s -> Model_1d.max_rise (Model_1d.solve s));
      };
      { Report.label = "FV"; ys = of_list (Reference.max_rise ?resolution) };
    ]

let run ?resolution ?pool () =
  Ttsv_obs.Span.with_ ~name:"experiment.nplanes" (fun () -> run_body ?resolution ?pool ())

let print ?resolution ?pool ppf () =
  let fig = run ?resolution ?pool () in
  Format.fprintf ppf "@[<v>";
  Report.print_figure ppf fig;
  Format.fprintf ppf "@,Error vs FV reference:@,";
  Report.print_errors ppf (Report.errors_vs ~reference:"FV" fig);
  Format.fprintf ppf "@]@.";
  Ascii_plot.print ppf fig
