module Params = Ttsv_core.Params
module Model_b = Ttsv_core.Model_b
module Problem = Ttsv_fem.Problem
module Solver = Ttsv_fem.Solver
module Units = Ttsv_physics.Units

let segment_counts = [ 1; 2; 5; 10; 20; 50; 100; 200; 500 ]
let resolutions = [ 1; 2; 3; 4 ]

let midpoint_stack () = Params.fig5_stack (Units.um 1.)

let model_b_convergence ?resolution () =
  let stack = midpoint_stack () in
  let fv = Reference.max_rise ?resolution stack in
  let xs = Array.of_list (List.map float_of_int segment_counts) in
  let b =
    Array.of_list
      (List.map (fun n -> Model_b.max_rise (Model_b.solve_n stack n)) segment_counts)
  in
  Report.figure ~title:"Convergence - Model B vs segment count (Fig. 5 midpoint)"
    ~x_label:"segments" ~x_unit:"-" ~xs
    [
      { Report.label = "Model B(n)"; ys = b };
      { Report.label = "FV"; ys = Array.map (fun _ -> fv) xs };
    ]

let fv_mesh_convergence () =
  let stack = midpoint_stack () in
  List.map
    (fun resolution ->
      let p = Problem.of_stack ~resolution stack in
      (resolution, Problem.cell_count p, Solver.max_rise (Solver.solve p)))
    resolutions

let print ?resolution ppf () =
  Format.fprintf ppf "@[<v>";
  Report.print_figure ppf (model_b_convergence ?resolution ());
  let levels = fv_mesh_convergence () in
  Report.print_table ppf
    {
      Report.title = "Convergence - FV mesh refinement (Fig. 5 midpoint)";
      columns = [ "cells"; "Max dT [C]" ];
      rows =
        List.map
          (fun (res, cells, dt) ->
            (Printf.sprintf "resolution %d" res, [ string_of_int cells; Printf.sprintf "%.3f" dt ]))
          levels;
    };
  (* Richardson: observed order from the geometric sub-family 1, 2, 4 and
     the extrapolated limit from the two finest levels *)
  let value r = match List.find_opt (fun (res, _, _) -> res = r) levels with
    | Some (_, _, v) -> Some v
    | None -> None
  in
  (match (value 1, value 2, value 4, List.rev levels) with
  | Some v1, Some v2, Some v4, (rf, _, vf) :: (rc, _, vc) :: _ ->
    (match
       Ttsv_numerics.Richardson.observed_order ~h1:1. ~v1 ~h2:0.5 ~v2 ~h3:0.25 ~v3:v4
     with
    | order ->
      let limit =
        Ttsv_numerics.Richardson.two_point ~order ~h_coarse:(1. /. float_of_int rc)
          ~v_coarse:vc
          ~h_fine:(1. /. float_of_int rf)
          ~v_fine:vf
      in
      Format.fprintf ppf "@,observed order of convergence: %.2f@," order;
      Format.fprintf ppf "Richardson-extrapolated limit: %.3f C@," limit
    | exception Invalid_argument _ ->
      Format.fprintf ppf "@,(pre-asymptotic data: no Richardson estimate)@,")
  | _ -> ());
  Format.fprintf ppf "@]@."
