module Problem = Ttsv_fem.Problem
module Solver = Ttsv_fem.Solver
module Params = Ttsv_core.Params
module Calibrate = Ttsv_core.Calibrate
module Units = Ttsv_physics.Units

let max_rise ?(resolution = 2) stack =
  Solver.max_rise (Solver.solve (Problem.of_stack ~resolution stack))

let fit_on stacks =
  let samples =
    List.map (fun stack -> { Calibrate.stack; reference = max_rise stack }) stacks
  in
  (Calibrate.fit samples).Calibrate.coefficients

let block_coefficients =
  let memo = ref None in
  fun () ->
    match !memo with
    | Some c -> c
    | None ->
      let stacks = List.map (fun tl -> Params.fig5_stack (Units.um tl)) [ 0.5; 1.5; 3. ] in
      let c = fit_on stacks in
      memo := Some c;
      c

let calibrate_for stack = fit_on [ stack ]
