module Pool = Ttsv_parallel.Pool

let pool_of = function Some p -> p | None -> Pool.seq
let map_array ?pool f xs = Pool.map_array (pool_of pool) f xs
let map ?pool f xs = map_array ?pool f (Array.of_list xs)
let init ?pool n f = map_array ?pool f (Array.init n (fun i -> i))
