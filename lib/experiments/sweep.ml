module Pool = Ttsv_parallel.Pool

let pool_of = function Some p -> p | None -> Pool.seq

(* One span per experiment point, on whichever domain evaluates it, so a
   full sweep produces a browsable trace.  The attribute list is only
   built when observability is on. *)
let point i g =
  if Ttsv_obs.Flags.enabled () then
    Ttsv_obs.Span.with_ ~name:"sweep.point" ~attrs:[ ("i", string_of_int i) ] g
  else g ()

let map_array ?pool f xs =
  Pool.map_array (pool_of pool)
    (fun i -> point i (fun () -> f xs.(i)))
    (Array.init (Array.length xs) Fun.id)

let map ?pool f xs = map_array ?pool f (Array.of_list xs)
let init ?pool n f = map_array ?pool f (Array.init n (fun i -> i))
