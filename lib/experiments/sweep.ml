module Pool = Ttsv_parallel.Pool
module Json = Ttsv_obs.Json

let pool_of = function Some p -> p | None -> Pool.seq

(* One span per experiment point, on whichever domain evaluates it, so a
   full sweep produces a browsable trace.  The attribute list is only
   built when observability is on. *)
let point i g =
  if Ttsv_obs.Flags.enabled () then
    Ttsv_obs.Span.with_ ~name:"sweep.point" ~attrs:[ ("i", string_of_int i) ] g
  else g ()

type 'b stage = {
  cp : Checkpoint.t;
  stage : string;
  encode : 'b -> Json.t;
  decode : Json.t -> 'b option;
}

let stage cp ~name ~encode ~decode = { cp; stage = name; encode; decode }

let float_stage cp name =
  stage cp ~name ~encode:(fun y -> Json.Float y) ~decode:Json.to_float_opt

let map_array ?pool ?budget ?checkpoint f xs =
  let eval i =
    match checkpoint with
    | None -> point i (fun () -> f xs.(i))
    | Some st -> (
      (* a recorded point short-circuits the evaluation entirely; a new
         one is made durable the moment it completes, from whichever
         domain computed it *)
      match Option.bind (Checkpoint.find st.cp ~stage:st.stage i) st.decode with
      | Some y -> y
      | None ->
        let y = point i (fun () -> f xs.(i)) in
        Checkpoint.record st.cp ~stage:st.stage i (st.encode y);
        y)
  in
  Pool.map_array ?budget (pool_of pool) eval (Array.init (Array.length xs) Fun.id)

let map ?pool ?budget ?checkpoint f xs = map_array ?pool ?budget ?checkpoint f (Array.of_list xs)
let init ?pool ?budget ?checkpoint n f = map_array ?pool ?budget ?checkpoint f (Array.init n (fun i -> i))
