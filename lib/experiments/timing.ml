type 'a measurement = { result : 'a; min_ms : float; median_ms : float; max_ms : float }

(* Each repeat runs under Obs.Span.time, so a traced run shows every
   repeat as a "timing.repeat" span and the measured wall time is the
   span clock's — one clock for Table I and for the trace. *)
let measure ?(repeats = 3) ?(name = "timing.repeat") f =
  if repeats < 1 then invalid_arg "Timing.measure: repeats must be >= 1";
  let results = Array.make repeats None in
  let samples = Array.make repeats 0. in
  for i = 0 to repeats - 1 do
    let r, dt = Ttsv_obs.Span.time ~name f in
    results.(i) <- Some r;
    samples.(i) <- dt *. 1000.
  done;
  (* order run indices by their time so the reported result is the one
     the median sample actually produced, not whichever ran last *)
  let order = Array.init repeats Fun.id in
  Array.sort (fun i j -> compare (samples.(i), i) (samples.(j), j)) order;
  let at k = samples.(order.(k)) in
  let median_run = order.(repeats / 2) in
  let result = match results.(median_run) with Some r -> r | None -> assert false in
  { result; min_ms = at 0; median_ms = samples.(median_run); max_ms = at (repeats - 1) }

let time_ms ?repeats f =
  let m = measure ?repeats f in
  (m.result, m.median_ms)
