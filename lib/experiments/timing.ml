let time_ms ?(repeats = 3) f =
  if repeats < 1 then invalid_arg "Timing.time_ms: repeats must be >= 1";
  let samples = Array.make repeats 0. in
  let result = ref None in
  for i = 0 to repeats - 1 do
    let t0 = Sys.time () in
    result := Some (f ());
    samples.(i) <- (Sys.time () -. t0) *. 1000.
  done;
  Array.sort compare samples;
  let median = samples.(repeats / 2) in
  match !result with Some r -> (r, median) | None -> assert false
