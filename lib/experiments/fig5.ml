module Params = Ttsv_core.Params
module Model_a = Ttsv_core.Model_a
module Model_b = Ttsv_core.Model_b
module Model_1d = Ttsv_core.Model_1d
module Units = Ttsv_physics.Units

let liners_um = [ 0.5; 1.; 1.5; 2.; 2.5; 3. ]
let segment_counts = [ 1; 20; 100; 500 ]

let run_body ?resolution ?pool ?checkpoint () =
  let coeffs = Reference.block_coefficients () in
  let stacks = List.map (fun tl -> Params.fig5_stack (Units.um tl)) liners_um in
  (* each curve is one checkpoint stage, so a killed figure resumes
     mid-curve: only the points with no record are re-solved *)
  let of_list name f =
    let checkpoint = Option.map (fun cp -> Sweep.float_stage cp ("fig5." ^ name)) checkpoint in
    Sweep.map ?pool ?checkpoint f stacks
  in
  let model_a = of_list "model_a" (fun s -> Model_a.max_rise (Model_a.solve ~coeffs s)) in
  let model_bs =
    List.map
      (fun n ->
        {
          Report.label = Printf.sprintf "Model B(%d)" n;
          ys =
            of_list
              (Printf.sprintf "model_b_%d" n)
              (fun s -> Model_b.max_rise (Model_b.solve_n s n));
        })
      segment_counts
  in
  let model_1d = of_list "model_1d" (fun s -> Model_1d.max_rise (Model_1d.solve s)) in
  let fv = of_list "fv" (Reference.max_rise ?resolution) in
  Report.figure ~title:"Fig. 5 - Max dT [C] vs liner thickness" ~x_label:"t_L" ~x_unit:"um"
    ~xs:(Array.of_list liners_um)
    ([ { Report.label = "Model A"; ys = model_a } ]
    @ model_bs
    @ [ { Report.label = "Model 1D"; ys = model_1d }; { Report.label = "FV"; ys = fv } ])

let run ?resolution ?pool ?checkpoint () =
  Ttsv_obs.Span.with_ ~name:"experiment.fig5" (fun () -> run_body ?resolution ?pool ?checkpoint ())

let print ?resolution ?pool ?checkpoint ppf () =
  let fig = run ?resolution ?pool ?checkpoint () in
  Format.fprintf ppf "@[<v>";
  Report.print_figure ppf fig;
  Format.fprintf ppf "@,Error vs FV reference:@,";
  Report.print_errors ppf (Report.errors_vs ~reference:"FV" fig);
  Format.fprintf ppf "@]@.";
  Ascii_plot.print ppf fig
