(** Fig. 4 — maximum temperature rise vs. TTSV radius.

    Sweep: r from 1 µm to 20 µm with the paper's aspect-ratio
    accommodation (t_Si2,3 jumps from 5 µm to 45 µm above r = 5 µm).
    Curves: Model A (coefficients fitted against the FV reference, the
    paper's procedure), Model B(100), the traditional 1-D model, and the
    FV reference itself.

    Expected shape (paper): ΔT decreases monotonically with r within
    each substrate-thickness regime; Model A and B track the reference
    within a few percent while the 1-D model errs most at high aspect
    ratio (small r). *)

val radii_um : float list
(** The sweep points in micrometres. *)

val run : ?resolution:int -> ?pool:Ttsv_parallel.Pool.t -> unit -> Report.figure
(** [run ()] computes every curve ([resolution] meshes the FV
    reference; [pool] evaluates the sweep points concurrently with
    results in sweep order). *)

val print :
  ?resolution:int -> ?pool:Ttsv_parallel.Pool.t -> Format.formatter -> unit -> unit
(** Runs and renders the figure followed by its error summary. *)
