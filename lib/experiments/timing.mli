(** Wall-clock timing for the runtime columns of Table I and §IV-E. *)

val time_ms : ?repeats:int -> (unit -> 'a) -> 'a * float
(** [time_ms f] runs [f] [repeats] times (default 3) and returns the last
    result together with the median elapsed time in milliseconds. *)
