(** Wall-clock timing for the runtime columns of Table I and §IV-E.

    Built on {!Ttsv_obs.Span.time}: every repeat is measured on the
    span wall clock and shows up as a ["timing.repeat"] span when a
    trace is open. *)

type 'a measurement = {
  result : 'a;  (** the value produced by the {e median} run *)
  min_ms : float;
  median_ms : float;
  max_ms : float;
}

val measure : ?repeats:int -> ?name:string -> (unit -> 'a) -> 'a measurement
(** [measure f] runs [f] [repeats] times (default 3) and reports the
    min/median/max elapsed milliseconds together with the result of the
    median run — so warm-up jitter is visible instead of hidden behind a
    single number.  Raises [Invalid_argument] when [repeats < 1]. *)

val time_ms : ?repeats:int -> (unit -> 'a) -> 'a * float
(** Deprecated compatibility wrapper for {!measure}: returns the median
    run's result and the median elapsed milliseconds.  New call sites
    should use {!measure} and report the spread. *)
