(** Power traces for transient analysis.

    A trace is a piecewise-linear power-scaling waveform — DVFS states,
    duty cycles, measured activity — parsed from a two-column CSV
    ([time_s,scale], header optional, '#' comments ignored) and exposed
    as the [float -> float] function {!Ttsv_core.Transient.solve} and
    {!Ttsv_fem.Solver.solve_transient} accept. *)

type t
(** An immutable piecewise-linear waveform. *)

val of_points : (float * float) list -> t
(** [of_points pts] builds a waveform from (time, scale) samples; at
    least one point, times sorted after deduplication, scales
    nonnegative ([Invalid_argument] otherwise).  Evaluation clamps to
    the first/last samples outside the domain. *)

val parse : string -> t
(** [parse text] parses CSV text.  Raises [Failure] with a line number
    on malformed rows. *)

val load : string -> t
(** [load path] reads and parses a file. *)

val scale : t -> float -> float
(** [scale t time] evaluates the waveform — pass [scale t] as the
    [~power] argument of the transient solvers. *)

val duration : t -> float
(** Last sample time. *)

val peak : t -> float
(** Largest scale in the table. *)

val average : t -> float
(** Time-averaged scale over [0, duration] (trapezoid; the single
    sample's value when the trace has one point). *)

val square_wave : period:float -> duty:float -> high:float -> low:float -> samples:int -> t
(** [square_wave ~period ~duty ~high ~low ~samples] synthesizes a
    duty-cycled waveform sampled finely enough for the solvers
    ([duty] in (0, 1), [samples] ≥ 8 per period edge fidelity). *)
