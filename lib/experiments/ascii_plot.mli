(** Terminal rendering of reproduced figures.

    The bench harness prints every figure as a numeric table; this module
    adds a quick visual check — an ASCII scatter of all series on shared
    axes with one marker per series and a legend — so the shapes the
    paper plots (monotone decrease, the Fig. 6 minimum, the Fig. 7
    saturation) are visible directly in the terminal output. *)

val render : ?width:int -> ?height:int -> Report.figure -> string
(** [render fig] draws the figure on a [width × height] character canvas
    (defaults 64 × 20) with axis ranges padded 5 %.  Series markers cycle
    through [*, o, x, +, #, @]; later series overwrite earlier ones on
    collisions.  Degenerate ranges (constant series) are handled by
    widening the range symmetrically. *)

val print : Format.formatter -> Report.figure -> unit
(** [print ppf fig] renders and writes with a trailing newline. *)
