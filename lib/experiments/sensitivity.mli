(** Parameter-sensitivity analysis (extension beyond the paper).

    The paper argues qualitatively which parameters matter (§IV); this
    experiment quantifies them: the normalized logarithmic sensitivity

      S(p) = (∂ΔT/ΔT) / (∂p/p)

    of the maximum temperature rise to every TTSV parameter, computed by
    central finite differences (±2 %) around the Fig. 5 midpoint, for
    Model A (fitted), Model B(100) and the FV reference.  Agreement on
    {e derivatives}, not just values, is the stronger test of an
    analytical model intended for design exploration. *)

type parameter = Radius | Liner | Ild | Bond | Substrate | Filler_k | Liner_k

val all_parameters : parameter list

val name : parameter -> string

val run :
  ?resolution:int ->
  ?pool:Ttsv_parallel.Pool.t ->
  ?checkpoint:Checkpoint.t ->
  unit ->
  Report.table
(** Rows = parameters, columns = S per model plus the FV reference. *)

val sensitivities :
  ?resolution:int ->
  ?pool:Ttsv_parallel.Pool.t ->
  ?checkpoint:Checkpoint.t ->
  unit ->
  (parameter * float * float * float) list
(** [(param, S_modelA, S_modelB, S_fv)] rows — the raw numbers behind
    {!run}, used by the tests.  [checkpoint] records each parameter's
    sensitivity triple under the ["sensitivity"] stage; resumed runs
    recompute only parameters with no record. *)

val print :
  ?resolution:int ->
  ?pool:Ttsv_parallel.Pool.t ->
  ?checkpoint:Checkpoint.t ->
  Format.formatter ->
  unit ->
  unit
