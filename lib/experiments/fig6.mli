(** Fig. 6 — maximum temperature rise vs. substrate thickness.

    Sweep: t_Si2 = t_Si3 from 5 µm to 80 µm at r = 8 µm, t_L = 1 µm,
    t_D = 7 µm, t_b = 1 µm.

    Expected shape (paper): ΔT is *non-monotonic* — decreasing while
    the growing substrate improves lateral access to the TTSV (the
    R6/R9 liner resistances fall with span), then increasing once the
    added vertical resistance dominates; the 1-D model, blind to the
    lateral path, is strictly monotonic.  Both the non-monotonicity of
    A/B/FV and the monotonicity of 1-D are asserted by the test suite. *)

val thicknesses_um : float list

val run : ?resolution:int -> unit -> Report.figure

val print : ?resolution:int -> Format.formatter -> unit -> unit

val minimum_of : Report.figure -> string -> float
(** [minimum_of fig label] is the sweep point (µm) where the labelled
    series attains its minimum — the crossover thickness discussed in
    §IV-C. *)
