(** Fig. 7 — maximum temperature rise vs. number of TTSVs.

    A single r₀ = 10 µm TTSV is divided into n ∈ {1, 2, 4, 9, 16} vias
    of equal total metal area (§IV-D, eq. 22).  Curves: Model A with the
    eq. 22 liner update, Model B(100) with the same update on its rungs,
    the 1-D model (necessarily flat: the metal area never changes), and
    the FV reference (each sub-via solved in its 1/n-area unit cell —
    the axisymmetric equivalent of the paper's clustered layout; see
    DESIGN.md).

    Expected shape (paper): ΔT decreases with n with saturating gains. *)

val divisions : int list

val run : ?resolution:int -> ?pool:Ttsv_parallel.Pool.t -> unit -> Report.figure
(** [pool] evaluates the sweep points concurrently, results in sweep
    order. *)

val print :
  ?resolution:int -> ?pool:Ttsv_parallel.Pool.t -> Format.formatter -> unit -> unit
