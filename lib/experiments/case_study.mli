(** §IV-E — the 3-D DRAM-µP case study.

    A 10 mm × 10 mm three-plane system (processor plane on the heat
    sink, two DRAM planes above; 70 W + 7 W + 7 W) with TTSVs at 0.5 %
    area density (r = 30 µm) is reduced to its per-TTSV unit cell and
    analyzed with Model A (coefficients freshly fitted on this geometry,
    the paper's §IV-E procedure), Model B(1000), the 1-D model, and the
    FV reference.

    Expected shape (paper): A ≈ 12.8 °C, B(1000) ≈ 13.9 °C,
    FEM = 12 °C, 1-D = 20 °C — i.e. both proposed models land within
    ~15 % of the reference while the 1-D model overestimates by ~65 %,
    and the models run orders of magnitude faster than the field
    solver. *)

type entry = {
  label : string;
  max_rise : float;  (** Max ΔT above the heat sink, K *)
  time_ms : float;
  paper_value : float option;  (** the paper's reported value, °C, where given *)
}

type t = {
  entries : entry list;
  tsv_count : int;  (** TTSVs implied by the 0.5 % density *)
  cell_area : float;  (** unit-cell footprint, m² *)
}

val run : ?resolution:int -> ?segments:int -> unit -> t
(** [run ()] analyzes the case study.  [segments] is Model B's per-plane
    segment count (default 1000, the paper's choice). *)

val print : ?resolution:int -> ?segments:int -> Format.formatter -> unit -> unit
