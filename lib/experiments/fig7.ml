module Params = Ttsv_core.Params
module Model_a = Ttsv_core.Model_a
module Model_b = Ttsv_core.Model_b
module Model_1d = Ttsv_core.Model_1d
module Cluster = Ttsv_core.Cluster
module Stack = Ttsv_geometry.Stack
module Tsv = Ttsv_geometry.Tsv

let divisions = [ 1; 2; 4; 9; 16 ]

(* The 1/n-area axisymmetric unit cell around one of the n sub-vias. *)
let subcell stack n =
  let fn = float_of_int n in
  Stack.make
    ~sink_temperature:stack.Stack.sink_temperature
    ~footprint:(stack.Stack.footprint /. fn)
    ~planes:(Array.to_list stack.Stack.planes)
    ~tsv:(Tsv.divide stack.Stack.tsv n) ()

let run_body ?resolution ?pool () =
  let coeffs = Reference.block_coefficients () in
  let stack = Params.fig7_stack () in
  let of_list f = Sweep.map ?pool f divisions in
  let model_a = of_list (fun n -> Model_a.max_rise (Cluster.solve ~coeffs stack n)) in
  let model_b = of_list (fun n -> Model_b.max_rise (Model_b.solve_n ~cluster:n stack 100)) in
  let model_1d = of_list (fun _ -> Model_1d.max_rise (Model_1d.solve stack)) in
  let fv = of_list (fun n -> Reference.max_rise ?resolution (subcell stack n)) in
  Report.figure ~title:"Fig. 7 - Max dT [C] vs number of TTSVs" ~x_label:"n TTSVs" ~x_unit:"-"
    ~xs:(Array.of_list (List.map float_of_int divisions))
    [
      { Report.label = "Model A"; ys = model_a };
      { Report.label = "Model B(100)"; ys = model_b };
      { Report.label = "Model 1D"; ys = model_1d };
      { Report.label = "FV"; ys = fv };
    ]

let run ?resolution ?pool () =
  Ttsv_obs.Span.with_ ~name:"experiment.fig7" (fun () -> run_body ?resolution ?pool ())

let print ?resolution ?pool ppf () =
  let fig = run ?resolution ?pool () in
  Format.fprintf ppf "@[<v>";
  Report.print_figure ppf fig;
  Format.fprintf ppf "@,Error vs FV reference:@,";
  Report.print_errors ppf (Report.errors_vs ~reference:"FV" fig);
  Format.fprintf ppf "@]@.";
  Ascii_plot.print ppf fig
