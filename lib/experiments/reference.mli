(** The experiments' numeric reference (the paper's "FEM" column).

    Wraps the finite-volume solver with the experiment suite's default
    meshing and exposes the calibration runs the paper performs against
    it. *)

val max_rise : ?resolution:int -> Ttsv_geometry.Stack.t -> float
(** [max_rise stack] is the FV Max ΔT at mesh [resolution]
    (default 2 — mesh-converged to well under a percent for the paper's
    block, see the convergence ablation). *)

val block_coefficients : unit -> Ttsv_core.Coefficients.t
(** Model A coefficients fitted against the FV solver on three liner
    sweep points of the paper's block — the reproduction of the paper's
    "k1 = 1.3, k2 = 0.55" calibration.  Computed once and memoized. *)

val calibrate_for : Ttsv_geometry.Stack.t -> Ttsv_core.Coefficients.t
(** [calibrate_for stack] fits Model A's coefficients on that single
    geometry (the paper's case-study procedure: "the fitting coefficients
    are determined by the simulation of a block of the investigated
    circuit"). *)
