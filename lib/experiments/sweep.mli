(** Pooled evaluation of independent sweep points.

    Every figure and study in this library is a sweep: a list of stacks
    (or parameters, or Monte-Carlo samples) mapped through an expensive,
    independent evaluation.  [Sweep] runs those evaluations across a
    {!Ttsv_parallel.Pool} while keeping the output in input order —
    element [i] of the result is always [f] applied to element [i] of
    the input, whatever the pool's scheduling, so a pooled sweep is
    indistinguishable from a sequential one.

    Evaluations must be pure (or at least independent); any exception
    raised by [f] aborts the sweep and is re-raised to the caller.

    When observability is enabled ({!Ttsv_obs.Config}), every point is
    evaluated inside a ["sweep.point"] span tagged with its index, on
    whichever domain ran it.

    {2 Budgets and checkpoints}

    [budget] bounds the sweep cooperatively: it is polled between
    points, and expiry raises {!Ttsv_parallel.Budget.Expired} to the
    caller after the in-flight points join.

    [checkpoint] makes the sweep resumable: each completed point is
    encoded and appended to the {!Checkpoint} file the moment it
    finishes, and points already recorded there are decoded instead of
    recomputed.  Since the encoding round-trips floats bitwise, a
    killed-and-resumed sweep produces results identical to an
    uninterrupted one while re-evaluating only the unfinished points. *)

type 'b stage
(** One named sweep inside a {!Checkpoint.t}: where to record, and how
    to encode/decode the point results. *)

val stage :
  Checkpoint.t ->
  name:string ->
  encode:('b -> Ttsv_obs.Json.t) ->
  decode:(Ttsv_obs.Json.t -> 'b option) ->
  'b stage
(** [decode] returning [None] (a corrupt or foreign value) recomputes
    the point. *)

val float_stage : Checkpoint.t -> string -> float stage
(** The common case: sweeps producing one float per point. *)

val map :
  ?pool:Ttsv_parallel.Pool.t ->
  ?budget:Ttsv_parallel.Budget.t ->
  ?checkpoint:'b stage ->
  ('a -> 'b) ->
  'a list ->
  'b array
(** [map f xs] evaluates [f] over the points of [xs] — over the pool
    when one is given, sequentially otherwise — and returns the results
    in input order. *)

val map_array :
  ?pool:Ttsv_parallel.Pool.t ->
  ?budget:Ttsv_parallel.Budget.t ->
  ?checkpoint:'b stage ->
  ('a -> 'b) ->
  'a array ->
  'b array
(** Array-input variant of {!map}. *)

val init :
  ?pool:Ttsv_parallel.Pool.t ->
  ?budget:Ttsv_parallel.Budget.t ->
  ?checkpoint:'a stage ->
  int ->
  (int -> 'a) ->
  'a array
(** [init n f] is [Array.init n f] with the points evaluated over the
    pool (ordered, deterministic). *)
