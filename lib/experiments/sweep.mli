(** Pooled evaluation of independent sweep points.

    Every figure and study in this library is a sweep: a list of stacks
    (or parameters, or Monte-Carlo samples) mapped through an expensive,
    independent evaluation.  [Sweep] runs those evaluations across a
    {!Ttsv_parallel.Pool} while keeping the output in input order —
    element [i] of the result is always [f] applied to element [i] of
    the input, whatever the pool's scheduling, so a pooled sweep is
    indistinguishable from a sequential one.

    Evaluations must be pure (or at least independent); any exception
    raised by [f] aborts the sweep and is re-raised to the caller.

    When observability is enabled ({!Ttsv_obs.Config}), every point is
    evaluated inside a ["sweep.point"] span tagged with its index, on
    whichever domain ran it. *)

val map : ?pool:Ttsv_parallel.Pool.t -> ('a -> 'b) -> 'a list -> 'b array
(** [map f xs] evaluates [f] over the points of [xs] — over the pool
    when one is given, sequentially otherwise — and returns the results
    in input order. *)

val map_array : ?pool:Ttsv_parallel.Pool.t -> ('a -> 'b) -> 'a array -> 'b array
(** Array-input variant of {!map}. *)

val init : ?pool:Ttsv_parallel.Pool.t -> int -> (int -> 'a) -> 'a array
(** [init n f] is [Array.init n f] with the points evaluated over the
    pool (ordered, deterministic). *)
