module Params = Ttsv_core.Params
module Model_a = Ttsv_core.Model_a
module Nonlinear = Ttsv_core.Nonlinear
module Stack = Ttsv_geometry.Stack
module Plane = Ttsv_geometry.Plane
module Materials = Ttsv_physics.Materials
module Units = Ttsv_physics.Units
module Problem = Ttsv_fem.Problem
module Solver = Ttsv_fem.Solver

let sink_k = Units.kelvin_of_celsius 27.

(* the Fig. 5 midpoint block with k(T) silicon and scaled power *)
let stack_at power_scale =
  let base = Params.fig5_stack (Units.um 1.) in
  Stack.map_planes base (fun _ p ->
      let p =
        Plane.with_power
          ~device_power_density:(p.Plane.device_power_density *. power_scale)
          ~ild_power_density:(p.Plane.ild_power_density *. power_scale)
          p
      in
      { p with Plane.substrate = Materials.silicon_k_of_t })

let fv_pair ?(resolution = 2) stack =
  let problem = Problem.of_stack ~resolution stack in
  let linear = Solver.max_rise (Solver.solve problem) in
  let materials = Problem.materials_of_stack ~resolution stack in
  let res, sweeps =
    Solver.solve_nonlinear_exn ~materials ~sink_temperature_k:sink_k problem
  in
  (linear, Solver.max_rise res, sweeps)

let model_a_pair stack =
  let coeffs = Reference.block_coefficients () in
  let linear = Model_a.max_rise (Model_a.solve ~coeffs stack) in
  let res, sweeps = Nonlinear.solve ~coeffs ~sink_temperature_k:sink_k stack in
  (linear, Model_a.max_rise res, sweeps)

let power_scales = [ 1.; 2. ]

let penalties ?resolution () =
  List.map
    (fun scale ->
      let stack = stack_at scale in
      let la, na, _ = model_a_pair stack in
      let lf, nf, _ = fv_pair ?resolution stack in
      (scale, (na -. la) /. la, (nf -. lf) /. lf))
    power_scales

let run ?resolution () =
  let rows =
    List.concat_map
      (fun scale ->
        let stack = stack_at scale in
        let la, na, sa = model_a_pair stack in
        let lf, nf, sf = fv_pair ?resolution stack in
        let f = Printf.sprintf "%.3f" in
        [
          ( Printf.sprintf "%gx power, Model A" scale,
            [ f la; f na; Report.percent ((na -. la) /. la); string_of_int sa ] );
          ( Printf.sprintf "%gx power, FV" scale,
            [ f lf; f nf; Report.percent ((nf -. lf) /. lf); string_of_int sf ] );
        ])
      power_scales
  in
  {
    Report.title = "Extension - k(T) silicon: linear vs Picard-converged Max dT [C]";
    columns = [ "linear"; "nonlinear"; "penalty"; "sweeps" ];
    rows;
  }

let print ?resolution ppf () =
  Format.fprintf ppf "@[<v>";
  Report.print_table ppf (run ?resolution ());
  Format.fprintf ppf
    "@,silicon k falls as ~T^(-4/3): constant-k models underestimate the rise@,\
     by the penalty column, and the effect compounds with power.@]@."
