module Params = Ttsv_core.Params
module Model_a = Ttsv_core.Model_a
module Model_b = Ttsv_core.Model_b
module Model_1d = Ttsv_core.Model_1d
module Units = Ttsv_physics.Units

let thicknesses_um = [ 5.; 10.; 15.; 20.; 25.; 30.; 40.; 50.; 60.; 70.; 80. ]

let run_body ?resolution () =
  let coeffs = Reference.block_coefficients () in
  let stacks = List.map (fun t -> Params.fig6_stack (Units.um t)) thicknesses_um in
  let of_list f = Array.of_list (List.map f stacks) in
  let model_a = of_list (fun s -> Model_a.max_rise (Model_a.solve ~coeffs s)) in
  let model_b = of_list (fun s -> Model_b.max_rise (Model_b.solve_n s 100)) in
  let model_1d = of_list (fun s -> Model_1d.max_rise (Model_1d.solve s)) in
  let fv = of_list (Reference.max_rise ?resolution) in
  Report.figure ~title:"Fig. 6 - Max dT [C] vs substrate thickness" ~x_label:"t_Si2,3"
    ~x_unit:"um" ~xs:(Array.of_list thicknesses_um)
    [
      { Report.label = "Model A"; ys = model_a };
      { Report.label = "Model B(100)"; ys = model_b };
      { Report.label = "Model 1D"; ys = model_1d };
      { Report.label = "FV"; ys = fv };
    ]

let run ?resolution () =
  Ttsv_obs.Span.with_ ~name:"experiment.fig6" (fun () -> run_body ?resolution ())

let minimum_of fig label =
  match List.find_opt (fun s -> String.equal s.Report.label label) fig.Report.series with
  | None -> invalid_arg ("Fig6.minimum_of: no series " ^ label)
  | Some s ->
    let best = ref 0 in
    Array.iteri (fun i y -> if y < s.Report.ys.(!best) then best := i) s.Report.ys;
    fig.Report.xs.(!best)

let print ?resolution ppf () =
  let fig = run ?resolution () in
  Format.fprintf ppf "@[<v>";
  Report.print_figure ppf fig;
  Format.fprintf ppf "@,Error vs FV reference:@,";
  Report.print_errors ppf (Report.errors_vs ~reference:"FV" fig);
  Format.fprintf ppf "@,dT minimum: FV at %g um, Model A at %g um, Model B at %g um@]@."
    (minimum_of fig "FV") (minimum_of fig "Model A") (minimum_of fig "Model B(100)");
  Ascii_plot.print ppf fig
