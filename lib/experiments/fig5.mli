(** Fig. 5 — maximum temperature rise vs. dielectric liner thickness.

    Sweep: t_L from 0.5 µm to 3 µm at r = 5 µm, t_D = 7 µm, t_b = 1 µm,
    t_Si2,3 = 45 µm.  Curves: Model A (fitted), Model B at 1/20/100/500
    segments, the 1-D model, and the FV reference.

    Expected shape (paper): ΔT grows roughly like ln t_L (through
    R3/R6/R9); the 1-D curve is *flat* — the traditional model has no
    liner at all, which is the central point of the paper; Model B's
    accuracy improves monotonically with the segment count. *)

val liners_um : float list

val segment_counts : int list
(** The Model B variants shown: 1, 20, 100, 500. *)

val run :
  ?resolution:int ->
  ?pool:Ttsv_parallel.Pool.t ->
  ?checkpoint:Checkpoint.t ->
  unit ->
  Report.figure
(** [pool] evaluates the sweep points concurrently, results in sweep
    order.  [checkpoint] makes the figure resumable: every curve is its
    own stage (["fig5.model_a"], ["fig5.model_b_100"], ["fig5.fv"], …)
    and completed points are loaded instead of re-solved, so a resumed
    figure is identical to an uninterrupted one. *)

val print :
  ?resolution:int ->
  ?pool:Ttsv_parallel.Pool.t ->
  ?checkpoint:Checkpoint.t ->
  Format.formatter ->
  unit ->
  unit
