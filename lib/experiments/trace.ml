module Interp = Ttsv_numerics.Interp

type t = { points : (float * float) array }

let of_points pts =
  if pts = [] then invalid_arg "Trace.of_points: empty trace";
  List.iter
    (fun (time, scale) ->
      if not (Float.is_finite time && Float.is_finite scale) then
        invalid_arg "Trace.of_points: non-finite sample";
      if scale < 0. then invalid_arg "Trace.of_points: negative scale";
      if time < 0. then invalid_arg "Trace.of_points: negative time")
    pts;
  let sorted = List.sort_uniq (fun (a, _) (b, _) -> compare a b) pts in
  { points = Array.of_list sorted }

let parse text =
  let rows = ref [] in
  let header_allowed = ref true in
  let lineno = ref 0 in
  List.iter
    (fun raw ->
      incr lineno;
      let line = String.trim raw in
      if line <> "" && line.[0] <> '#' then begin
        (match String.split_on_char ',' line with
        | [ a; b ] -> begin
          match (float_of_string_opt (String.trim a), float_of_string_opt (String.trim b)) with
          | Some time, Some scale -> rows := (time, scale) :: !rows
          | None, _ | _, None ->
            (* tolerate a single leading header row *)
            if not !header_allowed then
              failwith (Printf.sprintf "Trace.parse: malformed row at line %d" !lineno)
        end
        | _ ->
          if not !header_allowed then
            failwith (Printf.sprintf "Trace.parse: expected two columns at line %d" !lineno));
        header_allowed := false
      end)
    (String.split_on_char '\n' text);
  if !rows = [] then failwith "Trace.parse: no data rows";
  of_points (List.rev !rows)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

let scale t time =
  let n = Array.length t.points in
  if n = 1 then snd t.points.(0)
  else begin
    let xs = Array.map fst t.points and ys = Array.map snd t.points in
    Interp.eval (Interp.create ~xs ~ys) time
  end

let duration t = fst t.points.(Array.length t.points - 1)

let peak t = Array.fold_left (fun acc (_, s) -> Float.max acc s) 0. t.points

let average t =
  let n = Array.length t.points in
  if n = 1 then snd t.points.(0)
  else begin
    let acc = ref 0. in
    for i = 0 to n - 2 do
      let t0, s0 = t.points.(i) and t1, s1 = t.points.(i + 1) in
      acc := !acc +. (0.5 *. (s0 +. s1) *. (t1 -. t0))
    done;
    let span = duration t -. fst t.points.(0) in
    if span <= 0. then snd t.points.(0) else !acc /. span
  end

let square_wave ~period ~duty ~high ~low ~samples =
  if period <= 0. then invalid_arg "Trace.square_wave: period must be positive";
  if duty <= 0. || duty >= 1. then invalid_arg "Trace.square_wave: duty outside (0, 1)";
  if high < 0. || low < 0. then invalid_arg "Trace.square_wave: negative levels";
  if samples < 8 then invalid_arg "Trace.square_wave: need at least 8 samples";
  let eps = period *. 1e-6 in
  let pts = ref [] in
  for cycle = 0 to (samples / 4) - 1 do
    let t0 = float_of_int cycle *. period in
    let t_fall = t0 +. (duty *. period) in
    pts :=
      (t0 +. period -. eps, low)
      :: (t_fall, low)
      :: (t_fall -. eps, high)
      :: (t0, high)
      :: !pts
  done;
  of_points !pts
