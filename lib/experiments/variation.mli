(** Monte-Carlo process-variation study (extension beyond the paper).

    Fabricated TTSVs deviate from their drawn geometry: etch variation
    changes the radius, deposition variation the liner thickness, wafer
    thinning the substrate thickness, and the effective silicon
    conductivity varies with doping and temperature.  This experiment
    samples those variations (independent log-normal factors with
    configurable sigmas), evaluates the closed-form three-plane Model A
    on every sample — the throughput argument for analytical models —
    and reports the Max ΔT distribution and the yield against a thermal
    budget. *)

type tolerances = {
  radius_sigma : float;  (** σ of ln(radius factor), e.g. 0.05 for ~5 % *)
  liner_sigma : float;
  substrate_sigma : float;
  conductivity_sigma : float;  (** silicon conductivity *)
}

val default_tolerances : tolerances
(** 5 % radius, 10 % liner, 5 % substrate, 5 % conductivity. *)

type summary = {
  samples : int;
  mean : float;
  stddev : float;
  p5 : float;
  p50 : float;
  p95 : float;
  p99 : float;
  worst : float;
  yield_at_budget : float;  (** fraction of samples with Max ΔT ≤ budget *)
  budget : float;
}

val run :
  ?seed:int ->
  ?samples:int ->
  ?tolerances:tolerances ->
  ?budget:float ->
  ?pool:Ttsv_parallel.Pool.t ->
  unit ->
  summary
(** [run ()] samples the Fig. 5 midpoint geometry (defaults: seed 42,
    2000 samples, {!default_tolerances}, budget = 1.1 × nominal).
    Deterministic for a fixed seed: samples are drawn sequentially from
    the seeded RNG and only the (independent) model evaluations run over
    [pool], in sample order. *)

val to_table : summary -> Report.table

val print : ?pool:Ttsv_parallel.Pool.t -> Format.formatter -> unit -> unit
