(** Filler-material study (extension beyond the paper).

    The paper fixes the TTSV filler to copper; fabs also use tungsten
    (CMOS-compatible, CTE-matched, but 2.3× less conductive) and
    research has proposed poly-Si plugs.  This experiment swaps the
    filler on the Fig. 5 midpoint block and reports Max ΔT per model,
    plus the radius a worse filler needs to match copper's cooling —
    the trade a technologist actually weighs. *)

val fillers : (string * Ttsv_physics.Material.t) list
(** Copper, tungsten, and poly-silicon (k = 30 W/(m·K)). *)

val run : ?resolution:int -> unit -> Report.table

val equivalent_radius : Ttsv_physics.Material.t -> float
(** [equivalent_radius filler] is the radius (m) at which a via of that
    filler matches the 5 µm copper via's Model A Max ΔT on the Fig. 5
    midpoint block (bisection on the closed form; raises
    [Invalid_argument] if no radius below 20 µm suffices). *)

val print : ?resolution:int -> Format.formatter -> unit -> unit
