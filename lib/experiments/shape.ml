module Params = Ttsv_core.Params
module Model_a = Ttsv_core.Model_a
module Model_b = Ttsv_core.Model_b
module Cluster = Ttsv_core.Cluster
module Stack = Ttsv_geometry.Stack
module Tsv = Ttsv_geometry.Tsv
module Units = Ttsv_physics.Units
module Problem = Ttsv_fem.Problem
module Solver = Ttsv_fem.Solver
module Problem3 = Ttsv_fem.Problem3
module Solver3 = Ttsv_fem.Solver3

let solve3 ?(resolution = 1) ?via_centers stack =
  Solver3.max_rise (Solver3.solve (Problem3.of_stack ~resolution ?via_centers stack))

let cell_shape ?resolution () =
  let stack = Params.fig5_stack (Units.um 1.) in
  let cube = solve3 ?resolution stack in
  let cyl = Solver.max_rise (Solver.solve (Problem.of_stack ~resolution:2 stack)) in
  let coeffs = Reference.block_coefficients () in
  let a = Model_a.max_rise (Model_a.solve ~coeffs stack) in
  let b = Model_b.max_rise (Model_b.solve_n stack 100) in
  let row label v =
    (label, [ Printf.sprintf "%.3f" v; Report.percent (Float.abs (v -. cube) /. cube) ])
  in
  {
    Report.title = "Ablation - square 3-D cell vs equivalent cylinder (Fig. 5 midpoint)";
    columns = [ "Max dT [C]"; "vs 3-D" ];
    rows =
      [
        row "FV 3-D (square cell)" cube;
        row "FV axisym (cylinder)" cyl;
        row "Model A (fitted)" a;
        row "Model B(100)" b;
      ];
  }

let cluster_layout ?resolution ?(divisions = [ 1; 4; 9; 16 ]) () =
  let stack = Params.fig7_stack () in
  let coeffs = Reference.block_coefficients () in
  let of_list f = Array.of_list (List.map f divisions) in
  let eq22 = of_list (fun n -> Model_a.max_rise (Cluster.solve ~coeffs stack n)) in
  let subcell =
    of_list (fun n ->
        let fn = float_of_int n in
        let cell =
          Stack.make ~sink_temperature:stack.Stack.sink_temperature
            ~footprint:(stack.Stack.footprint /. fn)
            ~planes:(Array.to_list stack.Stack.planes)
            ~tsv:(Tsv.divide stack.Stack.tsv n) ()
        in
        Solver.max_rise (Solver.solve (Problem.of_stack ~resolution:2 cell)))
  in
  let true_cluster =
    of_list (fun n ->
        let divided = Stack.with_tsv stack (Tsv.divide stack.Stack.tsv n) in
        let centers = Problem3.grid_centers_for_cluster divided n in
        solve3 ?resolution ~via_centers:centers divided)
  in
  Report.figure
    ~title:"Ablation - Fig. 7 with the true cluster layout (3-D) vs approximations"
    ~x_label:"n TTSVs" ~x_unit:"-"
    ~xs:(Array.of_list (List.map float_of_int divisions))
    [
      { Report.label = "eq. 22 (Model A)"; ys = eq22 };
      { Report.label = "FV subcell approx"; ys = subcell };
      { Report.label = "FV 3-D true layout"; ys = true_cluster };
    ]

let print ?resolution ppf () =
  Format.fprintf ppf "@[<v>";
  Report.print_table ppf (cell_shape ?resolution ());
  let fig = cluster_layout ?resolution () in
  Report.print_figure ppf fig;
  Format.fprintf ppf "@,Error vs the 3-D true-layout reference:@,";
  Report.print_errors ppf (Report.errors_vs ~reference:"FV 3-D true layout" fig);
  Format.fprintf ppf "@]@."
