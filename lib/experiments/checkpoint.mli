(** JSONL checkpoint files for resumable sweeps.

    A checkpoint records every completed sweep point as one JSON line
    (append-only, flushed per record), so a killed run can restart with
    [--resume] and recompute only the unfinished points.  The format:

    {[ {"v":"ttsv.checkpoint.v1","stage":"fig5.fv","i":3,"value":...} ]}

    [stage] namespaces the sweeps sharing one file (a figure runs
    several); [i] is the point's index in its sweep; [value] is the
    sweep's own encoding of the result.  Floats round-trip bitwise
    through the {!Ttsv_obs.Json} printer/parser, so a resumed run's
    final artefacts are byte-identical to an uninterrupted run's.  On
    {!open_} with [resume], torn or foreign lines (a kill mid-write)
    are skipped silently — those points are simply recomputed.

    Thread-safe: sweep points record from whichever pool domain ran
    them. *)

type t

val open_ : ?resume:bool -> string -> t
(** [open_ path] creates/truncates the checkpoint file; with
    [~resume:true] it first loads every valid record already present
    and then appends.  Raises [Sys_error] when the path is not
    writable. *)

val close : t -> unit
val with_file : ?resume:bool -> string -> (t -> 'a) -> 'a
val path : t -> string

val completed_count : t -> int
(** Records currently held (loaded + written), across all stages. *)

val find : t -> stage:string -> int -> Ttsv_obs.Json.t option
(** The recorded value of point [i] of [stage], if completed. *)

val record : t -> stage:string -> int -> Ttsv_obs.Json.t -> unit
(** Append one completed point and flush — durable the moment it
    returns. *)
