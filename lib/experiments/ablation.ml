module Params = Ttsv_core.Params
module Model_a = Ttsv_core.Model_a
module Cluster = Ttsv_core.Cluster
module Coefficients = Ttsv_core.Coefficients
module Units = Ttsv_physics.Units

let coefficients ?resolution () =
  let stacks = List.map (fun tl -> Params.fig5_stack (Units.um tl)) Fig5.liners_um in
  let of_list f = Array.of_list (List.map f stacks) in
  let with_coeffs coeffs = of_list (fun s -> Model_a.max_rise (Model_a.solve ~coeffs s)) in
  let fv = of_list (Reference.max_rise ?resolution) in
  Report.figure ~title:"Ablation - Model A fitting coefficients (Fig. 5 sweep)" ~x_label:"t_L"
    ~x_unit:"um"
    ~xs:(Array.of_list Fig5.liners_um)
    [
      { Report.label = "A (fitted)"; ys = with_coeffs (Reference.block_coefficients ()) };
      { Report.label = "A (paper k)"; ys = with_coeffs Coefficients.paper_block };
      { Report.label = "A (k1=k2=1)"; ys = with_coeffs Coefficients.unity };
      { Report.label = "FV"; ys = fv };
    ]

let cluster () =
  let stack = Params.fig7_stack () in
  let coeffs = Reference.block_coefficients () in
  let of_list f = Array.of_list (List.map f Fig7.divisions) in
  Report.figure ~title:"Ablation - eq. 22 cluster model vs first-principles recomputation"
    ~x_label:"n TTSVs" ~x_unit:"-"
    ~xs:(Array.of_list (List.map float_of_int Fig7.divisions))
    [
      {
        Report.label = "eq. 22";
        ys = of_list (fun n -> Model_a.max_rise (Cluster.solve ~coeffs stack n));
      };
      {
        Report.label = "first-principles";
        ys = of_list (fun n -> Model_a.max_rise (Cluster.solve_naive ~coeffs stack n));
      };
    ]

let print ?resolution ppf () =
  let fig = coefficients ?resolution () in
  Format.fprintf ppf "@[<v>";
  Report.print_figure ppf fig;
  Format.fprintf ppf "@,Error vs FV reference:@,";
  Report.print_errors ppf (Report.errors_vs ~reference:"FV" fig);
  Report.print_figure ppf (cluster ());
  Format.fprintf ppf "@]@."
