module Params = Ttsv_core.Params
module Model_a = Ttsv_core.Model_a
module Model_b = Ttsv_core.Model_b
module Model_1d = Ttsv_core.Model_1d
module Coefficients = Ttsv_core.Coefficients
module Stats = Ttsv_numerics.Stats
module Units = Ttsv_physics.Units

type row = { label : string; max_err : float; avg_err : float; time_ms : float option }

let run_body ?resolution () =
  let stacks = List.map (fun tl -> Params.fig5_stack (Units.um tl)) Fig5.liners_um in
  let fv = Array.of_list (List.map (Reference.max_rise ?resolution) stacks) in
  let timed label f =
    let solve_all () = Array.of_list (List.map f stacks) in
    let m = Timing.measure solve_all in
    {
      label;
      max_err = Stats.max_rel_error m.Timing.result fv;
      avg_err = Stats.mean_rel_error m.Timing.result fv;
      time_ms = Some (m.Timing.median_ms /. float_of_int (List.length stacks));
    }
  in
  let b_rows =
    List.map
      (fun n ->
        timed (Printf.sprintf "B (%d)" n) (fun s -> Model_b.max_rise (Model_b.solve_n s n)))
      Fig5.segment_counts
  in
  let coeffs = Reference.block_coefficients () in
  let a_fit = timed "A (fitted)" (fun s -> Model_a.max_rise (Model_a.solve ~coeffs s)) in
  let a_paper =
    timed "A (paper k)" (fun s ->
        Model_a.max_rise (Model_a.solve ~coeffs:Coefficients.paper_block s))
  in
  let one_d = timed "1-D" (fun s -> Model_1d.max_rise (Model_1d.solve s)) in
  b_rows @ [ a_fit; a_paper; one_d ]

let run ?resolution () =
  Ttsv_obs.Span.with_ ~name:"experiment.table1" (fun () -> run_body ?resolution ())

let to_table rows =
  {
    Report.title = "Table I - error and run time vs # of segments in Model B";
    columns = [ "Max. Error"; "Av. Error"; "Time [ms]" ];
    rows =
      List.map
        (fun r ->
          ( r.label,
            [
              Report.percent r.max_err;
              Report.percent r.avg_err;
              (match r.time_ms with Some ms -> Printf.sprintf "%.2f" ms | None -> "-");
            ] ))
        rows;
  }

let print ?resolution ppf () =
  Format.fprintf ppf "@[<v>";
  Report.print_table ppf (to_table (run ?resolution ()));
  Format.fprintf ppf "@]@."
