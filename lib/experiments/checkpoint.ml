module Json = Ttsv_obs.Json

let version = "ttsv.checkpoint.v1"

type t = {
  path : string;
  completed : (string * int, Json.t) Hashtbl.t;
  oc : out_channel;
  m : Mutex.t;  (* sweep points record from whichever domain ran them *)
}

(* A record per completed point.  [value] is whatever the sweep's encoder
   produced; floats inside survive bitwise (the printer emits %.17g and
   the parser reads it back exactly), which is what makes a resumed run's
   artefacts identical to an uninterrupted one. *)
let line ~stage ~index value =
  Json.to_string
    (Json.Obj
       [
         ("v", Json.String version);
         ("stage", Json.String stage);
         ("i", Json.Int index);
         ("value", value);
       ])

(* Read back whatever records survive in an interrupted file.  A torn
   final line (the process was killed mid-write) or any foreign line is
   skipped, not fatal: the point is simply recomputed. *)
let read_completed path =
  let tbl = Hashtbl.create 64 in
  if Sys.file_exists path then begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try
          while true do
            let l = input_line ic in
            match Json.parse l with
            | Error _ -> ()
            | Ok j -> (
              match
                ( Option.bind (Json.member "v" j) Json.to_string_opt,
                  Option.bind (Json.member "stage" j) Json.to_string_opt,
                  Option.bind (Json.member "i" j) Json.to_int_opt,
                  Json.member "value" j )
              with
              | Some v, Some stage, Some i, Some value when v = version ->
                Hashtbl.replace tbl (stage, i) value
              | _ -> ())
          done
        with End_of_file -> ())
  end;
  tbl

let open_ ?(resume = false) path =
  let completed = if resume then read_completed path else Hashtbl.create 64 in
  let oc =
    open_out_gen
      (if resume then [ Open_append; Open_creat ] else [ Open_trunc; Open_creat; Open_wronly ])
      0o644 path
  in
  { path; completed; oc; m = Mutex.create () }

let close t = close_out_noerr t.oc
let path t = t.path

let with_file ?resume path f =
  let t = open_ ?resume path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let completed_count t = Hashtbl.length t.completed

let find t ~stage index =
  Mutex.protect t.m (fun () -> Hashtbl.find_opt t.completed (stage, index))

(* Flush per record: the whole point is surviving a kill at an arbitrary
   instant, so a completed point must be durable the moment it returns. *)
let record t ~stage index value =
  Mutex.protect t.m (fun () ->
      Hashtbl.replace t.completed (stage, index) value;
      output_string t.oc (line ~stage ~index value);
      output_char t.oc '\n';
      flush t.oc)
