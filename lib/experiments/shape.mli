(** Cell-shape and cluster-layout ablations with the 3-D Cartesian solver.

    The axisymmetric reference maps the paper's square unit cell to an
    area-equivalent cylinder (the substitution documented in DESIGN.md).
    These experiments quantify that substitution with the 3-D solver,
    which keeps the square cell and the true via layout:

    1. {b cell shape} — Max ΔT of the Fig. 5 midpoint geometry: square
       3-D cell vs. equivalent cylinder vs. the analytical models;
    2. {b cluster layout} — Fig. 7's division series with the actual
       √n × √n via array in one square cell (what the paper's FEM
       solved) vs. the axisymmetric 1/n-sub-cell approximation vs. the
       eq. 22 analytical model. *)

val cell_shape : ?resolution:int -> unit -> Report.table
(** One row per solver/model with Max ΔT and the deviation from the 3-D
    square-cell solution. *)

val cluster_layout : ?resolution:int -> ?divisions:int list -> unit -> Report.figure
(** The Fig. 7 series (default divisions 1, 4, 9, 16 — perfect squares,
    as the 3-D layout requires). *)

val print : ?resolution:int -> Format.formatter -> unit -> unit
