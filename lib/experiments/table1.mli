(** Table I — error and runtime vs. number of segments in Model B.

    Over the Fig. 5 liner sweep, reports for Model B(1), B(20), B(100),
    B(500), Model A (both fitted and paper coefficients) and the 1-D
    model: the maximum and average relative error against the FV
    reference and the median solve time in milliseconds.

    Expected shape (paper's Table I): Model B's error falls
    monotonically with the segment count while its runtime grows; Model
    A sits near the best Model B at negligible cost; the 1-D model is
    the least accurate. *)

type row = {
  label : string;
  max_err : float;
  avg_err : float;
  time_ms : float option;  (** [None] for the FV reference row *)
}

val run : ?resolution:int -> unit -> row list

val to_table : row list -> Report.table

val print : ?resolution:int -> Format.formatter -> unit -> unit
