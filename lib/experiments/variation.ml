module Params = Ttsv_core.Params
module Closed_form = Ttsv_core.Closed_form
module Stack = Ttsv_geometry.Stack
module Plane = Ttsv_geometry.Plane
module Tsv = Ttsv_geometry.Tsv
module Material = Ttsv_physics.Material
module Units = Ttsv_physics.Units
module Rng = Ttsv_numerics.Rng
module Stats = Ttsv_numerics.Stats

type tolerances = {
  radius_sigma : float;
  liner_sigma : float;
  substrate_sigma : float;
  conductivity_sigma : float;
}

let default_tolerances =
  { radius_sigma = 0.05; liner_sigma = 0.10; substrate_sigma = 0.05; conductivity_sigma = 0.05 }

type summary = {
  samples : int;
  mean : float;
  stddev : float;
  p5 : float;
  p50 : float;
  p95 : float;
  p99 : float;
  worst : float;
  yield_at_budget : float;
  budget : float;
}

let sample_stack rng tol =
  let f sigma = Rng.lognormal_factor rng ~sigma in
  let r = Units.um 5. *. f tol.radius_sigma in
  let t_liner = Units.um 1. *. f tol.liner_sigma in
  let t_si23 = Units.um 45. *. f tol.substrate_sigma in
  let k_si = 150. *. f tol.conductivity_sigma in
  let stack = Params.block ~r ~t_liner ~t_ild:(Units.um 7.) ~t_si23 () in
  (* swap the substrate material for the perturbed-conductivity silicon *)
  Stack.map_planes stack (fun _ p ->
      { p with Plane.substrate = Material.with_conductivity p.Plane.substrate k_si })

let run_body ?(seed = 42) ?(samples = 2000) ?(tolerances = default_tolerances) ?budget ?pool
    () =
  if samples < 2 then invalid_arg "Variation.run: need at least two samples";
  let rng = Rng.create seed in
  let nominal =
    Closed_form.max_rise (Closed_form.of_stack ~coeffs:Params.block_coeffs (Params.fig5_stack (Units.um 1.)))
  in
  let budget = match budget with Some b -> b | None -> 1.1 *. nominal in
  (* the RNG is stateful: draw every sample sequentially, then evaluate
     the (independent) rises over the pool in sample order *)
  let stacks = Array.init samples (fun _ -> sample_stack rng tolerances) in
  let rises =
    Sweep.map_array ?pool
      (fun stack -> Closed_form.max_rise (Closed_form.of_stack ~coeffs:Params.block_coeffs stack))
      stacks
  in
  let within = Array.fold_left (fun acc r -> if r <= budget then acc + 1 else acc) 0 rises in
  {
    samples;
    mean = Ttsv_numerics.Vec.mean rises;
    stddev = Stats.stddev rises;
    p5 = Stats.percentile 5. rises;
    p50 = Stats.percentile 50. rises;
    p95 = Stats.percentile 95. rises;
    p99 = Stats.percentile 99. rises;
    worst = Ttsv_numerics.Vec.max_elt rises;
    yield_at_budget = float_of_int within /. float_of_int samples;
    budget;
  }

let run ?seed ?samples ?tolerances ?budget ?pool () =
  Ttsv_obs.Span.with_ ~name:"experiment.variation" (fun () ->
      run_body ?seed ?samples ?tolerances ?budget ?pool ())

let to_table s =
  let f = Printf.sprintf "%.3f" in
  {
    Report.title =
      Printf.sprintf "Process variation - Max dT [C] over %d Monte-Carlo samples" s.samples;
    columns = [ "value" ];
    rows =
      [
        ("mean", [ f s.mean ]);
        ("std dev", [ f s.stddev ]);
        ("p5", [ f s.p5 ]);
        ("median", [ f s.p50 ]);
        ("p95", [ f s.p95 ]);
        ("p99", [ f s.p99 ]);
        ("worst", [ f s.worst ]);
        ( Printf.sprintf "yield at %.2f C" s.budget,
          [ Printf.sprintf "%.1f%%" (100. *. s.yield_at_budget) ] );
      ];
  }

let print ?pool ppf () =
  Format.fprintf ppf "@[<v>";
  Report.print_table ppf (to_table (run ?pool ()));
  Format.fprintf ppf
    "@,each sample is one closed-form Model A evaluation: the Monte-Carlo@,\
     study costs less than a single FEM run, the paper's core argument.@]@."
