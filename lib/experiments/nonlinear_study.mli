(** Temperature-dependent-conductivity study (extension beyond the paper).

    The paper (like most compact-model work) freezes every conductivity;
    but silicon's k falls as ≈ T^(−4/3), so a stack running 40 K hot
    conducts measurably worse than its 300 K datasheet value suggests.
    This experiment swaps the substrates for
    {!Ttsv_physics.Materials.silicon_k_of_t} and compares, on the Fig. 5
    midpoint block at 1× and 2× power:

    - linear Model A / FV (k at the 300 K value),
    - nonlinear Model A / FV (Picard-converged k(T)),

    reporting the self-heating penalty each solver sees and the Picard
    sweep counts.  Expected: a few percent at 1× power, growing
    superlinearly with power, with Model A and FV agreeing on the
    penalty. *)

val run : ?resolution:int -> unit -> Report.table

val penalties : ?resolution:int -> unit -> (float * float * float) list
(** [(power_scale, model_a_penalty, fv_penalty)] rows, penalties as
    fractions (e.g. 0.04 = the nonlinear rise is 4 % above linear). *)

val print : ?resolution:int -> Format.formatter -> unit -> unit
