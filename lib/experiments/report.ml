module Stats = Ttsv_numerics.Stats

type series = { label : string; ys : float array }

type figure = {
  title : string;
  x_label : string;
  x_unit : string;
  xs : float array;
  series : series list;
}

let figure ~title ~x_label ~x_unit ~xs series =
  List.iter
    (fun s ->
      if Array.length s.ys <> Array.length xs then
        invalid_arg
          (Printf.sprintf "Report.figure: series %S has %d points, expected %d" s.label
             (Array.length s.ys) (Array.length xs)))
    series;
  { title; x_label; x_unit; xs; series }

let pad width s =
  let n = String.length s in
  if n >= width then s else String.make (width - n) ' ' ^ s

let heading ppf title =
  Format.fprintf ppf "@,%s@,%s@," title (String.make (String.length title) '-')

let print_figure ppf fig =
  heading ppf fig.title;
  let xcol = Printf.sprintf "%s [%s]" fig.x_label fig.x_unit in
  let width = Stdlib.max 12 (String.length xcol + 2) in
  let cell_width s = Stdlib.max 12 (String.length s + 2) in
  Format.fprintf ppf "%s" (pad width xcol);
  List.iter (fun s -> Format.fprintf ppf "%s" (pad (cell_width s.label) s.label)) fig.series;
  Format.fprintf ppf "@,";
  Array.iteri
    (fun i x ->
      Format.fprintf ppf "%s" (pad width (Printf.sprintf "%.4g" x));
      List.iter
        (fun s ->
          Format.fprintf ppf "%s" (pad (cell_width s.label) (Printf.sprintf "%.3f" s.ys.(i))))
        fig.series;
      Format.fprintf ppf "@,")
    fig.xs

type error_row = { model : string; max_rel : float; mean_rel : float }

let errors_vs ~reference fig =
  let ref_series =
    match List.find_opt (fun s -> String.equal s.label reference) fig.series with
    | Some s -> s
    | None -> raise Not_found
  in
  List.filter_map
    (fun s ->
      if String.equal s.label reference then None
      else
        Some
          {
            model = s.label;
            max_rel = Stats.max_rel_error s.ys ref_series.ys;
            mean_rel = Stats.mean_rel_error s.ys ref_series.ys;
          })
    fig.series

let percent x = Printf.sprintf "%.1f%%" (100. *. x)

let print_errors ppf rows =
  List.iter
    (fun { model; max_rel; mean_rel } ->
      Format.fprintf ppf "%-22s max %-8s avg %s@," model (percent max_rel) (percent mean_rel))
    rows

type table = { title : string; columns : string list; rows : (string * string list) list }

let print_table ppf t =
  heading ppf t.title;
  let first_width =
    List.fold_left (fun acc (label, _) -> Stdlib.max acc (String.length label)) 8 t.rows + 2
  in
  let widths = List.map (fun c -> Stdlib.max 10 (String.length c + 2)) t.columns in
  Format.fprintf ppf "%s" (pad first_width "");
  List.iter2 (fun c w -> Format.fprintf ppf "%s" (pad w c)) t.columns widths;
  Format.fprintf ppf "@,";
  List.iter
    (fun (label, cells) ->
      Format.fprintf ppf "%s" (pad first_width label);
      (try List.iter2 (fun cell w -> Format.fprintf ppf "%s" (pad w cell)) cells widths
       with Invalid_argument _ -> invalid_arg "Report.print_table: ragged row");
      Format.fprintf ppf "@,")
    t.rows
