(** Convergence ablations.

    1. {b Model B segment count} — Max ΔT of B(n) for n from 1 to 500 at
       the Fig. 5 midpoint, against the FV reference: the finer version
       of Table I's accuracy column, demonstrating monotone convergence
       of the π-segment ladder.
    2. {b FV mesh} — Max ΔT of the FV reference at increasing mesh
       resolution on the same geometry: evidence that the reference the
       error tables use (resolution 2) is mesh-converged. *)

val segment_counts : int list

val resolutions : int list

val model_b_convergence : ?resolution:int -> unit -> Report.figure
(** Segment-count convergence (the FV reference is a flat line). *)

val fv_mesh_convergence : unit -> (int * int * float) list
(** [(resolution, cells, max ΔT)] per mesh level. *)

val print : ?resolution:int -> Format.formatter -> unit -> unit
