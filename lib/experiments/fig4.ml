module Params = Ttsv_core.Params
module Model_a = Ttsv_core.Model_a
module Model_b = Ttsv_core.Model_b
module Model_1d = Ttsv_core.Model_1d
module Units = Ttsv_physics.Units

let radii_um = [ 1.; 2.; 3.; 4.; 5.; 6.; 8.; 10.; 12.; 14.; 16.; 18.; 20. ]

let run_body ?resolution ?pool () =
  let coeffs = Reference.block_coefficients () in
  let stacks = List.map (fun r -> Params.fig4_stack (Units.um r)) radii_um in
  let of_list f = Sweep.map ?pool f stacks in
  let model_a = of_list (fun s -> Model_a.max_rise (Model_a.solve ~coeffs s)) in
  let model_b = of_list (fun s -> Model_b.max_rise (Model_b.solve_n s 100)) in
  let model_1d = of_list (fun s -> Model_1d.max_rise (Model_1d.solve s)) in
  let fv = of_list (Reference.max_rise ?resolution) in
  Report.figure ~title:"Fig. 4 - Max dT [C] vs TTSV radius" ~x_label:"radius" ~x_unit:"um"
    ~xs:(Array.of_list radii_um)
    [
      { Report.label = "Model A"; ys = model_a };
      { Report.label = "Model B(100)"; ys = model_b };
      { Report.label = "Model 1D"; ys = model_1d };
      { Report.label = "FV"; ys = fv };
    ]

let run ?resolution ?pool () =
  Ttsv_obs.Span.with_ ~name:"experiment.fig4" (fun () -> run_body ?resolution ?pool ())

let print ?resolution ?pool ppf () =
  let fig = run ?resolution ?pool () in
  Format.fprintf ppf "@[<v>";
  Report.print_figure ppf fig;
  Format.fprintf ppf "@,Error vs FV reference:@,";
  Report.print_errors ppf (Report.errors_vs ~reference:"FV" fig);
  Format.fprintf ppf "@]@.";
  Ascii_plot.print ppf fig
