(** Thermal through-silicon via geometry.

    A TTSV is a cylindrical metal filler of radius [r] wrapped in a
    dielectric liner of thickness [t_L]; in the first plane it extends a
    distance [l_ext] below the ILD into the silicon substrate (the paper's
    Fig. 1/2 structure). *)

type t = {
  radius : float;  (** filler radius r, m *)
  liner_thickness : float;  (** liner thickness t_L, m *)
  extension : float;  (** first-plane extension into the substrate l_ext, m *)
  filler : Ttsv_physics.Material.t;  (** filler material, e.g. copper *)
  liner : Ttsv_physics.Material.t;  (** liner material, e.g. SiO₂ *)
}

val make :
  ?filler:Ttsv_physics.Material.t ->
  ?liner:Ttsv_physics.Material.t ->
  ?extension:float ->
  radius:float ->
  liner_thickness:float ->
  unit ->
  t
(** [make ~radius ~liner_thickness ()] builds a TTSV with copper filler and
    SiO₂ liner by default, [extension] defaulting to 0.  All lengths are in
    metres; [radius] and [liner_thickness] must be positive and
    [extension] nonnegative ([Invalid_argument] otherwise). *)

val outer_radius : t -> float
(** [outer_radius t] is [radius + liner_thickness]. *)

val fill_area : t -> float
(** [fill_area t] is the metal cross-section π·r². *)

val occupied_area : t -> float
(** [occupied_area t] is π·(r + t_L)² — the silicon area displaced by the
    TTSV including its liner (the paper's A = A₀ − π(r + t_L)²
    correction). *)

val with_radius : t -> float -> t
(** [with_radius t r] updates the radius (for sweeps). *)

val with_liner_thickness : t -> float -> t
(** [with_liner_thickness t tl] updates the liner thickness. *)

val divide : t -> int -> t
(** [divide t n] is the equal-metal-area division of §IV-D: one TTSV of
    radius r₀ becomes [n] TTSVs of radius r₀/√n, same liner thickness.
    Requires [n >= 1]. *)

val aspect_ratio : t -> float -> float
(** [aspect_ratio t length] is [length / (2·radius)], the via aspect
    ratio the paper bounds by fabrication (typically ≤ 10). *)

val pp : Format.formatter -> t -> unit
