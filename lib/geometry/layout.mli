(** Via-array layouts.

    Generators for the placement patterns TSV arrays use — regular grids,
    hexagonal packings, rings — together with the spacing checks a
    design-rule deck would impose.  Coordinates are (x, y) pairs in metres
    relative to the cell's lower-left corner; the 3-D solver
    ({!Ttsv_fem.Problem3}) consumes them directly. *)

val square_grid : side:float -> rows:int -> cols:int -> (float * float) list
(** [square_grid ~side ~rows ~cols] centres a rows × cols array in the
    [side × side] cell, one via per equal sub-cell (the Fig. 7 cluster
    layout when rows = cols = √n). *)

val hexagonal : side:float -> pitch:float -> (float * float) list
(** [hexagonal ~side ~pitch] fills the cell with a triangular-lattice
    packing of the given pitch (rows offset by pitch/2, row spacing
    pitch·√3/2), keeping a pitch/2 margin to every edge.  The densest
    packing for a given minimum spacing. *)

val ring : side:float -> count:int -> radius:float -> (float * float) list
(** [ring ~side ~count ~radius] places [count] vias evenly on a circle
    around the cell centre — the guard-ring pattern power TSVs use.
    Requires the circle to fit in the cell. *)

val min_pitch : (float * float) list -> float
(** Smallest pairwise centre-to-centre distance ([infinity] for fewer
    than two vias). *)

val fits : side:float -> margin:float -> (float * float) list -> bool
(** Whether every centre keeps at least [margin] to every cell edge. *)

val spacing_ok : min_spacing:float -> (float * float) list -> bool
(** Whether {!min_pitch} is at least [min_spacing] — the DRC check. *)
