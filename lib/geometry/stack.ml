type t = {
  footprint : float;
  planes : Plane.t array;
  tsv : Tsv.t;
  sink_temperature : float;
}

let validate s =
  if s.footprint <= 0. then invalid_arg "Stack.make: footprint must be positive";
  let n = Array.length s.planes in
  if n = 0 then invalid_arg "Stack.make: at least one plane required";
  if s.planes.(0).Plane.t_bond <> 0. then
    invalid_arg "Stack.make: the first plane must have no bonding layer below it";
  for i = 1 to n - 1 do
    if s.planes.(i).Plane.t_bond <= 0. then
      invalid_arg "Stack.make: planes above the first need a positive bond thickness"
  done;
  if s.tsv.Tsv.extension >= s.planes.(0).Plane.t_substrate then
    invalid_arg "Stack.make: TSV extension exceeds the first substrate thickness";
  if Tsv.occupied_area s.tsv >= s.footprint then
    invalid_arg "Stack.make: TTSV (incl. liner) does not fit in the footprint";
  s

let make ?(sink_temperature = 27.) ~footprint ~planes ~tsv () =
  validate { footprint; planes = Array.of_list planes; tsv; sink_temperature }

let num_planes s = Array.length s.planes
let plane s i = s.planes.(i)
let silicon_area s = s.footprint -. Tsv.occupied_area s.tsv

let total_height s = Array.fold_left (fun acc p -> acc +. Plane.height p) 0. s.planes

(* The TTSV displaces active devices in every substrate it crosses (all of
   them) and interconnects in every ILD it crosses (all but the top one). *)
let heat_inputs s =
  let n = Array.length s.planes in
  let free = silicon_area s in
  Array.mapi
    (fun i p ->
      let ild_area = if i = n - 1 then s.footprint else free in
      Plane.heat_input p ~device_area:free ~ild_area)
    s.planes

let total_heat s = Ttsv_numerics.Vec.sum (heat_inputs s)

(* The TSV spans from l_ext below the top of substrate 1 up through every
   plane to the top of the last substrate (it does not cross the last ILD,
   cf. eq. 14 where R8 covers only t_Si3 + t_b). *)
let tsv_length s =
  let n = Array.length s.planes in
  let acc = ref (s.tsv.Tsv.extension +. s.planes.(0).Plane.t_ild) in
  for i = 1 to n - 1 do
    let p = s.planes.(i) in
    acc := !acc +. p.Plane.t_bond +. p.Plane.t_substrate;
    if i < n - 1 then acc := !acc +. p.Plane.t_ild
  done;
  !acc

let with_tsv s tsv = validate { s with tsv }

let map_planes s f = validate { s with planes = Array.mapi f s.planes }

let cells_for_density ~footprint_total ~density ~tsv =
  if footprint_total <= 0. then invalid_arg "Stack.cells_for_density: footprint must be positive";
  if density <= 0. || density >= 1. then
    invalid_arg "Stack.cells_for_density: density must be in (0, 1)";
  let per_tsv = Tsv.fill_area tsv in
  let count = int_of_float (Float.round (footprint_total *. density /. per_tsv)) in
  let count = Stdlib.max count 1 in
  (count, footprint_total /. float_of_int count)

let pp ppf s =
  Format.fprintf ppf "@[<v>stack: %d planes, A0=%.4g mm^2, sink %.1f degC@,%a@,@[<v>%a@]@]"
    (num_planes s)
    (s.footprint *. 1e6)
    s.sink_temperature Tsv.pp s.tsv
    (Format.pp_print_list Plane.pp)
    (Array.to_list s.planes)
