type t = {
  radius : float;
  liner_thickness : float;
  extension : float;
  filler : Ttsv_physics.Material.t;
  liner : Ttsv_physics.Material.t;
}

let make ?(filler = Ttsv_physics.Materials.copper) ?(liner = Ttsv_physics.Materials.silicon_dioxide)
    ?(extension = 0.) ~radius ~liner_thickness () =
  if radius <= 0. then invalid_arg "Tsv.make: radius must be positive";
  if liner_thickness <= 0. then invalid_arg "Tsv.make: liner thickness must be positive";
  if extension < 0. then invalid_arg "Tsv.make: extension must be nonnegative";
  { radius; liner_thickness; extension; filler; liner }

let outer_radius t = t.radius +. t.liner_thickness
let fill_area t = Float.pi *. t.radius *. t.radius

let occupied_area t =
  let ro = outer_radius t in
  Float.pi *. ro *. ro

let with_radius t radius =
  if radius <= 0. then invalid_arg "Tsv.with_radius: radius must be positive";
  { t with radius }

let with_liner_thickness t liner_thickness =
  if liner_thickness <= 0. then
    invalid_arg "Tsv.with_liner_thickness: liner thickness must be positive";
  { t with liner_thickness }

let divide t n =
  if n < 1 then invalid_arg "Tsv.divide: need n >= 1";
  { t with radius = t.radius /. sqrt (float_of_int n) }

let aspect_ratio t length = length /. (2. *. t.radius)

let pp ppf t =
  Format.fprintf ppf "TTSV r=%a, liner %a (%s in %s), l_ext=%a" Ttsv_physics.Units.pp_length_um
    t.radius Ttsv_physics.Units.pp_length_um t.liner_thickness t.filler.Ttsv_physics.Material.name
    t.liner.Ttsv_physics.Material.name Ttsv_physics.Units.pp_length_um t.extension
