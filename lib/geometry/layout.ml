let square_grid ~side ~rows ~cols =
  if side <= 0. then invalid_arg "Layout.square_grid: side must be positive";
  if rows < 1 || cols < 1 then invalid_arg "Layout.square_grid: rows and cols must be positive";
  List.concat
    (List.init rows (fun r ->
         List.init cols (fun c ->
             ( side *. (float_of_int c +. 0.5) /. float_of_int cols,
               side *. (float_of_int r +. 0.5) /. float_of_int rows ))))

let hexagonal ~side ~pitch =
  if side <= 0. then invalid_arg "Layout.hexagonal: side must be positive";
  if pitch <= 0. then invalid_arg "Layout.hexagonal: pitch must be positive";
  let margin = pitch /. 2. in
  let row_spacing = pitch *. sqrt 3. /. 2. in
  let rec rows y row acc =
    if y > side -. margin then acc
    else begin
      let x0 = margin +. (if row mod 2 = 1 then pitch /. 2. else 0.) in
      let rec cols x acc = if x > side -. margin then acc else cols (x +. pitch) ((x, y) :: acc) in
      rows (y +. row_spacing) (row + 1) (cols x0 acc)
    end
  in
  List.rev (rows margin 0 [])

let ring ~side ~count ~radius =
  if side <= 0. then invalid_arg "Layout.ring: side must be positive";
  if count < 1 then invalid_arg "Layout.ring: count must be positive";
  if radius <= 0. || radius >= side /. 2. then
    invalid_arg "Layout.ring: circle must fit inside the cell";
  let c = side /. 2. in
  List.init count (fun i ->
      let theta = 2. *. Float.pi *. float_of_int i /. float_of_int count in
      (c +. (radius *. cos theta), c +. (radius *. sin theta)))

let min_pitch centers =
  let rec pairwise acc = function
    | [] -> acc
    | (x1, y1) :: rest ->
      let acc =
        List.fold_left
          (fun acc (x2, y2) -> Float.min acc (Float.hypot (x1 -. x2) (y1 -. y2)))
          acc rest
      in
      pairwise acc rest
  in
  pairwise Float.infinity centers

let fits ~side ~margin centers =
  List.for_all
    (fun (x, y) ->
      x >= margin && x <= side -. margin && y >= margin && y <= side -. margin)
    centers

let spacing_ok ~min_spacing centers = min_pitch centers >= min_spacing
