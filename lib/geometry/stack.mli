(** An N-plane 3-D IC stack with a single (representative) TTSV.

    The stack describes the unit cell the paper analyzes: a footprint of
    area A₀ containing one TTSV, with plane 1 adjacent to the heat sink at
    its bottom surface (the temperature reference).  Multi-TTSV circuits
    are analyzed by tiling unit cells ({!cells_for_density}) or through
    the cluster model in {!Ttsv_core.Cluster}. *)

type t = {
  footprint : float;  (** unit-cell footprint area A₀, m² *)
  planes : Plane.t array;  (** plane 1 (index 0) is adjacent to the heat sink *)
  tsv : Tsv.t;
  sink_temperature : float;  (** heat-sink (bottom-surface) temperature, °C; reference only *)
}

val make :
  ?sink_temperature:float -> footprint:float -> planes:Plane.t list -> tsv:Tsv.t -> unit -> t
(** [make ~footprint ~planes ~tsv ()] validates and builds a stack:
    at least one plane; the first plane must have [t_bond = 0] and a
    substrate deep enough for the TSV extension; every other plane needs
    [t_bond > 0]; the TSV (with liner) must fit inside the footprint.
    [sink_temperature] defaults to 27 °C as in the paper.
    Raises [Invalid_argument] when a constraint fails. *)

val num_planes : t -> int

val plane : t -> int -> Plane.t
(** [plane s i] is the [i]-th plane, 0-based from the heat sink. *)

val silicon_area : t -> float
(** [silicon_area s] is A = A₀ − π(r + t_L)², the substrate area next to
    the TTSV (paper eq. 7). *)

val total_height : t -> float
(** Sum of all plane heights. *)

val heat_inputs : t -> Ttsv_numerics.Vec.t
(** [heat_inputs s] is the per-plane heat vector [q_i] in watts over the
    unit-cell footprint (device + ILD heat, paper's q₁…q_N).  Devices are
    displaced by the TTSV in every plane ([silicon_area] generates device
    heat) and interconnects in every ILD the TTSV crosses (all but the
    top plane's). *)

val total_heat : t -> float
(** Sum of {!heat_inputs}. *)

val tsv_length : t -> float
(** Full TTSV length: from [l_ext] below the first plane's ILD to the top
    of the last substrate (the span the resistances R₂/R₅/R₈ cover). *)

val with_tsv : t -> Tsv.t -> t
(** Replaces the TTSV, re-validating. *)

val map_planes : t -> (int -> Plane.t -> Plane.t) -> t
(** [map_planes s f] rebuilds the stack with planes [f i p]. *)

val cells_for_density : footprint_total:float -> density:float -> tsv:Tsv.t -> int * float
(** [cells_for_density ~footprint_total ~density ~tsv] sizes a uniform
    TTSV array: given a full-circuit footprint and a TTSV area density
    (e.g. 0.005 for the paper's 0.5 %), returns [(count, cell_area)] such
    that [count] TTSVs at one per cell of area [cell_area] tile the
    circuit with that metal density.  Raises [Invalid_argument] for
    nonpositive inputs or densities ≥ 1. *)

val pp : Format.formatter -> t -> unit
