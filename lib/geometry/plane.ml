type t = {
  t_substrate : float;
  t_ild : float;
  t_bond : float;
  t_device : float;
  substrate : Ttsv_physics.Material.t;
  ild : Ttsv_physics.Material.t;
  bond : Ttsv_physics.Material.t;
  device_power_density : float;
  ild_power_density : float;
}

let make ?(substrate = Ttsv_physics.Materials.silicon)
    ?(ild = Ttsv_physics.Materials.silicon_dioxide) ?(bond = Ttsv_physics.Materials.polyimide)
    ?(t_device = 2e-6) ?(device_power_density = 0.) ?(ild_power_density = 0.) ~t_substrate ~t_ild
    ~t_bond () =
  if t_substrate <= 0. then invalid_arg "Plane.make: substrate thickness must be positive";
  if t_ild <= 0. then invalid_arg "Plane.make: ILD thickness must be positive";
  if t_bond < 0. then invalid_arg "Plane.make: bond thickness must be nonnegative";
  if t_device < 0. then invalid_arg "Plane.make: device layer thickness must be nonnegative";
  if t_device > t_substrate then
    invalid_arg "Plane.make: device layer thicker than the substrate";
  if device_power_density < 0. || ild_power_density < 0. then
    invalid_arg "Plane.make: power densities must be nonnegative";
  {
    t_substrate;
    t_ild;
    t_bond;
    t_device;
    substrate;
    ild;
    bond;
    device_power_density;
    ild_power_density;
  }

let height p = p.t_bond +. p.t_substrate +. p.t_ild

let heat_input p ~device_area ~ild_area =
  (p.device_power_density *. p.t_device *. device_area)
  +. (p.ild_power_density *. p.t_ild *. ild_area)

let with_t_substrate p t_substrate =
  if t_substrate <= 0. then invalid_arg "Plane.with_t_substrate: thickness must be positive";
  if p.t_device > t_substrate then
    invalid_arg "Plane.with_t_substrate: device layer thicker than the substrate";
  { p with t_substrate }

let with_power ?device_power_density ?ild_power_density p =
  let device_power_density =
    match device_power_density with Some d -> d | None -> p.device_power_density
  in
  let ild_power_density =
    match ild_power_density with Some d -> d | None -> p.ild_power_density
  in
  if device_power_density < 0. || ild_power_density < 0. then
    invalid_arg "Plane.with_power: power densities must be nonnegative";
  { p with device_power_density; ild_power_density }

let pp ppf p =
  Format.fprintf ppf "plane(tSi=%a, tD=%a, tb=%a)" Ttsv_physics.Units.pp_length_um p.t_substrate
    Ttsv_physics.Units.pp_length_um p.t_ild Ttsv_physics.Units.pp_length_um p.t_bond
