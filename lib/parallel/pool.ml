type t = {
  ndomains : int;
  mutable workers : unit Domain.t array;
  m : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : (unit -> unit) option;
  mutable gen : int;
  mutable remaining : int;
  mutable busy : bool;
  mutable stopped : bool;
}

let max_domains = 64
let default_chunk = 1024
let min_parallel = 2048

(* ----------------------------------------------------- observability *)

module Obs_flags = Ttsv_obs.Flags
module Obs_span = Ttsv_obs.Span
module Obs_metrics = Ttsv_obs.Metrics

let m_tasks = Obs_metrics.Counter.make "pool.tasks"
let m_regions = Obs_metrics.Counter.make "pool.regions"
let m_chunk_s = Obs_metrics.Histogram.make "pool.chunk_seconds"
let m_idle_s = Obs_metrics.Gauge.make "pool.idle_seconds"
let m_util = Obs_metrics.Gauge.make "pool.utilization"

let rec atomic_add_float a dx =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (old +. dx)) then atomic_add_float a dx

let env_domains () =
  match Sys.getenv_opt "TTSV_DOMAINS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 && n <= max_domains -> Some n
    | Some _ | None -> None)

let default_domains () =
  match env_domains () with
  | Some n -> n
  | None -> Stdlib.min (Domain.recommended_domain_count ()) 8

(* Each worker parks on [work_ready] until the generation counter moves,
   runs the published job once (the job itself loops over a shared chunk
   queue), then reports back on [work_done]. *)
let worker pool =
  let last_gen = ref 0 in
  let rec loop () =
    Mutex.lock pool.m;
    while (not pool.stopped) && (pool.gen = !last_gen || pool.job = None) do
      Condition.wait pool.work_ready pool.m
    done;
    if pool.stopped then Mutex.unlock pool.m
    else begin
      let job = match pool.job with Some j -> j | None -> assert false in
      last_gen := pool.gen;
      Mutex.unlock pool.m;
      (* the job wrapper records exceptions itself; nothing can escape *)
      job ();
      Mutex.lock pool.m;
      pool.remaining <- pool.remaining - 1;
      if pool.remaining = 0 then Condition.broadcast pool.work_done;
      Mutex.unlock pool.m;
      loop ()
    end
  in
  loop ()

let make ndomains =
  {
    ndomains;
    workers = [||];
    m = Mutex.create ();
    work_ready = Condition.create ();
    work_done = Condition.create ();
    job = None;
    gen = 0;
    remaining = 0;
    busy = false;
    stopped = false;
  }

let create ?domains () =
  let n = match domains with Some n -> n | None -> default_domains () in
  if n < 1 || n > max_domains then
    invalid_arg (Printf.sprintf "Pool.create: domains must be in [1, %d]" max_domains);
  let pool = make n in
  pool.workers <- Array.init (n - 1) (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let seq = make 1
let domains pool = pool.ndomains

let shutdown pool =
  Mutex.lock pool.m;
  if pool.stopped then Mutex.unlock pool.m
  else begin
    pool.stopped <- true;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.m;
    Array.iter Domain.join pool.workers;
    pool.workers <- [||]
  end

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Run [runner] on every domain of the pool (caller included) and join.
   Re-entrant launches — a task on this pool starting another region, or
   a foreign thread racing the owner — run inline: the chunk queue still
   drains, just without extra domains. *)
let run pool runner =
  if Array.length pool.workers = 0 then runner ()
  else begin
    Mutex.lock pool.m;
    if pool.stopped then begin
      Mutex.unlock pool.m;
      invalid_arg "Pool: used after shutdown"
    end;
    if pool.busy then begin
      Mutex.unlock pool.m;
      runner ()
    end
    else begin
      pool.busy <- true;
      pool.job <- Some runner;
      pool.gen <- pool.gen + 1;
      pool.remaining <- Array.length pool.workers;
      Condition.broadcast pool.work_ready;
      Mutex.unlock pool.m;
      runner ();
      Mutex.lock pool.m;
      while pool.remaining > 0 do
        Condition.wait pool.work_done pool.m
      done;
      pool.job <- None;
      pool.busy <- false;
      Mutex.unlock pool.m
    end
  end

let chunk_count n chunk = (n + chunk - 1) / chunk

let for_chunks ?(chunk = default_chunk) ?(min_size = min_parallel) pool n body =
  if n < 0 then invalid_arg "Pool.for_chunks: negative size";
  if chunk < 1 then invalid_arg "Pool.for_chunks: chunk must be >= 1";
  (* [seq] is never stopped; a shut-down pool must refuse even work small
     enough for the sequential fallback (the mli's contract) *)
  if pool.stopped then invalid_arg "Pool: used after shutdown";
  if n > 0 then begin
    let nchunks = chunk_count n chunk in
    let apply c = body ~lo:(c * chunk) ~hi:(Stdlib.min n ((c + 1) * chunk)) in
    if Array.length pool.workers = 0 || nchunks = 1 || n < min_size then
      (* sequential fallback: the identical chunk walk, in order *)
      for c = 0 to nchunks - 1 do
        apply c
      done
    else begin
      let next = Atomic.make 0 in
      let failed : exn option Atomic.t = Atomic.make None in
      (* latch the flag once per region: every domain then agrees on
         whether this region is instrumented, even if observability is
         toggled mid-flight *)
      let obs = Obs_flags.enabled () in
      let busy = Atomic.make 0. in
      let step c =
        try apply c with e -> ignore (Atomic.compare_and_set failed None (Some e))
      in
      let runner () =
        if not obs then begin
          let continue = ref true in
          while !continue do
            let c = Atomic.fetch_and_add next 1 in
            if c >= nchunks then continue := false
            else if Atomic.get failed = None then step c
          done
        end
        else
          (* one span per participating domain, on that domain's own
             stack, carrying its chunk count as a metric event *)
          Obs_span.with_ ~name:"pool.worker" (fun () ->
              let tasks = ref 0 in
              let local_busy = ref 0. in
              let continue = ref true in
              while !continue do
                let c = Atomic.fetch_and_add next 1 in
                if c >= nchunks then continue := false
                else if Atomic.get failed = None then begin
                  let t0 = Ttsv_obs.Clock.now () in
                  step c;
                  let dt = Ttsv_obs.Clock.now () -. t0 in
                  incr tasks;
                  local_busy := !local_busy +. dt;
                  Obs_metrics.Counter.incr m_tasks;
                  Obs_metrics.Histogram.observe m_chunk_s dt
                end
              done;
              atomic_add_float busy !local_busy;
              if Obs_flags.trace_on () then
                Ttsv_obs.Sink.metric ?span:(Obs_span.current ()) ~kind:"counter"
                  ~name:"pool.worker.tasks"
                  (Ttsv_obs.Json.Int !tasks))
      in
      if not obs then run pool runner
      else
        Obs_span.with_ ~name:"pool.region"
          ~attrs:[ ("n", string_of_int n); ("chunks", string_of_int nchunks) ]
          (fun () ->
            let t0 = Ttsv_obs.Clock.now () in
            run pool runner;
            let dur = Ttsv_obs.Clock.now () -. t0 in
            Obs_metrics.Counter.incr m_regions;
            let capacity = dur *. float_of_int pool.ndomains in
            if capacity > 0. then begin
              let b = Float.min capacity (Atomic.get busy) in
              Obs_metrics.Gauge.add m_idle_s (capacity -. b);
              Obs_metrics.Gauge.set m_util (b /. capacity)
            end);
      match Atomic.get failed with Some e -> raise e | None -> ()
    end
  end

let parallel_for ?chunk ?min_size pool n f =
  for_chunks ?chunk ?min_size pool n (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        f i
      done)

let map_reduce ?(chunk = default_chunk) ?min_size pool ~n ~map ~reduce ~init =
  if n < 0 then invalid_arg "Pool.map_reduce: negative size";
  if chunk < 1 then invalid_arg "Pool.map_reduce: chunk must be >= 1";
  if n = 0 then init
  else begin
    let nchunks = chunk_count n chunk in
    let partials = Array.make nchunks None in
    (* writes land in disjoint slots keyed by chunk index, so the fold
       below sees them in deterministic order no matter who computed what *)
    for_chunks ~chunk ?min_size pool n (fun ~lo ~hi -> partials.(lo / chunk) <- Some (map ~lo ~hi));
    Array.fold_left
      (fun acc p -> match p with Some v -> reduce acc v | None -> assert false)
      init partials
  end

let map_array ?(chunk = 1) pool f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    (* min_size 2: sweep points are coarse, parallelize from two tasks up *)
    for_chunks ~chunk ~min_size:2 pool n (fun ~lo ~hi ->
        for i = lo to hi - 1 do
          out.(i) <- Some (f xs.(i))
        done);
    Array.map (function Some v -> v | None -> assert false) out
  end
