(* A kernel published into an open region: a chunk queue drained by
   whichever domains are awake.  [r_step] captures its own exceptions, so
   [r_done] always reaches [r_nchunks]. *)
type rtask = {
  r_nchunks : int;
  r_next : int Atomic.t;
  r_done : int Atomic.t;
  r_step : int -> unit;
}

type t = {
  ndomains : int;
  mutable workers : unit Domain.t array;
  m : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : (unit -> unit) option;
  mutable gen : int;
  mutable remaining : int;
  mutable busy : bool;
  mutable stopped : bool;
  (* persistent-region state: one [with_region] keeps the workers
     resident while the owner publishes many kernels without paying a
     fork/join each time *)
  region_task : rtask option Atomic.t;
  region_gen : int Atomic.t;
  region_close : bool Atomic.t;
  region_parked : int Atomic.t;
  region_ready : Condition.t;
  mutable in_region : bool;
  mutable region_owner : int;
  (* crash containment: workers that died (exception or injected fault)
     since creation, and whether the currently open region has lost one —
     once it has, the owner stops publishing kernels to it and runs them
     inline instead *)
  failures : int Atomic.t;
  region_degraded : bool Atomic.t;
}

let max_domains = 64
let default_chunk = 1024
let min_parallel = 2048

(* Below this size a kernel outside any region runs inline: waking the
   workers costs a fork/join (condvar broadcast + futex wakeups), which
   only amortizes on decidedly large vectors.  Inside a region the
   cheaper [min_parallel] cutoff applies instead. *)
let fork_join_min = 65536

(* How long a resident worker spins between kernels before parking on
   the region condvar.  Deliberately short: on an oversubscribed (or
   single-core) host a spinning worker steals the owner's timeslice, and
   waking a parked worker costs the owner only one broadcast. *)
let region_spin = 256

(* ----------------------------------------------------- observability *)

module Obs_flags = Ttsv_obs.Flags
module Obs_span = Ttsv_obs.Span
module Obs_metrics = Ttsv_obs.Metrics

let m_tasks = Obs_metrics.Counter.make "pool.tasks"
let m_regions = Obs_metrics.Counter.make "pool.regions"
let m_kernels = Obs_metrics.Counter.make "pool.kernels"
let m_chunk_s = Obs_metrics.Histogram.make "pool.chunk_seconds"
let m_idle_s = Obs_metrics.Gauge.make "pool.idle_seconds"
let m_util = Obs_metrics.Gauge.make "pool.utilization"
let m_worker_failures = Obs_metrics.Counter.make "pool.worker_failures"

let rec atomic_add_float a dx =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (old +. dx)) then atomic_add_float a dx

(* ------------------------------------------------- worker identification *)

(* Set while a domain is executing pool task bodies (workers for their
   whole drain loop, the owner while it runs a fork/join runner).  Any
   pool entry point that finds the flag set runs inline instead: nested
   fan-out from inside an outer region would only oversubscribe the
   machine — and, worse, serialize every inner kernel on the pool
   mutex. *)
let am_worker_key = Domain.DLS.new_key (fun () -> ref false)
let am_worker () = !(Domain.DLS.get am_worker_key)
let set_am_worker v = Domain.DLS.get am_worker_key := v

let env_domains () =
  match Sys.getenv_opt "TTSV_DOMAINS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 && n <= max_domains -> Some n
    | Some _ | None -> None)

let default_domains () =
  match env_domains () with
  | Some n -> n
  | None -> Stdlib.min (Domain.recommended_domain_count ()) 8

(* A worker crashed (its job raised — an injected fault, or a bug in a
   runner wrapper; chunk-body exceptions are captured closer to the
   kernel and never reach here).  Count it, degrade any open region to
   owner-only dispatch, and keep the worker alive for the next job: the
   join protocol below still decrements [remaining], so the owner never
   deadlocks on a dead worker. *)
let note_worker_failure pool =
  Atomic.incr pool.failures;
  Atomic.set pool.region_degraded true;
  if Obs_flags.enabled () then Obs_metrics.Counter.incr m_worker_failures

(* Each worker parks on [work_ready] until the generation counter moves,
   runs the published job once (the job itself loops over a shared chunk
   queue), then reports back on [work_done].  The job runs under a
   catch-all: an escaping exception must not skip the [remaining]
   decrement, or [wait_done] would hang forever. *)
let worker pool =
  set_am_worker true;
  let last_gen = ref 0 in
  let rec loop () =
    Mutex.lock pool.m;
    while (not pool.stopped) && (pool.gen = !last_gen || pool.job = None) do
      Condition.wait pool.work_ready pool.m
    done;
    if pool.stopped then Mutex.unlock pool.m
    else begin
      let job = match pool.job with Some j -> j | None -> assert false in
      last_gen := pool.gen;
      Mutex.unlock pool.m;
      (* worker-exclusive probe point: the owner never executes this
         line, so an injected crash or stall only ever costs a worker *)
      (match
         Fault.stall "stall";
         Fault.raise_if "worker";
         job ()
       with
      | () -> ()
      | exception _ -> note_worker_failure pool);
      Mutex.lock pool.m;
      pool.remaining <- pool.remaining - 1;
      if pool.remaining = 0 then Condition.broadcast pool.work_done;
      Mutex.unlock pool.m;
      loop ()
    end
  in
  loop ()

let make ndomains =
  {
    ndomains;
    workers = [||];
    m = Mutex.create ();
    work_ready = Condition.create ();
    work_done = Condition.create ();
    job = None;
    gen = 0;
    remaining = 0;
    busy = false;
    stopped = false;
    region_task = Atomic.make None;
    region_gen = Atomic.make 0;
    region_close = Atomic.make false;
    region_parked = Atomic.make 0;
    region_ready = Condition.create ();
    in_region = false;
    region_owner = -1;
    failures = Atomic.make 0;
    region_degraded = Atomic.make false;
  }

(* Oversubscription cap: more domains than cores only adds context
   switching.  Floored at 4 so single-core CI hosts can still exercise
   the multi-domain code paths the determinism tests pin. *)
let domain_cap () = Stdlib.max (Domain.recommended_domain_count ()) 4

let create ?domains () =
  let n = match domains with Some n -> n | None -> default_domains () in
  if n < 1 || n > max_domains then
    invalid_arg (Printf.sprintf "Pool.create: domains must be in [1, %d]" max_domains);
  let n = Stdlib.min n (domain_cap ()) in
  let pool = make n in
  pool.workers <- Array.init (n - 1) (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let seq = make 1
let domains pool = pool.ndomains

let shutdown pool =
  Mutex.lock pool.m;
  if pool.stopped then Mutex.unlock pool.m
  else begin
    pool.stopped <- true;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.m;
    Array.iter Domain.join pool.workers;
    pool.workers <- [||]
  end

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Publish [runner] to the workers without blocking the owner.  Returns
   [false] (and does nothing) when the pool is already busy, so the
   caller can fall back to running inline. *)
let post pool runner =
  Mutex.lock pool.m;
  if pool.stopped then begin
    Mutex.unlock pool.m;
    invalid_arg "Pool: used after shutdown"
  end;
  if pool.busy then begin
    Mutex.unlock pool.m;
    false
  end
  else begin
    pool.busy <- true;
    pool.job <- Some runner;
    pool.gen <- pool.gen + 1;
    pool.remaining <- Array.length pool.workers;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.m;
    true
  end

let wait_done pool =
  Mutex.lock pool.m;
  while pool.remaining > 0 do
    Condition.wait pool.work_done pool.m
  done;
  pool.job <- None;
  pool.busy <- false;
  Mutex.unlock pool.m

(* Run [runner] on every domain of the pool (caller included) and join.
   Re-entrant launches — a task on this pool starting another region, or
   a foreign thread racing the owner — run inline: the chunk queue still
   drains, just without extra domains. *)
let run pool runner =
  if Array.length pool.workers = 0 then runner ()
  else if not (post pool runner) then runner ()
  else begin
    (* the owner executes task bodies too: flag it like a worker so user
       code inside the chunks (sweep points) does not re-enter the pool *)
    Fun.protect
      ~finally:(fun () -> set_am_worker false)
      (fun () ->
        set_am_worker true;
        runner ());
    wait_done pool
  end

(* ------------------------------------------------- persistent regions *)

let drain_rtask t =
  let continue = ref true in
  while !continue do
    let c = Atomic.fetch_and_add t.r_next 1 in
    if c >= t.r_nchunks then continue := false
    else begin
      t.r_step c;
      Atomic.incr t.r_done
    end
  done

(* The job a worker runs for the whole lifetime of a region: watch the
   kernel generation counter, drain whatever kernel is current, park on
   [region_ready] when nothing new shows up within the spin budget.  The
   parking handshake is lost-wakeup-free: the worker re-checks the
   generation under the mutex, and the owner bumps the (sequentially
   consistent) generation before reading [region_parked]. *)
let region_worker pool =
  let obs = Obs_flags.enabled () in
  let work () =
    let last = ref (-1) in
    let spin = ref 0 in
    let continue = ref true in
    (* CPU burned between kernels: the spin stretches only — parked time
       costs nothing and is not counted.  Feeds [pool.idle_seconds], the
       gauge obs_check asserts stays bounded. *)
    let idle = ref 0. in
    let spin_t0 = ref Float.nan in
    let close_idle () =
      if obs && not (Float.is_nan !spin_t0) then begin
        idle := !idle +. (Ttsv_obs.Clock.now () -. !spin_t0);
        spin_t0 := Float.nan
      end
    in
    Fun.protect
      ~finally:(fun () ->
        close_idle ();
        if obs then Obs_metrics.Gauge.add m_idle_s !idle)
      (fun () ->
        while !continue do
          if Atomic.get pool.region_close then continue := false
          else begin
            let g = Atomic.get pool.region_gen in
            if g <> !last then begin
              close_idle ();
              last := g;
              spin := 0;
              (* worker-exclusive probe point: a fault injected here is
                 contained by the catch-all in [worker] and only costs
                 the region this domain *)
              Fault.stall "stall";
              Fault.raise_if "worker";
              match Atomic.get pool.region_task with
              | Some t -> drain_rtask t
              | None -> ()
            end
            else if !spin < region_spin then begin
              if obs && Float.is_nan !spin_t0 then spin_t0 := Ttsv_obs.Clock.now ();
              incr spin;
              Domain.cpu_relax ()
            end
            else begin
              close_idle ();
              Mutex.lock pool.m;
              Atomic.incr pool.region_parked;
              while
                Atomic.get pool.region_gen = !last && not (Atomic.get pool.region_close)
              do
                Condition.wait pool.region_ready pool.m
              done;
              Atomic.decr pool.region_parked;
              Mutex.unlock pool.m;
              spin := 0
            end
          end
        done)
  in
  if obs then Obs_span.with_ ~name:"pool.worker" work else work ()

let wake_region pool =
  if Atomic.get pool.region_parked > 0 then begin
    Mutex.lock pool.m;
    Condition.broadcast pool.region_ready;
    Mutex.unlock pool.m
  end

(* Owner-side kernel dispatch inside an open region: publish the chunk
   queue, help drain it, then wait for straggler chunks claimed by
   workers.  The straggler wait spins briefly and then sleeps: on an
   oversubscribed host the claiming worker needs the CPU to finish. *)
let region_dispatch pool nchunks apply =
  let failed : exn option Atomic.t = Atomic.make None in
  let step c =
    (* claim-but-skip once something failed: every chunk is still
       accounted (r_done reaches r_nchunks, so the join below cannot
       hang) but no further bodies run — what lets a budget expiry or a
       body exception abort the remaining chunks promptly *)
    if Atomic.get failed = None then
      try apply c with e -> ignore (Atomic.compare_and_set failed None (Some e))
  in
  let t =
    { r_nchunks = nchunks; r_next = Atomic.make 0; r_done = Atomic.make 0; r_step = step }
  in
  Atomic.set pool.region_task (Some t);
  Atomic.incr pool.region_gen;
  wake_region pool;
  drain_rtask t;
  let spins = ref 0 in
  while Atomic.get t.r_done < nchunks do
    incr spins;
    if !spins <= 10_000 then Domain.cpu_relax ()
    else begin
      spins := 0;
      Unix.sleepf 2e-4
    end
  done;
  Atomic.set pool.region_task None;
  if Obs_flags.enabled () then Obs_metrics.Counter.incr m_kernels;
  match Atomic.get failed with Some e -> raise e | None -> ()

let with_region pool f =
  if Array.length pool.workers = 0 || am_worker () then f ()
  else begin
    Atomic.set pool.region_close false;
    Atomic.set pool.region_degraded false;
    if not (post pool (fun () -> region_worker pool)) then f ()
    else begin
      pool.region_owner <- (Domain.self () :> int);
      pool.in_region <- true;
      let finish () =
        pool.in_region <- false;
        pool.region_owner <- -1;
        Atomic.set pool.region_close true;
        Mutex.lock pool.m;
        Condition.broadcast pool.region_ready;
        Mutex.unlock pool.m;
        wait_done pool;
        Atomic.set pool.region_close false
      in
      if Obs_flags.enabled () then begin
        Obs_metrics.Counter.incr m_regions;
        Obs_span.with_ ~name:"pool.region"
          ~attrs:[ ("mode", "persistent") ]
          (fun () -> Fun.protect ~finally:finish f)
      end
      else Fun.protect ~finally:finish f
    end
  end

let in_region pool = pool.in_region && pool.region_owner = (Domain.self () :> int)

(* ------------------------------------------------------------ kernels *)

let chunk_count n chunk = (n + chunk - 1) / chunk

let for_chunks ?(chunk = default_chunk) ?min_size ?budget pool n body =
  if n < 0 then invalid_arg "Pool.for_chunks: negative size";
  if chunk < 1 then invalid_arg "Pool.for_chunks: chunk must be >= 1";
  (* [seq] is never stopped; a shut-down pool must refuse even work small
     enough for the sequential fallback (the mli's contract) *)
  if pool.stopped then invalid_arg "Pool: used after shutdown";
  if n > 0 then begin
    let nchunks = chunk_count n chunk in
    let apply c =
      (* one budget poll per chunk: on the parallel paths the raise is
         captured like any body exception and re-raised after the join,
         so no chunk claim is ever lost to an expiry *)
      (match budget with Some b -> Budget.check_exn b | None -> ());
      body ~lo:(c * chunk) ~hi:(Stdlib.min n ((c + 1) * chunk))
    in
    let seq_run () =
      (* sequential fallback: the identical chunk walk, in order *)
      for c = 0 to nchunks - 1 do
        apply c
      done
    in
    if Array.length pool.workers = 0 || nchunks = 1 || am_worker () then seq_run ()
    else if in_region pool then
      if n < Option.value min_size ~default:min_parallel || Atomic.get pool.region_degraded
      then seq_run ()
      else region_dispatch pool nchunks apply
    else if n < Option.value min_size ~default:fork_join_min then seq_run ()
    else begin
      let next = Atomic.make 0 in
      let failed : exn option Atomic.t = Atomic.make None in
      (* latch the flag once per region: every domain then agrees on
         whether this region is instrumented, even if observability is
         toggled mid-flight *)
      let obs = Obs_flags.enabled () in
      let busy = Atomic.make 0. in
      let step c =
        try apply c with e -> ignore (Atomic.compare_and_set failed None (Some e))
      in
      let runner () =
        if not obs then begin
          let continue = ref true in
          while !continue do
            let c = Atomic.fetch_and_add next 1 in
            if c >= nchunks then continue := false
            else if Atomic.get failed = None then step c
          done
        end
        else
          (* one span per participating domain, on that domain's own
             stack, carrying its chunk count as a metric event *)
          Obs_span.with_ ~name:"pool.worker" (fun () ->
              let tasks = ref 0 in
              let local_busy = ref 0. in
              let continue = ref true in
              while !continue do
                let c = Atomic.fetch_and_add next 1 in
                if c >= nchunks then continue := false
                else if Atomic.get failed = None then begin
                  let t0 = Ttsv_obs.Clock.now () in
                  step c;
                  let dt = Ttsv_obs.Clock.now () -. t0 in
                  incr tasks;
                  local_busy := !local_busy +. dt;
                  Obs_metrics.Counter.incr m_tasks;
                  Obs_metrics.Histogram.observe m_chunk_s dt
                end
              done;
              atomic_add_float busy !local_busy;
              if Obs_flags.trace_on () then
                Ttsv_obs.Sink.metric ?span:(Obs_span.current ()) ~kind:"counter"
                  ~name:"pool.worker.tasks"
                  (Ttsv_obs.Json.Int !tasks))
      in
      if not obs then run pool runner
      else
        Obs_span.with_ ~name:"pool.region"
          ~attrs:[ ("n", string_of_int n); ("chunks", string_of_int nchunks) ]
          (fun () ->
            let t0 = Ttsv_obs.Clock.now () in
            run pool runner;
            let dur = Ttsv_obs.Clock.now () -. t0 in
            Obs_metrics.Counter.incr m_regions;
            let capacity = dur *. float_of_int pool.ndomains in
            if capacity > 0. then begin
              let b = Float.min capacity (Atomic.get busy) in
              Obs_metrics.Gauge.add m_idle_s (capacity -. b);
              Obs_metrics.Gauge.set m_util (b /. capacity)
            end);
      match Atomic.get failed with Some e -> raise e | None -> ()
    end
  end

let parallel_for ?chunk ?min_size ?budget pool n f =
  for_chunks ?chunk ?min_size ?budget pool n (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        f i
      done)

let map_reduce ?(chunk = default_chunk) ?min_size ?budget pool ~n ~map ~reduce ~init =
  if n < 0 then invalid_arg "Pool.map_reduce: negative size";
  if chunk < 1 then invalid_arg "Pool.map_reduce: chunk must be >= 1";
  if n = 0 then init
  else begin
    let nchunks = chunk_count n chunk in
    let partials = Array.make nchunks None in
    (* writes land in disjoint slots keyed by chunk index, so the fold
       below sees them in deterministic order no matter who computed what *)
    for_chunks ~chunk ?min_size ?budget pool n (fun ~lo ~hi ->
        partials.(lo / chunk) <- Some (map ~lo ~hi));
    Array.fold_left
      (fun acc p -> match p with Some v -> reduce acc v | None -> assert false)
      init partials
  end

let map_array ?(chunk = 1) ?budget pool f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    (* min_size 2: sweep points are coarse, parallelize from two tasks up *)
    for_chunks ~chunk ~min_size:2 ?budget pool n (fun ~lo ~hi ->
        for i = lo to hi - 1 do
          out.(i) <- Some (f xs.(i))
        done);
    Array.map (function Some v -> v | None -> assert false) out
  end

let worker_failures pool = Atomic.get pool.failures
