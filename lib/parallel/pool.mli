(** A small fixed-size pool of OCaml 5 domains for data-parallel kernels.

    The pool owns [domains - 1] worker domains; the caller's domain is
    always the remaining participant, so [create ~domains:1] (or
    {!seq}) spawns nothing and every operation degenerates to an inline
    sequential loop.

    {2 Determinism contract}

    Every operation chunks its index space with a chunk size that
    depends only on [n] and the [chunk] argument — never on the number
    of domains or on scheduling.  Work is handed out dynamically
    (whichever domain is free grabs the next chunk), but results land in
    slots keyed by chunk index:

    - {!parallel_for} / {!for_chunks} must only perform writes that are
      disjoint across indices; under that (unchecked) contract the
      outcome is identical to a sequential loop, bit for bit.
    - {!map_reduce} folds the per-chunk partials in ascending chunk
      order, so its result is {e identical for any domain count,
      including the sequential fallback}.  It still differs from a plain
      left fold over individual elements by floating-point
      reassociation (the partials are grouped), which is why callers
      that need cross-implementation agreement compare with a ~1e-12
      relative tolerance.
    - {!map_array} preserves input order exactly.

    A region launched from inside another region of the same pool (or
    from a foreign thread while the pool is busy) runs inline on the
    calling domain instead of deadlocking.  More strongly, any domain
    currently executing pool task bodies is flagged ({!am_worker}) and
    every pool entry point it touches — on {e any} pool — degenerates to
    the inline sequential loop without taking a lock: an inner
    [Iterative.cg ?pool] under an outer sweep fan-out neither
    oversubscribes the machine nor serializes on the pool mutex.

    {2 Persistent regions}

    A fork/join per kernel is far too expensive for Krylov loops that
    issue thousands of sub-millisecond kernels.  {!with_region} keeps
    the workers resident for the duration of a scope: each kernel inside
    it is published to the already-awake workers through an atomic task
    slot (no lock, no condvar on the fast path), and idle workers park
    on a condition variable after a short spin so an oversubscribed host
    is not burned by busy-waiting.  Chunk boundaries, and therefore
    results, are identical to the fork/join and sequential paths. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] workers.  [domains]
    defaults to the [TTSV_DOMAINS] environment variable when set, and
    otherwise to [Domain.recommended_domain_count ()] capped at 8.
    Raises [Invalid_argument] outside [1, 64]; values inside the range
    are then capped at [max (Domain.recommended_domain_count ()) 4] —
    oversubscribing cores only adds context switching, while the floor
    of 4 keeps multi-domain paths testable on single-core hosts.
    {!domains} reports the capped count. *)

val seq : t
(** The shared 1-domain pool: no workers, every operation runs inline.
    Never needs {!shutdown}.  [Option.value pool ~default:Pool.seq] is
    the idiom every [?pool] entry point in the library uses. *)

val domains : t -> int
(** Total participating domains, including the caller (>= 1). *)

val shutdown : t -> unit
(** Joins the workers.  Idempotent; using the pool afterwards raises
    [Invalid_argument].  {!seq} ignores shutdown. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] on a fresh pool and shuts it down afterwards,
    whether [f] returns or raises. *)

val default_chunk : int
(** Chunk size used when [?chunk] is omitted (element kernels). *)

val min_parallel : int
(** Size cutoff inside an open {!with_region}: index spaces smaller than
    this run inline on the owner (2048).  Override per call with
    [~min_size]. *)

val fork_join_min : int
(** Size cutoff {e outside} any region: kernels below this (65536) run
    inline rather than paying a fork/join wake-up of the workers.
    Override per call with [~min_size] — an explicit [~min_size] always
    wins, in or out of a region. *)

val am_worker : unit -> bool
(** [true] while the calling domain is executing pool task bodies — a
    worker domain draining chunks, or the owner running a fork/join
    runner.  Library code uses it to run nested parallel work inline;
    exposed for tests and for callers that want to skip setting up
    parallel state that would never be used. *)

val with_region : t -> (unit -> 'a) -> 'a
(** [with_region pool f] keeps the pool's workers resident while [f]
    runs: every pool kernel the {e calling domain} issues inside [f] is
    handed to the workers through an atomic slot instead of a fresh
    fork/join, and the in-region [min_size] default drops from
    {!fork_join_min} to {!min_parallel}.  Runs [f] directly (no region)
    when the pool has no workers, the pool is already busy, or the
    caller is itself a pool worker.  Kernels issued by other domains
    while the region is open fall back to their usual inline path.
    Reentrant: an inner [with_region] on the same pool is a no-op
    wrapper.  The region is closed (workers released and joined) when
    [f] returns or raises. *)

val for_chunks :
  ?chunk:int ->
  ?min_size:int ->
  ?budget:Budget.t ->
  t ->
  int ->
  (lo:int -> hi:int -> unit) ->
  unit
(** [for_chunks pool n body] applies [body ~lo ~hi] to every chunk
    [[lo, hi)] of [[0, n)].  Chunk boundaries depend only on [n] and
    [chunk] (default {!default_chunk}).  [min_size] defaults to
    {!min_parallel} inside an open region and {!fork_join_min} outside.
    Exceptions raised by [body] abort the remaining chunks and the first
    one is re-raised after the region joins.  [budget], when given, is
    polled once per chunk: an expired budget aborts the remaining
    chunks the same way and [Budget.Expired] is raised after the join —
    never from a worker, and never losing a chunk claim. *)

val parallel_for :
  ?chunk:int -> ?min_size:int -> ?budget:Budget.t -> t -> int -> (int -> unit) -> unit
(** [parallel_for pool n f] runs [f i] for every [i] in [[0, n)], in
    ascending order within each chunk.  [f] must only write to state
    disjoint across indices. *)

val map_reduce :
  ?chunk:int ->
  ?min_size:int ->
  ?budget:Budget.t ->
  t ->
  n:int ->
  map:(lo:int -> hi:int -> 'a) ->
  reduce:('a -> 'a -> 'a) ->
  init:'a ->
  'a
(** [map_reduce pool ~n ~map ~reduce ~init] computes one partial per
    chunk with [map ~lo ~hi] and folds them as
    [reduce (... (reduce init p0) ...) p_last] in ascending chunk
    order — the same value for any domain count. *)

val map_array : ?chunk:int -> ?budget:Budget.t -> t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array pool f xs] is [Array.map f xs] with the elements
    evaluated across the pool ([chunk] defaults to 1: each element is
    one task, for coarse work like sweep points).  Output order is the
    input order. *)

val worker_failures : t -> int
(** Worker crashes contained since the pool was created: exceptions (or
    injected faults, see {!Fault}) that escaped a worker's job.  Each is
    also counted in the [pool.worker_failures] metric, and degrades the
    open region (if any) to owner-only dispatch.  The join protocol
    survives every such crash — a failed worker can never hang
    {!with_region} or a fork/join. *)
