(* Seeded, deterministic fault injection.  The engine is disarmed (every
   probe compiles to one atomic load and a branch) unless a spec is
   installed — by [configure] or by the TTSV_FAULTS environment variable
   at load.  Each probe site keeps its own draw counter; the decision
   for draw [i] at site [s] is a pure hash of (seed, s, i), so a given
   spec replays the same fault sequence per site regardless of wall
   clock or scheduling. *)

type site_state = { rate : float; draws : int Atomic.t }

type config = {
  spec : string;  (* the string [configure] accepted, verbatim *)
  seed : int;
  sites : (string * site_state) list;
}

exception Injected of string

let known_sites = [ "matvec"; "precond"; "worker"; "stall" ]
let state : config option Atomic.t = Atomic.make None
let injected = Atomic.make 0

module Obs_flags = Ttsv_obs.Flags
module Obs_metrics = Ttsv_obs.Metrics

let m_injected = Obs_metrics.Counter.make "fault.injected"

(* ---------------------------------------------------------- hashing *)

(* splitmix64 finalizer: a full-avalanche mix, so consecutive draw
   indices decorrelate completely *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 33)) 0xff51afd7ed558ccdL in
  let z = mul (logxor z (shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
  logxor z (shift_right_logical z 33)

let two_pow_53 = 9007199254740992.0

let uniform ~seed ~site ~draw =
  let open Int64 in
  let h = of_int (Hashtbl.hash site) in
  let z = mix64 (add (of_int seed) (mul h 0x9e3779b97f4a7c15L)) in
  let z = mix64 (add z (of_int draw)) in
  to_float (shift_right_logical z 11) /. two_pow_53

(* ---------------------------------------------------------- control *)

let parse spec =
  match String.rindex_opt spec ':' with
  | None -> Error "missing ':seed' suffix (expected site=rate[,site=rate...]:seed)"
  | Some i -> (
    let pairs = String.sub spec 0 i in
    let seed_s = String.sub spec (i + 1) (String.length spec - i - 1) in
    match int_of_string_opt (String.trim seed_s) with
    | None -> Error (Printf.sprintf "seed %S is not an integer" seed_s)
    | Some seed ->
      let parse_pair acc pair =
        match acc with
        | Error _ as e -> e
        | Ok sites -> (
          match String.index_opt pair '=' with
          | None -> Error (Printf.sprintf "%S is not site=rate" pair)
          | Some j -> (
            let name = String.trim (String.sub pair 0 j) in
            let rate_s = String.sub pair (j + 1) (String.length pair - j - 1) in
            if not (List.mem name known_sites) then
              Error
                (Printf.sprintf "unknown site %S (known: %s)" name
                   (String.concat ", " known_sites))
            else if List.mem_assoc name sites then
              Error (Printf.sprintf "site %S given twice" name)
            else
              match float_of_string_opt (String.trim rate_s) with
              | Some r when Float.is_finite r && r >= 0. && r <= 1. ->
                Ok ((name, { rate = r; draws = Atomic.make 0 }) :: sites)
              | Some _ | None ->
                Error (Printf.sprintf "rate %S for site %S is not in [0, 1]" rate_s name)))
      in
      let pieces =
        List.filter (fun s -> String.trim s <> "") (String.split_on_char ',' pairs)
      in
      if pieces = [] then Error "no site=rate pairs before ':seed'"
      else
        Result.map
          (fun sites -> { spec; seed; sites = List.rev sites })
          (List.fold_left parse_pair (Ok []) pieces))

let configure spec =
  match parse spec with
  | Ok c ->
    Atomic.set state (Some c);
    Ok ()
  | Error _ as e -> e

let disarm () = Atomic.set state None
let armed () = Atomic.get state <> None
let current_spec () = Option.map (fun c -> c.spec) (Atomic.get state)
let injected_total () = Atomic.get injected

(* ----------------------------------------------------------- probes *)

let fire site =
  match Atomic.get state with
  | None -> false
  | Some c -> (
    match List.assoc_opt site c.sites with
    | None -> false
    | Some s ->
      let draw = Atomic.fetch_and_add s.draws 1 in
      let hit = uniform ~seed:c.seed ~site ~draw < s.rate in
      if hit then begin
        Atomic.incr injected;
        if Obs_flags.enabled () then Obs_metrics.Counter.incr m_injected
      end;
      hit)

let raise_if site = if fire site then raise (Injected site)

let poison site v =
  if fire site && Array.length v > 0 then v.(0) <- Float.nan

(* long enough to exercise the straggler-wait path, short enough that a
   high stall rate does not blow the test suite's wall time *)
let stall_seconds = 1e-3
let stall site = if fire site then Unix.sleepf stall_seconds

(* ---------------------------------------------------- env activation *)

let () =
  match Sys.getenv_opt "TTSV_FAULTS" with
  | None | Some "" -> ()
  | Some spec -> (
    match configure spec with
    | Ok () -> ()
    | Error why -> Printf.eprintf "ttsv: ignoring TTSV_FAULTS=%s: %s\n%!" spec why)
