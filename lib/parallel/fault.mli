(** Seeded, deterministic fault injection for chaos testing.

    Disarmed (the default) every probe is one atomic load and a branch —
    cheap enough to leave compiled into the hot paths.  Armed via
    {!configure} or the [TTSV_FAULTS] environment variable at program
    start, each probe site draws from a hash of (seed, site, draw
    index): a given spec replays the {e same} fault sequence per site on
    every run, independent of wall clock or domain scheduling.

    {2 Spec grammar}

    {[ TTSV_FAULTS = site=rate[,site=rate...]:seed ]}

    e.g. [matvec=0.05,worker=0.1:42].  Rates are probabilities in
    [\[0, 1\]]; the seed is any integer.  Sites:

    - [matvec] — poison a matvec product with a NaN ({!poison})
    - [precond] — fail preconditioner construction ({!raise_if})
    - [worker] — raise inside a pool worker ({!raise_if})
    - [stall] — sleep ~1 ms inside a pool worker ({!stall})

    A malformed [TTSV_FAULTS] value prints a warning to stderr and
    leaves the engine disarmed: a typo must not crash library load. *)

exception Injected of string
(** Raised by {!raise_if} probes, carrying the site name.  The pool
    contains it like any worker exception; {!Ttsv_robust.Robust.solve}
    converts it to a [Skipped] attempt and demotes to the next rung. *)

val configure : string -> (unit, string) result
(** Install a spec (see the grammar above), replacing any previous one.
    [Error why] leaves the previous configuration in place. *)

val disarm : unit -> unit
(** Remove the configuration; every subsequent probe is a no-op. *)

val armed : unit -> bool

val current_spec : unit -> string option
(** The spec string last accepted by {!configure}, if armed. *)

val fire : string -> bool
(** [fire site] draws the site's next decision: [true] means inject.
    Unknown or unconfigured sites never fire.  Thread-safe. *)

val raise_if : string -> unit
(** Raise [Injected site] when the site's draw fires. *)

val poison : string -> float array -> unit
(** Overwrite the vector's first element with NaN when the draw fires —
    models a corrupted kernel result. *)

val stall : string -> unit
(** Sleep ~1 ms when the draw fires — models a descheduled worker. *)

val injected_total : unit -> int
(** Faults actually injected since load (all sites).  Tests use it to
    confirm the engine exercised a path. *)
