(** Cooperative execution budgets: wall-clock deadlines and work caps.

    A budget is a token threaded through the solver stack and checked at
    natural yield points — once per Krylov iteration, between
    preconditioner shift retries, between pool chunks.  Nothing is
    preempted, so a budget can only stop code that polls it; in exchange
    the kernels stay branch-free and the overshoot past a deadline is
    bounded by a single iteration's wall time.

    Budgets compose: {!split} hands sequential phases (the rungs of the
    {!Ttsv_robust.Robust} ladder) an even share of the remaining
    wall-clock while the work counter stays {e shared} — work measures
    global effort (matvec-equivalents), not per-phase effort. *)

type verdict =
  | Deadline_exceeded  (** the wall-clock deadline passed *)
  | Work_exhausted  (** the work (matvec) cap was reached *)

exception Expired of verdict
(** Raised by {!check_exn} (and by pool kernels handed a budget) when
    the budget is spent.  Library code converts it to a typed result at
    the nearest boundary; it never escapes [Robust.solve]. *)

type t

val make : ?deadline_s:float -> ?max_work:int -> unit -> t
(** [make ~deadline_s ~max_work ()] starts the clock now: the deadline
    is [deadline_s] seconds from the call.  Omitted limits are
    unlimited; [make ()] is a budget that never expires (useful to
    thread one code path).  Raises [Invalid_argument] on a negative or
    non-finite [deadline_s] or a negative [max_work]. *)

val split : t -> ways:int -> t
(** [split t ~ways] is a budget whose deadline is an even [1/ways] share
    of [t]'s remaining wall-clock, counted from now — used to ration the
    ladder's remaining time across the rungs still to try.  The work
    counter is shared with [t] (work is a global cap).  A [t] with no
    deadline splits to no deadline.  Raises [Invalid_argument] when
    [ways < 1]. *)

val tick : ?n:int -> t -> unit
(** Record [n] (default 1) units of work — one unit per matvec is the
    library convention.  Lock-free; safe from any domain. *)

val check : t -> verdict option
(** [None] while the budget holds; the verdict once it is spent.  Work
    is checked before the clock, so a deterministic work cap gives the
    same verdict on any machine. *)

val check_exn : t -> unit
(** Raise [Expired v] instead of returning [Some v]. *)

val remaining_s : t -> float
(** Wall-clock seconds left ([infinity] when no deadline, 0 when past). *)

val work_spent : t -> int
(** Total work ticked so far (across every {!split} share). *)

val pp_verdict : Format.formatter -> verdict -> unit
