(* A cooperative cancellation token: a wall-clock deadline plus a work
   budget (matvec-equivalents), checked at natural yield points (solver
   iterations, preconditioner shift retries, pool chunk boundaries).
   Nothing preempts: code that never calls [check]/[tick] never stops,
   which is exactly the contract — kernels stay branch-free and the
   checks live at iteration granularity, bounding overshoot to one
   iteration's wall time. *)

type verdict = Deadline_exceeded | Work_exhausted

exception Expired of verdict

type t = {
  deadline : float;  (* absolute epoch seconds; [infinity] = none *)
  max_work : int;  (* [max_int] = unlimited *)
  work : int Atomic.t;  (* shared across [split]s: work is global *)
}

let pp_verdict ppf = function
  | Deadline_exceeded -> Format.pp_print_string ppf "deadline exceeded"
  | Work_exhausted -> Format.pp_print_string ppf "work budget exhausted"

let make ?deadline_s ?max_work () =
  (match deadline_s with
  | Some d when not (Float.is_finite d && d >= 0.) ->
    invalid_arg "Budget.make: deadline_s must be finite and >= 0"
  | _ -> ());
  (match max_work with
  | Some w when w < 0 -> invalid_arg "Budget.make: max_work must be >= 0"
  | _ -> ());
  {
    deadline =
      (match deadline_s with
      | Some d -> Unix.gettimeofday () +. d
      | None -> Float.infinity);
    max_work = (match max_work with Some w -> w | None -> Stdlib.max_int);
    work = Atomic.make 0;
  }

(* An even split of the remaining wall-clock across [ways] sequential
   phases.  The work counter is deliberately shared (not divided): work
   is a global cap on matvecs, and splitting it would let an early phase
   starve later ones of time while leaving work unspent. *)
let split t ~ways =
  if ways < 1 then invalid_arg "Budget.split: ways must be >= 1";
  if Float.is_finite t.deadline then begin
    let remaining = t.deadline -. Unix.gettimeofday () in
    let share = Stdlib.max 0. remaining /. float_of_int ways in
    { t with deadline = Unix.gettimeofday () +. share }
  end
  else t

let tick ?(n = 1) t = ignore (Atomic.fetch_and_add t.work n)
let work_spent t = Atomic.get t.work

let remaining_s t =
  if Float.is_finite t.deadline then Stdlib.max 0. (t.deadline -. Unix.gettimeofday ())
  else Float.infinity

let check t =
  if Atomic.get t.work >= t.max_work then Some Work_exhausted
  else if Float.is_finite t.deadline && Unix.gettimeofday () > t.deadline then
    Some Deadline_exceeded
  else None

let check_exn t = match check t with Some v -> raise (Expired v) | None -> ()
