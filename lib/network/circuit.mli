(** Generic thermal resistive networks.

    The electrothermal duality the paper builds on (heat flow ↔ current,
    temperature ↔ voltage, thermal resistance ↔ electrical resistance)
    is realized here as a small circuit toolkit: create named nodes,
    connect them with resistors, inject heat, and solve for the nodal
    temperature rises above the ground (heat-sink) node by stamping a
    conductance matrix and solving the resulting SPD system.

    Both Model A and Model B are built on this module, as is the
    traditional 1-D baseline, so all three share one audited solver. *)

type t
(** A mutable circuit under construction. *)

type node
(** A node handle, valid only for the circuit that created it. *)

type solution
(** Solved nodal temperatures. *)

val create : unit -> t

val ground : t -> node
(** [ground c] is the reference node (the heat sink); its temperature
    rise is 0 by definition. *)

val add_node : t -> string -> node
(** [add_node c name] creates a fresh node.  Names are labels for
    debugging and reporting; duplicates are allowed. *)

val node_count : t -> int
(** Number of non-ground nodes created so far. *)

val node_name : t -> node -> string
(** [node_name c n] is the label given at creation ("ground" for the
    ground node). *)

val add_resistor : t -> node -> node -> float -> unit
(** [add_resistor c a b r] connects [a] and [b] with thermal resistance
    [r] (K/W).  [r] must be positive and finite; parallel duplicates
    accumulate.  Raises [Invalid_argument] on a self-loop or a foreign
    node. *)

val add_heat_source : t -> node -> float -> unit
(** [add_heat_source c n q] injects [q] watts into node [n] (from the
    ambient reference).  Multiple sources on one node accumulate;
    negative [q] models extraction. *)

val solve : t -> solution
(** [solve c] computes all nodal temperature rises.  The circuit must be
    connected to ground (every node needs a resistive path to the ground
    node), otherwise the conductance matrix is singular and
    [Invalid_argument] is raised with the offending node's name.
    Dense LU is used up to 256 nodes; above that, conjugate gradients on
    the sparse conductance matrix. *)

val temperature : solution -> node -> float
(** [temperature s n] is the temperature rise of [n] above ground, K. *)

val temperatures : solution -> float array
(** All non-ground nodal rises, indexed by creation order. *)

val max_temperature : solution -> float
(** Largest nodal rise (0 for an empty circuit). *)

val branch_heat_flow : solution -> node -> node -> float
(** [branch_heat_flow s a b] is the heat flowing from [a] to [b] through
    the (parallel-combined) resistors directly connecting them, in watts;
    0 when no direct branch exists. *)

val residual_norm : solution -> float
(** [residual_norm s] is ‖G·T − q‖∞ — the KCL violation of the computed
    solution; the test suite asserts it is tiny.  *)

val total_injected : t -> float
(** Sum of all heat sources, W. *)

val assembled : t -> Ttsv_numerics.Sparse.t * float array
(** [assembled c] is the ground-eliminated conductance matrix G and the
    source vector q, nodes ordered by creation — the raw G·T = q system
    that {!solve} factors.  Exposed for clients that augment the system
    (e.g. the transient extension adds nodal heat capacities). *)

val node_index : t -> node -> int
(** [node_index c n] is the creation-order row of [n] in {!assembled}.
    Raises [Invalid_argument] for the ground node. *)

val equivalent_resistance : t -> node -> node -> float
(** [equivalent_resistance c a b] is the Thevenin resistance seen between
    [a] and [b] (heat sources ignored): the temperature difference per
    watt injected at [a] and extracted at [b].  Both nodes may be the
    ground.  [a = b] gives 0.  The circuit must be connected to ground.
    Useful for reducing a subnetwork to the single resistor a
    coarser-grained model wants. *)

val pp : Format.formatter -> t -> unit
(** Prints a summary (node count, resistor count, total heat). *)
