let series rs =
  List.fold_left
    (fun acc r ->
      if r < 0. then invalid_arg "Reduce.series: negative resistance";
      acc +. r)
    0. rs

let parallel rs =
  if rs = [] then invalid_arg "Reduce.parallel: empty list";
  let g =
    List.fold_left
      (fun acc r ->
        if r <= 0. then invalid_arg "Reduce.parallel: resistance must be positive";
        acc +. (1. /. r))
      0. rs
  in
  1. /. g

let slab ~thickness ~conductivity ~area =
  if conductivity <= 0. || area <= 0. then
    invalid_arg "Reduce.slab: conductivity and area must be positive";
  if thickness < 0. then invalid_arg "Reduce.slab: negative thickness";
  thickness /. (conductivity *. area)

let cylinder_axial ~length ~conductivity ~radius =
  if conductivity <= 0. || radius <= 0. then
    invalid_arg "Reduce.cylinder_axial: conductivity and radius must be positive";
  if length < 0. then invalid_arg "Reduce.cylinder_axial: negative length";
  length /. (conductivity *. Float.pi *. radius *. radius)

let cylindrical_shell_radial ~inner_radius ~thickness ~conductivity ~length =
  if inner_radius <= 0. || thickness <= 0. || conductivity <= 0. || length <= 0. then
    invalid_arg "Reduce.cylindrical_shell_radial: arguments must be positive";
  log ((inner_radius +. thickness) /. inner_radius) /. (2. *. Float.pi *. conductivity *. length)

let conductance r =
  if r <= 0. then invalid_arg "Reduce.conductance: resistance must be positive";
  1. /. r
