(** Resistance algebra.

    Small helpers for combining thermal resistances; used both by the
    models (e.g. the series [R8 + R9] branch of eq. 1, the parallel
    reduction of the traditional 1-D model) and the test oracles. *)

val series : float list -> float
(** [series rs] is Σ rs.  All entries must be nonnegative. *)

val parallel : float list -> float
(** [parallel rs] is (Σ 1/rs)⁻¹.  All entries must be positive;
    the empty list raises [Invalid_argument]. *)

val slab : thickness:float -> conductivity:float -> area:float -> float
(** [slab ~thickness ~conductivity ~area] is t/(k·A), the 1-D conduction
    resistance of a slab. *)

val cylinder_axial : length:float -> conductivity:float -> radius:float -> float
(** [cylinder_axial ~length ~conductivity ~radius] is L/(k·πr²), the
    axial resistance of a solid cylinder (TSV filler). *)

val cylindrical_shell_radial :
  inner_radius:float -> thickness:float -> conductivity:float -> length:float -> float
(** [cylindrical_shell_radial ~inner_radius ~thickness ~conductivity
    ~length] is ln((r+t)/r)/(2πkL) — the radial resistance of a
    cylindrical shell, the paper's eq. 9 integral evaluated in closed
    form. *)

val conductance : float -> float
(** [conductance r] is 1/r; raises [Invalid_argument] for nonpositive
    resistances. *)
