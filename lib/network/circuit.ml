module Vec = Ttsv_numerics.Vec
module Dense = Ttsv_numerics.Dense
module Sparse = Ttsv_numerics.Sparse
module Iterative = Ttsv_numerics.Iterative

type node = { cid : int; idx : int } (* idx = -1 for ground *)

type resistor = { a : int; b : int; r : float }

type t = {
  id : int;
  mutable names : string list; (* reversed *)
  mutable n : int;
  mutable resistors : resistor list;
  sources : (int, float) Hashtbl.t;
}

let next_id = ref 0

let create () =
  incr next_id;
  { id = !next_id; names = []; n = 0; resistors = []; sources = Hashtbl.create 16 }

let ground c = { cid = c.id; idx = -1 }

let add_node c name =
  let idx = c.n in
  c.n <- c.n + 1;
  c.names <- name :: c.names;
  { cid = c.id; idx }

let node_count c = c.n

let check_node fn c nd =
  if nd.cid <> c.id then invalid_arg ("Circuit." ^ fn ^ ": node from another circuit");
  if nd.idx < -1 || nd.idx >= c.n then invalid_arg ("Circuit." ^ fn ^ ": invalid node")

let node_name c nd =
  check_node "node_name" c nd;
  if nd.idx = -1 then "ground" else List.nth c.names (c.n - 1 - nd.idx)

let add_resistor c a b r =
  check_node "add_resistor" c a;
  check_node "add_resistor" c b;
  if a.idx = b.idx then invalid_arg "Circuit.add_resistor: self-loop";
  if not (Float.is_finite r) || r <= 0. then
    invalid_arg "Circuit.add_resistor: resistance must be positive and finite";
  c.resistors <- { a = a.idx; b = b.idx; r } :: c.resistors

let add_heat_source c nd q =
  check_node "add_heat_source" c nd;
  if nd.idx >= 0 then begin
    let prev = Option.value (Hashtbl.find_opt c.sources nd.idx) ~default:0. in
    Hashtbl.replace c.sources nd.idx (prev +. q)
  end

let total_injected c = Hashtbl.fold (fun _ q acc -> acc +. q) c.sources 0.

type solution = { circuit : t; temps : float array; matrix : Sparse.t; rhs : float array }

let check_connected c =
  (* BFS from ground over the resistor graph *)
  let adj = Array.make c.n [] in
  let from_ground = ref [] in
  List.iter
    (fun { a; b; _ } ->
      if a = -1 then from_ground := b :: !from_ground
      else if b = -1 then from_ground := a :: !from_ground
      else begin
        adj.(a) <- b :: adj.(a);
        adj.(b) <- a :: adj.(b)
      end)
    c.resistors;
  let seen = Array.make c.n false in
  let rec visit = function
    | [] -> ()
    | i :: rest ->
      if seen.(i) then visit rest
      else begin
        seen.(i) <- true;
        visit (List.rev_append adj.(i) rest)
      end
  in
  visit !from_ground;
  Array.iteri
    (fun i ok ->
      if not ok then
        invalid_arg
          (Printf.sprintf "Circuit.solve: node %S has no path to ground"
             (List.nth c.names (c.n - 1 - i))))
    seen

let assemble c =
  let b = Sparse.builder ~hint:(4 * List.length c.resistors) c.n c.n in
  List.iter
    (fun { a; b = bb; r } ->
      let g = 1. /. r in
      if a >= 0 then Sparse.add b a a g;
      if bb >= 0 then Sparse.add b bb bb g;
      if a >= 0 && bb >= 0 then begin
        Sparse.add b a bb (-.g);
        Sparse.add b bb a (-.g)
      end)
    c.resistors;
  let rhs = Array.make c.n 0. in
  Hashtbl.iter (fun i q -> rhs.(i) <- rhs.(i) +. q) c.sources;
  (Sparse.finalize b, rhs)

let assembled c =
  check_connected c;
  assemble c

let node_index c nd =
  check_node "node_index" c nd;
  if nd.idx = -1 then invalid_arg "Circuit.node_index: ground node has no row";
  nd.idx

(* Thevenin resistance between two nodes: inject +1 W at [a], -1 W at [b],
   read the temperature difference.  Sources are ignored by solving with a
   unit-injection right-hand side only. *)
let equivalent_resistance c a b =
  check_node "equivalent_resistance" c a;
  check_node "equivalent_resistance" c b;
  if a.idx = b.idx then 0.
  else begin
    check_connected c;
    let matrix, _ = assemble c in
    let rhs = Array.make c.n 0. in
    if a.idx >= 0 then rhs.(a.idx) <- rhs.(a.idx) +. 1.;
    if b.idx >= 0 then rhs.(b.idx) <- rhs.(b.idx) -. 1.;
    let temps =
      if c.n <= 256 then Dense.solve (Sparse.to_dense matrix) rhs
      else
        match Iterative.cg ~tol:1e-12 matrix rhs with
        | { solution; converged = true; _ } -> solution
        | { converged = false; _ } -> Dense.solve (Sparse.to_dense matrix) rhs
    in
    let at i = if i = -1 then 0. else temps.(i) in
    at a.idx -. at b.idx
  end

let solve c =
  if c.n = 0 then
    { circuit = c; temps = [||]; matrix = Sparse.finalize (Sparse.builder 0 0); rhs = [||] }
  else begin
    check_connected c;
    let matrix, rhs = assemble c in
    let temps =
      if c.n <= 256 then Dense.solve (Sparse.to_dense matrix) rhs
      else
        match Iterative.cg ~tol:1e-12 matrix rhs with
        | { solution; converged = true; _ } -> solution
        | { converged = false; _ } ->
          (* CG can stagnate on extreme conductance ratios; fall back to LU *)
          Dense.solve (Sparse.to_dense matrix) rhs
    in
    { circuit = c; temps; matrix; rhs }
  end

let temperature s nd =
  check_node "temperature" s.circuit nd;
  if nd.idx = -1 then 0. else s.temps.(nd.idx)

let temperatures s = Array.copy s.temps

let max_temperature s = if Array.length s.temps = 0 then 0. else Vec.max_elt s.temps

let branch_heat_flow s a b =
  check_node "branch_heat_flow" s.circuit a;
  check_node "branch_heat_flow" s.circuit b;
  let temp i = if i = -1 then 0. else s.temps.(i) in
  List.fold_left
    (fun acc { a = ra; b = rb; r } ->
      if ra = a.idx && rb = b.idx then acc +. ((temp ra -. temp rb) /. r)
      else if ra = b.idx && rb = a.idx then acc -. ((temp ra -. temp rb) /. r)
      else acc)
    0. s.circuit.resistors

let residual_norm s =
  if Array.length s.temps = 0 then 0.
  else Vec.norm_inf (Vec.sub (Sparse.mat_vec s.matrix s.temps) s.rhs)

let pp ppf c =
  Format.fprintf ppf "circuit(%d nodes, %d resistors, %.4g W injected)" c.n
    (List.length c.resistors) (total_injected c)
