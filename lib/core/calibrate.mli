(** Fitting Model A's coefficients against a reference solver.

    The paper obtains k1 and k2 by simulating one representative block in
    COMSOL and minimizing the discrepancy; this module automates the
    procedure against any reference (in this repository: the
    finite-volume solver in [ttsv_fem]).  The objective is the mean
    squared relative error of Model A's Max ΔT over the supplied
    samples, minimized by Nelder–Mead in log-coefficient space (which
    keeps both coefficients positive without constraints). *)

type sample = {
  stack : Ttsv_geometry.Stack.t;
  reference : float;  (** reference Max ΔT for that stack, K *)
}

type fit = {
  coefficients : Coefficients.t;
  rms_rel_error : float;  (** RMS relative error of Model A at the fit *)
  iterations : int;
}

val fit : ?initial:Coefficients.t -> sample list -> fit
(** [fit samples] minimizes over (k1, k2) starting from [initial]
    (default {!Coefficients.paper_block}).  Raises [Invalid_argument] on
    an empty sample list or a nonpositive reference. *)

val objective : Coefficients.t -> sample list -> float
(** The mean squared relative error Model A incurs with the given
    coefficients — exposed for the ablation experiment and tests. *)
