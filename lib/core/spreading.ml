let psi ~epsilon ~tau ~biot =
  if epsilon <= 0. || epsilon > 1. then invalid_arg "Spreading.psi: epsilon outside (0, 1]";
  if tau <= 0. then invalid_arg "Spreading.psi: tau must be positive";
  if biot <= 0. then invalid_arg "Spreading.psi: biot must be positive";
  let sqrt_pi = sqrt Float.pi in
  let lambda = Float.pi +. (1. /. (sqrt_pi *. epsilon)) in
  let th = tanh (lambda *. tau) in
  let phi =
    if Float.is_finite biot then
      (th +. (lambda /. biot)) /. (1. +. (lambda /. biot *. th))
    else th
  in
  (epsilon *. tau /. sqrt_pi) +. (1. /. sqrt_pi *. (1. -. epsilon) *. phi)

let resistance ~source_radius ~cell_radius ~thickness ~conductivity ?heat_transfer_coeff () =
  if source_radius <= 0. || cell_radius <= 0. || thickness <= 0. || conductivity <= 0. then
    invalid_arg "Spreading.resistance: arguments must be positive";
  if source_radius > cell_radius then
    invalid_arg "Spreading.resistance: source larger than the cell";
  let epsilon = source_radius /. cell_radius in
  let tau = thickness /. cell_radius in
  let biot =
    match heat_transfer_coeff with
    | Some h ->
      if h <= 0. then invalid_arg "Spreading.resistance: heat transfer coeff must be positive";
      h *. cell_radius /. conductivity
    | None -> Float.infinity
  in
  psi ~epsilon ~tau ~biot /. (sqrt Float.pi *. conductivity *. source_radius)

let one_d_resistance ~cell_radius ~thickness ~conductivity =
  if cell_radius <= 0. || thickness <= 0. || conductivity <= 0. then
    invalid_arg "Spreading.one_d_resistance: arguments must be positive";
  thickness /. (conductivity *. Float.pi *. cell_radius *. cell_radius)

let spreading_factor ~source_radius ~cell_radius ~thickness ~conductivity =
  resistance ~source_radius ~cell_radius ~thickness ~conductivity ()
  /. one_d_resistance ~cell_radius ~thickness ~conductivity
