(** Model A — the paper's lumped compact resistive network (§II).

    Every plane contributes one bulk node (the paper's T1, T3, T5) and,
    except the last plane, one TTSV node (T2, T4); the network follows
    eqs. 1–6:

    - the bulk nodes form a vertical chain through the [bulk] resistances
      (R1, R4, R7);
    - the TTSV nodes form a parallel chain through the [tsv] resistances
      (R2, R5);
    - each plane couples its bulk node to its TTSV node through the
      lateral [liner] resistance (R3, R6);
    - the last plane's TTSV segment reaches the top bulk node through
      [tsv] and [liner] in series (R8 + R9, eq. 1);
    - the first plane's substrate connects everything to the heat sink
      through R_s (eq. 6).

    Heat q_i enters at each bulk node.  Works for any number of planes
    (≥ 1), as the paper's §II closing remark describes. *)

type result = {
  t0 : float;  (** rise of the node above R_s (the paper's T0), K *)
  bulk : float array;  (** per-plane bulk-node rises (T1, T3, T5, …), K *)
  tsv : float array;  (** per-plane TTSV-node rises (T2, T4, …), length N−1, K *)
  tsv_heat : float;
      (** heat the TTSV delivers to the sink side at its foot (flow from the
          first TTSV node down into T0), W; positive when the via cools *)
  resistances : Resistances.t;  (** the stamped eq. 7–16 values *)
}

val solve : ?coeffs:Coefficients.t -> Ttsv_geometry.Stack.t -> result
(** [solve ?coeffs stack] evaluates the model with the given (default
    unity) fitting coefficients, using the stack's per-plane heat
    inputs. *)

val solve_with_heats :
  ?coeffs:Coefficients.t -> Ttsv_geometry.Stack.t -> Ttsv_numerics.Vec.t -> result
(** [solve_with_heats ?coeffs stack qs] overrides the per-plane heat
    inputs (length must equal the plane count). *)

val solve_triples : Resistances.t -> Ttsv_numerics.Vec.t -> result
(** [solve_triples rs qs] solves the network for externally supplied
    resistances — the entry point used by the cluster model, which edits
    the liner entries per eq. 22 before solving. *)

type network = {
  circuit : Ttsv_network.Circuit.t;
  t0_node : Ttsv_network.Circuit.node;
  bulk_nodes : Ttsv_network.Circuit.node array;
  tsv_nodes : Ttsv_network.Circuit.node array;
}
(** The eq. 1–6 network before solving, with its node handles. *)

val build_network : Resistances.t -> Ttsv_numerics.Vec.t -> network
(** [build_network rs qs] stamps the Model A circuit without solving it —
    used by the transient extension, which augments the same network with
    nodal heat capacities. *)

val max_rise : result -> float
(** [max_rise r] is the paper's "Max ΔT": the largest nodal temperature
    rise above the heat sink. *)

val sink_path_heat : result -> float
(** Heat flowing through R_s (should equal total injected heat —
    asserted by the test suite as an energy-conservation check). *)
