(** Thermal spreading (constriction) resistance.

    When heat from a small circular source of radius [a] enters a
    cylindrical block of radius [b] and thickness [t], the resistance
    exceeds the 1-D slab value because flow lines must converge; this is
    the physics the paper's fitting coefficients absorb at the unit-cell
    scale and the physics that sizes heat spreaders at the package scale.
    This module implements the closed-form approximation of Lee, Song,
    Au and Moran (1995), accurate to a few percent against the exact
    series solution over the practical parameter range.

    Dimensionless form: ε = a/b, τ = t/b, Bi = h·b/k;

      λ = π + 1/(√π·ε)
      Φ = (tanh(λτ) + λ/Bi) / (1 + (λ/Bi)·tanh(λτ))
      ψ = ετ/√π + (1/√π)·(1 − ε)·Φ
      R = ψ / (√π·k·a)

    The ε → 1 limit recovers the exact 1-D slab resistance t/(πkb²) —
    asserted by the test suite. *)

val psi : epsilon:float -> tau:float -> biot:float -> float
(** Dimensionless average spreading parameter.  Requires
    [0 < epsilon <= 1], [tau > 0], [biot > 0] (use [infinity] for an
    isothermal base). *)

val resistance :
  source_radius:float ->
  cell_radius:float ->
  thickness:float ->
  conductivity:float ->
  ?heat_transfer_coeff:float ->
  unit ->
  float
(** Total source-to-base resistance, K/W.  [heat_transfer_coeff] is the
    convective coefficient at the base (default: isothermal base). *)

val one_d_resistance : cell_radius:float -> thickness:float -> conductivity:float -> float
(** The 1-D slab value t/(k·πb²) — the no-constriction floor. *)

val spreading_factor :
  source_radius:float -> cell_radius:float -> thickness:float -> conductivity:float -> float
(** [resistance / one_d_resistance] for an isothermal base: ≥ 1, equal
    to 1 when the source covers the cell. *)
