module Stack = Ttsv_geometry.Stack
module Plane = Ttsv_geometry.Plane
module Tsv = Ttsv_geometry.Tsv
module Material = Ttsv_physics.Material

type triple = { bulk : float; tsv : float; liner : float }

type t = { triples : triple array; r_sink : float; silicon_area : float }

let plane_span stack i =
  let n = Stack.num_planes stack in
  let p = Stack.plane stack i in
  let tsv = stack.Stack.tsv in
  if i = 0 then p.Plane.t_ild +. tsv.Tsv.extension
  else if i = n - 1 then p.Plane.t_bond +. p.Plane.t_substrate
  else p.Plane.t_bond +. p.Plane.t_substrate +. p.Plane.t_ild

(* Vertical path of the surroundings: the per-layer t/k sum over the span of
   plane i, divided by k1*A (eqs. 7, 10, 13). *)
let bulk_layers stack i =
  let n = Stack.num_planes stack in
  let p = Stack.plane stack i in
  let k_of (m : Material.t) = m.Material.conductivity in
  let ild = p.Plane.t_ild /. k_of p.Plane.ild in
  let bond = p.Plane.t_bond /. k_of p.Plane.bond in
  if i = 0 then ild +. (stack.Stack.tsv.Tsv.extension /. k_of p.Plane.substrate)
  else if i = n - 1 then ild +. (p.Plane.t_substrate /. k_of p.Plane.substrate) +. bond
  else ild +. (p.Plane.t_substrate /. k_of p.Plane.substrate) +. bond

let of_stack ?(coeffs = Coefficients.unity) stack =
  let { Coefficients.k1; k2 } = coeffs in
  let tsv = stack.Stack.tsv in
  let area = Stack.silicon_area stack in
  let k_fill = tsv.Tsv.filler.Material.conductivity in
  let k_liner = tsv.Tsv.liner.Material.conductivity in
  let fill_area = Tsv.fill_area tsv in
  let triple i =
    let span = plane_span stack i in
    let bulk = bulk_layers stack i /. (k1 *. area) in
    let tsv_r = span /. (k1 *. k_fill *. fill_area) in
    let liner =
      log (Tsv.outer_radius tsv /. tsv.Tsv.radius)
      /. (2. *. Float.pi *. k2 *. k_liner *. span)
    in
    { bulk; tsv = tsv_r; liner }
  in
  let n = Stack.num_planes stack in
  let first = Stack.plane stack 0 in
  let r_sink =
    (first.Plane.t_substrate -. tsv.Tsv.extension)
    /. (k1 *. first.Plane.substrate.Material.conductivity *. stack.Stack.footprint)
  in
  { triples = Array.init n triple; r_sink; silicon_area = area }

let pp ppf t =
  let n = Array.length t.triples in
  if n = 3 then begin
    let r1 = t.triples.(0) and r2 = t.triples.(1) and r3 = t.triples.(2) in
    Format.fprintf ppf
      "@[<v>R1=%.4g R2=%.4g R3=%.4g@,R4=%.4g R5=%.4g R6=%.4g@,R7=%.4g R8=%.4g R9=%.4g@,Rs=%.4g@]"
      r1.bulk r1.tsv r1.liner r2.bulk r2.tsv r2.liner r3.bulk r3.tsv r3.liner t.r_sink
  end
  else begin
    Format.fprintf ppf "@[<v>";
    Array.iteri
      (fun i tr ->
        Format.fprintf ppf "plane %d: bulk=%.4g tsv=%.4g liner=%.4g@," (i + 1) tr.bulk tr.tsv
          tr.liner)
      t.triples;
    Format.fprintf ppf "Rs=%.4g@]" t.r_sink
  end
