(** The paper's closed-form thermal resistances (eqs. 7–16).

    For every plane of a stack this module evaluates the triple of
    resistances Model A stamps into its network:

    - [bulk]  — the vertical resistance of the TTSV's surroundings
      (R1 for the first plane, R4-style for middle planes, R7-style for
      the last plane);
    - [tsv]   — the vertical resistance of the TTSV filler over the same
      span (R2 / R5 / R8);
    - [liner] — the lateral (radial) resistance of the dielectric liner
      (R3 / R6 / R9), i.e. the closed form of the eq. 9 integral.

    Spans follow the paper exactly: the first plane covers its ILD plus
    the TSV extension [l_ext]; middle planes cover bond + substrate +
    ILD; the last plane's [bulk] covers bond + substrate + ILD but its
    [tsv] and [liner] cover only bond + substrate because the TTSV stops
    at the top of the last substrate (eqs. 13–15).  The remaining
    first-plane substrate below the TSV tip is [r_sink] (eq. 16, R_s). *)

type triple = {
  bulk : float;  (** vertical resistance of the surroundings, K/W *)
  tsv : float;  (** vertical resistance of the TTSV filler, K/W *)
  liner : float;  (** lateral liner resistance, K/W *)
}

type t = {
  triples : triple array;  (** one triple per plane, index 0 = next to the sink *)
  r_sink : float;  (** R_s, the first-plane substrate bulk below the TSV tip *)
  silicon_area : float;  (** A = A₀ − π(r + t_L)², shared by the [bulk] entries *)
}

val plane_span : Ttsv_geometry.Stack.t -> int -> float
(** [plane_span stack i] is the vertical distance the plane-[i] TTSV
    segment covers (see the spans above) — also the liner length of
    that plane. *)

val of_stack : ?coeffs:Coefficients.t -> Ttsv_geometry.Stack.t -> t
(** [of_stack ?coeffs stack] evaluates eqs. 7–16 for every plane.
    [coeffs] defaults to {!Coefficients.unity}.  Material conductivities
    are taken from each plane's own materials, so heterogeneous stacks
    are supported. *)

val pp : Format.formatter -> t -> unit
(** Prints the resistances in the paper's R1…R_s naming for a 3-plane
    stack, or indexed triples otherwise. *)
