module Units = Ttsv_physics.Units
module Plane = Ttsv_geometry.Plane
module Tsv = Ttsv_geometry.Tsv
module Stack = Ttsv_geometry.Stack

let device_layer_thickness = Units.um 1.
let device_power_density = Units.w_per_mm3 700.
let ild_power_density = Units.w_per_mm3 70.

let footprint_block = Units.um 100. *. Units.um 100.

let block ?(r = Units.um 5.) ?(t_liner = Units.um 1.) ?(t_ild = Units.um 4.)
    ?(t_bond = Units.um 1.) ?(t_si23 = Units.um 45.) ?(t_si1 = Units.um 500.)
    ?(l_ext = Units.um 1.) () =
  let tsv = Tsv.make ~radius:r ~liner_thickness:t_liner ~extension:l_ext () in
  let plane ~t_substrate ~t_bond =
    Plane.make ~t_substrate ~t_ild ~t_bond ~t_device:device_layer_thickness
      ~device_power_density ~ild_power_density ()
  in
  Stack.make ~footprint:footprint_block
    ~planes:
      [
        plane ~t_substrate:t_si1 ~t_bond:0.;
        plane ~t_substrate:t_si23 ~t_bond;
        plane ~t_substrate:t_si23 ~t_bond;
      ]
    ~tsv ()

let block_checked ?(r = Units.um 5.) ?(t_liner = Units.um 1.) ?(t_ild = Units.um 4.)
    ?(t_bond = Units.um 1.) ?(t_si23 = Units.um 45.) ?(t_si1 = Units.um 500.)
    ?(l_ext = Units.um 1.) () =
  match
    Ttsv_robust.Validate.block ~r ~t_liner ~t_ild ~t_bond ~t_si23 ~t_si1 ~l_ext
      ~t_device:device_layer_thickness ~footprint:footprint_block
  with
  | [] -> Ok (block ~r ~t_liner ~t_ild ~t_bond ~t_si23 ~t_si1 ~l_ext ())
  | violations -> Error violations

let fig4_stack r =
  let t_si23 = if r <= Units.um 5. then Units.um 5. else Units.um 45. in
  block ~r ~t_liner:(Units.um 0.5) ~t_ild:(Units.um 4.) ~t_bond:(Units.um 1.) ~t_si23 ()

let fig5_stack t_liner =
  block ~r:(Units.um 5.) ~t_liner ~t_ild:(Units.um 7.) ~t_bond:(Units.um 1.)
    ~t_si23:(Units.um 45.) ()

let fig6_stack t_si =
  block ~r:(Units.um 8.) ~t_liner:(Units.um 1.) ~t_ild:(Units.um 7.) ~t_bond:(Units.um 1.)
    ~t_si23:t_si ()

let fig7_stack () =
  block ~r:(Units.um 10.) ~t_liner:(Units.um 1.) ~t_ild:(Units.um 4.) ~t_bond:(Units.um 1.)
    ~t_si23:(Units.um 20.) ()

let block_coeffs = Coefficients.paper_block

let case_study_powers = [| 70.; 7.; 7. |]

let case_study () =
  let footprint_total = Units.mm 10. *. Units.mm 10. in
  let tsv = Tsv.make ~radius:(Units.um 30.) ~liner_thickness:(Units.um 1.)
      ~extension:(Units.um 1.) ()
  in
  let count, cell_area = Stack.cells_for_density ~footprint_total ~density:0.005 ~tsv in
  (* each unit cell carries its share of the plane powers, expressed as a
     device-layer volumetric density over the cell *)
  let plane ~watts ~t_bond =
    let density = watts /. (footprint_total *. device_layer_thickness) in
    Plane.make ~t_substrate:(Units.um 300.) ~t_ild:(Units.um 20.) ~t_bond
      ~t_device:device_layer_thickness ~device_power_density:density ~ild_power_density:0. ()
  in
  let stack =
    Stack.make ~footprint:cell_area
      ~planes:
        [
          plane ~watts:case_study_powers.(0) ~t_bond:0.;
          plane ~watts:case_study_powers.(1) ~t_bond:(Units.um 10.);
          plane ~watts:case_study_powers.(2) ~t_bond:(Units.um 10.);
        ]
      ~tsv ()
  in
  (stack, count)

let case_study_coeffs = Coefficients.paper_case_study
