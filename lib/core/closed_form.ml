module Stack = Ttsv_geometry.Stack

type temperatures = { t0 : float; t1 : float; t2 : float; t3 : float; t4 : float; t5 : float }

(* Elimination order (see the interface): θ5 out of the T5 equation, θ2 out
   of the T2 equation, Cramer on the remaining symmetric 3x3 in
   (θ1, θ3, θ4). *)
let solve (rs : Resistances.t) ~q1 ~q2 ~q3 =
  if Array.length rs.Resistances.triples <> 3 then
    invalid_arg "Closed_form.solve: expects exactly three planes";
  let p1 = rs.Resistances.triples.(0)
  and p2 = rs.Resistances.triples.(1)
  and p3 = rs.Resistances.triples.(2) in
  let g1 = 1. /. p1.Resistances.bulk
  and g2 = 1. /. p1.Resistances.tsv
  and g3 = 1. /. p1.Resistances.liner
  and g4 = 1. /. p2.Resistances.bulk
  and g5 = 1. /. p2.Resistances.tsv
  and g6 = 1. /. p2.Resistances.liner
  and g89 = 1. /. (p3.Resistances.tsv +. p3.Resistances.liner)
  and g7 = 1. /. p3.Resistances.bulk in
  (* θ5 = (q3 + g7 θ3 + g89 θ4) / s *)
  let s = g7 +. g89 in
  (* θ2 = (g3 θ1 + g5 θ4) / p *)
  let p = g2 +. g3 +. g5 in
  let a = g1 +. g3 +. g4 -. (g3 *. g3 /. p) in
  let b = g4 +. g6 +. g7 -. (g7 *. g7 /. s) in
  let cc = g5 +. g6 +. g89 -. (g89 *. g89 /. s) -. (g5 *. g5 /. p) in
  let c = g6 +. (g7 *. g89 /. s) in
  let d = g3 *. g5 /. p in
  let b1 = q1 in
  let b3 = q2 +. (g7 *. q3 /. s) in
  let b4 = g89 *. q3 /. s in
  (* symmetric 3x3:  [ a  -g4  -d ] [θ1]   [b1]
                     [-g4   b  -c ] [θ3] = [b3]
                     [ -d  -c  cc ] [θ4]   [b4]   *)
  let det =
    (a *. ((b *. cc) -. (c *. c)))
    +. (g4 *. ((-.g4 *. cc) -. (c *. d)))
    -. (d *. ((g4 *. c) +. (b *. d)))
  in
  if Float.abs det < 1e-300 then invalid_arg "Closed_form.solve: singular network";
  let det1 =
    (b1 *. ((b *. cc) -. (c *. c)))
    +. (g4 *. ((b3 *. cc) +. (c *. b4)))
    -. (d *. ((-.b3 *. c) -. (b *. b4)))
  in
  let det3 =
    (a *. ((b3 *. cc) +. (c *. b4)))
    -. (b1 *. ((-.g4 *. cc) -. (c *. d)))
    -. (d *. ((-.g4 *. b4) +. (b3 *. d)))
  in
  let det4 =
    (a *. ((b *. b4) +. (c *. b3)))
    +. (g4 *. ((-.g4 *. b4) +. (b3 *. d)))
    +. (b1 *. ((g4 *. c) +. (b *. d)))
  in
  let th1 = det1 /. det and th3 = det3 /. det and th4 = det4 /. det in
  let th2 = ((g3 *. th1) +. (g5 *. th4)) /. p in
  let th5 = (q3 +. (g7 *. th3) +. (g89 *. th4)) /. s in
  let t0 = rs.Resistances.r_sink *. (q1 +. q2 +. q3) in
  {
    t0;
    t1 = th1 +. t0;
    t2 = th2 +. t0;
    t3 = th3 +. t0;
    t4 = th4 +. t0;
    t5 = th5 +. t0;
  }

let of_stack ?coeffs stack =
  if Stack.num_planes stack <> 3 then
    invalid_arg "Closed_form.of_stack: expects a three-plane stack";
  let rs = Resistances.of_stack ?coeffs stack in
  let qs = Stack.heat_inputs stack in
  solve rs ~q1:qs.(0) ~q2:qs.(1) ~q3:qs.(2)

let max_rise t =
  List.fold_left Float.max t.t0 [ t.t1; t.t2; t.t3; t.t4; t.t5 ]
