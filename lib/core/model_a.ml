module Stack = Ttsv_geometry.Stack
module Circuit = Ttsv_network.Circuit

type result = {
  t0 : float;
  bulk : float array;
  tsv : float array;
  tsv_heat : float;
  resistances : Resistances.t;
}

type network = {
  circuit : Circuit.t;
  t0_node : Circuit.node;
  bulk_nodes : Circuit.node array;
  tsv_nodes : Circuit.node array;
}

(* Stamp the eq. 1-6 network from per-plane triples. *)
let build_network (rs : Resistances.t) qs =
  let n = Array.length rs.Resistances.triples in
  if n = 0 then invalid_arg "Model_a.build_network: no planes";
  if Array.length qs <> n then
    invalid_arg "Model_a.build_network: heat vector length mismatch";
  let c = Circuit.create () in
  let ground = Circuit.ground c in
  let t0 = Circuit.add_node c "T0" in
  Circuit.add_resistor c t0 ground rs.Resistances.r_sink;
  let bulk = Array.init n (fun i -> Circuit.add_node c (Printf.sprintf "bulk%d" (i + 1))) in
  let tsv =
    Array.init (Stdlib.max (n - 1) 0) (fun i -> Circuit.add_node c (Printf.sprintf "tsv%d" (i + 1)))
  in
  (* bulk chain: T0 - B1 - B2 - ... - BN *)
  Array.iteri
    (fun i (tr : Resistances.triple) ->
      let below = if i = 0 then t0 else bulk.(i - 1) in
      Circuit.add_resistor c below bulk.(i) tr.Resistances.bulk)
    rs.Resistances.triples;
  (* TTSV chain: T0 - V1 - ... - V(N-1), closed at the top through R8+R9 *)
  if n = 1 then begin
    (* single plane: the TSV foot at T0 reaches the bulk node through the
       filler and liner in series *)
    let tr = rs.Resistances.triples.(0) in
    Circuit.add_resistor c t0 bulk.(0) (tr.Resistances.tsv +. tr.Resistances.liner)
  end
  else begin
    for i = 0 to n - 2 do
      let tr = rs.Resistances.triples.(i) in
      let below = if i = 0 then t0 else tsv.(i - 1) in
      Circuit.add_resistor c below tsv.(i) tr.Resistances.tsv;
      Circuit.add_resistor c bulk.(i) tsv.(i) tr.Resistances.liner
    done;
    let top = rs.Resistances.triples.(n - 1) in
    Circuit.add_resistor c tsv.(n - 2) bulk.(n - 1) (top.Resistances.tsv +. top.Resistances.liner)
  end;
  Array.iteri (fun i q -> Circuit.add_heat_source c bulk.(i) q) qs;
  { circuit = c; t0_node = t0; bulk_nodes = bulk; tsv_nodes = tsv }

let solve_triples (rs : Resistances.t) qs =
  let n = Array.length rs.Resistances.triples in
  let { circuit; t0_node; bulk_nodes; tsv_nodes } = build_network rs qs in
  let sol = Circuit.solve circuit in
  let temp = Circuit.temperature sol in
  {
    t0 = temp t0_node;
    bulk = Array.map temp bulk_nodes;
    tsv = Array.map temp tsv_nodes;
    tsv_heat =
      (if n = 1 then Circuit.branch_heat_flow sol bulk_nodes.(0) t0_node
       else Circuit.branch_heat_flow sol tsv_nodes.(0) t0_node);
    resistances = rs;
  }

let solve_with_heats ?coeffs stack qs =
  solve_triples (Resistances.of_stack ?coeffs stack) qs

let solve ?coeffs stack = solve_with_heats ?coeffs stack (Stack.heat_inputs stack)

let max_rise r =
  let m = Array.fold_left Float.max r.t0 r.bulk in
  Array.fold_left Float.max m r.tsv

let sink_path_heat r = r.t0 /. r.resistances.Resistances.r_sink
