module Optimize = Ttsv_numerics.Optimize

type sample = { stack : Ttsv_geometry.Stack.t; reference : float }

type fit = { coefficients : Coefficients.t; rms_rel_error : float; iterations : int }

let objective coeffs samples =
  let total =
    List.fold_left
      (fun acc { stack; reference } ->
        let predicted = Model_a.max_rise (Model_a.solve ~coeffs stack) in
        let rel = (predicted -. reference) /. reference in
        acc +. (rel *. rel))
      0. samples
  in
  total /. float_of_int (List.length samples)

let fit ?(initial = Coefficients.paper_block) samples =
  if samples = [] then invalid_arg "Calibrate.fit: no samples";
  List.iter
    (fun { reference; _ } ->
      if reference <= 0. then invalid_arg "Calibrate.fit: references must be positive")
    samples;
  let of_logs v = Coefficients.make ~k1:(exp v.(0)) ~k2:(exp v.(1)) in
  let f v = objective (of_logs v) samples in
  let x0 = [| log initial.Coefficients.k1; log initial.Coefficients.k2 |] in
  let m = Optimize.nelder_mead ~tol:1e-14 ~max_iter:500 f x0 in
  {
    coefficients = of_logs m.Optimize.xmin;
    rms_rel_error = sqrt m.Optimize.fmin;
    iterations = m.Optimize.iterations;
  }
