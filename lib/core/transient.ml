module Stack = Ttsv_geometry.Stack
module Plane = Ttsv_geometry.Plane
module Tsv = Ttsv_geometry.Tsv
module Material = Ttsv_physics.Material
module Circuit = Ttsv_network.Circuit
module Dense = Ttsv_numerics.Dense
module Sparse = Ttsv_numerics.Sparse

type result = {
  times : float array;
  max_rise : float array;
  bulk : float array array;
  steady : Model_a.result;
}

(* Lumped nodal heat capacities, J/K: each node absorbs the thermal mass of
   the layers its resistances span. *)
let capacities stack (net : Model_a.network) n_nodes =
  let caps = Array.make n_nodes 0. in
  let put node c = caps.(Circuit.node_index net.Model_a.circuit node) <- c in
  let n = Stack.num_planes stack in
  let tsv = stack.Stack.tsv in
  let area = Stack.silicon_area stack in
  let rc (m : Material.t) = m.Material.volumetric_heat_capacity in
  let first = Stack.plane stack 0 in
  put net.Model_a.t0_node
    (stack.Stack.footprint
    *. (first.Plane.t_substrate -. tsv.Tsv.extension)
    *. rc first.Plane.substrate);
  for i = 0 to n - 1 do
    let p = Stack.plane stack i in
    let si_span = if i = 0 then tsv.Tsv.extension else p.Plane.t_substrate in
    let vol_rc =
      area
      *. ((p.Plane.t_ild *. rc p.Plane.ild)
         +. (si_span *. rc p.Plane.substrate)
         +. (p.Plane.t_bond *. rc p.Plane.bond))
    in
    put net.Model_a.bulk_nodes.(i) vol_rc;
    if i < n - 1 then begin
      let span = Resistances.plane_span stack i in
      put net.Model_a.tsv_nodes.(i) (Tsv.fill_area tsv *. span *. rc tsv.Tsv.filler)
    end
  done;
  caps

let solve ?coeffs ?(power = fun _ -> 1.) stack ~dt ~duration =
  if dt <= 0. then invalid_arg "Transient.solve: dt must be positive";
  if duration <= 0. then invalid_arg "Transient.solve: duration must be positive";
  let rs = Resistances.of_stack ?coeffs stack in
  let qs = Stack.heat_inputs stack in
  let steady = Model_a.solve_triples rs qs in
  let net = Model_a.build_network rs qs in
  let g, q0 = Circuit.assembled net.Model_a.circuit in
  let n = Sparse.rows g in
  let caps = capacities stack net n in
  let system = Sparse.to_dense g in
  for i = 0 to n - 1 do
    Dense.add_to system i i (caps.(i) /. dt)
  done;
  let lu = Dense.lu_factor system in
  let steps = int_of_float (Float.ceil (duration /. dt)) in
  let nplanes = Stack.num_planes stack in
  let bulk_idx =
    Array.map (Circuit.node_index net.Model_a.circuit) net.Model_a.bulk_nodes
  in
  let t = ref (Array.make n 0.) in
  let times = Array.make (steps + 1) 0. in
  let maxes = Array.make (steps + 1) 0. in
  let bulk = Array.make_matrix (steps + 1) nplanes 0. in
  for m = 1 to steps do
    let time = float_of_int m *. dt in
    let scale = power time in
    let rhs = Array.init n (fun i -> (q0.(i) *. scale) +. (caps.(i) /. dt *. !t.(i))) in
    t := Dense.lu_solve lu rhs;
    times.(m) <- time;
    maxes.(m) <- Array.fold_left Float.max 0. !t;
    for p = 0 to nplanes - 1 do
      bulk.(m).(p) <- !t.(bulk_idx.(p))
    done
  done;
  { times; max_rise = maxes; bulk; steady }

let time_constant r =
  let target = (1. -. exp (-1.)) *. Model_a.max_rise r.steady in
  let n = Array.length r.times in
  let rec find i =
    if i >= n then failwith "Transient.time_constant: simulation too short"
    else if r.max_rise.(i) >= target then
      if i = 0 then r.times.(0)
      else begin
        (* linear interpolation inside the step *)
        let t0 = r.times.(i - 1) and t1 = r.times.(i) in
        let y0 = r.max_rise.(i - 1) and y1 = r.max_rise.(i) in
        t0 +. ((target -. y0) /. (y1 -. y0) *. (t1 -. t0))
      end
    else find (i + 1)
  in
  find 0

let settled ?(tol = 0.01) r =
  let steady = Model_a.max_rise r.steady in
  let final = r.max_rise.(Array.length r.max_rise - 1) in
  Float.abs (final -. steady) /. steady <= tol
