module Stack = Ttsv_geometry.Stack
module Tsv = Ttsv_geometry.Tsv
module Material = Ttsv_physics.Material

let divided_resistances ?(coeffs = Coefficients.unity) stack n =
  if n < 1 then invalid_arg "Cluster.divided_resistances: n must be >= 1";
  let rs = Resistances.of_stack ~coeffs stack in
  if n = 1 then rs
  else begin
    let tsv = stack.Stack.tsv in
    let r0 = tsv.Tsv.radius and t_l = tsv.Tsv.liner_thickness in
    let k_liner = tsv.Tsv.liner.Material.conductivity in
    let fn = float_of_int n in
    let triples =
      Array.mapi
        (fun i (tr : Resistances.triple) ->
          let span = Resistances.plane_span stack i in
          let liner =
            log (((t_l *. sqrt fn) +. r0) /. r0)
            /. (2. *. fn *. Float.pi *. coeffs.Coefficients.k2 *. k_liner *. span)
          in
          { tr with Resistances.liner })
        rs.Resistances.triples
    in
    { rs with Resistances.triples }
  end

let solve ?coeffs stack n =
  Model_a.solve_triples (divided_resistances ?coeffs stack n) (Stack.heat_inputs stack)

(* First-principles variant: n thin TTSVs in parallel, geometry recomputed. *)
let solve_naive ?(coeffs = Coefficients.unity) stack n =
  if n < 1 then invalid_arg "Cluster.solve_naive: n must be >= 1";
  let tsv = stack.Stack.tsv in
  let thin = Tsv.divide tsv n in
  let fn = float_of_int n in
  (* resistances of one thin via's unit cell scaled: n vias in parallel share
     the cell, so the per-cell silicon area shrinks accordingly *)
  let area = stack.Stack.footprint -. (fn *. Tsv.occupied_area thin) in
  if area <= 0. then invalid_arg "Cluster.solve_naive: vias no longer fit the footprint";
  let { Coefficients.k1; k2 } = coeffs in
  let k_fill = thin.Tsv.filler.Material.conductivity in
  let k_liner = thin.Tsv.liner.Material.conductivity in
  let nplanes = Stack.num_planes stack in
  let triple i =
    let span = Resistances.plane_span stack i in
    let p = Stack.plane stack i in
    let k_of (m : Material.t) = m.Material.conductivity in
    let layers =
      let ild = p.Ttsv_geometry.Plane.t_ild /. k_of p.Ttsv_geometry.Plane.ild in
      let bond = p.Ttsv_geometry.Plane.t_bond /. k_of p.Ttsv_geometry.Plane.bond in
      if i = 0 then ild +. (tsv.Tsv.extension /. k_of p.Ttsv_geometry.Plane.substrate)
      else if i = nplanes - 1 then
        ild +. (p.Ttsv_geometry.Plane.t_substrate /. k_of p.Ttsv_geometry.Plane.substrate) +. bond
      else
        ild +. (p.Ttsv_geometry.Plane.t_substrate /. k_of p.Ttsv_geometry.Plane.substrate) +. bond
    in
    let bulk = layers /. (k1 *. area) in
    (* n fillers in parallel: same total metal area as the original *)
    let tsv_r = span /. (k1 *. k_fill *. fn *. Tsv.fill_area thin) in
    let liner =
      log (Tsv.outer_radius thin /. thin.Tsv.radius)
      /. (2. *. fn *. Float.pi *. k2 *. k_liner *. span)
    in
    { Resistances.bulk; tsv = tsv_r; liner }
  in
  let first = Stack.plane stack 0 in
  let r_sink =
    (first.Ttsv_geometry.Plane.t_substrate -. tsv.Tsv.extension)
    /. (k1 *. first.Ttsv_geometry.Plane.substrate.Material.conductivity *. stack.Stack.footprint)
  in
  let rs =
    {
      Resistances.triples = Array.init nplanes triple;
      r_sink;
      silicon_area = area;
    }
  in
  Model_a.solve_triples rs (Stack.heat_inputs stack)

let max_rise_series ?coeffs stack ns =
  List.map (fun n -> Model_a.max_rise (solve ?coeffs stack n)) ns
