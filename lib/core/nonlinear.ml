module Stack = Ttsv_geometry.Stack
module Plane = Ttsv_geometry.Plane
module Tsv = Ttsv_geometry.Tsv
module Material = Ttsv_physics.Material

(* Rebuild the stack with every plane's materials frozen at that plane's
   current absolute temperature. *)
let refreeze stack ~sink_temperature_k (r : Model_a.result) =
  let tsv = stack.Stack.tsv in
  let at m temp = Material.with_conductivity m (Material.k_at m temp) in
  let stack' =
    Stack.map_planes stack (fun i p ->
        let temp = sink_temperature_k +. r.Model_a.bulk.(i) in
        {
          p with
          Plane.substrate = at p.Plane.substrate temp;
          ild = at p.Plane.ild temp;
          bond = at p.Plane.bond temp;
        })
  in
  (* the filler spans the whole TTSV; evaluate it at the mean via-node
     temperature *)
  let via_temp =
    if Array.length r.Model_a.tsv = 0 then sink_temperature_k +. r.Model_a.t0
    else
      sink_temperature_k
      +. (Array.fold_left ( +. ) 0. r.Model_a.tsv /. float_of_int (Array.length r.Model_a.tsv))
  in
  Stack.with_tsv stack'
    { tsv with Tsv.filler = at tsv.Tsv.filler via_temp; liner = at tsv.Tsv.liner via_temp }

let solve ?coeffs ?(picard_tol = 1e-6) ?(max_picard = 50) ~sink_temperature_k stack =
  let rec picard sweep current prev_max =
    let r = Model_a.solve ?coeffs current in
    let m = Model_a.max_rise r in
    if Float.abs (m -. prev_max) <= picard_tol *. Float.max m 1e-12 then (r, sweep)
    else if sweep >= max_picard then
      failwith "Nonlinear.solve: Picard iteration did not settle"
    else picard (sweep + 1) (refreeze stack ~sink_temperature_k r) m
  in
  picard 1 stack Float.neg_infinity

let self_heating_penalty ?coeffs ~sink_temperature_k stack =
  let linear = Model_a.max_rise (Model_a.solve ?coeffs stack) in
  let nonlinear, _ = solve ?coeffs ~sink_temperature_k stack in
  (Model_a.max_rise nonlinear -. linear) /. linear
