(** Transient RC extension of Model A (beyond the paper).

    The paper's models are steady-state; this module adds the natural
    forward extension: each Model A node receives a lumped heat capacity
    (layer volume × volumetric heat capacity of its materials), turning
    the resistive network into an RC network

      C·dT/dt + G·T = q(t),

    integrated with backward Euler (unconditionally stable; the system
    matrix G + C/Δt is factored once and reused across steps).  With a
    step from zero, the response converges to the steady Model A solution
    — asserted by the test suite — and yields the unit cell's thermal
    time constant, the quantity a dynamic-thermal-management study would
    need next. *)

type result = {
  times : float array;  (** sample instants, s *)
  max_rise : float array;  (** Max ΔT at each instant, K *)
  bulk : float array array;  (** [bulk.(step).(plane)] bulk-node rises, K *)
  steady : Model_a.result;  (** the steady-state limit *)
}

val solve :
  ?coeffs:Coefficients.t ->
  ?power:(float -> float) ->
  Ttsv_geometry.Stack.t ->
  dt:float ->
  duration:float ->
  result
(** [solve stack ~dt ~duration] integrates from a uniform 0 K rise.
    [power] scales the steady heat vector over time (default: constant
    1.0, i.e. a power step at t = 0); it lets callers model duty-cycled
    workloads.  Raises [Invalid_argument] for nonpositive [dt] or
    [duration]. *)

val time_constant : result -> float
(** [time_constant r] is the first instant at which Max ΔT reaches
    1 − 1/e of its steady value (linear interpolation between samples);
    raises [Failure] if the simulation did not run long enough. *)

val settled : ?tol:float -> result -> bool
(** [settled r] is true when the final sample is within [tol] (default
    1 %) of the steady-state Max ΔT. *)
