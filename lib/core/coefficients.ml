type t = { k1 : float; k2 : float }

let make ~k1 ~k2 =
  if k1 <= 0. || k2 <= 0. then invalid_arg "Coefficients.make: coefficients must be positive";
  { k1; k2 }

let unity = { k1 = 1.; k2 = 1. }
let paper_block = { k1 = 1.3; k2 = 0.55 }
let paper_case_study = { k1 = 1.6; k2 = 0.8 }
let pp ppf c = Format.fprintf ppf "{k1=%g; k2=%g}" c.k1 c.k2
